/**
 * @file
 * The paper's headline demo: a real application gang-scheduled
 * against a second job with an imperfect (skewed) schedule. Messages
 * that arrive while their process is descheduled divert transparently
 * into the virtual buffer and are handled when the process is next
 * scheduled — no message is lost, order is preserved, and only a few
 * physical pages are ever consumed.
 *
 *   $ ./examples/multiprogram [skew-percent]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/workloads.hh"
#include "glaze/machine.hh"

using namespace fugu;
using namespace fugu::glaze;

int
main(int argc, char **argv)
{
    const double skew =
        argc > 1 ? std::atof(argv[1]) / 100.0 : 0.25;

    MachineConfig cfg;
    cfg.nodes = 8;
    Machine m(cfg);

    apps::EnumAppConfig ecfg;
    ecfg.side = 5;
    apps::EnumResult result;
    Job *job = m.addJob("enum", apps::makeEnumApp(8, ecfg, &result));
    m.addJob("null", apps::makeNullApp());

    GangConfig gang;
    gang.quantum = 100000;
    gang.skew = skew;
    m.startGang(gang);

    if (!m.runUntilDone(job)) {
        std::printf("job did not finish\n");
        return 1;
    }

    double direct = 0, buffered = 0;
    unsigned max_pages = 0;
    for (auto *proc : job->procs) {
        direct += proc->stats.directDelivered.value();
        buffered += proc->stats.bufferedDelivered.value();
        max_pages = std::max(
            max_pages, static_cast<unsigned>(
                           proc->vbuf().stats.peakPages.value()));
    }
    std::printf("enum finished at cycle %llu: %llu states, %llu "
                "solutions\n",
                static_cast<unsigned long long>(m.now()),
                static_cast<unsigned long long>(result.statesVisited),
                static_cast<unsigned long long>(result.solutions));
    std::printf("schedule skew %.0f%%: %.0f messages direct, %.0f "
                "buffered (%.1f%%), peak %u buffer pages/node\n",
                skew * 100, direct, buffered,
                100.0 * buffered / (direct + buffered), max_pages);
    std::printf("the fast case is the common case; buffering caught "
                "every boundary-crossing message\n");
    return 0;
}
