/**
 * @file
 * The paper's headline demo: a real application gang-scheduled
 * against a second job with an imperfect (skewed) schedule. Messages
 * that arrive while their process is descheduled divert transparently
 * into the virtual buffer and are handled when the process is next
 * scheduled — no message is lost, order is preserved, and only a few
 * physical pages are ever consumed.
 *
 *   $ ./examples/multiprogram [skew-percent]
 *   $ ./examples/multiprogram --set gang.skew=0.4 --set machine.nodes=16
 *
 * Also a minimal example of driving the simulator from the typed
 * parameter tree (sim::Config + sim::Binder) without the full bench
 * harness.
 */

#include <cstdio>
#include <cstdlib>

#include "apps/workloads.hh"
#include "glaze/machine.hh"
#include "sim/config.hh"

using namespace fugu;
using namespace fugu::glaze;

int
main(int argc, char **argv)
{
    sim::Config tree;
    MachineConfig cfg;
    cfg.nodes = 8;
    GangConfig gang;
    gang.quantum = 100000;
    gang.skew = 0.25;
    apps::EnumAppConfig ecfg;
    ecfg.side = 5;

    std::string err;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--scenario=", 0) == 0) {
            if (!tree.loadFile(a.substr(11), &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (a == "--set" && i + 1 < argc) {
            if (!tree.setCli(argv[++i], &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (a.rfind("--set=", 0) == 0) {
            if (!tree.setCli(a.substr(6), &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (!a.empty() && a[0] != '-') {
            // Legacy positional form: skew as a percentage.
            gang.skew = std::atof(a.c_str()) / 100.0;
        } else {
            std::fprintf(stderr,
                         "usage: multiprogram [skew-percent] "
                         "[--scenario=FILE] [--set KEY=VALUE]\n");
            return 2;
        }
    }

    sim::Binder b(tree, sim::Binder::Mode::Apply);
    bindConfig(b, cfg);
    bindConfig(b, gang);
    {
        auto s = b.push("apps");
        auto s2 = b.push("enum");
        apps::bindConfig(b, ecfg);
    }
    if (!b.ok()) {
        std::fprintf(stderr, "%s\n", b.error().c_str());
        return 2;
    }
    if (!tree.checkUnknown(&err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
    }

    Machine m(Machine::fix(cfg));

    apps::EnumResult result;
    Job *job =
        m.addJob("enum", apps::makeEnumApp(cfg.nodes, ecfg, &result));
    m.addJob("null", apps::makeNullApp());
    m.startGang(gang);

    if (!m.runUntilDone(job)) {
        std::printf("job did not finish\n");
        return 1;
    }

    double direct = 0, buffered = 0;
    unsigned max_pages = 0;
    for (auto *proc : job->procs) {
        direct += proc->stats.directDelivered.value();
        buffered += proc->stats.bufferedDelivered.value();
        max_pages = std::max(
            max_pages, static_cast<unsigned>(
                           proc->vbuf().stats.peakPages.value()));
    }
    std::printf("enum finished at cycle %llu: %llu states, %llu "
                "solutions\n",
                static_cast<unsigned long long>(m.now()),
                static_cast<unsigned long long>(result.statesVisited),
                static_cast<unsigned long long>(result.solutions));
    std::printf("schedule skew %.0f%%: %.0f messages direct, %.0f "
                "buffered (%.1f%%), peak %u buffer pages/node\n",
                gang.skew * 100, direct, buffered,
                100.0 * buffered / (direct + buffered), max_pages);
    std::printf("the fast case is the common case; buffering caught "
                "every boundary-crossing message\n");
    return 0;
}
