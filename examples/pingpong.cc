/**
 * @file
 * Ping-pong latency: measures round-trip time between two nodes with
 * interrupt-driven reception and with polling (the two notification
 * modes the UDM atomicity mechanism integrates), and prints per-hop
 * costs next to the paper's Table 4 numbers.
 *
 *   $ ./examples/pingpong
 */

#include <cstdio>

#include "glaze/machine.hh"

using namespace fugu;
using namespace fugu::glaze;
using exec::CoTask;

namespace
{

constexpr Word kPing = 0;
constexpr Word kPong = 1;
constexpr int kRounds = 1000;

CoTask<void>
pongSide(Process &p)
{
    // Every ping is answered from within the handler.
    p.port().setHandler(
        kPing, [](core::UdmPort &port, NodeId src) -> CoTask<void> {
            co_await port.dispose();
            co_await port.send(src, kPong);
        });
    co_return; // handlers keep the node busy; main can exit
}

CoTask<void>
pingInterrupt(Process &p, Cycle *rtt)
{
    rt::CondVar cv(p.threads());
    int got = 0;
    p.port().setHandler(
        kPong, [&](core::UdmPort &port, NodeId) -> CoTask<void> {
            co_await port.dispose();
            ++got;
            cv.notifyAll();
        });
    const Cycle t0 = p.cpu().now();
    for (int i = 0; i < kRounds; ++i) {
        co_await p.port().send(1, kPing);
        while (got <= i)
            co_await cv.wait();
    }
    *rtt = (p.cpu().now() - t0) / kRounds;
}

CoTask<void>
pingPolling(Process &p, Cycle *rtt)
{
    int got = 0;
    p.port().setHandler(
        kPong, [&got](core::UdmPort &port, NodeId) -> CoTask<void> {
            co_await port.dispose();
            ++got;
        });
    // Poll inside an atomic section: notification entirely through
    // the message-available flag.
    co_await p.port().beginAtomic();
    const Cycle t0 = p.cpu().now();
    for (int i = 0; i < kRounds; ++i) {
        co_await p.port().send(1, kPing);
        while (got <= i)
            co_await p.port().poll();
    }
    const Cycle total = p.cpu().now() - t0;
    co_await p.port().endAtomic();
    *rtt = total / kRounds;
}

Cycle
run(bool polling)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.ni.atomicityTimeout = 1u << 20;
    Machine m(cfg);
    Cycle rtt = 0;
    Job *job = m.addJob("pingpong", [&rtt, polling](Process &p) {
        if (p.node() == 1)
            return pongSide(p);
        return polling ? pingPolling(p, &rtt)
                       : pingInterrupt(p, &rtt);
    });
    m.installJob(job);
    if (!m.runUntilDone(job))
        std::printf("run did not finish\n");
    return rtt;
}

} // namespace

int
main()
{
    const Cycle rtt_irq = run(/*polling=*/false);
    const Cycle rtt_poll = run(/*polling=*/true);
    std::printf("round-trip over %d rounds:\n", kRounds);
    std::printf("  interrupts: %llu cycles/rtt "
                "(2x (send 7 + wire + receive 87) + handler reply)\n",
                static_cast<unsigned long long>(rtt_irq));
    std::printf("  polling:    %llu cycles/rtt "
                "(receive path is 9 cycles + poll spin)\n",
                static_cast<unsigned long long>(rtt_poll));
    return 0;
}
