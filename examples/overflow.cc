/**
 * @file
 * Overflow control in action: a receiver that refuses to handle
 * messages (a long atomic section) while a flood arrives, on a node
 * with a tiny frame pool. Virtual buffering absorbs the flood,
 * overflow control suspends the offending job, pages buffer pages to
 * backing store over the second network, and everything is still
 * delivered exactly once when the receiver finally listens.
 *
 *   $ ./examples/overflow
 */

#include <cstdio>

#include "apps/workloads.hh"
#include "glaze/machine.hh"

using namespace fugu;
using namespace fugu::glaze;
using exec::CoTask;

namespace
{

constexpr int kFlood = 900;

CoTask<void>
stubbornReceiver(Process &p, int *count)
{
    rt::CondVar cv(p.threads());
    p.port().setHandler(
        0, [count, &cv](core::UdmPort &port, NodeId) -> CoTask<void> {
            co_await port.dispose();
            ++*count;
            cv.notifyAll();
        });
    // Refuse to listen while the flood arrives.
    co_await p.port().beginAtomic();
    co_await p.compute(400000);
    co_await p.port().endAtomic();
    while (*count < kFlood)
        co_await cv.wait();
}

CoTask<void>
flooder(Process &p)
{
    for (int i = 0; i < kFlood; ++i) {
        std::vector<Word> payload(1, static_cast<Word>(i));
        co_await p.port().send(1, 0, std::move(payload));
        co_await p.compute(20);
    }
}

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.framesPerNode = 4; // tiny pool: force overflow control
    cfg.ni.atomicityTimeout = 2000;
    Machine m(cfg);
    for (auto &n : m.nodes)
        n.frames.setLowWatermark(1);

    int count = 0;
    Job *job = m.addJob("flood", [&count](Process &p) {
        return p.node() == 0 ? flooder(p)
                             : stubbornReceiver(p, &count);
    });
    m.addJob("null", apps::makeNullApp());
    GangConfig gang;
    gang.quantum = 50000;
    m.startGang(gang);

    if (!m.runUntilDone(job)) {
        std::printf("flood did not finish\n");
        return 1;
    }
    auto &k1 = m.node(1).kernel;
    auto &vb = job->procs[1]->vbuf();
    std::printf("delivered %d/%d messages exactly once\n", count,
                kFlood);
    std::printf("atomicity timeouts: %g (revoked the stubborn atomic "
                "section)\n",
                m.node(1).ni.stats.atomicityTimeouts.value());
    std::printf("buffer inserts: %g; peak pages: %g (pool of %u)\n",
                k1.stats.bufferInserts.value(),
                vb.stats.peakPages.value(), cfg.framesPerNode);
    std::printf("overflow-control events: %g; pages swapped out: %g; "
                "paged back in: %g\n",
                k1.stats.overflowEvents.value(),
                vb.stats.swapOuts.value(), vb.stats.pageIns.value());
    return count == kFlood ? 0 : 1;
}
