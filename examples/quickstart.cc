/**
 * @file
 * Quickstart: boot a two-node FUGU machine, register a UDM message
 * handler, send a few messages, and print the delivery statistics.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "glaze/machine.hh"

using namespace fugu;
using namespace fugu::glaze;
using exec::CoTask;

namespace
{

constexpr Word kHello = 0;

/** Receiver: register a handler, wait until ten messages arrived. */
CoTask<void>
receiver(Process &p, int *count)
{
    rt::CondVar cv(p.threads());
    p.port().setHandler(
        kHello,
        [count, &cv](core::UdmPort &port, NodeId src) -> CoTask<void> {
            // A UDM handler extracts its message: read the payload,
            // then dispose.
            Word value = co_await port.read(0);
            co_await port.dispose();
            std::printf("node 1: got %u from node %u\n", value, src);
            ++*count;
            cv.notifyAll();
        });
    while (*count < 10)
        co_await cv.wait();
}

/** Sender: inject ten messages, interleaved with computation. */
CoTask<void>
sender(Process &p)
{
    for (Word i = 0; i < 10; ++i) {
        co_await p.compute(500);
        std::vector<Word> payload(1, 100 + i);
        co_await p.port().send(/*dst=*/1, kHello, std::move(payload));
    }
}

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);

    int count = 0;
    Job *job = m.addJob("hello", [&count](Process &p) {
        return p.node() == 0 ? sender(p) : receiver(p, &count);
    });
    m.installJob(job);

    if (!m.runUntilDone(job)) {
        std::printf("job did not finish\n");
        return 1;
    }
    std::printf("done at cycle %llu; %g upcalls on node 1, "
                "all on the fast path (%g buffered)\n",
                static_cast<unsigned long long>(m.now()),
                m.node(1).kernel.stats.upcalls.value(),
                job->procs[1]->stats.bufferedDelivered.value());
    return 0;
}
