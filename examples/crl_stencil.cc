/**
 * @file
 * Shared-memory-style programming on CRL over UDM: a 1-D heat
 * diffusion stencil. Each node owns a segment of the rod as a CRL
 * region; every step it reads its neighbours' boundary segments and
 * writes its own — the classic producer/consumer sharing pattern that
 * the region protocol turns into request/reply + data traffic.
 *
 *   $ ./examples/crl_stencil
 */

#include <cstdio>

#include "apps/common.hh"
#include "glaze/machine.hh"

using namespace fugu;
using namespace fugu::glaze;
using namespace fugu::apps;
using exec::CoTask;

namespace
{

constexpr unsigned kPerNode = 32;
constexpr unsigned kSteps = 20;

CoTask<void>
stencilMain(Process &p, unsigned nnodes, double *checksum)
{
    AppEnv &e = env(p, nnodes);
    const NodeId me = p.node();
    for (NodeId n = 0; n < nnodes; ++n)
        e.crl.createRegion(n, n, 2 * kPerNode);

    // Initial condition: a hot spot on node 0.
    co_await e.crl.startWrite(me);
    for (unsigned i = 0; i < kPerNode; ++i)
        e.crl.writeDouble(me, i,
                          me == NodeId{0} && i == 0u ? 1000.0 : 0.0);
    co_await e.crl.endWrite(me);
    co_await e.barrier.wait();

    std::vector<double> next(kPerNode);
    for (unsigned step = 0; step < kSteps; ++step) {
        const NodeId left = me == 0 ? me : me - 1;
        const NodeId right =
            static_cast<unsigned>(me) + 1 == nnodes ? me : me + 1;

        co_await e.crl.startRead(me);
        if (left != me)
            co_await e.crl.startRead(left);
        if (right != me)
            co_await e.crl.startRead(right);
        for (unsigned i = 0; i < kPerNode; ++i) {
            const double l =
                i > 0 ? e.crl.readDouble(me, i - 1)
                : left != me ? e.crl.readDouble(left, kPerNode - 1)
                             : e.crl.readDouble(me, i);
            const double r =
                i + 1 < kPerNode ? e.crl.readDouble(me, i + 1)
                : right != me    ? e.crl.readDouble(right, 0)
                                 : e.crl.readDouble(me, i);
            next[i] = e.crl.readDouble(me, i) +
                      0.25 * (l + r - 2 * e.crl.readDouble(me, i));
        }
        if (right != me)
            co_await e.crl.endRead(right);
        if (left != me)
            co_await e.crl.endRead(left);
        co_await e.crl.endRead(me);
        co_await p.compute(kPerNode * 40);

        co_await e.crl.startWrite(me);
        for (unsigned i = 0; i < kPerNode; ++i)
            e.crl.writeDouble(me, i, next[i]);
        co_await e.crl.endWrite(me);
        co_await e.barrier.wait();
    }

    double sum = 0;
    co_await e.crl.startRead(me);
    for (unsigned i = 0; i < kPerNode; ++i)
        sum += e.crl.readDouble(me, i);
    co_await e.crl.endRead(me);
    checksum[me] = sum;
    co_await e.barrier.wait();
}

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.nodes = 4;
    Machine m(cfg);
    double checksum[4] = {};
    Job *job = m.addJob("stencil", [&checksum](Process &p) {
        return stencilMain(p, 4, checksum);
    });
    m.installJob(job);
    if (!m.runUntilDone(job)) {
        std::printf("stencil did not finish\n");
        return 1;
    }
    double total = 0;
    for (int n = 0; n < 4; ++n) {
        std::printf("node %d segment heat: %.3f\n", n, checksum[n]);
        total += checksum[n];
    }
    std::printf("total heat %.3f (conserved: 1000)\n", total);
    std::printf("CRL turned the sharing into %g messages over UDM\n",
                m.net.stats.messages.value());
    return total > 999.0 && total < 1001.0 ? 0 : 1;
}
