#!/usr/bin/env bash
# Profile a bench binary with Linux perf and print the hottest stacks.
#
# Usage:
#   tools/profile.sh <bench-binary> [args...]
#
# Example:
#   tools/profile.sh build-profile/bench/bench_engine
#   tools/profile.sh build-profile/bench/bench_machine_scale \
#       --scenario scenarios/scale1k.cfg --set scale.shards=1
#
# Build the tree with frame pointers first, or the report collapses
# into the outermost frames:
#   cmake -B build-profile -S . -DCMAKE_BUILD_TYPE=Release \
#         -DFUGU_PROFILE=ON
#   cmake --build build-profile -j
#
# Requires: perf (linux-tools). Falls back to a plain flat report when
# the kernel blocks call-graph sampling (perf_event_paranoid > 2).

set -euo pipefail

if [ $# -lt 1 ]; then
    sed -n '2,16p' "$0" | sed 's/^# \{0,1\}//'
    exit 2
fi

if ! command -v perf >/dev/null 2>&1; then
    echo "error: perf not found (install linux-tools for this kernel)" >&2
    exit 1
fi

BIN=$1
shift

OUT=$(mktemp -t fugu-perf.XXXXXX.data)
trap 'rm -f "$OUT"' EXIT

# Frame-pointer call graphs match -fno-omit-frame-pointer builds and
# avoid the giant DWARF-unwind sample sizes.
if perf record -o "$OUT" -g --call-graph fp -- "$BIN" "$@"; then
    echo
    echo "== hottest call stacks (self% then graph) =="
    perf report -i "$OUT" --stdio --no-children \
        --percent-limit 0.5 2>/dev/null | head -80
else
    echo "perf record with call graphs failed; flat samples:" >&2
    perf record -o "$OUT" -- "$BIN" "$@"
    perf report -i "$OUT" --stdio --no-children 2>/dev/null | head -40
fi
