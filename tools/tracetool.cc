/**
 * @file
 * tracetool: offline analysis of fugutrace binary trace files.
 *
 *   tracetool summarize FILE   per-type event counts, buffered-entry
 *                              cause attribution, latency percentiles
 *                              and per-channel peak occupancy
 *   tracetool diff A B         side-by-side summary of two traces
 *
 * Exit status: 0 on success, 1 on a malformed trace or bad usage, so
 * CI can use `summarize` as a round-trip check. An empty (but well
 * formed) trace is not an error: a run may legitimately record zero
 * events, and every degenerate section prints `n/a` instead.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "trace/export.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: tracetool summarize FILE\n"
                 "       tracetool diff A B\n";
    return 1;
}

bool
load(const std::string &path, std::vector<fugu::trace::TraceEvent> &ev)
{
    std::string err;
    if (!fugu::trace::readBinaryFile(path, ev, &err)) {
        std::cerr << "tracetool: " << path << ": " << err << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fugu::trace;

    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "summarize") {
        if (argc != 3)
            return usage();
        std::vector<TraceEvent> ev;
        if (!load(argv[2], ev))
            return 1;
        std::cout << argv[2] << ":\n";
        printSummary(std::cout, summarize(ev));
        return 0;
    }

    if (cmd == "diff") {
        if (argc != 4)
            return usage();
        std::vector<TraceEvent> a, b;
        if (!load(argv[2], a) || !load(argv[3], b))
            return 1;
        std::cout << "A = " << argv[2] << "\nB = " << argv[3] << "\n";
        printDiff(std::cout, summarize(a), summarize(b));
        return 0;
    }

    return usage();
}
