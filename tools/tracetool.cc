/**
 * @file
 * tracetool: offline analysis of fugutrace binary trace files.
 *
 *   tracetool summarize FILE   per-type event counts, buffered-entry
 *                              cause attribution, latency percentiles
 *                              and per-channel peak occupancy
 *   tracetool diff A B         side-by-side summary of two traces
 *
 * Exit status: 0 on success, 1 on a malformed trace or bad usage, so
 * CI can use `summarize` as a round-trip check. An empty (but well
 * formed) trace is not an error: a run may legitimately record zero
 * events, and every degenerate section prints `n/a` instead.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "trace/export.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: tracetool summarize FILE\n"
                 "       tracetool diff A B\n";
    return 1;
}

bool
load(const std::string &path, std::vector<fugu::trace::TraceEvent> &ev,
     std::string &tag)
{
    std::string err;
    if (!fugu::trace::readBinaryFile(path, ev, &err, &tag)) {
        std::cerr << "tracetool: " << path << ": " << err << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fugu::trace;

    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "summarize") {
        if (argc != 3)
            return usage();
        std::vector<TraceEvent> ev;
        std::string tag;
        if (!load(argv[2], ev, tag))
            return 1;
        std::cout << argv[2] << ":\n";
        Summary s = summarize(ev);
        s.runTag = tag;
        printSummary(std::cout, s);
        return 0;
    }

    if (cmd == "diff") {
        if (argc != 4)
            return usage();
        std::vector<TraceEvent> a, b;
        std::string ta, tb;
        if (!load(argv[2], a, ta) || !load(argv[3], b, tb))
            return 1;
        std::cout << "A = " << argv[2] << "\nB = " << argv[3] << "\n";
        Summary sa = summarize(a), sb = summarize(b);
        sa.runTag = ta;
        sb.runTag = tb;
        printDiff(std::cout, sa, sb);
        return 0;
    }

    return usage();
}
