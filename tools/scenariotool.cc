/**
 * @file
 * Scenario-file tooling for CI and editors:
 *
 *   scenariotool params          print the shared parameter registry
 *   scenariotool check FILE...   parse each scenario and validate
 *                                every key against the shared
 *                                registry (machine/net/ni/costs/...)
 *
 * `check` accepts bench-local sections (fig7.*, abl.*, table4.*, ...)
 * without validating them — only the bench that owns a section knows
 * its keys; the CI scenario-smoke job covers those by running the
 * bench itself.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "glaze/machine.hh"
#include "harness/experiment.hh"
#include "serve/serve.hh"
#include "sim/arrival.hh"
#include "sim/config.hh"

using namespace fugu;

namespace
{

/** Sections owned by the shared registry (everything else is
 *  bench-local). */
const std::vector<std::string> kSharedSections{
    "machine", "net",  "osnet",     "ni",   "costs",   "trace",
    "gang",    "workloads", "apps", "harness", "serve", "arrival"};

/** One Apply walk over default-constructed shared config structs. */
void
bindShared(sim::Binder &b, glaze::MachineConfig &machine,
           glaze::GangConfig &gang, harness::Workloads &wl,
           serve::ServeConfig &serve_cfg, sim::ArrivalConfig &arrival,
           unsigned &trials, Cycle &max_cycles)
{
    glaze::bindConfig(b, machine);
    glaze::bindConfig(b, gang);
    wl.bind(b);
    {
        auto s = b.push("serve");
        serve::bindConfig(b, serve_cfg);
    }
    {
        auto s = b.push("arrival");
        sim::bindConfig(b, arrival);
    }
    auto s = b.push("harness");
    b.item("trials", trials,
           "trials (differing only in seed) averaged per data point");
    b.item("max_cycles", max_cycles,
           "per-run cycle budget before a run is declared stuck",
           "cycles");
}

int
cmdParams()
{
    sim::Config tree;
    sim::Binder b(tree, sim::Binder::Mode::Apply);
    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    serve::ServeConfig serve_cfg;
    sim::ArrivalConfig arrival;
    unsigned trials = 3;
    Cycle max_cycles = 100000000000ull;
    bindShared(b, machine, gang, wl, serve_cfg, arrival, trials,
               max_cycles);
    if (!b.ok()) {
        std::fprintf(stderr, "%s\n", b.error().c_str());
        return 1;
    }
    std::fputs(b.listText().c_str(), stdout);
    return 0;
}

int
cmdCheck(const std::vector<std::string> &files)
{
    int rc = 0;
    for (const std::string &path : files) {
        sim::Config tree;
        std::string err;
        if (!tree.loadFile(path, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            rc = 1;
            continue;
        }
        sim::Binder b(tree, sim::Binder::Mode::Apply);
        glaze::MachineConfig machine;
        glaze::GangConfig gang;
        harness::Workloads wl;
        serve::ServeConfig serve_cfg;
        sim::ArrivalConfig arrival;
        unsigned trials = 3;
        Cycle max_cycles = 100000000000ull;
        bindShared(b, machine, gang, wl, serve_cfg, arrival, trials,
                   max_cycles);
        if (!b.ok()) {
            std::fprintf(stderr, "%s\n", b.error().c_str());
            rc = 1;
            continue;
        }
        std::vector<std::string> skipped;
        if (!tree.checkUnknownIn(kSharedSections, &err, &skipped)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            rc = 1;
            continue;
        }
        if (skipped.empty()) {
            std::printf("%s: ok\n", path.c_str());
        } else {
            std::string list;
            for (const std::string &k : skipped)
                list += (list.empty() ? "" : ", ") + k;
            std::printf("%s: ok (bench-local, not validated: %s)\n",
                        path.c_str(), list.c_str());
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "params" && argc == 2)
        return cmdParams();
    if (cmd == "check" && argc > 2) {
        std::vector<std::string> files(argv + 2, argv + argc);
        return cmdCheck(files);
    }
    std::fprintf(stderr,
                 "usage: scenariotool params\n"
                 "       scenariotool check FILE...\n");
    return 2;
}
