file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_synth_interval.dir/bench_fig9_synth_interval.cc.o"
  "CMakeFiles/bench_fig9_synth_interval.dir/bench_fig9_synth_interval.cc.o.d"
  "bench_fig9_synth_interval"
  "bench_fig9_synth_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_synth_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
