# Empty compiler generated dependencies file for bench_fig9_synth_interval.
# This may be replaced when dependencies are built.
