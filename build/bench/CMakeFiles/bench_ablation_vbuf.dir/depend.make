# Empty dependencies file for bench_ablation_vbuf.
# This may be replaced when dependencies are built.
