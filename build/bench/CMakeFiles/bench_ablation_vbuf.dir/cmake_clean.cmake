file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vbuf.dir/bench_ablation_vbuf.cc.o"
  "CMakeFiles/bench_ablation_vbuf.dir/bench_ablation_vbuf.cc.o.d"
  "bench_ablation_vbuf"
  "bench_ablation_vbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
