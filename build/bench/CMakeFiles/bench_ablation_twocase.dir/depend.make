# Empty dependencies file for bench_ablation_twocase.
# This may be replaced when dependencies are built.
