file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_twocase.dir/bench_ablation_twocase.cc.o"
  "CMakeFiles/bench_ablation_twocase.dir/bench_ablation_twocase.cc.o.d"
  "bench_ablation_twocase"
  "bench_ablation_twocase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_twocase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
