
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_slowdown.cc" "bench/CMakeFiles/bench_fig8_slowdown.dir/bench_fig8_slowdown.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_slowdown.dir/bench_fig8_slowdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/fugu_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fugu_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/crl/CMakeFiles/fugu_crl.dir/DependInfo.cmake"
  "/root/repo/build/src/glaze/CMakeFiles/fugu_glaze.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/fugu_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fugu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fugu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fugu_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fugu_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
