# Empty dependencies file for bench_fig8_slowdown.
# This may be replaced when dependencies are built.
