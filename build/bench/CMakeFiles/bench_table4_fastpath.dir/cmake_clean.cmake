file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fastpath.dir/bench_table4_fastpath.cc.o"
  "CMakeFiles/bench_table4_fastpath.dir/bench_table4_fastpath.cc.o.d"
  "bench_table4_fastpath"
  "bench_table4_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
