# Empty dependencies file for bench_table4_fastpath.
# This may be replaced when dependencies are built.
