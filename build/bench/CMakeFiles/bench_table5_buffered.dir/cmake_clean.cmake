file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_buffered.dir/bench_table5_buffered.cc.o"
  "CMakeFiles/bench_table5_buffered.dir/bench_table5_buffered.cc.o.d"
  "bench_table5_buffered"
  "bench_table5_buffered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_buffered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
