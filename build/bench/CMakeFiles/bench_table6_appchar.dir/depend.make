# Empty dependencies file for bench_table6_appchar.
# This may be replaced when dependencies are built.
