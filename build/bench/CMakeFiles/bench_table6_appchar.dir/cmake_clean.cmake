file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_appchar.dir/bench_table6_appchar.cc.o"
  "CMakeFiles/bench_table6_appchar.dir/bench_table6_appchar.cc.o.d"
  "bench_table6_appchar"
  "bench_table6_appchar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_appchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
