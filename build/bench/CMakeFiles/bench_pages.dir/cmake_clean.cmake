file(REMOVE_RECURSE
  "CMakeFiles/bench_pages.dir/bench_pages.cc.o"
  "CMakeFiles/bench_pages.dir/bench_pages.cc.o.d"
  "bench_pages"
  "bench_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
