# Empty dependencies file for bench_pages.
# This may be replaced when dependencies are built.
