# Empty compiler generated dependencies file for bench_fig7_buffered_fraction.
# This may be replaced when dependencies are built.
