file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_buffered_fraction.dir/bench_fig7_buffered_fraction.cc.o"
  "CMakeFiles/bench_fig7_buffered_fraction.dir/bench_fig7_buffered_fraction.cc.o.d"
  "bench_fig7_buffered_fraction"
  "bench_fig7_buffered_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_buffered_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
