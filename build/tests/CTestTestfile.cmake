# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_event[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_netif[1]_include.cmake")
include("/root/repo/build/tests/test_glaze[1]_include.cmake")
include("/root/repo/build/tests/test_crl[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_vbuf[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_udm[1]_include.cmake")
