file(REMOVE_RECURSE
  "CMakeFiles/test_crl.dir/test_crl.cc.o"
  "CMakeFiles/test_crl.dir/test_crl.cc.o.d"
  "test_crl"
  "test_crl.pdb"
  "test_crl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
