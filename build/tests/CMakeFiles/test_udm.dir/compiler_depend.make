# Empty compiler generated dependencies file for test_udm.
# This may be replaced when dependencies are built.
