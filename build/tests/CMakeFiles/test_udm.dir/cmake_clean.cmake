file(REMOVE_RECURSE
  "CMakeFiles/test_udm.dir/test_udm.cc.o"
  "CMakeFiles/test_udm.dir/test_udm.cc.o.d"
  "test_udm"
  "test_udm.pdb"
  "test_udm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
