
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_glaze.cc" "tests/CMakeFiles/test_glaze.dir/test_glaze.cc.o" "gcc" "tests/CMakeFiles/test_glaze.dir/test_glaze.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/fugu_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/crl/CMakeFiles/fugu_crl.dir/DependInfo.cmake"
  "/root/repo/build/src/glaze/CMakeFiles/fugu_glaze.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/fugu_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fugu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fugu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fugu_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fugu_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
