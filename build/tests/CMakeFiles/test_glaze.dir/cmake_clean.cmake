file(REMOVE_RECURSE
  "CMakeFiles/test_glaze.dir/test_glaze.cc.o"
  "CMakeFiles/test_glaze.dir/test_glaze.cc.o.d"
  "test_glaze"
  "test_glaze.pdb"
  "test_glaze[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glaze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
