# Empty compiler generated dependencies file for test_glaze.
# This may be replaced when dependencies are built.
