file(REMOVE_RECURSE
  "CMakeFiles/test_netif.dir/test_netif.cc.o"
  "CMakeFiles/test_netif.dir/test_netif.cc.o.d"
  "test_netif"
  "test_netif.pdb"
  "test_netif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
