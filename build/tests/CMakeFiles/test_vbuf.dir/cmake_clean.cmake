file(REMOVE_RECURSE
  "CMakeFiles/test_vbuf.dir/test_vbuf.cc.o"
  "CMakeFiles/test_vbuf.dir/test_vbuf.cc.o.d"
  "test_vbuf"
  "test_vbuf.pdb"
  "test_vbuf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
