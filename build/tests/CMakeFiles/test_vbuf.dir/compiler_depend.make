# Empty compiler generated dependencies file for test_vbuf.
# This may be replaced when dependencies are built.
