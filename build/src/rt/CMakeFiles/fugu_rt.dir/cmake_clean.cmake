file(REMOVE_RECURSE
  "CMakeFiles/fugu_rt.dir/thread.cc.o"
  "CMakeFiles/fugu_rt.dir/thread.cc.o.d"
  "libfugu_rt.a"
  "libfugu_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugu_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
