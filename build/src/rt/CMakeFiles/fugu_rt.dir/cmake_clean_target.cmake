file(REMOVE_RECURSE
  "libfugu_rt.a"
)
