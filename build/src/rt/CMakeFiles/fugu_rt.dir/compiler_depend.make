# Empty compiler generated dependencies file for fugu_rt.
# This may be replaced when dependencies are built.
