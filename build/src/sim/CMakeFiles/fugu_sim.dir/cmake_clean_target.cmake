file(REMOVE_RECURSE
  "libfugu_sim.a"
)
