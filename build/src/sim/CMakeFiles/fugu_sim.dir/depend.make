# Empty dependencies file for fugu_sim.
# This may be replaced when dependencies are built.
