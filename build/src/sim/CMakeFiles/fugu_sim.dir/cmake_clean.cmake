file(REMOVE_RECURSE
  "CMakeFiles/fugu_sim.dir/event.cc.o"
  "CMakeFiles/fugu_sim.dir/event.cc.o.d"
  "CMakeFiles/fugu_sim.dir/log.cc.o"
  "CMakeFiles/fugu_sim.dir/log.cc.o.d"
  "CMakeFiles/fugu_sim.dir/stats.cc.o"
  "CMakeFiles/fugu_sim.dir/stats.cc.o.d"
  "libfugu_sim.a"
  "libfugu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
