file(REMOVE_RECURSE
  "CMakeFiles/fugu_net.dir/network.cc.o"
  "CMakeFiles/fugu_net.dir/network.cc.o.d"
  "libfugu_net.a"
  "libfugu_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugu_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
