# Empty dependencies file for fugu_net.
# This may be replaced when dependencies are built.
