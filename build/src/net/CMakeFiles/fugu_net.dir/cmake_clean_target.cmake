file(REMOVE_RECURSE
  "libfugu_net.a"
)
