# Empty dependencies file for fugu_harness.
# This may be replaced when dependencies are built.
