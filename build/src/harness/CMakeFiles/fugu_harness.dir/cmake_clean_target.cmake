file(REMOVE_RECURSE
  "libfugu_harness.a"
)
