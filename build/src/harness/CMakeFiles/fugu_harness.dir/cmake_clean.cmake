file(REMOVE_RECURSE
  "CMakeFiles/fugu_harness.dir/experiment.cc.o"
  "CMakeFiles/fugu_harness.dir/experiment.cc.o.d"
  "libfugu_harness.a"
  "libfugu_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugu_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
