file(REMOVE_RECURSE
  "libfugu_core.a"
)
