file(REMOVE_RECURSE
  "CMakeFiles/fugu_core.dir/netif.cc.o"
  "CMakeFiles/fugu_core.dir/netif.cc.o.d"
  "CMakeFiles/fugu_core.dir/udm.cc.o"
  "CMakeFiles/fugu_core.dir/udm.cc.o.d"
  "libfugu_core.a"
  "libfugu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
