# Empty dependencies file for fugu_core.
# This may be replaced when dependencies are built.
