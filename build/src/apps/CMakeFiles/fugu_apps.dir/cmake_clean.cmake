file(REMOVE_RECURSE
  "CMakeFiles/fugu_apps.dir/barnes.cc.o"
  "CMakeFiles/fugu_apps.dir/barnes.cc.o.d"
  "CMakeFiles/fugu_apps.dir/barrierapp.cc.o"
  "CMakeFiles/fugu_apps.dir/barrierapp.cc.o.d"
  "CMakeFiles/fugu_apps.dir/enumapp.cc.o"
  "CMakeFiles/fugu_apps.dir/enumapp.cc.o.d"
  "CMakeFiles/fugu_apps.dir/lu.cc.o"
  "CMakeFiles/fugu_apps.dir/lu.cc.o.d"
  "CMakeFiles/fugu_apps.dir/nullapp.cc.o"
  "CMakeFiles/fugu_apps.dir/nullapp.cc.o.d"
  "CMakeFiles/fugu_apps.dir/synthapp.cc.o"
  "CMakeFiles/fugu_apps.dir/synthapp.cc.o.d"
  "CMakeFiles/fugu_apps.dir/water.cc.o"
  "CMakeFiles/fugu_apps.dir/water.cc.o.d"
  "libfugu_apps.a"
  "libfugu_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugu_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
