# Empty dependencies file for fugu_apps.
# This may be replaced when dependencies are built.
