file(REMOVE_RECURSE
  "libfugu_apps.a"
)
