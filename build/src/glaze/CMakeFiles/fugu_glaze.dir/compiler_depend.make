# Empty compiler generated dependencies file for fugu_glaze.
# This may be replaced when dependencies are built.
