file(REMOVE_RECURSE
  "CMakeFiles/fugu_glaze.dir/kernel.cc.o"
  "CMakeFiles/fugu_glaze.dir/kernel.cc.o.d"
  "CMakeFiles/fugu_glaze.dir/machine.cc.o"
  "CMakeFiles/fugu_glaze.dir/machine.cc.o.d"
  "CMakeFiles/fugu_glaze.dir/process.cc.o"
  "CMakeFiles/fugu_glaze.dir/process.cc.o.d"
  "CMakeFiles/fugu_glaze.dir/vbuf.cc.o"
  "CMakeFiles/fugu_glaze.dir/vbuf.cc.o.d"
  "CMakeFiles/fugu_glaze.dir/vm.cc.o"
  "CMakeFiles/fugu_glaze.dir/vm.cc.o.d"
  "libfugu_glaze.a"
  "libfugu_glaze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugu_glaze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
