file(REMOVE_RECURSE
  "libfugu_glaze.a"
)
