
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/glaze/kernel.cc" "src/glaze/CMakeFiles/fugu_glaze.dir/kernel.cc.o" "gcc" "src/glaze/CMakeFiles/fugu_glaze.dir/kernel.cc.o.d"
  "/root/repo/src/glaze/machine.cc" "src/glaze/CMakeFiles/fugu_glaze.dir/machine.cc.o" "gcc" "src/glaze/CMakeFiles/fugu_glaze.dir/machine.cc.o.d"
  "/root/repo/src/glaze/process.cc" "src/glaze/CMakeFiles/fugu_glaze.dir/process.cc.o" "gcc" "src/glaze/CMakeFiles/fugu_glaze.dir/process.cc.o.d"
  "/root/repo/src/glaze/vbuf.cc" "src/glaze/CMakeFiles/fugu_glaze.dir/vbuf.cc.o" "gcc" "src/glaze/CMakeFiles/fugu_glaze.dir/vbuf.cc.o.d"
  "/root/repo/src/glaze/vm.cc" "src/glaze/CMakeFiles/fugu_glaze.dir/vm.cc.o" "gcc" "src/glaze/CMakeFiles/fugu_glaze.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/fugu_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fugu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fugu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/fugu_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fugu_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
