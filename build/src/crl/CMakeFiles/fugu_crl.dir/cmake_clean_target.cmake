file(REMOVE_RECURSE
  "libfugu_crl.a"
)
