file(REMOVE_RECURSE
  "CMakeFiles/fugu_crl.dir/crl.cc.o"
  "CMakeFiles/fugu_crl.dir/crl.cc.o.d"
  "libfugu_crl.a"
  "libfugu_crl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugu_crl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
