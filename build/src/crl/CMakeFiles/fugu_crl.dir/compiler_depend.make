# Empty compiler generated dependencies file for fugu_crl.
# This may be replaced when dependencies are built.
