# Empty compiler generated dependencies file for fugu_exec.
# This may be replaced when dependencies are built.
