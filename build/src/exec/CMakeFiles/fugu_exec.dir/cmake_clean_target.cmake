file(REMOVE_RECURSE
  "libfugu_exec.a"
)
