file(REMOVE_RECURSE
  "CMakeFiles/fugu_exec.dir/cpu.cc.o"
  "CMakeFiles/fugu_exec.dir/cpu.cc.o.d"
  "libfugu_exec.a"
  "libfugu_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugu_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
