# Empty dependencies file for crl_stencil.
# This may be replaced when dependencies are built.
