file(REMOVE_RECURSE
  "CMakeFiles/crl_stencil.dir/crl_stencil.cc.o"
  "CMakeFiles/crl_stencil.dir/crl_stencil.cc.o.d"
  "crl_stencil"
  "crl_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crl_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
