file(REMOVE_RECURSE
  "CMakeFiles/overflow.dir/overflow.cc.o"
  "CMakeFiles/overflow.dir/overflow.cc.o.d"
  "overflow"
  "overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
