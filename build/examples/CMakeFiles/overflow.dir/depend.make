# Empty dependencies file for overflow.
# This may be replaced when dependencies are built.
