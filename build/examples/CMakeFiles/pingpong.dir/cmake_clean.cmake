file(REMOVE_RECURSE
  "CMakeFiles/pingpong.dir/pingpong.cc.o"
  "CMakeFiles/pingpong.dir/pingpong.cc.o.d"
  "pingpong"
  "pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
