#!/usr/bin/env python3
"""Performance-regression gate over committed BENCH_*.json baselines.

Compares a freshly produced bench report against the baseline checked
into bench/baselines/ and fails (exit 1) when any row's events/sec
regressed by more than the threshold (default 10%).

Rows are matched by their identity cells (section/app/nodes/shards —
whichever the bench emits); the compared metric is events_per_sec.
Because CI runners and developer machines differ wildly in absolute
speed, the default mode normalizes: every baseline row is scaled by
the median current/baseline ratio across all matched rows, so the
gate triggers on *relative* regressions — one path getting slower
while the rest of the bench did not. A slowdown that hits every row
uniformly is indistinguishable from a slower host and passes; that is
the price of a host-portable gate (--absolute compares raw numbers
for same-host A/B runs). Rows present in the baseline but missing
from the current report fail the gate — silent coverage loss is a
regression too. Current rows absent from the baseline are a warning
by default (the gate still passes) and a failure under --strict, so
a bench that grows a new gated section cannot silently ship it
ungated — regenerating bench/baselines/ is part of the change.

Usage:
  ci/perf_gate.py BASELINE.json CURRENT.json [--threshold 0.10]
                  [--absolute] [--strict]
"""

import argparse
import json
import statistics
import sys

IDENTITY_KEYS = ("section", "app", "nodes", "shards")
METRIC = "events_per_sec"


def rows_by_identity(report):
    out = {}
    for row in report.get("rows", []):
        if METRIC not in row:
            continue  # e.g. bench_engine's trace-overhead gate row
        key = tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)
        out[key] = row[METRIC]
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed fractional regression (default 0.10)")
    ap.add_argument("--absolute", action="store_true",
                    help="skip host normalization (same-host A/B)")
    ap.add_argument("--strict", action="store_true",
                    help="fail (not warn) on current rows missing "
                         "from the baseline")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = rows_by_identity(json.load(f))
    with open(args.current) as f:
        cur = rows_by_identity(json.load(f))
    if not base:
        print(f"FAIL: no comparable rows in {args.baseline}")
        return 1

    matched = {k: (base[k], cur[k]) for k in base if k in cur}
    missing = sorted(k for k in base if k not in cur)
    for k in missing:
        print(f"FAIL: baseline row missing from current report: "
              f"{dict(k)}")

    extra = sorted(k for k in cur if k not in base)
    for k in extra:
        kind = "FAIL" if args.strict else "WARN"
        print(f"{kind}: current row not in baseline (not gated): "
              f"{dict(k)} — regenerate bench/baselines/ to cover it")

    scale = 1.0
    if not args.absolute and matched:
        scale = statistics.median(c / b for b, c in matched.values())
        print(f"host scale (median current/baseline): {scale:.3f}")

    failures = len(missing)
    if args.strict:
        failures += len(extra)
    for key, (b, c) in sorted(matched.items()):
        floor = (1.0 - args.threshold) * b * scale
        verdict = "ok" if c >= floor else "FAIL"
        print(f"{verdict}: {dict(key)}: {c:,.0f} events/sec vs "
              f"baseline {b:,.0f} (scaled floor {floor:,.0f})")
        if c < floor:
            failures += 1

    if failures:
        print(f"\n{failures} perf-gate failure(s); if intentional, "
              f"regenerate bench/baselines/ and commit the change")
        return 1
    print(f"\nperf gate passed ({len(matched)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
