/**
 * @file
 * Property-based tests (parameterized sweeps) of the system-wide
 * invariants two-case delivery must uphold under randomized traffic
 * and adverse scheduling:
 *
 *  - Exactly-once, in-order (per sender) delivery regardless of which
 *    path each message takes.
 *  - Atomicity: no user handler ever runs while the target process's
 *    atomic section is active.
 *  - Protection: no process ever observes another GID's message.
 *  - Liveness: random storms with finite queues always drain.
 *  - Determinism: identical seeds give identical outcomes.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "apps/workloads.hh"
#include "glaze/machine.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::glaze;
using exec::CoTask;

namespace
{

struct StormParams
{
    unsigned nodes;
    unsigned messagesPerNode;
    double skew;
    Cycle quantum;
    Cycle atomicityTimeout;
    unsigned payloadMax; // words
    std::uint64_t seed;
};

std::string
paramName(const ::testing::TestParamInfo<StormParams> &info)
{
    const StormParams &p = info.param;
    return "n" + std::to_string(p.nodes) + "_m" +
           std::to_string(p.messagesPerNode) + "_skew" +
           std::to_string(int(p.skew * 100)) + "_q" +
           std::to_string(p.quantum) + "_to" +
           std::to_string(p.atomicityTimeout) + "_s" +
           std::to_string(p.seed);
}

struct StormState
{
    // received[dst][src] = payload sequence numbers, in arrival order.
    std::vector<std::map<NodeId, std::vector<Word>>> received;
    std::vector<bool> atomicViolation;
    std::vector<bool> gidViolation;
    int done = 0;
};

CoTask<void>
stormMain(Process &p, unsigned nnodes, const StormParams prm,
          StormState *st)
{
    rt::CondVar cv(p.threads());
    Rng rng(prm.seed ^ (0x1234567ull * (p.node() + 1)));
    const NodeId me = p.node();
    const Gid my_gid = p.gid();

    p.port().setHandler(
        0,
        [st, me, my_gid, &p](core::UdmPort &port,
                             NodeId src) -> CoTask<void> {
            // Atomicity invariant: in fast mode the handler runs in
            // an atomic section. In buffered mode, handling by the
            // *drain thread* is deferred across user atomic sections
            // (the gate); the gate may legitimately be set while the
            // gated context itself — a resumed upcall that owns the
            // suspended atomic section — extracts its message.
            if (!port.buffered() && !port.atomicityOn())
                st->atomicViolation[me] = true;
            if (p.atomicGate && p.drainThread &&
                p.threads().current() == p.drainThread) {
                st->atomicViolation[me] = true;
            }
            // Protection invariant: the message matched our GID.
            if (port.ni().divert() == false &&
                port.ni().head() != nullptr &&
                port.ni().head()->gid != my_gid) {
                st->gidViolation[me] = true;
            }
            const Word seq = co_await port.read(0);
            co_await port.dispose();
            st->received[me][src].push_back(seq);
        });

    // Random mixture of sends, computes, and atomic sections.
    std::vector<Word> next_seq(nnodes, 0);
    for (unsigned i = 0; i < prm.messagesPerNode; ++i) {
        const unsigned action = rng.uniform(0, 9);
        if (action < 7) {
            NodeId dst =
                static_cast<NodeId>(rng.uniform(0, nnodes - 2));
            if (dst >= me)
                ++dst;
            std::vector<Word> payload;
            payload.push_back(next_seq[dst]++);
            for (unsigned w = 1; w < 1 + rng.uniform(0, prm.payloadMax);
                 ++w)
                payload.push_back(static_cast<Word>(rng.next()));
            co_await p.port().send(dst, 0, std::move(payload));
        } else if (action < 9) {
            co_await p.compute(rng.uniform(10, 800));
        } else {
            // Hold an atomic section; possibly long enough to trip
            // the revocation timer.
            co_await p.port().beginAtomic();
            co_await p.compute(rng.uniform(50, 3000));
            co_await p.port().endAtomic();
        }
    }
    ++st->done;
    // Stay alive until everyone finished so late messages can land.
    while (st->done < static_cast<int>(nnodes))
        co_await p.compute(2000);
}

struct StormResult
{
    StormState state;
    double buffered = 0;
    double timeouts = 0;
    Cycle runtime = 0;
    bool completed = false;
};

StormResult
runStorm(const StormParams &prm)
{
    StormResult out;
    out.state.received.resize(prm.nodes);
    out.state.atomicViolation.assign(prm.nodes, false);
    out.state.gidViolation.assign(prm.nodes, false);

    MachineConfig cfg;
    cfg.nodes = prm.nodes;
    cfg.seed = prm.seed;
    cfg.ni.atomicityTimeout = prm.atomicityTimeout;
    Machine m(cfg);
    StormState *st = &out.state;
    Job *job = m.addJob("storm", [prm, st](Process &p) {
        return stormMain(p, prm.nodes, prm, st);
    });
    m.addJob("null", apps::makeNullApp());
    GangConfig g;
    g.quantum = prm.quantum;
    g.skew = prm.skew;
    m.startGang(g);
    out.completed = m.runUntilDone(job, 30000000000ull);
    out.runtime = m.now();
    for (auto *proc : job->procs) {
        out.buffered += proc->stats.bufferedDelivered.value();
    }
    for (auto &n : m.nodes)
        out.timeouts += n.ni.stats.atomicityTimeouts.value();
    return out;
}

class StormTest : public ::testing::TestWithParam<StormParams>
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

TEST_P(StormTest, ExactlyOnceInOrderProtectedAndLive)
{
    const StormParams prm = GetParam();
    StormResult r = runStorm(prm);
    ASSERT_TRUE(r.completed) << "storm did not drain (deadlock?)";

    // Exactly-once, in-order: every (src,dst) stream is 0,1,2,...
    std::uint64_t total = 0;
    for (unsigned dst = 0; dst < prm.nodes; ++dst) {
        for (const auto &[src, seqs] : r.state.received[dst]) {
            for (std::size_t i = 0; i < seqs.size(); ++i)
                ASSERT_EQ(seqs[i], i)
                    << "stream " << src << "->" << dst;
            total += seqs.size();
        }
        EXPECT_FALSE(r.state.atomicViolation[dst])
            << "handler ran inside an atomic section on node " << dst;
        EXPECT_FALSE(r.state.gidViolation[dst])
            << "cross-GID message observed on node " << dst;
    }
    EXPECT_GT(total, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, StormTest,
    ::testing::Values(
        StormParams{2, 150, 0.0, 20000, 4000, 4, 1},
        StormParams{4, 120, 0.2, 15000, 4000, 6, 2},
        StormParams{4, 120, 0.4, 15000, 800, 6, 3},
        StormParams{8, 80, 0.3, 10000, 2000, 8, 4},
        StormParams{8, 80, 0.5, 8000, 500, 2, 5},
        StormParams{3, 200, 0.1, 5000, 1500, 10, 6},
        StormParams{6, 100, 0.45, 12000, 1000, 5, 7},
        StormParams{8, 60, 0.25, 25000, 8000, 12, 8}),
    paramName);

TEST(StormDeterminism, SameSeedSameOutcome)
{
    detail::setThrowOnError(true);
    StormParams prm{4, 100, 0.3, 12000, 2000, 6, 42};
    StormResult a = runStorm(prm);
    StormResult b = runStorm(prm);
    ASSERT_TRUE(a.completed && b.completed);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.buffered, b.buffered);
    EXPECT_EQ(a.timeouts, b.timeouts);
    for (unsigned n = 0; n < prm.nodes; ++n)
        EXPECT_EQ(a.state.received[n], b.state.received[n]);
    detail::setThrowOnError(false);
}

TEST(StormCoverage, AdverseParamsExerciseBufferedPathAndRevocation)
{
    detail::setThrowOnError(true);
    StormParams prm{4, 200, 0.4, 8000, 600, 4, 9};
    StormResult r = runStorm(prm);
    ASSERT_TRUE(r.completed);
    // The sweep must actually reach the mechanisms under test.
    EXPECT_GT(r.buffered, 0.0);
    EXPECT_GT(r.timeouts, 0.0);
    detail::setThrowOnError(false);
}

} // namespace
