/**
 * @file
 * Fault-injection tests: every fault class survives a transition
 * storm with zero invariant violations, the injector is off by
 * default and inert at zero rates, and a faulted run is bit-for-bit
 * deterministic — same seed, same stats, same trace bytes —
 * whatever FUGU_THREADS is set to.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/common.hh"
#include "core/arch.hh"
#include "glaze/machine.hh"
#include "harness/experiment.hh"
#include "sim/fault.hh"

using namespace fugu;
using namespace fugu::glaze;
using harness::RunStats;

namespace
{

/** Enable one named fault class at a storm-level rate. */
void
applyClass(sim::FaultConfig &f, const std::string &cls)
{
    f.enabled = true;
    if (cls == "jitter") {
        f.delayJitterProb = 0.3;
    } else if (cls == "inqfull") {
        f.inputFullProb = 0.05;
    } else if (cls == "outqfull") {
        f.outputFullProb = 0.3;
    } else if (cls == "framedeny") {
        f.frameDenyProb = 0.2;
    } else if (cls == "divert") {
        f.divertStormProb = 0.5;
    } else if (cls == "timeout") {
        f.atomTimeoutProb = 0.5;
    } else if (cls == "pagefault") {
        f.pageFaultProb = 0.1;
    } else if (cls == "mixed") {
        f.delayJitterProb = 0.1;
        f.inputFullProb = 0.02;
        f.outputFullProb = 0.1;
        f.frameDenyProb = 0.05;
        f.divertStormProb = 0.15;
        f.atomTimeoutProb = 0.15;
        f.pageFaultProb = 0.03;
    } else {
        FAIL() << "unknown class " << cls;
    }
}

/** The stress.cfg shape in miniature: barrier + null, skewed gang. */
MachineConfig
stormConfig(const std::string &cls)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    applyClass(cfg.fault, cls);
    return cfg;
}

RunStats
runStorm(const MachineConfig &cfg, unsigned trials = 1,
         const std::string &trace_path = "")
{
    harness::Workloads wl;
    wl.barrier.barriers = 300;
    GangConfig g;
    g.quantum = 20000;
    g.skew = 0.3;
    return harness::runTrials(cfg, wl.factory("barrier"),
                              /*with_null=*/true, /*gang=*/true, g,
                              trials, 100000000000ull, trace_path);
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
}

class FaultStormTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FaultStormTest, SurvivesStormWithZeroViolations)
{
    const RunStats r = runStorm(stormConfig(GetParam()));
    ASSERT_TRUE(r.completed) << GetParam() << " wedged the machine";
    EXPECT_EQ(r.violations, 0.0) << GetParam();
    // The storm must actually exercise the mechanism it targets.
    EXPECT_GT(r.faultEvents, 0.0) << GetParam();
}

TEST_P(FaultStormTest, SameSeedIsBitIdentical)
{
    const MachineConfig cfg = stormConfig(GetParam());
    const RunStats a = runStorm(cfg);
    const RunStats b = runStorm(cfg);
    EXPECT_TRUE(a == b) << GetParam()
                        << ": faulted run is not reproducible";
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, FaultStormTest,
    ::testing::Values("jitter", "inqfull", "outqfull", "framedeny",
                      "divert", "timeout", "pagefault", "mixed"),
    [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// Atomicity-timeout revocation vs squatters (glaze/kernel.cc)
// ---------------------------------------------------------------------

/**
 * A tenant that arms the user-settable timer-force UAC bit and never
 * opens (or closes) an atomic section, while doing real barrier
 * traffic. The atomicity timer then expires repeatedly with
 * interrupt-disable clear; each expiry must revoke into plain
 * buffered mode, not raise the atomicity gate — there is no atomic
 * section, so no endAtomic trap will ever come to clear it. Pre-fix,
 * onAtomicityTimeout committed from_atomic unconditionally and the
 * first expiry wedged the process's drain forever.
 */
glaze::AppBody
makeTimerForceSquatter(unsigned nnodes, unsigned barriers)
{
    return [=](glaze::Process &p) -> exec::CoTask<void> {
        auto &e = apps::env(p, nnodes);
        p.port().ni().beginAtom(core::kUacTimerForce);
        for (unsigned i = 0; i < barriers; ++i) {
            co_await p.compute(400);
            co_await e.barrier.wait();
        }
    };
}

/**
 * A tenant that re-arms physical atomicity back to back, holding each
 * section past the timeout preset so revocation keeps firing, with a
 * timeout storm layered on top to land stale interrupts in the
 * modeTransition window.
 */
glaze::AppBody
makeAtomicSquatter(unsigned nnodes, unsigned barriers)
{
    return [=](glaze::Process &p) -> exec::CoTask<void> {
        auto &e = apps::env(p, nnodes);
        for (unsigned i = 0; i < barriers; ++i) {
            co_await p.port().beginAtomic();
            co_await p.compute(3000); // > the timeout preset below
            co_await p.port().endAtomic();
            co_await e.barrier.wait();
        }
    };
}

TEST(AtomicityTest, TimerForceSquatterCannotWedgeTheDrain)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    // Every dispose restarts the timer with a fresh preset, so the
    // preset must be shorter than the squatter's compute leg for the
    // forced timer to actually expire between barrier rounds.
    cfg.ni.atomicityTimeout = 250;
    const RunStats r = harness::runJob(
        cfg,
        [](unsigned n, std::uint64_t) {
            return makeTimerForceSquatter(n, 80);
        },
        /*with_null=*/false, /*gang=*/false, {},
        /*max_cycles=*/200000000ull);
    ASSERT_TRUE(r.completed)
        << "timer-force squatter wedged its own drain";
    EXPECT_EQ(r.violations, 0.0);
    // The squat must actually fire the timer (else the test is inert).
    EXPECT_GT(r.atomicityTimeouts, 0.0);
}

TEST(AtomicityTest, TimeoutStormAgainstAtomicitySquatter)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    cfg.ni.atomicityTimeout = 1000;
    cfg.fault.enabled = true;
    cfg.fault.atomTimeoutProb = 0.5;
    cfg.fault.divertStormProb = 0.3;
    const auto factory = [](unsigned n, std::uint64_t) {
        return makeAtomicSquatter(n, 60);
    };
    const RunStats r = harness::runJob(cfg, factory,
                                       /*with_null=*/true,
                                       /*gang=*/true, {},
                                       /*max_cycles=*/400000000ull);
    ASSERT_TRUE(r.completed) << "squatter + storm wedged the machine";
    EXPECT_EQ(r.violations, 0.0);
    EXPECT_GT(r.atomicityTimeouts, 0.0);
    const RunStats replay = harness::runJob(cfg, factory, true, true,
                                            {}, 400000000ull);
    EXPECT_TRUE(r == replay);
}

TEST(FaultTest, DisabledByDefaultInjectsNothing)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    const RunStats r = runStorm(cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.faultEvents, 0.0);
    EXPECT_EQ(r.violations, 0.0);
}

TEST(FaultTest, EnabledWithZeroRatesMatchesDisabled)
{
    // fault.enabled with every probability at 0 must not perturb the
    // simulation: zero-rate classes draw no randomness and inject
    // nothing, so the timeline is the baseline's.
    MachineConfig base;
    base.nodes = 4;
    base.seed = 11;
    MachineConfig armed = base;
    armed.fault.enabled = true;
    const RunStats a = runStorm(base);
    const RunStats b = runStorm(armed);
    EXPECT_EQ(b.faultEvents, 0.0);
    EXPECT_TRUE(a == b);
}

TEST(FaultTest, ExplicitFaultSeedDecouplesFromMachineSeed)
{
    // Same machine seed, different fault seeds: the injected streams
    // must differ (else fault.seed is dead weight).
    MachineConfig a = stormConfig("mixed");
    a.fault.seed = 1;
    MachineConfig b = a;
    b.fault.seed = 2;
    const RunStats ra = runStorm(a);
    const RunStats rb = runStorm(b);
    EXPECT_EQ(ra.violations, 0.0);
    EXPECT_EQ(rb.violations, 0.0);
    EXPECT_FALSE(ra == rb);
}

TEST(FaultTest, StormIndependentOfWorkerThreads)
{
    const char *saved = std::getenv("FUGU_THREADS");
    const std::string saved_val = saved ? saved : "";

    const MachineConfig cfg = stormConfig("mixed");
    const std::string p1 = testing::TempDir() + "fault_threads1.trace";
    const std::string p4 = testing::TempDir() + "fault_threads4.trace";
    ::setenv("FUGU_THREADS", "1", 1);
    const RunStats r1 = runStorm(cfg, /*trials=*/2, p1);
    ::setenv("FUGU_THREADS", "4", 1);
    const RunStats r4 = runStorm(cfg, /*trials=*/2, p4);
    if (saved)
        ::setenv("FUGU_THREADS", saved_val.c_str(), 1);
    else
        ::unsetenv("FUGU_THREADS");

    ASSERT_TRUE(r1.completed);
    EXPECT_TRUE(r1 == r4) << "faulted stats depend on FUGU_THREADS";
    EXPECT_EQ(readFile(p1), readFile(p4))
        << "faulted trace bytes depend on FUGU_THREADS";
    std::remove(p1.c_str());
    std::remove((p1 + ".json").c_str());
    std::remove(p4.c_str());
    std::remove((p4 + ".json").c_str());
}

} // namespace
