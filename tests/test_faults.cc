/**
 * @file
 * Fault-injection tests: every fault class survives a transition
 * storm with zero invariant violations, the injector is off by
 * default and inert at zero rates, and a faulted run is bit-for-bit
 * deterministic — same seed, same stats, same trace bytes —
 * whatever FUGU_THREADS is set to.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "glaze/machine.hh"
#include "harness/experiment.hh"
#include "sim/fault.hh"

using namespace fugu;
using namespace fugu::glaze;
using harness::RunStats;

namespace
{

/** Enable one named fault class at a storm-level rate. */
void
applyClass(sim::FaultConfig &f, const std::string &cls)
{
    f.enabled = true;
    if (cls == "jitter") {
        f.delayJitterProb = 0.3;
    } else if (cls == "inqfull") {
        f.inputFullProb = 0.05;
    } else if (cls == "outqfull") {
        f.outputFullProb = 0.3;
    } else if (cls == "framedeny") {
        f.frameDenyProb = 0.2;
    } else if (cls == "divert") {
        f.divertStormProb = 0.5;
    } else if (cls == "timeout") {
        f.atomTimeoutProb = 0.5;
    } else if (cls == "pagefault") {
        f.pageFaultProb = 0.1;
    } else if (cls == "mixed") {
        f.delayJitterProb = 0.1;
        f.inputFullProb = 0.02;
        f.outputFullProb = 0.1;
        f.frameDenyProb = 0.05;
        f.divertStormProb = 0.15;
        f.atomTimeoutProb = 0.15;
        f.pageFaultProb = 0.03;
    } else {
        FAIL() << "unknown class " << cls;
    }
}

/** The stress.cfg shape in miniature: barrier + null, skewed gang. */
MachineConfig
stormConfig(const std::string &cls)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    applyClass(cfg.fault, cls);
    return cfg;
}

RunStats
runStorm(const MachineConfig &cfg, unsigned trials = 1,
         const std::string &trace_path = "")
{
    harness::Workloads wl;
    wl.barrier.barriers = 300;
    GangConfig g;
    g.quantum = 20000;
    g.skew = 0.3;
    return harness::runTrials(cfg, wl.factory("barrier"),
                              /*with_null=*/true, /*gang=*/true, g,
                              trials, 100000000000ull, trace_path);
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
}

class FaultStormTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FaultStormTest, SurvivesStormWithZeroViolations)
{
    const RunStats r = runStorm(stormConfig(GetParam()));
    ASSERT_TRUE(r.completed) << GetParam() << " wedged the machine";
    EXPECT_EQ(r.violations, 0.0) << GetParam();
    // The storm must actually exercise the mechanism it targets.
    EXPECT_GT(r.faultEvents, 0.0) << GetParam();
}

TEST_P(FaultStormTest, SameSeedIsBitIdentical)
{
    const MachineConfig cfg = stormConfig(GetParam());
    const RunStats a = runStorm(cfg);
    const RunStats b = runStorm(cfg);
    EXPECT_TRUE(a == b) << GetParam()
                        << ": faulted run is not reproducible";
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, FaultStormTest,
    ::testing::Values("jitter", "inqfull", "outqfull", "framedeny",
                      "divert", "timeout", "pagefault", "mixed"),
    [](const auto &info) { return info.param; });

TEST(FaultTest, DisabledByDefaultInjectsNothing)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    const RunStats r = runStorm(cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.faultEvents, 0.0);
    EXPECT_EQ(r.violations, 0.0);
}

TEST(FaultTest, EnabledWithZeroRatesMatchesDisabled)
{
    // fault.enabled with every probability at 0 must not perturb the
    // simulation: zero-rate classes draw no randomness and inject
    // nothing, so the timeline is the baseline's.
    MachineConfig base;
    base.nodes = 4;
    base.seed = 11;
    MachineConfig armed = base;
    armed.fault.enabled = true;
    const RunStats a = runStorm(base);
    const RunStats b = runStorm(armed);
    EXPECT_EQ(b.faultEvents, 0.0);
    EXPECT_TRUE(a == b);
}

TEST(FaultTest, ExplicitFaultSeedDecouplesFromMachineSeed)
{
    // Same machine seed, different fault seeds: the injected streams
    // must differ (else fault.seed is dead weight).
    MachineConfig a = stormConfig("mixed");
    a.fault.seed = 1;
    MachineConfig b = a;
    b.fault.seed = 2;
    const RunStats ra = runStorm(a);
    const RunStats rb = runStorm(b);
    EXPECT_EQ(ra.violations, 0.0);
    EXPECT_EQ(rb.violations, 0.0);
    EXPECT_FALSE(ra == rb);
}

TEST(FaultTest, StormIndependentOfWorkerThreads)
{
    const char *saved = std::getenv("FUGU_THREADS");
    const std::string saved_val = saved ? saved : "";

    const MachineConfig cfg = stormConfig("mixed");
    const std::string p1 = testing::TempDir() + "fault_threads1.trace";
    const std::string p4 = testing::TempDir() + "fault_threads4.trace";
    ::setenv("FUGU_THREADS", "1", 1);
    const RunStats r1 = runStorm(cfg, /*trials=*/2, p1);
    ::setenv("FUGU_THREADS", "4", 1);
    const RunStats r4 = runStorm(cfg, /*trials=*/2, p4);
    if (saved)
        ::setenv("FUGU_THREADS", saved_val.c_str(), 1);
    else
        ::unsetenv("FUGU_THREADS");

    ASSERT_TRUE(r1.completed);
    EXPECT_TRUE(r1 == r4) << "faulted stats depend on FUGU_THREADS";
    EXPECT_EQ(readFile(p1), readFile(p4))
        << "faulted trace bytes depend on FUGU_THREADS";
    std::remove(p1.c_str());
    std::remove((p1 + ".json").c_str());
    std::remove(p4.c_str());
    std::remove((p4 + ".json").c_str());
}

} // namespace
