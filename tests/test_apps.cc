/**
 * @file
 * Workload tests: algorithmic correctness (enum vs a sequential
 * reference, LU residual), completion, message accounting, and
 * correctness under adverse multiprogrammed scheduling.
 */

#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

#include "apps/triangle.hh"
#include "apps/workloads.hh"
#include "glaze/machine.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::glaze;
using namespace fugu::apps;

namespace
{

struct AppsTest : ::testing::Test
{
    AppsTest() { detail::setThrowOnError(true); }
    ~AppsTest() override { detail::setThrowOnError(false); }
};

/** Host-side sequential reference for the triangle puzzle. */
void
sequentialEnum(unsigned side, std::uint64_t *states,
               std::uint64_t *solutions)
{
    TriangleBoard board(side);
    std::unordered_set<Word> visited;
    std::deque<Word> work{board.initialState()};
    std::uint64_t sols = 0;
    while (!work.empty()) {
        const Word s = work.front();
        work.pop_front();
        if (!visited.insert(s).second)
            continue;
        if (std::popcount(s) == 1)
            ++sols;
        for (const auto &mv : board.moves()) {
            if (board.legal(s, mv)) {
                const Word child = board.apply(s, mv);
                if (!visited.count(child))
                    work.push_back(child);
            }
        }
    }
    *states = visited.size();
    *solutions = sols;
}

TEST_F(AppsTest, EnumMatchesSequentialReference)
{
    std::uint64_t ref_states = 0, ref_solutions = 0;
    sequentialEnum(4, &ref_states, &ref_solutions);
    ASSERT_GT(ref_states, 10u);

    MachineConfig cfg;
    cfg.nodes = 4;
    Machine m(cfg);
    EnumAppConfig ecfg;
    ecfg.side = 4;
    EnumResult result;
    Job *job = m.addJob("enum", makeEnumApp(4, ecfg, &result));
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job, 1000000000ull));
    EXPECT_EQ(result.statesVisited, ref_states);
    EXPECT_EQ(result.solutions, ref_solutions);
}

TEST_F(AppsTest, EnumSide5MatchesReference)
{
    std::uint64_t ref_states = 0, ref_solutions = 0;
    sequentialEnum(5, &ref_states, &ref_solutions);

    MachineConfig cfg;
    cfg.nodes = 8;
    Machine m(cfg);
    EnumAppConfig ecfg;
    ecfg.side = 5;
    EnumResult result;
    Job *job = m.addJob("enum", makeEnumApp(8, ecfg, &result));
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job, 4000000000ull));
    EXPECT_EQ(result.statesVisited, ref_states);
    EXPECT_EQ(result.solutions, ref_solutions);
}

TEST_F(AppsTest, LuFactorizationIsCorrect)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    Machine m(cfg);
    LuAppConfig lcfg;
    lcfg.n = 64;
    lcfg.blockSize = 8;
    LuResult result;
    result.maxResidual = 1e9;
    Job *job = m.addJob("lu", makeLuApp(4, lcfg, &result));
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job, 2000000000ull));
    EXPECT_LT(result.maxResidual, 1e-6);
}

TEST_F(AppsTest, LuCorrectUnderSkewedMultiprogramming)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 21;
    Machine m(cfg);
    LuAppConfig lcfg;
    lcfg.n = 48;
    lcfg.blockSize = 8;
    LuResult result;
    result.maxResidual = 1e9;
    Job *job = m.addJob("lu", makeLuApp(4, lcfg, &result));
    m.addJob("null", makeNullApp());
    GangConfig g;
    g.quantum = 30000;
    g.skew = 0.3;
    m.startGang(g);
    ASSERT_TRUE(m.runUntilDone(job, 4000000000ull));
    EXPECT_LT(result.maxResidual, 1e-6);
    double buffered = 0;
    for (auto *proc : job->procs)
        buffered += proc->stats.bufferedDelivered.value();
    EXPECT_GE(buffered, 1.0);
}

TEST_F(AppsTest, BarrierAppMessageCountMatchesDissemination)
{
    MachineConfig cfg;
    cfg.nodes = 8;
    Machine m(cfg);
    BarrierAppConfig bcfg;
    bcfg.barriers = 100;
    Job *job = m.addJob("barrier", makeBarrierApp(8, bcfg));
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job, 1000000000ull));
    // Dissemination barrier: n * ceil(log2 n) messages per episode.
    double sent = 0;
    for (auto *proc : job->procs)
        sent += proc->stats.sent.value();
    EXPECT_DOUBLE_EQ(sent, 100.0 * 8 * 3);
}

TEST_F(AppsTest, SynthCompletesWithBalancedTraffic)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    Machine m(cfg);
    SynthAppConfig scfg;
    scfg.n = 10;
    scfg.groups = 5;
    scfg.tBetween = 300;
    Job *job = m.addJob("synth", makeSynthApp(4, scfg));
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job, 1000000000ull));
    // Every request earns exactly one reply.
    double sent = 0;
    for (auto *proc : job->procs)
        sent += proc->stats.sent.value();
    EXPECT_DOUBLE_EQ(sent, 2.0 * 4 * 10 * 5);
}

TEST_F(AppsTest, WaterRunsToCompletion)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    Machine m(cfg);
    WaterAppConfig wcfg;
    wcfg.molecules = 64;
    wcfg.iterations = 2;
    Job *job = m.addJob("water", makeWaterApp(4, wcfg));
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job, 2000000000ull));
    double sent = 0;
    for (auto *proc : job->procs)
        sent += proc->stats.sent.value();
    EXPECT_GT(sent, 0.0);
}

TEST_F(AppsTest, BarnesRunsToCompletion)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    Machine m(cfg);
    BarnesAppConfig bcfg;
    bcfg.bodies = 128;
    bcfg.iterations = 2;
    Job *job = m.addJob("barnes", makeBarnesApp(4, bcfg));
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job, 2000000000ull));
    double sent = 0;
    for (auto *proc : job->procs)
        sent += proc->stats.sent.value();
    EXPECT_GT(sent, 0.0);
}

TEST_F(AppsTest, WorkloadsAreDeterministic)
{
    auto run = [](std::vector<double> &out) {
        MachineConfig cfg;
        cfg.nodes = 4;
        cfg.seed = 33;
        Machine m(cfg);
        EnumAppConfig ecfg;
        ecfg.side = 4;
        Job *job = m.addJob("enum", makeEnumApp(4, ecfg, nullptr));
        m.addJob("null", makeNullApp());
        GangConfig g;
        g.quantum = 20000;
        g.skew = 0.25;
        m.startGang(g);
        ASSERT_TRUE(m.runUntilDone(job, 2000000000ull));
        out.push_back(static_cast<double>(m.now()));
        for (auto *proc : job->procs) {
            out.push_back(proc->stats.sent.value());
            out.push_back(proc->stats.directDelivered.value());
            out.push_back(proc->stats.bufferedDelivered.value());
        }
    };
    std::vector<double> a, b;
    run(a);
    run(b);
    EXPECT_EQ(a, b);
}

} // namespace
