/**
 * @file
 * Allocation test for the packet path: after warm-up, injecting a
 * message, carrying it across the fabric, delivering it to a sink,
 * and releasing the channel must not touch the global heap. The
 * inline payload (WordVec), the flat channel map, the RingDeque
 * arrival queues, the pooled arrival events and the intrusive
 * back-pressure waiters together leave nothing to allocate in steady
 * state.
 *
 * Same shape as test_event_alloc: counting operator new/delete, warm
 * up to high-water capacity, snapshot the counter, assert it holds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/network.hh"

namespace
{

std::atomic<std::uint64_t> g_newCalls{0};

} // namespace

void *
operator new(std::size_t n)
{
    ++g_newCalls;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    ++g_newCalls;
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(al),
                                     (n + static_cast<std::size_t>(al) -
                                      1) &
                                         ~(static_cast<std::size_t>(al) -
                                           1)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return ::operator new(n, al);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace fugu;
using namespace fugu::net;

/** Accepts everything; keeps only a delivery count. */
struct CountSink : NetSink
{
    std::uint64_t delivered = 0;

    bool
    tryDeliver(Packet &&) override
    {
        ++delivered;
        return true;
    }
};

struct PacketAllocTest : ::testing::Test
{
    static constexpr unsigned kNodes = 8;

    PacketAllocTest()
        : stats("t"), net(eq, NetworkConfig{}, "net", &stats)
    {
        for (NodeId n = 0; n < kNodes; ++n)
            net.attach(n, &sinks[n]);
    }

    Packet
    mkPkt(NodeId src, NodeId dst, unsigned payload_words)
    {
        Packet p;
        p.src = src;
        p.dst = dst;
        p.handler = 7;
        for (unsigned i = 0; i < payload_words; ++i)
            p.payload.push_back(i);
        return p;
    }

    /** One all-pairs round: every node sends to every other node. */
    void
    round(unsigned payload_words)
    {
        for (NodeId s = 0; s < kNodes; ++s)
            for (NodeId d = 0; d < kNodes; ++d) {
                while (!net.canAccept(s, d, 2 + payload_words))
                    eq.runOne();
                net.send(mkPkt(s, d, payload_words));
            }
        eq.run();
    }

    EventQueue eq;
    StatGroup stats;
    Network net;
    CountSink sinks[kNodes];
};

TEST_F(PacketAllocTest, SteadyStateDeliveryIsAllocationFree)
{
    // Warm-up: populate every (src,dst) channel, grow the channel
    // map, the arrival rings and the event pools to their high-water
    // marks — including max-size payloads. The calendar queue's near
    // band is a 1024-bucket ring whose per-bucket vectors keep their
    // capacity once grown but start empty, so warm-up must keep going
    // until every bucket phase the traffic pattern touches has been
    // seen at full occupancy: run rounds until a long quiet streak.
    int quiet = 0;
    for (int r = 0; quiet < 512 && r < 50000; ++r) {
        const std::uint64_t b = g_newCalls.load();
        round(kMaxPayloadWords);
        quiet = g_newCalls.load() == b ? quiet + 1 : 0;
    }
    ASSERT_EQ(quiet, 512) << "packet path never reached an "
                            "allocation-free steady state";
    const std::uint64_t before_count = sinks[0].delivered;
    ASSERT_GT(before_count, 0u);

    const std::uint64_t before = g_newCalls.load();
    for (int r = 0; r < 256; ++r)
        round(kMaxPayloadWords);
    EXPECT_EQ(g_newCalls.load(), before)
        << "packet path allocated in steady state";
    EXPECT_GT(sinks[0].delivered, before_count);
}

TEST_F(PacketAllocTest, BackPressureWakeupIsAllocationFree)
{
    // Saturate one channel so sends block, then drain it: the
    // intrusive space waiter must link, fire and unlink without
    // touching the heap.
    struct Waiter : SpaceWaiter
    {
        int fired = 0;
        void onSpaceAvailable() override { ++fired; }
    } waiter;

    auto saturate = [&] {
        unsigned sent = 0;
        while (net.canAccept(0, 1, kMaxMessageWords)) {
            net.send(mkPkt(0, 1, kMaxPayloadWords));
            ++sent;
        }
        return sent;
    };

    // Warm-up until the saturate/subscribe/drain cycle stops touching
    // the heap (ring buckets reach steady-state capacity, see above).
    auto cycle = [&] {
        saturate();
        net.subscribeSpace(0, 1, &waiter);
        eq.run();
    };
    int quiet = 0;
    for (int r = 0; quiet < 512 && r < 50000; ++r) {
        const std::uint64_t b = g_newCalls.load();
        cycle();
        quiet = g_newCalls.load() == b ? quiet + 1 : 0;
    }
    ASSERT_EQ(quiet, 512) << "back-pressure path never reached an "
                            "allocation-free steady state";
    ASSERT_GE(waiter.fired, 1);

    const int fired_before = waiter.fired;
    const std::uint64_t before = g_newCalls.load();
    for (int r = 0; r < 256; ++r)
        cycle();
    EXPECT_EQ(g_newCalls.load(), before)
        << "back-pressure wakeup allocated in steady state";
    EXPECT_GE(waiter.fired, fired_before + 256);
}

} // namespace
