/**
 * @file
 * Parallel (bound-weave) engine tests: machine.par_shards=1 stays the
 * bit-exact serial oracle, a fixed shard count is deterministic
 * whatever FUGU_THREADS is, the parallel engine agrees with the
 * serial one on everything the application semantically produced,
 * fault storms survive sharding with zero invariant violations, and
 * the lookahead derivation/clamping behaves as documented.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "glaze/machine.hh"
#include "harness/experiment.hh"
#include "sim/shard.hh"

using namespace fugu;
using namespace fugu::glaze;
using harness::RunStats;

namespace
{

MachineConfig
meshConfig(unsigned nodes, unsigned shards)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.parShards = shards;
    cfg.seed = 7;
    return cfg;
}

/** One synth-app run; the workload every acceptance number uses. */
RunStats
runSynth(const MachineConfig &cfg)
{
    harness::Workloads wl;
    wl.synth.groups = cfg.nodes / 2;
    return harness::runJob(cfg, wl.factory("synth"),
                           /*with_null=*/false, /*gang=*/false, {});
}

/** The test_faults storm shape, but on a shardable machine. */
RunStats
runStorm(const MachineConfig &cfg)
{
    harness::Workloads wl;
    wl.barrier.barriers = 200;
    GangConfig g;
    g.quantum = 20000;
    g.skew = 0.3;
    return harness::runJob(cfg, wl.factory("barrier"),
                           /*with_null=*/true, /*gang=*/true, g);
}

/** Scoped FUGU_THREADS override (the pool reads it per machine). */
class ThreadsEnv
{
  public:
    explicit ThreadsEnv(const char *v)
    {
        const char *old = std::getenv("FUGU_THREADS");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        setenv("FUGU_THREADS", v, 1);
    }
    ~ThreadsEnv()
    {
        if (had_)
            setenv("FUGU_THREADS", old_.c_str(), 1);
        else
            unsetenv("FUGU_THREADS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

TEST(ShardMapTest, PartitionIsContiguousAndComplete)
{
    for (unsigned nodes : {4u, 17u, 1024u, 4096u}) {
        for (unsigned shards : {1u, 2u, 3u, 8u}) {
            if (shards > nodes)
                continue;
            const sim::ShardMap map{nodes, shards};
            unsigned prev = 0;
            for (NodeId n = 0; n < nodes; ++n) {
                const unsigned s = map.of(n);
                ASSERT_LT(s, shards);
                ASSERT_GE(s, prev) << "shards not contiguous";
                if (s != prev) {
                    EXPECT_EQ(map.firstNode(s), n);
                }
                prev = s;
            }
            EXPECT_EQ(map.of(nodes - 1), shards - 1)
                << "last shard empty";
            EXPECT_EQ(map.firstNode(0), 0u);
        }
    }
}

TEST(ParallelEngineTest, SerialConfigStaysSerial)
{
    Machine m(meshConfig(8, 1));
    EXPECT_EQ(m.shardCount(), 1u);
}

TEST(ParallelEngineTest, ShardCountClampsToNodes)
{
    Machine m(meshConfig(4, 64));
    EXPECT_EQ(m.shardCount(), 4u);
}

TEST(ParallelEngineTest, LookaheadDerivedFromMinLatency)
{
    // Derivation and clamping agree: an absurdly large explicit
    // lookahead clamps to exactly the derived minimum, and an
    // explicit 1 is honoured (shorter phases are always safe).
    MachineConfig cfg = meshConfig(8, 4);
    const Cycle derived = Machine(cfg).lookahead();
    EXPECT_GE(derived, 1u);

    cfg.lookahead = 1000000000;
    EXPECT_EQ(Machine(cfg).lookahead(), derived);

    cfg.lookahead = 1;
    EXPECT_EQ(Machine(cfg).lookahead(), 1u);
}

TEST(ParallelEngineTest, OneShardReplayIsBitExact)
{
    // The serial oracle: par_shards=1 must be reproducible down to
    // the engine's event count, not just the semantic stats.
    const MachineConfig cfg = meshConfig(16, 1);
    const RunStats a = runSynth(cfg);
    const RunStats b = runSynth(cfg);
    ASSERT_TRUE(a.completed);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.events, b.events);
}

TEST(ParallelEngineTest, FixedShardCountIsDeterministic)
{
    const MachineConfig cfg = meshConfig(16, 4);
    const RunStats a = runSynth(cfg);
    const RunStats b = runSynth(cfg);
    ASSERT_TRUE(a.completed);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.events, b.events);
}

TEST(ParallelEngineTest, DeterministicAcrossThreadCounts)
{
    // The contract: results depend on machine.par_shards, never on
    // how many worker threads happen to execute the shards.
    const MachineConfig cfg = meshConfig(16, 4);
    RunStats serial, threaded;
    {
        ThreadsEnv env("1");
        serial = runSynth(cfg);
    }
    {
        ThreadsEnv env("4");
        threaded = runSynth(cfg);
    }
    ASSERT_TRUE(serial.completed);
    EXPECT_TRUE(serial == threaded);
    EXPECT_EQ(serial.events, threaded.events);
}

TEST(ParallelEngineTest, AgreesWithSerialOracleSemantics)
{
    // Cross-shard arrivals interleave differently than the serial
    // global order, so cycle-exact timing may drift — but everything
    // the application semantically produced must agree: completion,
    // message count, total deliveries, zero violations.
    const RunStats serial = runSynth(meshConfig(16, 1));
    const RunStats par = runSynth(meshConfig(16, 4));
    ASSERT_TRUE(serial.completed);
    ASSERT_TRUE(par.completed);
    EXPECT_EQ(serial.sent, par.sent);
    EXPECT_EQ(serial.direct + serial.buffered, par.direct + par.buffered);
    EXPECT_EQ(serial.violations, 0.0);
    EXPECT_EQ(par.violations, 0.0);
}

TEST(ParallelEngineTest, GangScheduledStormSurvivesSharding)
{
    // The stress.cfg shape — skewed gang, barrier vs null — on four
    // shards with a mixed fault storm: must complete with zero
    // invariant violations and actually fire faults.
    MachineConfig cfg = meshConfig(8, 4);
    cfg.seed = 11;
    cfg.fault.enabled = true;
    cfg.fault.delayJitterProb = 0.1;
    cfg.fault.inputFullProb = 0.02;
    cfg.fault.outputFullProb = 0.1;
    cfg.fault.frameDenyProb = 0.05;
    cfg.fault.divertStormProb = 0.15;
    cfg.fault.atomTimeoutProb = 0.15;
    cfg.fault.pageFaultProb = 0.03;
    const RunStats r = runStorm(cfg);
    ASSERT_TRUE(r.completed) << "storm wedged the sharded machine";
    EXPECT_EQ(r.violations, 0.0);
    EXPECT_GT(r.faultEvents, 0.0);

    const RunStats replay = runStorm(cfg);
    EXPECT_TRUE(r == replay) << "sharded storm is not reproducible";
    EXPECT_EQ(r.events, replay.events);
}

TEST(ParallelEngineTest, TracedParallelRunMergesDeterministically)
{
    MachineConfig cfg = meshConfig(16, 4);
    cfg.trace.enabled = true;
    const RunStats a = runSynth(cfg);
    const RunStats b = runSynth(cfg);
    ASSERT_TRUE(a.completed);
    EXPECT_TRUE(a == b);
}

TEST(ParallelEngineTest, FourKNodeMeshConstructsAndRuns)
{
    // The satellite-5 bounds audit in executable form: a 4096-node
    // machine (the largest mesh the scenarios exercise) constructs,
    // shards, and completes a small all-nodes workload.
    MachineConfig cfg = meshConfig(4096, 8);
    // Periodic conservation sweeps are O(nodes * processes); at 4096
    // nodes they dominate a short run, so sweep only at the end.
    cfg.check.sweepEvery = 0;
    harness::Workloads wl;
    wl.barrier.barriers = 2;
    const RunStats r =
        harness::runJob(cfg, wl.factory("barrier"),
                        /*with_null=*/false, /*gang=*/false, {});
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.violations, 0.0);
    EXPECT_GT(r.sent, 0u);
}

} // namespace
