/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace fugu;

namespace
{

TEST(StatsTest, ScalarAccumulates)
{
    StatGroup root("root");
    Scalar s(&root, "count", "a counter");
    s += 2;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.0);
    s.set(7);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, DistributionTracksMoments)
{
    StatGroup root("root");
    Distribution d(&root, "lat", "latency");
    d.sample(10);
    d.sample(30);
    d.sample(20);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 10.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 30.0);
}

TEST(StatsTest, EmptyDistributionIsZero)
{
    StatGroup root("root");
    Distribution d(&root, "lat", "latency");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 0.0);
}

TEST(StatsTest, PrintUsesHierarchicalNames)
{
    StatGroup root("machine");
    StatGroup child("node0", &root);
    Scalar s(&child, "msgs", "messages");
    s += 42;
    std::ostringstream os;
    root.print(os);
    EXPECT_NE(os.str().find("machine.node0.msgs 42"), std::string::npos);
}

TEST(StatsTest, ResetAllRecurses)
{
    StatGroup root("root");
    StatGroup child("c", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(StatsTest, ChildGroupMayBeDestroyedFirst)
{
    StatGroup root("root");
    {
        StatGroup child("c", &root);
        Scalar b(&child, "b", "");
        b += 2;
    }
    std::ostringstream os;
    root.print(os); // must not touch the destroyed child
    EXPECT_EQ(os.str().find("c.b"), std::string::npos);
}

} // namespace
