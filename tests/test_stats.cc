/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "sim/stats.hh"

using namespace fugu;

namespace
{

TEST(StatsTest, ScalarAccumulates)
{
    StatGroup root("root");
    Scalar s(&root, "count", "a counter");
    s += 2;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.0);
    s.set(7);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, DistributionTracksMoments)
{
    StatGroup root("root");
    Distribution d(&root, "lat", "latency");
    d.sample(10);
    d.sample(30);
    d.sample(20);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 10.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 30.0);
}

TEST(StatsTest, EmptyDistributionIsZero)
{
    StatGroup root("root");
    Distribution d(&root, "lat", "latency");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 0.0);
}

TEST(StatsTest, PrintUsesHierarchicalNames)
{
    StatGroup root("machine");
    StatGroup child("node0", &root);
    Scalar s(&child, "msgs", "messages");
    s += 42;
    std::ostringstream os;
    root.print(os);
    EXPECT_NE(os.str().find("machine.node0.msgs 42"), std::string::npos);
}

TEST(StatsTest, ResetAllRecurses)
{
    StatGroup root("root");
    StatGroup child("c", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(StatsTest, HistogramPercentilesBracketTheRank)
{
    StatGroup root("root");
    Histogram h(&root, "lat", "latency");
    for (int i = 1; i <= 1000; ++i)
        h.sample(i);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 1000.0);
    EXPECT_DOUBLE_EQ(h.mean(), 500.5);
    // Log-bucketed: a percentile reports its bucket's upper edge, so
    // it may overshoot the exact rank value by at most one sub-bucket
    // (25%) and never undershoots.
    const double p50 = h.percentile(50);
    EXPECT_GE(p50, 500.0);
    EXPECT_LE(p50, 625.0);
    // The tail is clamped to the exact observed max.
    EXPECT_DOUBLE_EQ(h.percentile(99), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(StatsTest, HistogramResetAndEmpty)
{
    StatGroup root("root");
    Histogram h(&root, "lat", "latency");
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    h.sample(42);
    EXPECT_DOUBLE_EQ(h.percentile(50), 42.0); // clamped to max
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
}

TEST(StatsTest, HistogramDegenerateSamplesStayFinite)
{
    // Regression: NaN used to fall through `v < 1.0` into a
    // float-to-uint64 cast (UB), and a single NaN sample poisoned
    // sum/min/max forever. +inf and values >= 2^64 hit the same
    // cast. All of these must land in a bucket and keep every
    // aggregate finite; UBSan in CI guards the cast itself.
    StatGroup root("root");
    Histogram h(&root, "lat", "latency");
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(std::numeric_limits<double>::infinity());
    h.sample(-std::numeric_limits<double>::infinity());
    h.sample(-5.0);
    h.sample(1e300);
    h.sample(0x1p64);
    h.sample(12.0);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_TRUE(std::isfinite(h.mean()));
    EXPECT_TRUE(std::isfinite(h.minValue()));
    EXPECT_TRUE(std::isfinite(h.maxValue()));
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0); // NaN/negatives clamp to 0
    EXPECT_DOUBLE_EQ(h.maxValue(), 0x1p63); // top clamp
    for (double p : {50.0, 95.0, 99.0, 100.0})
        EXPECT_TRUE(std::isfinite(h.percentile(p))) << p;
    // Ordinary samples still behave after the degenerate ones.
    h.sample(12.0);
    EXPECT_TRUE(std::isfinite(h.percentile(50)));
}

TEST(StatsTest, HistogramMergeEqualsConcatenation)
{
    // Merging two populations must yield exactly the histogram of
    // their concatenation — that is what lets runTrials fold
    // per-trial latency distributions without losing percentiles.
    HistogramData a, b, both;
    for (int i = 1; i <= 500; ++i) {
        a.sample(i);
        both.sample(i);
    }
    for (int i = 2000; i <= 2300; ++i) {
        b.sample(i);
        both.sample(i);
    }
    HistogramData merged = a;
    merged.merge(b);
    EXPECT_EQ(merged, both);
    EXPECT_EQ(merged.count, 801u);
    EXPECT_DOUBLE_EQ(merged.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(merged.maxValue(), 2300.0);
    for (double p : {50.0, 95.0, 99.0})
        EXPECT_DOUBLE_EQ(merged.percentile(p), both.percentile(p));
}

TEST(StatsTest, HistogramMergeEmptyCases)
{
    HistogramData a, empty;
    a.sample(7);
    HistogramData m = a;
    m.merge(empty); // no-op
    EXPECT_EQ(m, a);
    HistogramData e2;
    e2.merge(a); // into empty == copy
    EXPECT_EQ(e2, a);
    HistogramData e3;
    e3.merge(empty);
    EXPECT_EQ(e3.count, 0u);
    EXPECT_DOUBLE_EQ(e3.percentile(50), 0.0);
}

TEST(StatsTest, HistogramWrapperMergeMatchesData)
{
    StatGroup root("root");
    Histogram h(&root, "lat", "latency");
    Histogram g(&root, "lat2", "latency");
    h.sample(10);
    g.sample(1000);
    g.sample(3000);
    h.merge(g);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.maxValue(), 3000.0);
    Histogram h2(&root, "lat3", "latency");
    h2.sample(10);
    h2.merge(g.data());
    EXPECT_EQ(h2.data(), h.data());
}

TEST(StatsTest, ChildGroupMayBeDestroyedFirst)
{
    StatGroup root("root");
    {
        StatGroup child("c", &root);
        Scalar b(&child, "b", "");
        b += 2;
    }
    std::ostringstream os;
    root.print(os); // must not touch the destroyed child
    EXPECT_EQ(os.str().find("c.b"), std::string::npos);
}

} // namespace
