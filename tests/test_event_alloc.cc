/**
 * @file
 * Allocation tests for the event kernel: after warm-up, the
 * schedule/fire, schedule/cancel and reschedule hot paths must not
 * touch the global heap at all — pooled LambdaEvents, inline SmallFn
 * storage, and recycled slot/bucket/heap capacity cover steady state.
 *
 * The global operator new/delete are replaced with counting versions;
 * each test warms the queue up (growing pools and vector capacity),
 * snapshots the allocation counter, runs the steady-state loop, and
 * asserts the counter did not move.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/event.hh"

namespace
{

std::atomic<std::uint64_t> g_newCalls{0};

} // namespace

void *
operator new(std::size_t n)
{
    ++g_newCalls;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    ++g_newCalls;
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(al),
                                     (n + static_cast<std::size_t>(al) -
                                      1) &
                                         ~(static_cast<std::size_t>(al) -
                                           1)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return ::operator new(n, al);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace fugu;

/** Chained one-shot callable with a capture the size of a Packet. */
struct Chain
{
    EventQueue *eq;
    std::uint64_t *remaining;
    std::uint64_t pad[5];

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        eq->scheduleFn(*this, eq->now() + 1, "chain");
    }
};

TEST(EventAllocTest, ScheduleFireSteadyStateIsAllocationFree)
{
    EventQueue eq;
    // Warm-up grows the pools and every ring bucket's capacity: with
    // 64 in flight the clock moves one cycle per 64 events, so one
    // full wrap of the ring needs 64 * 1024 events.
    std::uint64_t remaining = 70000;
    for (unsigned i = 0; i < 64; ++i)
        eq.scheduleFn(Chain{&eq, &remaining, {}}, eq.now() + 1,
                      "chain");
    eq.run();
    ASSERT_EQ(remaining, 0u);

    remaining = 20000;
    for (unsigned i = 0; i < 64; ++i)
        eq.scheduleFn(Chain{&eq, &remaining, {}}, eq.now() + 1,
                      "chain");
    const std::uint64_t before = g_newCalls.load();
    eq.run();
    EXPECT_EQ(g_newCalls.load(), before)
        << "schedule/fire steady state allocated";
    EXPECT_EQ(remaining, 0u);
}

TEST(EventAllocTest, ScheduleCancelSteadyStateIsAllocationFree)
{
    EventQueue eq;
    std::vector<EventHandle> handles(256);
    int sink = 0;
    auto round = [&] {
        for (std::size_t i = 0; i < handles.size(); ++i)
            handles[i] = eq.scheduleFn([&sink] { ++sink; },
                                       eq.now() + 100 + i, "churn");
        for (const EventHandle &h : handles)
            eq.cancelFn(h);
    };
    for (int r = 0; r < 8; ++r) // warm-up
        round();
    const std::uint64_t before = g_newCalls.load();
    for (int r = 0; r < 64; ++r)
        round();
    EXPECT_EQ(g_newCalls.load(), before)
        << "schedule/cancel steady state allocated";
    eq.run();
    EXPECT_EQ(sink, 0);
}

TEST(EventAllocTest, RescheduleChurnSteadyStateIsAllocationFree)
{
    struct Nop : Event
    {
        Nop() : Event("nop") {}
        void process() override {}
    };

    EventQueue eq;
    std::vector<Nop> evs(16);
    // Warm-up: drives both the near band (small deltas) and the far
    // band (large deltas), triggering sweeps of each.
    for (std::uint64_t i = 0; i < 20000; ++i)
        eq.reschedule(&evs[i % evs.size()],
                      eq.now() + 1 + i % 3000);
    const std::uint64_t before = g_newCalls.load();
    for (std::uint64_t i = 0; i < 20000; ++i)
        eq.reschedule(&evs[i % evs.size()],
                      eq.now() + 1 + i % 3000);
    EXPECT_EQ(g_newCalls.load(), before)
        << "reschedule steady state allocated";
    for (auto &ev : evs)
        eq.deschedule(&ev);
    eq.run();
    EXPECT_TRUE(eq.empty());
}

} // namespace
