/**
 * @file
 * Tests for the unified scenario/config layer: parsing, precedence,
 * diagnostics, dump/parse round-trips, and bit-identical replay of a
 * run from its own --dump-config output.
 */

#include <gtest/gtest.h>

#include "glaze/machine.hh"
#include "harness/experiment.hh"
#include "sim/config.hh"

using namespace fugu;
using namespace fugu::sim;

namespace
{

/** One shared-registry walk over the given structs. */
void
bindAll(Binder &b, glaze::MachineConfig &machine,
        glaze::GangConfig &gang, harness::Workloads &wl)
{
    glaze::bindConfig(b, machine);
    glaze::bindConfig(b, gang);
    wl.bind(b);
}

std::string
dumpAll(Config &tree, glaze::MachineConfig &machine,
        glaze::GangConfig &gang, harness::Workloads &wl)
{
    Binder d(tree, Binder::Mode::Dump);
    bindAll(d, machine, gang, wl);
    EXPECT_TRUE(d.ok()) << d.error();
    return d.dumpText();
}

TEST(Config, ParsesSectionsCommentsAndValues)
{
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.loadString("# comment\n"
                                "machine.nodes = 16\n"
                                "\n"
                                "[gang]\n"
                                "quantum = 50000  \n"
                                "skew = 0.25\n"
                                "[net]\n"
                                "per_hop = 4\n",
                                "inline.cfg", &err))
        << err;
    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    Binder b(tree, Binder::Mode::Apply);
    bindAll(b, machine, gang, wl);
    ASSERT_TRUE(b.ok()) << b.error();
    EXPECT_TRUE(tree.checkUnknown(&err)) << err;
    EXPECT_EQ(machine.nodes, 16u);
    EXPECT_EQ(gang.quantum, 50000u);
    EXPECT_DOUBLE_EQ(gang.skew, 0.25);
    EXPECT_EQ(machine.net.perHop, 4u);
}

TEST(Config, PrecedenceCliBeatsFileBeatsDefault)
{
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.loadString("machine.nodes = 16\n"
                                "gang.quantum = 77\n",
                                "a.cfg", &err))
        << err;
    // A later file overrides an earlier one...
    ASSERT_TRUE(tree.loadString("machine.nodes = 32\n", "b.cfg", &err))
        << err;
    // ...and the CLI beats both, regardless of order.
    ASSERT_TRUE(tree.setCli("machine.nodes=64", &err)) << err;
    ASSERT_TRUE(tree.loadString("machine.nodes = 48\n", "c.cfg", &err))
        << err;

    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    Binder b(tree, Binder::Mode::Apply);
    bindAll(b, machine, gang, wl);
    ASSERT_TRUE(b.ok()) << b.error();
    EXPECT_EQ(machine.nodes, 64u);   // CLI
    EXPECT_EQ(gang.quantum, 77u);    // file
    EXPECT_EQ(gang.skew, 0.0);       // default
    EXPECT_TRUE(tree.explicitlySet("machine.nodes"));
    EXPECT_FALSE(tree.explicitlySet("gang.skew"));
}

TEST(Config, UnknownKeyNamesFileAndLine)
{
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.loadString("machine.nodes = 4\n"
                                "machine.nodez = 8\n",
                                "typo.cfg", &err))
        << err;
    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    Binder b(tree, Binder::Mode::Apply);
    bindAll(b, machine, gang, wl);
    ASSERT_TRUE(b.ok()) << b.error();
    EXPECT_FALSE(tree.checkUnknown(&err));
    EXPECT_NE(err.find("typo.cfg:2"), std::string::npos) << err;
    EXPECT_NE(err.find("machine.nodez"), std::string::npos) << err;
}

TEST(Config, TypeMismatchNamesOffender)
{
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.loadString("machine.nodes = lots\n", "bad.cfg",
                                &err))
        << err;
    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    Binder b(tree, Binder::Mode::Apply);
    bindAll(b, machine, gang, wl);
    EXPECT_FALSE(b.ok());
    EXPECT_NE(b.error().find("bad.cfg:1"), std::string::npos)
        << b.error();
    EXPECT_NE(b.error().find("machine.nodes"), std::string::npos)
        << b.error();
    EXPECT_NE(b.error().find("lots"), std::string::npos) << b.error();
}

TEST(Config, EnumAndBoolParsing)
{
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.loadString("machine.atomicity = soft\n"
                                "machine.always_buffered = yes\n"
                                "trace.enabled = 1\n",
                                "e.cfg", &err))
        << err;
    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    Binder b(tree, Binder::Mode::Apply);
    bindAll(b, machine, gang, wl);
    ASSERT_TRUE(b.ok()) << b.error();
    EXPECT_EQ(machine.atomicity, core::AtomicityMode::Soft);
    EXPECT_TRUE(machine.alwaysBuffered);
    EXPECT_TRUE(machine.trace.enabled);

    ASSERT_TRUE(tree.setCli("machine.atomicity=firm", &err)) << err;
    Binder b2(tree, Binder::Mode::Apply);
    bindAll(b2, machine, gang, wl);
    EXPECT_FALSE(b2.ok());
    EXPECT_NE(b2.error().find("kernel|hard|soft"), std::string::npos)
        << b2.error();
}

TEST(Config, BackendAcceptsKnownNamesRejectsUnknown)
{
    // The ablation axis: every backend name selects its kind, and a
    // typo'd name fails loudly with the file:line of the offender and
    // the full menu — scenariotool check inherits this through the
    // same binder, so a bad scenario never runs as static_fifo.
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.loadString("ni.backend = damq\n", "be.cfg", &err))
        << err;
    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    Binder b(tree, Binder::Mode::Apply);
    bindAll(b, machine, gang, wl);
    ASSERT_TRUE(b.ok()) << b.error();
    EXPECT_EQ(machine.ni.backend, core::NiBackendKind::Damq);

    ASSERT_TRUE(tree.setCli("ni.backend=zerocopy_remap", &err)) << err;
    Binder b2(tree, Binder::Mode::Apply);
    bindAll(b2, machine, gang, wl);
    ASSERT_TRUE(b2.ok()) << b2.error();
    EXPECT_EQ(machine.ni.backend, core::NiBackendKind::ZerocopyRemap);

    Config bad;
    ASSERT_TRUE(bad.loadString("ni.backend = hybrid_ring\n",
                               "be_bad.cfg", &err))
        << err;
    Binder b3(bad, Binder::Mode::Apply);
    bindAll(b3, machine, gang, wl);
    EXPECT_FALSE(b3.ok());
    EXPECT_NE(b3.error().find("be_bad.cfg:1"), std::string::npos)
        << b3.error();
    EXPECT_NE(b3.error().find("ni.backend"), std::string::npos)
        << b3.error();
    EXPECT_NE(b3.error().find("static_fifo|damq|zerocopy_remap"),
              std::string::npos)
        << b3.error();
}

TEST(Config, BadSyntaxAndBadKeysRejected)
{
    Config tree;
    std::string err;
    EXPECT_FALSE(
        tree.loadString("machine.nodes 8\n", "s.cfg", &err));
    EXPECT_NE(err.find("s.cfg:1"), std::string::npos) << err;
    EXPECT_FALSE(
        tree.loadString("machine..nodes = 8\n", "s2.cfg", &err));
    EXPECT_FALSE(tree.setCli("justakeynovalue", &err));
    EXPECT_FALSE(tree.loadFile("/nonexistent/x.cfg", &err));
}

TEST(Config, DumpParseDumpIsByteIdentical)
{
    // Dump the defaults, parse the dump, dump again: byte-identical.
    Config tree;
    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    {
        Binder apply(tree, Binder::Mode::Apply);
        bindAll(apply, machine, gang, wl);
        ASSERT_TRUE(apply.ok()) << apply.error();
    }
    const std::string first = dumpAll(tree, machine, gang, wl);

    Config tree2;
    std::string err;
    ASSERT_TRUE(tree2.loadString(first, "dump.cfg", &err)) << err;
    glaze::MachineConfig machine2;
    glaze::GangConfig gang2;
    harness::Workloads wl2;
    {
        Binder apply(tree2, Binder::Mode::Apply);
        bindAll(apply, machine2, gang2, wl2);
        ASSERT_TRUE(apply.ok()) << apply.error();
        ASSERT_TRUE(tree2.checkUnknown(&err)) << err;
    }
    EXPECT_EQ(first, dumpAll(tree2, machine2, gang2, wl2));
}

TEST(Config, OverriddenDumpReplaysToSameMachineAndStats)
{
    // An overridden run, dumped and re-applied, must produce the same
    // effective machine and bit-identical RunStats.
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.setCli("machine.nodes=4", &err)) << err;
    ASSERT_TRUE(tree.setCli("gang.skew=0.3", &err)) << err;
    ASSERT_TRUE(tree.setCli("apps.barrier.barriers=40", &err)) << err;

    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    gang.quantum = 100000;
    harness::Workloads wl;
    {
        Binder apply(tree, Binder::Mode::Apply);
        bindAll(apply, machine, gang, wl);
        ASSERT_TRUE(apply.ok()) << apply.error();
    }
    machine = glaze::Machine::fix(machine);
    const std::string dump = dumpAll(tree, machine, gang, wl);

    Config tree2;
    ASSERT_TRUE(tree2.loadString(dump, "replay.cfg", &err)) << err;
    glaze::MachineConfig machine2;
    glaze::GangConfig gang2;
    harness::Workloads wl2;
    {
        Binder apply(tree2, Binder::Mode::Apply);
        bindAll(apply, machine2, gang2, wl2);
        ASSERT_TRUE(apply.ok()) << apply.error();
        ASSERT_TRUE(tree2.checkUnknown(&err)) << err;
    }
    machine2 = glaze::Machine::fix(machine2);
    EXPECT_EQ(dump, dumpAll(tree2, machine2, gang2, wl2));

    const harness::RunStats a = harness::runTrials(
        machine, wl.factory("barrier"), /*with_null=*/true,
        /*gang=*/true, gang, /*trials=*/2);
    const harness::RunStats b = harness::runTrials(
        machine2, wl2.factory("barrier"), /*with_null=*/true,
        /*gang=*/true, gang2, /*trials=*/2);
    ASSERT_TRUE(a.completed);
    EXPECT_TRUE(a == b);
}

TEST(Config, ListsRoundTrip)
{
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.loadString("sweep.skews = 0, 0.05, 0.125\n"
                                "sweep.sizes = 1,2,300\n",
                                "l.cfg", &err))
        << err;
    std::vector<double> skews{9.0};
    std::vector<unsigned> sizes{7};
    Binder b(tree, Binder::Mode::Apply);
    {
        auto s = b.push("sweep");
        b.list("skews", skews, "d");
        b.list("sizes", sizes, "d");
    }
    ASSERT_TRUE(b.ok()) << b.error();
    EXPECT_EQ(skews, (std::vector<double>{0, 0.05, 0.125}));
    EXPECT_EQ(sizes, (std::vector<unsigned>{1, 2, 300}));
    EXPECT_EQ(formatConfigList(skews), "0,0.05,0.125");
}

TEST(Config, PaperScaleRespectsExplicitKeys)
{
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.setCli("workloads.paper_scale=true", &err)) << err;
    ASSERT_TRUE(tree.setCli("apps.lu.n=64", &err)) << err;
    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    Binder b(tree, Binder::Mode::Apply);
    bindAll(b, machine, gang, wl);
    ASSERT_TRUE(b.ok()) << b.error();
    wl.resolvePaperScale(tree);
    EXPECT_EQ(wl.lu.n, 64u);            // explicit key wins
    EXPECT_EQ(wl.barnes.bodies, 2048u); // paper value applied
}

TEST(Config, CheckUnknownInSkipsBenchLocalSections)
{
    Config tree;
    std::string err;
    ASSERT_TRUE(tree.loadString("machine.nodes = 4\n"
                                "fig7.skews = 0, 0.1\n"
                                "machine.bogus = 1\n",
                                "m.cfg", &err))
        << err;
    glaze::MachineConfig machine;
    glaze::GangConfig gang;
    harness::Workloads wl;
    Binder b(tree, Binder::Mode::Apply);
    bindAll(b, machine, gang, wl);
    ASSERT_TRUE(b.ok()) << b.error();

    std::vector<std::string> skipped;
    EXPECT_FALSE(tree.checkUnknownIn({"machine"}, &err, &skipped));
    EXPECT_NE(err.find("machine.bogus"), std::string::npos) << err;

    Config tree2;
    ASSERT_TRUE(tree2.loadString("machine.nodes = 4\n"
                                 "fig7.skews = 0, 0.1\n",
                                 "m2.cfg", &err))
        << err;
    Binder b2(tree2, Binder::Mode::Apply);
    glaze::MachineConfig machine2;
    glaze::GangConfig gang2;
    harness::Workloads wl2;
    bindAll(b2, machine2, gang2, wl2);
    ASSERT_TRUE(b2.ok()) << b2.error();
    skipped.clear();
    EXPECT_TRUE(tree2.checkUnknownIn({"machine"}, &err, &skipped));
    ASSERT_EQ(skipped.size(), 1u);
    EXPECT_EQ(skipped[0], "fig7.skews");
}

TEST(Config, OversizedMeshFailsLoudly)
{
    // net::Network::key packs two NodeIds into 32 bits; a mesh that
    // overflows the 16-bit NodeId space must fail loudly instead of
    // silently aliasing channels.
    detail::setThrowOnError(true);
    glaze::MachineConfig cfg;
    cfg.nodes = 70000; // > 0xffff
    EXPECT_THROW(
        { auto fixed = glaze::Machine::fix(cfg); (void)fixed; },
        SimError);
    detail::setThrowOnError(false);
}

} // namespace
