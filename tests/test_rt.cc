/**
 * @file
 * Unit tests for the user-level thread runtime: priority scheduling,
 * yield fairness, condition variables, and wakeup robustness.
 */

#include <gtest/gtest.h>

#include <vector>

#include "rt/thread.hh"
#include "sim/event.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::exec;
using namespace fugu::rt;

namespace
{

struct RtTest : ::testing::Test
{
    RtTest() : sg("t"), cpu(eq, 0, &sg), sched(cpu, costs)
    {
        detail::setThrowOnError(true);
        cpu.setIdleHook([this] {
            if (auto ctx = sched.pickNext())
                cpu.switchTo(std::move(ctx));
        });
    }

    ~RtTest() override { detail::setThrowOnError(false); }

    EventQueue eq;
    StatGroup sg;
    core::CostModel costs;
    Cpu cpu;
    Scheduler sched;
    std::vector<std::string> log;
};

Task
worker(Cpu *cpu, std::vector<std::string> *log, const char *name,
       Cycle work)
{
    co_await cpu->spend(work);
    log->push_back(name);
}

TEST_F(RtTest, SpawnRunsThread)
{
    sched.spawn("a", kPrioNormal, worker(&cpu, &log, "a", 10));
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));
    EXPECT_EQ(sched.liveThreads(), 0u);
}

TEST_F(RtTest, HigherPriorityRunsFirst)
{
    sched.spawn("lo", kPrioNormal, worker(&cpu, &log, "lo", 10));
    sched.spawn("hi", kPrioHandler, worker(&cpu, &log, "hi", 10));
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"hi", "lo"}));
}

TEST_F(RtTest, SamePriorityIsFifo)
{
    for (const char *n : {"a", "b", "c"})
        sched.spawn(n, kPrioNormal, worker(&cpu, &log, n, 5));
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
}

Task
yielder(Cpu *cpu, Scheduler *sched, std::vector<std::string> *log,
        const char *name, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await cpu->spend(5);
        log->push_back(name);
        co_await sched->yield();
    }
}

TEST_F(RtTest, YieldInterleavesEqualPriorities)
{
    sched.spawn("a", kPrioNormal, yielder(&cpu, &sched, &log, "a", 3));
    sched.spawn("b", kPrioNormal, yielder(&cpu, &sched, &log, "b", 3));
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "a", "b", "a",
                                             "b"}));
}

Task
waiter(Cpu *cpu, CondVar *cv, std::vector<std::string> *log,
       const char *name, const bool *flag)
{
    while (!*flag)
        co_await cv->wait();
    co_await cpu->spend(1);
    log->push_back(name);
}

Task
signaler(Cpu *cpu, CondVar *cv, bool *flag)
{
    co_await cpu->spend(100);
    *flag = true;
    cv->notifyAll();
}

TEST_F(RtTest, CondVarNotifyAllWakesEveryWaiter)
{
    CondVar cv(sched);
    bool flag = false;
    sched.spawn("w1", kPrioNormal, waiter(&cpu, &cv, &log, "w1", &flag));
    sched.spawn("w2", kPrioNormal, waiter(&cpu, &cv, &log, "w2", &flag));
    sched.spawn("s", kPrioNormal, signaler(&cpu, &cv, &flag));
    eq.run();
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(sched.liveThreads(), 0u);
}

TEST_F(RtTest, NotifyOneWakesExactlyOne)
{
    CondVar cv(sched);
    bool flag = false;
    sched.spawn("w1", kPrioNormal, waiter(&cpu, &cv, &log, "w1", &flag));
    sched.spawn("w2", kPrioNormal, waiter(&cpu, &cv, &log, "w2", &flag));
    eq.run();
    EXPECT_EQ(cv.waiters(), 2u);
    flag = true;
    cv.notifyOne();
    eq.run();
    // The second waiter re-checked nothing: it is still blocked.
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(cv.waiters(), 1u);
    cv.notifyOne();
    eq.run();
    EXPECT_EQ(log.size(), 2u);
}

TEST_F(RtTest, SpuriousDuplicateQueueEntriesAreHarmless)
{
    CondVar cv(sched);
    bool flag = false;
    auto t =
        sched.spawn("w", kPrioNormal, waiter(&cpu, &cv, &log, "w", &flag));
    eq.run();
    // Double makeReady: the predicate loop absorbs the spurious wake.
    sched.makeReady(t);
    sched.makeReady(t);
    eq.run();
    EXPECT_TRUE(log.empty());
    flag = true;
    cv.notifyAll();
    eq.run();
    EXPECT_EQ(log.size(), 1u);
}

TEST_F(RtTest, ThreadOfMapsContexts)
{
    auto t = sched.spawn("w", kPrioNormal, worker(&cpu, &log, "w", 1000));
    EXPECT_EQ(sched.threadOf(t->ctx()), t);
    EXPECT_EQ(sched.threadOf(nullptr), nullptr);
    eq.run();
}

} // namespace
