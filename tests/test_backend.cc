/**
 * @file
 * NiBufferBackend conformance suite. Every backend must keep the
 * invariants the two-case delivery machinery assumes — per-stream
 * FIFO order, content transparency, refusal (not loss) when full,
 * frame conservation under load, replay determinism, and agreement
 * between the serial and sharded engines — while the backend-specific
 * behaviors (DAMQ head bypass, flow caps and descriptor coupling;
 * zerocopy's cheaper buffered path) are pinned individually.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/costs.hh"
#include "core/netif.hh"
#include "core/nibuf.hh"
#include "glaze/machine.hh"
#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::core;
using harness::RunStats;

namespace
{

constexpr NiBackendKind kAllBackends[] = {
    NiBackendKind::StaticFifo,
    NiBackendKind::Damq,
    NiBackendKind::ZerocopyRemap,
};

net::Packet
mkPkt(NodeId src, Gid gid, Word tag)
{
    net::Packet p;
    p.src = src;
    p.dst = 1;
    p.gid = gid;
    p.handler = 7;
    p.payload = {tag, tag + 1, tag + 2};
    return p;
}

std::unique_ptr<NiBufferBackend>
mkBackend(NiBackendKind kind, unsigned pool = 8, unsigned flow = 8)
{
    NetIfConfig cfg;
    cfg.backend = kind;
    cfg.inputQueueMsgs = pool;
    cfg.damqPoolMsgs = pool;
    cfg.damqFlowMsgs = flow;
    return makeNiBackend(cfg);
}

// ---------------------------------------------------------------------
// Direct backend unit tests
// ---------------------------------------------------------------------

TEST(BackendFactoryTest, BuildsTheConfiguredKind)
{
    for (NiBackendKind k : kAllBackends) {
        auto b = mkBackend(k);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(b->kind(), k);
        EXPECT_STRNE(toString(k), "?");
    }
}

TEST(BackendConformanceTest, PerStreamFifoOrderAndContent)
{
    // Same-flow arrivals come back in arrival order with their words
    // intact, whatever the backend's head-selection policy.
    for (NiBackendKind k : kAllBackends) {
        auto b = mkBackend(k);
        for (Word t = 0; t < 5; ++t) {
            ASSERT_TRUE(b->canAccept(mkPkt(0, 4, t * 10)));
            b->accept(mkPkt(0, 4, t * 10));
        }
        EXPECT_EQ(b->size(), 5u);
        for (Word t = 0; t < 5; ++t) {
            const net::Packet *h = b->userHead(4, /*divert=*/false);
            ASSERT_NE(h, nullptr) << toString(k);
            net::Packet p = b->extractAt(h);
            EXPECT_EQ(p.gid, 4) << toString(k);
            ASSERT_EQ(p.payload.size(), 3u);
            EXPECT_EQ(p.payload[0], t * 10) << toString(k);
            EXPECT_EQ(p.payload[1], t * 10 + 1);
            EXPECT_EQ(p.payload[2], t * 10 + 2);
        }
        EXPECT_TRUE(b->empty());
    }
}

TEST(BackendConformanceTest, FullQueueRefusesInsteadOfDropping)
{
    for (NiBackendKind k : kAllBackends) {
        auto b = mkBackend(k, /*pool=*/4, /*flow=*/4);
        for (Word t = 0; t < 4; ++t) {
            ASSERT_TRUE(b->canAccept(mkPkt(0, 4, t))) << toString(k);
            b->accept(mkPkt(0, 4, t));
        }
        EXPECT_FALSE(b->canAccept(mkPkt(0, 4, 99))) << toString(k);
        // Extraction reopens exactly one slot.
        b->extractAt(b->oldest());
        EXPECT_TRUE(b->canAccept(mkPkt(0, 4, 99))) << toString(k);
    }
}

TEST(BackendConformanceTest, DivertSuppressesUserHead)
{
    for (NiBackendKind k : kAllBackends) {
        auto b = mkBackend(k);
        b->accept(mkPkt(0, 4, 1));
        EXPECT_EQ(b->userHead(4, /*divert=*/true), nullptr)
            << toString(k);
        const net::Packet *m = b->mismatchHead(4, /*divert=*/true);
        ASSERT_NE(m, nullptr) << toString(k);
        EXPECT_EQ(m, b->oldest()) << toString(k);
    }
}

TEST(StaticFifoTest, MismatchedFrontBlocksUserHead)
{
    // The hardware ring is strictly FIFO: a descheduled tenant's
    // arrival at the front hides the scheduled tenant's message.
    for (NiBackendKind k :
         {NiBackendKind::StaticFifo, NiBackendKind::ZerocopyRemap}) {
        auto b = mkBackend(k);
        b->accept(mkPkt(0, 9, 1)); // descheduled tenant first
        b->accept(mkPkt(0, 4, 2)); // scheduled tenant behind it
        EXPECT_EQ(b->userHead(4, false), nullptr) << toString(k);
        const net::Packet *m = b->mismatchHead(4, false);
        ASSERT_NE(m, nullptr);
        EXPECT_EQ(m->gid, 9) << toString(k);
    }
}

TEST(DamqTest, ScheduledGidBypassesParkedArrivals)
{
    // The associative head select: the same arrival pattern that
    // blocks the static ring hands the scheduled tenant its message.
    auto b = mkBackend(NiBackendKind::Damq);
    b->accept(mkPkt(0, 9, 1));
    b->accept(mkPkt(0, 4, 2));
    const net::Packet *u = b->userHead(4, false);
    ASSERT_NE(u, nullptr);
    EXPECT_EQ(u->gid, 4);
    EXPECT_EQ(u->payload[0], 2u);
    // The parked gid-9 arrival is still the oldest and still what the
    // kernel's mismatch path services.
    EXPECT_EQ(b->oldest()->gid, 9);
    EXPECT_EQ(b->mismatchHead(4, false)->gid, 9);
    // Extracting the bypassed message leaves the parked one intact.
    net::Packet p = b->extractAt(u);
    EXPECT_EQ(p.payload[0], 2u);
    EXPECT_EQ(b->size(), 1u);
    EXPECT_EQ(b->oldest()->gid, 9);
}

TEST(DamqTest, PerFlowCapBoundsOneTenant)
{
    DamqBackend b(/*pool_msgs=*/8, /*flow_msgs=*/2);
    ASSERT_TRUE(b.canAccept(mkPkt(0, 4, 1)));
    b.accept(mkPkt(0, 4, 1));
    b.accept(mkPkt(0, 4, 2));
    EXPECT_EQ(b.flowCount(0, 4), 2u);
    // Flow (0,4) is at its cap; other flows still get in.
    EXPECT_FALSE(b.canAccept(mkPkt(0, 4, 3)));
    EXPECT_TRUE(b.canAccept(mkPkt(1, 4, 3))); // other source
    EXPECT_TRUE(b.canAccept(mkPkt(0, 9, 3))); // other gid
    b.accept(mkPkt(0, 9, 3));
    EXPECT_EQ(b.flowCount(0, 9), 1u);
    // Draining one of the capped flow's slots reopens it.
    b.extractAt(b.userHead(4, false));
    EXPECT_TRUE(b.canAccept(mkPkt(0, 4, 4)));
}

TEST(DamqTest, RefusalSelectivityTracksPoolVsFlowCause)
{
    // A flow-cap refusal leaves room for other tenants; a pool-wide
    // refusal (including the descriptor's reserved slot) does not.
    // The network's head-of-line bypass keys off this distinction.
    DamqBackend b(/*pool_msgs=*/4, /*flow_msgs=*/2);
    b.accept(mkPkt(0, 9, 1));
    b.accept(mkPkt(0, 9, 2));
    ASSERT_FALSE(b.canAccept(mkPkt(0, 9, 3))); // flow capped
    EXPECT_TRUE(b.acceptsOtherFlows(mkPkt(0, 9, 3)));
    b.accept(mkPkt(1, 9, 3));
    b.accept(mkPkt(2, 9, 4)); // pool now full
    EXPECT_FALSE(b.acceptsOtherFlows(mkPkt(0, 9, 5)));
    // Extraction reopens the pool: selectivity returns with it.
    b.extractAt(b.oldest());
    EXPECT_TRUE(b.acceptsOtherFlows(mkPkt(0, 9, 5)));
    // A live descriptor eats the last slot: pool-wide again.
    b.onDescriptor(true);
    EXPECT_FALSE(b.acceptsOtherFlows(mkPkt(0, 9, 5)));
    // The FIFO backends never refuse selectively.
    auto fifo = mkBackend(NiBackendKind::StaticFifo, 2, 2);
    fifo->accept(mkPkt(0, 9, 1));
    fifo->accept(mkPkt(0, 9, 2));
    EXPECT_FALSE(fifo->canAccept(mkPkt(1, 4, 3)));
    EXPECT_FALSE(fifo->acceptsOtherFlows(mkPkt(1, 4, 3)));
}

/** NetSink wrapping a real DamqBackend (no NetIf machinery). */
struct DamqSink : net::NetSink
{
    DamqSink(unsigned pool, unsigned flow) : b(pool, flow) {}

    bool
    tryDeliver(net::Packet &&pkt) override
    {
        if (!b.canAccept(pkt))
            return false;
        b.accept(std::move(pkt));
        return true;
    }

    bool
    refusalIsSelective(const net::Packet &pkt) const override
    {
        return b.acceptsOtherFlows(pkt);
    }

    DamqBackend b;
};

TEST(DamqNetworkTest, VictimBypassesHogParkedAtArrivalQueueHead)
{
    // The descriptor-death re-poke audit's regression: a hog holding
    // its per-(src,GID) cap parks its next packet at the head of the
    // per-destination arrival queue. Pre-fix, Network::drain returned
    // at the first refusal, so every victim packet queued behind the
    // hog's was starved even though the DAMQ pool had room — and the
    // re-poke on descriptor death retried only the same blocked head,
    // wedging the destination for as long as the hog kept its flow
    // pinned. The fix delivers other flows past the blocked head.
    EventQueue eq;
    StatGroup stats("test");
    net::NetworkConfig ncfg;
    net::Network net(eq, ncfg, "net", &stats);
    DamqSink sink(/*pool=*/8, /*flow=*/2);
    net.attach(1, &sink);
    // Senders only inject; they need no sink of their own, but the
    // fabric requires attachment for destinations only.
    const auto send = [&](NodeId src, Gid gid, Word tag) {
        net.send(mkPkt(src, gid, tag));
    };
    // Hog (src 0, gid 9): two fill the flow cap, two more park in the
    // arrival queue. Drain the fabric first so the hog's surplus is
    // already parked at the queue head when the victim's traffic
    // lands behind it — victim and hog use different channels, so
    // without the intervening run their arrivals would interleave and
    // the victim would never actually queue behind the blocked head.
    for (Word t = 0; t < 4; ++t)
        send(0, 9, 100 + t);
    eq.run();
    EXPECT_EQ(sink.b.flowCount(0, 9), 2u);
    // Victim (src 2, gid 4) behind the hog's parked packets.
    send(2, 4, 500);
    send(2, 4, 501);
    eq.run();

    // The victim's packets made it into the NI pool, in order, while
    // the hog's third and fourth wait their turn in the network.
    EXPECT_EQ(sink.b.flowCount(2, 4), 2u);
    EXPECT_EQ(sink.b.flowCount(0, 9), 2u);
    const net::Packet *v = sink.b.userHead(4, false);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->payload[0], 500u);
    EXPECT_GE(net.stats.headOfLineBypasses.value(), 2.0);

    // Extracting a hog message frees its flow; the re-poke must then
    // deliver the parked hog packet (per-stream FIFO intact).
    sink.b.extractAt(sink.b.userHead(9, false));
    net.onSinkSpaceFreed(1);
    eq.run();
    EXPECT_EQ(sink.b.flowCount(0, 9), 2u);
    const net::Packet *h = sink.b.userHead(9, false);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->payload[0], 101u); // oldest remaining hog message
}

TEST(DamqTest, LiveDescriptorReservesOneSlot)
{
    // Input and output queues share the pool: a live output
    // descriptor holds one slot back from arrivals.
    auto b = mkBackend(NiBackendKind::Damq, /*pool=*/4, /*flow=*/4);
    for (Word t = 0; t < 3; ++t)
        b->accept(mkPkt(0, 4, t));
    ASSERT_TRUE(b->canAccept(mkPkt(0, 4, 3)));
    b->onDescriptor(true);
    EXPECT_FALSE(b->canAccept(mkPkt(0, 4, 3)));
    b->onDescriptor(false);
    EXPECT_TRUE(b->canAccept(mkPkt(0, 4, 3)));
    EXPECT_TRUE(b->outputCoupled());
}

TEST(BackendCostTest, CostVectorsMatchTheCostModel)
{
    const CostModel c;

    auto fifo = mkBackend(NiBackendKind::StaticFifo);
    NiBufferedCosts bc = fifo->bufferedCosts(c);
    EXPECT_EQ(bc.insertBase, c.bufferInsertMin);
    EXPECT_EQ(bc.newPageExtra, c.vmallocExtra);
    EXPECT_EQ(bc.drainBase, c.bufferNullHandler);
    EXPECT_EQ(bc.perWordX2, c.perBufferWordX2);
    EXPECT_EQ(fifo->fastExtra(c), 0u);
    EXPECT_EQ(fifo->recordOverheadWords(), 2u);

    auto damq = mkBackend(NiBackendKind::Damq);
    EXPECT_EQ(damq->fastExtra(c), c.damqSelect);
    EXPECT_EQ(damq->bufferedCosts(c).insertBase, c.bufferInsertMin);
    EXPECT_EQ(damq->recordOverheadWords(), 2u);

    auto zc = mkBackend(NiBackendKind::ZerocopyRemap);
    bc = zc->bufferedCosts(c);
    EXPECT_EQ(bc.insertBase, c.zerocopyInsertMin);
    EXPECT_EQ(bc.newPageExtra, c.vmRemap);
    EXPECT_EQ(bc.drainBase, c.bufferNullHandler);
    EXPECT_EQ(bc.perWordX2, c.zerocopyPerWordX2);
    EXPECT_EQ(zc->fastExtra(c), 0u);
    EXPECT_EQ(zc->recordOverheadWords(), 0u);
    // The zerocopy buffered path is strictly cheaper per message.
    EXPECT_LT(c.zerocopyInsertMin, c.bufferInsertMin);
    EXPECT_LT(c.vmRemap, c.vmallocExtra);
    EXPECT_LT(c.zerocopyPerWordX2, c.perBufferWordX2);
}

// ---------------------------------------------------------------------
// Machine-level conformance (the full two-case delivery stack)
// ---------------------------------------------------------------------

glaze::MachineConfig
backendConfig(NiBackendKind k, unsigned nodes, unsigned shards)
{
    glaze::MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.parShards = shards;
    cfg.seed = 7;
    cfg.ni.backend = k;
    return cfg;
}

RunStats
runSynth(const glaze::MachineConfig &cfg)
{
    harness::Workloads wl;
    wl.synth.groups = cfg.nodes / 2;
    return harness::runJob(cfg, wl.factory("synth"),
                           /*with_null=*/false, /*gang=*/false, {});
}

/** The bench_stress fault cocktail, forcing heavy buffered traffic. */
RunStats
runStorm(const glaze::MachineConfig &base)
{
    glaze::MachineConfig cfg = base;
    cfg.seed = 11;
    cfg.fault.enabled = true;
    cfg.fault.delayJitterProb = 0.1;
    cfg.fault.inputFullProb = 0.02;
    cfg.fault.outputFullProb = 0.1;
    cfg.fault.frameDenyProb = 0.05;
    cfg.fault.divertStormProb = 0.15;
    cfg.fault.atomTimeoutProb = 0.15;
    cfg.fault.pageFaultProb = 0.03;
    harness::Workloads wl;
    wl.barrier.barriers = 200;
    glaze::GangConfig g;
    g.quantum = 20000;
    g.skew = 0.3;
    return harness::runJob(cfg, wl.factory("barrier"),
                           /*with_null=*/true, /*gang=*/true, g);
}

/** Scoped FUGU_THREADS override (the pool reads it per machine). */
class ThreadsEnv
{
  public:
    explicit ThreadsEnv(const char *v)
    {
        const char *old = std::getenv("FUGU_THREADS");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        setenv("FUGU_THREADS", v, 1);
    }
    ~ThreadsEnv()
    {
        if (had_)
            setenv("FUGU_THREADS", old_.c_str(), 1);
        else
            unsetenv("FUGU_THREADS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

TEST(BackendMachineTest, EveryBackendDeliversTheSameWorkload)
{
    // Content transparency at the semantic level: the application
    // sends and receives the same messages whatever buffers them.
    RunStats oracle;
    for (NiBackendKind k : kAllBackends) {
        const RunStats r = runSynth(backendConfig(k, 16, 1));
        ASSERT_TRUE(r.completed) << toString(k);
        EXPECT_EQ(r.violations, 0.0) << toString(k);
        if (k == NiBackendKind::StaticFifo)
            oracle = r;
        else {
            EXPECT_EQ(r.sent, oracle.sent) << toString(k);
            EXPECT_EQ(r.direct + r.buffered,
                      oracle.direct + oracle.buffered)
                << toString(k);
        }
    }
}

TEST(BackendMachineTest, StaticFifoIsBitExactWithTheDefault)
{
    // `--set ni.backend=static_fifo` must be a spelling of the seed
    // behavior, down to the engine event count.
    glaze::MachineConfig def = backendConfig(
        NiBackendKind::StaticFifo, 16, 1);
    const RunStats a = runSynth(def);
    const RunStats b = runSynth(glaze::MachineConfig{def});
    ASSERT_TRUE(a.completed);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.events, b.events);
}

TEST(BackendMachineTest, FaultStormZeroViolationsAndReplays)
{
    for (NiBackendKind k : kAllBackends) {
        const glaze::MachineConfig cfg = backendConfig(k, 8, 1);
        const RunStats r = runStorm(cfg);
        ASSERT_TRUE(r.completed)
            << toString(k) << " wedged under the fault storm";
        EXPECT_EQ(r.violations, 0.0) << toString(k);
        EXPECT_GT(r.faultEvents, 0.0) << toString(k);
        const RunStats replay = runStorm(cfg);
        EXPECT_TRUE(r == replay)
            << toString(k) << " storm is not reproducible";
        EXPECT_EQ(r.events, replay.events) << toString(k);
    }
}

TEST(BackendMachineTest, ShardedAgreesWithSerialSemantics)
{
    for (NiBackendKind k : kAllBackends) {
        const RunStats serial = runSynth(backendConfig(k, 16, 1));
        const RunStats par = runSynth(backendConfig(k, 16, 4));
        ASSERT_TRUE(serial.completed) << toString(k);
        ASSERT_TRUE(par.completed) << toString(k);
        EXPECT_EQ(serial.sent, par.sent) << toString(k);
        EXPECT_EQ(serial.direct + serial.buffered,
                  par.direct + par.buffered)
            << toString(k);
        EXPECT_EQ(serial.violations, 0.0) << toString(k);
        EXPECT_EQ(par.violations, 0.0) << toString(k);
    }
}

TEST(BackendMachineTest, ShardedRunIndependentOfThreadCount)
{
    for (NiBackendKind k : kAllBackends) {
        const glaze::MachineConfig cfg = backendConfig(k, 16, 4);
        RunStats one, four;
        {
            ThreadsEnv env("1");
            one = runSynth(cfg);
        }
        {
            ThreadsEnv env("4");
            four = runSynth(cfg);
        }
        ASSERT_TRUE(one.completed) << toString(k);
        EXPECT_TRUE(one == four) << toString(k);
        EXPECT_EQ(one.events, four.events) << toString(k);
    }
}

TEST(BackendMachineTest, OverflowControlSurvivesTightFrames)
{
    // Frame conservation under pressure: with few frames per node and
    // everything forced through the buffered path, overflow control
    // engages and the InvariantChecker's conservation sweep must stay
    // clean for every backend.
    for (NiBackendKind k : kAllBackends) {
        glaze::MachineConfig cfg = backendConfig(k, 8, 1);
        cfg.alwaysBuffered = true;
        cfg.framesPerNode = 12;
        const RunStats r = runSynth(cfg);
        ASSERT_TRUE(r.completed) << toString(k);
        EXPECT_EQ(r.violations, 0.0) << toString(k);
        EXPECT_GT(r.buffered, 0.0) << toString(k);
        EXPECT_EQ(r.direct, 0.0) << toString(k);
    }
}

TEST(BackendMachineTest, ZerocopyBuffersCheaperThanStaticFifo)
{
    // The acceptance criterion in executable form: at equal load with
    // every message diverted, page-flip delivery finishes the same
    // job in strictly less simulated time than the copying path.
    glaze::MachineConfig fifo = backendConfig(
        NiBackendKind::StaticFifo, 16, 1);
    fifo.alwaysBuffered = true;
    glaze::MachineConfig zc = backendConfig(
        NiBackendKind::ZerocopyRemap, 16, 1);
    zc.alwaysBuffered = true;
    const RunStats rf = runSynth(fifo);
    const RunStats rz = runSynth(zc);
    ASSERT_TRUE(rf.completed);
    ASSERT_TRUE(rz.completed);
    EXPECT_GT(rf.buffered, 0.0);
    EXPECT_EQ(rf.sent, rz.sent);
    EXPECT_LT(rz.runtime, rf.runtime);
}

} // namespace
