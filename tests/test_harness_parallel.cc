/**
 * @file
 * Determinism tests for the parallel experiment harness: runTrials
 * and runMany must return bit-identical results no matter how many
 * worker threads execute the jobs, because each job builds a private
 * machine and results are combined in input (seed) order.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

/** Scoped FUGU_THREADS override. */
class ThreadsEnv
{
  public:
    explicit ThreadsEnv(const char *value)
    {
        if (const char *old = std::getenv("FUGU_THREADS"))
            saved_ = old;
        setenv("FUGU_THREADS", value, 1);
    }

    ~ThreadsEnv()
    {
        if (saved_.empty())
            unsetenv("FUGU_THREADS");
        else
            setenv("FUGU_THREADS", saved_.c_str(), 1);
    }

  private:
    std::string saved_;
};

AppFactory
synthFactory()
{
    return [](unsigned nodes, std::uint64_t seed) {
        apps::SynthAppConfig cfg;
        cfg.n = 10;
        cfg.groups = 6;
        cfg.tBetween = 400;
        cfg.handlerStall = 200;
        cfg.seed = seed;
        return apps::makeSynthApp(nodes, cfg);
    };
}

RunStats
runSweepPoint(unsigned trials)
{
    glaze::MachineConfig mcfg;
    mcfg.nodes = 4;
    glaze::GangConfig gcfg;
    gcfg.quantum = 100000;
    gcfg.skew = 0.05;
    return runTrials(mcfg, synthFactory(), /*with_null=*/true,
                     /*gang=*/true, gcfg, trials);
}

void
expectBitIdentical(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.direct, b.direct);       // exact, not approximate:
    EXPECT_EQ(a.buffered, b.buffered);   // same seeds, same machines
    EXPECT_EQ(a.bufferedPct, b.bufferedPct);
    EXPECT_EQ(a.tBetween, b.tBetween);
    EXPECT_EQ(a.tHand, b.tHand);
    EXPECT_EQ(a.maxVbufPages, b.maxVbufPages);
    EXPECT_EQ(a.overflowEvents, b.overflowEvents);
    EXPECT_EQ(a.atomicityTimeouts, b.atomicityTimeouts);
}

TEST(HarnessParallelTest, WorkerCountHonorsEnvOverride)
{
    ThreadsEnv env("3");
    EXPECT_EQ(workerCount(), 3u);
}

TEST(HarnessParallelTest, RunTrialsIsBitIdenticalAcrossThreadCounts)
{
    RunStats serial, threaded;
    {
        ThreadsEnv env("1");
        serial = runSweepPoint(4);
    }
    {
        ThreadsEnv env("4");
        threaded = runSweepPoint(4);
    }
    ASSERT_TRUE(serial.completed);
    expectBitIdentical(serial, threaded);
}

TEST(HarnessParallelTest, RunManyPreservesInputOrder)
{
    ThreadsEnv env("4");
    std::vector<JobFn> jobs;
    for (unsigned i = 0; i < 17; ++i) {
        jobs.push_back([i] {
            RunStats r;
            r.runtime = i;
            r.completed = true;
            return r;
        });
    }
    const std::vector<RunStats> out = runMany(std::move(jobs));
    ASSERT_EQ(out.size(), 17u);
    for (unsigned i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].runtime, i);
}

TEST(HarnessParallelTest, NestedParallelismStaysDeterministic)
{
    // Sweep points on the pool, each running multi-trial runTrials
    // inside a worker (which serializes the nested jobs): results
    // must match the all-serial run exactly.
    std::vector<RunStats> serial(2), nested(2);
    {
        ThreadsEnv env("1");
        parallelFor(2, [&](std::size_t i) {
            serial[i] = runSweepPoint(static_cast<unsigned>(1 + i));
        });
    }
    {
        ThreadsEnv env("4");
        parallelFor(2, [&](std::size_t i) {
            nested[i] = runSweepPoint(static_cast<unsigned>(1 + i));
        });
    }
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectBitIdentical(serial[i], nested[i]);
}

} // namespace
