/**
 * @file
 * Unit tests for the interconnect model: ordering, latency,
 * back-pressure, head-of-line blocking, and space notifications.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "net/network.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::net;

namespace
{

/** Sink with a configurable capacity and manual dequeue. */
struct QueueSink : NetSink
{
    explicit QueueSink(std::size_t capacity = ~std::size_t(0))
        : capacity(capacity)
    {}

    bool
    tryDeliver(Packet &&pkt) override
    {
        if (q.size() >= capacity)
            return false;
        q.push_back(std::move(pkt));
        return true;
    }

    std::size_t capacity;
    std::deque<Packet> q;
};

struct NetworkTest : ::testing::Test
{
    NetworkTest()
        : stats("test"), net(eq, NetworkConfig{}, "net", &stats)
    {
        detail::setThrowOnError(true);
        for (NodeId n = 0; n < 4; ++n)
            net.attach(n, &sinks[n]);
    }

    ~NetworkTest() override { detail::setThrowOnError(false); }

    Packet
    mkPkt(NodeId src, NodeId dst, std::vector<Word> payload = {})
    {
        Packet p;
        p.src = src;
        p.dst = dst;
        p.handler = 7;
        p.payload = std::move(payload);
        return p;
    }

    EventQueue eq;
    StatGroup stats;
    Network net;
    QueueSink sinks[4];
};

TEST_F(NetworkTest, DeliversWithModelLatency)
{
    net.send(mkPkt(0, 1));
    eq.run();
    ASSERT_EQ(sinks[1].q.size(), 1u);
    // base 5 + 1 hop * 2 + 2 words * 1 = 9
    EXPECT_EQ(eq.now(), 9u);
    EXPECT_EQ(sinks[1].q.front().handler, 7u);
}

TEST_F(NetworkTest, HopsAreMeshDistance)
{
    // 4x4 mesh: node 0 = (0,0), node 5 = (1,1), node 15 = (3,3).
    EXPECT_EQ(net.hops(0, 0), 0u);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.hops(0, 5), 2u);
    EXPECT_EQ(net.hops(0, 15), 6u);
    EXPECT_EQ(net.hops(15, 0), 6u);
}

TEST_F(NetworkTest, PairwiseFifoEvenWithDifferentSizes)
{
    // A long message followed by a short one on the same channel:
    // the short one must not overtake.
    net.send(mkPkt(0, 1, std::vector<Word>(14, 1)));
    net.send(mkPkt(0, 1, {2}));
    eq.run();
    ASSERT_EQ(sinks[1].q.size(), 2u);
    EXPECT_EQ(sinks[1].q[0].payload.size(), 14u);
    EXPECT_EQ(sinks[1].q[1].payload.size(), 1u);
    EXPECT_LE(sinks[1].q[0].seq, sinks[1].q[1].seq);
}

TEST_F(NetworkTest, ManyMessagesStayFifoPerChannel)
{
    for (Word i = 0; i < 8; ++i) {
        while (!net.canAccept(0, 1, 3))
            eq.runOne();
        net.send(mkPkt(0, 1, {i}));
    }
    eq.run();
    ASSERT_EQ(sinks[1].q.size(), 8u);
    for (Word i = 0; i < 8; ++i)
        EXPECT_EQ(sinks[1].q[i].payload[0], i);
}

TEST_F(NetworkTest, ChannelCapacityBlocksSender)
{
    // Default capacity 64 words; 16-word messages: 4 fit.
    for (int i = 0; i < 4; ++i)
        net.send(mkPkt(0, 1, std::vector<Word>(14, 0)));
    EXPECT_FALSE(net.canAccept(0, 1, 16));
    // A different channel is unaffected.
    EXPECT_TRUE(net.canAccept(0, 2, 16));
    EXPECT_TRUE(net.canAccept(2, 1, 16));
    eq.run();
    EXPECT_TRUE(net.canAccept(0, 1, 16));
    EXPECT_EQ(sinks[1].q.size(), 4u);
}

TEST_F(NetworkTest, FullSinkBlocksChannelUntilSpaceFreed)
{
    sinks[1].capacity = 1;
    net.send(mkPkt(0, 1, {1}));
    net.send(mkPkt(0, 1, {2}));
    eq.run();
    // Second message is stuck behind the full queue.
    ASSERT_EQ(sinks[1].q.size(), 1u);
    EXPECT_EQ(sinks[1].q[0].payload[0], 1u);
    EXPECT_FALSE(net.canAccept(0, 1, 64)); // words still in flight
    EXPECT_GE(net.stats.headOfLineBlocks.value(), 1.0);

    sinks[1].q.pop_front();
    net.onSinkSpaceFreed(1);
    ASSERT_EQ(sinks[1].q.size(), 1u);
    EXPECT_EQ(sinks[1].q[0].payload[0], 2u);
}

TEST_F(NetworkTest, SubscribeSpaceFiresWhenChannelDrains)
{
    struct Counter : net::SpaceWaiter
    {
        int fired = 0;
        void onSpaceAvailable() override { ++fired; }
    } waiter;
    for (int i = 0; i < 4; ++i)
        net.send(mkPkt(0, 1, std::vector<Word>(14, 0)));
    EXPECT_FALSE(net.canAccept(0, 1, 16));
    net.subscribeSpace(0, 1, &waiter);
    EXPECT_EQ(waiter.fired, 0);
    eq.run();
    EXPECT_GE(waiter.fired, 1);
    EXPECT_TRUE(net.canAccept(0, 1, 16));
}

TEST_F(NetworkTest, LoopbackDelivers)
{
    net.send(mkPkt(2, 2, {9}));
    eq.run();
    ASSERT_EQ(sinks[2].q.size(), 1u);
    // base 5 + 0 hops + 3 words = 8
    EXPECT_EQ(eq.now(), 8u);
}

TEST_F(NetworkTest, OversizedMessagePanics)
{
    EXPECT_THROW(net.send(mkPkt(0, 1, std::vector<Word>(15, 0))),
                 SimError);
}

TEST_F(NetworkTest, StatsCountDeliveries)
{
    net.send(mkPkt(0, 1, {1, 2}));
    net.send(mkPkt(0, 2));
    eq.run();
    EXPECT_DOUBLE_EQ(net.stats.messages.value(), 2.0);
    EXPECT_DOUBLE_EQ(net.stats.words.value(), 6.0);
    EXPECT_EQ(net.stats.deliveryLatency.count(), 2u);
}

TEST_F(NetworkTest, TwoNetworksAreIndependent)
{
    NetworkConfig slow;
    slow.latencyBase = 100;
    slow.perWord = 8;
    Network os(eq, slow, "net_os", &stats);
    QueueSink osSink;
    os.attach(0, &osSink);
    os.attach(1, &osSink);

    net.send(mkPkt(0, 1));
    os.send(mkPkt(0, 1));
    eq.run();
    EXPECT_EQ(sinks[1].q.size(), 1u);
    EXPECT_EQ(osSink.q.size(), 1u);
    EXPECT_GT(os.stats.deliveryLatency.mean(),
              net.stats.deliveryLatency.mean());
}

TEST_F(NetworkTest, InterleavedChannelsDeliverByArrivalTime)
{
    // Node 3 is farther from 1 than node 0 is; with same inject time
    // the nearer sender's message arrives first.
    net.send(mkPkt(3, 1, {33}));
    net.send(mkPkt(0, 1, {11}));
    eq.run();
    ASSERT_EQ(sinks[1].q.size(), 2u);
    EXPECT_EQ(sinks[1].q[0].payload[0], 11u);
    EXPECT_EQ(sinks[1].q[1].payload[0], 33u);
}

} // namespace
