/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"

using namespace fugu;

namespace
{

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.uniform(10, 20);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 20u);
    }
}

TEST(RngTest, UniformSingletonRange)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(r.uniform(5, 5), 5u);
}

TEST(RngTest, UniformCoversRange)
{
    Rng r(3);
    bool seen[4] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.uniform(0, 3)] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(RngTest, UniformIsRoughlyUniform)
{
    Rng r(11);
    constexpr int kBuckets = 10, kDraws = 100000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.uniform(0, kBuckets - 1)];
    for (int c : counts) {
        EXPECT_GT(c, kDraws / kBuckets * 0.9);
        EXPECT_LT(c, kDraws / kBuckets * 1.1);
    }
}

TEST(RngTest, RealInUnitInterval)
{
    Rng r(13);
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(RngTest, ForkIsIndependentButDeterministic)
{
    Rng a(99), b(99);
    Rng fa = a.fork();
    Rng fb = b.fork();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(fa.next(), fb.next());
    // Parent and child streams should differ.
    Rng c(99);
    Rng fc = c.fork();
    EXPECT_NE(fc.next(), c.next());
}

} // namespace
