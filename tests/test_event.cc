/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/log.hh"

using namespace fugu;

namespace
{

class ThrowOnError : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

using EventTest = ThrowOnError;

struct RecordingEvent : Event
{
    RecordingEvent(std::string name, std::vector<std::string> *log)
        : Event(std::move(name)), log(log)
    {}

    void process() override { log->push_back(name()); }

    std::vector<std::string> *log;
};

TEST_F(EventTest, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log), c("c", &log);
    eq.schedule(&b, 20);
    eq.schedule(&a, 10);
    eq.schedule(&c, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST_F(EventTest, SameCycleFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log), c("c", &log);
    eq.schedule(&c, 5);
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"c", "a", "b"}));
}

TEST_F(EventTest, DescheduleCancels)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_TRUE(b.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

TEST_F(EventTest, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b", "a"}));
}

TEST_F(EventTest, EventMaySelfReschedule)
{
    EventQueue eq;
    int count = 0;

    struct Periodic : Event
    {
        Periodic(EventQueue *eq, int *count)
            : Event("periodic"), eq(eq), count(count)
        {}

        void
        process() override
        {
            if (++*count < 5)
                eq->schedule(this, eq->now() + 10);
        }

        EventQueue *eq;
        int *count;
    };

    Periodic p(&eq, &count);
    eq.schedule(&p, 0);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST_F(EventTest, DestructionWhileScheduledIsSafe)
{
    EventQueue eq;
    std::vector<std::string> log;
    {
        auto a = std::make_unique<RecordingEvent>("a", &log);
        eq.schedule(a.get(), 10);
        // Destroyed while scheduled: destructor deschedules.
    }
    RecordingEvent b("b", &log);
    eq.schedule(&b, 20);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

TEST_F(EventTest, ScheduleFnAndCancel)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn([&] { ++fired; }, 10);
    auto handle = eq.scheduleFn([&] { fired += 100; }, 20);
    eq.cancelFn(handle);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST_F(EventTest, CancelAfterFireIsNoop)
{
    EventQueue eq;
    int fired = 0;
    auto handle = eq.scheduleFn([&] { ++fired; }, 10);
    eq.run();
    eq.cancelFn(handle); // already fired; must not crash
    EXPECT_EQ(fired, 1);
}

TEST_F(EventTest, RunUntilStopsAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn([&] { ++fired; }, 10);
    eq.scheduleFn([&] { ++fired; }, 100);
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST_F(EventTest, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.scheduleFn([] {}, 100);
    eq.run();
    RecordingEvent a("a", nullptr);
    EXPECT_THROW(eq.schedule(&a, 50), SimError);
}

TEST_F(EventTest, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log);
    eq.schedule(&a, 10);
    EXPECT_THROW(eq.schedule(&a, 20), SimError);
    eq.deschedule(&a);
}

TEST_F(EventTest, PendingCountsLiveEvents)
{
    EventQueue eq;
    RecordingEvent a("a", nullptr), b("b", nullptr);
    std::vector<std::string> log;
    a.log = &log;
    b.log = &log;
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
}

} // namespace
