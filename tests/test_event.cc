/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "sim/event.hh"
#include "sim/log.hh"

using namespace fugu;

namespace
{

class ThrowOnError : public ::testing::Test
{
  protected:
    void SetUp() override { detail::setThrowOnError(true); }
    void TearDown() override { detail::setThrowOnError(false); }
};

using EventTest = ThrowOnError;

struct RecordingEvent : Event
{
    RecordingEvent(std::string name, std::vector<std::string> *log)
        : Event(std::move(name)), log(log)
    {}

    void process() override { log->push_back(name()); }

    std::vector<std::string> *log;
};

TEST_F(EventTest, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log), c("c", &log);
    eq.schedule(&b, 20);
    eq.schedule(&a, 10);
    eq.schedule(&c, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST_F(EventTest, SameCycleFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log), c("c", &log);
    eq.schedule(&c, 5);
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"c", "a", "b"}));
}

TEST_F(EventTest, DescheduleCancels)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_TRUE(b.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

TEST_F(EventTest, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b", "a"}));
}

TEST_F(EventTest, EventMaySelfReschedule)
{
    EventQueue eq;
    int count = 0;

    struct Periodic : Event
    {
        Periodic(EventQueue *eq, int *count)
            : Event("periodic"), eq(eq), count(count)
        {}

        void
        process() override
        {
            if (++*count < 5)
                eq->schedule(this, eq->now() + 10);
        }

        EventQueue *eq;
        int *count;
    };

    Periodic p(&eq, &count);
    eq.schedule(&p, 0);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST_F(EventTest, DestructionWhileScheduledIsSafe)
{
    EventQueue eq;
    std::vector<std::string> log;
    {
        auto a = std::make_unique<RecordingEvent>("a", &log);
        eq.schedule(a.get(), 10);
        // Destroyed while scheduled: destructor deschedules.
    }
    RecordingEvent b("b", &log);
    eq.schedule(&b, 20);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

TEST_F(EventTest, ScheduleFnAndCancel)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn([&] { ++fired; }, 10);
    auto handle = eq.scheduleFn([&] { fired += 100; }, 20);
    eq.cancelFn(handle);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST_F(EventTest, CancelAfterFireIsNoop)
{
    EventQueue eq;
    int fired = 0;
    auto handle = eq.scheduleFn([&] { ++fired; }, 10);
    eq.run();
    eq.cancelFn(handle); // already fired; must not crash
    EXPECT_EQ(fired, 1);
}

TEST_F(EventTest, RunUntilStopsAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn([&] { ++fired; }, 10);
    eq.scheduleFn([&] { ++fired; }, 100);
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST_F(EventTest, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.scheduleFn([] {}, 100);
    eq.run();
    RecordingEvent a("a", nullptr);
    EXPECT_THROW(eq.schedule(&a, 50), SimError);
}

TEST_F(EventTest, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log);
    eq.schedule(&a, 10);
    EXPECT_THROW(eq.schedule(&a, 20), SimError);
    eq.deschedule(&a);
}

TEST_F(EventTest, RunMaxEventsStopsEarlyAndKeepsClock)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn([&] { ++fired; }, 10);
    eq.scheduleFn([&] { ++fired; }, 20);
    eq.scheduleFn([&] { ++fired; }, 30);
    // Cut short by max_events: the clock must stay at the last fired
    // event, not jump to the horizon.
    EXPECT_EQ(eq.run(100, 2), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    // Resuming with the same horizon drains the rest and then the
    // clock advances to the horizon.
    EXPECT_EQ(eq.run(100), 1u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 100u);
}

TEST_F(EventTest, RunMaxEventsExactlyAtHorizonBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn([&] { ++fired; }, 10);
    eq.scheduleFn([&] { ++fired; }, 99);
    // max_events == number of events before the horizon: the budget
    // runs out first, so the clock stays on the last event.
    EXPECT_EQ(eq.run(50, 1), 1u);
    EXPECT_EQ(eq.now(), 10u);
    // No events left before the horizon: clock advances to it.
    EXPECT_EQ(eq.run(50, 1), 0u);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 99u);
}

TEST_F(EventTest, StaleHandleOfReusedSlotDoesNotCancel)
{
    EventQueue eq;
    int a = 0, b = 0;
    auto ha = eq.scheduleFn([&] { ++a; }, 10);
    eq.cancelFn(ha);
    // The freed slot is reused immediately; the old handle must be
    // dead (generation mismatch), not alias the new event.
    auto hb = eq.scheduleFn([&] { ++b; }, 10);
    eq.cancelFn(ha); // stale: must be a no-op
    eq.run();
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    (void)hb;
}

TEST_F(EventTest, FarFutureEventsCrossTheRingWindow)
{
    // Events beyond the near-band window park in the overflow heap
    // and migrate as the window advances; order must be unaffected.
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log), c("c", &log),
        d("d", &log);
    eq.schedule(&b, 5000);
    eq.schedule(&a, 3);
    eq.schedule(&c, 200000);
    eq.schedule(&d, 5000); // same cycle as b, scheduled later
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "d", "c"}));
    EXPECT_EQ(eq.now(), 200000u);
}

TEST_F(EventTest, SameCycleOrderAcrossBandMigration)
{
    // 'a' enters the far band; a filler fire advances the window so
    // 'a' migrates to the ring; 'b' then schedules at the same cycle
    // directly into the ring. Schedule order must still hold.
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", &log), b("b", &log), f("f", &log);
    eq.schedule(&a, 2000);
    eq.schedule(&f, 1990);
    eq.run(1995);
    eq.schedule(&b, 2000);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"f", "a", "b"}));
}

TEST_F(EventTest, ScheduleAfterIdleAdvancePastWindow)
{
    // run(until) may move the clock far beyond the current ring
    // window without firing anything; scheduling afterwards must
    // still work and fire at the right time.
    EventQueue eq;
    eq.run(50000);
    EXPECT_EQ(eq.now(), 50000u);
    int fired = 0;
    eq.scheduleFn([&] { ++fired; }, 50001);
    eq.scheduleFn([&] { ++fired; }, 123456);
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 123456u);
}

TEST_F(EventTest, RescheduleChurnKeepsQueueBounded)
{
    // Lazy cancellation leaves dead entries behind; the sweeps must
    // keep total held entries O(live), not O(reschedules). The seed
    // kernel grew its heap by one dead entry per reschedule forever.
    EventQueue eq;
    std::vector<std::string> log;
    std::deque<RecordingEvent> evs; // Event is pinned: no moves
    for (int i = 0; i < 16; ++i)
        evs.emplace_back("e", &log);

    // Near-band churn: targets stay inside the ring window.
    for (std::uint64_t i = 0; i < 100000; ++i)
        eq.reschedule(&evs[i % evs.size()], eq.now() + 1 + i % 500);
    EXPECT_LT(eq.heapSize(), 16u + 200u);

    // Far-band churn: targets park in the overflow heap.
    for (std::uint64_t i = 0; i < 100000; ++i)
        eq.reschedule(&evs[i % evs.size()], eq.now() + 100000 + i);
    EXPECT_LT(eq.heapSize(), 16u + 200u);

    for (auto &ev : evs)
        eq.deschedule(&ev);
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST_F(EventTest, PendingCountsLiveEvents)
{
    EventQueue eq;
    RecordingEvent a("a", nullptr), b("b", nullptr);
    std::vector<std::string> log;
    a.log = &log;
    b.log = &log;
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
}

} // namespace
