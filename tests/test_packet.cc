/**
 * @file
 * Unit tests for the inline-payload packet representation: WordVec
 * capacity boundaries, conversions from legacy std::vector call
 * sites, and the Packet size accounting the NI window relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/packet.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::net;

namespace
{

struct PacketTest : ::testing::Test
{
    PacketTest() { detail::setThrowOnError(true); }
    ~PacketTest() override { detail::setThrowOnError(false); }
};

TEST_F(PacketTest, ZeroWordPayload)
{
    PayloadVec v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.begin(), v.end());

    Packet p;
    EXPECT_EQ(p.size(), 2u); // header + handler only
}

TEST_F(PacketTest, ExactlyMaxPayloadWords)
{
    PayloadVec v;
    for (unsigned i = 0; i < kMaxPayloadWords; ++i)
        v.push_back(i * 3 + 1);
    EXPECT_EQ(v.size(), kMaxPayloadWords);
    for (unsigned i = 0; i < kMaxPayloadWords; ++i)
        EXPECT_EQ(v[i], i * 3 + 1);

    Packet p;
    p.payload = v;
    EXPECT_EQ(p.size(), kMaxMessageWords);
}

TEST_F(PacketTest, PushPastCapacityAsserts)
{
    PayloadVec v(kMaxPayloadWords, 0);
    EXPECT_THROW(v.push_back(1), SimError);
}

TEST_F(PacketTest, AssignPastCapacityAsserts)
{
    std::vector<Word> big(kMaxPayloadWords + 1, 7);
    PayloadVec v;
    EXPECT_THROW(v.assign(big.begin(), big.end()), SimError);
    EXPECT_THROW(PayloadVec{big}, SimError);
}

TEST_F(PacketTest, VectorConversionPreservesContent)
{
    std::vector<Word> src{4, 5, 6};
    PayloadVec v = src; // implicit: legacy call-site shape
    ASSERT_EQ(v.size(), 3u);
    EXPECT_TRUE(std::equal(v.begin(), v.end(), src.begin()));

    PayloadVec il{9, 8};
    ASSERT_EQ(il.size(), 2u);
    EXPECT_EQ(il[0], 9u);
    EXPECT_EQ(il[1], 8u);

    PayloadVec fill(4, 2);
    ASSERT_EQ(fill.size(), 4u);
    EXPECT_EQ(fill[3], 2u);
}

TEST_F(PacketTest, AtBoundsChecks)
{
    PayloadVec v{1, 2};
    EXPECT_EQ(v.at(1), 2u);
    EXPECT_THROW(v.at(2), SimError);
}

TEST_F(PacketTest, ClearAndReassign)
{
    PayloadVec v(kMaxPayloadWords, 1);
    v.clear();
    EXPECT_TRUE(v.empty());
    v.assign(2, 5);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 5u);
}

TEST_F(PacketTest, CopyIsDeepValueCopy)
{
    Packet a;
    a.src = 1;
    a.dst = 2;
    a.handler = 3;
    a.payload = PayloadVec{10, 20, 30};
    Packet b = a;
    b.payload[0] = 99;
    EXPECT_EQ(a.payload[0], 10u); // no shared heap storage
    EXPECT_EQ(b.payload[0], 99u);
}

} // namespace
