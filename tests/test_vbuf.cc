/**
 * @file
 * Unit tests for the virtual buffer: page accounting, FIFO content,
 * swap-out/page-in, and frame reclamation.
 */

#include <gtest/gtest.h>

#include "core/arch.hh"
#include "glaze/vbuf.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::glaze;

namespace
{

struct VbufTest : ::testing::Test
{
    VbufTest() : sg("t"), pool(6, &sg, 0), vb(pool, &sg, 0, 1)
    {
        detail::setThrowOnError(true);
    }

    ~VbufTest() override { detail::setThrowOnError(false); }

    net::Packet
    pkt(Word tag, unsigned payload_words = 1)
    {
        net::Packet p;
        p.src = 3;
        p.dst = 0;
        p.gid = 1;
        p.handler = 9;
        p.payload.assign(payload_words, tag);
        return p;
    }

    void
    insert(Word tag, unsigned payload_words = 1)
    {
        net::Packet p = pkt(tag, payload_words);
        if (vb.needsNewPageFor(p)) {
            ASSERT_TRUE(vb.allocatePage());
        }
        vb.insert(std::move(p));
    }

    StatGroup sg;
    FramePool pool;
    VirtualBuffer vb;
};

TEST_F(VbufTest, FifoContentMatchesInputWindowLayout)
{
    insert(100);
    insert(200);
    ASSERT_TRUE(vb.available());
    EXPECT_EQ(vb.size(), 3u);
    EXPECT_EQ(core::headerNode(vb.read(0)), 3);
    EXPECT_EQ(vb.read(1), 9u);
    EXPECT_EQ(vb.read(2), 100u);
    vb.pop();
    EXPECT_EQ(vb.read(2), 200u);
    vb.pop();
    EXPECT_FALSE(vb.available());
}

TEST_F(VbufTest, PagesAllocatedOnDemandAndFreedOnDrain)
{
    // Footprint = size+2 = 5 words for 1-payload messages; a page
    // holds kPageWords/5 of them.
    const unsigned per_page = kPageWords / 5;
    for (unsigned i = 0; i < per_page + 1; ++i)
        insert(i);
    EXPECT_EQ(vb.pagesAllocated(), 2u);
    EXPECT_EQ(pool.used(), 2u);
    EXPECT_DOUBLE_EQ(vb.stats.peakPages.value(), 2.0);
    // Drain the first page's worth: its frame returns.
    for (unsigned i = 0; i < per_page; ++i)
        vb.pop();
    EXPECT_EQ(vb.pagesAllocated(), 1u);
    EXPECT_EQ(pool.used(), 1u);
    vb.pop();
    EXPECT_TRUE(vb.empty());
    EXPECT_EQ(pool.used(), 0u);
}

TEST_F(VbufTest, InsertWithoutPagePanics)
{
    net::Packet p = pkt(1);
    EXPECT_THROW(vb.insert(std::move(p)), SimError);
}

TEST_F(VbufTest, SwapOutReleasesFramesNewestFirst)
{
    const unsigned per_page = kPageWords / 5;
    for (unsigned i = 0; i < 3 * per_page; ++i)
        insert(i);
    EXPECT_EQ(vb.pagesAllocated(), 3u);
    EXPECT_EQ(vb.swapOut(2), 2u);
    EXPECT_EQ(pool.used(), 1u);
    EXPECT_EQ(vb.pagesResident(), 1u);
    // The front (draining) page is never swapped: reads still work.
    EXPECT_FALSE(vb.frontSwapped());
    EXPECT_EQ(vb.read(2), 0u);
}

TEST_F(VbufTest, DrainIntoSwappedPageRequiresPageIn)
{
    const unsigned per_page = kPageWords / 5;
    for (unsigned i = 0; i < 2 * per_page; ++i)
        insert(i);
    EXPECT_EQ(vb.swapOut(1), 1u);
    for (unsigned i = 0; i < per_page; ++i)
        vb.pop();
    // Now the front message sits on the swapped page.
    EXPECT_TRUE(vb.frontSwapped());
    EXPECT_THROW(vb.read(2), SimError);
    ASSERT_TRUE(vb.pageInFront());
    EXPECT_EQ(vb.read(2), per_page);
    EXPECT_DOUBLE_EQ(vb.stats.pageIns.value(), 1.0);
}

TEST_F(VbufTest, StatsCountInsertsAndDrains)
{
    insert(1);
    insert(2);
    vb.pop();
    EXPECT_DOUBLE_EQ(vb.stats.inserts.value(), 2.0);
    EXPECT_DOUBLE_EQ(vb.stats.drained.value(), 1.0);
}

TEST_F(VbufTest, DestructorReturnsResidentFrames)
{
    {
        VirtualBuffer v2(pool, &sg, 0, 2);
        net::Packet p = pkt(1);
        ASSERT_TRUE(v2.allocatePage());
        v2.insert(std::move(p));
        EXPECT_EQ(pool.used(), 1u);
    }
    EXPECT_EQ(pool.used(), 0u);
}

TEST_F(VbufTest, TeardownWithSwappedPagesConservesPool)
{
    // Swapped pages already returned their frame to the pool; the
    // destructor must release only the still-resident ones, or the
    // pool would underflow / leak. Mixed case: 3 pages, 2 swapped.
    {
        VirtualBuffer v2(pool, &sg, 0, 2);
        const unsigned per_page = kPageWords / 5;
        for (unsigned i = 0; i < 3 * per_page; ++i) {
            net::Packet p = pkt(i);
            if (v2.needsNewPageFor(p)) {
                ASSERT_TRUE(v2.allocatePage());
            }
            v2.insert(std::move(p));
        }
        EXPECT_EQ(v2.swapOut(2), 2u);
        EXPECT_EQ(pool.used(), 1u);
    }
    EXPECT_EQ(pool.used(), 0u);
}

TEST_F(VbufTest, TeardownPartiallyDrainedConservesPool)
{
    // A process killed mid-drain: some messages consumed, the front
    // page half-empty, a later page paged back in after a swap.
    {
        VirtualBuffer v2(pool, &sg, 0, 2);
        const unsigned per_page = kPageWords / 5;
        for (unsigned i = 0; i < 2 * per_page; ++i) {
            net::Packet p = pkt(i);
            if (v2.needsNewPageFor(p)) {
                ASSERT_TRUE(v2.allocatePage());
            }
            v2.insert(std::move(p));
        }
        EXPECT_EQ(v2.swapOut(1), 1u);
        for (unsigned i = 0; i < per_page; ++i)
            v2.pop();
        ASSERT_TRUE(v2.pageInFront());
        v2.pop();
        EXPECT_EQ(pool.used(), 1u);
    }
    EXPECT_EQ(pool.used(), 0u);
}

TEST_F(VbufTest, LargeMessagesPackFewerPerPage)
{
    // 14-word payloads: footprint 18; page holds 56.
    const unsigned per_page = kPageWords / 18;
    for (unsigned i = 0; i < per_page + 1; ++i)
        insert(i, 14);
    EXPECT_EQ(vb.pagesAllocated(), 2u);
}

} // namespace
