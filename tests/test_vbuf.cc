/**
 * @file
 * Unit tests for the virtual buffer: page accounting, FIFO content,
 * swap-out/page-in, and frame reclamation.
 */

#include <gtest/gtest.h>

#include "core/arch.hh"
#include "glaze/vbuf.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::glaze;

namespace
{

struct VbufTest : ::testing::Test
{
    VbufTest() : sg("t"), pool(6, &sg, 0), vb(pool, &sg, 0, 1)
    {
        detail::setThrowOnError(true);
    }

    ~VbufTest() override { detail::setThrowOnError(false); }

    net::Packet
    pkt(Word tag, unsigned payload_words = 1)
    {
        net::Packet p;
        p.src = 3;
        p.dst = 0;
        p.gid = 1;
        p.handler = 9;
        p.payload.assign(payload_words, tag);
        return p;
    }

    void
    insert(Word tag, unsigned payload_words = 1)
    {
        net::Packet p = pkt(tag, payload_words);
        if (vb.needsNewPageFor(p)) {
            ASSERT_TRUE(vb.allocatePage());
        }
        vb.insert(std::move(p));
    }

    StatGroup sg;
    FramePool pool;
    VirtualBuffer vb;
};

TEST_F(VbufTest, FifoContentMatchesInputWindowLayout)
{
    insert(100);
    insert(200);
    ASSERT_TRUE(vb.available());
    EXPECT_EQ(vb.size(), 3u);
    EXPECT_EQ(core::headerNode(vb.read(0)), 3);
    EXPECT_EQ(vb.read(1), 9u);
    EXPECT_EQ(vb.read(2), 100u);
    vb.pop();
    EXPECT_EQ(vb.read(2), 200u);
    vb.pop();
    EXPECT_FALSE(vb.available());
}

TEST_F(VbufTest, PagesAllocatedOnDemandAndFreedOnDrain)
{
    // Footprint = size+2 = 5 words for 1-payload messages; a page
    // holds kPageWords/5 of them.
    const unsigned per_page = kPageWords / 5;
    for (unsigned i = 0; i < per_page + 1; ++i)
        insert(i);
    EXPECT_EQ(vb.pagesAllocated(), 2u);
    EXPECT_EQ(pool.used(), 2u);
    EXPECT_DOUBLE_EQ(vb.stats.peakPages.value(), 2.0);
    // Drain the first page's worth: its frame returns.
    for (unsigned i = 0; i < per_page; ++i)
        vb.pop();
    EXPECT_EQ(vb.pagesAllocated(), 1u);
    EXPECT_EQ(pool.used(), 1u);
    vb.pop();
    EXPECT_TRUE(vb.empty());
    EXPECT_EQ(pool.used(), 0u);
}

TEST_F(VbufTest, InsertWithoutPagePanics)
{
    net::Packet p = pkt(1);
    EXPECT_THROW(vb.insert(std::move(p)), SimError);
}

TEST_F(VbufTest, SwapOutReleasesFramesNewestFirst)
{
    const unsigned per_page = kPageWords / 5;
    for (unsigned i = 0; i < 3 * per_page; ++i)
        insert(i);
    EXPECT_EQ(vb.pagesAllocated(), 3u);
    EXPECT_EQ(vb.swapOut(2), 2u);
    EXPECT_EQ(pool.used(), 1u);
    EXPECT_EQ(vb.pagesResident(), 1u);
    // The front (draining) page is never swapped: reads still work.
    EXPECT_FALSE(vb.frontSwapped());
    EXPECT_EQ(vb.read(2), 0u);
}

TEST_F(VbufTest, DrainIntoSwappedPageRequiresPageIn)
{
    const unsigned per_page = kPageWords / 5;
    for (unsigned i = 0; i < 2 * per_page; ++i)
        insert(i);
    EXPECT_EQ(vb.swapOut(1), 1u);
    for (unsigned i = 0; i < per_page; ++i)
        vb.pop();
    // Now the front message sits on the swapped page.
    EXPECT_TRUE(vb.frontSwapped());
    EXPECT_THROW(vb.read(2), SimError);
    ASSERT_TRUE(vb.pageInFront());
    EXPECT_EQ(vb.read(2), per_page);
    EXPECT_DOUBLE_EQ(vb.stats.pageIns.value(), 1.0);
}

TEST_F(VbufTest, StatsCountInsertsAndDrains)
{
    insert(1);
    insert(2);
    vb.pop();
    EXPECT_DOUBLE_EQ(vb.stats.inserts.value(), 2.0);
    EXPECT_DOUBLE_EQ(vb.stats.drained.value(), 1.0);
}

TEST_F(VbufTest, DestructorReturnsResidentFrames)
{
    {
        VirtualBuffer v2(pool, &sg, 0, 2);
        net::Packet p = pkt(1);
        ASSERT_TRUE(v2.allocatePage());
        v2.insert(std::move(p));
        EXPECT_EQ(pool.used(), 1u);
    }
    EXPECT_EQ(pool.used(), 0u);
}

TEST_F(VbufTest, TeardownWithSwappedPagesConservesPool)
{
    // Swapped pages already returned their frame to the pool; the
    // destructor must release only the still-resident ones, or the
    // pool would underflow / leak. Mixed case: 3 pages, 2 swapped.
    {
        VirtualBuffer v2(pool, &sg, 0, 2);
        const unsigned per_page = kPageWords / 5;
        for (unsigned i = 0; i < 3 * per_page; ++i) {
            net::Packet p = pkt(i);
            if (v2.needsNewPageFor(p)) {
                ASSERT_TRUE(v2.allocatePage());
            }
            v2.insert(std::move(p));
        }
        EXPECT_EQ(v2.swapOut(2), 2u);
        EXPECT_EQ(pool.used(), 1u);
    }
    EXPECT_EQ(pool.used(), 0u);
}

TEST_F(VbufTest, TeardownPartiallyDrainedConservesPool)
{
    // A process killed mid-drain: some messages consumed, the front
    // page half-empty, a later page paged back in after a swap.
    {
        VirtualBuffer v2(pool, &sg, 0, 2);
        const unsigned per_page = kPageWords / 5;
        for (unsigned i = 0; i < 2 * per_page; ++i) {
            net::Packet p = pkt(i);
            if (v2.needsNewPageFor(p)) {
                ASSERT_TRUE(v2.allocatePage());
            }
            v2.insert(std::move(p));
        }
        EXPECT_EQ(v2.swapOut(1), 1u);
        for (unsigned i = 0; i < per_page; ++i)
            v2.pop();
        ASSERT_TRUE(v2.pageInFront());
        v2.pop();
        EXPECT_EQ(pool.used(), 1u);
    }
    EXPECT_EQ(pool.used(), 0u);
}

TEST_F(VbufTest, LargeMessagesPackFewerPerPage)
{
    // 14-word payloads: footprint 18; page holds 56.
    const unsigned per_page = kPageWords / 18;
    for (unsigned i = 0; i < per_page + 1; ++i)
        insert(i, 14);
    EXPECT_EQ(vb.pagesAllocated(), 2u);
}

namespace
{
/**
 * FNV-1a over the window-visible words of a buffered record — the
 * same observable surface the invariant checker's content-
 * transparency hash covers (what user code can read back out).
 */
std::uint64_t
windowHash(const std::vector<Word> &words)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (Word w : words) {
        std::uint64_t v = w;
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}
} // namespace

TEST_F(VbufTest, MaxSizeRecordRoundTripsBitExact)
{
    // A full kMaxMessageWords message: header + handler + 14 distinct
    // payload words. The inline-payload representation must hand back
    // exactly the words that went in, in window order, and the
    // content-transparency hash over them must not move.
    net::Packet p = pkt(0, net::kMaxPayloadWords);
    for (unsigned i = 0; i < net::kMaxPayloadWords; ++i)
        p.payload[i] = 0xA000 + i * 7;
    ASSERT_EQ(p.size(), net::kMaxMessageWords);

    std::vector<Word> sent;
    sent.push_back(core::makeHeader(p.src, false));
    sent.push_back(p.handler);
    sent.insert(sent.end(), p.payload.begin(), p.payload.end());
    const std::uint64_t hash_in = windowHash(sent);

    ASSERT_TRUE(vb.allocatePage());
    vb.insert(std::move(p));
    ASSERT_TRUE(vb.available());
    ASSERT_EQ(vb.size(), net::kMaxMessageWords);

    std::vector<Word> got;
    for (unsigned i = 0; i < vb.size(); ++i)
        got.push_back(vb.read(i));
    EXPECT_EQ(got, sent);
    EXPECT_EQ(windowHash(got), hash_in);
    vb.pop();
    EXPECT_FALSE(vb.available());
}

TEST_F(VbufTest, ZeroPayloadRecordRoundTrips)
{
    net::Packet p = pkt(0, 0);
    ASSERT_EQ(p.size(), 2u);
    ASSERT_TRUE(vb.allocatePage());
    vb.insert(std::move(p));
    ASSERT_TRUE(vb.available());
    ASSERT_EQ(vb.size(), 2u);
    EXPECT_EQ(core::headerNode(vb.read(0)), 3);
    EXPECT_EQ(vb.read(1), 9u);
    vb.pop();
    EXPECT_FALSE(vb.available());
}

TEST_F(VbufTest, MaxSizeRecordSurvivesSwapRoundTrip)
{
    // Same max-size record, but through the swap-out / page-in path:
    // buffered content must be transparent across paging too.
    VirtualBuffer v2(pool, &sg, 0, 2);
    const unsigned per_page = kPageWords / (net::kMaxMessageWords + 2);
    std::vector<std::uint64_t> hashes;
    for (unsigned i = 0; i < per_page + 1; ++i) {
        net::Packet p = pkt(0, net::kMaxPayloadWords);
        for (unsigned j = 0; j < net::kMaxPayloadWords; ++j)
            p.payload[j] = i * 100 + j;
        std::vector<Word> sent;
        sent.push_back(core::makeHeader(p.src, false));
        sent.push_back(p.handler);
        sent.insert(sent.end(), p.payload.begin(), p.payload.end());
        hashes.push_back(windowHash(sent));
        if (v2.needsNewPageFor(p)) {
            ASSERT_TRUE(v2.allocatePage());
        }
        v2.insert(std::move(p));
    }
    ASSERT_EQ(v2.swapOut(1), 1u);
    for (unsigned i = 0; i < per_page + 1; ++i) {
        if (v2.frontSwapped())
            ASSERT_TRUE(v2.pageInFront());
        ASSERT_TRUE(v2.available());
        std::vector<Word> got;
        for (unsigned w = 0; w < v2.size(); ++w)
            got.push_back(v2.read(w));
        EXPECT_EQ(windowHash(got), hashes[i]) << "record " << i;
        v2.pop();
    }
    EXPECT_FALSE(v2.available());
}

} // namespace
