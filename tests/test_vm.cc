/**
 * @file
 * Unit tests for the frame pool and demand-zero address spaces.
 */

#include <gtest/gtest.h>

#include "glaze/vm.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::glaze;

namespace
{

struct VmTest : ::testing::Test
{
    VmTest() : sg("t"), pool(8, &sg, 0) { detail::setThrowOnError(true); }
    ~VmTest() override { detail::setThrowOnError(false); }

    StatGroup sg;
    FramePool pool;
};

TEST_F(VmTest, PoolAllocatesUpToTotal)
{
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(pool.tryAllocate());
    EXPECT_FALSE(pool.tryAllocate());
    EXPECT_EQ(pool.free(), 0u);
    EXPECT_DOUBLE_EQ(pool.stats.allocationFailures.value(), 1.0);
    pool.release();
    EXPECT_TRUE(pool.tryAllocate());
}

TEST_F(VmTest, PeakUsedTracksHighWater)
{
    pool.tryAllocate();
    pool.tryAllocate();
    pool.release();
    pool.tryAllocate();
    EXPECT_DOUBLE_EQ(pool.stats.peakUsed.value(), 2.0);
}

TEST_F(VmTest, WatermarkDetection)
{
    pool.setLowWatermark(2);
    for (int i = 0; i < 5; ++i)
        pool.tryAllocate();
    EXPECT_FALSE(pool.belowWatermark()); // 3 free > 2
    pool.tryAllocate();
    EXPECT_TRUE(pool.belowWatermark()); // 2 free <= 2
}

TEST_F(VmTest, ReleaseWithoutAllocatePanics)
{
    EXPECT_THROW(pool.release(), SimError);
}

TEST_F(VmTest, AddressSpaceDemandZeroLifecycle)
{
    AddressSpace as(pool);
    as.reserve(10, 3);
    EXPECT_EQ(as.state(10), PageState::ZeroFill);
    EXPECT_EQ(as.state(13), PageState::Unmapped);
    EXPECT_TRUE(as.needsFault(10));
    EXPECT_TRUE(as.mapPage(10));
    EXPECT_EQ(as.state(10), PageState::Mapped);
    EXPECT_FALSE(as.needsFault(10));
    EXPECT_EQ(as.mappedPages(), 1u);
    EXPECT_EQ(pool.used(), 1u);
    as.unmapPage(10);
    EXPECT_EQ(pool.used(), 0u);
    EXPECT_EQ(as.state(10), PageState::ZeroFill);
}

TEST_F(VmTest, AccessToUnreservedPagePanics)
{
    AddressSpace as(pool);
    EXPECT_THROW(as.needsFault(99), SimError);
}

TEST_F(VmTest, MapFailsWhenPoolEmpty)
{
    AddressSpace as(pool);
    as.reserve(0, 16);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(as.mapPage(i));
    EXPECT_FALSE(as.mapPage(8));
}

TEST_F(VmTest, AddressSpaceDtorReturnsFrames)
{
    {
        AddressSpace as(pool);
        as.reserve(0, 4);
        as.mapPage(0);
        as.mapPage(1);
        EXPECT_EQ(pool.used(), 2u);
    }
    EXPECT_EQ(pool.used(), 0u);
}

TEST_F(VmTest, DoubleReservePanics)
{
    AddressSpace as(pool);
    as.reserve(5, 2);
    EXPECT_THROW(as.reserve(6, 1), SimError);
}

} // namespace
