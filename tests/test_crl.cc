/**
 * @file
 * CRL coherence protocol tests: data movement, invalidation,
 * upgrades, writeback fetches, home locality, sequential consistency
 * under contention, and operation over the buffered path when
 * multiprogrammed with schedule skew.
 */

#include <gtest/gtest.h>

#include "apps/common.hh"
#include "glaze/machine.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::glaze;
using namespace fugu::apps;
using exec::CoTask;
using crl::Rid;

namespace
{

struct CrlTest : ::testing::Test
{
    CrlTest() { detail::setThrowOnError(true); }
    ~CrlTest() override { detail::setThrowOnError(false); }
};

CoTask<void>
writerThenReaders(Process &p, unsigned nnodes, std::vector<Word> *seen)
{
    AppEnv &e = env(p, nnodes);
    e.crl.createRegion(/*rid=*/1, /*home=*/1, /*words=*/40);
    co_await e.barrier.wait();
    if (p.node() == 0) {
        co_await e.crl.startWrite(1);
        for (unsigned i = 0; i < 40; ++i)
            e.crl.write(1, i, 1000 + i);
        co_await e.crl.endWrite(1);
    }
    co_await e.barrier.wait();
    co_await e.crl.startRead(1);
    for (unsigned i = 0; i < 40; ++i)
        seen[p.node()].push_back(e.crl.read(1, i));
    co_await e.crl.endRead(1);
    co_await e.barrier.wait();
}

TEST_F(CrlTest, WriterThenAllReadersSeeData)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    Machine m(cfg);
    std::vector<Word> seen[4];
    Job *job = m.addJob("crl", [&seen](Process &p) {
        return writerThenReaders(p, 4, seen);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    for (unsigned n = 0; n < 4; ++n) {
        ASSERT_EQ(seen[n].size(), 40u) << "node " << n;
        for (unsigned i = 0; i < 40; ++i)
            EXPECT_EQ(seen[n][i], 1000 + i) << "node " << n;
    }
}

CoTask<void>
incrementer(Process &p, unsigned nnodes, int iters, NodeId home)
{
    AppEnv &e = env(p, nnodes);
    e.crl.createRegion(7, home, 4);
    co_await e.barrier.wait();
    for (int i = 0; i < iters; ++i) {
        co_await e.crl.startWrite(7);
        const Word v = e.crl.read(7, 0);
        e.crl.write(7, 0, v + 1);
        co_await e.crl.endWrite(7);
        co_await p.compute(e.rng.uniform(10, 200));
    }
    co_await e.barrier.wait();
}

TEST_F(CrlTest, ContendedCounterIsSequentiallyConsistent)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    Machine m(cfg);
    constexpr int kIters = 50;
    Job *job = m.addJob("ctr", [](Process &p) {
        return incrementer(p, 4, kIters, /*home=*/2);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    // Read the final value out of the home's master copy.
    // (All copies were written back or invalidated; check via a
    // fresh read section on the home process's CRL.)
    AppEnv &e = env(*job->procs[2], 4);
    (void)e;
    // The last writer's copy holds the truth; sum of increments:
    // verify through the stats instead: every increment was a write
    // section; total write sections == nodes * iters.
    double total_writes = 0;
    for (auto *proc : job->procs) {
        AppEnv &pe = env(*proc, 4);
        total_writes += pe.crl.stats.startOps.value();
    }
    EXPECT_GE(total_writes, 4.0 * kIters);
}

CoTask<void>
counterCheck(Process &p, unsigned nnodes, int iters, Word *final_value)
{
    AppEnv &e = env(p, nnodes);
    e.crl.createRegion(7, /*home=*/1, 4);
    co_await e.barrier.wait();
    for (int i = 0; i < iters; ++i) {
        co_await e.crl.startWrite(7);
        const Word v = e.crl.read(7, 0);
        e.crl.write(7, 0, v + 1);
        co_await e.crl.endWrite(7);
        co_await p.compute(e.rng.uniform(10, 300));
    }
    co_await e.barrier.wait();
    if (p.node() == 0) {
        co_await e.crl.startRead(7);
        *final_value = e.crl.read(7, 0);
        co_await e.crl.endRead(7);
    }
    co_await e.barrier.wait();
}

TEST_F(CrlTest, CounterSumsToTotalIncrements)
{
    MachineConfig cfg;
    cfg.nodes = 8;
    cfg.seed = 5;
    Machine m(cfg);
    constexpr int kIters = 40;
    Word final_value = 0;
    Job *job = m.addJob("ctr", [&final_value](Process &p) {
        return counterCheck(p, 8, kIters, &final_value);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    EXPECT_EQ(final_value, 8u * kIters);
}

TEST_F(CrlTest, CounterCorrectUnderSkewedMultiprogramming)
{
    // The same consistency check, but gang-scheduled against a null
    // application with heavy skew: protocol messages routinely take
    // the buffered path and must still be delivered exactly once and
    // in order.
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    Machine m(cfg);
    constexpr int kIters = 30;
    Word final_value = 0;
    Job *job = m.addJob("ctr", [&final_value](Process &p) {
        return counterCheck(p, 4, kIters, &final_value);
    });
    m.addJob("null", [](Process &p) -> CoTask<void> {
        for (;;)
            co_await p.compute(10000);
    });
    GangConfig g;
    g.quantum = 25000;
    g.skew = 0.4;
    m.startGang(g);
    ASSERT_TRUE(m.runUntilDone(job, 500000000ull));
    EXPECT_EQ(final_value, 4u * kIters);
    // The skew must actually have exercised the buffered path.
    double buffered = 0;
    for (auto *proc : job->procs)
        buffered += proc->stats.bufferedDelivered.value();
    EXPECT_GE(buffered, 1.0);
}

CoTask<void>
upgradeApp(Process &p, unsigned nnodes, Word *observed)
{
    AppEnv &e = env(p, nnodes);
    e.crl.createRegion(3, /*home=*/0, 8);
    co_await e.barrier.wait();
    // Everyone reads (region becomes widely shared).
    co_await e.crl.startRead(3);
    (void)e.crl.read(3, 0);
    co_await e.crl.endRead(3);
    co_await e.barrier.wait();
    // Node 2 upgrades to write: invalidations must reach everyone.
    if (p.node() == 2) {
        co_await e.crl.startWrite(3);
        e.crl.write(3, 0, 77);
        co_await e.crl.endWrite(3);
    }
    co_await e.barrier.wait();
    co_await e.crl.startRead(3);
    observed[p.node()] = e.crl.read(3, 0);
    co_await e.crl.endRead(3);
    co_await e.barrier.wait();
}

TEST_F(CrlTest, SharedToExclusiveUpgradeInvalidates)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    Machine m(cfg);
    Word observed[4] = {};
    Job *job = m.addJob("up", [&observed](Process &p) {
        return upgradeApp(p, 4, observed);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    for (unsigned n = 0; n < 4; ++n)
        EXPECT_EQ(observed[n], 77u) << "node " << n;
    AppEnv &home_env = env(*job->procs[0], 4);
    EXPECT_GE(home_env.crl.stats.invalidationsSent.value(), 1.0);
    AppEnv &writer_env = env(*job->procs[2], 4);
    EXPECT_GE(writer_env.crl.stats.upgrades.value(), 1.0);
}

CoTask<void>
homeLocalApp(Process &p, unsigned nnodes, double *launches_delta)
{
    AppEnv &e = env(p, nnodes);
    e.crl.createRegion(9, /*home=*/0, 16);
    co_await e.barrier.wait();
    if (p.node() == 0) {
        const double before =
            p.port().ni().stats.launches.value();
        for (int i = 0; i < 10; ++i) {
            co_await e.crl.startWrite(9);
            e.crl.write(9, 0, i);
            co_await e.crl.endWrite(9);
            co_await e.crl.startRead(9);
            (void)e.crl.read(9, 0);
            co_await e.crl.endRead(9);
        }
        *launches_delta =
            p.port().ni().stats.launches.value() - before;
    }
    co_await e.barrier.wait();
}

TEST_F(CrlTest, HomeLocalAccessSendsNoProtocolMessages)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);
    double launches_delta = -1;
    Job *job = m.addJob("local", [&launches_delta](Process &p) {
        return homeLocalApp(p, 2, &launches_delta);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    EXPECT_EQ(launches_delta, 0.0);
}

CoTask<void>
randomMix(Process &p, unsigned nnodes, int ops, std::uint64_t seed,
          bool *monotonic_ok)
{
    AppEnv &e = env(p, nnodes, seed);
    constexpr unsigned kRegions = 6;
    for (unsigned r = 0; r < kRegions; ++r)
        e.crl.createRegion(100 + r, static_cast<NodeId>(r % nnodes), 24);
    std::vector<Word> last(kRegions, 0);
    co_await e.barrier.wait();
    for (int i = 0; i < ops; ++i) {
        const unsigned r = static_cast<unsigned>(
            e.rng.uniform(0, kRegions - 1));
        const Rid rid = 100 + r;
        if (e.rng.uniform(0, 99) < 40) {
            co_await e.crl.startWrite(rid);
            e.crl.write(rid, 0, e.crl.read(rid, 0) + 1);
            co_await e.crl.endWrite(rid);
        } else {
            co_await e.crl.startRead(rid);
            const Word v = e.crl.read(rid, 0);
            co_await e.crl.endRead(rid);
            // Monotonic reads: per-region sequential consistency.
            if (v < last[r])
                *monotonic_ok = false;
            last[r] = v;
        }
        co_await p.compute(e.rng.uniform(5, 100));
    }
    co_await e.barrier.wait();
}

TEST_F(CrlTest, RandomMixedWorkloadKeepsMonotonicReads)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 17;
    Machine m(cfg);
    bool monotonic_ok = true;
    Job *job = m.addJob("mix", [&monotonic_ok](Process &p) {
        return randomMix(p, 4, 120, 17, &monotonic_ok);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    EXPECT_TRUE(monotonic_ok);
}

} // namespace
