/**
 * @file
 * Serving-tier tests: the sharded KV store and the RPC echo complete
 * every open-loop request with consistent accounting, the run is
 * bit-identical whatever FUGU_THREADS is at a fixed shard count, the
 * parallel engine agrees with the serial oracle on everything the
 * application semantically produced, and a fault storm against the
 * tier finishes with zero invariant violations.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "glaze/machine.hh"
#include "harness/experiment.hh"
#include "serve/serve.hh"

using namespace fugu;
using harness::RunStats;

namespace
{

struct ServeRun
{
    RunStats rs;
    serve::ServeResult sr;
};

ServeRun
runServe(const std::string &app, unsigned nodes, unsigned shards,
         unsigned requests, bool gang = false, bool faults = false)
{
    glaze::MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.parShards = shards;
    cfg.seed = 7;
    if (faults) {
        cfg.fault.enabled = true;
        cfg.fault.delayJitterProb = 0.10;
        cfg.fault.inputFullProb = 0.02;
        cfg.fault.outputFullProb = 0.10;
        cfg.fault.frameDenyProb = 0.05;
        cfg.fault.divertStormProb = 0.15;
        cfg.fault.atomTimeoutProb = 0.15;
        cfg.fault.pageFaultProb = 0.03;
    }
    serve::ServeConfig sc;
    sc.app = app;
    sc.requests = requests;
    sc.warmup = 20;
    sim::ArrivalConfig ac;
    ac.ratePerKcycle = 2.0;
    auto slots =
        std::make_shared<std::vector<serve::ServeResult>>(cfg.nodes);
    harness::AppFactory fac = [sc, ac,
                               slots](unsigned n, std::uint64_t seed) {
        serve::ServeConfig s2 = sc;
        s2.seed = seed;
        sim::ArrivalConfig a2 = ac;
        a2.seed = seed;
        return serve::makeServingApp(n, s2, a2, slots);
    };
    glaze::GangConfig g;
    g.quantum = 20000;
    g.skew = 0.3;
    ServeRun out;
    out.rs = harness::runJob(cfg, fac, /*with_null=*/gang, gang, g);
    out.sr = serve::mergeSlots(*slots);
    return out;
}

/** Scoped FUGU_THREADS override (the pool reads it per machine). */
class ThreadsEnv
{
  public:
    explicit ThreadsEnv(const char *v)
    {
        const char *old = std::getenv("FUGU_THREADS");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        setenv("FUGU_THREADS", v, 1);
    }
    ~ThreadsEnv()
    {
        if (had_)
            setenv("FUGU_THREADS", old_.c_str(), 1);
        else
            unsetenv("FUGU_THREADS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

void
expectConsistent(const ServeRun &r, unsigned nodes, unsigned requests)
{
    EXPECT_TRUE(r.rs.completed);
    EXPECT_DOUBLE_EQ(r.rs.violations, 0.0);
    const std::uint64_t expect =
        static_cast<std::uint64_t>(nodes) * requests;
    EXPECT_EQ(r.sr.offeredArrivals, expect);
    EXPECT_EQ(r.sr.completed, expect);
    // Every completed request was classified exactly once.
    EXPECT_EQ(r.sr.latFast.count + r.sr.latBuffered.count, expect);
    EXPECT_LE(r.sr.sloMet, r.sr.completed);
    EXPECT_LE(r.sr.servedBuffered, r.sr.completed);
    EXPECT_GT(r.sr.span(), 0u);
    EXPECT_GT(r.sr.latFast.maxValue() + r.sr.latBuffered.maxValue(),
              0.0);
}

TEST(ServeTest, KvCompletesWithConsistentAccounting)
{
    const ServeRun r = runServe("kv", 4, 1, 100);
    expectConsistent(r, 4, 100);
    // put_frac=0.10 over 400 requests: some puts, mostly gets.
    EXPECT_GT(r.sr.puts, 0u);
    EXPECT_LT(r.sr.puts, r.sr.completed / 2);
    // ~1/4 of a uniform-hashed keyspace is home on the requester.
    EXPECT_GT(r.sr.localHits, 0u);
}

TEST(ServeTest, RpcCompletesWithConsistentAccounting)
{
    const ServeRun r = runServe("rpc", 4, 1, 100);
    expectConsistent(r, 4, 100);
    // The RPC echo never touches the store.
    EXPECT_EQ(r.sr.puts, 0u);
    EXPECT_EQ(r.sr.localHits, 0u);
}

TEST(ServeTest, FixedShardsBitIdenticalAcrossThreads)
{
    ServeRun a, b;
    {
        ThreadsEnv env("1");
        a = runServe("kv", 4, 2, 60);
    }
    {
        ThreadsEnv env("4");
        b = runServe("kv", 4, 2, 60);
    }
    EXPECT_TRUE(a.rs == b.rs);
    EXPECT_TRUE(a.sr == b.sr);
}

TEST(ServeTest, SerialAndShardedAgreeSemantically)
{
    // The weave interleaves shard timelines differently from the
    // serial oracle, so cycle-stamped quantities (latency histograms,
    // span) may differ; what the application semantically produced —
    // which requests ran, completed, hit locally, mutated the store —
    // must not.
    const ServeRun s1 = runServe("kv", 4, 1, 60);
    const ServeRun s2 = runServe("kv", 4, 2, 60);
    EXPECT_TRUE(s1.rs.completed && s2.rs.completed);
    EXPECT_DOUBLE_EQ(s2.rs.violations, 0.0);
    EXPECT_EQ(s1.sr.offeredArrivals, s2.sr.offeredArrivals);
    EXPECT_EQ(s1.sr.completed, s2.sr.completed);
    EXPECT_EQ(s1.sr.puts, s2.sr.puts);
    EXPECT_EQ(s1.sr.localHits, s2.sr.localHits);
}

TEST(ServeTest, GangSchedulingExercisesTheBufferedCase)
{
    // A short skewed quantum against the null app forces quantum
    // switches mid-stream: some requests must be served off the
    // buffered path, and both delivery cases stay violation-free.
    const ServeRun r = runServe("kv", 4, 1, 120, /*gang=*/true);
    expectConsistent(r, 4, 120);
    EXPECT_GT(r.sr.latBuffered.count, 0u);
    EXPECT_GT(r.sr.latFast.count, 0u);
}

TEST(ServeTest, FaultStormAgainstServingTierIsViolationFree)
{
    for (const char *app : {"kv", "rpc"}) {
        const ServeRun r =
            runServe(app, 4, 1, 80, /*gang=*/true, /*faults=*/true);
        expectConsistent(r, 4, 80);
        EXPECT_GT(r.rs.faultEvents, 0.0) << app;
    }
}

TEST(ServeTest, ResultMergeAccumulates)
{
    serve::ServeResult a, b;
    a.offeredArrivals = 10;
    a.completed = 9;
    a.sloMet = 5;
    a.firstArrival = 100;
    a.lastReply = 900;
    a.latFast.sample(40);
    b.offeredArrivals = 4;
    b.completed = 4;
    b.sloMet = 4;
    b.firstArrival = 50;
    b.lastReply = 700;
    b.latBuffered.sample(8000);
    a.merge(b);
    EXPECT_EQ(a.offeredArrivals, 14u);
    EXPECT_EQ(a.completed, 13u);
    EXPECT_EQ(a.sloMet, 9u);
    EXPECT_EQ(a.firstArrival, 50u);
    EXPECT_EQ(a.lastReply, 900u);
    EXPECT_EQ(a.span(), 850u);
    EXPECT_EQ(a.latFast.count, 1u);
    EXPECT_EQ(a.latBuffered.count, 1u);
}

} // namespace
