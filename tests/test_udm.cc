/**
 * @file
 * Unit tests for the UdmPort user-level API: cost accounting (the
 * building blocks of Table 4), conditional injection, transparent
 * buffered reads, and the observer hooks.
 */

#include <gtest/gtest.h>

#include "core/udm.hh"
#include "glaze/machine.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::glaze;
using exec::CoTask;

namespace
{

struct UdmTest : ::testing::Test
{
    UdmTest() { detail::setThrowOnError(true); }
    ~UdmTest() override { detail::setThrowOnError(false); }
};

CoTask<void>
sendCosts(Process &p, std::vector<double> *deltas)
{
    // Null message: descriptor construction (6) + launch (1).
    double before = p.cpu().userCycles();
    co_await p.port().send(1, 0);
    deltas->push_back(p.cpu().userCycles() - before);
    // Three-word payload adds 3 cycles/word.
    before = p.cpu().userCycles();
    std::vector<Word> args{1, 2, 3};
    co_await p.port().send(1, 0, std::move(args));
    deltas->push_back(p.cpu().userCycles() - before);
    // trySend with room behaves like send.
    before = p.cpu().userCycles();
    bool ok = co_await p.port().trySend(1, 0);
    deltas->push_back(p.cpu().userCycles() - before);
    deltas->push_back(ok ? 1.0 : 0.0);
}

CoTask<void>
sink(Process &p, int expect, int *count)
{
    rt::CondVar cv(p.threads());
    p.port().setHandler(
        0, [count, &cv](core::UdmPort &port, NodeId) -> CoTask<void> {
            for (unsigned i = 0; i < port.headPayloadWords(); ++i)
                (void)co_await port.read(i);
            co_await port.dispose();
            ++*count;
            cv.notifyAll();
        });
    while (*count < expect)
        co_await cv.wait();
}

TEST_F(UdmTest, SendChargesTable4Costs)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);
    std::vector<double> deltas;
    int count = 0;
    Job *job = m.addJob("t", [&](Process &p) {
        return p.node() == 0 ? sendCosts(p, &deltas)
                             : sink(p, 3, &count);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    ASSERT_EQ(deltas.size(), 4u);
    EXPECT_DOUBLE_EQ(deltas[0], 7.0);      // 6 + 1
    EXPECT_DOUBLE_EQ(deltas[1], 16.0);     // 6 + 3*3 + 1
    EXPECT_DOUBLE_EQ(deltas[2], 7.0);      // trySend, null
    EXPECT_DOUBLE_EQ(deltas[3], 1.0);      // accepted
}

CoTask<void>
trySendUntilFull(Process &p, int *accepted, int *rejected)
{
    // Without a consumer, capacity is the input queue (4 messages)
    // plus the channel (64 words = four 16-word messages).
    std::vector<Word> big(14, 7);
    for (int i = 0; i < 12; ++i) {
        std::vector<Word> payload = big;
        bool ok = co_await p.port().trySend(1, 0, std::move(payload));
        ++(ok ? *accepted : *rejected);
    }
}

TEST_F(UdmTest, TrySendRefusesWhenNetworkFull)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);
    int accepted = 0, rejected = 0;
    Job *job = m.addJob("t", [&](Process &p) -> CoTask<void> {
        if (p.node() == 0)
            return trySendUntilFull(p, &accepted, &rejected);
        // Receiver never registers a handler and never drains; block
        // interrupts so the messages pile up in the input queue.
        return [](Process &pp) -> CoTask<void> {
            co_await pp.port().beginAtomic();
            co_await pp.compute(1u << 20);
            co_await pp.port().endAtomic();
        }(p);
    });
    m.installJob(job);
    m.run(200000);
    EXPECT_GT(accepted, 0);
    EXPECT_GT(rejected, 0);
    EXPECT_EQ(accepted + rejected, 12);
    EXPECT_EQ(accepted, 8);
}

struct CountingObserver : core::PortObserver
{
    int sends = 0, starts = 0, ends = 0, begins = 0, endsAtomic = 0;

    void onSend() override { ++sends; }
    void onDispatchStart(bool) override { ++starts; }
    void onDispatchEnd(bool, Cycle) override { ++ends; }
    void onBeginAtomic() override { ++begins; }
    void onEndAtomic() override { ++endsAtomic; }
};

CoTask<void>
observedSender(Process &p, core::PortObserver *obs)
{
    p.port().setObserver(obs);
    co_await p.port().beginAtomic();
    co_await p.port().endAtomic();
    co_await p.port().send(1, 0);
    co_await p.port().send(1, 0);
    p.port().setObserver(nullptr);
}

TEST_F(UdmTest, ObserverSeesEveryHook)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);
    CountingObserver obs;
    int count = 0;
    Job *job = m.addJob("t", [&](Process &p) {
        return p.node() == 0 ? observedSender(p, &obs)
                             : sink(p, 2, &count);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    EXPECT_EQ(obs.sends, 2);
    EXPECT_EQ(obs.begins, 1);
    EXPECT_EQ(obs.endsAtomic, 1);
}

/** A fake software buffer to test transparent reads in isolation. */
struct FakeBuffer : core::BufferedInput
{
    bool available() const override { return true; }
    unsigned size() const override { return 4; }

    Word
    read(unsigned offset) const override
    {
        return 1000 + offset;
    }
};

CoTask<void>
bufferedReader(Process &p, std::vector<Word> *out, double *cost)
{
    FakeBuffer fb;
    p.port().enterBuffered(&fb);
    out->push_back(p.port().headHandler());
    const double before = p.cpu().userCycles();
    out->push_back(co_await p.port().read(0));
    out->push_back(co_await p.port().read(1));
    *cost = p.cpu().userCycles() - before;
    p.port().exitBuffered();
}

TEST_F(UdmTest, BufferedReadsAreTransparentAndCostMore)
{
    MachineConfig cfg;
    cfg.nodes = 1;
    Machine m(cfg);
    std::vector<Word> out;
    double cost = 0;
    Job *job = m.addJob("t", [&](Process &p) {
        return bufferedReader(p, &out, &cost);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 1001u); // handler word via the base pointer
    EXPECT_EQ(out[1], 1002u); // payload word 0
    EXPECT_EQ(out[2], 1003u);
    // Buffered extraction: ~4.5 cycles/word vs 2 on the fast path.
    EXPECT_DOUBLE_EQ(cost, 8.0); // 2 * (9/2 rounded down) = 8
}

} // namespace
