/**
 * @file
 * Unit tests for the coroutine execution model (Context/Cpu).
 *
 * These tests pin down the semantics everything else relies on:
 * exact-cycle preemption of user contexts, kernel non-preemptibility,
 * trap control flow, return-path stealing, and the user-cycle timer
 * that backs the NI atomicity timer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exec/cpu.hh"
#include "sim/event.hh"
#include "sim/log.hh"
#include "sim/stats.hh"

using namespace fugu;
using namespace fugu::exec;

namespace
{

struct CpuTest : ::testing::Test
{
    CpuTest() : stats("test"), cpu(eq, 0, &stats)
    {
        detail::setThrowOnError(true);
    }

    ~CpuTest() override { detail::setThrowOnError(false); }

    EventQueue eq;
    StatGroup stats;
    Cpu cpu;
    std::vector<Cycle> log;
    std::vector<std::string> trace;
};

Task
spendTwice(Cpu *cpu, std::vector<Cycle> *log, Cycle a, Cycle b)
{
    co_await cpu->spend(a);
    log->push_back(cpu->now());
    co_await cpu->spend(b);
    log->push_back(cpu->now());
}

TEST_F(CpuTest, SpendAdvancesTime)
{
    auto ctx = cpu.spawn("t", false, spendTwice(&cpu, &log, 100, 50));
    cpu.switchTo(ctx);
    eq.run();
    EXPECT_EQ(log, (std::vector<Cycle>{100, 150}));
    EXPECT_TRUE(ctx->finished());
    EXPECT_DOUBLE_EQ(cpu.stats.userCycles.value(), 150.0);
}

TEST_F(CpuTest, ZeroSpendCompletesWithoutTimePassing)
{
    auto ctx = cpu.spawn("t", false, spendTwice(&cpu, &log, 0, 0));
    cpu.switchTo(ctx);
    eq.run();
    EXPECT_EQ(log, (std::vector<Cycle>{0, 0}));
    EXPECT_TRUE(ctx->finished());
}

CoTask<int>
addLater(Cpu *cpu, int a, int b)
{
    co_await cpu->spend(10);
    co_return a + b;
}

Task
caller(Cpu *cpu, std::vector<Cycle> *log)
{
    int v = co_await addLater(cpu, 2, 3);
    log->push_back(static_cast<Cycle>(v));
    log->push_back(cpu->now());
}

TEST_F(CpuTest, NestedCoTaskReturnsValue)
{
    auto ctx = cpu.spawn("t", false, caller(&cpu, &log));
    cpu.switchTo(ctx);
    eq.run();
    EXPECT_EQ(log, (std::vector<Cycle>{5, 10}));
}

Task
kernelHandler(Cpu *cpu, std::vector<std::string> *trace, Cycle cost,
              unsigned line_to_lower)
{
    trace->push_back("irq@" + std::to_string(cpu->now()));
    co_await cpu->spend(cost);
    if (line_to_lower != ~0u)
        cpu->lowerIrq(line_to_lower);
    trace->push_back("irqdone@" + std::to_string(cpu->now()));
}

TEST_F(CpuTest, IrqPreemptsUserMidSpendWithExactAccounting)
{
    cpu.setIrqHandler(0, [&](unsigned) {
        return kernelHandler(&cpu, &trace, 30, 0);
    });
    auto ctx = cpu.spawn("u", false, spendTwice(&cpu, &log, 100, 10));
    cpu.switchTo(ctx);
    eq.scheduleFn([&] { cpu.raiseIrq(0); }, 40);
    eq.run();
    // User spends 0-40, handler 40-70, user resumes 70-130, 130-140.
    EXPECT_EQ(trace, (std::vector<std::string>{"irq@40", "irqdone@70"}));
    EXPECT_EQ(log, (std::vector<Cycle>{130, 140}));
    EXPECT_DOUBLE_EQ(cpu.stats.userCycles.value(), 110.0);
    EXPECT_DOUBLE_EQ(cpu.stats.kernelCycles.value(), 30.0);
    EXPECT_DOUBLE_EQ(cpu.stats.preemptions.value(), 1.0);
}

TEST_F(CpuTest, KernelContextIsNotPreempted)
{
    cpu.setIrqHandler(0, [&](unsigned) {
        return kernelHandler(&cpu, &trace, 5, 0);
    });
    auto ctx = cpu.spawn("k", true, spendTwice(&cpu, &log, 100, 10));
    cpu.switchTo(ctx);
    eq.scheduleFn([&] { cpu.raiseIrq(0); }, 40);
    eq.run();
    // Kernel runs to completion 0-110; handler only afterwards.
    EXPECT_EQ(log, (std::vector<Cycle>{100, 110}));
    EXPECT_EQ(trace,
              (std::vector<std::string>{"irq@110", "irqdone@115"}));
}

Task
computeThenSpend(Cpu *cpu, std::vector<Cycle> *log, bool *flag)
{
    co_await cpu->spend(10);
    *flag = true; // synchronous work; IRQ raised during this window
    co_await cpu->spend(10);
    log->push_back(cpu->now());
}

TEST_F(CpuTest, IrqBetweenSpendsTakenAtNextSpendBoundary)
{
    bool flag = false;
    cpu.setIrqHandler(0, [&](unsigned) {
        return kernelHandler(&cpu, &trace, 7, 0);
    }, /*pulse=*/true);
    auto ctx =
        cpu.spawn("u", false, computeThenSpend(&cpu, &log, &flag));
    cpu.switchTo(ctx);
    // Raise exactly when the first spend's end event fires; the user
    // code continues synchronously, so the IRQ pends until the next
    // spend begins.
    eq.scheduleFn([&] { cpu.raiseIrq(0); }, 10);
    eq.run();
    EXPECT_TRUE(flag);
    EXPECT_EQ(log, (std::vector<Cycle>{27})); // 10 + 7 handler + 10
}

TEST_F(CpuTest, PulseLineDoesNotRedispatch)
{
    int dispatches = 0;
    cpu.setIrqHandler(0, [&](unsigned) {
        ++dispatches;
        return kernelHandler(&cpu, &trace, 5, ~0u);
    }, /*pulse=*/true);
    auto ctx = cpu.spawn("u", false, spendTwice(&cpu, &log, 100, 100));
    cpu.switchTo(ctx);
    eq.scheduleFn([&] { cpu.raiseIrq(0); }, 10);
    eq.run();
    EXPECT_EQ(dispatches, 1);
    EXPECT_EQ(log, (std::vector<Cycle>{105, 205}));
}

TEST_F(CpuTest, IdleHookRunsWhenNothingToDo)
{
    int idles = 0;
    cpu.setIdleHook([&] { ++idles; });
    auto ctx = cpu.spawn("u", false, spendTwice(&cpu, &log, 10, 10));
    cpu.switchTo(ctx);
    eq.run();
    EXPECT_EQ(idles, 1);
}

Task
blocker(Cpu *cpu, std::vector<Cycle> *log)
{
    co_await cpu->spend(5);
    co_await cpu->block();
    log->push_back(cpu->now());
}

TEST_F(CpuTest, BlockAndWakeResumesAtWakePoint)
{
    auto ctx = cpu.spawn("u", false, blocker(&cpu, &log));
    cpu.switchTo(ctx);
    eq.scheduleFn(
        [&] {
            EXPECT_EQ(ctx->state(), CtxState::Blocked);
            cpu.wake(ctx);
            cpu.switchTo(ctx);
        },
        50);
    eq.run();
    EXPECT_EQ(log, (std::vector<Cycle>{50}));
    EXPECT_TRUE(ctx->finished());
}

Task
pingPong(Cpu *cpu, std::vector<std::string> *trace, const char *me,
         ContextPtr *other, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await cpu->spend(10);
        trace->push_back(std::string(me) + "@" +
                         std::to_string(cpu->now()));
        if (*other && !(*other)->finished())
            co_await cpu->yieldTo(*other);
    }
}

TEST_F(CpuTest, YieldToSwitchesBetweenUserContexts)
{
    ContextPtr a, b;
    a = cpu.spawn("a", false, pingPong(&cpu, &trace, "a", &b, 2));
    b = cpu.spawn("b", false, pingPong(&cpu, &trace, "b", &a, 2));
    cpu.switchTo(a);
    eq.run();
    EXPECT_EQ(trace, (std::vector<std::string>{"a@10", "b@20", "a@30",
                                               "b@40"}));
}

Task
trapHandlerTask(Cpu *cpu, ContextPtr victim, std::uint64_t result,
                Cycle cost)
{
    co_await cpu->spend(cost);
    victim->trapResult = result + victim->trapArg;
}

Task
trapper(Cpu *cpu, std::vector<Cycle> *log)
{
    co_await cpu->spend(10);
    std::uint64_t r = co_await cpu->trap(3, 7);
    log->push_back(r);
    log->push_back(cpu->now());
}

TEST_F(CpuTest, TrapRunsHandlerAndReturnsResult)
{
    cpu.setTrapHandler(3, [&](ContextPtr victim) {
        return trapHandlerTask(&cpu, victim, 100, 20);
    });
    auto ctx = cpu.spawn("u", false, trapper(&cpu, &log));
    cpu.switchTo(ctx);
    eq.run();
    EXPECT_EQ(log, (std::vector<Cycle>{107, 30}));
    EXPECT_DOUBLE_EQ(cpu.stats.trapsTaken.value(), 1.0);
}

Task
stealingHandler(Cpu *cpu, std::vector<std::string> *trace,
                ContextPtr *stolen)
{
    co_await cpu->spend(5);
    *stolen = cpu->current()->takeReturnTo();
    cpu->lowerIrq(0);
    trace->push_back("stole@" + std::to_string(cpu->now()));
}

TEST_F(CpuTest, HandlerCanStealReturnPath)
{
    ContextPtr stolen;
    cpu.setIrqHandler(0, [&](unsigned) {
        return stealingHandler(&cpu, &trace, &stolen);
    });
    int idles = 0;
    cpu.setIdleHook([&] {
        ++idles;
        if (stolen) {
            auto c = stolen;
            stolen = nullptr;
            cpu.switchTo(c);
        }
    });
    auto ctx = cpu.spawn("u", false, spendTwice(&cpu, &log, 100, 10));
    cpu.switchTo(ctx);
    eq.scheduleFn([&] { cpu.raiseIrq(0); }, 40);
    eq.run();
    // Preempted at 40, handler 40-45 steals; idle hook hands the
    // context back; remaining 60 cycles complete at 105.
    EXPECT_EQ(trace, (std::vector<std::string>{"stole@45"}));
    EXPECT_EQ(log, (std::vector<Cycle>{105, 115}));
    EXPECT_GE(idles, 1);
}

TEST_F(CpuTest, SwitchToWithPendingIrqDeliversInterruptFirst)
{
    cpu.setIrqHandler(0, [&](unsigned) {
        return kernelHandler(&cpu, &trace, 30, 0);
    });
    auto ctx = cpu.spawn("u", false, spendTwice(&cpu, &log, 10, 10));
    eq.scheduleFn(
        [&] {
            cpu.raiseIrq(0); // cpu idle: dispatch request
        },
        5);
    eq.scheduleFn([&] { /* nothing else pending */ }, 6);
    cpu.setIdleHook([&] {});
    eq.run(4); // let nothing happen yet
    cpu.switchTo(ctx);
    eq.run();
    // IRQ at 5 dispatches immediately (cpu held the unstarted ctx as
    // current from cycle 4)... the user started at 4, so it is
    // preempted at 5 and resumes after the handler.
    EXPECT_EQ(trace, (std::vector<std::string>{"irq@5", "irqdone@35"}));
    EXPECT_EQ(log, (std::vector<Cycle>{44, 54}));
}

Task
timedUser(Cpu *cpu, std::vector<Cycle> *log)
{
    co_await cpu->spend(40);
    co_await cpu->trap(1, 0); // kernel spends 500; timer must pause
    co_await cpu->spend(70);
    log->push_back(cpu->now());
}

TEST_F(CpuTest, UserTimerCountsOnlyUserCycles)
{
    cpu.setTrapHandler(1, [&](ContextPtr victim) {
        return trapHandlerTask(&cpu, victim, 0, 500);
    });
    Cycle fired_at = 0;
    auto ctx = cpu.spawn("u", false, timedUser(&cpu, &log));
    cpu.setUserTimer(100, [&] { fired_at = eq.now(); });
    cpu.switchTo(ctx);
    eq.run();
    // 40 user + 500 kernel + 60 user = wall 600 when 100 user cycles
    // have elapsed.
    EXPECT_EQ(fired_at, 600u);
    EXPECT_EQ(log, (std::vector<Cycle>{610}));
}

TEST_F(CpuTest, UserTimerCancel)
{
    Cycle fired_at = 0;
    auto ctx = cpu.spawn("u", false, spendTwice(&cpu, &log, 50, 50));
    cpu.setUserTimer(80, [&] { fired_at = eq.now(); });
    cpu.switchTo(ctx);
    eq.scheduleFn([&] { cpu.cancelUserTimer(); }, 60);
    eq.run();
    EXPECT_EQ(fired_at, 0u);
    EXPECT_FALSE(cpu.userTimerActive());
}

TEST_F(CpuTest, UserTimerFiringExactlyAtSpendEndPendsInterrupt)
{
    // Timer cb raises a pulse IRQ; deadline == end of first spend.
    cpu.setIrqHandler(0, [&](unsigned) {
        return kernelHandler(&cpu, &trace, 9, ~0u);
    }, /*pulse=*/true);
    auto ctx = cpu.spawn("u", false, spendTwice(&cpu, &log, 50, 50));
    cpu.setUserTimer(50, [&] { cpu.raiseIrq(0); });
    cpu.switchTo(ctx);
    eq.run();
    // First spend completes at 50; IRQ taken before the second spend
    // makes progress; second spend then runs 59-109.
    EXPECT_EQ(trace, (std::vector<std::string>{"irq@50", "irqdone@59"}));
    EXPECT_EQ(log, (std::vector<Cycle>{50, 109}));
}

TEST_F(CpuTest, UserTimerPreemptsMidSpend)
{
    cpu.setIrqHandler(0, [&](unsigned) {
        return kernelHandler(&cpu, &trace, 9, ~0u);
    }, /*pulse=*/true);
    auto ctx = cpu.spawn("u", false, spendTwice(&cpu, &log, 100, 10));
    cpu.setUserTimer(30, [&] { cpu.raiseIrq(0); });
    cpu.switchTo(ctx);
    eq.run();
    // Fire at 30 mid-spend; handler 30-39; resume 39, finish at 109.
    EXPECT_EQ(trace, (std::vector<std::string>{"irq@30", "irqdone@39"}));
    EXPECT_EQ(log, (std::vector<Cycle>{109, 119}));
}

TEST_F(CpuTest, UserTimerRemainingReflectsProgress)
{
    auto ctx = cpu.spawn("u", false, spendTwice(&cpu, &log, 50, 50));
    cpu.setUserTimer(200, [] {});
    cpu.switchTo(ctx);
    eq.scheduleFn(
        [&] { EXPECT_EQ(cpu.userTimerRemaining(), 170u); }, 30);
    eq.run();
    EXPECT_EQ(cpu.userTimerRemaining(), 100u);
}

TEST_F(CpuTest, DeterministicRerun)
{
    auto run = [](std::vector<std::string> &tr) {
        EventQueue eq;
        StatGroup sg("t");
        Cpu c(eq, 0, &sg);
        c.setIrqHandler(0, [&](unsigned) {
            return kernelHandler(&c, &tr, 13, 0);
        });
        std::vector<Cycle> lg;
        auto ctx = c.spawn("u", false, spendTwice(&c, &lg, 77, 33));
        c.switchTo(ctx);
        eq.scheduleFn([&] { c.raiseIrq(0); }, 31);
        eq.run();
        tr.push_back("end@" + std::to_string(eq.now()));
    };
    std::vector<std::string> t1, t2;
    run(t1);
    run(t2);
    EXPECT_EQ(t1, t2);
}

Task
parkHoldingSelf(Cpu *cpu, ContextPtr *slot)
{
    // Body runs only once switched to, after the caller filled *slot.
    ContextPtr self = *slot;
    co_await cpu->block();
    // Never resumed; `self` keeps the Context alive from inside its
    // own coroutine frame (a shared_ptr cycle).
    (void)self;
}

TEST_F(CpuTest, TeardownFreesBlockedContexts)
{
    std::weak_ptr<Context> observed;
    {
        EventQueue q;
        StatGroup sg("t2");
        Cpu c(q, 0, &sg);
        ContextPtr slot;
        ContextPtr ctx = c.spawn("parked", false,
                                 parkHoldingSelf(&c, &slot));
        slot = ctx;
        observed = ctx;
        c.switchTo(ctx);
        q.run();
        EXPECT_EQ(ctx->state(), CtxState::Blocked);
        slot.reset();
        ctx.reset();
        // Only the frame's self-reference remains: without the Cpu's
        // context registry this cycle would leak.
        EXPECT_FALSE(observed.expired());
    }
    EXPECT_TRUE(observed.expired());
}

} // namespace
