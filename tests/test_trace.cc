/**
 * @file
 * Tests for the fugutrace subsystem: recorder gating, binary
 * round-trip, Chrome-JSON well-formedness, byte-identical traces
 * across FUGU_THREADS settings, buffered-entry cause attribution for
 * every DivertReason, and the summarize() accounting the tracetool
 * relies on (per-cause divert counts sum to the kernel's
 * buffer-insert aggregate).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "glaze/machine.hh"
#include "harness/experiment.hh"
#include "sim/log.hh"
#include "trace/export.hh"

using namespace fugu;
using namespace fugu::glaze;
using namespace fugu::trace;
using exec::CoTask;

namespace
{

struct RxState
{
    int received = 0;
};

CoTask<void>
recvMain(Process &p, RxState *st, int expect)
{
    rt::CondVar cv(p.threads());
    p.port().setHandler(
        0, [st, &cv](core::UdmPort &port, NodeId) -> CoTask<void> {
            co_await port.dispose();
            ++st->received;
            cv.notifyAll();
        });
    while (st->received < expect)
        co_await cv.wait();
}

CoTask<void>
sendMain(Process &p, NodeId dst, int count, Cycle gap)
{
    for (int i = 0; i < count; ++i) {
        if (gap)
            co_await p.compute(gap);
        co_await p.port().send(dst, 0);
    }
}

CoTask<void>
nullMain(Process &p)
{
    for (;;)
        co_await p.compute(10000);
}

/** Receiver that sits in an atomic section until the timer revokes. */
CoTask<void>
stubbornAtomicMain(Process &p, RxState *st, int expect)
{
    rt::CondVar cv(p.threads());
    p.port().setHandler(
        0, [st, &cv](core::UdmPort &port, NodeId) -> CoTask<void> {
            co_await port.dispose();
            ++st->received;
            cv.notifyAll();
        });
    co_await p.port().beginAtomic();
    co_await p.compute(50000);
    co_await p.port().endAtomic();
    while (st->received < expect)
        co_await cv.wait();
}

/** Receiver whose handler faults on a demand-zero page. */
CoTask<void>
faultingHandlerMain(Process &p, RxState *st, int expect)
{
    rt::CondVar cv(p.threads());
    p.as().reserve(100, 4);
    p.port().setHandler(
        0,
        [st, &cv, &p](core::UdmPort &port, NodeId) -> CoTask<void> {
            co_await p.touchPage(100 + (st->received % 4));
            co_await port.dispose();
            ++st->received;
            cv.notifyAll();
        });
    while (st->received < expect)
        co_await cv.wait();
}

std::uint64_t
machineBufferInserts(Machine &m)
{
    double total = 0;
    for (auto &n : m.nodes)
        total += n.kernel.stats.bufferInserts.value();
    return static_cast<std::uint64_t>(total);
}

Summary
summarizeMachine(Machine &m)
{
    return summarize(m.tracer()->buffer().snapshot());
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

struct TraceTest : ::testing::Test
{
    TraceTest() { detail::setThrowOnError(true); }
    ~TraceTest() override { detail::setThrowOnError(false); }

    void
    SetUp() override
    {
#ifdef FUGU_TRACE_DISABLED
        GTEST_SKIP() << "instrumentation compiled out";
#endif
    }
};

TEST_F(TraceTest, DisabledByDefaultAndCheapToGate)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);
    EXPECT_EQ(m.tracer(), nullptr);
    // The gate macro itself must tolerate a null recorder.
    trace::Recorder *rec = nullptr;
    FUGU_TRACE(rec, 0, Type::Inject, 1);
}

TEST_F(TraceTest, RingBufferWrapsKeepingNewest)
{
    EventQueue eq;
    Options opts;
    opts.enabled = true;
    opts.maxEvents = 8;
    Recorder rec(eq, opts);
    for (std::uint64_t i = 0; i < 20; ++i)
        rec.record(0, Type::Inject, i);
    const TraceBuffer &buf = rec.buffer();
    EXPECT_EQ(buf.total(), 20u);
    EXPECT_EQ(buf.size(), 8u);
    EXPECT_EQ(buf.dropped(), 12u);
    // Oldest retained is #12, newest #19.
    EXPECT_EQ(buf[0].msg, 12u);
    EXPECT_EQ(buf[7].msg, 19u);
}

/** One traced fast-path run, reused by the format tests. */
Summary
runTracedPair(Machine &m, int count)
{
    RxState st;
    Job *job = m.addJob("pair", [&st, count](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, count, 50)
                             : recvMain(p, &st, count);
    });
    m.installJob(job);
    fugu_assert(m.runUntilDone(job), "traced pair stuck");
    fugu_assert(st.received == count, "missing deliveries");
    return summarizeMachine(m);
}

TEST_F(TraceTest, FastPathLifecycleIsRecorded)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.trace.enabled = true;
    Machine m(cfg);
    constexpr int kCount = 20;
    const Summary s = runTracedPair(m, kCount);
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::Inject)], kCount);
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::NetAccept)], kCount);
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::DirectExtract)],
              kCount);
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::Dispatch)], kCount);
    EXPECT_EQ(s.totalDiverts(), 0u);
    EXPECT_EQ(s.fastLatency.count, kCount);
    EXPECT_GT(s.fastLatency.p50, 0u);
    EXPECT_GE(s.fastLatency.max, s.fastLatency.p99);
    EXPECT_EQ(s.bufferedLatency.count, 0u);
    // Exactly one active channel: node 0 -> node 1, null messages.
    ASSERT_GE(s.channels.size(), 1u);
    EXPECT_EQ(s.channels[0].src, 0);
    EXPECT_EQ(s.channels[0].dst, 1);
    EXPECT_GE(s.channels[0].peakWords, 1u);
}

TEST_F(TraceTest, BinaryRoundTripIsExact)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.trace.enabled = true;
    Machine m(cfg);
    runTracedPair(m, 10);
    const std::vector<TraceEvent> orig = m.tracer()->buffer().snapshot();
    ASSERT_FALSE(orig.empty());

    std::stringstream ss;
    writeBinary(ss, m.tracer()->buffer());
    std::vector<TraceEvent> back;
    std::string err;
    ASSERT_TRUE(readBinary(ss, back, &err)) << err;
    ASSERT_EQ(back.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i)
        EXPECT_EQ(back[i], orig[i]) << "record " << i;
}

TEST_F(TraceTest, EmptyTraceRoundTripsAndSummarizes)
{
    // Regression: a zero-event recording is legitimate (a run may
    // record nothing), and used to make the tracetool exit nonzero
    // and print no percentile lines. The file itself must round-trip
    // and every degenerate summary section must render (as `n/a`)
    // without dividing by zero.
    TraceBuffer empty(16);
    std::stringstream ss;
    writeBinary(ss, empty);
    std::vector<TraceEvent> back{TraceEvent{}}; // must be cleared
    std::string err;
    ASSERT_TRUE(readBinary(ss, back, &err)) << err;
    EXPECT_TRUE(back.empty());

    const Summary s = summarize(back);
    std::ostringstream os;
    printSummary(os, s);
    EXPECT_NE(os.str().find("n/a"), std::string::npos);
}

TEST_F(TraceTest, BinaryReaderRejectsGarbage)
{
    std::stringstream ss("not a trace file");
    std::vector<TraceEvent> out;
    std::string err;
    EXPECT_FALSE(readBinary(ss, out, &err));
    EXPECT_FALSE(err.empty());
}

/**
 * Minimal structural JSON check: balanced braces/brackets outside
 * string literals and the Chrome trace-event keys present. Perfetto
 * needs `traceEvents` plus name/ph/ts/pid/tid per event.
 */
void
expectWellFormedChromeJson(const std::string &json)
{
    long depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : json) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
        case '"': in_string = true; break;
        case '{': case '[': ++depth; break;
        case '}': case ']': --depth; break;
        default: break;
        }
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    for (const char *key : {"\"name\"", "\"ph\"", "\"ts\"", "\"pid\"",
                            "\"tid\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST_F(TraceTest, JsonExportIsWellFormed)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.trace.enabled = true;
    Machine m(cfg);
    runTracedPair(m, 5);
    std::stringstream ss;
    writeJson(ss, m.tracer()->buffer());
    expectWellFormedChromeJson(ss.str());
}

TEST_F(TraceTest, WriteTraceFilesProducesBothFormats)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.trace.enabled = true;
    Machine m(cfg);
    runTracedPair(m, 5);
    const std::string path = testing::TempDir() + "fugu_roundtrip.trace";
    std::string err;
    ASSERT_TRUE(writeTraceFiles(path, m.tracer()->buffer(), &err))
        << err;
    std::vector<TraceEvent> back;
    ASSERT_TRUE(readBinaryFile(path, back, &err)) << err;
    EXPECT_EQ(back.size(), m.tracer()->buffer().size());
    expectWellFormedChromeJson(readFileBytes(path + ".json"));
    std::remove(path.c_str());
    std::remove((path + ".json").c_str());
}

/** Gang-scheduled skewed run: the Figure 7 shape in miniature. */
void
runSkewedTrial(const std::string &trace_path)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 7;
    harness::Workloads wl;
    GangConfig g;
    g.quantum = 20000;
    g.skew = 0.4;
    const harness::RunStats rs =
        harness::runTrials(cfg, wl.factory("barrier"),
                           /*with_null=*/true, /*gang=*/true, g,
                           /*trials=*/2, 100000000000ull, trace_path);
    ASSERT_TRUE(rs.completed);
}

TEST_F(TraceTest, TraceBytesIndependentOfWorkerThreads)
{
    const char *saved = std::getenv("FUGU_THREADS");
    const std::string saved_val = saved ? saved : "";

    const std::string p1 = testing::TempDir() + "fugu_threads1.trace";
    const std::string p8 = testing::TempDir() + "fugu_threads8.trace";
    ::setenv("FUGU_THREADS", "1", 1);
    runSkewedTrial(p1);
    ::setenv("FUGU_THREADS", "8", 1);
    runSkewedTrial(p8);

    if (saved)
        ::setenv("FUGU_THREADS", saved_val.c_str(), 1);
    else
        ::unsetenv("FUGU_THREADS");

    const std::string b1 = readFileBytes(p1);
    const std::string b8 = readFileBytes(p8);
    ASSERT_FALSE(b1.empty());
    EXPECT_EQ(b1, b8) << "binary trace depends on FUGU_THREADS";
    EXPECT_EQ(readFileBytes(p1 + ".json"), readFileBytes(p8 + ".json"))
        << "JSON trace depends on FUGU_THREADS";
    for (const std::string &p : {p1, p8}) {
        std::remove(p.c_str());
        std::remove((p + ".json").c_str());
    }
}

TEST_F(TraceTest, AttributesGidMismatchAndQuantumCarry)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 7;
    cfg.trace.enabled = true;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 300;
    Job *job = m.addJob("app", [&st](Process &p) {
        return p.node() == 0
                   ? sendMain(p, 1, kCount, 200)
                   : recvMain(p, &st, p.node() == 1 ? kCount : 0);
    });
    m.addJob("null", [](Process &p) { return nullMain(p); });
    GangConfig g;
    g.quantum = 20000;
    g.skew = 0.3;
    m.startGang(g);
    ASSERT_TRUE(m.runUntilDone(job));

    const Summary s = summarizeMachine(m);
    // Skewed quantum boundaries make messages arrive for descheduled
    // processes: those diverts are attributed to the GID mismatch.
    const auto gid = static_cast<unsigned>(DivertReason::GidMismatch);
    EXPECT_GE(s.divertByReason[gid], 1u);
    // A quantum that begins with messages still buffered re-enters
    // buffered mode with the carry-in cause.
    const auto carry = static_cast<unsigned>(DivertReason::QuantumCarry);
    EXPECT_GE(s.modeEnterByReason[carry], 1u);
    EXPECT_GE(s.byType[static_cast<unsigned>(Type::QuantumSwitch)], 2u);
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::ModeEnter)],
              s.byType[static_cast<unsigned>(Type::ModeExit)]);
    // Fast path stays the common case.
    EXPECT_GT(s.fastLatency.count, s.bufferedLatency.count);
}

TEST_F(TraceTest, AttributesAtomicityTimeoutDiverts)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.ni.atomicityTimeout = 2000;
    cfg.trace.enabled = true;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 5;
    Job *job = m.addJob("timeout", [&st](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, kCount, 100)
                             : stubbornAtomicMain(p, &st, kCount);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));

    const Summary s = summarizeMachine(m);
    const auto at = static_cast<unsigned>(DivertReason::AtomTimeout);
    EXPECT_GE(s.byType[static_cast<unsigned>(Type::AtomTimeout)], 1u);
    EXPECT_GE(s.modeEnterByReason[at], 1u);
    EXPECT_GE(s.divertByReason[at], 1u);
    EXPECT_GE(s.bufferedLatency.count, 1u);
    EXPECT_GE(s.byType[static_cast<unsigned>(Type::VbufPage)], 1u);
}

TEST_F(TraceTest, AttributesPageFaultDiverts)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.trace.enabled = true;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 6;
    Job *job = m.addJob("fault", [&st](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, kCount, 100)
                             : faultingHandlerMain(p, &st, kCount);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));

    const Summary s = summarizeMachine(m);
    const auto pf = static_cast<unsigned>(DivertReason::PageFault);
    EXPECT_GE(s.byType[static_cast<unsigned>(Type::PageFault)], 1u);
    EXPECT_GE(s.modeEnterByReason[pf], 1u);
    EXPECT_GE(s.divertByReason[pf], 1u);
}

TEST_F(TraceTest, AttributesConfigDiverts)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.alwaysBuffered = true;
    cfg.trace.enabled = true;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 8;
    Job *job = m.addJob("cfgdiv", [&st](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, kCount, 100)
                             : recvMain(p, &st, kCount);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));

    const Summary s = summarizeMachine(m);
    const auto c = static_cast<unsigned>(DivertReason::Config);
    EXPECT_EQ(s.divertByReason[c], kCount);
    EXPECT_GE(s.modeEnterByReason[c], 1u);
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::DirectExtract)], 0u);
    EXPECT_EQ(s.bufferedLatency.count, kCount);
}

/**
 * The acceptance check behind `tracetool summarize`: every divert in
 * the trace corresponds to one kernel buffer insertion, so the
 * per-cause counts sum to the run's aggregate buffered-message stat.
 */
TEST_F(TraceTest, DivertCountsSumToBufferInserts)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    cfg.trace.enabled = true;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 250;
    Job *job = m.addJob("app", [&st](Process &p) {
        return p.node() == 0
                   ? sendMain(p, 1, kCount, 150)
                   : recvMain(p, &st, p.node() == 1 ? kCount : 0);
    });
    m.addJob("null", [](Process &p) { return nullMain(p); });
    GangConfig g;
    g.quantum = 15000;
    g.skew = 0.4;
    m.startGang(g);
    ASSERT_TRUE(m.runUntilDone(job));

    const Summary s = summarizeMachine(m);
    EXPECT_GE(s.totalDiverts(), 1u);
    EXPECT_EQ(s.totalDiverts(), machineBufferInserts(m));
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::Divert)],
              s.totalDiverts());
    // Buffered extractions drain exactly what was diverted.
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::BufExtract)],
              s.totalDiverts());

    // Every extraction carries its GID in the packed aux, so the
    // per-GID breakdown must cover the same population: fast+buffered
    // summed over byGid equals the extract totals, and the measured
    // job's GID shows both delivery cases.
    std::uint64_t fast = 0, buffered = 0;
    for (const auto &g : s.byGid) {
        fast += g.fast;
        buffered += g.buffered;
    }
    EXPECT_EQ(fast,
              s.byType[static_cast<unsigned>(Type::DirectExtract)]);
    EXPECT_EQ(buffered,
              s.byType[static_cast<unsigned>(Type::BufExtract)]);
}

/**
 * Adversary-trace golden: two tenants that only ever run buffered
 * (machine-wide divert, gang-scheduled so GID-mismatch diverts mix
 * in) must come out of `tracetool summarize` with their extraction
 * counts attributed to the right GID and none dropped — the per-GID
 * rows cover exactly the BufExtract population, per tenant, with a
 * latency sample for every extraction. The summary must also survive
 * the binary round trip byte-for-byte, so the tracetool sees what the
 * in-memory recorder saw.
 */
TEST_F(TraceTest, AdversaryTraceKeepsBufferedOnlyGidsDistinct)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    cfg.alwaysBuffered = true; // every tenant is buffered-only
    cfg.trace.enabled = true;
    Machine m(cfg);
    RxState stA, stB;
    constexpr int kA = 13, kB = 7; // unequal, so swaps are visible
    // Senders idle for two gang rotations first, so every receiver
    // has been scheduled once and registered its handler before the
    // first buffered message can drain at handler priority.
    auto slowSend = [](Process &p, NodeId dst, int count,
                       Cycle gap) -> CoTask<void> {
        co_await p.compute(40000);
        co_await sendMain(p, dst, count, gap);
    };
    Job *a = m.addJob("tenantA", [&stA, slowSend](Process &p) {
        return p.node() == 0
                   ? slowSend(p, 1, kA, 120)
                   : recvMain(p, &stA, p.node() == 1 ? kA : 0);
    });
    Job *b = m.addJob("tenantB", [&stB, slowSend](Process &p) {
        return p.node() == 2
                   ? slowSend(p, 3, kB, 180)
                   : recvMain(p, &stB, p.node() == 3 ? kB : 0);
    });
    GangConfig g;
    g.quantum = 15000;
    g.skew = 0.3;
    m.startGang(g);
    try {
        ASSERT_TRUE(m.runUntilDone(a));
        ASSERT_TRUE(m.runUntilDone(b));
    } catch (const SimError &e) {
        FAIL() << e.message;
    }

    const Summary s = summarizeMachine(m);
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::DirectExtract)], 0u);
    EXPECT_EQ(s.byType[static_cast<unsigned>(Type::BufExtract)],
              static_cast<std::uint64_t>(kA + kB));
    ASSERT_EQ(s.byGid.size(), 2u); // sorted by gid
    const Summary::GidStats &ga = s.byGid[0];
    const Summary::GidStats &gb = s.byGid[1];
    EXPECT_EQ(ga.gid, a->gid());
    EXPECT_EQ(gb.gid, b->gid());
    EXPECT_EQ(ga.fast, 0u);
    EXPECT_EQ(gb.fast, 0u);
    EXPECT_EQ(ga.buffered, static_cast<std::uint64_t>(kA));
    EXPECT_EQ(gb.buffered, static_cast<std::uint64_t>(kB));
    // Every extraction paired with its inject: no latency dropped.
    EXPECT_EQ(ga.latency.count, static_cast<std::uint64_t>(kA));
    EXPECT_EQ(gb.latency.count, static_cast<std::uint64_t>(kB));
    EXPECT_DOUBLE_EQ(ga.bufferedPct(), 100.0);
    EXPECT_DOUBLE_EQ(gb.bufferedPct(), 100.0);

    // Golden: the tracetool's view (binary file round trip) renders
    // the identical summary, per-GID rows included.
    const std::string path =
        testing::TempDir() + "fugu_adversary.trace";
    std::string err;
    ASSERT_TRUE(writeTraceFiles(path, m.tracer()->buffer(), &err))
        << err;
    std::vector<TraceEvent> back;
    ASSERT_TRUE(readBinaryFile(path, back, &err)) << err;
    std::ostringstream live, disk;
    printSummary(live, s);
    printSummary(disk, summarize(back));
    EXPECT_EQ(live.str(), disk.str());
    EXPECT_NE(live.str().find("% buffered)"), std::string::npos);
    std::remove(path.c_str());
    std::remove((path + ".json").c_str());
}

TEST(ExtractAuxTest, PackRoundTripsAndSaturates)
{
    const std::uint32_t aux = packExtractAux(Gid{7}, Cycle{123456});
    EXPECT_EQ(extractAuxGid(aux), 7u);
    EXPECT_EQ(extractAuxLatency(aux), 123456u);
    // GID clamps to one byte, latency saturates at 24 bits.
    EXPECT_EQ(extractAuxGid(packExtractAux(Gid{0x1ff}, 0)), 0xffu);
    EXPECT_EQ(extractAuxLatency(packExtractAux(0, Cycle{1} << 30)),
              0xffffffu);
}

TEST(ExtractAuxTest, SummarizeBreaksExtractionsDownByGid)
{
    // Synthetic lifecycle: two fast extractions for gid 3 (one with a
    // matching inject, one orphaned) and one buffered for gid 5.
    std::vector<TraceEvent> ev;
    ev.push_back({100, userMsgId(1), 0, 0,
                  static_cast<std::uint8_t>(Type::Inject), 0});
    ev.push_back({150, userMsgId(1), packExtractAux(3, 50), 1,
                  static_cast<std::uint8_t>(Type::DirectExtract), 0});
    ev.push_back({160, userMsgId(9), packExtractAux(3, 7), 1,
                  static_cast<std::uint8_t>(Type::DirectExtract), 0});
    ev.push_back({200, userMsgId(2), 0, 0,
                  static_cast<std::uint8_t>(Type::Inject), 0});
    ev.push_back({1200, userMsgId(2), packExtractAux(5, 1000), 2,
                  static_cast<std::uint8_t>(Type::BufExtract), 0});

    const Summary s = summarize(ev);
    ASSERT_EQ(s.byGid.size(), 2u);
    EXPECT_EQ(s.byGid[0].gid, 3u);
    EXPECT_EQ(s.byGid[0].fast, 2u);
    EXPECT_EQ(s.byGid[0].buffered, 0u);
    // Latency percentiles only from matched inject->extract pairs.
    EXPECT_EQ(s.byGid[0].latency.count, 1u);
    EXPECT_EQ(s.byGid[0].latency.p50, 50u);
    EXPECT_EQ(s.byGid[1].gid, 5u);
    EXPECT_EQ(s.byGid[1].fast, 0u);
    EXPECT_EQ(s.byGid[1].buffered, 1u);
    EXPECT_EQ(s.byGid[1].latency.p50, 1000u);
    EXPECT_DOUBLE_EQ(s.byGid[1].bufferedPct(), 100.0);

    // The printable summary mentions both GIDs.
    std::ostringstream os;
    printSummary(os, s);
    EXPECT_NE(os.str().find("gid 3"), std::string::npos);
    EXPECT_NE(os.str().find("gid 5"), std::string::npos);
}

} // namespace
