/**
 * @file
 * ArrivalProcess tests: the open-loop load generator is a pure
 * function of (config, stream) — bit-identical streams however the
 * host schedules work — and its three interarrival mixes and the
 * Zipf key popularity have the statistics they claim.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include "sim/arrival.hh"

using namespace fugu;
using sim::ArrivalConfig;
using sim::ArrivalProcess;

namespace
{

struct Stream
{
    std::vector<Cycle> gaps;
    std::vector<std::uint64_t> keys;

    bool operator==(const Stream &o) const = default;
};

Stream
draw(const ArrivalConfig &cfg, unsigned stream, std::size_t n)
{
    ArrivalProcess p(cfg, stream);
    Stream s;
    for (std::size_t i = 0; i < n; ++i) {
        s.gaps.push_back(p.nextGap());
        s.keys.push_back(p.nextKey());
    }
    return s;
}

double
meanGap(const Stream &s)
{
    double sum = 0;
    for (Cycle g : s.gaps)
        sum += static_cast<double>(g);
    return sum / s.gaps.size();
}

TEST(ArrivalTest, SameSeedSameStreamIsBitIdentical)
{
    for (const char *mix : {"poisson", "bursty", "diurnal"}) {
        ArrivalConfig cfg;
        cfg.mix = mix;
        cfg.seed = 42;
        const Stream a = draw(cfg, /*stream=*/3, 5000);
        const Stream b = draw(cfg, /*stream=*/3, 5000);
        EXPECT_EQ(a, b) << mix;
    }
}

TEST(ArrivalTest, StreamUnaffectedByHostThreadKnob)
{
    // The generator reads nothing but (config, stream): FUGU_THREADS
    // — or any other host state — must not change a single draw.
    ArrivalConfig cfg;
    cfg.seed = 9;
    const char *old = std::getenv("FUGU_THREADS");
    const std::string saved = old ? old : "";
    setenv("FUGU_THREADS", "1", 1);
    const Stream a = draw(cfg, 0, 2000);
    setenv("FUGU_THREADS", "8", 1);
    const Stream b = draw(cfg, 0, 2000);
    if (old)
        setenv("FUGU_THREADS", saved.c_str(), 1);
    else
        unsetenv("FUGU_THREADS");
    EXPECT_EQ(a, b);
}

TEST(ArrivalTest, DistinctStreamsAndSeedsDecorrelate)
{
    ArrivalConfig cfg;
    cfg.seed = 7;
    const Stream s0 = draw(cfg, 0, 1000);
    const Stream s1 = draw(cfg, 1, 1000);
    EXPECT_NE(s0, s1);
    ArrivalConfig cfg2 = cfg;
    cfg2.seed = 8;
    const Stream t0 = draw(cfg2, 0, 1000);
    EXPECT_NE(s0, t0);
}

TEST(ArrivalTest, GapsAreAlwaysAtLeastOneCycle)
{
    for (const char *mix : {"poisson", "bursty", "diurnal"}) {
        ArrivalConfig cfg;
        cfg.mix = mix;
        cfg.ratePerKcycle = 50; // mean gap 20 cycles: exercise small draws
        const Stream s = draw(cfg, 0, 5000);
        for (Cycle g : s.gaps)
            ASSERT_GE(g, 1u) << mix;
    }
}

TEST(ArrivalTest, EveryMixPreservesTheMeanRate)
{
    // Poisson trivially; bursty is an MMPP whose on/off rates are
    // chosen so duty*lamOn + (1-duty)*lamOff == lambda; diurnal
    // thinning averages the sinusoid out over whole periods.
    for (const char *mix : {"poisson", "bursty", "diurnal"}) {
        ArrivalConfig cfg;
        cfg.mix = mix;
        cfg.ratePerKcycle = 2.0; // mean gap 500 cycles
        cfg.burstLenKcycles = 5.0; // many on/off epochs in the sample
        const Stream s = draw(cfg, 0, 200000);
        EXPECT_NEAR(meanGap(s), 500.0, 500.0 * 0.05) << mix;
    }
}

TEST(ArrivalTest, DiurnalSweepsFullPeriodsWithVisibleRamp)
{
    // The soak-scenario sanity check (scenarios/serving_soak.cfg):
    // a diurnal run sized like the soak must cover at least two full
    // periods of the rate sinusoid, and the ramp must actually show —
    // the rising half-period (sin > 0) collects more arrivals than
    // the falling half. A sample shorter than a period would make the
    // mean-rate guarantee (EveryMixPreservesTheMeanRate) vacuous.
    ArrivalConfig cfg;
    cfg.mix = "diurnal";
    cfg.ratePerKcycle = 2.0; // mean gap 500 cycles
    cfg.diurnalPeriodKcycles = 250.0;
    cfg.diurnalAmp = 0.8;
    const Stream s = draw(cfg, 0, 4000); // ~2000 kcycles ~ 8 periods
    const double period = cfg.diurnalPeriodKcycles * 1000.0;

    double t = 0;
    std::uint64_t rising = 0, falling = 0;
    for (Cycle g : s.gaps) {
        t += static_cast<double>(g);
        const double phase = std::fmod(t, period);
        (phase < period / 2 ? rising : falling) += 1;
    }
    EXPECT_GE(t, 2.0 * period)
        << "soak-length draw no longer spans two diurnal periods";
    EXPECT_GT(static_cast<double>(rising),
              1.2 * static_cast<double>(falling))
        << "diurnal ramp not visible across the period";
}

TEST(ArrivalTest, BurstyIsBurstierThanPoisson)
{
    // Same mean rate, but the MMPP mixes a fast on-state with a slow
    // off-state, so the gap variance must be well above Poisson's.
    ArrivalConfig pcfg;
    ArrivalConfig bcfg;
    bcfg.mix = "bursty";
    bcfg.burstLenKcycles = 5.0;
    const Stream p = draw(pcfg, 0, 100000);
    const Stream b = draw(bcfg, 0, 100000);
    auto var = [](const Stream &s) {
        double m = 0;
        for (Cycle g : s.gaps)
            m += static_cast<double>(g);
        m /= s.gaps.size();
        double v = 0;
        for (Cycle g : s.gaps)
            v += (g - m) * (g - m);
        return v / s.gaps.size();
    };
    EXPECT_GT(var(b), 2.0 * var(p));
}

TEST(ArrivalTest, ZipfSkewsTowardTheHead)
{
    ArrivalConfig cfg;
    cfg.keys = 1024;
    cfg.zipfTheta = 0.99;
    const Stream s = draw(cfg, 0, 100000);
    std::map<std::uint64_t, std::uint64_t> freq;
    for (std::uint64_t k : s.keys) {
        ASSERT_LT(k, cfg.keys);
        ++freq[k];
    }
    // Key 0 is the hottest: with theta=0.99 it should take a few
    // percent of all draws, far above the uniform 1/1024.
    const double top = static_cast<double>(freq[0]) / s.keys.size();
    EXPECT_GT(top, 20.0 / 1024.0);
    // ... and far fewer than half the keyspace covers most draws.
    std::uint64_t headHits = 0;
    for (std::uint64_t k = 0; k < 103; ++k) { // hottest ~10%
        auto it = freq.find(k);
        if (it != freq.end())
            headHits += it->second;
    }
    EXPECT_GT(static_cast<double>(headHits) / s.keys.size(), 0.5);
}

TEST(ArrivalTest, ZeroThetaIsUniform)
{
    ArrivalConfig cfg;
    cfg.keys = 64;
    cfg.zipfTheta = 0.0;
    const Stream s = draw(cfg, 0, 64000);
    std::map<std::uint64_t, std::uint64_t> freq;
    for (std::uint64_t k : s.keys) {
        ASSERT_LT(k, cfg.keys);
        ++freq[k];
    }
    // Every key drawn, none wildly over-represented (expected 1000).
    EXPECT_EQ(freq.size(), 64u);
    for (const auto &[k, n] : freq)
        EXPECT_NEAR(static_cast<double>(n), 1000.0, 250.0) << k;
}

TEST(ArrivalTest, SingleKeyKeyspaceAlwaysDrawsZero)
{
    ArrivalConfig cfg;
    cfg.keys = 1;
    cfg.zipfTheta = 0.99;
    const Stream s = draw(cfg, 0, 100);
    for (std::uint64_t k : s.keys)
        EXPECT_EQ(k, 0u);
}

} // namespace
