/**
 * @file
 * Adversarial-neighbor isolation tests: a victim sharing the machine
 * with each adversary tenant keeps every transparency invariant
 * (cross-GID FIFO, content, protection, frame conservation) on all
 * three NI buffering backends, serial and sharded engines, and
 * whatever FUGU_THREADS is set to; the new starvation/isolation
 * checker metrics observe the abuse and their limits trip when armed.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "apps/adversary.hh"
#include "glaze/machine.hh"
#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::glaze;
using harness::TenantRunStats;
using harness::TenantStats;

namespace
{

MachineConfig
baseConfig()
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 11;
    return cfg;
}

GangConfig
gangConfig()
{
    GangConfig g;
    g.quantum = 15000;
    g.skew = 0.3;
    return g;
}

/** The victim: a plain barrier tenant, long enough to overlap the
 *  adversary's whole attack window. */
AppBody
victimBody(unsigned nodes, std::uint64_t seed)
{
    harness::Workloads wl;
    wl.barrier.barriers = 400;
    return wl.factory("barrier")(nodes, seed);
}

apps::AbuserAppConfig
abuserConfig()
{
    apps::AbuserAppConfig a;
    a.messages = 150;
    a.warmup = 30000;
    return a;
}

TenantRunStats
runAbuserPair(const MachineConfig &cfg)
{
    return harness::runTenants(
        cfg,
        {{"victim", victimBody(cfg.nodes, cfg.seed)},
         {"abuser", apps::makeAbuserApp(cfg.nodes, abuserConfig())}},
        gangConfig(), 400000000ull);
}

class IsolationBackendTest
    : public ::testing::TestWithParam<
          std::tuple<core::NiBackendKind, unsigned>>
{
};

TEST_P(IsolationBackendTest, AbuserPinsVbufWithoutBreakingInvariants)
{
    const auto &[backend, shards] = GetParam();
    MachineConfig cfg = baseConfig();
    cfg.ni.backend = backend;
    cfg.parShards = shards;
    const TenantRunStats r = runAbuserPair(cfg);
    ASSERT_TRUE(r.completed) << core::toString(backend) << "/"
                             << shards << ": victim never finished";
    EXPECT_EQ(r.violations, 0.0)
        << core::toString(backend) << "/" << shards;

    const TenantStats &vic = r.tenants[0];
    const TenantStats &abu = r.tenants[1];
    // The victim's traffic really flowed and was trace-attributed.
    EXPECT_GT(vic.sent, 0u);
    EXPECT_GT(vic.trace.latency.count, 0u);
    EXPECT_GT(vic.iso.direct + vic.iso.buffered, 0u);
    // The abuser really refused to drain: its squat diverted arrivals
    // into its vbuf and the checker saw the page occupancy.
    EXPECT_GT(abu.buffered, 0.0)
        << core::toString(backend) << "/" << shards;
    EXPECT_GE(abu.maxVbufPages, 1u);
    EXPECT_GT(abu.iso.framePeak, 0u);
    EXPECT_GT(abu.iso.frameShareMax, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, IsolationBackendTest,
    ::testing::Combine(
        ::testing::Values(core::NiBackendKind::StaticFifo,
                          core::NiBackendKind::Damq,
                          core::NiBackendKind::ZerocopyRemap),
        ::testing::Values(1u, 2u)),
    [](const auto &info) {
        return std::string(core::toString(std::get<0>(info.param))) +
               "_shards" + std::to_string(std::get<1>(info.param));
    });

class AdversaryGridTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AdversaryGridTest, VictimSurvivesWithZeroViolations)
{
    MachineConfig cfg = baseConfig();
    // Below the squatter's hold, so revocation actually fires.
    cfg.ni.atomicityTimeout = 1000;
    harness::Workloads wl;
    wl.hog.messages = 300;
    wl.hog.holdCycles = 400;
    wl.hog.warmup = 30000;
    wl.squatter.rounds = 40;
    const TenantRunStats r = harness::runTenants(
        cfg,
        {{"victim", victimBody(cfg.nodes, cfg.seed)},
         {"adversary", wl.factory(GetParam())(cfg.nodes, cfg.seed)}},
        gangConfig(), 400000000ull);
    ASSERT_TRUE(r.completed) << GetParam() << " starved the victim out";
    EXPECT_EQ(r.violations, 0.0) << GetParam();
    EXPECT_GT(r.tenants[0].trace.latency.count, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAdversaries, AdversaryGridTest,
                         ::testing::Values("hog", "abuser", "squatter"),
                         [](const auto &info) { return info.param; });

TEST(IsolationMetricsTest, ServiceGapLimitTripsWhenArmed)
{
    // A 1-cycle limit makes every real service gap a violation; the
    // same pairing reports zero with the limit off (grid test above),
    // so any violations here come from the starvation judge.
    MachineConfig cfg = baseConfig();
    cfg.check.serviceGapLimit = 1;
    const TenantRunStats r = runAbuserPair(cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.violations, 0.0);
}

TEST(IsolationMetricsTest, FrameShareLimitTripsWhenArmed)
{
    // Any held frame exceeds a near-zero share limit at sweep time.
    MachineConfig cfg = baseConfig();
    cfg.check.frameShareLimit = 1e-6;
    const TenantRunStats r = runAbuserPair(cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.violations, 0.0);
}

TEST(IsolationMetricsTest, WatermarksStayZeroCostWhenUnarmed)
{
    // Defaults (limits at 0) record watermarks without judging: the
    // service-gap watermark is populated, violations stay zero.
    MachineConfig cfg = baseConfig();
    const TenantRunStats r = runAbuserPair(cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.violations, 0.0);
    EXPECT_GT(r.tenants[0].iso.serviceGapMax, 0u);
}

TEST(StartupRaceTest, MessageBeforeFirstScheduleBuffersCleanly)
{
    // Regression: in a 3-tenant gang under a divert storm, a tenant's
    // message can arrive at a peer node before that peer's process
    // has EVER run (skewed quantum boundaries) — it must divert into
    // the software buffer and wait for the main's startup prologue,
    // not upcall into a handler table the application never filled.
    // This exact pairing panicked with "no handler registered".
    MachineConfig cfg = baseConfig();
    cfg.ni.atomicityTimeout = 1000;
    cfg.fault.enabled = true;
    cfg.fault.delayJitterProb = 0.05;
    cfg.fault.inputFullProb = 0.01;
    cfg.fault.outputFullProb = 0.05;
    cfg.fault.frameDenyProb = 0.025;
    cfg.fault.divertStormProb = 0.075;
    cfg.fault.atomTimeoutProb = 0.075;
    cfg.fault.pageFaultProb = 0.015;
    GangConfig g;
    g.quantum = 20000;
    g.skew = 0.3;
    apps::CovertAppConfig ccfg;
    ccfg.windows = 8;
    ccfg.windowCycles = 40000;
    ccfg.warmup = 30000;
    ccfg.seed = cfg.seed;
    apps::CovertResult res;
    const TenantRunStats r = harness::runTenants(
        cfg,
        {{"covert_rx", apps::makeCovertRxApp(cfg.nodes, ccfg, &res)},
         {"victim", victimBody(cfg.nodes, cfg.seed)},
         {"covert_tx", apps::makeCovertTxApp(cfg.nodes, ccfg)}},
        g, 400000000ull);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.violations, 0.0);
    // The mid-gang victim really ran and its traffic was delivered —
    // the pre-start arrivals drained once startup had registered.
    EXPECT_GT(r.tenants[1].trace.latency.count, 0u);
}

TEST(CovertChannelTest, ProberDecodesWindowsWithZeroViolations)
{
    MachineConfig cfg = baseConfig();
    apps::CovertAppConfig ccfg;
    ccfg.windows = 8;
    ccfg.windowCycles = 40000;
    ccfg.warmup = 30000;
    ccfg.seed = cfg.seed;
    apps::CovertResult res;
    const TenantRunStats r = harness::runTenants(
        cfg,
        {{"covert_rx", apps::makeCovertRxApp(cfg.nodes, ccfg, &res)},
         {"covert_tx", apps::makeCovertTxApp(cfg.nodes, ccfg)}},
        gangConfig(), 400000000ull);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.violations, 0.0);
    // The prober sampled real windows and produced a decode; whether
    // the channel is *good* is bench_isolation's question, not a
    // correctness invariant.
    EXPECT_GT(res.windows, 0u);
    EXPECT_LE(res.correct, res.windows);
}

void
expectSameRun(const TenantRunStats &a, const TenantRunStats &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.holBypasses, b.holBypasses);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
        const TenantStats &x = a.tenants[i];
        const TenantStats &y = b.tenants[i];
        EXPECT_EQ(x.completed, y.completed) << i;
        EXPECT_EQ(x.runtime, y.runtime) << i;
        EXPECT_EQ(x.sent, y.sent) << i;
        EXPECT_EQ(x.direct, y.direct) << i;
        EXPECT_EQ(x.buffered, y.buffered) << i;
        EXPECT_EQ(x.maxVbufPages, y.maxVbufPages) << i;
        EXPECT_EQ(x.trace.fast, y.trace.fast) << i;
        EXPECT_EQ(x.trace.buffered, y.trace.buffered) << i;
        EXPECT_EQ(x.trace.latency.count, y.trace.latency.count) << i;
        EXPECT_EQ(x.trace.latency.p99, y.trace.latency.p99) << i;
        EXPECT_EQ(x.trace.latency.max, y.trace.latency.max) << i;
        EXPECT_EQ(x.iso.serviceGapMax, y.iso.serviceGapMax) << i;
        EXPECT_EQ(x.iso.direct, y.iso.direct) << i;
        EXPECT_EQ(x.iso.buffered, y.iso.buffered) << i;
        EXPECT_EQ(x.iso.framePeak, y.iso.framePeak) << i;
        EXPECT_EQ(x.iso.frameShareMax, y.iso.frameShareMax) << i;
    }
}

TEST(IsolationMetricsTest, RunIndependentOfWorkerThreads)
{
    const char *saved = std::getenv("FUGU_THREADS");
    const std::string saved_val = saved ? saved : "";

    MachineConfig cfg = baseConfig();
    cfg.parShards = 2;
    ::setenv("FUGU_THREADS", "1", 1);
    const TenantRunStats r1 = runAbuserPair(cfg);
    ::setenv("FUGU_THREADS", "4", 1);
    const TenantRunStats r4 = runAbuserPair(cfg);
    if (saved)
        ::setenv("FUGU_THREADS", saved_val.c_str(), 1);
    else
        ::unsetenv("FUGU_THREADS");

    ASSERT_TRUE(r1.completed);
    expectSameRun(r1, r4);
}

} // namespace
