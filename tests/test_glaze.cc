/**
 * @file
 * Integration tests for the Glaze OS: two-case delivery end to end.
 *
 * Covers interrupt (upcall) delivery, polling, atomicity-timeout
 * revocation into buffered mode, drain and mode exit, transparency
 * across gang-scheduler quanta with skew, page-fault-triggered
 * buffering, overflow control, and determinism.
 */

#include <gtest/gtest.h>

#include <vector>

#include "glaze/machine.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::glaze;
using exec::CoTask;

namespace
{

struct RxState
{
    int received = 0;
    std::vector<Word> payloads;
    std::vector<NodeId> sources;
};

/** Receiver main: register a counting handler, wait for @p expect. */
CoTask<void>
recvMain(Process &p, RxState *st, int expect)
{
    rt::CondVar cv(p.threads());
    p.port().setHandler(
        0,
        [st, &cv](core::UdmPort &port, NodeId src) -> CoTask<void> {
            Word w = co_await port.read(0);
            co_await port.dispose();
            st->payloads.push_back(w);
            st->sources.push_back(src);
            ++st->received;
            cv.notifyAll();
        });
    while (st->received < expect)
        co_await cv.wait();
}

/** Sender main: stream @p count messages to @p dst, pacing sends. */
CoTask<void>
sendMain(Process &p, NodeId dst, int count, Cycle gap)
{
    for (int i = 0; i < count; ++i) {
        if (gap)
            co_await p.compute(gap);
        std::vector<Word> args(1, static_cast<Word>(i));
        co_await p.port().send(dst, 0, std::move(args));
    }
}

CoTask<void>
idleMain(Process &)
{
    co_return;
}

/** A "null" application: burns cycles forever. */
CoTask<void>
nullMain(Process &p)
{
    for (;;)
        co_await p.compute(10000);
}

struct GlazeTest : ::testing::Test
{
    GlazeTest() { detail::setThrowOnError(true); }
    ~GlazeTest() override { detail::setThrowOnError(false); }
};

TEST_F(GlazeTest, InterruptDeliveryFastPath)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 20;
    Job *job = m.addJob("pair", [&st](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, kCount, 50)
                             : recvMain(p, &st, kCount);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    EXPECT_EQ(st.received, kCount);
    // In-order per sender.
    for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(st.payloads[i], static_cast<Word>(i));
    auto &proc1 = *job->procs[1];
    EXPECT_DOUBLE_EQ(proc1.stats.directDelivered.value(), kCount);
    EXPECT_DOUBLE_EQ(proc1.stats.bufferedDelivered.value(), 0.0);
    EXPECT_DOUBLE_EQ(m.node(1).kernel.stats.upcalls.value(), kCount);
    EXPECT_DOUBLE_EQ(m.node(1).kernel.stats.modeEntries.value(), 0.0);
}

CoTask<void>
pollMain(Process &p, RxState *st, int expect)
{
    p.port().setHandler(
        0, [st](core::UdmPort &port, NodeId src) -> CoTask<void> {
            Word w = co_await port.read(0);
            co_await port.dispose();
            st->payloads.push_back(w);
            st->sources.push_back(src);
            ++st->received;
        });
    co_await p.port().beginAtomic();
    while (st->received < expect)
        co_await p.port().poll();
    co_await p.port().endAtomic();
}

TEST_F(GlazeTest, PollingDeliveryFastPath)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    // Generous timeout: polling consumes messages promptly anyway.
    cfg.ni.atomicityTimeout = 100000;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 25;
    Job *job = m.addJob("pollpair", [&st](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, kCount, 30)
                             : pollMain(p, &st, kCount);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    EXPECT_EQ(st.received, kCount);
    // Polling, not interrupts: no upcalls on the receiving node.
    EXPECT_DOUBLE_EQ(m.node(1).kernel.stats.upcalls.value(), 0.0);
    EXPECT_DOUBLE_EQ(
        job->procs[1]->stats.directDelivered.value(), kCount);
    EXPECT_DOUBLE_EQ(m.node(1).kernel.stats.modeEntries.value(), 0.0);
}

CoTask<void>
stubbornAtomicMain(Process &p, RxState *st, int expect)
{
    rt::CondVar cv(p.threads());
    p.port().setHandler(
        0,
        [st, &cv](core::UdmPort &port, NodeId src) -> CoTask<void> {
            Word w = co_await port.read(0);
            co_await port.dispose();
            st->payloads.push_back(w);
            st->sources.push_back(src);
            ++st->received;
            cv.notifyAll();
        });
    // Enter an atomic section and compute without polling: a pending
    // message will trip the atomicity timer, revoking the interrupt
    // disable (transparent switch to buffered mode).
    co_await p.port().beginAtomic();
    co_await p.compute(50000);
    co_await p.port().endAtomic();
    while (st->received < expect)
        co_await cv.wait();
}

TEST_F(GlazeTest, AtomicityTimeoutRevokesIntoBufferedMode)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.ni.atomicityTimeout = 2000;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 5;
    Job *job = m.addJob("timeout", [&st](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, kCount, 100)
                             : stubbornAtomicMain(p, &st, kCount);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    EXPECT_EQ(st.received, kCount);
    auto &k1 = m.node(1).kernel;
    EXPECT_GE(m.node(1).ni.stats.atomicityTimeouts.value(), 1.0);
    EXPECT_GE(k1.stats.modeEntries.value(), 1.0);
    EXPECT_EQ(k1.stats.modeEntries.value(), k1.stats.modeExits.value());
    EXPECT_GE(job->procs[1]->stats.bufferedDelivered.value(), 1.0);
    // Every message was delivered exactly once, in order.
    for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(st.payloads[i], static_cast<Word>(i));
    // Buffer pages were returned after the drain.
    EXPECT_EQ(job->procs[1]->vbuf().pagesAllocated(), 0u);
}

TEST_F(GlazeTest, MultiprogrammedSkewBuffersAndPreservesOrder)
{
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.seed = 7;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 300;
    Job *job = m.addJob("app", [&st](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, kCount, 200)
                             : recvMain(p, &st,
                                        p.node() == 1 ? kCount : 0);
    });
    m.addJob("null", [](Process &p) { return nullMain(p); });
    GangConfig g;
    g.quantum = 20000;
    g.skew = 0.3;
    m.startGang(g);
    ASSERT_TRUE(m.runUntilDone(job));
    EXPECT_EQ(st.received, kCount);
    for (int i = 0; i < kCount; ++i)
        ASSERT_EQ(st.payloads[i], static_cast<Word>(i));
    auto &proc1 = *job->procs[1];
    const double direct = proc1.stats.directDelivered.value();
    const double buffered = proc1.stats.bufferedDelivered.value();
    EXPECT_EQ(direct + buffered, kCount);
    // Skewed quantum boundaries must force some messages through the
    // buffered path, but the fast case should remain the common case.
    EXPECT_GE(buffered, 1.0);
    EXPECT_GT(direct, buffered);
    EXPECT_GE(m.node(1).kernel.stats.processSwitches.value(), 2.0);
}

CoTask<void>
faultingHandlerMain(Process &p, RxState *st, int expect)
{
    rt::CondVar cv(p.threads());
    p.as().reserve(100, 4);
    p.port().setHandler(
        0,
        [st, &cv, &p](core::UdmPort &port, NodeId src) -> CoTask<void> {
            // Touch a demand-zero page inside the handler: the fault
            // happens in an atomic section and must trigger buffering
            // rather than blocking the network.
            co_await p.touchPage(100 + (st->received % 4));
            Word w = co_await port.read(0);
            co_await port.dispose();
            st->payloads.push_back(w);
            st->sources.push_back(src);
            ++st->received;
            cv.notifyAll();
        });
    while (st->received < expect)
        co_await cv.wait();
}

TEST_F(GlazeTest, PageFaultInHandlerTriggersBufferedMode)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);
    RxState st;
    constexpr int kCount = 6;
    Job *job = m.addJob("fault", [&st](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, kCount, 100)
                             : faultingHandlerMain(p, &st, kCount);
    });
    m.installJob(job);
    ASSERT_TRUE(m.runUntilDone(job));
    EXPECT_EQ(st.received, kCount);
    auto &k1 = m.node(1).kernel;
    EXPECT_GE(k1.stats.pageFaults.value(), 1.0);
    EXPECT_GE(k1.stats.modeEntries.value(), 1.0);
    for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(st.payloads[i], static_cast<Word>(i));
}

/**
 * Receiver that sits in one long atomic section while a flood
 * arrives: the atomicity timeout diverts everything into the virtual
 * buffer, which outgrows the tiny frame pool.
 */
CoTask<void>
atomicFloodMain(Process &p, RxState *st, int expect)
{
    rt::CondVar cv(p.threads());
    p.port().setHandler(
        0,
        [st, &cv](core::UdmPort &port, NodeId src) -> CoTask<void> {
            Word w = co_await port.read(0);
            co_await port.dispose();
            st->payloads.push_back(w);
            st->sources.push_back(src);
            ++st->received;
            cv.notifyAll();
        });
    co_await p.port().beginAtomic();
    co_await p.compute(300000);
    co_await p.port().endAtomic();
    while (st->received < expect)
        co_await cv.wait();
}

TEST_F(GlazeTest, OverflowControlSwapsAndRecovers)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    cfg.framesPerNode = 4;
    cfg.ni.atomicityTimeout = 2000;
    cfg.seed = 3;
    Machine m(cfg);
    for (auto &n : m.nodes)
        n.frames.setLowWatermark(1);
    RxState st;
    constexpr int kCount = 800; // 7-word footprints: ~6 buffer pages
    Job *job = m.addJob("flood", [&st](Process &p) {
        return p.node() == 0 ? sendMain(p, 1, kCount, 10)
                             : atomicFloodMain(p, &st, kCount);
    });
    m.addJob("null", [](Process &p) { return nullMain(p); });
    GangConfig g;
    g.quantum = 40000;
    g.skew = 0.0;
    m.startGang(g);
    ASSERT_TRUE(m.runUntilDone(job, 400000000ull));
    EXPECT_EQ(st.received, kCount);
    for (int i = 0; i < kCount; ++i)
        ASSERT_EQ(st.payloads[i], static_cast<Word>(i));
    auto &k1 = m.node(1).kernel;
    EXPECT_GE(k1.stats.overflowEvents.value(), 1.0);
    EXPECT_GE(job->procs[1]->vbuf().stats.swapOuts.value(), 1.0);
    EXPECT_GE(job->procs[1]->vbuf().stats.pageIns.value(), 1.0);
    // All frames returned after the drain.
    EXPECT_EQ(job->procs[1]->vbuf().pagesAllocated(), 0u);
}

TEST_F(GlazeTest, HandlerWithoutDisposeIsFatal)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);
    Job *job = m.addJob("bad", [](Process &p) -> CoTask<void> {
        if (p.node() == 0)
            return sendMain(p, 1, 1, 0);
        p.port().setHandler(
            0, [](core::UdmPort &, NodeId) -> CoTask<void> {
                co_return; // never disposes: dispose-failure
            });
        return nullMain(p);
    });
    m.installJob(job);
    EXPECT_THROW(m.runUntilDone(job, 1000000), SimError);
}

TEST_F(GlazeTest, DeterministicRerun)
{
    auto run = [](std::vector<double> &out) {
        MachineConfig cfg;
        cfg.nodes = 4;
        cfg.seed = 99;
        Machine m(cfg);
        RxState st;
        Job *job = m.addJob("app", [&st](Process &p) {
            return p.node() == 0
                       ? sendMain(p, 1, 100, 150)
                       : recvMain(p, &st, p.node() == 1 ? 100 : 0);
        });
        m.addJob("null", [](Process &p) { return nullMain(p); });
        GangConfig g;
        g.quantum = 15000;
        g.skew = 0.4;
        m.startGang(g);
        ASSERT_TRUE(m.runUntilDone(job));
        out.push_back(static_cast<double>(m.now()));
        out.push_back(job->procs[1]->stats.directDelivered.value());
        out.push_back(job->procs[1]->stats.bufferedDelivered.value());
        out.push_back(m.node(1).kernel.stats.processSwitches.value());
    };
    std::vector<double> a, b;
    run(a);
    run(b);
    EXPECT_EQ(a, b);
}

TEST_F(GlazeTest, JobsFinishIndependently)
{
    MachineConfig cfg;
    cfg.nodes = 2;
    Machine m(cfg);
    Job *quick = m.addJob("quick", [](Process &p) { return idleMain(p); });
    m.installJob(quick);
    ASSERT_TRUE(m.runUntilDone(quick, 1000000));
}

} // namespace
