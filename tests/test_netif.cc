/**
 * @file
 * Unit tests for the NetIf hardware model. Each test pins one row of
 * the paper's Table 1 (operations), Table 2 (interrupts/traps) or
 * Table 3 (UAC flags), plus GID demultiplexing and divert-mode.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/arch.hh"
#include "core/netif.hh"
#include "exec/cpu.hh"
#include "net/network.hh"
#include "sim/log.hh"

using namespace fugu;
using namespace fugu::core;
using namespace fugu::exec;

namespace
{

Task
recordIrq(std::vector<std::string> *log, exec::Cpu *cpu, unsigned line,
          std::function<void()> quiesce)
{
    log->push_back("irq" + std::to_string(line) + "@" +
                   std::to_string(cpu->now()));
    if (quiesce)
        quiesce();
    co_return;
}

struct NiTest : ::testing::Test
{
    NiTest()
        : sg("test"), cpu0(eq, 0, &sg), cpu1(eq, 1, &sg),
          net(eq, net::NetworkConfig{}, "net", &sg),
          ni0(cpu0, net, 0, NetIfConfig{}, &sg),
          ni1(cpu1, net, 1, NetIfConfig{}, &sg)
    {
        detail::setThrowOnError(true);
        // Default handlers quiesce the level-triggered lines the way
        // the OS stubs do: the message-available stub enters an
        // atomic section; the mismatch stub extracts the message.
        cpu1.setIrqHandler(kIrqMessageAvailable, [this](unsigned l) {
            return recordIrq(&irqs, &cpu1, l, [this] {
                ni1.writeUac(ni1.uac() | kUacInterruptDisable);
            });
        });
        cpu1.setIrqHandler(kIrqMismatchAvailable, [this](unsigned l) {
            return recordIrq(&irqs, &cpu1, l, [this] {
                extracted.push_back(ni1.kernelExtract());
            });
        });
        cpu1.setIrqHandler(kIrqAtomicityTimeout, [this](unsigned l) {
            return recordIrq(&irqs, &cpu1, l, nullptr);
        }, /*pulse=*/true);
    }

    ~NiTest() override { detail::setThrowOnError(false); }

    /** Describe and launch a message from node 0 (kernel-free test). */
    void
    sendFrom0(NodeId dst, Word handler, std::vector<Word> payload = {},
              bool user = true, bool kernel_header = false)
    {
        ni0.writeOutput(0, makeHeader(dst, kernel_header));
        ni0.writeOutput(1, handler);
        for (unsigned i = 0; i < payload.size(); ++i)
            ni0.writeOutput(2 + i, payload[i]);
        NiTrap t = ni0.launch(2 + payload.size(), user);
        ASSERT_EQ(t, NiTrap::None);
    }

    EventQueue eq;
    StatGroup sg;
    Cpu cpu0, cpu1;
    net::Network net;
    NetIf ni0, ni1;
    std::vector<std::string> irqs;
    std::vector<net::Packet> extracted;
};

TEST_F(NiTest, LaunchCommitsAndClearsDescriptor)
{
    ni0.setGid(3);
    ni1.setGid(3);
    ni0.writeOutput(0, makeHeader(1));
    ni0.writeOutput(1, 42);
    ni0.writeOutput(2, 7);
    EXPECT_EQ(ni0.descriptorLength(), 3u);
    EXPECT_EQ(ni0.launch(3, true), NiTrap::None);
    EXPECT_EQ(ni0.descriptorLength(), 0u);
    eq.run();
    ASSERT_TRUE(ni1.messageAvailable());
    EXPECT_EQ(ni1.readInput(1), 42u);
    EXPECT_EQ(ni1.readInput(2), 7u);
    EXPECT_EQ(ni1.head()->gid, 3);
    EXPECT_EQ(headerNode(ni1.readInput(0)), 0);
}

TEST_F(NiTest, UserLaunchOfKernelMessageTrapsProtection)
{
    // Table 1 / Table 2: protection-violation.
    ni0.writeOutput(0, makeHeader(1, /*kernel=*/true));
    ni0.writeOutput(1, 1);
    EXPECT_EQ(ni0.launch(2, /*user_mode=*/true), NiTrap::Protection);
    eq.run();
    EXPECT_EQ(ni1.head(), nullptr); // nothing was sent
}

TEST_F(NiTest, KernelLaunchOfKernelMessageAllowed)
{
    ni1.setGid(5);
    ni0.writeOutput(0, makeHeader(1, /*kernel=*/true));
    ni0.writeOutput(1, 1);
    EXPECT_EQ(ni0.launch(2, /*user_mode=*/false), NiTrap::None);
    eq.run();
    // Kernel-stamped messages never match a user GID: the mismatch
    // stub (the OS) pulled it out of the queue.
    ASSERT_EQ(extracted.size(), 1u);
    EXPECT_EQ(extracted[0].gid, kKernelGid);
    EXPECT_FALSE(ni1.messageAvailable());
}

TEST_F(NiTest, LaunchWithEmptyDescriptorIsNoop)
{
    EXPECT_EQ(ni0.launch(2, true), NiTrap::None);
    eq.run();
    EXPECT_EQ(ni1.head(), nullptr);
}

TEST_F(NiTest, MatchingGidRaisesMessageAvailable)
{
    ni0.setGid(4);
    ni1.setGid(4);
    sendFrom0(1, 9);
    eq.run();
    ASSERT_EQ(irqs.size(), 1u);
    EXPECT_EQ(irqs[0].substr(0, 4), "irq2"); // kIrqMessageAvailable
    EXPECT_DOUBLE_EQ(ni1.stats.messageIrqs.value(), 1.0);
}

TEST_F(NiTest, MismatchedGidRaisesMismatchAvailable)
{
    ni0.setGid(4);
    ni1.setGid(6);
    sendFrom0(1, 9);
    eq.run();
    ASSERT_EQ(irqs.size(), 1u);
    EXPECT_EQ(irqs[0].substr(0, 4), "irq0"); // kIrqMismatchAvailable
    EXPECT_EQ(extracted.size(), 1u);
    EXPECT_DOUBLE_EQ(ni1.stats.mismatchIrqs.value(), 1.0);
}

TEST_F(NiTest, DivertModeDivertsEvenMatchingGids)
{
    ni0.setGid(4);
    ni1.setGid(4);
    ni1.setDivert(true);
    sendFrom0(1, 9);
    eq.run();
    ASSERT_EQ(irqs.size(), 1u);
    EXPECT_EQ(irqs[0].substr(0, 4), "irq0");
    EXPECT_FALSE(ni1.messageAvailable());
}

TEST_F(NiTest, InterruptDisableSuppressesIrqButNotFlag)
{
    ni0.setGid(4);
    ni1.setGid(4);
    ni1.beginAtom(kUacInterruptDisable);
    sendFrom0(1, 9);
    eq.run();
    EXPECT_TRUE(ni1.messageAvailable());
    EXPECT_TRUE(irqs.empty());
    // Re-enabling delivers the pending interrupt.
    EXPECT_EQ(ni1.endAtom(kUacInterruptDisable), NiTrap::None);
    eq.run();
    ASSERT_EQ(irqs.size(), 1u);
    EXPECT_EQ(irqs[0].substr(0, 4), "irq2");
}

TEST_F(NiTest, DisposeExposesNextMessage)
{
    ni0.setGid(4);
    ni1.setGid(4);
    ni1.beginAtom(kUacInterruptDisable); // keep them queued
    sendFrom0(1, 9, {1});
    sendFrom0(1, 9, {2});
    eq.run();
    ASSERT_TRUE(ni1.messageAvailable());
    EXPECT_EQ(ni1.readInput(2), 1u);
    EXPECT_EQ(ni1.dispose(true), NiTrap::None);
    ASSERT_TRUE(ni1.messageAvailable());
    EXPECT_EQ(ni1.readInput(2), 2u);
    EXPECT_EQ(ni1.dispose(true), NiTrap::None);
    EXPECT_FALSE(ni1.messageAvailable());
}

TEST_F(NiTest, DisposeWithNoMessageIsBadDispose)
{
    ni1.setGid(4);
    ni1.beginAtom(kUacInterruptDisable);
    EXPECT_EQ(ni1.dispose(true), NiTrap::BadDispose);
}

TEST_F(NiTest, DisposeInDivertModeIsDisposeExtend)
{
    // Table 1: divert-mode set -> dispose-extend trap.
    ni1.setGid(4);
    ni1.setDivert(true);
    EXPECT_EQ(ni1.dispose(true), NiTrap::DisposeExtend);
}

TEST_F(NiTest, EndAtomWithDisposePendingIsDisposeFailure)
{
    ni1.setKernelUac(kUacDisposePending, 0);
    EXPECT_EQ(ni1.endAtom(kUacInterruptDisable), NiTrap::DisposeFailure);
    // Dispose resets dispose-pending (Table 3): endatom then succeeds.
    ni0.setGid(4);
    ni1.setGid(4);
    ni1.beginAtom(kUacInterruptDisable);
    sendFrom0(1, 9);
    eq.run();
    EXPECT_EQ(ni1.dispose(true), NiTrap::None);
    EXPECT_FALSE(ni1.uac() & kUacDisposePending);
    EXPECT_EQ(ni1.endAtom(kUacInterruptDisable), NiTrap::None);
}

TEST_F(NiTest, EndAtomWithAtomicityExtendTraps)
{
    ni1.setKernelUac(kUacAtomicityExtend, 0);
    EXPECT_EQ(ni1.endAtom(kUacInterruptDisable),
              NiTrap::AtomicityExtend);
    ni1.setKernelUac(0, kUacAtomicityExtend);
    EXPECT_EQ(ni1.endAtom(kUacInterruptDisable), NiTrap::None);
}

TEST_F(NiTest, BeginAtomCannotSetKernelBits)
{
    ni1.beginAtom(kUacDisposePending | kUacAtomicityExtend |
                  kUacInterruptDisable);
    EXPECT_EQ(ni1.uac(), kUacInterruptDisable);
}

TEST_F(NiTest, WriteUacMasksToArchitecturalBits)
{
    ni1.writeUac(0xffffffffu);
    EXPECT_EQ(ni1.uac(), kUacUserMask | kUacKernelMask);
}

Task
spinUser(Cpu *cpu, int iters)
{
    for (int i = 0; i < iters; ++i)
        co_await cpu->spend(100);
}

TEST_F(NiTest, AtomicityTimerFiresAfterPresetUserCycles)
{
    ni0.setGid(4);
    ni1.setGid(4);
    ni1.setAtomicityTimeout(500);
    ni1.beginAtom(kUacInterruptDisable);
    sendFrom0(1, 9);
    // A user context must be running for user-cycle time to pass.
    auto ctx = cpu1.spawn("u", false, spinUser(&cpu1, 50));
    cpu1.switchTo(ctx);
    eq.run();
    // Message arrives at 9; timer enabled then; 500 user cycles later.
    ASSERT_EQ(irqs.size(), 1u);
    EXPECT_EQ(irqs[0], "irq1@509");
    EXPECT_DOUBLE_EQ(ni1.stats.atomicityTimeouts.value(), 1.0);
}

TEST_F(NiTest, DisposePresetsTimer)
{
    ni0.setGid(4);
    ni1.setGid(4);
    ni1.setAtomicityTimeout(500);
    ni1.beginAtom(kUacInterruptDisable);
    sendFrom0(1, 9, {1});
    sendFrom0(1, 9, {2});
    auto ctx = cpu1.spawn("u", false, spinUser(&cpu1, 50));
    cpu1.switchTo(ctx);
    // Both messages arrive by ~13; dispose the first at user cycle
    // 300: the timer restarts for the second message.
    eq.scheduleFn([&] { EXPECT_EQ(ni1.dispose(true), NiTrap::None); },
                  300);
    eq.run();
    ASSERT_EQ(irqs.size(), 1u);
    // Restarted at 300, fires 500 user-cycles later.
    EXPECT_EQ(irqs[0], "irq1@800");
}

TEST_F(NiTest, TimerCanceledWhenQueueDrains)
{
    ni0.setGid(4);
    ni1.setGid(4);
    ni1.setAtomicityTimeout(500);
    ni1.beginAtom(kUacInterruptDisable);
    sendFrom0(1, 9);
    auto ctx = cpu1.spawn("u", false, spinUser(&cpu1, 50));
    cpu1.switchTo(ctx);
    eq.scheduleFn([&] { EXPECT_EQ(ni1.dispose(true), NiTrap::None); },
                  100);
    eq.run();
    EXPECT_TRUE(irqs.empty());
}

TEST_F(NiTest, TimerForceEnablesWithoutPendingMessage)
{
    ni1.setGid(4);
    ni1.setAtomicityTimeout(200);
    ni1.beginAtom(kUacTimerForce);
    auto ctx = cpu1.spawn("u", false, spinUser(&cpu1, 10));
    cpu1.switchTo(ctx);
    eq.run();
    ASSERT_EQ(irqs.size(), 1u);
    EXPECT_EQ(irqs[0], "irq1@200");
}

TEST_F(NiTest, SaveRestoreOutputDescriptor)
{
    ni0.writeOutput(0, makeHeader(1));
    ni0.writeOutput(1, 5);
    ni0.writeOutput(2, 77);
    auto saved = ni0.saveOutput();
    EXPECT_EQ(ni0.descriptorLength(), 0u);
    EXPECT_EQ(saved.size(), 3u);
    // Another process describes and launches in between.
    sendFrom0(1, 1);
    ni0.restoreOutput(saved);
    EXPECT_EQ(ni0.descriptorLength(), 3u);
    ni1.setGid(0xb);
    ni0.setGid(0xb);
    EXPECT_EQ(ni0.launch(3, true), NiTrap::None);
    eq.run();
    // Second delivered message carries the restored payload.
    ASSERT_EQ(extracted.size(), 1u); // the first (mismatch at gid 0)
    ASSERT_TRUE(ni1.messageAvailable());
    EXPECT_EQ(ni1.readInput(2), 77u);
}

TEST_F(NiTest, FullInputQueueBackPressuresNetwork)
{
    ni0.setGid(4);
    ni1.setGid(4);
    ni1.beginAtom(kUacInterruptDisable); // nobody extracts
    for (Word i = 0; i < 6; ++i)
        sendFrom0(1, 9, {i});
    eq.run();
    // Input queue holds 4; the rest wait in the network.
    EXPECT_GE(net.stats.headOfLineBlocks.value(), 1.0);
    EXPECT_EQ(ni1.stats.received.value(), 4.0);
    for (Word i = 0; i < 6; ++i) {
        ASSERT_TRUE(ni1.messageAvailable());
        EXPECT_EQ(ni1.readInput(2), i);
        EXPECT_EQ(ni1.dispose(true), NiTrap::None);
        eq.run();
    }
    EXPECT_FALSE(ni1.messageAvailable());
}

TEST_F(NiTest, KernelExtractBypassesChecks)
{
    ni0.setGid(4);
    ni1.setGid(9); // mismatch
    sendFrom0(1, 9, {123});
    eq.run();
    ASSERT_EQ(extracted.size(), 1u);
    EXPECT_EQ(extracted[0].payload[0], 123u);
    EXPECT_EQ(extracted[0].gid, 4);
}

} // namespace
