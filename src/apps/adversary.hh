/**
 * @file
 * Adversarial-neighbor tenants: applications written to *attack* the
 * two-case delivery machinery from inside their own protection
 * domain, for isolation benchmarking (bench_isolation) and stress.
 *
 * Each adversary leans on exactly one shared resource the paper's
 * design multiplexes between tenants:
 *
 *  - hog: keeps the NI input ring / DAMQ pool saturated by flooding
 *    its neighbour while the receive handler sits on every message
 *    before disposing, so the head stays parked in the NI;
 *  - abuser: refuses to drain its own software buffer — it squats in
 *    back-to-back user atomic sections while its peers flood it, so
 *    arrivals divert to the vbuf and overflow control engages;
 *  - squatter: repeatedly re-arms physical atomicity and holds every
 *    section past the revocation preset (optionally arming the
 *    user-visible timer-force bit instead), so the kernel's
 *    atomicity-timeout path fires continuously;
 *  - covert tx/rx: two *cooperating* jobs in different protection
 *    domains that try to signal through shared NI-queue occupancy:
 *    tx floods a target node during "mark" windows of a seeded
 *    pseudo-random bit sequence, rx echo-probes the same node and
 *    decodes each window's bit from its own observed round-trip
 *    times. The decode accuracy bounds the channel's capacity.
 *
 * None of the adversaries uses any privileged interface: everything
 * goes through the public UdmPort API, so whatever damage they do is
 * damage any tenant could do. The isolation claim under test is that
 * victims keep their transparency invariants (and bounded latency
 * inflation) regardless.
 */

#ifndef FUGU_APPS_ADVERSARY_HH
#define FUGU_APPS_ADVERSARY_HH

#include "apps/common.hh"

namespace fugu::sim
{
class Binder;
}

namespace fugu::apps
{

/**
 * NI-queue hog: node i floods node (i+1) mod n; the receive handler
 * spends holdCycles *before* disposing, so the message under service
 * keeps its NI slot (or DAMQ descriptor) occupied and the ring backs
 * up behind it.
 */
struct HogAppConfig
{
    unsigned messages = 2000; ///< floods per node
    Cycle gap = 60;           ///< inter-send spacing
    Cycle holdCycles = 900;   ///< handler hold before dispose
    /**
     * Idle computation before the first send, so every gang peer has
     * been scheduled once and registered its handlers before traffic
     * can drain at handler priority. Must cover at least one full
     * gang rotation.
     */
    Cycle warmup = 50000;
    std::uint64_t seed = 1;
};

AppBody makeHogApp(unsigned nnodes, HogAppConfig cfg = {});

/**
 * Overflow-control abuser: node 0 squats in back-to-back atomic
 * sections (holdCycles each, drainGap breathers) while every other
 * node sends it messages mid-squat; arrivals divert into node 0's
 * vbuf, which the squat keeps the drain from emptying.
 */
struct AbuserAppConfig
{
    unsigned messages = 400; ///< sends per peer node, aimed at node 0
    Cycle gap = 150;         ///< peer inter-send spacing
    Cycle holdCycles = 2500; ///< atomic-section length per squat
    Cycle drainGap = 400;    ///< non-atomic breather between squats
    Cycle warmup = 50000;    ///< see HogAppConfig::warmup
    std::uint64_t seed = 1;
};

AppBody makeAbuserApp(unsigned nnodes, AbuserAppConfig cfg = {});

/**
 * Atomicity-timeout squatter: every node runs rounds of "re-arm
 * physical atomicity, hold it past the revocation preset, barrier",
 * so the kernel revokes interrupt-disable over and over while real
 * barrier traffic is in flight. With timerForce set it instead arms
 * the user-visible timer-force UAC bit once and never opens a
 * section, so timeouts fire with no atomic section open at all.
 */
struct SquatterAppConfig
{
    unsigned rounds = 60;    ///< squat + barrier episodes per node
    Cycle holdCycles = 3000; ///< section length (set > the preset)
    bool timerForce = false; ///< arm kUacTimerForce instead
    std::uint64_t seed = 1;
};

AppBody makeSquatterApp(unsigned nnodes, SquatterAppConfig cfg = {});

/**
 * Covert-channel pair. Both jobs key their signalling windows off the
 * shared machine clock (window w covers cycles [w, w+1)*windowCycles)
 * and the shared seeded bit sequence covertBit(seed, w), so they need
 * no communication to stay aligned — exactly as co-conspiring tenants
 * on a real machine would use wall-clock time.
 */
struct CovertAppConfig
{
    unsigned target = 0;  ///< node whose NI queue carries the signal
    unsigned windows = 32;    ///< signalling windows per run
    Cycle windowCycles = 60000; ///< symbol period (>> gang quantum)
    unsigned burst = 24;      ///< tx messages per mark window
    Cycle gap = 120;          ///< tx intra-burst spacing
    Cycle probeGap = 2500;    ///< rx inter-probe spacing
    Cycle handlerCost = 150;  ///< receive-handler occupancy (both)
    Cycle warmup = 50000;     ///< see HogAppConfig::warmup
    std::uint64_t seed = 1;
};

/** Decode outcome, written by the rx prober when its run completes. */
struct CovertResult
{
    unsigned windows = 0; ///< windows with at least one probe
    unsigned correct = 0; ///< windows whose decoded bit matched
    double markMean = 0;  ///< mean probe RTT over mark windows
    double spaceMean = 0; ///< mean probe RTT over space windows

    double
    accuracy() const
    {
        return windows ? static_cast<double>(correct) / windows : 0;
    }
};

AppBody makeCovertTxApp(unsigned nnodes, CovertAppConfig cfg = {});
AppBody makeCovertRxApp(unsigned nnodes, CovertAppConfig cfg = {},
                        CovertResult *result = nullptr);

/** The shared pseudo-random bit both conspirators derive per window. */
inline bool
covertBit(std::uint64_t seed, std::uint64_t window)
{
    std::uint64_t z = (seed ^ window) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return ((z ^ (z >> 31)) & 1) != 0;
}

/// @name Scenario/config-tree registration
/// @{
void bindConfig(sim::Binder &b, HogAppConfig &c);
void bindConfig(sim::Binder &b, AbuserAppConfig &c);
void bindConfig(sim::Binder &b, SquatterAppConfig &c);
void bindConfig(sim::Binder &b, CovertAppConfig &c);
/// @}

} // namespace fugu::apps

#endif // FUGU_APPS_ADVERSARY_HH
