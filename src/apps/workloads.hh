/**
 * @file
 * The paper's application workloads (Table 6) plus the synthetic
 * producer/consumer of Section 5.2, reimplemented against the public
 * UDM/CRL APIs.
 *
 * Three of the real applications (Barnes, Water, LU) are "slightly
 * modified SPLASH" codes on CRL in the paper. We reimplement the
 * kernels with the same structure (data partitioning, per-iteration
 * barriers, region-level sharing), with computation charged through
 * modelled cycles; DESIGN.md documents the fidelity trade.
 * Barrier and enum are native UDM applications, as in the paper.
 */

#ifndef FUGU_APPS_WORKLOADS_HH
#define FUGU_APPS_WORKLOADS_HH

#include "apps/common.hh"

namespace fugu::sim
{
class Binder;
}

namespace fugu::apps
{

/** "null": burns cycles forever (never finishes). */
AppBody makeNullApp();

/**
 * "barrier": a program that consists entirely of barriers (Table 6:
 * 10,000 barriers, 240k messages on 8 nodes).
 */
struct BarrierAppConfig
{
    unsigned barriers = 10000;
    /** Local computation between barriers (min..max, uniform). */
    Cycle computeMin = 50;
    Cycle computeMax = 250;
    std::uint64_t seed = 1;
};

AppBody makeBarrierApp(unsigned nnodes, BarrierAppConfig cfg = {});

/**
 * "enum": exhaustive enumeration of reachable triangle-puzzle (peg
 * solitaire) states, distributed by hashing each state to an owner
 * node; fine-grain, unacknowledged messages, infrequent
 * synchronization (Table 6: 6 pegs/side, 610k messages).
 */
struct EnumAppConfig
{
    /** Triangle side (holes = side*(side+1)/2). Paper: 6. */
    unsigned side = 5;
    /** Cap on states expanded per node (0 = unbounded). */
    std::uint64_t maxStatesPerNode = 0;
    /** Modelled cycles to expand one state. */
    Cycle expandCost = 1200;
    /** Modelled cycles the state-receive handler spends. */
    Cycle handlerCost = 250;
    std::uint64_t seed = 1;
};

struct EnumResult
{
    std::uint64_t statesVisited = 0; ///< global distinct states
    std::uint64_t solutions = 0;     ///< states with a single peg
};

AppBody makeEnumApp(unsigned nnodes, EnumAppConfig cfg = {},
                    EnumResult *result = nullptr);

/**
 * "synth-N" (Section 5.2): every node iteratively launches groups of
 * N requests to random other nodes, then waits for the group's
 * replies; the consumer-side request handler stalls for a fixed time
 * and replies. T_hand in the paper is 290 cycles including interrupt
 * and kernel overhead.
 */
struct SynthAppConfig
{
    unsigned n = 100;          ///< requests per synchronization group
    unsigned groups = 50;      ///< groups per node
    Cycle tBetween = 400;      ///< mean inter-send interval (uniform)
    Cycle handlerStall = 200;  ///< consumer stall inside the handler
    std::uint64_t seed = 1;
};

AppBody makeSynthApp(unsigned nnodes, SynthAppConfig cfg = {});

/**
 * "lu": blocked dense LU decomposition without pivoting on CRL
 * (Table 6: 250x250 matrix, 10x10 blocks). Computes a real
 * factorization on real data so tests can verify A = L*U.
 */
struct LuAppConfig
{
    unsigned n = 128;         ///< matrix dimension (paper: 250)
    unsigned blockSize = 16;  ///< block dimension (paper: 10)
    Cycle cyclesPerFlop = 12; ///< modelled compute cost (incl. loads)
    std::uint64_t seed = 1;
};

struct LuResult
{
    double maxResidual = 0.0; ///< max |(L*U - A)| over spot checks
};

AppBody makeLuApp(unsigned nnodes, LuAppConfig cfg = {},
                  LuResult *result = nullptr);

/**
 * "water": molecular dynamics in the style of SPLASH Water: bodies
 * partitioned across nodes, per-step all-to-all position reads with
 * cutoff-limited force computation, per-iteration barriers.
 */
struct WaterAppConfig
{
    unsigned molecules = 512;
    unsigned iterations = 3;
    /** Modelled cost per molecule pair examined. */
    Cycle cyclesPerPair = 90;
    std::uint64_t seed = 1;
};

AppBody makeWaterApp(unsigned nnodes, WaterAppConfig cfg = {});

/**
 * "barnes": hierarchical N-body in the style of SPLASH Barnes-Hut:
 * bodies partitioned across nodes; each step exchanges per-node
 * center-of-mass summaries, reads neighbour partitions in detail,
 * and advances local bodies; per-iteration barriers.
 */
struct BarnesAppConfig
{
    unsigned bodies = 2048;
    unsigned iterations = 3;
    Cycle cyclesPerInteraction = 30;
    std::uint64_t seed = 1;
};

AppBody makeBarnesApp(unsigned nnodes, BarnesAppConfig cfg = {});

/// @name Scenario/config-tree registration (one binder per app)
/// @{
void bindConfig(sim::Binder &b, BarrierAppConfig &c);
void bindConfig(sim::Binder &b, EnumAppConfig &c);
void bindConfig(sim::Binder &b, SynthAppConfig &c);
void bindConfig(sim::Binder &b, LuAppConfig &c);
void bindConfig(sim::Binder &b, WaterAppConfig &c);
void bindConfig(sim::Binder &b, BarnesAppConfig &c);
/// @}

} // namespace fugu::apps

#endif // FUGU_APPS_WORKLOADS_HH
