#include "apps/workloads.hh"

namespace fugu::apps
{

namespace
{

exec::CoTask<void>
nullMain(glaze::Process &p)
{
    for (;;)
        co_await p.compute(10000);
}

} // namespace

AppBody
makeNullApp()
{
    return [](glaze::Process &p) { return nullMain(p); };
}

} // namespace fugu::apps
