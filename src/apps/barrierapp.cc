#include "apps/workloads.hh"

namespace fugu::apps
{

namespace
{

exec::CoTask<void>
barrierMain(glaze::Process &p, unsigned nnodes, BarrierAppConfig cfg)
{
    AppEnv &e = env(p, nnodes, cfg.seed);
    for (unsigned i = 0; i < cfg.barriers; ++i) {
        co_await p.compute(
            e.rng.uniform(cfg.computeMin, cfg.computeMax));
        co_await e.barrier.wait();
    }
}

} // namespace

AppBody
makeBarrierApp(unsigned nnodes, BarrierAppConfig cfg)
{
    return [nnodes, cfg](glaze::Process &p) {
        return barrierMain(p, nnodes, cfg);
    };
}

} // namespace fugu::apps
