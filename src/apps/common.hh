/**
 * @file
 * Shared plumbing for the paper's workloads: a dissemination barrier
 * over UDM messages and the per-process application environment.
 *
 * The dissemination barrier costs n*ceil(log2 n) messages per episode
 * (24 on 8 nodes), matching the message count per barrier implied by
 * the paper's Table 6 barrier application.
 */

#ifndef FUGU_APPS_COMMON_HH
#define FUGU_APPS_COMMON_HH

#include <memory>
#include <vector>

#include "crl/crl.hh"
#include "glaze/machine.hh"
#include "rt/thread.hh"
#include "sim/rng.hh"

namespace fugu::apps
{

using glaze::AppBody;

/** Handler ids reserved by the app layer (below CRL's base of 64). */
inline constexpr Word kBarrierHandler = 32;

/** Dissemination barrier across all nodes of a job. */
class Barrier
{
  public:
    Barrier(glaze::Process &p, unsigned nnodes,
            Word handler = kBarrierHandler)
        : p_(p), n_(nnodes), cv_(p.threads())
    {
        unsigned rounds = 0;
        while ((1u << rounds) < n_)
            ++rounds;
        arrived_.assign(rounds ? rounds : 1, 0);
        p_.port().setHandler(
            handler,
            [this](core::UdmPort &port, NodeId) -> exec::CoTask<void> {
                const Word round = co_await port.read(0);
                // Modelled barrier bookkeeping (Table 6: T_hand 149).
                co_await p_.compute(100);
                co_await port.dispose();
                ++arrived_.at(round);
                cv_.notifyAll();
            });
        handler_ = handler;
    }

    /** Complete one barrier episode. */
    exec::CoTask<void>
    wait()
    {
        const NodeId me = p_.node();
        for (unsigned r = 0; (1u << r) < n_; ++r) {
            const NodeId to =
                static_cast<NodeId>((me + (1u << r)) % n_);
            net::PayloadVec payload(1, r);
            co_await p_.port().send(to, handler_, std::move(payload));
            while (arrived_[r] < done_ + 1)
                co_await cv_.wait();
        }
        ++done_;
    }

    std::uint64_t completed() const { return done_; }

  private:
    glaze::Process &p_;
    unsigned n_;
    Word handler_ = kBarrierHandler;
    std::vector<std::uint64_t> arrived_;
    std::uint64_t done_ = 0;
    rt::CondVar cv_;
};

/**
 * Application environment held alive via Process::appData: registered
 * message handlers reference it for the life of the process.
 */
struct AppEnv
{
    AppEnv(glaze::Process &p, unsigned nnodes, std::uint64_t seed)
        : proc(p), nodes(nnodes), crl(p), barrier(p, nnodes),
          rng(seed ^ (0x9e3779b97f4a7c15ULL * (p.node() + 1)))
    {}

    glaze::Process &proc;
    unsigned nodes;
    crl::Crl crl;
    Barrier barrier;
    Rng rng;
};

/** Create (once) and fetch the AppEnv of a process. */
inline AppEnv &
env(glaze::Process &p, unsigned nnodes, std::uint64_t seed = 1)
{
    if (!p.appData)
        p.appData = std::make_shared<AppEnv>(p, nnodes, seed);
    return *std::static_pointer_cast<AppEnv>(p.appData);
}

} // namespace fugu::apps

#endif // FUGU_APPS_COMMON_HH
