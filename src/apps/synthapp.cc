#include "apps/workloads.hh"

namespace fugu::apps
{

namespace
{

constexpr Word kSynthReq = 8;
constexpr Word kSynthReply = 9;

struct SynthState
{
    SynthState(glaze::Process &p, SynthAppConfig cfg)
        : proc(p), cfg(cfg), cv(p.threads()),
          rng(cfg.seed ^ (0xc2b2ae3d27d4eb4fULL * (p.node() + 1)))
    {}

    glaze::Process &proc;
    SynthAppConfig cfg;
    rt::CondVar cv;
    Rng rng;
    std::uint64_t replies = 0;
};

exec::CoTask<void>
synthMain(glaze::Process &p, unsigned nnodes, SynthAppConfig cfg)
{
    auto st = std::make_shared<SynthState>(p, cfg);
    p.appData = st;

    p.port().setHandler(
        kSynthReq,
        [s = st.get()](core::UdmPort &port,
                       NodeId src) -> exec::CoTask<void> {
            co_await port.dispose();
            // The request handler stalls for a short period, then
            // sends a reply (Section 5.2).
            co_await s->proc.compute(s->cfg.handlerStall);
            co_await port.send(src, kSynthReply);
        });
    p.port().setHandler(
        kSynthReply,
        [s = st.get()](core::UdmPort &port, NodeId) -> exec::CoTask<void> {
            co_await port.dispose();
            ++s->replies;
            s->cv.notifyAll();
        });

    std::uint64_t expected = 0;
    for (unsigned g = 0; g < cfg.groups; ++g) {
        for (unsigned i = 0; i < cfg.n; ++i) {
            co_await p.compute(
                st->rng.uniform(0, 2 * cfg.tBetween));
            NodeId dst = static_cast<NodeId>(
                st->rng.uniform(0, nnodes - 2));
            if (dst >= p.node())
                ++dst; // uniform over the *other* nodes
            co_await p.port().send(dst, kSynthReq);
        }
        // Wait for all of this group's acknowledgements: an effective
        // synchronization point limiting outstanding requests to N.
        expected += cfg.n;
        while (st->replies < expected)
            co_await st->cv.wait();
    }
}

} // namespace

AppBody
makeSynthApp(unsigned nnodes, SynthAppConfig cfg)
{
    return [nnodes, cfg](glaze::Process &p) {
        return synthMain(p, nnodes, cfg);
    };
}

} // namespace fugu::apps
