#include "apps/workloads.hh"

#include <bit>
#include <deque>
#include <unordered_set>

#include "apps/triangle.hh"

namespace fugu::apps
{

namespace
{

constexpr Word kEnumState = 8;
constexpr Word kEnumReport = 9;
constexpr Word kEnumVerdict = 10;

struct EnumState
{
    EnumState(glaze::Process &p, unsigned nnodes, EnumAppConfig cfg)
        : proc(p), nnodes(nnodes), cfg(cfg), cv(p.threads()),
          board(cfg.side)
    {}

    glaze::Process &proc;
    unsigned nnodes;
    EnumAppConfig cfg;
    rt::CondVar cv;
    TriangleBoard board;

    std::unordered_set<Word> visited;
    std::deque<Word> pending;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t expanded = 0;
    std::uint64_t solutions = 0;

    // Termination-detection state (node 0 coordinates).
    unsigned reportsThisRound = 0;
    std::uint64_t roundSent = 0;
    std::uint64_t roundReceived = 0;
    std::uint64_t roundPending = 0;
    std::uint64_t roundVisited = 0;
    std::uint64_t roundSolutions = 0;
    std::uint64_t prevSent = ~0ull;
    bool verdictArrived = false;
    bool done = false;
    std::uint64_t globalVisited = 0;
    std::uint64_t globalSolutions = 0;
};

NodeId
ownerOf(Word state, unsigned nnodes)
{
    // splitmix-style mix so sibling states scatter.
    std::uint64_t z = state + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<NodeId>((z >> 33) % nnodes);
}

/** Drain the local pending queue, expanding and scattering states. */
exec::CoTask<void>
expandAll(EnumState *s)
{
    auto &p = s->proc;
    while (!s->pending.empty()) {
        const Word state = s->pending.front();
        s->pending.pop_front();
        if (!s->visited.insert(state).second)
            continue;
        ++s->expanded;
        if (std::popcount(state) == 1)
            ++s->solutions;
        if (s->cfg.maxStatesPerNode &&
            s->expanded >= s->cfg.maxStatesPerNode) {
            continue; // count but do not expand further
        }
        co_await p.compute(s->cfg.expandCost);
        for (const auto &mv : s->board.moves()) {
            if (!s->board.legal(state, mv))
                continue;
            const Word child = s->board.apply(state, mv);
            const NodeId owner = ownerOf(child, s->nnodes);
            if (owner == p.node()) {
                if (!s->visited.count(child))
                    s->pending.push_back(child);
            } else {
                ++s->sent;
                net::PayloadVec payload(1, child);
                co_await p.port().send(owner, kEnumState,
                                       std::move(payload));
            }
        }
    }
}

exec::CoTask<void>
enumMain(glaze::Process &p, unsigned nnodes, EnumAppConfig cfg,
         EnumResult *result)
{
    AppEnv &e = env(p, nnodes, cfg.seed);
    auto st = std::make_shared<EnumState>(p, nnodes, cfg);
    // Keep both the environment (barrier) and the enum state alive.
    struct Both
    {
        std::shared_ptr<void> a, b;
    };
    p.appData = std::make_shared<Both>(Both{p.appData, st});

    EnumState *s = st.get();
    p.port().setHandler(
        kEnumState,
        [s](core::UdmPort &port, NodeId) -> exec::CoTask<void> {
            const Word state = co_await port.read(0);
            co_await s->proc.compute(s->cfg.handlerCost);
            co_await port.dispose();
            ++s->received;
            if (!s->visited.count(state))
                s->pending.push_back(state);
            s->cv.notifyAll();
        });
    p.port().setHandler(
        kEnumReport,
        [s](core::UdmPort &port, NodeId) -> exec::CoTask<void> {
            const Word snt = co_await port.read(0);
            const Word rcv = co_await port.read(1);
            const Word pnd = co_await port.read(2);
            const Word vis = co_await port.read(3);
            const Word sol = co_await port.read(4);
            co_await port.dispose();
            s->roundSent += snt;
            s->roundReceived += rcv;
            s->roundPending += pnd;
            s->roundVisited += vis;
            s->roundSolutions += sol;
            ++s->reportsThisRound;
            s->cv.notifyAll();
        });
    p.port().setHandler(
        kEnumVerdict,
        [s](core::UdmPort &port, NodeId) -> exec::CoTask<void> {
            const Word verdict = co_await port.read(0);
            const Word vis = co_await port.read(1);
            const Word sol = co_await port.read(2);
            co_await port.dispose();
            s->done = verdict != 0;
            s->globalVisited = vis;
            s->globalSolutions = sol;
            s->verdictArrived = true;
            s->cv.notifyAll();
        });

    // Seed the search: full board with the apex hole empty.
    const Word initial = s->board.initialState();
    if (ownerOf(initial, nnodes) == p.node())
        s->pending.push_back(initial);
    co_await e.barrier.wait();

    for (;;) {
        co_await expandAll(s);
        // Quiescent locally; run a termination-detection round. The
        // barrier keeps rounds aligned; counts are monotonic, so two
        // rounds with identical, balanced totals mean global
        // quiescence.
        co_await e.barrier.wait();
        if (p.node() == 0) {
            // Collect everyone's counters (node 0 contributes
            // directly).
            s->roundSent += s->sent;
            s->roundReceived += s->received;
            s->roundPending += s->pending.size();
            s->roundVisited += s->visited.size();
            s->roundSolutions += s->solutions;
            while (s->reportsThisRound < nnodes - 1)
                co_await s->cv.wait();
            const bool quiet = s->roundSent == s->roundReceived &&
                               s->roundPending == 0 &&
                               s->roundSent == s->prevSent;
            s->prevSent = s->roundSent;
            s->done = quiet;
            s->globalVisited = s->roundVisited;
            s->globalSolutions = s->roundSolutions;
            for (NodeId n = 1; n < nnodes; ++n) {
                net::PayloadVec payload{
                    quiet ? 1u : 0u,
                    static_cast<Word>(s->roundVisited),
                    static_cast<Word>(s->roundSolutions)};
                co_await p.port().send(n, kEnumVerdict,
                                       std::move(payload));
            }
            s->reportsThisRound = 0;
            s->roundSent = s->roundReceived = s->roundPending = 0;
            s->roundVisited = s->roundSolutions = 0;
        } else {
            net::PayloadVec payload{
                static_cast<Word>(s->sent),
                static_cast<Word>(s->received),
                static_cast<Word>(s->pending.size()),
                static_cast<Word>(s->visited.size()),
                static_cast<Word>(s->solutions)};
            co_await p.port().send(0, kEnumReport, std::move(payload));
            while (!s->verdictArrived)
                co_await s->cv.wait();
            s->verdictArrived = false;
        }
        if (s->done)
            break;
    }
    if (result && p.node() == 0) {
        result->statesVisited = s->globalVisited;
        result->solutions = s->globalSolutions;
    }
}

} // namespace

AppBody
makeEnumApp(unsigned nnodes, EnumAppConfig cfg, EnumResult *result)
{
    return [nnodes, cfg, result](glaze::Process &p) {
        return enumMain(p, nnodes, cfg, result);
    };
}

} // namespace fugu::apps
