/**
 * @file
 * Triangle peg-solitaire board geometry, shared by the distributed
 * enum application and the sequential reference solver the tests use.
 *
 * Holes are laid out in rows: index(r, c) = r*(r+1)/2 + c for
 * 0 <= c <= r < side. A state is a bitmask of occupied holes. A move
 * jumps a peg from `from` over an occupied `over` into an empty `to`,
 * removing the jumped peg.
 */

#ifndef FUGU_APPS_TRIANGLE_HH
#define FUGU_APPS_TRIANGLE_HH

#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace fugu::apps
{

struct TriangleMove
{
    unsigned from, over, to;
};

class TriangleBoard
{
  public:
    explicit TriangleBoard(unsigned side) : side_(side)
    {
        fugu_assert(side >= 3 && side <= 7,
                    "triangle side out of range (state must fit a "
                    "32-bit word)");
        buildMoves();
    }

    unsigned side() const { return side_; }
    unsigned holes() const { return side_ * (side_ + 1) / 2; }

    /** Full board with the apex hole (0,0) empty. */
    Word
    initialState() const
    {
        return ((Word{1} << holes()) - 1) & ~Word{1};
    }

    const std::vector<TriangleMove> &moves() const { return moves_; }

    bool
    legal(Word state, const TriangleMove &m) const
    {
        return (state & (Word{1} << m.from)) &&
               (state & (Word{1} << m.over)) &&
               !(state & (Word{1} << m.to));
    }

    Word
    apply(Word state, const TriangleMove &m) const
    {
        return (state & ~(Word{1} << m.from) & ~(Word{1} << m.over)) |
               (Word{1} << m.to);
    }

  private:
    static unsigned
    index(unsigned r, unsigned c)
    {
        return r * (r + 1) / 2 + c;
    }

    bool
    valid(int r, int c) const
    {
        return r >= 0 && r < static_cast<int>(side_) && c >= 0 &&
               c <= r;
    }

    void
    buildMoves()
    {
        static constexpr int kDirs[6][2] = {{0, 1},  {0, -1}, {1, 0},
                                            {1, 1},  {-1, 0}, {-1, -1}};
        for (int r = 0; r < static_cast<int>(side_); ++r) {
            for (int c = 0; c <= r; ++c) {
                for (const auto &d : kDirs) {
                    const int orow = r + d[0], ocol = c + d[1];
                    const int trow = r + 2 * d[0], tcol = c + 2 * d[1];
                    if (valid(orow, ocol) && valid(trow, tcol)) {
                        moves_.push_back(TriangleMove{
                            index(r, c), index(orow, ocol),
                            index(trow, tcol)});
                    }
                }
            }
        }
    }

    unsigned side_;
    std::vector<TriangleMove> moves_;
};

} // namespace fugu::apps

#endif // FUGU_APPS_TRIANGLE_HH
