/**
 * @file
 * Scenario/config-tree registration for the workload configs. Each
 * app's per-trial seed is set by the harness (from machine.seed), so
 * the seeds are deliberately not bound here.
 */

#include "apps/workloads.hh"
#include "sim/config.hh"

namespace fugu::apps
{

void
bindConfig(sim::Binder &b, BarrierAppConfig &c)
{
    b.item("barriers", c.barriers, "barriers executed per run");
    b.item("compute_min", c.computeMin,
           "min local computation between barriers", "cycles");
    b.item("compute_max", c.computeMax,
           "max local computation between barriers", "cycles");
}

void
bindConfig(sim::Binder &b, EnumAppConfig &c)
{
    b.item("side", c.side,
           "triangle side (holes = side*(side+1)/2; paper: 6)");
    b.item("max_states_per_node", c.maxStatesPerNode,
           "cap on states expanded per node (0 = unbounded)");
    b.item("expand_cost", c.expandCost,
           "modelled cycles to expand one state", "cycles");
    b.item("handler_cost", c.handlerCost,
           "modelled cycles in the state-receive handler", "cycles");
}

void
bindConfig(sim::Binder &b, SynthAppConfig &c)
{
    b.item("n", c.n, "requests per synchronization group");
    b.item("groups", c.groups, "groups per node");
    b.item("t_between", c.tBetween,
           "mean inter-send interval (uniform)", "cycles");
    b.item("handler_stall", c.handlerStall,
           "consumer stall inside the request handler", "cycles");
}

void
bindConfig(sim::Binder &b, LuAppConfig &c)
{
    b.item("n", c.n, "matrix dimension (paper: 250)");
    b.item("block_size", c.blockSize, "block dimension (paper: 10)");
    b.item("cycles_per_flop", c.cyclesPerFlop,
           "modelled compute cost incl. loads", "cycles");
}

void
bindConfig(sim::Binder &b, WaterAppConfig &c)
{
    b.item("molecules", c.molecules, "molecules simulated");
    b.item("iterations", c.iterations, "timesteps");
    b.item("cycles_per_pair", c.cyclesPerPair,
           "modelled cost per molecule pair examined", "cycles");
}

void
bindConfig(sim::Binder &b, BarnesAppConfig &c)
{
    b.item("bodies", c.bodies, "bodies simulated");
    b.item("iterations", c.iterations, "timesteps");
    b.item("cycles_per_interaction", c.cyclesPerInteraction,
           "modelled cost per body interaction", "cycles");
}

} // namespace fugu::apps
