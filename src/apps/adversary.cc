#include "apps/adversary.hh"

#include <algorithm>
#include <vector>

#include "core/arch.hh"
#include "sim/config.hh"

namespace fugu::apps
{

namespace
{

/** Handler ids (above the barrier's 32, below CRL's base of 64). */
constexpr Word kHogFlood = 40;
constexpr Word kAbuserFlood = 41;
constexpr Word kCovertFlood = 42;
constexpr Word kCovertDone = 43;
constexpr Word kProbeReq = 44;
constexpr Word kProbeReply = 45;

/**
 * Spin compute in chunks until the machine clock reaches @p when.
 * compute(n) charges n *process* cycles, so one big charge would
 * overshoot by however long the gang deschedules us; chunking keeps
 * window-aligned adversaries aligned to the shared clock.
 */
exec::CoTask<void>
idleUntil(glaze::Process &p, Cycle when)
{
    while (p.port().cpu().now() < when)
        co_await p.compute(
            std::min<Cycle>(1000, when - p.port().cpu().now()));
}

// ---------------------------------------------------------------------
// hog
// ---------------------------------------------------------------------

struct HogState
{
    HogState(glaze::Process &p, HogAppConfig cfg)
        : proc(p), cfg(cfg), cv(p.threads()),
          rng(cfg.seed ^ (0xd6e8feb86659fd93ULL * (p.node() + 1)))
    {}

    glaze::Process &proc;
    HogAppConfig cfg;
    rt::CondVar cv;
    Rng rng;
    std::uint64_t received = 0;
};

exec::CoTask<void>
hogMain(glaze::Process &p, unsigned nnodes, HogAppConfig cfg)
{
    auto st = std::make_shared<HogState>(p, cfg);
    p.appData = st;

    p.port().setHandler(
        kHogFlood,
        [s = st.get()](core::UdmPort &port,
                       NodeId) -> exec::CoTask<void> {
            // Sit on the message *before* extracting it: the head
            // keeps its NI slot (or DAMQ descriptor) for the whole
            // hold, so the ring backs up behind it.
            co_await s->proc.compute(s->cfg.holdCycles);
            co_await port.dispose();
            ++s->received;
            s->cv.notifyAll();
        });

    co_await p.compute(cfg.warmup);
    const NodeId dst = static_cast<NodeId>((p.node() + 1) % nnodes);
    for (unsigned i = 0; i < cfg.messages; ++i) {
        co_await p.compute(st->rng.uniform(1, 2 * cfg.gap));
        co_await p.port().send(dst, kHogFlood);
    }
    while (st->received < cfg.messages)
        co_await st->cv.wait();
}

// ---------------------------------------------------------------------
// abuser
// ---------------------------------------------------------------------

struct AbuserState
{
    AbuserState(glaze::Process &p, AbuserAppConfig cfg)
        : proc(p), cfg(cfg), cv(p.threads()),
          rng(cfg.seed ^ (0xa0761d6478bd642fULL * (p.node() + 1)))
    {}

    glaze::Process &proc;
    AbuserAppConfig cfg;
    rt::CondVar cv;
    Rng rng;
    std::uint64_t received = 0;
};

exec::CoTask<void>
abuserMain(glaze::Process &p, unsigned nnodes, AbuserAppConfig cfg)
{
    auto st = std::make_shared<AbuserState>(p, cfg);
    p.appData = st;

    p.port().setHandler(
        kAbuserFlood,
        [s = st.get()](core::UdmPort &port,
                       NodeId) -> exec::CoTask<void> {
            co_await port.dispose();
            ++s->received;
            s->cv.notifyAll();
        });

    co_await p.compute(cfg.warmup);
    if (p.node() == 0) {
        const std::uint64_t expected =
            static_cast<std::uint64_t>(nnodes - 1) * cfg.messages;
        while (st->received < expected) {
            // Squat: arrivals during the section divert to the vbuf,
            // which the section keeps the drain from emptying. The
            // breather is the only window the drain gets.
            co_await p.port().beginAtomic();
            co_await p.compute(cfg.holdCycles);
            co_await p.port().endAtomic();
            co_await p.compute(cfg.drainGap);
        }
    } else {
        for (unsigned i = 0; i < cfg.messages; ++i) {
            co_await p.compute(st->rng.uniform(1, 2 * cfg.gap));
            co_await p.port().send(0, kAbuserFlood);
        }
    }
}

// ---------------------------------------------------------------------
// squatter
// ---------------------------------------------------------------------

exec::CoTask<void>
squatterMain(glaze::Process &p, unsigned nnodes, SquatterAppConfig cfg)
{
    AppEnv &e = env(p, nnodes, cfg.seed);
    if (cfg.timerForce) {
        // Never open a section at all: the timer then expires with
        // interrupt-disable clear, exercising the revocation path's
        // no-section corner on every firing.
        p.port().ni().beginAtom(core::kUacTimerForce);
        for (unsigned i = 0; i < cfg.rounds; ++i) {
            co_await p.compute(cfg.holdCycles);
            co_await e.barrier.wait();
        }
        co_return;
    }
    for (unsigned i = 0; i < cfg.rounds; ++i) {
        co_await p.port().beginAtomic();
        co_await p.compute(cfg.holdCycles);
        co_await p.port().endAtomic();
        co_await e.barrier.wait();
    }
}

// ---------------------------------------------------------------------
// covert tx / rx
// ---------------------------------------------------------------------

struct CovertTxState
{
    CovertTxState(glaze::Process &p, CovertAppConfig cfg)
        : proc(p), cfg(cfg), cv(p.threads())
    {}

    glaze::Process &proc;
    CovertAppConfig cfg;
    rt::CondVar cv;
    unsigned done = 0;
};

exec::CoTask<void>
covertTxMain(glaze::Process &p, unsigned nnodes, CovertAppConfig cfg)
{
    auto st = std::make_shared<CovertTxState>(p, cfg);
    p.appData = st;

    p.port().setHandler(
        kCovertFlood,
        [s = st.get()](core::UdmPort &port,
                       NodeId) -> exec::CoTask<void> {
            co_await s->proc.compute(s->cfg.handlerCost);
            co_await port.dispose();
        });
    p.port().setHandler(
        kCovertDone,
        [s = st.get()](core::UdmPort &port,
                       NodeId) -> exec::CoTask<void> {
            co_await port.dispose();
            ++s->done;
            s->cv.notifyAll();
        });

    co_await p.compute(cfg.warmup);
    const NodeId target = static_cast<NodeId>(cfg.target % nnodes);
    if (p.node() == target) {
        // Absorb the floods. Per-sender FIFO makes each done message
        // arrive after every flood of its sender, so waiting for all
        // done markers means no flood is still in flight at job end.
        while (st->done < nnodes - 1)
            co_await st->cv.wait();
        co_return;
    }
    while (true) {
        const std::uint64_t w =
            p.port().cpu().now() / cfg.windowCycles;
        if (w >= cfg.windows)
            break;
        const Cycle next = (w + 1) * cfg.windowCycles;
        if (covertBit(cfg.seed, w)) {
            // Mark: pile messages into the target's NI queue.
            for (unsigned i = 0; i < cfg.burst; ++i) {
                if (p.port().cpu().now() >= next)
                    break;
                co_await p.port().send(target, kCovertFlood);
                co_await p.compute(cfg.gap);
            }
        }
        co_await idleUntil(p, next);
    }
    co_await p.port().send(target, kCovertDone);
}

struct CovertRxState
{
    CovertRxState(glaze::Process &p, CovertAppConfig cfg)
        : proc(p), cfg(cfg), cv(p.threads())
    {}

    glaze::Process &proc;
    CovertAppConfig cfg;
    rt::CondVar cv;
    std::uint64_t replies = 0;
};

exec::CoTask<void>
covertRxMain(glaze::Process &p, unsigned nnodes, CovertAppConfig cfg,
             CovertResult *result)
{
    auto st = std::make_shared<CovertRxState>(p, cfg);
    p.appData = st;

    p.port().setHandler(
        kProbeReq,
        [s = st.get()](core::UdmPort &port,
                       NodeId src) -> exec::CoTask<void> {
            co_await s->proc.compute(s->cfg.handlerCost);
            co_await port.dispose();
            co_await port.send(src, kProbeReply);
        });
    p.port().setHandler(
        kProbeReply,
        [s = st.get()](core::UdmPort &port,
                       NodeId) -> exec::CoTask<void> {
            co_await port.dispose();
            ++s->replies;
            s->cv.notifyAll();
        });

    co_await p.compute(cfg.warmup);
    const NodeId target = static_cast<NodeId>(cfg.target % nnodes);
    const NodeId prober = static_cast<NodeId>((target + 1) % nnodes);
    if (p.node() != prober || nnodes < 2)
        co_return;

    // Ping-pong echo probes against our own process on the target
    // node; the tx job's floods share that node's NI queue, so mark
    // windows show up as inflated round-trip times.
    std::vector<double> sum(cfg.windows, 0.0);
    std::vector<unsigned> cnt(cfg.windows, 0);
    std::uint64_t sent = 0;
    while (true) {
        const Cycle start = p.port().cpu().now();
        const std::uint64_t w = start / cfg.windowCycles;
        if (w >= cfg.windows)
            break;
        co_await p.port().send(target, kProbeReq);
        ++sent;
        while (st->replies < sent)
            co_await st->cv.wait();
        // Attribute the probe to the window it started in.
        sum[w] += static_cast<double>(p.port().cpu().now() - start);
        ++cnt[w];
        co_await p.compute(cfg.probeGap);
    }

    if (!result)
        co_return;
    // Decode: a window reads as mark when its mean RTT exceeds the
    // median of all window means (the natural blind threshold).
    std::vector<double> means;
    for (unsigned w = 0; w < cfg.windows; ++w)
        if (cnt[w])
            means.push_back(sum[w] / cnt[w]);
    if (means.empty())
        co_return;
    std::vector<double> sorted = means;
    std::nth_element(sorted.begin(),
                     sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double threshold = sorted[sorted.size() / 2];
    CovertResult r;
    double markSum = 0, spaceSum = 0;
    unsigned marks = 0, spaces = 0;
    for (unsigned w = 0; w < cfg.windows; ++w) {
        if (!cnt[w])
            continue;
        const double mean = sum[w] / cnt[w];
        const bool decoded = mean > threshold;
        const bool truth = covertBit(cfg.seed, w);
        ++r.windows;
        if (decoded == truth)
            ++r.correct;
        if (truth) {
            markSum += mean;
            ++marks;
        } else {
            spaceSum += mean;
            ++spaces;
        }
    }
    r.markMean = marks ? markSum / marks : 0;
    r.spaceMean = spaces ? spaceSum / spaces : 0;
    *result = r;
}

} // namespace

AppBody
makeHogApp(unsigned nnodes, HogAppConfig cfg)
{
    return [nnodes, cfg](glaze::Process &p) {
        return hogMain(p, nnodes, cfg);
    };
}

AppBody
makeAbuserApp(unsigned nnodes, AbuserAppConfig cfg)
{
    return [nnodes, cfg](glaze::Process &p) {
        return abuserMain(p, nnodes, cfg);
    };
}

AppBody
makeSquatterApp(unsigned nnodes, SquatterAppConfig cfg)
{
    return [nnodes, cfg](glaze::Process &p) {
        return squatterMain(p, nnodes, cfg);
    };
}

AppBody
makeCovertTxApp(unsigned nnodes, CovertAppConfig cfg)
{
    return [nnodes, cfg](glaze::Process &p) {
        return covertTxMain(p, nnodes, cfg);
    };
}

AppBody
makeCovertRxApp(unsigned nnodes, CovertAppConfig cfg,
                CovertResult *result)
{
    return [nnodes, cfg, result](glaze::Process &p) {
        return covertRxMain(p, nnodes, cfg, result);
    };
}

void
bindConfig(sim::Binder &b, HogAppConfig &c)
{
    b.item("messages", c.messages, "floods per node");
    b.item("gap", c.gap, "mean inter-send spacing", "cycles");
    b.item("hold_cycles", c.holdCycles,
           "handler hold before dispose (keeps the NI slot)",
           "cycles");
    b.item("warmup", c.warmup,
           "idle before the first send (cover one gang rotation)",
           "cycles");
}

void
bindConfig(sim::Binder &b, AbuserAppConfig &c)
{
    b.item("messages", c.messages,
           "sends per peer node, aimed at the abuser (node 0)");
    b.item("gap", c.gap, "mean peer inter-send spacing", "cycles");
    b.item("hold_cycles", c.holdCycles,
           "atomic-section length per squat", "cycles");
    b.item("drain_gap", c.drainGap,
           "non-atomic breather between squats", "cycles");
    b.item("warmup", c.warmup,
           "idle before the first send (cover one gang rotation)",
           "cycles");
}

void
bindConfig(sim::Binder &b, SquatterAppConfig &c)
{
    b.item("rounds", c.rounds, "squat + barrier episodes per node");
    b.item("hold_cycles", c.holdCycles,
           "atomic-section length (set past ni.atomicity_timeout)",
           "cycles");
    b.item("timer_force", c.timerForce,
           "arm the timer-force UAC bit instead of atomic sections");
}

void
bindConfig(sim::Binder &b, CovertAppConfig &c)
{
    b.item("target", c.target,
           "node whose NI queue carries the signal");
    b.item("windows", c.windows, "signalling windows per run");
    b.item("window_cycles", c.windowCycles,
           "symbol period (set well above the gang quantum)",
           "cycles");
    b.item("burst", c.burst, "tx messages per mark window");
    b.item("gap", c.gap, "tx intra-burst spacing", "cycles");
    b.item("probe_gap", c.probeGap, "rx inter-probe spacing",
           "cycles");
    b.item("handler_cost", c.handlerCost,
           "receive-handler occupancy (both sides)", "cycles");
    b.item("warmup", c.warmup,
           "idle before signalling (cover one gang rotation)",
           "cycles");
}

} // namespace fugu::apps
