#include "apps/workloads.hh"

#include <cmath>
#include <vector>

namespace fugu::apps
{

namespace
{

/** Region id for node @p n 's molecule partition. */
crl::Rid
partRid(NodeId n)
{
    return 1000 + n;
}

exec::CoTask<void>
waterMain(glaze::Process &p, unsigned nnodes, WaterAppConfig cfg)
{
    AppEnv &e = env(p, nnodes, cfg.seed);
    const unsigned per = (cfg.molecules + nnodes - 1) / nnodes;
    const double box = std::cbrt(static_cast<double>(cfg.molecules));
    const double cutoff2 = 2.25; // short-range interaction radius^2

    for (NodeId n = 0; n < nnodes; ++n)
        e.crl.createRegion(partRid(n), n, 2 * per * 3);

    // Deterministic initial positions: jittered lattice.
    std::vector<double> vel(per * 3, 0.0);
    co_await e.crl.startWrite(partRid(p.node()));
    for (unsigned i = 0; i < per; ++i) {
        const unsigned gi = p.node() * per + i;
        const double fx = std::fmod(gi * 1.618033988749895, 1.0);
        const double fy = std::fmod(gi * 2.414213562373095, 1.0);
        const double fz = std::fmod(gi * 3.302775637731995, 1.0);
        e.crl.writeDouble(partRid(p.node()), i * 3 + 0, fx * box);
        e.crl.writeDouble(partRid(p.node()), i * 3 + 1, fy * box);
        e.crl.writeDouble(partRid(p.node()), i * 3 + 2, fz * box);
    }
    co_await e.crl.endWrite(partRid(p.node()));
    co_await e.barrier.wait();

    std::vector<double> mine(per * 3);
    std::vector<double> force(per * 3);
    for (unsigned it = 0; it < cfg.iterations; ++it) {
        // Snapshot our own positions.
        co_await e.crl.startRead(partRid(p.node()));
        for (unsigned i = 0; i < per * 3; ++i)
            mine[i] = e.crl.readDouble(partRid(p.node()), i);
        co_await e.crl.endRead(partRid(p.node()));

        std::fill(force.begin(), force.end(), 0.0);
        std::uint64_t interactions = 0;

        // Pairwise short-range forces against every partition
        // (including our own).
        for (NodeId o = 0; o < nnodes; ++o) {
            co_await e.crl.startRead(partRid(o));
            for (unsigned i = 0; i < per; ++i) {
                for (unsigned j = 0; j < per; ++j) {
                    if (o == p.node() && i == j)
                        continue;
                    const double dx =
                        mine[i * 3] -
                        e.crl.readDouble(partRid(o), j * 3);
                    const double dy =
                        mine[i * 3 + 1] -
                        e.crl.readDouble(partRid(o), j * 3 + 1);
                    const double dz =
                        mine[i * 3 + 2] -
                        e.crl.readDouble(partRid(o), j * 3 + 2);
                    const double r2 = dx * dx + dy * dy + dz * dz;
                    if (r2 > cutoff2 || r2 == 0.0)
                        continue;
                    ++interactions;
                    const double f = 1.0 / (r2 * r2) - 0.5 / r2;
                    force[i * 3] += f * dx;
                    force[i * 3 + 1] += f * dy;
                    force[i * 3 + 2] += f * dz;
                }
            }
            co_await e.crl.endRead(partRid(o));
            // Charge the scan cost for this partition as it is
            // processed, so communication and compute interleave.
            (void)interactions;
            co_await p.compute(cfg.cyclesPerPair * per * per);
            interactions = 0;
        }

        // Integrate and publish the new positions.
        co_await e.crl.startWrite(partRid(p.node()));
        for (unsigned i = 0; i < per * 3; ++i) {
            vel[i] = 0.9 * vel[i] + 0.001 * force[i];
            const double x =
                e.crl.readDouble(partRid(p.node()), i) + vel[i];
            e.crl.writeDouble(partRid(p.node()), i, x);
        }
        co_await e.crl.endWrite(partRid(p.node()));
        co_await e.barrier.wait();
    }
}

} // namespace

AppBody
makeWaterApp(unsigned nnodes, WaterAppConfig cfg)
{
    return [nnodes, cfg](glaze::Process &p) {
        return waterMain(p, nnodes, cfg);
    };
}

} // namespace fugu::apps
