#include "apps/workloads.hh"

#include <cmath>
#include <vector>

namespace fugu::apps
{

namespace
{

/** Deterministic, diagonally dominant test matrix. */
double
matrixEntry(unsigned n, unsigned r, unsigned c)
{
    const double base =
        static_cast<double>((r * 31 + c * 17 + 3) % 19) - 9.0;
    return r == c ? base + 2.0 * n : base;
}

struct LuGrid
{
    LuGrid(unsigned n, unsigned bs, unsigned nnodes)
        : n(n), bs(bs), blocks(n / bs), nodes(nnodes)
    {
        fugu_assert(n % bs == 0, "matrix not divisible into blocks");
    }

    crl::Rid rid(unsigned bi, unsigned bj) const
    {
        return bi * blocks + bj;
    }

    /** Block-cyclic ownership over nodes. */
    NodeId
    owner(unsigned bi, unsigned bj) const
    {
        return static_cast<NodeId>((bi + bj * blocks) % nodes);
    }

    unsigned n, bs, blocks, nodes;
};

/** Copy a region into a dense local block (inside a read section). */
std::vector<double>
loadBlock(crl::Crl &crl, crl::Rid rid, unsigned bs)
{
    std::vector<double> blk(bs * bs);
    for (unsigned i = 0; i < bs * bs; ++i)
        blk[i] = crl.readDouble(rid, i);
    return blk;
}

void
storeBlock(crl::Crl &crl, crl::Rid rid, const std::vector<double> &blk)
{
    for (unsigned i = 0; i < blk.size(); ++i)
        crl.writeDouble(rid, i, blk[i]);
}

exec::CoTask<void>
luMain(glaze::Process &p, unsigned nnodes, LuAppConfig cfg,
       LuResult *result)
{
    AppEnv &e = env(p, nnodes, cfg.seed);
    const LuGrid g(cfg.n, cfg.blockSize, nnodes);
    const unsigned bs = g.bs;
    const Cycle flop = cfg.cyclesPerFlop;

    for (unsigned bi = 0; bi < g.blocks; ++bi)
        for (unsigned bj = 0; bj < g.blocks; ++bj)
            e.crl.createRegion(g.rid(bi, bj), g.owner(bi, bj),
                               2 * bs * bs);

    // Initialize owned blocks with the test matrix.
    for (unsigned bi = 0; bi < g.blocks; ++bi) {
        for (unsigned bj = 0; bj < g.blocks; ++bj) {
            if (g.owner(bi, bj) != p.node())
                continue;
            co_await e.crl.startWrite(g.rid(bi, bj));
            for (unsigned r = 0; r < bs; ++r)
                for (unsigned c = 0; c < bs; ++c)
                    e.crl.writeDouble(g.rid(bi, bj), r * bs + c,
                                      matrixEntry(cfg.n, bi * bs + r,
                                                  bj * bs + c));
            co_await e.crl.endWrite(g.rid(bi, bj));
        }
    }
    co_await e.barrier.wait();

    for (unsigned k = 0; k < g.blocks; ++k) {
        const crl::Rid kk = g.rid(k, k);

        // Factor the diagonal block (its owner only).
        if (g.owner(k, k) == p.node()) {
            co_await e.crl.startWrite(kk);
            std::vector<double> d = loadBlock(e.crl, kk, bs);
            for (unsigned r = 0; r < bs; ++r) {
                for (unsigned i = r + 1; i < bs; ++i) {
                    const double m = d[i * bs + r] / d[r * bs + r];
                    d[i * bs + r] = m;
                    for (unsigned c = r + 1; c < bs; ++c)
                        d[i * bs + c] -= m * d[r * bs + c];
                }
            }
            storeBlock(e.crl, kk, d);
            co_await e.crl.endWrite(kk);
            co_await p.compute(flop * (2ull * bs * bs * bs) / 3);
        }
        co_await e.barrier.wait();

        // Panel updates: column blocks solve against U(k,k), row
        // blocks against L(k,k).
        for (unsigned i = k + 1; i < g.blocks; ++i) {
            if (g.owner(i, k) == p.node()) {
                const crl::Rid ik = g.rid(i, k);
                co_await e.crl.startRead(kk);
                const std::vector<double> d = loadBlock(e.crl, kk, bs);
                co_await e.crl.startWrite(ik);
                std::vector<double> a = loadBlock(e.crl, ik, bs);
                // Solve X * U = A, row by row.
                for (unsigned r = 0; r < bs; ++r) {
                    for (unsigned c = 0; c < bs; ++c) {
                        double s = a[r * bs + c];
                        for (unsigned m = 0; m < c; ++m)
                            s -= a[r * bs + m] * d[m * bs + c];
                        a[r * bs + c] = s / d[c * bs + c];
                    }
                }
                storeBlock(e.crl, ik, a);
                co_await e.crl.endWrite(ik);
                co_await e.crl.endRead(kk);
                co_await p.compute(flop * bs * bs * bs);
            }
            if (g.owner(k, i) == p.node()) {
                const crl::Rid ki = g.rid(k, i);
                co_await e.crl.startRead(kk);
                const std::vector<double> d = loadBlock(e.crl, kk, bs);
                co_await e.crl.startWrite(ki);
                std::vector<double> a = loadBlock(e.crl, ki, bs);
                // Solve L * X = A, column by column (L unit lower).
                for (unsigned c = 0; c < bs; ++c) {
                    for (unsigned r = 0; r < bs; ++r) {
                        double s = a[r * bs + c];
                        for (unsigned m = 0; m < r; ++m)
                            s -= d[r * bs + m] * a[m * bs + c];
                        a[r * bs + c] = s;
                    }
                }
                storeBlock(e.crl, ki, a);
                co_await e.crl.endWrite(ki);
                co_await e.crl.endRead(kk);
                co_await p.compute(flop * bs * bs * bs);
            }
        }
        co_await e.barrier.wait();

        // Trailing submatrix update.
        for (unsigned i = k + 1; i < g.blocks; ++i) {
            for (unsigned j = k + 1; j < g.blocks; ++j) {
                if (g.owner(i, j) != p.node())
                    continue;
                const crl::Rid ik = g.rid(i, k);
                const crl::Rid kj = g.rid(k, j);
                const crl::Rid ij = g.rid(i, j);
                co_await e.crl.startRead(ik);
                const std::vector<double> l = loadBlock(e.crl, ik, bs);
                co_await e.crl.endRead(ik);
                co_await e.crl.startRead(kj);
                const std::vector<double> u = loadBlock(e.crl, kj, bs);
                co_await e.crl.endRead(kj);
                co_await e.crl.startWrite(ij);
                std::vector<double> a = loadBlock(e.crl, ij, bs);
                for (unsigned r = 0; r < bs; ++r)
                    for (unsigned m = 0; m < bs; ++m) {
                        const double lv = l[r * bs + m];
                        for (unsigned c = 0; c < bs; ++c)
                            a[r * bs + c] -= lv * u[m * bs + c];
                    }
                storeBlock(e.crl, ij, a);
                co_await e.crl.endWrite(ij);
                co_await p.compute(flop * 2ull * bs * bs * bs);
            }
        }
        co_await e.barrier.wait();
    }

    // Spot-check the factorization on node 0: reconstruct entries of
    // L*U and compare against the original matrix.
    if (result && p.node() == 0) {
        double max_resid = 0.0;
        Rng check_rng(cfg.seed + 12345);
        for (int t = 0; t < 16; ++t) {
            const unsigned r =
                static_cast<unsigned>(check_rng.uniform(0, cfg.n - 1));
            const unsigned c =
                static_cast<unsigned>(check_rng.uniform(0, cfg.n - 1));
            double sum = 0.0;
            const unsigned limit = std::min(r, c);
            for (unsigned m = 0; m <= limit; ++m) {
                // L(r,m) (unit diagonal) * U(m,c)
                double lv;
                if (m == r) {
                    lv = 1.0;
                } else {
                    const crl::Rid lr = g.rid(r / bs, m / bs);
                    co_await e.crl.startRead(lr);
                    lv = e.crl.readDouble(lr,
                                          (r % bs) * bs + (m % bs));
                    co_await e.crl.endRead(lr);
                }
                const crl::Rid ur = g.rid(m / bs, c / bs);
                co_await e.crl.startRead(ur);
                const double uv =
                    e.crl.readDouble(ur, (m % bs) * bs + (c % bs));
                co_await e.crl.endRead(ur);
                sum += lv * uv;
            }
            max_resid = std::max(
                max_resid, std::fabs(sum - matrixEntry(cfg.n, r, c)));
        }
        result->maxResidual = max_resid;
    }
    co_await e.barrier.wait();
}

} // namespace

AppBody
makeLuApp(unsigned nnodes, LuAppConfig cfg, LuResult *result)
{
    return [nnodes, cfg, result](glaze::Process &p) {
        return luMain(p, nnodes, cfg, result);
    };
}

} // namespace fugu::apps
