#include "apps/workloads.hh"

#include <cmath>
#include <vector>

namespace fugu::apps
{

namespace
{

/** Region ids: body partitions and per-node center-of-mass summaries. */
crl::Rid
bodiesRid(NodeId n)
{
    return 2000 + n;
}

crl::Rid
summaryRid(NodeId n)
{
    return 2100 + n;
}

exec::CoTask<void>
barnesMain(glaze::Process &p, unsigned nnodes, BarnesAppConfig cfg)
{
    AppEnv &e = env(p, nnodes, cfg.seed);
    const unsigned per = (cfg.bodies + nnodes - 1) / nnodes;
    const double theta_near = 1; // ring distance treated in detail

    for (NodeId n = 0; n < nnodes; ++n) {
        e.crl.createRegion(bodiesRid(n), n, 2 * per * 4); // x,y,z,m
        e.crl.createRegion(summaryRid(n), n, 2 * 4);
    }

    // Deterministic Plummer-ish sphere of bodies.
    co_await e.crl.startWrite(bodiesRid(p.node()));
    for (unsigned i = 0; i < per; ++i) {
        const unsigned gi = p.node() * per + i;
        const double u = std::fmod(gi * 0.754877666246693, 1.0);
        const double v = std::fmod(gi * 0.569840290998053, 1.0);
        const double w = std::fmod(gi * 0.362436069989013, 1.0);
        const double rr = std::pow(u + 0.05, 1.0 / 3.0);
        const double th = 2.0 * 3.141592653589793 * v;
        const double ph = std::acos(2.0 * w - 1.0);
        e.crl.writeDouble(bodiesRid(p.node()), i * 4 + 0,
                          rr * std::sin(ph) * std::cos(th));
        e.crl.writeDouble(bodiesRid(p.node()), i * 4 + 1,
                          rr * std::sin(ph) * std::sin(th));
        e.crl.writeDouble(bodiesRid(p.node()), i * 4 + 2,
                          rr * std::cos(ph));
        e.crl.writeDouble(bodiesRid(p.node()), i * 4 + 3, 1.0);
    }
    co_await e.crl.endWrite(bodiesRid(p.node()));
    co_await e.barrier.wait();

    std::vector<double> mine(per * 4);
    std::vector<double> acc(per * 3);
    std::vector<double> vel(per * 3, 0.0);

    for (unsigned it = 0; it < cfg.iterations; ++it) {
        // Publish this partition's center-of-mass summary (the root
        // of our subtree, in Barnes-Hut terms).
        co_await e.crl.startRead(bodiesRid(p.node()));
        for (unsigned i = 0; i < per * 4; ++i)
            mine[i] = e.crl.readDouble(bodiesRid(p.node()), i);
        co_await e.crl.endRead(bodiesRid(p.node()));

        double cx = 0, cy = 0, cz = 0, cm = 0;
        for (unsigned i = 0; i < per; ++i) {
            cx += mine[i * 4] * mine[i * 4 + 3];
            cy += mine[i * 4 + 1] * mine[i * 4 + 3];
            cz += mine[i * 4 + 2] * mine[i * 4 + 3];
            cm += mine[i * 4 + 3];
        }
        co_await e.crl.startWrite(summaryRid(p.node()));
        e.crl.writeDouble(summaryRid(p.node()), 0, cx / cm);
        e.crl.writeDouble(summaryRid(p.node()), 1, cy / cm);
        e.crl.writeDouble(summaryRid(p.node()), 2, cz / cm);
        e.crl.writeDouble(summaryRid(p.node()), 3, cm);
        co_await e.crl.endWrite(summaryRid(p.node()));
        co_await e.barrier.wait();

        std::fill(acc.begin(), acc.end(), 0.0);
        std::uint64_t interactions = 0;

        for (NodeId o = 0; o < nnodes; ++o) {
            const unsigned ring = std::min<unsigned>(
                (o + nnodes - p.node()) % nnodes,
                (p.node() + nnodes - o) % nnodes);
            if (o != p.node() && ring > theta_near) {
                // Far partition: one interaction per body against the
                // partition's center of mass (the opened tree node).
                co_await e.crl.startRead(summaryRid(o));
                const double sx = e.crl.readDouble(summaryRid(o), 0);
                const double sy = e.crl.readDouble(summaryRid(o), 1);
                const double sz = e.crl.readDouble(summaryRid(o), 2);
                const double sm = e.crl.readDouble(summaryRid(o), 3);
                co_await e.crl.endRead(summaryRid(o));
                for (unsigned i = 0; i < per; ++i) {
                    const double dx = sx - mine[i * 4];
                    const double dy = sy - mine[i * 4 + 1];
                    const double dz = sz - mine[i * 4 + 2];
                    const double r2 =
                        dx * dx + dy * dy + dz * dz + 0.05;
                    const double f = sm / (r2 * std::sqrt(r2));
                    acc[i * 3] += f * dx;
                    acc[i * 3 + 1] += f * dy;
                    acc[i * 3 + 2] += f * dz;
                    ++interactions;
                }
            } else {
                // Near partition (or our own): body-by-body.
                co_await e.crl.startRead(bodiesRid(o));
                for (unsigned j = 0; j < per; ++j) {
                    const double bx =
                        e.crl.readDouble(bodiesRid(o), j * 4);
                    const double by =
                        e.crl.readDouble(bodiesRid(o), j * 4 + 1);
                    const double bz =
                        e.crl.readDouble(bodiesRid(o), j * 4 + 2);
                    const double bm =
                        e.crl.readDouble(bodiesRid(o), j * 4 + 3);
                    for (unsigned i = 0; i < per; ++i) {
                        if (o == p.node() && i == j)
                            continue;
                        const double dx = bx - mine[i * 4];
                        const double dy = by - mine[i * 4 + 1];
                        const double dz = bz - mine[i * 4 + 2];
                        const double r2 =
                            dx * dx + dy * dy + dz * dz + 0.05;
                        const double f = bm / (r2 * std::sqrt(r2));
                        acc[i * 3] += f * dx;
                        acc[i * 3 + 1] += f * dy;
                        acc[i * 3 + 2] += f * dz;
                        ++interactions;
                    }
                }
                co_await e.crl.endRead(bodiesRid(o));
            }
            co_await p.compute(cfg.cyclesPerInteraction * interactions);
            interactions = 0;
        }

        // Advance our bodies.
        co_await e.crl.startWrite(bodiesRid(p.node()));
        for (unsigned i = 0; i < per; ++i) {
            for (unsigned d = 0; d < 3; ++d) {
                vel[i * 3 + d] += 0.001 * acc[i * 3 + d];
                mine[i * 4 + d] += vel[i * 3 + d];
                e.crl.writeDouble(bodiesRid(p.node()), i * 4 + d,
                                  mine[i * 4 + d]);
            }
        }
        co_await e.crl.endWrite(bodiesRid(p.node()));
        co_await e.barrier.wait();
    }
}

} // namespace

AppBody
makeBarnesApp(unsigned nnodes, BarnesAppConfig cfg)
{
    return [nnodes, cfg](glaze::Process &p) {
        return barnesMain(p, nnodes, cfg);
    };
}

} // namespace fugu::apps
