#include "harness/benchmain.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace fugu::harness
{

namespace
{

void
usage(const std::string &name)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --scenario=FILE   load a scenario file (repeatable)\n"
        "  --set KEY=VALUE   override one parameter (repeatable)\n"
        "  --json[=PATH]     write BENCH_%s.json (or PATH)\n"
        "  --trace=FILE      record a message-lifecycle trace\n"
        "  --trials=N        shorthand for --set harness.trials=N\n"
        "  --threads=N       worker threads (sets FUGU_THREADS)\n"
        "  --list-params     print every parameter and exit\n"
        "  --dump-config[=F] print (or write) the effective config;\n"
        "                    with =F the bench still runs, so F replays\n"
        "                    this run via --scenario=F\n",
        name.c_str(), name.c_str());
}

} // namespace

int
benchMain(const BenchSpec &spec, int argc, char **argv)
{
    BenchContext ctx(spec.name);
    if (spec.defaults)
        spec.defaults(ctx);

    // ---- CLI --------------------------------------------------------
    bool wantJson = false, listParams = false, dumpConfig = false;
    std::string jsonPath, dumpPath;
    std::string err;
    ctx.passArgv_.push_back(argv[0]);

    auto fail = [&](const std::string &msg) {
        std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                     msg.c_str());
        return 2;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        // "--flag=VALUE" or "--flag VALUE"; empty VALUE means the
        // flag was given bare.
        auto arg = [&](const char *flag, std::string *val) {
            const std::string f(flag);
            if (a == f) {
                if (val && i + 1 < argc && argv[i + 1][0] != '-')
                    *val = argv[++i];
                return true;
            }
            if (val && a.rfind(f + "=", 0) == 0) {
                *val = a.substr(f.size() + 1);
                return true;
            }
            return false;
        };

        std::string v;
        if (arg("--scenario", &v)) {
            if (v.empty())
                return fail("--scenario needs a file path");
            if (!ctx.tree.loadFile(v, &err))
                return fail(err);
        } else if (arg("--set", &v)) {
            if (!ctx.tree.setCli(v, &err))
                return fail(err);
        } else if (a == "--json" || a.rfind("--json=", 0) == 0) {
            // '='-form only: a bare --json must not swallow the next
            // argument (the default BENCH_<name>.json path is used).
            wantJson = true;
            if (a.size() > 7)
                jsonPath = a.substr(7);
        } else if (arg("--trace", &v)) {
            if (v.empty())
                return fail("--trace needs a file path");
            ctx.tracePath = v;
        } else if (arg("--trials", &v)) {
            if (v.empty())
                return fail("--trials needs a count");
            if (!ctx.tree.setCli("harness.trials=" + v, &err))
                return fail(err);
        } else if (arg("--threads", &v)) {
            if (v.empty())
                return fail("--threads needs a count");
            ::setenv("FUGU_THREADS", v.c_str(), 1);
        } else if (arg("--dump-config", &v)) {
            dumpConfig = true;
            dumpPath = v;
        } else if (arg("--list-params", nullptr)) {
            listParams = true;
        } else if (arg("--help", nullptr) || a == "-h") {
            usage(spec.name);
            return 0;
        } else if (spec.passthroughArgs) {
            ctx.passArgv_.push_back(argv[i]);
        } else {
            usage(spec.name);
            return fail("unknown argument '" + a + "'");
        }
    }
    ctx.argc = static_cast<int>(ctx.passArgv_.size());
    ctx.passArgv_.push_back(nullptr);
    ctx.argv = ctx.passArgv_.data();

    // ---- Bind + apply the tree -------------------------------------
    auto walk = [&](sim::Binder &b) {
        glaze::bindConfig(b, ctx.machine);
        glaze::bindConfig(b, ctx.gang);
        ctx.workloads.bind(b);
        {
            auto s = b.push("harness");
            b.item("trials", ctx.trials,
                   "trials (differing only in seed) averaged per data "
                   "point");
            b.item("max_cycles", ctx.maxCycles,
                   "per-run cycle budget before a run is declared "
                   "stuck",
                   "cycles");
        }
        if (spec.params)
            spec.params(b);
    };

    {
        sim::Binder apply(ctx.tree, sim::Binder::Mode::Apply);
        walk(apply);
        if (!apply.ok())
            return fail(apply.error());
        if (!ctx.tree.checkUnknown(&err))
            return fail(err + " (see --list-params)");

        if (listParams) {
            std::fputs(apply.listText().c_str(), stdout);
            return 0;
        }
    }

    // Env fallbacks keep the historical workflow working; an explicit
    // tree setting always wins so dumps replay exactly.
    if (std::getenv("FUGU_QUICK") &&
        !ctx.tree.explicitlySet("harness.trials"))
        ctx.trials = 1;
    if (std::getenv("FUGU_PAPER_SCALE") &&
        !ctx.tree.explicitlySet("workloads.paper_scale"))
        ctx.workloads.paperScale = true;
    ctx.workloads.resolvePaperScale(ctx.tree);

    ctx.machine = glaze::Machine::fix(ctx.machine);

    // ---- Effective-config dump -------------------------------------
    if (dumpConfig) {
        sim::Binder dump(ctx.tree, sim::Binder::Mode::Dump);
        walk(dump);
        if (dumpPath.empty()) {
            std::fputs(dump.dumpText().c_str(), stdout);
            return 0;
        }
        std::ofstream os(dumpPath);
        if (!os)
            return fail("cannot write config dump to '" + dumpPath +
                        "'");
        os << dump.dumpText();
    }

    if (wantJson)
        ctx.report.enable(jsonPath);

    return spec.body ? spec.body(ctx) : 0;
}

} // namespace fugu::harness
