/**
 * @file
 * BenchMain: the shared driver every bench binary runs under.
 *
 * Replaces the per-bench argv parsing with one uniform CLI:
 *
 *   --scenario=FILE   load a scenario file (repeatable; later files
 *                     override earlier ones)
 *   --set KEY=VALUE   override one parameter (repeatable; CLI beats
 *                     scenario files, which beat built-in defaults)
 *   --json[=PATH]     write the machine-readable BENCH_<name>.json
 *   --trace=FILE      record a message-lifecycle trace
 *   --trials=N        shorthand for --set harness.trials=N
 *   --threads=N       worker threads (sets FUGU_THREADS)
 *   --list-params     print every parameter (value, doc, units); exit
 *   --dump-config     print the effective post-fix tree; exit
 *   --dump-config=F   write the effective tree to F and keep running,
 *                     so one invocation yields both results and a
 *                     replayable scenario ("--scenario F" reproduces
 *                     the run bit-identically)
 *
 * A bench supplies programmatic defaults (applied before the tree so
 * scenario files and --set can override them), bench-local parameter
 * registrations (sweep axes etc.), and a body.
 */

#ifndef FUGU_HARNESS_BENCHMAIN_HH
#define FUGU_HARNESS_BENCHMAIN_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/benchjson.hh"
#include "harness/experiment.hh"
#include "sim/config.hh"

namespace fugu::harness
{

/** Everything a bench body needs, fully resolved. */
struct BenchContext
{
    explicit BenchContext(std::string name)
        : report(std::move(name))
    {
    }

    /** The raw parameter tree (for explicitlySet queries). */
    sim::Config tree;

    /** Effective machine config (post Machine::fix). */
    glaze::MachineConfig machine;

    /** Effective gang-scheduler config. */
    glaze::GangConfig gang;

    /** Workload set with effective app configs. */
    Workloads workloads;

    /** harness.trials: trials averaged per data point. */
    unsigned trials = 3;

    /** harness.max_cycles: per-run budget before "STUCK". */
    Cycle maxCycles = 100000000000ull;

    /** --trace output path ("" = tracing off). */
    std::string tracePath;

    /** --json report (disabled unless the flag was given). */
    BenchReport report;

    /** Leftover argv for passthrough benches (google-benchmark). */
    int argc = 0;
    char **argv = nullptr;
    std::vector<char *> passArgv_; ///< storage behind argv
};

struct BenchSpec
{
    /** Bench name (report file BENCH_<name>.json). */
    std::string name;

    /**
     * Leave unrecognized --flags in ctx.argc/argv instead of
     * erroring (for benches that hand argv to google-benchmark).
     */
    bool passthroughArgs = false;

    /** Adjust programmatic defaults before the tree is applied. */
    std::function<void(BenchContext &)> defaults;

    /** Register bench-local parameters (sweep axes etc.). */
    std::function<void(sim::Binder &)> params;

    /** The bench body. @return the process exit code. */
    std::function<int(BenchContext &)> body;
};

/** Run a bench under the shared driver. @return process exit code. */
int benchMain(const BenchSpec &spec, int argc, char **argv);

} // namespace fugu::harness

#endif // FUGU_HARNESS_BENCHMAIN_HH
