/**
 * @file
 * Experiment harness shared by the bench/ binaries: builds machines,
 * runs jobs standalone or multiprogrammed against a null application
 * with a skewed gang schedule, runs trials, and aggregates the
 * statistics the paper's tables and figures report.
 */

#ifndef FUGU_HARNESS_EXPERIMENT_HH
#define FUGU_HARNESS_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "apps/adversary.hh"
#include "apps/workloads.hh"
#include "glaze/machine.hh"
#include "trace/export.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace fugu::harness
{

/** Builds the application body for a machine of @p nnodes nodes. */
using AppFactory =
    std::function<glaze::AppBody(unsigned nnodes, std::uint64_t seed)>;

/** Aggregate statistics of one run (the measured job only). */
struct RunStats
{
    Cycle runtime = 0;          ///< job start to completion
    std::uint64_t sent = 0;     ///< messages injected by the job
    double direct = 0;          ///< handled via the fast path
    double buffered = 0;        ///< handled via the buffered path
    double bufferedPct = 0;     ///< 100*buffered/(direct+buffered)
    double tBetween = 0;        ///< cycles*nodes/messages (Table 6)
    double tHand = 0;           ///< mean handler occupancy (Table 6)
    unsigned maxVbufPages = 0;  ///< peak buffer pages on any node
    double overflowEvents = 0;  ///< overflow-control activations
    double atomicityTimeouts = 0;
    double bufferInserts = 0;   ///< machine-wide buffered insertions
    double violations = 0;      ///< invariant-checker total (summed,
                                ///< not averaged, across trials)
    double faultEvents = 0;     ///< injected fault events (summed)
    std::uint64_t events = 0;   ///< simulator events processed
    bool completed = false;

    /**
     * Machine-wide message-delivery latency (inject to extract),
     * split by path. Merged — not averaged — across nodes and
     * trials, so percentiles cover every sample of every trial.
     */
    HistogramData fastLatency;
    HistogramData bufLatency;

    /**
     * Bitwise equality of everything the simulation semantically
     * produced (replay verification). `events` is deliberately
     * excluded: it counts engine work — e.g. the fault subsystem's
     * bookkeeping ticks — which may differ between configs whose
     * simulated timelines are identical. Replay tests that also pin
     * the engine compare `events` explicitly.
     */
    bool
    operator==(const RunStats &o) const
    {
        return runtime == o.runtime && sent == o.sent &&
               direct == o.direct && buffered == o.buffered &&
               bufferedPct == o.bufferedPct &&
               tBetween == o.tBetween && tHand == o.tHand &&
               maxVbufPages == o.maxVbufPages &&
               overflowEvents == o.overflowEvents &&
               atomicityTimeouts == o.atomicityTimeouts &&
               bufferInserts == o.bufferInserts &&
               violations == o.violations &&
               faultEvents == o.faultEvents &&
               completed == o.completed &&
               fastLatency == o.fastLatency &&
               bufLatency == o.bufLatency;
    }
};

/**
 * One run of @p app, optionally gang-scheduled against "null". When
 * @p trace_path is non-empty, message-lifecycle tracing is enabled
 * and the trace is written there (binary) plus "<path>.json"
 * (Chrome trace-event format, Perfetto-loadable).
 */
RunStats runJob(glaze::MachineConfig mcfg, const AppFactory &app,
                bool with_null, bool gang, glaze::GangConfig gcfg,
                Cycle max_cycles = 100000000000ull,
                const std::string &trace_path = "");

/**
 * Average of @p trials runs differing only in seed. Trials run in
 * parallel on the worker pool (each builds its own machine and event
 * queue), but results are accumulated in seed order, so the returned
 * stats are bit-identical to a serial run. A non-empty @p trace_path
 * traces the first trial (deterministically, whatever FUGU_THREADS).
 */
RunStats runTrials(const glaze::MachineConfig &mcfg,
                   const AppFactory &app, bool with_null, bool gang,
                   const glaze::GangConfig &gcfg, unsigned trials,
                   Cycle max_cycles = 100000000000ull,
                   const std::string &trace_path = "");

/**
 * Per-tenant outcome of a multi-job adversarial run (runTenants).
 * Latency percentiles come from the merged trace's per-GID matched
 * inject->extract pairs, so one tenant's numbers are never polluted
 * by its neighbours' traffic the way machine-wide histograms are.
 */
struct TenantStats
{
    bool completed = false; ///< the tenant's job finished in time
    Cycle runtime = 0;      ///< job start to completion (0 if not)
    std::uint64_t sent = 0;
    double direct = 0;
    double buffered = 0;
    unsigned maxVbufPages = 0;
    trace::Summary::GidStats trace;            ///< per-path latency
    glaze::InvariantChecker::GidIsolation iso; ///< checker watermarks
};

/** Outcome of one adversarial pairing (runTenants). */
struct TenantRunStats
{
    bool completed = false; ///< the victim (jobs[0]) finished
    double violations = 0;  ///< invariant-checker total
    double holBypasses = 0; ///< DAMQ head-of-line bypasses taken
    double faultEvents = 0;
    std::uint64_t events = 0; ///< simulator events processed
    std::vector<TenantStats> tenants; ///< in job order, victim first
};

/**
 * Gang-schedule several tenants (victim first, then adversaries) on
 * one machine and run until the victim's job completes; adversaries
 * may still be mid-flight. Tracing is forced on: per-tenant latency
 * is attributed through the merged trace's per-GID breakdown.
 */
TenantRunStats
runTenants(glaze::MachineConfig mcfg,
           std::vector<std::pair<std::string, glaze::AppBody>> jobs,
           const glaze::GangConfig &gcfg,
           Cycle max_cycles = 100000000000ull);

/**
 * Worker threads used by runMany/runTrials: the FUGU_THREADS
 * environment variable if set, else the hardware concurrency.
 * FUGU_THREADS=1 forces fully serial execution.
 */
unsigned workerCount();

/**
 * Invoke @p fn(i) for every i in [0, n) on the worker pool. Calls for
 * distinct indices may run concurrently, so @p fn must only touch
 * per-index state (e.g. slot i of a pre-sized result vector). Nested
 * calls run serially on the calling worker, keeping the total thread
 * count bounded; FUGU_THREADS=1 forces fully serial execution.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/** An independent experiment: builds its own machine when invoked. */
using JobFn = std::function<RunStats()>;

/**
 * Run independent jobs on a thread pool and return their results in
 * input order. Jobs share no mutable state (each builds a private
 * Machine/EventQueue), so the result vector is bit-identical to
 * running the jobs serially. Nested calls — a job that itself calls
 * runMany or runTrials — run their sub-jobs serially on the calling
 * worker, keeping the total thread count bounded.
 */
std::vector<RunStats> runMany(std::vector<JobFn> jobs);

/**
 * The named workload set used by the Table 6 / Figure 7-8
 * experiments, plus the Section 5.2 synthetic workload. Default
 * sizes are scaled down so every bench finishes in seconds; set
 * workloads.paper_scale (or FUGU_PAPER_SCALE=1) for the paper's
 * parameters (Table 6). Every app config is a public member bound on
 * the scenario tree under apps.<name>.*, so workload parameters are
 * set from scenario files and --set like every other knob.
 */
struct Workloads
{
    Workloads(); ///< applies the scaled-down default sizes

    bool paperScale = false;

    apps::BarnesAppConfig barnes;
    apps::WaterAppConfig water;
    apps::LuAppConfig lu;
    apps::BarrierAppConfig barrier;
    apps::EnumAppConfig enumerate;
    apps::SynthAppConfig synth;

    /**
     * Adversarial-neighbor tenants (bench_isolation / bench_stress).
     * Nameable through factory() — "hog", "abuser", "squatter",
     * "covert_tx", "covert_rx" — but deliberately absent from
     * names(): the Table 6 sweeps iterate that list and adversaries
     * are not paper workloads.
     */
    apps::HogAppConfig hog;
    apps::AbuserAppConfig abuser;
    apps::SquatterAppConfig squatter;
    apps::CovertAppConfig covert;

    /** Register workloads.paper_scale and the apps.* sections. */
    void bind(sim::Binder &b);

    /**
     * With paperScale set, switch every data-set size the user did
     * not explicitly set to the paper's value (Table 6). Called by
     * benchMain after the tree is applied, before any dump, so the
     * dumped config replays identically.
     */
    void resolvePaperScale(const sim::Config &cfg);

    /** Names in the paper's order. */
    static const std::vector<std::string> &names();

    AppFactory factory(const std::string &name) const;
};

/** Simple fixed-width table printer for paper-style output. */
class TablePrinter
{
  public:
    TablePrinter(std::vector<std::string> headers,
                 std::vector<int> widths);

    void printHeader() const;
    void printRow(const std::vector<std::string> &cells) const;

    static std::string num(double v, int precision = 0);

  private:
    std::vector<std::string> headers_;
    std::vector<int> widths_;
};

} // namespace fugu::harness

#endif // FUGU_HARNESS_EXPERIMENT_HH
