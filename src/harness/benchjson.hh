/**
 * @file
 * Machine-readable bench output: every bench binary accepts --json
 * (or --json=PATH) and, in addition to its human-readable table,
 * writes a BENCH_<name>.json file recording the same rows plus
 * metadata. The files accumulate the repo's performance trajectory —
 * commit them alongside changes that move the numbers.
 */

#ifndef FUGU_HARNESS_BENCHJSON_HH
#define FUGU_HARNESS_BENCHJSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace fugu::harness
{

/** One typed JSON scalar (string, number, or bool). */
class JsonValue
{
  public:
    JsonValue(const char *s) : kind_(Kind::Str), repr_(s) {}
    JsonValue(std::string s) : kind_(Kind::Str), repr_(std::move(s)) {}
    JsonValue(double v);
    JsonValue(std::uint64_t v);
    JsonValue(unsigned v) : JsonValue(std::uint64_t{v}) {}
    JsonValue(int v);
    JsonValue(bool v);

    void write(std::ostream &os) const;

  private:
    enum class Kind { Str, Num, Bool };

    Kind kind_;
    std::string repr_; // numbers/bools kept preformatted, exact
};

/**
 * Collects rows of (key, value) cells and writes them as JSON when
 * enabled. Flag parsing lives in harness::benchMain (--json), which
 * calls enable(); a default-constructed report collects rows but
 * writes nothing.
 */
class BenchReport
{
  public:
    using Cell = std::pair<std::string, JsonValue>;

    /** @param name bench name; default output BENCH_<name>.json. */
    explicit BenchReport(std::string name);

    /** Turn on writing; empty @p path keeps the default file. */
    void enable(const std::string &path = "");

    /** Writes the file on destruction if --json was given. */
    ~BenchReport();

    bool enabled() const { return enabled_; }

    /** Attach run-level metadata (config, units, host note...). */
    void meta(std::string key, JsonValue value);

    /** Append one result row. */
    void row(std::vector<Cell> cells);

    /** Write now (also called by the destructor). */
    void write();

  private:
    std::string name_;
    std::string path_;
    bool enabled_ = false;
    bool written_ = false;
    std::vector<Cell> meta_;
    std::vector<std::vector<Cell>> rows_;
};

} // namespace fugu::harness

#endif // FUGU_HARNESS_BENCHJSON_HH
