#include "harness/experiment.hh"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "sim/log.hh"
#include "sim/pool.hh"
#include "trace/export.hh"

namespace fugu::harness
{

using namespace fugu::apps;
using namespace fugu::glaze;

RunStats
runJob(MachineConfig mcfg, const AppFactory &app, bool with_null,
       bool gang, GangConfig gcfg, Cycle max_cycles,
       const std::string &trace_path)
{
    if (!trace_path.empty())
        mcfg.trace.enabled = true;
    Machine m(mcfg);
    Job *job =
        m.addJob("app", app(mcfg.nodes, mcfg.seed));
    if (with_null)
        m.addJob("null", makeNullApp());
    if (gang) {
        m.startGang(gcfg);
    } else {
        fugu_assert(!with_null, "null app needs the gang scheduler");
        m.installJob(job);
    }

    RunStats out;
    out.completed = m.runUntilDone(job, max_cycles);
    if (!trace_path.empty()) {
        std::string err;
        // With one shard the merge is a copy of the only buffer, so
        // the file's bytes match the serial build's exactly.
        const trace::TraceBuffer merged = m.mergedTrace();
        if (!trace::writeTraceFiles(trace_path, merged, &err))
            warn("trace write failed: ", err);
    }
    // Collected even for incomplete runs: a hung stress run with
    // violations should report them, not hide them.
    out.violations = m.checker()->totalViolations();
    out.events = m.eventsProcessed();
    for (const auto &f : m.allFaults()) {
        const auto &fs = f->stats;
        out.faultEvents += fs.jitteredPackets.value() +
                           fs.inputBursts.value() +
                           fs.outputBursts.value() +
                           fs.frameDenies.value() +
                           fs.divertStorms.value() +
                           fs.timeoutStorms.value() +
                           fs.handlerFaults.value();
    }
    if (!out.completed)
        return out;
    out.runtime = m.now() - job->startCycle;
    for (auto *proc : job->procs) {
        out.sent += static_cast<std::uint64_t>(proc->stats.sent.value());
        out.direct += proc->stats.directDelivered.value();
        out.buffered += proc->stats.bufferedDelivered.value();
        out.maxVbufPages =
            std::max(out.maxVbufPages,
                     static_cast<unsigned>(
                         proc->vbuf().stats.peakPages.value()));
    }
    const double handled = out.direct + out.buffered;
    out.bufferedPct = handled > 0 ? 100.0 * out.buffered / handled : 0;
    out.tBetween =
        out.sent
            ? static_cast<double>(out.runtime) * mcfg.nodes / out.sent
            : 0;
    double hand_sum = 0;
    std::uint64_t hand_n = 0;
    for (auto *proc : job->procs) {
        hand_sum += proc->stats.handlerCycles.sum();
        hand_n += proc->stats.handlerCycles.count();
    }
    out.tHand = hand_n ? hand_sum / hand_n : 0;
    for (auto &node : m.nodes) {
        out.overflowEvents += node.kernel.stats.overflowEvents.value();
        out.atomicityTimeouts += node.ni.stats.atomicityTimeouts.value();
        out.bufferInserts += node.kernel.stats.bufferInserts.value();
        out.fastLatency.merge(node.ni.stats.fastLatency.data());
        out.bufLatency.merge(node.kernel.stats.bufLatency.data());
    }
    return out;
}

TenantRunStats
runTenants(MachineConfig mcfg,
           std::vector<std::pair<std::string, AppBody>> jobs,
           const GangConfig &gcfg, Cycle max_cycles)
{
    fugu_assert(!jobs.empty());
    // Per-tenant latency attribution needs the trace's per-GID
    // extract records; unbounded retention so no inject is lost to
    // ring wrap-around mid-run.
    mcfg.trace.enabled = true;
    mcfg.trace.maxEvents = 0;
    Machine m(mcfg);
    std::vector<Job *> handles;
    handles.reserve(jobs.size());
    for (auto &[name, body] : jobs)
        handles.push_back(m.addJob(name, std::move(body)));
    m.startGang(gcfg);

    TenantRunStats out;
    out.completed = m.runUntilDone(handles[0], max_cycles);
    out.violations = m.checker()->totalViolations();
    out.holBypasses = m.net.stats.headOfLineBypasses.value();
    out.events = m.eventsProcessed();
    for (const auto &f : m.allFaults()) {
        const auto &fs = f->stats;
        out.faultEvents += fs.jitteredPackets.value() +
                           fs.inputBursts.value() +
                           fs.outputBursts.value() +
                           fs.frameDenies.value() +
                           fs.divertStorms.value() +
                           fs.timeoutStorms.value() +
                           fs.handlerFaults.value();
    }

    const trace::TraceBuffer merged = m.mergedTrace();
    std::vector<trace::TraceEvent> events;
    events.reserve(merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i)
        events.push_back(merged[i]);
    const trace::Summary sum = trace::summarize(events);

    for (Job *job : handles) {
        TenantStats t;
        t.completed = job->done();
        if (t.completed)
            t.runtime = job->endCycle - job->startCycle;
        for (auto *proc : job->procs) {
            t.sent +=
                static_cast<std::uint64_t>(proc->stats.sent.value());
            t.direct += proc->stats.directDelivered.value();
            t.buffered += proc->stats.bufferedDelivered.value();
            t.maxVbufPages =
                std::max(t.maxVbufPages,
                         static_cast<unsigned>(
                             proc->vbuf().stats.peakPages.value()));
        }
        for (const auto &g : sum.byGid)
            if (g.gid == job->gid())
                t.trace = g;
        t.iso = m.checker()->isolation(job->gid());
        out.tenants.push_back(std::move(t));
    }
    return out;
}

unsigned
workerCount()
{
    return sim::defaultWorkerThreads();
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    const unsigned nthreads =
        static_cast<unsigned>(std::min<std::size_t>(workerCount(), n));
    // The worker flag is shared with the Machine's bound-weave pool:
    // a Machine built inside a trial worker stays serial-fallback,
    // and a parallelFor issued from a pool worker runs inline.
    if (sim::onWorkerThread() || nthreads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    sim::WorkerPool pool(nthreads - 1);
    sim::setWorkerThread(true); // the calling thread participates
    pool.run(n, fn);
    sim::setWorkerThread(false);
}

std::vector<RunStats>
runMany(std::vector<JobFn> jobs)
{
    std::vector<RunStats> out(jobs.size());
    parallelFor(jobs.size(),
                [&](std::size_t i) { out[i] = jobs[i](); });
    return out;
}

RunStats
runTrials(const MachineConfig &mcfg, const AppFactory &app,
          bool with_null, bool gang, const GangConfig &gcfg,
          unsigned trials, Cycle max_cycles,
          const std::string &trace_path)
{
    fugu_assert(trials >= 1);
    std::vector<JobFn> jobs;
    jobs.reserve(trials);
    for (unsigned t = 0; t < trials; ++t) {
        MachineConfig cfg = mcfg;
        cfg.seed = mcfg.seed + 1000003ull * t;
        // Trace the first trial only: one machine, one recorder, so
        // the file's bytes do not depend on trial interleaving.
        const std::string tp = t == 0 ? trace_path : std::string();
        jobs.push_back(
            [cfg, &app, with_null, gang, gcfg, max_cycles, tp] {
                return runJob(cfg, app, with_null, gang, gcfg,
                              max_cycles, tp);
            });
    }
    std::vector<RunStats> results = runMany(std::move(jobs));

    // Accumulate in seed order so the averages are bit-identical to a
    // serial run (including the partial sums a failed run leaves).
    RunStats acc;
    acc.completed = true;
    for (unsigned t = 0; t < trials; ++t) {
        const RunStats &r = results[t];
        acc.violations += r.violations;
        acc.faultEvents += r.faultEvents;
        if (!r.completed) {
            acc.completed = false;
            return acc;
        }
        acc.runtime += r.runtime;
        acc.events += r.events;
        acc.sent += r.sent;
        acc.direct += r.direct;
        acc.buffered += r.buffered;
        acc.bufferedPct += r.bufferedPct;
        acc.tBetween += r.tBetween;
        acc.tHand += r.tHand;
        acc.maxVbufPages = std::max(acc.maxVbufPages, r.maxVbufPages);
        acc.overflowEvents += r.overflowEvents;
        acc.atomicityTimeouts += r.atomicityTimeouts;
        acc.bufferInserts += r.bufferInserts;
        // Histograms merge, not average: percentiles then cover every
        // sample of every trial instead of only the last one.
        acc.fastLatency.merge(r.fastLatency);
        acc.bufLatency.merge(r.bufLatency);
    }
    acc.runtime /= trials;
    acc.events /= trials;
    acc.sent /= trials;
    acc.direct /= trials;
    acc.buffered /= trials;
    acc.bufferedPct /= trials;
    acc.tBetween /= trials;
    acc.tHand /= trials;
    acc.overflowEvents /= trials;
    acc.atomicityTimeouts /= trials;
    acc.bufferInserts /= trials;
    return acc;
}

Workloads::Workloads()
{
    // Scaled-down defaults: every bench finishes in seconds.
    barnes.bodies = 256;
    water.molecules = 128;
    lu.n = 128;
    lu.blockSize = 16;
    barrier.barriers = 1500;
    enumerate.side = 5;
    enumerate.maxStatesPerNode = 0;
}

void
Workloads::bind(sim::Binder &b)
{
    {
        auto s = b.push("workloads");
        b.item("paper_scale", paperScale,
               "use the paper's data-set sizes (Table 6) for every "
               "size the scenario does not set explicitly");
    }
    auto s = b.push("apps");
    {
        auto s2 = b.push("barnes");
        apps::bindConfig(b, barnes);
    }
    {
        auto s2 = b.push("water");
        apps::bindConfig(b, water);
    }
    {
        auto s2 = b.push("lu");
        apps::bindConfig(b, lu);
    }
    {
        auto s2 = b.push("barrier");
        apps::bindConfig(b, barrier);
    }
    {
        auto s2 = b.push("enum");
        apps::bindConfig(b, enumerate);
    }
    {
        auto s2 = b.push("synth");
        apps::bindConfig(b, synth);
    }
    {
        auto s2 = b.push("hog");
        apps::bindConfig(b, hog);
    }
    {
        auto s2 = b.push("abuser");
        apps::bindConfig(b, abuser);
    }
    {
        auto s2 = b.push("squatter");
        apps::bindConfig(b, squatter);
    }
    {
        auto s2 = b.push("covert");
        apps::bindConfig(b, covert);
    }
}

void
Workloads::resolvePaperScale(const sim::Config &cfg)
{
    if (!paperScale)
        return;
    auto scale = [&cfg](const char *key, auto &field, auto paper) {
        if (!cfg.explicitlySet(key))
            field = paper;
    };
    scale("apps.barnes.bodies", barnes.bodies, 2048u);
    scale("apps.water.molecules", water.molecules, 512u);
    scale("apps.lu.n", lu.n, 250u);
    scale("apps.lu.block_size", lu.blockSize, 25u);
    scale("apps.barrier.barriers", barrier.barriers, 10000u);
    scale("apps.enum.side", enumerate.side, 6u);
    // The full 6-a-side puzzle is enormous; the paper's run is
    // bounded too (610k messages). Cap per-node expansion so the
    // workload stays fine-grain but finite.
    scale("apps.enum.max_states_per_node",
          enumerate.maxStatesPerNode, std::uint64_t{80000});
}

const std::vector<std::string> &
Workloads::names()
{
    static const std::vector<std::string> kNames{
        "barnes", "water", "lu", "barrier", "enum"};
    return kNames;
}

AppFactory
Workloads::factory(const std::string &name) const
{
    if (name == "barnes") {
        return [cfg = barnes](unsigned n, std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeBarnesApp(n, cfg);
        };
    }
    if (name == "water") {
        return [cfg = water](unsigned n, std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeWaterApp(n, cfg);
        };
    }
    if (name == "lu") {
        return [cfg = lu](unsigned n, std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeLuApp(n, cfg);
        };
    }
    if (name == "barrier") {
        return [cfg = barrier](unsigned n, std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeBarrierApp(n, cfg);
        };
    }
    if (name == "enum") {
        return [cfg = enumerate](unsigned n,
                                 std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeEnumApp(n, cfg, nullptr);
        };
    }
    if (name == "synth") {
        return [cfg = synth](unsigned n, std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeSynthApp(n, cfg);
        };
    }
    if (name == "hog") {
        return [cfg = hog](unsigned n, std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeHogApp(n, cfg);
        };
    }
    if (name == "abuser") {
        return [cfg = abuser](unsigned n, std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeAbuserApp(n, cfg);
        };
    }
    if (name == "squatter") {
        return [cfg = squatter](unsigned n,
                                std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeSquatterApp(n, cfg);
        };
    }
    if (name == "covert_tx") {
        return [cfg = covert](unsigned n, std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeCovertTxApp(n, cfg);
        };
    }
    if (name == "covert_rx") {
        return [cfg = covert](unsigned n, std::uint64_t seed) mutable {
            cfg.seed = seed;
            return makeCovertRxApp(n, cfg, nullptr);
        };
    }
    fugu_fatal("unknown workload '", name, "'");
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths))
{
    fugu_assert(headers_.size() == widths_.size());
}

void
TablePrinter::printHeader() const
{
    printRow(headers_);
    std::string rule;
    for (int w : widths_)
        rule += std::string(static_cast<std::size_t>(w), '-') + "  ";
    std::cout << rule << "\n";
}

void
TablePrinter::printRow(const std::vector<std::string> &cells) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::string c = cells[i];
        const int w = i < widths_.size() ? widths_[i] : 12;
        if (static_cast<int>(c.size()) < w)
            c += std::string(w - c.size(), ' ');
        os << c << "  ";
    }
    std::cout << os.str() << "\n";
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace fugu::harness
