#include "harness/benchjson.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "sim/log.hh"

namespace fugu::harness
{

namespace
{

std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    // Round-trippable and exact for integers up to 2^53.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) {
        // Prefer the shortest representation that still round-trips.
        for (int prec = 1; prec < 17; ++prec) {
            char s[40];
            std::snprintf(s, sizeof(s), "%.*g", prec, v);
            std::sscanf(s, "%lf", &back);
            if (back == v)
                return s;
        }
    }
    return buf;
}

} // namespace

JsonValue::JsonValue(double v) : kind_(Kind::Num), repr_(formatDouble(v))
{
}

JsonValue::JsonValue(std::uint64_t v)
    : kind_(Kind::Num), repr_(std::to_string(v))
{
}

JsonValue::JsonValue(int v) : kind_(Kind::Num), repr_(std::to_string(v))
{
}

JsonValue::JsonValue(bool v)
    : kind_(Kind::Bool), repr_(v ? "true" : "false")
{
}

void
JsonValue::write(std::ostream &os) const
{
    if (kind_ != Kind::Str) {
        os << repr_;
        return;
    }
    os << '"';
    for (char c : repr_) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), path_("BENCH_" + name_ + ".json")
{
}

void
BenchReport::enable(const std::string &path)
{
    enabled_ = true;
    if (!path.empty())
        path_ = path;
}

BenchReport::~BenchReport()
{
    write();
}

void
BenchReport::meta(std::string key, JsonValue value)
{
    meta_.emplace_back(std::move(key), std::move(value));
}

void
BenchReport::row(std::vector<Cell> cells)
{
    rows_.push_back(std::move(cells));
}

void
BenchReport::write()
{
    if (!enabled_ || written_)
        return;
    written_ = true;
    std::ofstream os(path_);
    if (!os) {
        warn("cannot write bench report to '", path_, "'");
        return;
    }
    auto writeCells = [&os](const std::vector<Cell> &cells,
                            const char *indent) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << indent;
            JsonValue(cells[i].first).write(os);
            os << ": ";
            cells[i].second.write(os);
            os << (i + 1 < cells.size() ? ",\n" : "\n");
        }
    };
    os << "{\n  \"bench\": ";
    JsonValue(name_).write(os);
    os << ",\n  \"meta\": {\n";
    writeCells(meta_, "    ");
    os << "  },\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << "    {\n";
        writeCells(rows_[r], "      ");
        os << (r + 1 < rows_.size() ? "    },\n" : "    }\n");
    }
    os << "  ]\n}\n";
}

} // namespace fugu::harness
