#include "exec/cpu.hh"

#include "sim/log.hh"

namespace fugu::exec
{

const char *
toString(CtxState s)
{
    switch (s) {
      case CtxState::Unstarted: return "Unstarted";
      case CtxState::Active: return "Active";
      case CtxState::Frozen: return "Frozen";
      case CtxState::Ready: return "Ready";
      case CtxState::Blocked: return "Blocked";
      case CtxState::Finished: return "Finished";
    }
    return "?";
}

Context::Context(Cpu *cpu, std::string name, bool kernel, Task task)
    : cpu_(cpu), name_(std::move(name)), kernel_(kernel),
      task_(std::move(task))
{
    fugu_assert(task_.valid(), "context '", name_, "' needs a coroutine");
    task_.handle().promise().ctx = this;
    cpu_->linkContext(this);
}

Context::~Context()
{
    if (ctxListed_)
        cpu_->unlinkContext(this);
}

std::coroutine_handle<>
Task::promise_type::FinalAwaiter::await_suspend(Handle h) noexcept
{
    Context *ctx = h.promise().ctx;
    // A bug here would throw from a noexcept context and terminate,
    // which is an acceptable response to a corrupted simulation.
    ctx->cpu()->onFinished(ctx);
    return std::noop_coroutine();
}

Cpu::Stats::Stats(StatGroup *parent, NodeId id)
    : group("cpu" + std::to_string(id), parent),
      userCycles(&group, "user_cycles", "cycles spent in user contexts"),
      kernelCycles(&group, "kernel_cycles",
                   "cycles spent in kernel contexts"),
      irqsTaken(&group, "irqs_taken", "interrupt handlers dispatched"),
      trapsTaken(&group, "traps_taken", "traps taken"),
      contextsSpawned(&group, "contexts_spawned", "contexts created"),
      preemptions(&group, "preemptions",
                  "user contexts frozen by interrupts")
{
}

Cpu::Cpu(EventQueue &eq, NodeId id, StatGroup *stat_parent)
    : stats(stat_parent, id), eq_(eq), id_(id),
      irqHandlers_(kNumIrqLines), irqPulse_(kNumIrqLines, false),
      trapHandlers_(kNumTrapVectors)
{
}

Cpu::~Cpu()
{
    destroyParkedContexts();
}

void
Cpu::linkContext(Context *ctx)
{
    ctx->ctxNext_ = ctxHead_;
    if (ctxHead_)
        ctxHead_->ctxPrev_ = ctx;
    ctxHead_ = ctx;
    ctx->ctxListed_ = true;
}

void
Cpu::unlinkContext(Context *ctx)
{
    if (ctx->ctxPrev_)
        ctx->ctxPrev_->ctxNext_ = ctx->ctxNext_;
    else
        ctxHead_ = ctx->ctxNext_;
    if (ctx->ctxNext_)
        ctx->ctxNext_->ctxPrev_ = ctx->ctxPrev_;
    ctx->ctxPrev_ = ctx->ctxNext_ = nullptr;
    ctx->ctxListed_ = false;
}

void
Cpu::destroyParkedContexts()
{
    // Drop the Cpu's own references first so frame destruction below
    // observes the final ownership graph.
    current_.reset();
    pendingReturn_.reset();
    retired_.reset();
    spend_.ctx.reset();
    timer_.cb = nullptr;

    // Destroy the frame of every context suspended mid-coroutine.
    // Each destruction can release ContextPtrs that in turn destroy
    // other contexts (unlinking them), so restart the scan after
    // every mutation rather than walking a possibly-stale chain.
    bool progress = true;
    while (progress) {
        progress = false;
        for (Context *c = ctxHead_; c; c = c->ctxNext_) {
            if (!c->task_.valid() || c->finished())
                continue;
            // Keep the context alive across the frame destruction:
            // the frame may hold the last ContextPtr to it, and
            // re-entering ~Context mid-assignment would be UB.
            ContextPtr keep = c->shared_from_this();
            c->state_ = CtxState::Finished;
            c->task_ = Task();
            progress = true;
            break;
        }
    }

    // Unregister survivors (contexts still referenced by outside
    // owners) so their eventual destruction does not touch this Cpu.
    for (Context *c = ctxHead_; c;) {
        Context *next = c->ctxNext_;
        c->ctxPrev_ = c->ctxNext_ = nullptr;
        c->ctxListed_ = false;
        c = next;
    }
    ctxHead_ = nullptr;
}

void
Cpu::setIrqHandler(unsigned line, IrqHandlerFactory factory, bool pulse)
{
    fugu_assert(line < kNumIrqLines, "bad irq line ", line);
    irqHandlers_[line] = std::move(factory);
    irqPulse_[line] = pulse;
}

void
Cpu::setTrapHandler(unsigned vec, TrapHandlerFactory factory)
{
    fugu_assert(vec < kNumTrapVectors, "bad trap vector ", vec);
    trapHandlers_[vec] = std::move(factory);
}

void
Cpu::setIdleHook(std::function<void()> hook)
{
    idleHook_ = std::move(hook);
}

Cycle
Cpu::userCycles() const
{
    Cycle c = userCycles_;
    if (spend_.active && spend_.ctx->preemptible())
        c += eq_.now() - spend_.start;
    return c;
}

// ---------------------------------------------------------------------
// Device interface
// ---------------------------------------------------------------------

void
Cpu::raiseIrq(unsigned line)
{
    fugu_assert(line < kNumIrqLines);
    pendingIrqs_ |= 1u << line;
    if (current_) {
        if (current_->preemptible() && spend_.active &&
            spend_.ctx == current_) {
            // Preempt the user context in the middle of its spend.
            ++stats.preemptions;
            ContextPtr victim = current_;
            preemptCurrent();
            int l = pendingIrqLine();
            fugu_assert(l >= 0);
            dispatchIrq(static_cast<unsigned>(l), victim);
        }
        // Otherwise: kernel context running, or a user context is
        // between spends (its C++ code is on the call stack right
        // now). The line stays pending; it is re-checked when the
        // context next begins a spend, or at the next dispatch
        // decision.
    } else {
        requestDispatch();
    }
}

void
Cpu::lowerIrq(unsigned line)
{
    fugu_assert(line < kNumIrqLines);
    pendingIrqs_ &= ~(1u << line);
}

bool
Cpu::irqRaised(unsigned line) const
{
    fugu_assert(line < kNumIrqLines);
    return pendingIrqs_ & (1u << line);
}

int
Cpu::pendingIrqLine() const
{
    if (!pendingIrqs_)
        return -1;
    for (unsigned l = 0; l < kNumIrqLines; ++l)
        if (pendingIrqs_ & (1u << l))
            return static_cast<int>(l);
    return -1;
}

// ---------------------------------------------------------------------
// Context management
// ---------------------------------------------------------------------

ContextPtr
Cpu::spawn(std::string name, bool kernel, Task task)
{
    ++stats.contextsSpawned;
    return std::make_shared<Context>(this, std::move(name), kernel,
                                     std::move(task));
}

void
Cpu::switchTo(ContextPtr ctx)
{
    fugu_assert(!current_, "switchTo('", ctx->name(), "') while '",
                current_ ? current_->name() : "", "' is current");
    fugu_assert(!ctx->finished(), "switchTo a finished context '",
                ctx->name(), "'");
    int line = pendingIrqLine();
    if (ctx->preemptible() && line >= 0) {
        // Deliver the interrupt first; the handler returns to ctx.
        ++stats.preemptions;
        dispatchIrq(static_cast<unsigned>(line), std::move(ctx));
    } else {
        resumeContext(ctx);
    }
}

void
Cpu::wake(const ContextPtr &ctx)
{
    fugu_assert(ctx->state_ == CtxState::Blocked, "wake('", ctx->name(),
                "') in state ", toString(ctx->state_));
    ctx->state_ = CtxState::Ready;
}

void
Cpu::requestDispatch()
{
    if (current_ || dispatchPending_)
        return;
    dispatchPending_ = true;
    eq_.scheduleFn([this] { reschedule(); }, eq_.now(), "cpu-dispatch");
}

// ---------------------------------------------------------------------
// Awaiter entry points
// ---------------------------------------------------------------------

bool
Cpu::onSpendSuspend(Cycle n, std::coroutine_handle<> h)
{
    fugu_assert(current_, "spend() outside any context");
    ContextPtr ctx = current_;
    ctx->resumePoint_ = h;
    if (ctx->preemptible() && pendingIrqLine() >= 0) {
        // An interrupt arrived while this context executed between
        // spends; take it now, before the spend begins.
        ++stats.preemptions;
        ctx->state_ = CtxState::Frozen;
        ctx->remaining_ = n;
        current_.reset();
        dispatchIrq(static_cast<unsigned>(pendingIrqLine()),
                    std::move(ctx));
        return true;
    }
    if (n == 0)
        return false; // nothing to wait for; continue immediately
    beginSpend(n);
    return true;
}

void
Cpu::onBlockSuspend(std::coroutine_handle<> h)
{
    fugu_assert(current_, "block() outside any context");
    ContextPtr ctx = std::move(current_);
    ctx->resumePoint_ = h;
    ctx->state_ = CtxState::Blocked;
    reschedule();
}

void
Cpu::onYieldSuspend(std::coroutine_handle<> h, ContextPtr next,
                    bool block_self)
{
    fugu_assert(current_, "yieldTo() outside any context");
    fugu_assert(next && next.get() != current_.get(),
                "yieldTo self or null");
    ContextPtr ctx = std::move(current_);
    ctx->resumePoint_ = h;
    ctx->state_ = block_self ? CtxState::Blocked : CtxState::Ready;
    switchTo(std::move(next));
}

ContextPtr
Cpu::onTrapSuspend(std::coroutine_handle<> h, unsigned vec,
                   std::uint64_t arg)
{
    fugu_assert(current_, "trap() outside any context");
    fugu_assert(vec < kNumTrapVectors && trapHandlers_[vec],
                "no handler for trap vector ", vec);
    ++stats.trapsTaken;
    ContextPtr victim = std::move(current_);
    victim->resumePoint_ = h;
    victim->state_ = CtxState::Blocked;
    victim->trapArg = arg;
    ContextPtr handler =
        spawn("trap" + std::to_string(vec), /*kernel=*/true,
              trapHandlers_[vec](victim));
    handler->setReturnTo(victim);
    resumeContext(handler);
    return victim;
}

// ---------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------

void
Cpu::onFinished(Context *ctx)
{
    fugu_assert(current_.get() == ctx, "finish of non-current context");
    ctx->state_ = CtxState::Finished;
    pendingReturn_ = ctx->takeReturnTo();
    // Defer destruction: we are executing inside this context's
    // coroutine frame right now.
    retired_ = std::move(current_);
    requestDispatch();
}

void
Cpu::reschedule()
{
    dispatchPending_ = false;
    retired_.reset();
    if (current_)
        return;
    int line = pendingIrqLine();
    if (line >= 0) {
        ContextPtr ret = std::move(pendingReturn_);
        dispatchIrq(static_cast<unsigned>(line), std::move(ret));
        return;
    }
    if (pendingReturn_) {
        ContextPtr ret = std::move(pendingReturn_);
        switchTo(std::move(ret));
        return;
    }
    if (idleHook_)
        idleHook_();
}

void
Cpu::dispatchIrq(unsigned line, ContextPtr ret)
{
    fugu_assert(!current_);
    fugu_assert(irqHandlers_[line], "irq line ", line,
                " raised with no handler installed");
    if (irqPulse_[line])
        pendingIrqs_ &= ~(1u << line);
    ++stats.irqsTaken;
    FUGU_TRACE(tracer_, id_, trace::Type::IrqDispatch, 0,
               trace::DivertReason::None, line);
    ContextPtr handler = spawn("irq" + std::to_string(line),
                               /*kernel=*/true, irqHandlers_[line](line));
    handler->setReturnTo(std::move(ret));
    resumeContext(handler);
}

void
Cpu::resumeContext(const ContextPtr &ctx)
{
    fugu_assert(!current_);
    switch (ctx->state_) {
      case CtxState::Unstarted:
        ctx->state_ = CtxState::Active;
        current_ = ctx;
        scheduleResume(ctx->task_.handle(), 0, "ctx-start");
        break;
      case CtxState::Ready:
      case CtxState::Blocked:
        ctx->state_ = CtxState::Active;
        current_ = ctx;
        scheduleResume(ctx->resumePoint_, 0, "ctx-resume");
        break;
      case CtxState::Frozen: {
        Cycle rem = ctx->remaining_;
        ctx->state_ = CtxState::Active;
        ctx->remaining_ = 0;
        current_ = ctx;
        beginSpend(rem);
        break;
      }
      default:
        fugu_panic("resume of context '", ctx->name(), "' in state ",
                   toString(ctx->state_));
    }
}

void
Cpu::scheduleResume(std::coroutine_handle<> h, Cycle delay,
                    const char *why)
{
    eq_.scheduleFn([h] { h.resume(); }, eq_.now() + delay, why);
}

void
Cpu::beginSpend(Cycle n)
{
    fugu_assert(current_ && !spend_.active);
    spend_.active = true;
    spend_.ctx = current_;
    spend_.start = eq_.now();
    spend_.end = eq_.now() + n;
    spend_.endEv = eq_.scheduleFn([this] { onSpendComplete(); },
                                  spend_.end, "spend-end");
    armTimerForSpend();
}

void
Cpu::onSpendComplete()
{
    fugu_assert(spend_.active && spend_.ctx == current_);
    ContextPtr ctx = current_;
    Cycle n = spend_.end - spend_.start;
    spend_.active = false;
    spend_.ctx.reset();
    accountCycles(ctx, n);
    if (timer_.active && ctx->preemptible()) {
        // The in-spend firing event (if any) only exists for
        // deadlines strictly inside the spend; a deadline landing
        // exactly on the spend boundary fires here.
        eq_.cancelFn(timer_.ev);
        if (userCycles_ >= timer_.deadline) {
            timer_.active = false;
            auto cb = timer_.cb;
            cb(); // typically raises an IRQ; pends until next spend
        }
    }
    ctx->resumePoint_.resume();
}

void
Cpu::preemptCurrent()
{
    ContextPtr ctx = current_;
    fugu_assert(spend_.active && spend_.ctx == ctx);
    Cycle now = eq_.now();
    Cycle consumed = now - spend_.start;
    Cycle rem = spend_.end - now;
    eq_.cancelFn(spend_.endEv);
    spend_.active = false;
    spend_.ctx.reset();
    accountCycles(ctx, consumed);
    if (timer_.active)
        eq_.cancelFn(timer_.ev); // re-armed at the next user spend
    ctx->state_ = CtxState::Frozen;
    ctx->remaining_ = rem;
    current_.reset();
}

void
Cpu::accountCycles(const ContextPtr &ctx, Cycle n)
{
    if (ctx->preemptible()) {
        userCycles_ += n;
        stats.userCycles += static_cast<double>(n);
    } else {
        stats.kernelCycles += static_cast<double>(n);
    }
}

// ---------------------------------------------------------------------
// User-cycle timer
// ---------------------------------------------------------------------

void
Cpu::setUserTimer(Cycle user_cycles, std::function<void()> cb)
{
    fugu_assert(user_cycles > 0, "zero user timer");
    cancelUserTimer();
    timer_.active = true;
    timer_.deadline = userCycles() + user_cycles;
    timer_.cb = std::move(cb);
    if (spend_.active && spend_.ctx->preemptible())
        armTimerForSpend();
}

void
Cpu::cancelUserTimer()
{
    if (!timer_.active)
        return;
    eq_.cancelFn(timer_.ev);
    timer_.active = false;
    timer_.cb = nullptr;
}

Cycle
Cpu::userTimerRemaining() const
{
    if (!timer_.active)
        return 0;
    Cycle uc = userCycles();
    return timer_.deadline > uc ? timer_.deadline - uc : 0;
}

void
Cpu::armTimerForSpend()
{
    if (!timer_.active || !spend_.active || !spend_.ctx->preemptible())
        return;
    Cycle uc = userCycles(); // includes progress inside this spend
    fugu_assert(timer_.deadline > uc,
                "user timer deadline already passed");
    Cycle dist = timer_.deadline - uc;
    Cycle left = spend_.end - eq_.now();
    if (dist < left) {
        timer_.ev = eq_.scheduleFn(
            [this] {
                timer_.active = false;
                auto cb = timer_.cb;
                cb();
            },
            eq_.now() + dist, "user-timer");
    }
}

} // namespace fugu::exec
