/**
 * @file
 * Coroutine plumbing for simulated software.
 *
 * Two coroutine types are provided:
 *
 *  - Task: a top-level, detached coroutine bound to an exec::Context.
 *    Started explicitly by the Cpu; when it runs to completion the Cpu
 *    is notified so it can pick what runs next.
 *
 *  - CoTask<T>: a lazily-started, awaitable coroutine used for nested
 *    calls inside simulated code (`co_await someSubroutine()`), with
 *    symmetric transfer back to the awaiter and exception propagation.
 *
 * All simulated software (kernel handlers, user threads, upcall
 * handlers, applications) is written as coroutines built from these.
 */

#ifndef FUGU_EXEC_TASK_HH
#define FUGU_EXEC_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/log.hh"

namespace fugu::exec
{

class Context;

/**
 * Top-level coroutine for a Context. Created suspended; the Cpu
 * resumes it when the context is first dispatched. The Context owns
 * the coroutine frame and destroys it when the context dies.
 */
class Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type
    {
        /** Back-pointer set by Context when it adopts the task. */
        Context *ctx = nullptr;

        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            std::coroutine_handle<>
                await_suspend(Handle h) noexcept;
            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        /**
         * Let the exception fly out of the resume() call: it unwinds
         * through the event loop to the driver, which is the right
         * behaviour for panic/fatal raised inside simulated code.
         */
        void unhandled_exception() { throw; }
    };

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    Handle handle() const { return handle_; }
    bool valid() const { return static_cast<bool>(handle_); }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

/**
 * Awaitable nested coroutine returning T. Lazily started: execution
 * begins when awaited, and control returns to the awaiter via
 * symmetric transfer when the child completes.
 */
template <typename T>
class [[nodiscard]] CoTask;

namespace codetail
{

template <typename Derived>
struct CoPromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Derived> h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() { exception = std::current_exception(); }
};

} // namespace codetail

template <typename T>
class [[nodiscard]] CoTask
{
  public:
    struct promise_type : codetail::CoPromiseBase<promise_type>
    {
        alignas(T) unsigned char storage[sizeof(T)];
        bool hasValue = false;

        CoTask
        get_return_object()
        {
            return CoTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        template <typename U>
        void
        return_value(U &&v)
        {
            new (storage) T(std::forward<U>(v));
            hasValue = true;
        }

        ~promise_type()
        {
            if (hasValue)
                value().~T();
        }

        T &value() { return *reinterpret_cast<T *>(storage); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    explicit CoTask(Handle h) : handle_(h) {}
    CoTask(CoTask &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;
    CoTask &operator=(CoTask &&) = delete;

    ~CoTask()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    T
    await_resume()
    {
        auto &p = handle_.promise();
        if (p.exception)
            std::rethrow_exception(p.exception);
        fugu_assert(p.hasValue, "CoTask completed without a value");
        return std::move(p.value());
    }

  private:
    Handle handle_;
};

template <>
class [[nodiscard]] CoTask<void>
{
  public:
    struct promise_type : codetail::CoPromiseBase<promise_type>
    {
        CoTask
        get_return_object()
        {
            return CoTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
    };

    using Handle = std::coroutine_handle<promise_type>;

    explicit CoTask(Handle h) : handle_(h) {}
    CoTask(CoTask &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;
    CoTask &operator=(CoTask &&) = delete;

    ~CoTask()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    void
    await_resume()
    {
        auto &p = handle_.promise();
        if (p.exception)
            std::rethrow_exception(p.exception);
    }

  private:
    Handle handle_;
};

} // namespace fugu::exec

#endif // FUGU_EXEC_TASK_HH
