/**
 * @file
 * Context: a schedulable stream of execution on a simulated Cpu.
 *
 * Kernel interrupt/trap handlers, user threads and user upcall handlers
 * are all Contexts. A Context wraps a top-level Task coroutine plus the
 * bookkeeping the Cpu needs to preempt it in the middle of a cycle
 * spend ("freeze") and later resume it with the leftover cycles intact.
 */

#ifndef FUGU_EXEC_CONTEXT_HH
#define FUGU_EXEC_CONTEXT_HH

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>

#include "exec/task.hh"
#include "sim/types.hh"

namespace fugu::exec
{

class Cpu;
class Context;

using ContextPtr = std::shared_ptr<Context>;

/** Lifecycle of a Context. */
enum class CtxState
{
    Unstarted, ///< created, never dispatched
    Active,    ///< logically executing on the Cpu (incl. inside spend)
    Frozen,    ///< preempted mid-spend; `remaining` cycles still owed
    Ready,     ///< suspended at a yield point, eligible for dispatch
    Blocked,   ///< waiting for an explicit wake()
    Finished,  ///< top-level coroutine ran to completion
};

const char *toString(CtxState s);

class Context : public std::enable_shared_from_this<Context>
{
  public:
    Context(Cpu *cpu, std::string name, bool kernel, Task task);
    ~Context();

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    const std::string &name() const { return name_; }
    Cpu *cpu() const { return cpu_; }

    /** Kernel contexts are never preempted by interrupts. */
    bool isKernel() const { return kernel_; }
    bool preemptible() const { return !kernel_; }

    CtxState state() const { return state_; }
    bool finished() const { return state_ == CtxState::Finished; }

    /** Cycles still owed from a preempted spend (Frozen only). */
    Cycle remaining() const { return remaining_; }

    /**
     * Context to resume when this one finishes (set for interrupt and
     * trap handlers). A handler that wants to divert control (e.g., a
     * scheduler quantum switch) takes it with takeReturnTo().
     */
    ContextPtr returnTo() const { return returnTo_; }
    ContextPtr
    takeReturnTo()
    {
        return std::exchange(returnTo_, nullptr);
    }
    void setReturnTo(ContextPtr c) { returnTo_ = std::move(c); }

    /** Scratch value a trap handler hands back to the trapping code. */
    std::uint64_t trapResult = 0;

    /** Argument passed along with a trap. */
    std::uint64_t trapArg = 0;

  private:
    friend class Cpu;

    Cpu *cpu_;
    std::string name_;
    bool kernel_;
    Task task_;
    CtxState state_ = CtxState::Unstarted;

    /** Where to continue this context (set by awaitables on suspend). */
    std::coroutine_handle<> resumePoint_;

    /** Cycles left in the interrupted spend (valid when Frozen). */
    Cycle remaining_ = 0;

    ContextPtr returnTo_;

    /**
     * Intrusive membership in the owning Cpu's context registry, so
     * Cpu teardown can destroy the coroutine frames of contexts still
     * suspended (frames may hold ContextPtr/ThreadPtr locals forming
     * shared_ptr cycles that would otherwise never be released).
     */
    Context *ctxPrev_ = nullptr;
    Context *ctxNext_ = nullptr;
    bool ctxListed_ = false;
};

} // namespace fugu::exec

#endif // FUGU_EXEC_CONTEXT_HH
