/**
 * @file
 * Cpu: the simulated processor core that executes Contexts.
 *
 * Exactly one Context is logically running on a Cpu at any time.
 * Simulated code advances time by awaiting spend(n); interrupts raised
 * by devices preempt a preemptible (user) context *in the middle* of a
 * spend with exact cycle accounting: the context is frozen with its
 * leftover cycles and a kernel handler context is dispatched. Kernel
 * contexts run with interrupts implicitly masked (they are never
 * preempted); pending lines are re-examined whenever the Cpu has to
 * decide what to run next.
 *
 * The Cpu has no scheduling policy of its own: when a context finishes
 * or blocks and no handler/return path is pending, it consults an
 * idle hook installed by the operating system.
 */

#ifndef FUGU_EXEC_CPU_HH
#define FUGU_EXEC_CPU_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/context.hh"
#include "exec/task.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace fugu::exec
{

/** Number of interrupt lines a Cpu provides. */
inline constexpr unsigned kNumIrqLines = 8;

/** Number of trap vectors a Cpu provides. */
inline constexpr unsigned kNumTrapVectors = 16;

class Cpu
{
  public:
    /** Builds a kernel handler task for a dispatched interrupt line. */
    using IrqHandlerFactory = std::function<Task(unsigned line)>;

    /** Builds a kernel handler task for a trap taken by @p victim. */
    using TrapHandlerFactory = std::function<Task(ContextPtr victim)>;

    Cpu(EventQueue &eq, NodeId id, StatGroup *stat_parent);
    ~Cpu();

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    NodeId id() const { return id_; }
    EventQueue &eq() { return eq_; }
    Cycle now() const { return eq_.now(); }

    /// @name Wiring (done once at machine construction)
    /// @{

    /**
     * Install the kernel handler for an interrupt line. Lines are
     * level-triggered by default: the device holds the line with
     * raiseIrq until the cause is quiesced. A pulse line is
     * auto-cleared when its handler is dispatched.
     */
    void setIrqHandler(unsigned line, IrqHandlerFactory factory,
                       bool pulse = false);

    /** Install the kernel handler for a trap vector. */
    void setTrapHandler(unsigned vec, TrapHandlerFactory factory);

    /**
     * Called when the Cpu has nothing to run; typically the OS
     * dispatcher, which may call switchTo() or leave the Cpu idle.
     */
    void setIdleHook(std::function<void()> hook);

    /** Attach a message-lifecycle trace recorder (null to disable). */
    void setTracer(trace::Recorder *tracer) { tracer_ = tracer; }

    /// @}
    /// @name Device interface
    /// @{

    void raiseIrq(unsigned line);
    void lowerIrq(unsigned line);
    bool irqRaised(unsigned line) const;

    /// @}
    /// @name Context management (kernel / runtime code)
    /// @{

    /** Create a context; it does not run until switched to. */
    ContextPtr spawn(std::string name, bool kernel, Task task);

    /**
     * Make @p ctx the current context. The Cpu must be idle (no
     * current context). Valid for Unstarted, Ready, Frozen, and
     * Blocked contexts (resuming a Blocked context is how trap/upcall
     * return paths work; run-queue state is the caller's business).
     */
    void switchTo(ContextPtr ctx);

    /** Mark a Blocked context Ready (bookkeeping only; no dispatch). */
    void wake(const ContextPtr &ctx);

    /** If the Cpu is idle, arrange for a dispatch decision at `now`. */
    void requestDispatch();

    /** The currently running context (null when idle). */
    const ContextPtr &current() const { return current_; }

    /// @}
    /// @name Awaitables, used from coroutine code running on this Cpu
    /// @{

    struct SpendAwaiter
    {
        Cpu *cpu;
        Cycle n;
        bool await_ready() const noexcept { return false; }
        /** @return false to continue immediately (zero-cycle spend). */
        bool
        await_suspend(std::coroutine_handle<> h)
        {
            return cpu->onSpendSuspend(n, h);
        }
        void await_resume() const noexcept {}
    };

    /** Consume @p n cycles; interruptible for user contexts. */
    SpendAwaiter spend(Cycle n) { return {this, n}; }

    struct BlockAwaiter
    {
        Cpu *cpu;
        bool await_ready() const noexcept { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            cpu->onBlockSuspend(h);
        }
        void await_resume() const noexcept {}
    };

    /** Suspend the current context until it is switched to again. */
    BlockAwaiter block() { return {this}; }

    struct YieldAwaiter
    {
        Cpu *cpu;
        ContextPtr next;
        bool blockSelf;
        bool await_ready() const noexcept { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            cpu->onYieldSuspend(h, std::move(next), blockSelf);
        }
        void await_resume() const noexcept {}
    };

    /**
     * Switch directly to @p next, leaving the current context Ready
     * (or Blocked when @p block_self).
     */
    YieldAwaiter
    yieldTo(ContextPtr next, bool block_self = false)
    {
        return {this, std::move(next), block_self};
    }

    struct TrapAwaiter
    {
        Cpu *cpu;
        unsigned vec;
        std::uint64_t arg;
        ContextPtr victim;
        bool await_ready() const noexcept { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            victim = cpu->onTrapSuspend(h, vec, arg);
        }
        /** @return the trap handler's result value. */
        std::uint64_t await_resume() noexcept { return victim->trapResult; }
    };

    /**
     * Take a synchronous trap into the kernel. The current context
     * blocks; the trap handler runs with returnTo set to the victim,
     * so finishing the handler resumes the trapped code (unless the
     * handler steals the return).
     */
    TrapAwaiter trap(unsigned vec, std::uint64_t arg = 0)
    {
        return {this, vec, arg, nullptr};
    }

    /// @}
    /// @name User-cycle timer (backs the NI atomicity timer)
    /// @{

    /**
     * Arrange for @p cb to run after @p user_cycles of *user* (i.e.
     * preemptible-context) execution have elapsed. Kernel execution
     * and idle time do not advance the timer. One timer slot exists.
     */
    void setUserTimer(Cycle user_cycles, std::function<void()> cb);
    void cancelUserTimer();
    bool userTimerActive() const { return timer_.active; }
    Cycle userTimerRemaining() const;

    /// @}

    /** Total user-context cycles executed so far. */
    Cycle userCycles() const;

    struct Stats
    {
        explicit Stats(StatGroup *parent, NodeId id);
        StatGroup group;
        Scalar userCycles;
        Scalar kernelCycles;
        Scalar irqsTaken;
        Scalar trapsTaken;
        Scalar contextsSpawned;
        Scalar preemptions;
    };

    Stats stats;

  private:
    friend struct Task::promise_type::FinalAwaiter;
    friend class Context;

    /// @name Awaiter entry points (delegated from the awaiter structs)
    /// @{
    bool onSpendSuspend(Cycle n, std::coroutine_handle<> h);
    void onBlockSuspend(std::coroutine_handle<> h);
    void onYieldSuspend(std::coroutine_handle<> h, ContextPtr next,
                        bool block_self);
    ContextPtr onTrapSuspend(std::coroutine_handle<> h, unsigned vec,
                             std::uint64_t arg);
    /// @}

    struct SpendState
    {
        bool active = false;
        ContextPtr ctx;
        Cycle start = 0;
        Cycle end = 0;
        EventHandle endEv;
    };

    struct UserTimer
    {
        bool active = false;
        Cycle deadline = 0; ///< in user-cycle time (see userCycles())
        std::function<void()> cb;
        EventHandle ev; // scheduled firing, if any
    };

    /** Context finished (called from final_suspend). */
    void onFinished(Context *ctx);

    /// @name Context registry (see Context::ctxListed_)
    /// @{
    void linkContext(Context *ctx);
    void unlinkContext(Context *ctx);

    /**
     * Destroy the coroutine frames of every context still suspended,
     * releasing the ContextPtr/ThreadPtr locals they hold (which may
     * form reference cycles). Runs from the destructor; nothing may
     * execute on this Cpu afterwards.
     */
    void destroyParkedContexts();
    /// @}

    /** Begin/continue a spend for the current context. */
    void beginSpend(Cycle n);
    void onSpendComplete();

    /** Freeze the current context mid/pre-spend (IRQ arrived). */
    void preemptCurrent();

    /** Central dispatch decision when the Cpu goes idle. */
    void reschedule();

    /** Highest-priority pending line, or -1. */
    int pendingIrqLine() const;

    /** Spawn and run the handler for @p line; returnTo = @p ret. */
    void dispatchIrq(unsigned line, ContextPtr ret);

    /** Resume a context as current (no pending-IRQ check). */
    void resumeContext(const ContextPtr &ctx);

    /** Schedule a coroutine handle to resume at now + delay. */
    void scheduleResume(std::coroutine_handle<> h, Cycle delay,
                        const char *why);

    /** Account user/kernel cycles for a completed slice. */
    void accountCycles(const ContextPtr &ctx, Cycle n);

    /** Arm the timer firing event against the active spend. */
    void armTimerForSpend();

    EventQueue &eq_;
    NodeId id_;

    std::vector<IrqHandlerFactory> irqHandlers_;
    std::vector<bool> irqPulse_;
    std::vector<TrapHandlerFactory> trapHandlers_;
    std::function<void()> idleHook_;

    std::uint32_t pendingIrqs_ = 0;

    ContextPtr current_;
    ContextPtr pendingReturn_; // stashed returnTo of a finished ctx
    ContextPtr retired_;       // finished ctx awaiting safe destruction
    bool dispatchPending_ = false;

    SpendState spend_;
    UserTimer timer_;

    Cycle userCycles_ = 0;

    Context *ctxHead_ = nullptr;
    trace::Recorder *tracer_ = nullptr;
};

} // namespace fugu::exec

#endif // FUGU_EXEC_CPU_HH
