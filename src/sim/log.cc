#include "sim/log.hh"

#include <cstdlib>
#include <iostream>

namespace fugu
{
namespace detail
{

namespace
{
bool throwOnError_ = false;
} // namespace

void
setThrowOnError(bool enable)
{
    throwOnError_ = enable;
}

bool
throwOnError()
{
    return throwOnError_;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = concat("panic: ", msg, " @ ", file, ":", line);
    if (throwOnError_)
        throw SimError{full};
    std::cerr << full << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = concat("fatal: ", msg, " @ ", file, ":", line);
    if (throwOnError_)
        throw SimError{full};
    std::cerr << full << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace fugu
