/**
 * @file
 * Lightweight statistics framework.
 *
 * Modules declare named statistics inside a StatGroup; groups nest, and
 * the whole tree can be dumped in a stable, grep-friendly text format.
 * Only the types the experiments need are provided: Scalar counters and
 * Distributions (count/mean/min/max).
 */

#ifndef FUGU_SIM_STATS_HH
#define FUGU_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fugu
{

class StatGroup;

/** Base class for a single named statistic. */
class Stat
{
  public:
    Stat(StatGroup *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    virtual void print(std::ostream &os, const std::string &prefix)
        const = 0;
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple additive counter / value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0; }

  private:
    double value_ = 0;
};

/** Tracks count, sum, min, max, mean of samples. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0; }
    double minValue() const { return count_ ? min_ : 0; }
    double maxValue() const { return count_ ? max_ : 0; }

    /**
     * Fold another distribution's summary into this one (used by the
     * parallel engine to merge per-lane scratch counters at the end
     * of a run). A zero @p count merges nothing.
     */
    void
    merge(std::uint64_t count, double sum, double mn, double mx)
    {
        if (count == 0)
            return;
        if (count_ == 0) {
            min_ = mn;
            max_ = mx;
        } else {
            min_ = std::min(min_, mn);
            max_ = std::max(max_, mx);
        }
        count_ += count;
        sum_ += sum;
    }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override { count_ = 0; sum_ = 0; min_ = 0; max_ = 0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * The plain-value core of a log-bucketed histogram: copyable, default
 * comparable, and mergeable, so latency distributions can cross
 * machine/trial boundaries (RunStats carries them, runTrials merges
 * them) without the Stat registration machinery. Samples are
 * non-negative; each power-of-two octave is split into 4 sub-buckets,
 * so the quantile error is bounded by ~25% of the value — plenty for
 * latency distributions spanning decades. Exact count/sum/min/max are
 * kept alongside.
 */
struct HistogramData
{
    /** 64 octaves x 4 sub-buckets covers the whole u64 cycle range. */
    static constexpr unsigned kSub = 4;
    static constexpr unsigned kBuckets = 64 * kSub;

    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::uint64_t buckets[kBuckets] = {};

    void sample(double v);

    /**
     * Fold another histogram into this one: bucket-wise addition plus
     * exact count/sum/min/max combination. Merging histograms of two
     * sample populations yields exactly the histogram of their
     * concatenation, so per-trial (or per-node) distributions
     * aggregate without losing percentile fidelity.
     */
    void merge(const HistogramData &o);

    /** Value at percentile @p p in [0,100] (upper bucket edge). */
    double percentile(double p) const;

    double mean() const { return count ? sum / count : 0; }
    double minValue() const { return count ? min : 0; }
    double maxValue() const { return count ? max : 0; }

    bool operator==(const HistogramData &o) const = default;

    static unsigned bucketOf(double v);
    static double bucketUpperEdge(unsigned b);
};

/** A HistogramData registered as a named statistic in a StatGroup. */
class Histogram : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v) { d_.sample(v); }

    /** Fold another histogram's samples into this one. */
    void merge(const HistogramData &o) { d_.merge(o); }
    void merge(const Histogram &o) { d_.merge(o.d_); }

    /** The copyable sample distribution. */
    const HistogramData &data() const { return d_; }

    std::uint64_t count() const { return d_.count; }
    double sum() const { return d_.sum; }
    double mean() const { return d_.mean(); }
    double minValue() const { return d_.minValue(); }
    double maxValue() const { return d_.maxValue(); }

    /** Value at percentile @p p in [0,100] (upper bucket edge). */
    double percentile(double p) const { return d_.percentile(p); }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override { d_ = HistogramData{}; }

  private:
    HistogramData d_;
};

/**
 * A named collection of statistics and child groups. Groups do not own
 * their stats (stats are members of the owning module); they hold
 * non-owning registration pointers, so a group must outlive its stats'
 * registrations or be torn down together with them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Dump this group and all children. */
    void print(std::ostream &os, const std::string &prefix = "") const;

    /** Reset all stats in this group and children. */
    void resetAll();

  private:
    friend class Stat;

    void registerStat(Stat *s) { stats_.push_back(s); }
    void unregisterChild(StatGroup *g);

    std::string name_;
    StatGroup *parent_ = nullptr;
    std::vector<Stat *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace fugu

#endif // FUGU_SIM_STATS_HH
