/**
 * @file
 * Discrete-event simulation kernel: Event and EventQueue.
 *
 * Events fire in (cycle, insertion sequence) order, so events at the
 * same cycle fire in schedule order, which makes runs fully
 * deterministic. The queue is a two-band calendar queue:
 *
 *  - Near band: a ring of kRingSize per-cycle FIFO buckets covering
 *    [ringBase, ringBase + kRingSize) with a two-level occupancy
 *    bitmap. Nearly all simulator traffic (coroutine resumes, spend
 *    ends, network arrivals) schedules a few cycles out, so both
 *    schedule and pop are O(1) with zero comparisons.
 *  - Far band: a 4-ary min-heap. When the clock crosses into a new
 *    window, pending heap entries inside it migrate to the ring in
 *    (cycle, seq) order, which keeps firing order identical to a
 *    single global priority queue.
 *
 * Cancellation is lazy: descheduling frees the event's slot in a
 * generation-counted slot pool and the stale ring/heap entry is
 * skipped when reached — or swept out wholesale when stale entries
 * start to dominate, so memory stays proportional to live events even
 * under unbounded reschedule churn. An Event may be destroyed while
 * scheduled; its destructor deschedules it safely.
 *
 * The scheduling fast path is allocation-free in steady state:
 * one-shot callables (scheduleFn) are stored inline in pooled
 * LambdaEvents — only a callable larger than SmallFn::kInlineBytes
 * falls back to the heap — and cancellation handles are plain
 * {slot, generation} pairs instead of shared_ptr control blocks.
 */

#ifndef FUGU_SIM_EVENT_HH
#define FUGU_SIM_EVENT_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace fugu
{

class EventQueue;

/** Sentinel slot index meaning "not scheduled". */
inline constexpr std::uint32_t kNoEventSlot = 0xffffffffu;

/**
 * An occurrence scheduled at a future cycle. Subclass and implement
 * process(), or use EventQueue::scheduleFn for one-shot lambdas.
 */
class Event
{
  public:
    explicit Event(std::string name) : name_(std::move(name)) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the scheduled cycle is reached. */
    virtual void process() = 0;

    const std::string &name() const { return name_; }
    bool scheduled() const { return slot_ != kNoEventSlot; }

    /** Cycle this event will fire at. Only valid while scheduled. */
    Cycle when() const { return when_; }

  private:
    friend class EventQueue;

    std::string name_;
    Cycle when_ = 0;
    std::uint32_t slot_ = kNoEventSlot; // index into queue's slot pool
    EventQueue *queue_ = nullptr;
};

/**
 * Handle to a scheduleFn occurrence; pass to EventQueue::cancelFn.
 * A {slot, generation} pair: once the occurrence fires or is
 * cancelled the slot's generation advances, so stale handles are
 * harmless no-ops. Default-constructed handles are inert.
 */
struct EventHandle
{
    std::uint32_t slot = kNoEventSlot;
    std::uint32_t gen = 0;
};

/**
 * Type-erased move-only callable with inline storage. Callables up to
 * kInlineBytes live in the object itself; larger ones fall back to a
 * single heap allocation. Sized so every scheduleFn lambda in the
 * simulator stays inline — the largest captures a whole net::Packet,
 * which carries its payload inline (~88 bytes) plus this and a node id.
 */
class SmallFn
{
  public:
    static constexpr std::size_t kInlineBytes = 128;

    SmallFn() = default;
    ~SmallFn() { reset(); }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    template <typename F>
    void
    assign(F &&fn)
    {
        using Fn = std::decay_t<F>;
        reset();
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
            fire_ = [](void *p) {
                Fn *f = static_cast<Fn *>(p);
                (*f)();
                f->~Fn();
            };
        } else {
            auto *obj = new Fn(std::forward<F>(fn));
            ::new (static_cast<void *>(buf_)) Fn *(obj);
            invoke_ = [](void *p) { (**static_cast<Fn **>(p))(); };
            destroy_ = [](void *p) { delete *static_cast<Fn **>(p); };
            fire_ = [](void *p) {
                Fn *f = *static_cast<Fn **>(p);
                (*f)();
                delete f;
            };
        }
    }

    void operator()() { invoke_(buf_); }

    /**
     * Invoke the callable and destroy it, leaving the object empty —
     * the one-shot fire path, a single indirect call. The callable
     * still occupies buf_ while running: the owner must not reuse
     * this SmallFn until the call returns (the event pool releases
     * the event only afterwards).
     */
    void
    fireAndReset()
    {
        auto fire = fire_;
        invoke_ = nullptr;
        destroy_ = nullptr;
        fire_ = nullptr;
        fire(buf_);
    }

    void
    reset()
    {
        if (destroy_)
            destroy_(buf_);
        invoke_ = nullptr;
        destroy_ = nullptr;
        fire_ = nullptr;
    }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    void (*fire_)(void *) = nullptr;
};

/**
 * Convenience event wrapping a callable; used by scheduleFn. The
 * queue keeps fired LambdaEvents on a freelist and reuses them, so
 * steady-state scheduleFn traffic does not allocate.
 */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::string name) : Event(std::move(name)) {}

    template <typename F>
    LambdaEvent(std::string name, F &&fn) : Event(std::move(name))
    {
        fn_.assign(std::forward<F>(fn));
    }

    void process() override { fn_(); }

  private:
    friend class EventQueue;

    SmallFn fn_;
    const char *namePtr_ = nullptr; // last name set (pointer identity)
};

/**
 * The global ordered queue of pending events plus the current cycle.
 * One EventQueue drives an entire simulated machine. EventQueues are
 * independent: separate queues may run on separate threads.
 */
class EventQueue
{
  public:
    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /**
     * Schedule @p ev to fire at cycle @p when (>= now). The event must
     * not already be scheduled; use reschedule for that.
     */
    void schedule(Event *ev, Cycle when);

    /** Move an already (or not) scheduled event to a new cycle. */
    void reschedule(Event *ev, Cycle when);

    /** Cancel a pending event. No-op if not scheduled. */
    void deschedule(Event *ev);

    /**
     * Schedule a one-shot callable on a pooled LambdaEvent.
     * @return handle that can be passed to cancelFn.
     */
    template <typename F>
    EventHandle
    scheduleFn(F &&fn, Cycle when, const char *name = "lambda")
    {
        LambdaEvent *ev = acquireLambda(name);
        ev->fn_.assign(std::forward<F>(fn));
        push(ev, when, /*owned=*/true);
        return EventHandle{ev->slot_, slots_[ev->slot_].gen};
    }

    /** Cancel a scheduleFn event via its handle. No-op if fired. */
    void cancelFn(const EventHandle &handle);

    /**
     * Execute the next pending event, advancing the clock.
     * @return false if the queue is empty.
     */
    bool runOne();

    /**
     * Run until the queue empties, @p until is passed, or
     * @p max_events have been processed. The clock advances to
     * @p until only when the run was not cut short by @p max_events.
     * @return number of events processed.
     */
    std::uint64_t run(Cycle until = kMaxCycle,
                      std::uint64_t max_events = ~std::uint64_t(0));

    /**
     * Enable/disable batched same-cycle firing in run(). On (the
     * default), run() drains every live entry of a ring bucket per
     * bucket touch — one occupancy-bitmap scan per simulated cycle
     * instead of one per event. Off falls back to the one-pop-per-fire
     * loop; firing order is identical either way (bucket FIFO order).
     */
    void setBatchFire(bool on) { batchFire_ = on; }
    bool batchFire() const { return batchFire_; }

    /**
     * Pre-size internal pools for @p n imminent schedule/scheduleFn
     * calls so none of them allocates. Used by the parallel weave to
     * commit a whole phase's cross-shard handoffs allocation-free.
     */
    void prepareBulk(std::size_t n);

    /**
     * Cycle of the next live event without firing it, or kMaxCycle
     * when the queue is empty. Non-const because locating the next
     * event drops stale (cancelled) entries on the way. This is what
     * the parallel engine's weave phase uses to compute the global
     * horizon floor across shard queues.
     */
    Cycle nextTime();

    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled) pending events. */
    std::size_t pending() const { return live_; }

    /** Ring + heap entries currently held, live + stale (for tests). */
    std::size_t heapSize() const { return heap_.size() + ringCount_; }

  private:
    /** Near-band window: covers this many cycles from ringBase_. */
    static constexpr unsigned kRingBits = 10;
    static constexpr unsigned kRingSize = 1u << kRingBits;
    static constexpr unsigned kOccWords = kRingSize / 64;

    struct SlotRec
    {
        Event *event = nullptr;
        std::uint32_t gen = 1;   // advanced on every free
        std::uint32_t nextFree = kNoEventSlot;
        bool owned = false;      // queue owns the Event (scheduleFn)
        bool inRing = false;     // entry lives in a ring bucket
    };

    /** Ring bucket entry; the cycle is implied by the bucket. */
    struct BucketEntry
    {
        std::uint32_t slot;
        std::uint32_t gen;
    };

    struct HeapEntry
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** The next event to fire, located by findNext(). */
    struct NextEvent
    {
        Cycle when;
        bool fromRing;
        std::uint32_t bucket;
    };

    /**
     * Heap order: a fires before b. The heap is 4-ary: half the
     * levels of a binary heap, and all four children of a node are
     * contiguous, which speeds up the pop-heavy migration path.
     */
    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    void heapSiftUp(std::size_t i);
    void heapSiftDown(std::size_t i);
    void heapPush(HeapEntry e);
    void heapPopFront();
    void heapRebuild();

    bool
    entryLive(const HeapEntry &e) const
    {
        return slots_[e.slot].gen == e.gen;
    }

    void push(Event *ev, Cycle when, bool owned);
    std::uint32_t allocSlot(Event *ev, bool owned);
    void freeSlot(std::uint32_t idx);

    /**
     * Locate the next live event (dropping stale entries on the way)
     * without firing it. @return false if the queue is empty.
     */
    bool findNext(NextEvent &nx);

    /** Pop and process the event located by findNext(). */
    void fireNext(const NextEvent &nx);

    /** Unschedule slot @p idx and run its event. */
    void fireSlot(std::uint32_t idx);

    /**
     * Realign the ring window to now_ (after firing a far-band event)
     * and migrate heap entries that now fall inside it.
     */
    void migrateWindow();

    /** Pop stale (cancelled/rescheduled) entries off the heap top. */
    void skipStale();

    /** Sweep dead entries when they dominate live ones. */
    void compactIfNeeded();
    void ringSweepIfNeeded();

    LambdaEvent *acquireLambda(const char *name);
    void releaseLambda(LambdaEvent *ev);

    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    bool batchFire_ = true;
    std::size_t live_ = 0;
    std::size_t stale_ = 0;     // dead entries still in heap_
    std::size_t ringStale_ = 0; // dead entries still in ring buckets
    std::size_t ringCount_ = 0; // all entries held in ring buckets
    std::vector<SlotRec> slots_;
    std::uint32_t freeSlotHead_ = kNoEventSlot;
    std::size_t freeSlotCount_ = 0;

    Cycle ringBase_ = 0; // window start, kRingSize-aligned, <= now_
    std::vector<std::vector<BucketEntry>> ring_; // kRingSize buckets
    std::vector<std::uint32_t> ringHead_; // consumed prefix per bucket
    std::uint64_t occ_[kOccWords] = {};   // non-empty-bucket bitmap

    std::vector<HeapEntry> heap_;
    // Declared after slots_/ring_/heap_ so pooled events (whose
    // destructors deschedule) are destroyed first at queue teardown.
    std::vector<std::unique_ptr<LambdaEvent>> lambdaStore_;
    std::vector<LambdaEvent *> lambdaFree_;
};

} // namespace fugu

#endif // FUGU_SIM_EVENT_HH
