/**
 * @file
 * Discrete-event simulation kernel: Event and EventQueue.
 *
 * The queue is a min-heap ordered by (cycle, insertion sequence), so
 * events at the same cycle fire in schedule order, which makes runs
 * fully deterministic. Cancellation is supported through per-schedule
 * "slots": descheduling invalidates the slot, and stale heap entries
 * are skipped when popped. An Event may be destroyed while scheduled;
 * its destructor deschedules it safely.
 */

#ifndef FUGU_SIM_EVENT_HH
#define FUGU_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fugu
{

class EventQueue;

/**
 * An occurrence scheduled at a future cycle. Subclass and implement
 * process(), or use EventQueue::scheduleFn for one-shot lambdas.
 */
class Event
{
  public:
    /**
     * Cancellation slot for a scheduled occurrence. Holders keep a
     * weak_ptr (an EventHandle) so stale handles are harmless.
     */
    struct Slot
    {
        Event *event = nullptr; // null once descheduled
    };

    explicit Event(std::string name) : name_(std::move(name)) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the scheduled cycle is reached. */
    virtual void process() = 0;

    const std::string &name() const { return name_; }
    bool scheduled() const { return slot_ != nullptr; }

    /** Cycle this event will fire at. Only valid while scheduled. */
    Cycle when() const { return when_; }

  private:
    friend class EventQueue;

    std::string name_;
    Cycle when_ = 0;
    std::shared_ptr<Slot> slot_; // non-null while scheduled
    EventQueue *queue_ = nullptr;
};

/** Handle to a scheduleFn occurrence; pass to EventQueue::cancelFn. */
using EventHandle = std::weak_ptr<Event::Slot>;

/** Convenience event wrapping a callable; used by scheduleFn. */
class LambdaEvent : public Event
{
  public:
    LambdaEvent(std::string name, std::function<void()> fn)
        : Event(std::move(name)), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

/**
 * The global ordered queue of pending events plus the current cycle.
 * One EventQueue drives an entire simulated machine.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /**
     * Schedule @p ev to fire at cycle @p when (>= now). The event must
     * not already be scheduled; use reschedule for that.
     */
    void schedule(Event *ev, Cycle when);

    /** Move an already (or not) scheduled event to a new cycle. */
    void reschedule(Event *ev, Cycle when);

    /** Cancel a pending event. No-op if not scheduled. */
    void deschedule(Event *ev);

    /**
     * Schedule a one-shot callable. The underlying event is owned by
     * the queue and destroyed after firing.
     * @return handle that can be passed to cancelFn.
     */
    std::weak_ptr<Event::Slot> scheduleFn(std::function<void()> fn,
                                          Cycle when,
                                          std::string name = "lambda");

    /** Cancel a scheduleFn event via its handle. No-op if fired. */
    void cancelFn(const std::weak_ptr<Event::Slot> &handle);

    /**
     * Execute the next pending event, advancing the clock.
     * @return false if the queue is empty.
     */
    bool runOne();

    /**
     * Run until the queue empties, @p until is passed, or
     * @p max_events have been processed.
     * @return number of events processed.
     */
    std::uint64_t run(Cycle until = kMaxCycle,
                      std::uint64_t max_events = ~std::uint64_t(0));

    bool empty() const;

    /** Number of live (non-cancelled) pending events. */
    std::size_t pending() const { return live_; }

  private:
    struct HeapEntry
    {
        Cycle when;
        std::uint64_t seq;
        std::shared_ptr<Event::Slot> slot;
        bool owned; // queue owns the Event (scheduleFn)

        bool
        operator>(const HeapEntry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    void push(Event *ev, Cycle when, bool owned);

    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> heap_;
};

} // namespace fugu

#endif // FUGU_SIM_EVENT_HH
