#include "sim/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace fugu::sim
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
validKey(const std::string &k)
{
    if (k.empty() || k.front() == '.' || k.back() == '.')
        return false;
    for (char c : k) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.')
            return false;
    }
    return k.find("..") == std::string::npos;
}

bool
parseBool(const std::string &s, void *out)
{
    bool v;
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        v = true;
    else if (s == "false" || s == "0" || s == "no" || s == "off")
        v = false;
    else
        return false;
    *static_cast<bool *>(out) = v;
    return true;
}

bool
parseU64(const std::string &s, void *out)
{
    if (s.empty() || s[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    *static_cast<std::uint64_t *>(out) = v;
    return true;
}

bool
parseUnsigned(const std::string &s, void *out)
{
    std::uint64_t v;
    if (!parseU64(s, &v) || v > 0xffffffffull)
        return false;
    *static_cast<unsigned *>(out) = static_cast<unsigned>(v);
    return true;
}

bool
parseDouble(const std::string &s, void *out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    *static_cast<double *>(out) = v;
    return true;
}

bool
parseString(const std::string &s, void *out)
{
    *static_cast<std::string *>(out) = s;
    return true;
}

/** Split on commas, trimming each element; "" -> empty list. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    if (trim(s).empty())
        return out;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = s.find(',', start);
        out.push_back(trim(s.substr(start, comma - start)));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

template <typename T>
bool
parseListOf(const std::string &s, void *out,
            bool (*elem)(const std::string &, void *))
{
    std::vector<T> v;
    for (const std::string &e : splitList(s)) {
        T x;
        if (!elem(e, &x))
            return false;
        v.push_back(x);
    }
    *static_cast<std::vector<T> *>(out) = std::move(v);
    return true;
}

} // namespace

std::string
ConfigAssignment::where() const
{
    if (source == ConfigSource::Cli)
        return "--set " + key + "=" + value;
    return file + ":" + std::to_string(line);
}

bool
Config::loadString(const std::string &text, const std::string &name,
                   std::string *err)
{
    std::istringstream is(text);
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']') {
                *err = name + ":" + std::to_string(lineno) +
                       ": unterminated [section] header";
                return false;
            }
            section = trim(line.substr(1, line.size() - 2));
            if (!section.empty() && !validKey(section)) {
                *err = name + ":" + std::to_string(lineno) +
                       ": bad section name '" + section + "'";
                return false;
            }
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            *err = name + ":" + std::to_string(lineno) +
                   ": expected 'key = value', got '" + line + "'";
            return false;
        }
        std::string key = trim(line.substr(0, eq));
        if (!section.empty())
            key = section + "." + key;
        if (!validKey(key)) {
            *err = name + ":" + std::to_string(lineno) +
                   ": bad parameter name '" + key + "'";
            return false;
        }
        ConfigAssignment a;
        a.key = std::move(key);
        a.value = trim(line.substr(eq + 1));
        a.source = ConfigSource::File;
        a.file = name;
        a.line = lineno;
        asgs_.push_back(std::move(a));
    }
    return true;
}

bool
Config::loadFile(const std::string &path, std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        *err = "cannot open scenario file '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << is.rdbuf();
    return loadString(text.str(), path, err);
}

bool
Config::setCli(const std::string &keyval, std::string *err)
{
    const std::size_t eq = keyval.find('=');
    if (eq == std::string::npos) {
        *err = "--set expects key=value, got '" + keyval + "'";
        return false;
    }
    ConfigAssignment a;
    a.key = trim(keyval.substr(0, eq));
    a.value = trim(keyval.substr(eq + 1));
    a.source = ConfigSource::Cli;
    a.file = "--set";
    if (!validKey(a.key)) {
        *err = "--set: bad parameter name '" + a.key + "'";
        return false;
    }
    asgs_.push_back(std::move(a));
    return true;
}

const ConfigAssignment *
Config::find(const std::string &key) const
{
    const ConfigAssignment *best = nullptr;
    for (const auto &a : asgs_) {
        if (a.key != key)
            continue;
        // Last CLI assignment wins over any file one; within a
        // source, later assignments override earlier ones.
        if (!best || a.source >= best->source)
            best = &a;
    }
    return best;
}

void
Config::consume(const std::string &key)
{
    for (auto &a : asgs_)
        if (a.key == key)
            a.consumed = true;
}

bool
Config::checkUnknown(std::string *err) const
{
    for (const auto &a : asgs_) {
        if (!a.consumed) {
            *err = a.where() + ": unknown parameter '" + a.key + "'";
            return false;
        }
    }
    return true;
}

bool
Config::checkUnknownIn(const std::vector<std::string> &sections,
                       std::string *err,
                       std::vector<std::string> *skipped) const
{
    for (const auto &a : asgs_) {
        if (a.consumed)
            continue;
        const std::string head = a.key.substr(0, a.key.find('.'));
        if (std::find(sections.begin(), sections.end(), head) ==
            sections.end()) {
            if (skipped)
                skipped->push_back(a.key);
            continue;
        }
        *err = a.where() + ": unknown parameter '" + a.key + "'";
        return false;
    }
    return true;
}

std::string
formatConfigDouble(double v)
{
    // Shortest representation that parses back exactly, so dumps
    // round-trip byte-identically.
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    return buf;
}

template <typename T, typename Fmt>
static std::string
joinList(const std::vector<T> &v, Fmt fmt)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ",";
        out += fmt(v[i]);
    }
    return out;
}

std::string
formatConfigList(const std::vector<double> &v)
{
    return joinList(v, formatConfigDouble);
}

std::string
formatConfigList(const std::vector<std::uint64_t> &v)
{
    return joinList(v,
                    [](std::uint64_t x) { return std::to_string(x); });
}

std::string
formatConfigList(const std::vector<unsigned> &v)
{
    return joinList(v, [](unsigned x) { return std::to_string(x); });
}

void
Binder::popPrefix()
{
    // Drop the trailing "name." segment.
    fugu_assert(!prefix_.empty() && prefix_.back() == '.');
    prefix_.pop_back();
    const std::size_t dot = prefix_.rfind('.');
    prefix_.erase(dot == std::string::npos ? 0 : dot + 1);
}

void
Binder::bindRaw(const std::string &key, std::string current,
                const std::string &doc, const std::string &units,
                const std::string &type_name,
                bool (*parse)(const std::string &, void *), void *out)
{
    const std::string full = prefix_ + key;
    for (const Param &p : params_)
        fugu_assert(p.key != full, "parameter '", full,
                    "' registered twice");

    Param p;
    p.key = full;
    p.units = units;
    p.doc = doc;

    const ConfigAssignment *a = cfg_.find(full);
    cfg_.consume(full);
    if (mode_ == Mode::Apply && a) {
        if (!parse(a->value, out)) {
            if (err_.empty())
                err_ = a->where() + ": parameter '" + full +
                       "' expects " + type_name + ", got '" + a->value +
                       "'";
            params_.push_back(std::move(p));
            return;
        }
        p.overridden = true;
    }
    // In Apply mode `current` was captured before the override was
    // applied; refresh it so params() reflects the applied value.
    p.value = (mode_ == Mode::Apply && a) ? a->value : current;
    params_.push_back(std::move(p));
}

void
Binder::item(const std::string &key, bool &v, const std::string &doc,
             const std::string &units)
{
    bindRaw(key, v ? "true" : "false", doc, units, "a boolean",
            parseBool, &v);
}

void
Binder::item(const std::string &key, unsigned &v,
             const std::string &doc, const std::string &units)
{
    bindRaw(key, std::to_string(v), doc, units, "an unsigned integer",
            parseUnsigned, &v);
}

void
Binder::item(const std::string &key, std::uint64_t &v,
             const std::string &doc, const std::string &units)
{
    bindRaw(key, std::to_string(v), doc, units, "an unsigned integer",
            parseU64, &v);
}

void
Binder::item(const std::string &key, double &v, const std::string &doc,
             const std::string &units)
{
    bindRaw(key, formatConfigDouble(v), doc, units, "a number",
            parseDouble, &v);
}

void
Binder::item(const std::string &key, std::string &v,
             const std::string &doc, const std::string &units)
{
    bindRaw(key, v, doc, units, "a string", parseString, &v);
}

void
Binder::list(const std::string &key, std::vector<double> &v,
             const std::string &doc, const std::string &units)
{
    bindRaw(key, formatConfigList(v), doc, units,
            "a comma-separated list of numbers",
            [](const std::string &s, void *out) {
                return parseListOf<double>(s, out, parseDouble);
            },
            &v);
}

void
Binder::list(const std::string &key, std::vector<std::uint64_t> &v,
             const std::string &doc, const std::string &units)
{
    bindRaw(key, formatConfigList(v), doc, units,
            "a comma-separated list of unsigned integers",
            [](const std::string &s, void *out) {
                return parseListOf<std::uint64_t>(s, out, parseU64);
            },
            &v);
}

void
Binder::list(const std::string &key, std::vector<unsigned> &v,
             const std::string &doc, const std::string &units)
{
    bindRaw(key, formatConfigList(v), doc, units,
            "a comma-separated list of unsigned integers",
            [](const std::string &s, void *out) {
                return parseListOf<unsigned>(s, out, parseUnsigned);
            },
            &v);
}

void
Binder::enumImpl(const std::string &key, int &v,
                 const std::vector<std::pair<std::string, int>> &opts,
                 const std::string &doc)
{
    std::string current = "?";
    std::string all;
    for (const auto &[n, val] : opts) {
        if (val == v)
            current = n;
        if (!all.empty())
            all += "|";
        all += n;
    }
    struct Ctx
    {
        const std::vector<std::pair<std::string, int>> *opts;
        int *out;
    };
    // bindRaw's parser is a plain function pointer; smuggle the
    // option table through the out pointer.
    Ctx ctx{&opts, &v};
    bindRaw(key, current, doc + " (" + all + ")", "", "one of " + all,
            [](const std::string &s, void *p) {
                Ctx &c = *static_cast<Ctx *>(p);
                for (const auto &[n, val] : *c.opts) {
                    if (n == s) {
                        *c.out = val;
                        return true;
                    }
                }
                return false;
            },
            &ctx);
}

std::string
Binder::dumpText() const
{
    std::string out;
    out += "# Effective fugusim configuration. Replay with:\n";
    out += "#   <bench> --scenario <this file>\n";
    for (const Param &p : params_)
        out += p.key + " = " + p.value + "\n";
    return out;
}

std::string
Binder::listText() const
{
    std::size_t kw = 0, vw = 0;
    for (const Param &p : params_) {
        kw = std::max(kw, p.key.size());
        vw = std::max(vw, p.value.size());
    }
    std::string out;
    for (const Param &p : params_) {
        std::string line = p.key;
        line += std::string(kw - p.key.size() + 2, ' ');
        line += p.value;
        line += std::string(vw - p.value.size() + 2, ' ');
        line += p.doc;
        if (!p.units.empty())
            line += " [" + p.units + "]";
        out += line + "\n";
    }
    return out;
}

} // namespace fugu::sim
