#include "sim/stats.hh"

#include <cmath>
#include <iomanip>

#include "sim/log.hh"

namespace fugu
{

Stat::Stat(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    fugu_assert(parent, "stat '", name_, "' needs a parent group");
    parent->registerStat(this);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value() << " # " << desc() << "\n";
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::count " << count_ << " # " << desc()
       << "\n";
    os << prefix << name() << "::mean " << mean() << "\n";
    os << prefix << name() << "::min " << minValue() << "\n";
    os << prefix << name() << "::max " << maxValue() << "\n";
}

unsigned
HistogramData::bucketOf(double v)
{
    // NaN fails every ordered comparison, so `v < 1.0` would fall
    // through to the cast below — UB for NaN, and likewise for +inf
    // or anything >= 2^64. Negate the comparison so NaN lands in
    // bucket 0, and clamp oversized values into the last bucket.
    if (!(v >= 1.0))
        return 0;
    if (v >= 0x1p64)
        return kBuckets - 1;
    const auto x = static_cast<std::uint64_t>(v);
    unsigned octave = 0;
    for (std::uint64_t t = x; t > 1; t >>= 1)
        ++octave;
    // Sub-bucket from the 2 bits below the leading one.
    const unsigned sub =
        octave >= 2
            ? static_cast<unsigned>((x >> (octave - 2)) & (kSub - 1))
            : static_cast<unsigned>((x << (2 - octave)) & (kSub - 1));
    const unsigned b = octave * kSub + sub;
    return b < kBuckets ? b : kBuckets - 1;
}

double
HistogramData::bucketUpperEdge(unsigned b)
{
    const unsigned octave = b / kSub;
    const unsigned sub = b % kSub;
    // Upper edge of [2^octave * (1 + sub/4), 2^octave * (1 + (sub+1)/4)).
    const double base = std::ldexp(1.0, static_cast<int>(octave));
    return base * (1.0 + (sub + 1) / static_cast<double>(kSub));
}

void
HistogramData::sample(double v)
{
    // Degenerate samples must not poison sum/min/max (a single NaN
    // would make every aggregate NaN forever): NaN and negatives
    // clamp to 0, +inf and anything beyond the histogram's range to
    // its top edge.
    if (std::isnan(v) || v < 0)
        v = 0;
    else if (v > 0x1p63)
        v = 0x1p63;
    ++count;
    sum += v;
    min = count == 1 ? v : std::min(min, v);
    max = count == 1 ? v : std::max(max, v);
    ++buckets[bucketOf(v)];
}

void
HistogramData::merge(const HistogramData &o)
{
    if (o.count == 0)
        return;
    if (count == 0) {
        min = o.min;
        max = o.max;
    } else {
        min = std::min(min, o.min);
        max = std::max(max, o.max);
    }
    count += o.count;
    sum += o.sum;
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets[b] += o.buckets[b];
}

double
HistogramData::percentile(double p) const
{
    if (!count)
        return 0;
    const double target = p / 100.0 * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        cum += buckets[b];
        if (static_cast<double>(cum) >= target && cum > 0)
            return std::min(bucketUpperEdge(b), max);
    }
    return max;
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::count " << count() << " # " << desc()
       << "\n";
    os << prefix << name() << "::mean " << mean() << "\n";
    os << prefix << name() << "::p50 " << percentile(50) << "\n";
    os << prefix << name() << "::p95 " << percentile(95) << "\n";
    os << prefix << name() << "::p99 " << percentile(99) << "\n";
    os << prefix << name() << "::max " << maxValue() << "\n";
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

StatGroup::~StatGroup()
{
    // Children may outlive this group (teardown order is not guaranteed
    // to be leaf-first); orphan them so their destructors do not call
    // back into freed memory.
    for (StatGroup *g : children_)
        g->parent_ = nullptr;
    if (parent_)
        parent_->unregisterChild(this);
}

void
StatGroup::unregisterChild(StatGroup *g)
{
    for (auto it = children_.begin(); it != children_.end(); ++it) {
        if (*it == g) {
            children_.erase(it);
            return;
        }
    }
}

void
StatGroup::print(std::ostream &os, const std::string &prefix) const
{
    const std::string here =
        prefix.empty() ? name_ + "." : prefix + name_ + ".";
    for (const Stat *s : stats_)
        s->print(os, here);
    for (const StatGroup *g : children_)
        g->print(os, here);
}

void
StatGroup::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
    for (StatGroup *g : children_)
        g->resetAll();
}

} // namespace fugu
