#include "sim/stats.hh"

#include <iomanip>

#include "sim/log.hh"

namespace fugu
{

Stat::Stat(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    fugu_assert(parent, "stat '", name_, "' needs a parent group");
    parent->registerStat(this);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value() << " # " << desc() << "\n";
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::count " << count_ << " # " << desc()
       << "\n";
    os << prefix << name() << "::mean " << mean() << "\n";
    os << prefix << name() << "::min " << minValue() << "\n";
    os << prefix << name() << "::max " << maxValue() << "\n";
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

StatGroup::~StatGroup()
{
    // Children may outlive this group (teardown order is not guaranteed
    // to be leaf-first); orphan them so their destructors do not call
    // back into freed memory.
    for (StatGroup *g : children_)
        g->parent_ = nullptr;
    if (parent_)
        parent_->unregisterChild(this);
}

void
StatGroup::unregisterChild(StatGroup *g)
{
    for (auto it = children_.begin(); it != children_.end(); ++it) {
        if (*it == g) {
            children_.erase(it);
            return;
        }
    }
}

void
StatGroup::print(std::ostream &os, const std::string &prefix) const
{
    const std::string here =
        prefix.empty() ? name_ + "." : prefix + name_ + ".";
    for (const Stat *s : stats_)
        s->print(os, here);
    for (const StatGroup *g : children_)
        g->print(os, here);
}

void
StatGroup::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
    for (StatGroup *g : children_)
        g->resetAll();
}

} // namespace fugu
