#include "sim/pool.hh"

#include <cstdlib>

namespace fugu::sim
{

namespace
{

thread_local bool inWorker_ = false;

} // namespace

bool
onWorkerThread()
{
    return inWorker_;
}

void
setWorkerThread(bool on)
{
    inWorker_ = on;
}

unsigned
defaultWorkerThreads()
{
    if (const char *env = std::getenv("FUGU_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

WorkerPool::WorkerPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &th : threads_)
        th.join();
}

void
WorkerPool::run(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (threads_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        fn_ = &fn;
        n_ = n;
        next_.store(0, std::memory_order_relaxed);
        running_ = static_cast<unsigned>(threads_.size());
        ++epoch_;
    }
    wake_.notify_all();
    for (std::size_t i;
         (i = next_.fetch_add(1, std::memory_order_relaxed)) < n;)
        fn(i);
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [this] { return running_ == 0; });
    fn_ = nullptr;
}

void
WorkerPool::workerLoop()
{
    setWorkerThread(true);
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *fn;
        std::size_t n;
        {
            std::unique_lock<std::mutex> lk(mu_);
            wake_.wait(lk,
                       [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
            fn = fn_;
            n = n_;
        }
        for (std::size_t i;
             (i = next_.fetch_add(1, std::memory_order_relaxed)) < n;)
            (*fn)(i);
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--running_ == 0)
                done_.notify_one();
        }
    }
}

} // namespace fugu::sim
