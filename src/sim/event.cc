#include "sim/event.hh"

#include "sim/log.hh"

namespace fugu
{

Event::~Event()
{
    if (queue_ && slot_)
        queue_->deschedule(this);
}

void
EventQueue::push(Event *ev, Cycle when, bool owned)
{
    fugu_assert(when >= now_, "event '", ev->name(),
                "' scheduled in the past (", when, " < ", now_, ")");
    ev->when_ = when;
    ev->slot_ = std::make_shared<Event::Slot>();
    ev->slot_->event = ev;
    ev->queue_ = this;
    heap_.push(HeapEntry{when, nextSeq_++, ev->slot_, owned});
    ++live_;
}

void
EventQueue::schedule(Event *ev, Cycle when)
{
    fugu_assert(!ev->scheduled(), "event '", ev->name(),
                "' scheduled twice");
    push(ev, when, false);
}

void
EventQueue::reschedule(Event *ev, Cycle when)
{
    if (ev->scheduled())
        deschedule(ev);
    push(ev, when, false);
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->slot_)
        return;
    ev->slot_->event = nullptr;
    ev->slot_.reset();
    fugu_assert(live_ > 0);
    --live_;
}

std::weak_ptr<Event::Slot>
EventQueue::scheduleFn(std::function<void()> fn, Cycle when,
                       std::string name)
{
    auto *ev = new LambdaEvent(std::move(name), std::move(fn));
    push(ev, when, true);
    return ev->slot_;
}

void
EventQueue::cancelFn(const std::weak_ptr<Event::Slot> &handle)
{
    auto slot = handle.lock();
    if (!slot || !slot->event)
        return;
    Event *ev = slot->event;
    deschedule(ev);
    delete ev; // owned LambdaEvent
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        HeapEntry entry = heap_.top();
        heap_.pop();
        Event *ev = entry.slot->event;
        if (!ev)
            continue; // cancelled
        fugu_assert(entry.when >= now_);
        now_ = entry.when;
        // Mark unscheduled before processing so process() may
        // reschedule the same event.
        ev->slot_->event = nullptr;
        ev->slot_.reset();
        --live_;
        ev->process();
        if (entry.owned)
            delete ev;
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Cycle until, std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && !heap_.empty()) {
        // Peek past cancelled entries to find the next live event.
        while (!heap_.empty() && !heap_.top().slot->event)
            heap_.pop();
        if (heap_.empty() || heap_.top().when > until)
            break;
        runOne();
        ++n;
    }
    if (now_ < until && until != kMaxCycle)
        now_ = until;
    return n;
}

bool
EventQueue::empty() const
{
    return live_ == 0;
}

} // namespace fugu
