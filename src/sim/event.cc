#include "sim/event.hh"

#include <algorithm>
#include <bit>

#include "sim/log.hh"

namespace fugu
{

Event::~Event()
{
    if (queue_ && slot_ != kNoEventSlot)
        queue_->deschedule(this);
}

EventQueue::EventQueue() : ring_(kRingSize), ringHead_(kRingSize, 0) {}

std::uint32_t
EventQueue::allocSlot(Event *ev, bool owned)
{
    std::uint32_t idx;
    if (freeSlotHead_ != kNoEventSlot) {
        idx = freeSlotHead_;
        freeSlotHead_ = slots_[idx].nextFree;
        --freeSlotCount_;
    } else {
        idx = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    SlotRec &s = slots_[idx];
    s.event = ev;
    s.owned = owned;
    s.nextFree = kNoEventSlot;
    return idx;
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    SlotRec &s = slots_[idx];
    s.event = nullptr;
    s.owned = false;
    ++s.gen; // invalidates every outstanding handle and queue entry
    s.nextFree = freeSlotHead_;
    freeSlotHead_ = idx;
    ++freeSlotCount_;
}

void
EventQueue::prepareBulk(std::size_t n)
{
    if (freeSlotCount_ < n)
        slots_.reserve(slots_.size() + (n - freeSlotCount_));
    if (lambdaFree_.size() < n) {
        std::size_t need = n - lambdaFree_.size();
        lambdaStore_.reserve(lambdaStore_.size() + need);
        lambdaFree_.reserve(n);
        while (need-- > 0) {
            lambdaStore_.push_back(
                std::make_unique<LambdaEvent>("bulk"));
            lambdaFree_.push_back(lambdaStore_.back().get());
        }
    }
    // Worst case every entry lands in the far band.
    heap_.reserve(heap_.size() + n);
}

namespace
{
constexpr std::size_t kHeapArity = 4;
} // namespace

void
EventQueue::heapSiftUp(std::size_t i)
{
    HeapEntry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / kHeapArity;
        if (!before(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
EventQueue::heapSiftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    HeapEntry e = heap_[i];
    for (;;) {
        const std::size_t first = i * kHeapArity + 1;
        if (first >= n)
            break;
        const std::size_t last = std::min(first + kHeapArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], e))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = e;
}

void
EventQueue::heapPush(HeapEntry e)
{
    heap_.push_back(e);
    heapSiftUp(heap_.size() - 1);
}

void
EventQueue::heapPopFront()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        heapSiftDown(0);
}

void
EventQueue::heapRebuild()
{
    if (heap_.size() < 2)
        return;
    for (std::size_t i = (heap_.size() - 2) / kHeapArity + 1; i-- > 0;)
        heapSiftDown(i);
}

void
EventQueue::push(Event *ev, Cycle when, bool owned)
{
    fugu_assert(when >= now_, "event '", ev->name(),
                "' scheduled in the past (", when, " < ", now_, ")");
    ev->when_ = when;
    ev->queue_ = this;
    std::uint32_t idx = allocSlot(ev, owned);
    ev->slot_ = idx;
    ++live_;
    // ringBase_ <= now_ <= when always holds, so a window hit only
    // needs the upper bound. Bucket FIFO order is schedule order.
    if (when < ringBase_ + kRingSize) {
        const std::uint32_t b = when & (kRingSize - 1);
        occ_[b >> 6] |= std::uint64_t{1} << (b & 63);
        ring_[b].push_back(BucketEntry{idx, slots_[idx].gen});
        slots_[idx].inRing = true;
        ++ringCount_;
    } else {
        heapPush(HeapEntry{when, nextSeq_++, idx, slots_[idx].gen});
        slots_[idx].inRing = false;
    }
}

void
EventQueue::schedule(Event *ev, Cycle when)
{
    fugu_assert(!ev->scheduled(), "event '", ev->name(),
                "' scheduled twice");
    push(ev, when, false);
}

void
EventQueue::reschedule(Event *ev, Cycle when)
{
    if (ev->scheduled())
        deschedule(ev);
    push(ev, when, false);
}

void
EventQueue::deschedule(Event *ev)
{
    if (ev->slot_ == kNoEventSlot)
        return;
    const bool inRing = slots_[ev->slot_].inRing;
    freeSlot(ev->slot_);
    ev->slot_ = kNoEventSlot;
    fugu_assert(live_ > 0);
    --live_;
    if (inRing) {
        ++ringStale_;
        ringSweepIfNeeded();
    } else {
        ++stale_;
        compactIfNeeded();
    }
}

void
EventQueue::cancelFn(const EventHandle &handle)
{
    if (handle.slot >= slots_.size())
        return;
    SlotRec &s = slots_[handle.slot];
    if (s.gen != handle.gen || !s.event)
        return; // fired, cancelled, or slot since reused
    Event *ev = s.event;
    const bool owned = s.owned;
    const bool inRing = s.inRing;
    freeSlot(handle.slot);
    ev->slot_ = kNoEventSlot;
    fugu_assert(live_ > 0);
    --live_;
    if (owned)
        releaseLambda(static_cast<LambdaEvent *>(ev));
    if (inRing) {
        ++ringStale_;
        ringSweepIfNeeded();
    } else {
        ++stale_;
        compactIfNeeded();
    }
}

LambdaEvent *
EventQueue::acquireLambda(const char *name)
{
    if (lambdaFree_.empty()) {
        lambdaStore_.push_back(std::make_unique<LambdaEvent>(name));
        lambdaStore_.back()->namePtr_ = name;
        return lambdaStore_.back().get();
    }
    LambdaEvent *ev = lambdaFree_.back();
    lambdaFree_.pop_back();
    // Names are almost always literals; pointer identity makes the
    // common reuse-with-same-name case free.
    if (ev->namePtr_ != name) {
        ev->name_ = name; // reuses the string's existing capacity
        ev->namePtr_ = name;
    }
    return ev;
}

void
EventQueue::releaseLambda(LambdaEvent *ev)
{
    ev->fn_.reset(); // drop captures promptly
    lambdaFree_.push_back(ev);
}

void
EventQueue::skipStale()
{
    while (!heap_.empty() && !entryLive(heap_.front())) {
        heapPopFront();
        fugu_assert(stale_ > 0);
        --stale_;
    }
}

void
EventQueue::compactIfNeeded()
{
    // Lazy cancellation leaves dead entries behind; sweep them once
    // they outnumber live ones so a long run's heap stays O(live).
    if (stale_ < 64 || stale_ * 2 < heap_.size())
        return;
    std::erase_if(heap_,
                  [this](const HeapEntry &e) { return !entryLive(e); });
    heapRebuild();
    stale_ = 0;
}

void
EventQueue::ringSweepIfNeeded()
{
    // Ring analogue of compactIfNeeded: without it, reschedule churn
    // on near-future events would grow bucket vectors without bound.
    if (ringStale_ < 64 || ringStale_ * 2 < ringCount_)
        return;
    for (unsigned w = 0; w < kOccWords; ++w) {
        std::uint64_t word = occ_[w];
        while (word != 0) {
            const unsigned b =
                w * 64 + static_cast<unsigned>(std::countr_zero(word));
            word &= word - 1;
            std::vector<BucketEntry> &bucket = ring_[b];
            std::size_t wr = 0;
            for (std::size_t r = ringHead_[b]; r < bucket.size(); ++r) {
                if (slots_[bucket[r].slot].gen == bucket[r].gen)
                    bucket[wr++] = bucket[r];
            }
            ringCount_ -= bucket.size() - ringHead_[b] - wr;
            bucket.resize(wr); // keeps capacity: no realloc churn
            ringHead_[b] = 0;
            if (wr == 0)
                occ_[w] &= ~(std::uint64_t{1} << (b & 63));
        }
    }
    ringStale_ = 0;
}

bool
EventQueue::findNext(NextEvent &nx)
{
    // Pushes never target cycles < now_, and every bucket the clock
    // has passed was drained, so the scan can start at now_.
    const Cycle rel = now_ - ringBase_;
    if (rel < kRingSize) {
        std::size_t w = rel >> 6;
        std::uint64_t word = occ_[w] & (~std::uint64_t{0} << (rel & 63));
        for (;;) {
            while (word == 0) {
                if (++w >= kOccWords)
                    break;
                word = occ_[w];
            }
            if (w >= kOccWords)
                break;
            const std::uint32_t b =
                static_cast<std::uint32_t>(w * 64) +
                static_cast<std::uint32_t>(std::countr_zero(word));
            // Drop the bucket's stale prefix before committing to it.
            std::vector<BucketEntry> &bucket = ring_[b];
            std::uint32_t h = ringHead_[b];
            const std::size_t sz = bucket.size();
            while (h < sz &&
                   slots_[bucket[h].slot].gen != bucket[h].gen) {
                ++h;
                fugu_assert(ringStale_ > 0);
                --ringStale_;
                --ringCount_;
            }
            if (h == sz) { // bucket fully consumed/cancelled
                bucket.clear();
                ringHead_[b] = 0;
                occ_[w] &= ~(std::uint64_t{1} << (b & 63));
                word &= ~(std::uint64_t{1} << (b & 63));
                continue;
            }
            ringHead_[b] = h;
            nx = NextEvent{ringBase_ + b, true, b};
            return true;
        }
    }
    skipStale();
    if (heap_.empty())
        return false;
    nx = NextEvent{heap_.front().when, false, 0};
    return true;
}

void
EventQueue::migrateWindow()
{
    const Cycle nb = now_ & ~Cycle{kRingSize - 1};
    // The fired far-band event had when >= ringBase_ + kRingSize, so
    // the window always moves forward (and the old ring is empty:
    // findNext fell through to the heap only after draining it).
    fugu_assert(nb >= ringBase_ + kRingSize);
    ringBase_ = nb;
    // Heap entries pop in (when, seq) order, and no bucket in the new
    // window can already hold entries (see push()), so migration
    // preserves global firing order.
    while (!heap_.empty() && heap_.front().when < nb + kRingSize) {
        const HeapEntry e = heap_.front();
        heapPopFront();
        if (slots_[e.slot].gen != e.gen) {
            fugu_assert(stale_ > 0);
            --stale_;
            continue;
        }
        const std::uint32_t b = e.when & (kRingSize - 1);
        occ_[b >> 6] |= std::uint64_t{1} << (b & 63);
        ring_[b].push_back(BucketEntry{e.slot, e.gen});
        slots_[e.slot].inRing = true;
        ++ringCount_;
    }
}

void
EventQueue::fireSlot(std::uint32_t idx)
{
    SlotRec &s = slots_[idx];
    Event *ev = s.event;
    const bool owned = s.owned;
    // Unschedule before processing so process() may reschedule the
    // same event (the freed slot may be reused immediately).
    freeSlot(idx);
    ev->slot_ = kNoEventSlot;
    --live_;
    if (owned) {
        // Pooled one-shot: skip the virtual call, fire-and-destroy
        // the callable in one indirect call, recycle the event.
        auto *le = static_cast<LambdaEvent *>(ev);
        le->fn_.fireAndReset();
        lambdaFree_.push_back(le);
    } else {
        ev->process();
    }
}

void
EventQueue::fireNext(const NextEvent &nx)
{
    std::uint32_t slot;
    if (nx.fromRing) {
        std::vector<BucketEntry> &bucket = ring_[nx.bucket];
        slot = bucket[ringHead_[nx.bucket]].slot; // liveness checked
        ++ringHead_[nx.bucket];
        --ringCount_;
        now_ = nx.when;
    } else {
        const HeapEntry e = heap_.front();
        heapPopFront();
        slot = e.slot;
        now_ = e.when;
        migrateWindow();
    }
    fireSlot(slot);
}

bool
EventQueue::runOne()
{
    NextEvent nx;
    if (!findNext(nx))
        return false;
    fireNext(nx);
    return true;
}

Cycle
EventQueue::nextTime()
{
    NextEvent nx;
    return findNext(nx) ? nx.when : kMaxCycle;
}

std::uint64_t
EventQueue::run(Cycle until, std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events) {
        NextEvent nx;
        if (!findNext(nx) || nx.when > until) {
            // Drained up to the horizon: the clock advances to it.
            if (until != kMaxCycle && now_ < until)
                now_ = until;
            return n;
        }
        if (!batchFire_ || !nx.fromRing) {
            fireNext(nx);
            ++n;
            continue;
        }
        // Batched drain: fire every live entry at this cycle with one
        // bucket touch instead of re-scanning the occupancy bitmap per
        // event. ringHead_/size are re-read every iteration: firing an
        // event may append same-cycle entries to this bucket, and a
        // re-entrant ring sweep (a deschedule inside an event) may
        // compact it and reset ringHead_. The vector object itself is
        // stable — ring_ never resizes.
        const std::uint32_t b = nx.bucket;
        now_ = nx.when;
        std::vector<BucketEntry> &bucket = ring_[b];
        for (;;) {
            const std::uint32_t h = ringHead_[b];
            if (h >= bucket.size())
                break;
            const BucketEntry e = bucket[h];
            ringHead_[b] = h + 1;
            --ringCount_;
            if (slots_[e.slot].gen != e.gen) {
                fugu_assert(ringStale_ > 0);
                --ringStale_;
                continue;
            }
            fireSlot(e.slot);
            if (++n >= max_events)
                return n; // consumed prefix is dropped by findNext
        }
        bucket.clear();
        ringHead_[b] = 0;
        occ_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }
    // Cut short by max_events: the clock stays at the last event.
    return n;
}

} // namespace fugu
