/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef FUGU_SIM_TYPES_HH
#define FUGU_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace fugu
{

/** Simulation time, in processor cycles. */
using Cycle = std::uint64_t;

/** A machine word. FUGU/Alewife (Sparcle) words are 32 bits. */
using Word = std::uint32_t;

/** Index of a node (processor) within the machine. */
using NodeId = std::uint16_t;

/**
 * Group identifier. A GID labels a group of processes (virtual
 * processors) operating together: the hardware stamps it on every
 * outgoing message and checks it at the receiver.
 */
using Gid = std::uint16_t;

/** GID reserved for the operating system itself. */
inline constexpr Gid kKernelGid = 0;

/** Sentinel for "no cycle" / "infinitely far in the future". */
inline constexpr Cycle kMaxCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid node. */
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

} // namespace fugu

#endif // FUGU_SIM_TYPES_HH
