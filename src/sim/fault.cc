#include "sim/fault.hh"

#include "sim/config.hh"
#include "sim/log.hh"

namespace fugu::sim
{

void
bindConfig(Binder &b, FaultConfig &c)
{
    b.item("enabled", c.enabled,
           "master switch for deterministic fault injection");
    b.item("seed", c.seed,
           "fault RNG seed; 0 derives it from machine.seed");
    b.item("delay_jitter_prob", c.delayJitterProb,
           "per-packet chance of extra delivery delay (user net)");
    b.item("delay_jitter_max", c.delayJitterMax,
           "max extra delay per jittered packet", "cycles");
    b.item("input_full_prob", c.inputFullProb,
           "per-arrival chance the NI input queue feigns full");
    b.item("input_full_cycles", c.inputFullCycles,
           "length of one input-queue-full burst", "cycles");
    b.item("output_full_prob", c.outputFullProb,
           "per-tick per-node chance the NI output feigns full");
    b.item("output_full_cycles", c.outputFullCycles,
           "length of one output-full burst", "cycles");
    b.item("frame_deny_prob", c.frameDenyProb,
           "per-allocation chance the frame pool feigns exhaustion");
    b.item("divert_storm_prob", c.divertStormProb,
           "per-tick per-node chance of forcing buffered mode");
    b.item("atom_timeout_prob", c.atomTimeoutProb,
           "per-tick per-node chance of a forced atomicity timeout");
    b.item("page_fault_prob", c.pageFaultProb,
           "per-dispatch chance of a page fault in the handler path");
    b.item("tick_interval", c.tickInterval,
           "spacing of the per-node fault ticks", "cycles");
}

FaultInjector::Stats::Stats(StatGroup *parent)
    : group("faults", parent),
      jitteredPackets(&group, "jittered_packets",
                      "packets given extra delivery delay"),
      inputBursts(&group, "input_bursts",
                  "NI input-queue-full bursts opened"),
      outputBursts(&group, "output_bursts",
                   "NI output-full bursts opened"),
      frameDenies(&group, "frame_denies",
                  "frame allocations denied"),
      divertStorms(&group, "divert_storms",
                   "forced transitions into buffered mode"),
      timeoutStorms(&group, "timeout_storms",
                    "forced atomicity timeouts"),
      handlerFaults(&group, "handler_faults",
                    "page faults injected into handler dispatch")
{
}

FaultInjector::FaultInjector(EventQueue &eq, const FaultConfig &cfg,
                             std::uint64_t machine_seed, unsigned nodes,
                             StatGroup *stat_parent)
    : stats(stat_parent),
      eq_(eq),
      cfg_(cfg),
      rng_(cfg.seed ? cfg.seed : machine_seed ^ 0xfa017fa017ULL),
      inputDenyUntil_(nodes, 0),
      outputDenyUntil_(nodes, 0)
{
    fugu_assert(!cfg_.enabled || cfg_.tickInterval > 0,
                "fault.tick_interval must be positive");
}

Cycle
FaultInjector::packetJitter()
{
    if (!bernoulli(cfg_.delayJitterProb) || cfg_.delayJitterMax == 0)
        return 0;
    ++stats.jitteredPackets;
    return rng_.uniform(1, cfg_.delayJitterMax);
}

bool
FaultInjector::inputDenied(NodeId node)
{
    const Cycle now = eq_.now();
    if (now < inputDenyUntil_[node])
        return true;
    if (!bernoulli(cfg_.inputFullProb))
        return false;
    ++stats.inputBursts;
    const Cycle until = now + cfg_.inputFullCycles;
    inputDenyUntil_[node] = until;
    // The network only re-offers a refused packet when told space has
    // freed up; a fault burst has no real consumer to do that, so
    // schedule the nudge for the instant the burst expires.
    if (inputRetry_)
        eq_.scheduleFn([this, node] { inputRetry_(node); }, until,
                       "fault-input-retry");
    return true;
}

bool
FaultInjector::outputDenied(NodeId node) const
{
    return eq_.now() < outputDenyUntil_[node];
}

bool
FaultInjector::frameDenied()
{
    if (!bernoulli(cfg_.frameDenyProb))
        return false;
    ++stats.frameDenies;
    return true;
}

bool
FaultInjector::drawOutputDeny()
{
    return bernoulli(cfg_.outputFullProb);
}

void
FaultInjector::openOutputWindow(NodeId node)
{
    ++stats.outputBursts;
    outputDenyUntil_[node] = eq_.now() + cfg_.outputFullCycles;
}

bool
FaultInjector::drawDivertStorm()
{
    if (!bernoulli(cfg_.divertStormProb))
        return false;
    ++stats.divertStorms;
    return true;
}

bool
FaultInjector::drawAtomTimeout()
{
    if (!bernoulli(cfg_.atomTimeoutProb))
        return false;
    ++stats.timeoutStorms;
    return true;
}

bool
FaultInjector::drawHandlerPageFault()
{
    if (!bernoulli(cfg_.pageFaultProb))
        return false;
    ++stats.handlerFaults;
    return true;
}

} // namespace fugu::sim
