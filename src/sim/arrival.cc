#include "sim/arrival.hh"

#include <cmath>

#include "sim/config.hh"
#include "sim/log.hh"

namespace fugu::sim
{

void
bindConfig(Binder &b, ArrivalConfig &c)
{
    b.item("mix", c.mix,
           "interarrival mix: poisson, bursty (Markov-modulated "
           "on/off) or diurnal (sinusoidal ramp)");
    b.item("rate_per_kcycle", c.ratePerKcycle,
           "mean offered load per generator", "arrivals/kcycle");
    b.item("burst_duty", c.burstDuty,
           "bursty: long-run fraction of time in the on state");
    b.item("burst_boost", c.burstBoost,
           "bursty: on-state rate as a multiple of the off-state "
           "rate");
    b.item("burst_len_kcycles", c.burstLenKcycles,
           "bursty: mean on-state dwell time", "kcycles");
    b.item("diurnal_period_kcycles", c.diurnalPeriodKcycles,
           "diurnal: sinusoid period", "kcycles");
    b.item("diurnal_amp", c.diurnalAmp,
           "diurnal: amplitude (peak = rate*(1+amp))");
    b.item("keys", c.keys, "key-popularity universe size");
    b.item("zipf_theta", c.zipfTheta,
           "Zipf skew in [0,1); 0 = uniform (YCSB default 0.99)");
}

namespace
{

/** Generalized harmonic number sum_{i=1..n} 1/i^theta. */
double
zeta(std::uint64_t n, double theta)
{
    double z = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
        z += 1.0 / std::pow(static_cast<double>(i), theta);
    return z;
}

} // namespace

ArrivalProcess::ArrivalProcess(const ArrivalConfig &cfg,
                               std::uint64_t stream)
    : cfg_(cfg),
      rng_(cfg.seed ^ (0xa0761d6478bd642fULL * (stream + 1))),
      keyRng_(cfg.seed ^ (0xe7037ed1a0b428dbULL * (stream + 1)))
{
    if (!(cfg_.ratePerKcycle > 0))
        fugu_fatal("arrival.rate_per_kcycle must be positive");
    if (cfg_.keys < 1)
        fugu_fatal("arrival.keys must be >= 1");
    if (!(cfg_.zipfTheta >= 0.0 && cfg_.zipfTheta < 1.0))
        fugu_fatal("arrival.zipf_theta must be in [0,1)");
    lambda_ = cfg_.ratePerKcycle / 1000.0;

    if (cfg_.mix == "poisson") {
        mix_ = Mix::Poisson;
    } else if (cfg_.mix == "bursty") {
        mix_ = Mix::Bursty;
        const double d = cfg_.burstDuty;
        if (!(d > 0 && d < 1))
            fugu_fatal("arrival.burst_duty must be in (0,1)");
        if (!(cfg_.burstBoost >= 1))
            fugu_fatal("arrival.burst_boost must be >= 1");
        if (!(cfg_.burstLenKcycles > 0))
            fugu_fatal("arrival.burst_len_kcycles must be positive");
        // Pick on/off rates so the long-run mean equals lambda_:
        // d*lamOn + (1-d)*lamOff == lambda, lamOn == boost*lamOff.
        lamOff_ = lambda_ / (d * cfg_.burstBoost + (1.0 - d));
        lamOn_ = cfg_.burstBoost * lamOff_;
        dwellOn_ = cfg_.burstLenKcycles * 1000.0;
        dwellOff_ = dwellOn_ * (1.0 - d) / d;
        on_ = false;
        stateLeft_ = expDraw(1.0 / dwellOff_);
    } else if (cfg_.mix == "diurnal") {
        mix_ = Mix::Diurnal;
        if (!(cfg_.diurnalAmp >= 0 && cfg_.diurnalAmp < 1))
            fugu_fatal("arrival.diurnal_amp must be in [0,1)");
        if (!(cfg_.diurnalPeriodKcycles > 0))
            fugu_fatal("arrival.diurnal_period_kcycles must be positive");
        lamMax_ = lambda_ * (1.0 + cfg_.diurnalAmp);
        periodCycles_ = cfg_.diurnalPeriodKcycles * 1000.0;
    } else {
        fugu_fatal("unknown arrival.mix '", cfg_.mix,
                   "' (expected poisson, bursty or diurnal)");
    }

    if (cfg_.zipfTheta > 0 && cfg_.keys > 1) {
        zetaN_ = zeta(cfg_.keys, cfg_.zipfTheta);
        zeta2_ = zeta(2, cfg_.zipfTheta);
        zipfAlpha_ = 1.0 / (1.0 - cfg_.zipfTheta);
        zipfEta_ =
            (1.0 -
             std::pow(2.0 / static_cast<double>(cfg_.keys),
                      1.0 - cfg_.zipfTheta)) /
            (1.0 - zeta2_ / zetaN_);
    }
}

double
ArrivalProcess::expDraw(double lam)
{
    // real() is in [0,1); 1-u is in (0,1], so the log is finite.
    return -std::log(1.0 - rng_.real()) / lam;
}

Cycle
ArrivalProcess::nextGap()
{
    double gap = 0;
    switch (mix_) {
      case Mix::Poisson:
        gap = expDraw(lambda_);
        break;
      case Mix::Bursty: {
        // Exponential draws are memoryless, so an arrival falling
        // past the current state's end is discarded: advance to the
        // boundary, flip the state, and redraw at the new rate.
        double d = expDraw(on_ ? lamOn_ : lamOff_);
        while (d > stateLeft_) {
            gap += stateLeft_;
            on_ = !on_;
            stateLeft_ = expDraw(1.0 / (on_ ? dwellOn_ : dwellOff_));
            d = expDraw(on_ ? lamOn_ : lamOff_);
        }
        stateLeft_ -= d;
        gap += d;
        break;
      }
      case Mix::Diurnal: {
        // Thinning (Lewis–Shedler): propose at the peak rate, accept
        // with probability lambda(t)/lamMax. The virtual clock t_
        // tracks the proposal process from the generator's start.
        for (;;) {
            const double step = expDraw(lamMax_);
            gap += step;
            t_ += step;
            const double lam =
                lambda_ *
                (1.0 + cfg_.diurnalAmp *
                           std::sin(2.0 * M_PI * t_ / periodCycles_));
            if (rng_.real() * lamMax_ < lam)
                break;
        }
        break;
      }
    }
    return static_cast<Cycle>(gap) + 1;
}

std::uint64_t
ArrivalProcess::nextKey()
{
    if (cfg_.zipfTheta <= 0 || cfg_.keys == 1)
        return keyRng_.uniform(0, cfg_.keys - 1);
    // Gray et al.'s inverse-CDF approximation (the YCSB generator):
    // exact for ranks 0 and 1, closed-form for the tail.
    const double u = keyRng_.real();
    const double uz = u * zetaN_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, cfg_.zipfTheta))
        return 1;
    const std::uint64_t k = static_cast<std::uint64_t>(
        static_cast<double>(cfg_.keys) *
        std::pow(zipfEta_ * u - zipfEta_ + 1.0, zipfAlpha_));
    return k >= cfg_.keys ? cfg_.keys - 1 : k;
}

} // namespace fugu::sim
