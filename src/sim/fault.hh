/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultInjector perturbs one Machine with seeded, reproducible
 * adversity: packet delay jitter, NI input/output queue-full bursts,
 * frame-pool exhaustion, forced divert storms, atomicity-timeout
 * storms and mid-handler page faults, each at a configurable rate on
 * the scenario/config tree (fault.*). Every decision draws from one
 * private Rng inside the owning Machine's single-threaded event loop,
 * so a faulted run is bit-identical across reruns and FUGU_THREADS
 * settings — the whole point is to drive the two-case delivery
 * machinery through its mode-transition corners while the invariant
 * checker (glaze::InvariantChecker) watches.
 *
 * The injector sits in the sim layer so every component above it
 * (net, core, glaze) can hold a nullable pointer; hooks cost one
 * branch when no injector is attached. The OS's second network never
 * gets an injector: it must remain the guaranteed deadlock-free path
 * (Section 4.2), under fire as in real life.
 */

#ifndef FUGU_SIM_FAULT_HH
#define FUGU_SIM_FAULT_HH

#include <functional>
#include <vector>

#include "sim/event.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace fugu::sim
{

class Binder;

struct FaultConfig
{
    bool enabled = false;

    /** Injector RNG seed; 0 derives it from the machine seed. */
    std::uint64_t seed = 0;

    /** Per-packet chance of extra delivery delay (user net only). */
    double delayJitterProb = 0.0;

    /** Max extra delay per jittered packet. */
    Cycle delayJitterMax = 400;

    /** Per-arrival chance the NI input queue feigns "full". */
    double inputFullProb = 0.0;

    /** Length of one input-queue-full burst. */
    Cycle inputFullCycles = 600;

    /** Per-tick, per-node chance the NI output side feigns "full". */
    double outputFullProb = 0.0;

    /** Length of one output-full burst. */
    Cycle outputFullCycles = 800;

    /** Per-allocation chance the frame pool feigns exhaustion. */
    double frameDenyProb = 0.0;

    /** Per-tick, per-node chance of forcing divert (buffered) mode. */
    double divertStormProb = 0.0;

    /** Per-tick, per-node chance of forcing an atomicity timeout. */
    double atomTimeoutProb = 0.0;

    /** Per-dispatch chance of a page fault inside the handler path. */
    double pageFaultProb = 0.0;

    /** Spacing of the per-node fault ticks that drive the storms. */
    Cycle tickInterval = 3000;
};

/** Register FaultConfig's fields on the scenario/config tree. */
void bindConfig(Binder &b, FaultConfig &c);

class FaultInjector
{
  public:
    FaultInjector(EventQueue &eq, const FaultConfig &cfg,
                  std::uint64_t machine_seed, unsigned nodes,
                  StatGroup *stat_parent);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    const FaultConfig &config() const { return cfg_; }

    /// @name Inline hooks (called by net/core/glaze fault points)
    /// @{

    /** Extra delivery latency for the packet being sent (may be 0). */
    Cycle packetJitter();

    /**
     * Should the NI input queue at @p node refuse this arrival?
     * Opening a burst schedules a one-shot retry (the callback
     * registered with setInputRetry) for when the burst ends, so a
     * blocked channel head is re-offered exactly as after a real
     * queue-full episode.
     */
    bool inputDenied(NodeId node);

    /** Is @p node inside an output-full burst right now? */
    bool outputDenied(NodeId node) const;

    /**
     * Is @p node inside an input-full burst right now? Unlike
     * inputDenied this draws no randomness — it is a pure query for
     * callers (the head-of-line bypass) that must not perturb the
     * injector's stream.
     */
    bool
    inputBurstActive(NodeId node) const
    {
        return eq_.now() < inputDenyUntil_[node];
    }

    /** Should this frame allocation feign pool exhaustion? */
    bool frameDenied();

    /// @}
    /// @name Tick-driven draws (called by the Machine's fault tick)
    /// @{

    bool drawOutputDeny();
    void openOutputWindow(NodeId node);
    bool drawDivertStorm();
    bool drawAtomTimeout();

    /// @}

    /** Per-dispatch draw for a mid-handler page fault. */
    bool drawHandlerPageFault();

    /**
     * Register the input-burst-expiry callback (the Machine wires it
     * to Network::onSinkSpaceFreed for the faulted network).
     */
    void
    setInputRetry(std::function<void(NodeId)> cb)
    {
        inputRetry_ = std::move(cb);
    }

    struct Stats
    {
        explicit Stats(StatGroup *parent);
        StatGroup group;
        Scalar jitteredPackets;
        Scalar inputBursts;
        Scalar outputBursts;
        Scalar frameDenies;
        Scalar divertStorms;
        Scalar timeoutStorms;
        Scalar handlerFaults;
    };

    Stats stats;

  private:
    bool
    bernoulli(double p)
    {
        // Zero-rate classes must not consume randomness, or enabling
        // one fault class would perturb every other class's draws.
        return p > 0.0 && rng_.real() < p;
    }

    EventQueue &eq_;
    FaultConfig cfg_;
    Rng rng_;
    std::vector<Cycle> inputDenyUntil_;
    std::vector<Cycle> outputDenyUntil_;
    std::function<void(NodeId)> inputRetry_;
};

} // namespace fugu::sim

#endif // FUGU_SIM_FAULT_HH
