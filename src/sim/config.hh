/**
 * @file
 * sim::Config — the unified scenario/config layer.
 *
 * One typed, hierarchical parameter tree flows from the CLI to the
 * CostModel. Every config struct in the system registers its fields
 * once against a Binder (name, default, doc string, units); the tree
 * is populated from scenario files (simple `key = value` sections,
 * e.g. scenarios/fig7_skew.cfg), from CLI overrides (`--set
 * net.per_hop=4`), and from programmatic defaults, with precedence
 * CLI > file > default. Unknown keys and type mismatches are errors
 * that name the offending file and line.
 *
 * The same binder walk serves four purposes: register defaults,
 * apply overrides, list parameters (`--list-params`), and dump the
 * effective post-fix configuration (`--dump-config`) in a format the
 * parser reads back, so any run can be replayed bit-identically from
 * its own dump.
 */

#ifndef FUGU_SIM_CONFIG_HH
#define FUGU_SIM_CONFIG_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace fugu::sim
{

/** Where an assignment came from (precedence: Cli > File). */
enum class ConfigSource : std::uint8_t
{
    File,
    Cli,
};

/** One raw `key = value` assignment with provenance for diagnostics. */
struct ConfigAssignment
{
    std::string key;
    std::string value;
    ConfigSource source = ConfigSource::File;
    std::string file; ///< scenario path, or "--set" for CLI values
    int line = 0;     ///< 1-based line in @c file (0 for CLI)
    bool consumed = false; ///< matched by a registered parameter

    /** "file:line" / "--set key=value" prefix for error messages. */
    std::string where() const;
};

/**
 * The raw parameter tree: an ordered list of assignments collected
 * from scenario files and --set flags. Typing and defaults live in
 * the Binder registrations; the tree itself only stores strings, so
 * it can be populated before any config struct exists.
 */
class Config
{
  public:
    /**
     * Load a scenario file. Lines are `key = value`, `[section]`
     * headers (prefixed onto following keys), blank lines, and `#`
     * comments. Later files override earlier ones.
     * @return false and set @p err on I/O or syntax errors.
     */
    bool loadFile(const std::string &path, std::string *err);

    /** loadFile on in-memory text; @p name labels diagnostics. */
    bool loadString(const std::string &text, const std::string &name,
                    std::string *err);

    /** Record a CLI `key=value` override (from --set). */
    bool setCli(const std::string &keyval, std::string *err);

    /**
     * The winning assignment for @p key — the last CLI one if any,
     * else the last file one — or null when the key was never set.
     */
    const ConfigAssignment *find(const std::string &key) const;

    /** Was @p key set by a scenario file or the CLI? */
    bool explicitlySet(const std::string &key) const
    {
        return find(key) != nullptr;
    }

    /** Mark every assignment of @p key consumed (binder bookkeeping). */
    void consume(const std::string &key);

    /**
     * After every binder ran: any unconsumed assignment is an unknown
     * key. @return false and set @p err naming its file and line.
     */
    bool checkUnknown(std::string *err) const;

    /**
     * checkUnknown restricted to keys whose first dotted segment is
     * in @p sections; others are skipped (tooling that does not know
     * a bench's local section uses this).
     */
    bool checkUnknownIn(const std::vector<std::string> &sections,
                        std::string *err,
                        std::vector<std::string> *skipped = nullptr) const;

    const std::vector<ConfigAssignment> &assignments() const
    {
        return asgs_;
    }

  private:
    std::vector<ConfigAssignment> asgs_;
};

/**
 * Registers typed parameters against a Config tree and visits the
 * live config structs. A bind function has the shape
 *
 *     void bindConfig(sim::Binder &b, NetworkConfig &c)
 *     {
 *         b.item("per_hop", c.perHop, "router latency per mesh hop",
 *                "cycles");
 *         ...
 *     }
 *
 * and is composed hierarchically with prefix sections:
 *
 *     { auto s = b.push("net"); bindConfig(b, cfg.net); }
 *
 * Run once in Apply mode, the walk registers each parameter (the
 * default is the field's value at bind time) and overwrites fields
 * that the tree sets. Run again in Dump mode over the final (post
 * Machine::fix) structs, it records the effective values for
 * --dump-config and --list-params.
 */
class Binder
{
  public:
    enum class Mode
    {
        Apply, ///< register defaults, then apply tree overrides
        Dump,  ///< record current field values as the effective tree
    };

    struct Param
    {
        std::string key;
        std::string value; ///< default (Apply) or effective (Dump)
        std::string units;
        std::string doc;
        bool overridden = false; ///< set by a file or the CLI
    };

    Binder(Config &cfg, Mode mode) : cfg_(cfg), mode_(mode) {}

    Binder(const Binder &) = delete;
    Binder &operator=(const Binder &) = delete;

    /** RAII dotted-prefix scope. */
    class Section
    {
      public:
        explicit Section(Binder &b) : b_(b) {}
        ~Section() { b_.popPrefix(); }
        Section(const Section &) = delete;
        Section &operator=(const Section &) = delete;

      private:
        Binder &b_;
    };

    [[nodiscard]] Section push(const std::string &name)
    {
        prefix_ += name;
        prefix_ += '.';
        return Section(*this);
    }

    /// @name Typed parameters
    /// @{
    void item(const std::string &key, bool &v, const std::string &doc,
              const std::string &units = "");
    void item(const std::string &key, unsigned &v,
              const std::string &doc, const std::string &units = "");
    void item(const std::string &key, std::uint64_t &v,
              const std::string &doc, const std::string &units = "");
    void item(const std::string &key, double &v,
              const std::string &doc, const std::string &units = "");
    void item(const std::string &key, std::string &v,
              const std::string &doc, const std::string &units = "");

    /** Comma-separated lists (sweep axes). */
    void list(const std::string &key, std::vector<double> &v,
              const std::string &doc, const std::string &units = "");
    void list(const std::string &key, std::vector<std::uint64_t> &v,
              const std::string &doc, const std::string &units = "");
    void list(const std::string &key, std::vector<unsigned> &v,
              const std::string &doc, const std::string &units = "");

    /** Enumeration stored by symbolic name. */
    template <typename E>
    void
    enumItem(const std::string &key, E &v,
             std::initializer_list<std::pair<const char *, E>> names,
             const std::string &doc)
    {
        std::vector<std::pair<std::string, int>> opts;
        for (const auto &[n, val] : names)
            opts.emplace_back(n, static_cast<int>(val));
        int raw = static_cast<int>(v);
        enumImpl(key, raw, opts, doc);
        v = static_cast<E>(raw);
    }
    /// @}

    bool ok() const { return err_.empty(); }
    const std::string &error() const { return err_; }

    /** Registered parameters, in registration order. */
    const std::vector<Param> &params() const { return params_; }

    /** Render params() as a replayable scenario file. */
    std::string dumpText() const;

    /** Render params() as the aligned --list-params table. */
    std::string listText() const;

  private:
    friend class Section;
    void popPrefix();

    /**
     * Shared walk: register (key, current-as-string, doc); in Apply
     * mode parse the winning override with @p parse (returns false on
     * type mismatch) and refresh the stored string.
     */
    void bindRaw(const std::string &key, std::string current,
                 const std::string &doc, const std::string &units,
                 const std::string &type_name,
                 bool (*parse)(const std::string &, void *), void *out);

    void enumImpl(const std::string &key, int &v,
                  const std::vector<std::pair<std::string, int>> &opts,
                  const std::string &doc);

    Config &cfg_;
    Mode mode_;
    std::string prefix_;
    std::string err_;
    std::vector<Param> params_;
};

/// @name Value formatting (stable: format(parse(format(x))) == format(x))
/// @{
std::string formatConfigDouble(double v);
std::string formatConfigList(const std::vector<double> &v);
std::string formatConfigList(const std::vector<std::uint64_t> &v);
std::string formatConfigList(const std::vector<unsigned> &v);
/// @}

} // namespace fugu::sim

#endif // FUGU_SIM_CONFIG_HH
