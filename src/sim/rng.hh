/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every source of randomness in the simulator draws from an explicitly
 * seeded Rng so that runs are reproducible bit-for-bit; nothing ever
 * consults wall-clock time or global generators.
 */

#ifndef FUGU_SIM_RNG_HH
#define FUGU_SIM_RNG_HH

#include <cstdint>

#include "sim/log.hh"

namespace fugu
{

/** Small, fast, seedable PRNG (xoshiro256** seeded via splitmix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi], inclusive. */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        fugu_assert(lo <= hi, "bad uniform range");
        const std::uint64_t span = hi - lo + 1;
        if (span == 0) // full 64-bit range
            return next();
        // Debiased via rejection sampling.
        const std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % span) - 1;
        std::uint64_t v;
        do {
            v = next();
        } while (v > limit);
        return lo + v % span;
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Derive an independent child generator (for per-node streams). */
    Rng
    fork()
    {
        return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace fugu

#endif // FUGU_SIM_RNG_HH
