/**
 * @file
 * Status/error reporting, following the gem5 convention:
 *
 *  - panic(): something happened that must never happen regardless of
 *    what the user does, i.e. a simulator bug. Aborts.
 *  - fatal(): the simulation cannot continue due to a user error (bad
 *    configuration, invalid arguments). Exits with an error code.
 *  - warn()/inform(): advisory messages; never stop the simulation.
 */

#ifndef FUGU_SIM_LOG_HH
#define FUGU_SIM_LOG_HH

#include <sstream>
#include <string>

namespace fugu
{

namespace detail
{

/** Concatenate a list of stream-printable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Test hook: when set, panic/fatal throw instead of aborting. */
void setThrowOnError(bool enable);
bool throwOnError();

} // namespace detail

/** Exception thrown by panic/fatal when the test hook is enabled. */
struct SimError
{
    std::string message;
};

#define fugu_panic(...)                                                     \
    ::fugu::detail::panicImpl(__FILE__, __LINE__,                           \
                              ::fugu::detail::concat(__VA_ARGS__))

#define fugu_fatal(...)                                                     \
    ::fugu::detail::fatalImpl(__FILE__, __LINE__,                           \
                              ::fugu::detail::concat(__VA_ARGS__))

#define fugu_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::fugu::detail::panicImpl(                                      \
                __FILE__, __LINE__,                                         \
                ::fugu::detail::concat("assertion failed: " #cond " ",     \
                                       ##__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace fugu

#endif // FUGU_SIM_LOG_HH
