/**
 * @file
 * WorkerPool: persistent threads for the parallel bound-weave engine.
 *
 * A Machine running with machine.par_shards > 1 dispatches one bound
 * phase per weave cycle — potentially hundreds of thousands of them —
 * so spawning threads per phase is out of the question. The pool keeps
 * its workers parked on a condition variable between phases; run()
 * publishes the phase closure, wakes everyone, participates from the
 * calling thread, and returns only when every index has been executed
 * (a full barrier, which is exactly the bound-phase contract).
 *
 * The pool shares one piece of global state with the experiment
 * harness's parallelFor: the per-thread "I am a worker" flag. Both use
 * it to keep nesting serial — a Machine built inside a harness worker
 * (runTrials fans trials out across machines) must not spawn a second
 * layer of threads, and a parallelFor issued from a pool worker must
 * not either. Serial fallback is always semantically identical: shard
 * phases share no mutable state, so executing them on one thread or
 * eight yields bit-identical simulations.
 */

#ifndef FUGU_SIM_POOL_HH
#define FUGU_SIM_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fugu::sim
{

/** Is the calling thread a pool/parallelFor worker? */
bool onWorkerThread();

/** Mark the calling thread (set by workers at startup). */
void setWorkerThread(bool on);

/**
 * Worker threads to use by default: the FUGU_THREADS environment
 * variable if set (>=1), else the hardware concurrency.
 */
unsigned defaultWorkerThreads();

class WorkerPool
{
  public:
    /** @param workers extra threads to spawn (0 = caller-only pool). */
    explicit WorkerPool(unsigned workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned
    workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Execute fn(i) for every i in [0, n), distributing indices over
     * the pool plus the calling thread; returns when all are done.
     * Must be called from the owning (non-worker) thread only; fn must
     * only touch per-index state.
     */
    void run(std::size_t n, const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t epoch_ = 0;
    bool stop_ = false;
    std::size_t n_ = 0;
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::atomic<std::size_t> next_{0};
    unsigned running_ = 0; // workers still inside the current epoch
    std::vector<std::thread> threads_;
};

} // namespace fugu::sim

#endif // FUGU_SIM_POOL_HH
