/**
 * @file
 * RingDeque: a power-of-2 ring buffer with deque surface.
 *
 * The simulator's hot FIFOs (network arrival queues, the OS NIC's
 * receive queue, virtual-buffer records) all follow the same pattern:
 * bounded-ish occupancy with unbounded throughput. std::deque pays an
 * allocator round-trip per block even in steady state (pop_front
 * frees the block push_back will re-allocate); this ring grows
 * geometrically to the high-water mark once and then never touches
 * the allocator again, keeps elements contiguous (one or two cache
 * lines per access), and supports the random access swapOut-style
 * scans need.
 */

#ifndef FUGU_SIM_RING_HH
#define FUGU_SIM_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace fugu::sim
{

template <typename T>
class RingDeque
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    T &back() { return (*this)[count_ - 1]; }
    const T &back() const { return (*this)[count_ - 1]; }

    /** Index from the front; @p i must be < size(). */
    T &operator[](std::size_t i)
    {
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    const T &operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void
    push_back(T v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_++) & (buf_.size() - 1)] = std::move(v);
    }

    void
    pop_front()
    {
        buf_[head_] = T{}; // drop held resources promptly
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

    /** Move the front element out and pop it. */
    T
    take_front()
    {
        T v = std::move(buf_[head_]);
        pop_front();
        return v;
    }

    void
    clear()
    {
        while (count_ > 0)
            pop_front();
    }

    /**
     * Remove the element at index @p i (from the front), preserving
     * the relative order of the rest: elements before it shift back
     * one slot and the vacated front is popped. O(i) moves.
     */
    void
    remove_at(std::size_t i)
    {
        for (std::size_t k = i; k > 0; --k)
            (*this)[k] = std::move((*this)[k - 1]);
        pop_front();
    }

    /** Forward iteration, front to back (for range-for scans). */
    template <typename RD, typename V>
    class Iter
    {
      public:
        Iter(RD *rd, std::size_t i) : rd_(rd), i_(i) {}
        V &operator*() const { return (*rd_)[i_]; }
        V *operator->() const { return &(*rd_)[i_]; }
        Iter &operator++() { ++i_; return *this; }
        bool operator!=(const Iter &o) const { return i_ != o.i_; }
        bool operator==(const Iter &o) const { return i_ == o.i_; }

      private:
        RD *rd_;
        std::size_t i_;
    };

    using iterator = Iter<RingDeque, T>;
    using const_iterator = Iter<const RingDeque, const T>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count_}; }

  private:
    void
    grow()
    {
        std::vector<T> nb(buf_.empty() ? 8 : buf_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            nb[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(nb);
        head_ = 0;
    }

    std::vector<T> buf_; // power-of-2 size once non-empty
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace fugu::sim

#endif // FUGU_SIM_RING_HH
