/**
 * @file
 * ShardMap: the node -> shard partition used by the parallel engine.
 *
 * Nodes are split into contiguous, near-equal blocks: shard s owns
 * nodes [ceil(s*nodes/shards), ceil((s+1)*nodes/shards)). Contiguity
 * matters twice over: mesh neighbours tend to share a shard (so most
 * traffic stays intra-shard and never needs the weave), and the
 * partition is a pure function of (nodes, shards) — no RNG, no load
 * feedback — so a given machine.par_shards always produces the same
 * shard assignment and therefore the same simulation.
 */

#ifndef FUGU_SIM_SHARD_HH
#define FUGU_SIM_SHARD_HH

#include <cstdint>

#include "sim/types.hh"

namespace fugu::sim
{

struct ShardMap
{
    unsigned nodes = 1;
    unsigned shards = 1;

    /** Shard owning @p n. */
    unsigned
    of(NodeId n) const
    {
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(n) * shards) / nodes);
    }

    /** First node of shard @p s (== one past the last of s-1). */
    unsigned
    firstNode(unsigned s) const
    {
        // Inverse of of(): smallest n with n*shards >= s*nodes.
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(s) * nodes + shards - 1) /
            shards);
    }
};

} // namespace fugu::sim

#endif // FUGU_SIM_SHARD_HH
