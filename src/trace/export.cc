#include "trace/export.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <unordered_map>

namespace fugu::trace
{

// ---------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------

namespace
{

void
putU16(std::ostream &os, std::uint16_t v)
{
    char b[2] = {static_cast<char>(v & 0xff),
                 static_cast<char>(v >> 8)};
    os.write(b, 2);
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(b, 4);
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(b, 8);
}

bool
getBytes(std::istream &is, unsigned char *b, std::size_t n)
{
    is.read(reinterpret_cast<char *>(b), static_cast<std::streamsize>(n));
    return static_cast<std::size_t>(is.gcount()) == n;
}

std::uint64_t
loadLe(const unsigned char *b, unsigned n)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

} // namespace

void
writeBinary(std::ostream &os, const TraceBuffer &buf)
{
    const std::string &tag = buf.tag();
    putU32(os, kBinaryMagic);
    putU32(os, tag.empty() ? kBinaryVersion : kBinaryVersionTagged);
    putU64(os, buf.size());
    if (!tag.empty()) {
        putU32(os, static_cast<std::uint32_t>(tag.size()));
        os.write(tag.data(),
                 static_cast<std::streamsize>(tag.size()));
    }
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const TraceEvent &e = buf[i];
        putU64(os, e.ts);
        putU64(os, e.msg);
        putU32(os, e.aux);
        putU16(os, e.node);
        os.put(static_cast<char>(e.type));
        os.put(static_cast<char>(e.reason));
    }
}

bool
readBinary(std::istream &is, std::vector<TraceEvent> &out,
           std::string *err, std::string *tag)
{
    auto fail = [&](const char *what) {
        if (err)
            *err = what;
        return false;
    };
    if (tag)
        tag->clear();
    unsigned char hdr[16];
    if (!getBytes(is, hdr, sizeof(hdr)))
        return fail("truncated header");
    if (loadLe(hdr, 4) != kBinaryMagic)
        return fail("bad magic (not a fugutrace binary)");
    const std::uint64_t version = loadLe(hdr + 4, 4);
    if (version != kBinaryVersion && version != kBinaryVersionTagged)
        return fail("unsupported trace version");
    const std::uint64_t count = loadLe(hdr + 8, 8);
    if (version == kBinaryVersionTagged) {
        unsigned char lenb[4];
        if (!getBytes(is, lenb, sizeof(lenb)))
            return fail("truncated run-tag length");
        const std::uint64_t len = loadLe(lenb, 4);
        // Untrusted length: a run tag is a short label, never megabytes.
        if (len > 4096)
            return fail("implausible run-tag length");
        std::string t(static_cast<std::size_t>(len), '\0');
        if (len && !getBytes(is,
                             reinterpret_cast<unsigned char *>(&t[0]),
                             static_cast<std::size_t>(len)))
            return fail("truncated run tag");
        if (tag)
            *tag = std::move(t);
    }
    out.clear();
    // The header's count is untrusted input: a corrupt/hostile value
    // must not drive a multi-GB reserve. Cap the pre-allocation; the
    // read loop below still detects genuine truncation record by
    // record.
    out.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, 1u << 20)));
    for (std::uint64_t i = 0; i < count; ++i) {
        unsigned char rec[24];
        if (!getBytes(is, rec, sizeof(rec)))
            return fail("truncated record");
        TraceEvent e;
        e.ts = loadLe(rec, 8);
        e.msg = loadLe(rec + 8, 8);
        e.aux = static_cast<std::uint32_t>(loadLe(rec + 16, 4));
        e.node = static_cast<std::uint16_t>(loadLe(rec + 20, 2));
        e.type = rec[22];
        e.reason = rec[23];
        out.push_back(e);
    }
    return true;
}

bool
readBinaryFile(const std::string &path, std::vector<TraceEvent> &out,
               std::string *err, std::string *tag)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    return readBinary(is, out, err, tag);
}

// ---------------------------------------------------------------------
// Chrome trace-event JSON (Perfetto-loadable)
// ---------------------------------------------------------------------

void
writeJson(std::ostream &os, const TraceBuffer &buf)
{
    os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
       << "\"tool\":\"fugutrace\",\"events\":" << buf.size()
       << ",\"dropped\":" << buf.dropped() << "},\"traceEvents\":[";

    // One metadata record per node seen, so Perfetto labels tracks.
    std::uint16_t max_node = 0;
    for (std::size_t i = 0; i < buf.size(); ++i)
        max_node = std::max(max_node, buf[i].node);
    bool first = true;
    for (std::uint16_t n = 0; n <= max_node; ++n) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << n << ",\"args\":{\"name\":\"node "
           << n << "\"}}";
    }

    for (std::size_t i = 0; i < buf.size(); ++i) {
        const TraceEvent &e = buf[i];
        const Type t = static_cast<Type>(e.type);
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << toString(t) << "\",";
        if (t == Type::Dispatch) {
            // Handler span: aux carries the duration (high bit tags
            // the buffered path), the record is stamped at span end.
            const std::uint32_t dur = e.aux & 0x7fffffffu;
            const bool buffered = (e.aux & 0x80000000u) != 0;
            const Cycle start = e.ts >= dur ? e.ts - dur : 0;
            os << "\"ph\":\"X\",\"ts\":" << start << ",\"dur\":" << dur
               << ",\"pid\":0,\"tid\":" << e.node
               << ",\"args\":{\"path\":\""
               << (buffered ? "buffered" : "direct") << "\"}}";
            continue;
        }
        os << "\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.ts
           << ",\"pid\":0,\"tid\":" << e.node << ",\"args\":{";
        bool comma = false;
        auto arg = [&](const char *k) -> std::ostream & {
            if (comma)
                os << ",";
            comma = true;
            os << "\"" << k << "\":";
            return os;
        };
        if (e.msg)
            arg("msg") << e.msg;
        if (e.reason)
            arg("reason")
                << "\"" << toString(static_cast<DivertReason>(e.reason))
                << "\"";
        arg("aux") << e.aux;
        os << "}}";
    }
    os << "]}\n";
}

bool
writeTraceFiles(const std::string &path, const TraceBuffer &buf,
                std::string *err)
{
    {
        std::ofstream bin(path, std::ios::binary);
        if (!bin) {
            if (err)
                *err = "cannot write " + path;
            return false;
        }
        writeBinary(bin, buf);
    }
    {
        std::ofstream js(path + ".json");
        if (!js) {
            if (err)
                *err = "cannot write " + path + ".json";
            return false;
        }
        writeJson(js, buf);
    }
    return true;
}

// ---------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------

std::uint64_t
Summary::totalDiverts() const
{
    std::uint64_t n = 0;
    for (std::uint64_t v : divertByReason)
        n += v;
    return n;
}

namespace
{

LatencyStats
percentiles(std::vector<Cycle> &lat)
{
    LatencyStats out;
    out.count = lat.size();
    if (lat.empty())
        return out;
    std::sort(lat.begin(), lat.end());
    auto at = [&](double p) {
        const std::size_t idx = static_cast<std::size_t>(
            p * static_cast<double>(lat.size() - 1));
        return lat[idx];
    };
    out.p50 = at(0.50);
    out.p95 = at(0.95);
    out.p99 = at(0.99);
    out.max = lat.back();
    return out;
}

} // namespace

Summary
summarize(const std::vector<TraceEvent> &events)
{
    Summary s;
    s.events = events.size();
    if (!events.empty()) {
        s.firstTs = events.front().ts;
        s.lastTs = events.back().ts;
    }

    std::unordered_map<std::uint64_t, Cycle> injectTs;
    std::vector<Cycle> fast, buffered;
    struct GidAccum
    {
        std::uint64_t fast = 0;
        std::uint64_t buffered = 0;
        std::vector<Cycle> lat;
        std::vector<Cycle> latFast;
        std::vector<Cycle> latBuf;
    };
    std::map<Gid, GidAccum> byGid;
    struct ChanState
    {
        unsigned inFlight = 0;
        unsigned peak = 0;
    };
    std::map<std::uint32_t, ChanState> chans;

    for (const TraceEvent &e : events) {
        if (e.type < kNumTypes)
            ++s.byType[e.type];
        const Type t = static_cast<Type>(e.type);
        switch (t) {
          case Type::Inject: {
            injectTs[e.msg] = e.ts;
            const NodeId dst = static_cast<NodeId>(e.aux >> 16);
            const unsigned words = e.aux & 0xffffu;
            ChanState &c =
                chans[(static_cast<std::uint32_t>(e.node) << 16) | dst];
            c.inFlight += words;
            c.peak = std::max(c.peak, c.inFlight);
            break;
          }
          case Type::NetAccept: {
            const NodeId src = static_cast<NodeId>(e.aux >> 16);
            const unsigned words = e.aux & 0xffffu;
            ChanState &c =
                chans[(static_cast<std::uint32_t>(src) << 16) | e.node];
            c.inFlight -= std::min(c.inFlight, words);
            break;
          }
          case Type::Divert:
            if (e.reason < kNumReasons)
                ++s.divertByReason[e.reason];
            break;
          case Type::ModeEnter:
            if (e.reason < kNumReasons)
                ++s.modeEnterByReason[e.reason];
            break;
          case Type::DirectExtract:
          case Type::BufExtract: {
            GidAccum &g = byGid[extractAuxGid(e.aux)];
            (t == Type::DirectExtract ? g.fast : g.buffered) += 1;
            auto it = injectTs.find(e.msg);
            if (it == injectTs.end())
                break; // inject lost to ring wrap-around
            const Cycle lat = e.ts - it->second;
            (t == Type::DirectExtract ? fast : buffered).push_back(lat);
            g.lat.push_back(lat);
            (t == Type::DirectExtract ? g.latFast : g.latBuf)
                .push_back(lat);
            injectTs.erase(it);
            break;
          }
          default:
            break;
        }
    }

    s.fastLatency = percentiles(fast);
    s.bufferedLatency = percentiles(buffered);
    for (auto &[gid, g] : byGid) {
        Summary::GidStats gs;
        gs.gid = gid;
        gs.fast = g.fast;
        gs.buffered = g.buffered;
        gs.latency = percentiles(g.lat);
        gs.fastLatency = percentiles(g.latFast);
        gs.bufferedLatency = percentiles(g.latBuf);
        s.byGid.push_back(gs);
    }
    for (const auto &[key, c] : chans)
        s.channels.push_back({static_cast<NodeId>(key >> 16),
                              static_cast<NodeId>(key & 0xffffu),
                              c.peak});
    return s;
}

namespace
{

/** Deterministic one-decimal percentage (no locale/float formatting). */
std::string
pctTenths(double pct)
{
    const std::uint64_t tenths =
        static_cast<std::uint64_t>(pct * 10.0 + 0.5);
    return std::to_string(tenths / 10) + "." +
           std::to_string(tenths % 10);
}

} // namespace

void
printSummary(std::ostream &os, const Summary &s)
{
    if (!s.runTag.empty())
        os << "run tag: " << s.runTag << "\n";
    os << "events " << s.events << " (cycles " << s.firstTs << ".."
       << s.lastTs << ")\n";

    os << "\nper-type counts:\n";
    for (unsigned t = 0; t < kNumTypes; ++t) {
        if (s.byType[t])
            os << "  " << toString(static_cast<Type>(t)) << " "
               << s.byType[t] << "\n";
    }

    os << "\nbuffered entries: inserted " << s.totalDiverts()
       << ", drained "
       << s.byType[static_cast<unsigned>(Type::BufExtract)] << "\n";
    os << "buffered-entry causes (divert events): total "
       << s.totalDiverts() << "\n";
    for (unsigned r = 0; r < kNumReasons; ++r) {
        if (s.divertByReason[r])
            os << "  " << toString(static_cast<DivertReason>(r)) << " "
               << s.divertByReason[r] << "\n";
    }
    os << "mode entries by cause:\n";
    for (unsigned r = 0; r < kNumReasons; ++r) {
        if (s.modeEnterByReason[r])
            os << "  " << toString(static_cast<DivertReason>(r)) << " "
               << s.modeEnterByReason[r] << "\n";
    }

    auto lat = [&](const char *name, const LatencyStats &l) {
        os << name << ": n=" << l.count;
        if (l.count)
            os << " p50=" << l.p50 << " p95=" << l.p95
               << " p99=" << l.p99 << " max=" << l.max;
        else
            os << " p50=n/a p95=n/a p99=n/a max=n/a";
        os << "\n";
    };
    os << "\ndelivery latency (cycles, inject->extract):\n";
    lat("  fast path    ", s.fastLatency);
    lat("  buffered path", s.bufferedLatency);

    if (!s.byGid.empty()) {
        os << "\nper-GID extraction breakdown:\n";
        for (const auto &g : s.byGid) {
            const std::uint64_t n = g.fast + g.buffered;
            os << "  gid " << g.gid << ": extracted " << n << " (fast "
               << g.fast << ", buffered " << g.buffered << ", "
               << pctTenths(g.bufferedPct()) << "% buffered)";
            if (g.latency.count)
                os << " latency p50=" << g.latency.p50
                   << " p95=" << g.latency.p95
                   << " p99=" << g.latency.p99
                   << " max=" << g.latency.max;
            if (g.fastLatency.count)
                os << " fast-p99=" << g.fastLatency.p99;
            if (g.bufferedLatency.count)
                os << " buf-p99=" << g.bufferedLatency.p99;
            os << "\n";
        }
    }

    os << "\nchannel peak occupancy (words in flight):\n";
    unsigned shown = 0;
    std::vector<Summary::ChannelPeak> top = s.channels;
    std::stable_sort(top.begin(), top.end(),
                     [](const auto &a, const auto &b) {
                         return a.peakWords > b.peakWords;
                     });
    for (const auto &c : top) {
        if (shown++ == 10) {
            os << "  ... (" << s.channels.size() << " channels total)\n";
            break;
        }
        os << "  " << c.src << "->" << c.dst << " " << c.peakWords
           << "\n";
    }
}

void
printDiff(std::ostream &os, const Summary &a, const Summary &b)
{
    auto delta = [&](const char *name, std::uint64_t va,
                     std::uint64_t vb) {
        if (va == 0 && vb == 0)
            return;
        os << "  " << name << " " << va << " -> " << vb << " ("
           << (vb >= va ? "+" : "-")
           << (vb >= va ? vb - va : va - vb) << ")\n";
    };
    if (!a.runTag.empty() || !b.runTag.empty())
        os << "run tags: "
           << (a.runTag.empty() ? "(untagged)" : a.runTag) << " -> "
           << (b.runTag.empty() ? "(untagged)" : b.runTag) << "\n";
    os << "events " << a.events << " -> " << b.events << "\n";
    os << "per-type:\n";
    for (unsigned t = 0; t < kNumTypes; ++t)
        delta(toString(static_cast<Type>(t)), a.byType[t], b.byType[t]);
    os << "divert causes:\n";
    for (unsigned r = 0; r < kNumReasons; ++r)
        delta(toString(static_cast<DivertReason>(r)),
              a.divertByReason[r], b.divertByReason[r]);
    auto lat = [&](const char *name, const LatencyStats &la,
                   const LatencyStats &lb) {
        os << name << ": n " << la.count << " -> " << lb.count
           << ", p50 " << la.p50 << " -> " << lb.p50 << ", p99 "
           << la.p99 << " -> " << lb.p99 << "\n";
    };
    lat("fast latency", a.fastLatency, b.fastLatency);
    lat("buffered latency", a.bufferedLatency, b.bufferedLatency);
}

} // namespace fugu::trace
