/**
 * @file
 * fugutrace: message-lifecycle tracing.
 *
 * A Recorder captures fixed-size TraceEvents into a per-shard ring
 * buffer (one shard = one Machine = one deterministic single-threaded
 * simulation, so recording needs no synchronization and the trace
 * bytes are independent of the harness worker count). Components hold
 * a nullable `trace::Recorder *`: the runtime-disabled path is a
 * single null-check branch, and defining FUGU_TRACE_DISABLED compiles
 * every instrumentation point out entirely.
 *
 * Event timestamps come from the Machine's EventQueue, event order is
 * recording order, and nothing host-dependent (pointers, wall-clock,
 * thread ids) enters the buffer, so a trace is bit-identical across
 * runs and across FUGU_THREADS settings.
 */

#ifndef FUGU_TRACE_TRACE_HH
#define FUGU_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/types.hh"

namespace fugu::sim
{
class Binder;
}

namespace fugu::trace
{

/** What happened. Values are part of the binary format: append only. */
enum class Type : std::uint8_t
{
    Inject = 0,        ///< message committed to a network (node = src)
    NetAccept = 1,     ///< NI accepted an arrival into its input queue
    Divert = 2,        ///< mismatch path inserted into a virtual buffer
    DirectExtract = 3, ///< fast path: disposed straight off the NI
    BufExtract = 4,    ///< buffered path: drained from the vbuf
    Dispatch = 5,      ///< user handler completed (span; aux = cycles)
    AtomTimeout = 6,   ///< atomicity timer fired (revocation imminent)
    ModeEnter = 7,     ///< process entered buffered mode
    ModeExit = 8,      ///< process left buffered mode
    QuantumSwitch = 9, ///< gang-scheduler quantum switch taken
    KernelMsg = 10,    ///< kernel message dispatched (either network)
    PageFault = 11,    ///< page-fault trap serviced
    Overflow = 12,     ///< overflow control activated
    VbufPage = 13,     ///< vbuf page alloc / swap-out / page-in
    IrqDispatch = 14,  ///< interrupt handler dispatched (aux = line)
};

inline constexpr unsigned kNumTypes = 15;

/**
 * Why a message took (or a process entered) the buffered path. Doubles
 * as the buffered-entry cause stored on the Process so that later
 * Divert events of the same episode carry their cause. Values are part
 * of the binary format: append only.
 */
enum class DivertReason : std::uint8_t
{
    None = 0,
    GidMismatch = 1, ///< arrival for a descheduled process
    AtomTimeout = 2, ///< atomicity-timer revocation
    PageFault = 3,   ///< page fault inside an atomic section
    QuantumCarry = 4,///< quantum began with messages already buffered
    Config = 5,      ///< always-buffered ablation
    Forced = 6,      ///< fault injection forced the transition
};

inline constexpr unsigned kNumReasons = 7;

const char *toString(Type t);
const char *toString(DivertReason r);

/** VbufPage event subkinds (low 2 bits of aux). */
inline constexpr std::uint32_t kVbufAlloc = 0;
inline constexpr std::uint32_t kVbufSwapOut = 1;
inline constexpr std::uint32_t kVbufPageIn = 2;

/**
 * One fixed-size trace record. 24 bytes; the binary format writes the
 * fields little-endian in declaration order.
 */
struct TraceEvent
{
    Cycle ts = 0;           ///< EventQueue cycle of the record
    std::uint64_t msg = 0;  ///< message id (see msgId helpers), or 0
    std::uint32_t aux = 0;  ///< per-type payload (see Type docs)
    std::uint16_t node = 0; ///< node the event happened on
    std::uint8_t type = 0;  ///< Type
    std::uint8_t reason = 0;///< DivertReason

    bool
    operator==(const TraceEvent &o) const
    {
        return ts == o.ts && msg == o.msg && aux == o.aux &&
               node == o.node && type == o.type && reason == o.reason;
    }
};

/**
 * Message ids correlate lifecycle events of one packet. Each network
 * assigns a per-network injection sequence; the low bit tags which
 * network so user-net and OS-net sequences never collide.
 */
constexpr std::uint64_t
userMsgId(std::uint64_t seq)
{
    return seq << 1;
}

constexpr std::uint64_t
osMsgId(std::uint64_t seq)
{
    return (seq << 1) | 1;
}

/**
 * Extract events (DirectExtract/BufExtract) pack the receiving GID and
 * the delivery latency (inject to extract, cycles) into aux: the GID
 * in the top byte, the latency saturated into the low 24 bits. The
 * per-tenant breakdown in `tracetool summarize` attributes every
 * extraction without a matching Inject record (which a wrapped ring
 * may have dropped).
 */
constexpr std::uint32_t
packExtractAux(Gid gid, Cycle latency)
{
    const std::uint32_t g =
        gid > 0xff ? 0xffu : static_cast<std::uint32_t>(gid);
    const std::uint32_t lat =
        latency > 0xffffffull ? 0xffffffu
                              : static_cast<std::uint32_t>(latency);
    return (g << 24) | lat;
}

constexpr Gid
extractAuxGid(std::uint32_t aux)
{
    return static_cast<Gid>(aux >> 24);
}

constexpr Cycle
extractAuxLatency(std::uint32_t aux)
{
    return aux & 0xffffffu;
}

/** Recorder knobs, embedded in MachineConfig. */
struct Options
{
    bool enabled = false;

    /**
     * Ring capacity in events (24 bytes each). When a run records
     * more, the oldest events are overwritten; the drop count is
     * reported by the exporters. 0 means unbounded.
     */
    std::size_t maxEvents = 1u << 20;

    /**
     * Free-form label stamped into exported traces (e.g.
     * "backend=damq") so ablation runs stay distinguishable in
     * summaries and diffs. Empty (the default) keeps the version-1
     * binary format byte for byte; a tag writes a version-2 header.
     */
    std::string runTag;
};

/** Register the tracing knobs on the scenario/config tree. */
void bindConfig(sim::Binder &b, Options &c);

/**
 * Single-writer ring of TraceEvents. Storage grows in fixed chunks up
 * to the capacity, then wraps; a bounded run therefore keeps the most
 * recent `capacity` events. Growth is lazy so an idle recorder costs
 * one pointer vector.
 */
class TraceBuffer
{
  public:
    /** @param capacity max retained events; 0 = unbounded. */
    explicit TraceBuffer(std::size_t capacity) : cap_(capacity) {}

    void
    append(const TraceEvent &e)
    {
        slot(total_) = e;
        ++total_;
    }

    /** Events retained (<= capacity). */
    std::size_t
    size() const
    {
        if (cap_ == 0)
            return static_cast<std::size_t>(total_);
        return static_cast<std::size_t>(
            total_ < cap_ ? total_ : cap_);
    }

    /** Events ever recorded, including overwritten ones. */
    std::uint64_t total() const { return total_; }

    /** Events lost to ring wrap-around. */
    std::uint64_t dropped() const { return total_ - size(); }

    /** @param i 0 = oldest retained event. */
    const TraceEvent &
    operator[](std::size_t i) const
    {
        return const_cast<TraceBuffer *>(this)->slot(dropped() + i);
    }

    /** Copy the retained events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Run label carried into the exporters (may be empty). */
    const std::string &tag() const { return tag_; }
    void setTag(std::string tag) { tag_ = std::move(tag); }

  private:
    static constexpr std::size_t kChunk = std::size_t{1} << 16;

    TraceEvent &slot(std::uint64_t n);

    std::size_t cap_;
    std::uint64_t total_ = 0;
    std::vector<std::unique_ptr<TraceEvent[]>> chunks_;
    std::string tag_;
};

/** Stamps events with the owning Machine's simulated clock. */
class Recorder
{
  public:
    Recorder(const EventQueue &eq, const Options &opts)
        : eq_(eq), buf_(opts.maxEvents)
    {
        buf_.setTag(opts.runTag);
    }

    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    void
    record(NodeId node, Type t, std::uint64_t msg = 0,
           DivertReason r = DivertReason::None, std::uint32_t aux = 0)
    {
        TraceEvent e;
        e.ts = eq_.now();
        e.msg = msg;
        e.aux = aux;
        e.node = node;
        e.type = static_cast<std::uint8_t>(t);
        e.reason = static_cast<std::uint8_t>(r);
        buf_.append(e);
    }

    const TraceBuffer &buffer() const { return buf_; }

  private:
    const EventQueue &eq_;
    TraceBuffer buf_;
};

} // namespace fugu::trace

/**
 * Instrumentation-point gate: `rec` is a nullable trace::Recorder*.
 * Runtime-disabled cost is one predictable branch; compiling with
 * -DFUGU_TRACE_DISABLED removes the points entirely.
 */
#ifdef FUGU_TRACE_DISABLED
#define FUGU_TRACE(rec, ...)                                           \
    do {                                                               \
    } while (0)
#else
#define FUGU_TRACE(rec, ...)                                           \
    do {                                                               \
        if (rec)                                                       \
            (rec)->record(__VA_ARGS__);                                \
    } while (0)
#endif

#endif // FUGU_TRACE_TRACE_HH
