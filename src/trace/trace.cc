#include "trace/trace.hh"

#include "sim/config.hh"
#include "sim/log.hh"

namespace fugu::trace
{

void
bindConfig(sim::Binder &b, Options &c)
{
    b.item("enabled", c.enabled,
           "record message-lifecycle trace events");
    b.item("max_events", c.maxEvents,
           "trace ring capacity (0 = unbounded)", "events");
    b.item("run_tag", c.runTag,
           "label stamped into exported traces (e.g. backend=damq); "
           "empty keeps the version-1 binary format");
}

const char *
toString(Type t)
{
    switch (t) {
      case Type::Inject: return "inject";
      case Type::NetAccept: return "net_accept";
      case Type::Divert: return "divert";
      case Type::DirectExtract: return "direct_extract";
      case Type::BufExtract: return "buf_extract";
      case Type::Dispatch: return "dispatch";
      case Type::AtomTimeout: return "atom_timeout";
      case Type::ModeEnter: return "mode_enter";
      case Type::ModeExit: return "mode_exit";
      case Type::QuantumSwitch: return "quantum_switch";
      case Type::KernelMsg: return "kernel_msg";
      case Type::PageFault: return "page_fault";
      case Type::Overflow: return "overflow";
      case Type::VbufPage: return "vbuf_page";
      case Type::IrqDispatch: return "irq";
    }
    return "?";
}

const char *
toString(DivertReason r)
{
    switch (r) {
      case DivertReason::None: return "none";
      case DivertReason::GidMismatch: return "gid_mismatch";
      case DivertReason::AtomTimeout: return "atom_timeout";
      case DivertReason::PageFault: return "page_fault";
      case DivertReason::QuantumCarry: return "quantum_carry";
      case DivertReason::Config: return "config";
      case DivertReason::Forced: return "forced";
    }
    return "?";
}

TraceEvent &
TraceBuffer::slot(std::uint64_t n)
{
    const std::uint64_t idx = cap_ ? n % cap_ : n;
    const std::size_t chunk = static_cast<std::size_t>(idx / kChunk);
    while (chunks_.size() <= chunk)
        chunks_.push_back(std::make_unique<TraceEvent[]>(kChunk));
    return chunks_[chunk][static_cast<std::size_t>(idx % kChunk)];
}

std::vector<TraceEvent>
TraceBuffer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i)
        out.push_back((*this)[i]);
    return out;
}

} // namespace fugu::trace
