/**
 * @file
 * Trace exporters, reader, and analysis shared by the harness, the
 * tracetool binary, and the tests.
 *
 * Two side-by-side formats are written for every `--trace=FILE` run:
 *
 *  - FILE: compact binary ("FGTR"), 16-byte header + 24-byte
 *    little-endian records, readable by tracetool and readBinary();
 *  - FILE.json: Chrome trace-event JSON (the `traceEvents` array
 *    form), loadable directly in Perfetto / chrome://tracing.
 *
 * Both are byte-deterministic: integers only, no host state.
 */

#ifndef FUGU_TRACE_EXPORT_HH
#define FUGU_TRACE_EXPORT_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace fugu::trace
{

/**
 * Binary format magic and versions ("FGTR", little-endian u32).
 * Version 1 is header {magic, version, count} + 24-byte records.
 * Version 2 inserts a run-tag block ({u32 length, bytes}) between the
 * header and the records; it is only written when the recording
 * carried a non-empty tag, so untagged runs stay byte-identical with
 * every version-1 reader and golden.
 */
inline constexpr std::uint32_t kBinaryMagic = 0x52544746u;
inline constexpr std::uint32_t kBinaryVersion = 1;
inline constexpr std::uint32_t kBinaryVersionTagged = 2;

void writeBinary(std::ostream &os, const TraceBuffer &buf);
void writeJson(std::ostream &os, const TraceBuffer &buf);

/**
 * Parse a binary trace (version 1 or 2). A version-2 run tag is
 * stored into @p tag when non-null.
 * @return false (with @p err set) on bad magic/version/truncation.
 */
bool readBinary(std::istream &is, std::vector<TraceEvent> &out,
                std::string *err, std::string *tag = nullptr);

/** readBinary from a path. */
bool readBinaryFile(const std::string &path,
                    std::vector<TraceEvent> &out, std::string *err,
                    std::string *tag = nullptr);

/** Write both FILE (binary) and FILE.json for a recorded buffer. */
bool writeTraceFiles(const std::string &path, const TraceBuffer &buf,
                     std::string *err);

/** Exact percentiles over one latency population. */
struct LatencyStats
{
    std::uint64_t count = 0;
    Cycle p50 = 0;
    Cycle p95 = 0;
    Cycle p99 = 0;
    Cycle max = 0;
};

/** What `tracetool summarize` reports. */
struct Summary
{
    /** Run tag from a version-2 trace header (empty if untagged). */
    std::string runTag;

    std::uint64_t events = 0;
    Cycle firstTs = 0;
    Cycle lastTs = 0;

    std::array<std::uint64_t, kNumTypes> byType{};

    /** Divert events by cause (the buffered-entry attribution). */
    std::array<std::uint64_t, kNumReasons> divertByReason{};

    /** ModeEnter events by cause. */
    std::array<std::uint64_t, kNumReasons> modeEnterByReason{};

    /** Inject -> DirectExtract / BufExtract, matched by message id. */
    LatencyStats fastLatency;
    LatencyStats bufferedLatency;

    /**
     * Per-GID extraction breakdown (multi-tenant attribution for
     * serving runs): counts come from every extract event's packed
     * aux GID; latency percentiles from matched inject->extract
     * pairs only.
     */
    struct GidStats
    {
        Gid gid = 0;
        std::uint64_t fast = 0;     ///< DirectExtract count
        std::uint64_t buffered = 0; ///< BufExtract count
        LatencyStats latency;       ///< both paths combined
        /** Per-path split of the same matched pairs (isolation
         *  reporting: a victim's fast- and buffered-path inflation
         *  under an adversarial neighbour differ). */
        LatencyStats fastLatency;
        LatencyStats bufferedLatency;

        double
        bufferedPct() const
        {
            const std::uint64_t n = fast + buffered;
            return n ? 100.0 * static_cast<double>(buffered) /
                           static_cast<double>(n)
                     : 0.0;
        }
    };
    std::vector<GidStats> byGid; ///< sorted by gid

    /** Peak words in flight per (src,dst) channel, from Inject/NetAccept. */
    struct ChannelPeak
    {
        NodeId src = 0;
        NodeId dst = 0;
        unsigned peakWords = 0;
    };
    std::vector<ChannelPeak> channels; ///< sorted by (src,dst)

    std::uint64_t totalDiverts() const;
};

Summary summarize(const std::vector<TraceEvent> &events);

void printSummary(std::ostream &os, const Summary &s);

/** Side-by-side per-type / per-cause / latency deltas of two traces. */
void printDiff(std::ostream &os, const Summary &a, const Summary &b);

} // namespace fugu::trace

#endif // FUGU_TRACE_EXPORT_HH
