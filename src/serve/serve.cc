#include "serve/serve.hh"

#include <algorithm>
#include <deque>

#include "apps/common.hh"
#include "crl/crl.hh"
#include "sim/config.hh"
#include "sim/log.hh"

namespace fugu::serve
{

void
bindConfig(sim::Binder &b, ServeConfig &c)
{
    b.item("app", c.app, "serving flavour: kv | rpc");
    b.item("requests", c.requests,
           "measured requests per node (after warmup)");
    b.item("warmup", c.warmup, "unmeasured warmup requests per node");
    b.item("put_frac", c.putFrac,
           "kv: fraction of requests that are puts");
    b.item("shards_per_node", c.shardsPerNode,
           "kv: CRL shard regions per node");
    b.item("region_words", c.regionWords, "kv: words per shard region");
    b.item("server_cost", c.serverCost,
           "modelled service cost per request", "cycles");
    b.item("slo_cycles", c.sloCycles,
           "SLO threshold on request latency", "cycles");
}

void
ServeResult::merge(const ServeResult &o)
{
    offeredArrivals += o.offeredArrivals;
    completed += o.completed;
    sloMet += o.sloMet;
    servedBuffered += o.servedBuffered;
    puts += o.puts;
    localHits += o.localHits;
    firstArrival = std::min(firstArrival, o.firstArrival);
    lastReply = std::max(lastReply, o.lastReply);
    latFast.merge(o.latFast);
    latBuffered.merge(o.latBuffered);
}

ServeResult
mergeSlots(const std::vector<ServeResult> &slots)
{
    ServeResult out;
    for (const ServeResult &r : slots)
        out.merge(r);
    return out;
}

namespace
{

/// @name Request opcodes (payload word 0)
/// @{
constexpr Word kOpGet = 0;
constexpr Word kOpPut = 1;
constexpr Word kOpRpc = 2;
/// @}

/** splitmix-style key mix so adjacent keys scatter across shards. */
std::uint64_t
mixKey(std::uint64_t key)
{
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** One queued kv request awaiting the server thread. */
struct WorkItem
{
    std::uint64_t key;
    Word value;
    Word seq;
    NodeId src;
    Word op;
    bool buffered; ///< delivery case that served the request message
    bool local;    ///< client is this node; complete without a reply
};

struct ServeState
{
    ServeState(glaze::Process &p, unsigned nnodes, ServeConfig cfg,
               sim::ArrivalConfig acfg)
        : proc(p), nodes(nnodes), cfg(cfg), acfg(acfg), crl(p),
          barrier(p, nnodes), cv(p.threads()), workCv(p.threads()),
          opRng(cfg.seed ^ (0x94d049bb133111ebULL * (p.node() + 1)))
    {}

    glaze::Process &proc;
    unsigned nodes;
    ServeConfig cfg;
    sim::ArrivalConfig acfg;
    crl::Crl crl;
    apps::Barrier barrier;
    rt::CondVar cv;     ///< completion / shutdown progress
    rt::CondVar workCv; ///< kv server queue
    Rng opRng;          ///< op type + rpc destination draws

    unsigned totalShards = 0;
    std::deque<WorkItem> work;
    bool shutdown = false;
    bool workerDone = false;

    std::vector<Cycle> arrivalAt; ///< send timestamp per local seq
    std::uint64_t got = 0;        ///< local requests completed
    ServeResult res;              ///< this node's outcome

    crl::Rid
    shardOf(std::uint64_t key) const
    {
        return static_cast<crl::Rid>(mixKey(key) % totalShards);
    }

    NodeId
    homeOf(crl::Rid shard) const
    {
        return static_cast<NodeId>(shard % nodes);
    }

    /** A request's reply arrived (or completed locally). */
    void
    complete(Word seq, bool buffered)
    {
        const Cycle now = proc.cpu().now();
        if (seq >= cfg.warmup) {
            const Cycle lat = now - arrivalAt.at(seq);
            ++res.completed;
            if (buffered)
                res.latBuffered.sample(static_cast<double>(lat));
            else
                res.latFast.sample(static_cast<double>(lat));
            if (lat <= cfg.sloCycles)
                ++res.sloMet;
            res.lastReply = std::max(res.lastReply, now);
        }
        ++got;
        cv.notifyAll();
    }
};

/**
 * The kv server thread: drains the request queue, executing each
 * get/put inside a CRL section on the key's shard region. Runs as a
 * normal thread because CRL sections may block — request handlers
 * (upcall contexts) only enqueue.
 */
exec::Task
serveWorker(ServeState *s)
{
    auto &p = s->proc;
    for (;;) {
        while (s->work.empty() && !s->shutdown)
            co_await s->workCv.wait();
        if (s->work.empty())
            break;
        const WorkItem it = s->work.front();
        s->work.pop_front();
        co_await p.compute(s->cfg.serverCost);
        const crl::Rid rid = s->shardOf(it.key);
        const unsigned off = static_cast<unsigned>(
            mixKey(it.key ^ 0x5851f42d4c957f2dULL) %
            s->cfg.regionWords);
        if (it.op == kOpPut) {
            co_await s->crl.startWrite(rid);
            s->crl.write(rid, off, it.value);
            co_await s->crl.endWrite(rid);
        } else {
            co_await s->crl.startRead(rid);
            (void)s->crl.read(rid, off);
            co_await s->crl.endRead(rid);
        }
        if (it.local) {
            s->complete(it.seq, it.buffered);
        } else {
            net::PayloadVec payload{it.seq, it.buffered ? 1u : 0u};
            co_await p.port().send(it.src, kServeReply,
                                   std::move(payload));
        }
    }
    s->workerDone = true;
    s->cv.notifyAll();
}

exec::CoTask<void>
serveMain(glaze::Process &p, unsigned nnodes, ServeConfig cfg,
          sim::ArrivalConfig acfg,
          std::shared_ptr<std::vector<ServeResult>> slots)
{
    const bool kv = cfg.app == "kv";
    if (!kv && cfg.app != "rpc")
        fugu_fatal("unknown serve.app '", cfg.app,
                   "' (expected kv or rpc)");
    fugu_assert(slots && slots->size() == nnodes,
                "serving slots must have one entry per node");

    auto st = std::make_shared<ServeState>(p, nnodes, cfg, acfg);
    p.appData = st;
    ServeState *s = st.get();
    s->totalShards = std::max(1u, nnodes * cfg.shardsPerNode);

    if (kv) {
        // Symmetric region creation: shard r lives at node r % nnodes.
        for (crl::Rid rid = 0; rid < s->totalShards; ++rid)
            s->crl.createRegion(rid, s->homeOf(rid), cfg.regionWords);
        p.threads().spawn("serve-worker", rt::kPrioNormal,
                          serveWorker(s));
    }

    p.port().setHandler(
        kServeReq,
        [s, kv](core::UdmPort &port, NodeId src) -> exec::CoTask<void> {
            // Capture the delivery case before dispose: the OS may
            // flip the process back to direct mode underneath us.
            const bool buffered = port.buffered();
            const Word op = co_await port.read(0);
            const Word seq = co_await port.read(1);
            const Word key_lo = co_await port.read(2);
            const Word key_hi = co_await port.read(3);
            const Word value = co_await port.read(4);
            co_await port.dispose();
            if (buffered && seq >= s->cfg.warmup)
                ++s->res.servedBuffered;
            if (kv) {
                const std::uint64_t key =
                    key_lo |
                    (static_cast<std::uint64_t>(key_hi) << 32);
                s->work.push_back(WorkItem{key, value, seq, src, op,
                                           buffered, false});
                s->workCv.notifyAll();
            } else {
                co_await s->proc.compute(s->cfg.serverCost);
                net::PayloadVec payload{seq, buffered ? 1u : 0u};
                co_await port.send(src, kServeReply,
                                   std::move(payload));
            }
        });
    p.port().setHandler(
        kServeReply,
        [s](core::UdmPort &port, NodeId) -> exec::CoTask<void> {
            const Word seq = co_await port.read(0);
            const Word flags = co_await port.read(1);
            co_await port.dispose();
            s->complete(seq, flags & 1);
        });

    const unsigned total = cfg.warmup + cfg.requests;
    s->arrivalAt.assign(total, 0);

    // All handlers registered and regions created everywhere.
    co_await s->barrier.wait();

    sim::ArrivalProcess arr(acfg, p.node());
    Cycle sched = p.cpu().now();
    for (unsigned i = 0; i < total; ++i) {
        sched += arr.nextGap();
        // Open-loop pacing on a shared CPU: while waiting for the
        // next arrival, give the server thread the cycles (yield);
        // only model idle time when nothing else is runnable.
        for (;;) {
            const Cycle now = p.cpu().now();
            if (now >= sched)
                break;
            if (p.threads().hasRunnable())
                co_await p.threads().yield();
            else
                co_await p.compute(sched - p.cpu().now());
        }
        const std::uint64_t key = arr.nextKey();
        const bool is_put = kv && s->opRng.real() < cfg.putFrac;
        const Word op = kv ? (is_put ? kOpPut : kOpGet) : kOpRpc;
        const Word value = static_cast<Word>(mixKey(key));
        const Cycle t = p.cpu().now();
        s->arrivalAt[i] = t;
        if (i >= cfg.warmup) {
            ++s->res.offeredArrivals;
            s->res.firstArrival = std::min(s->res.firstArrival, t);
            if (is_put)
                ++s->res.puts;
        }
        if (kv) {
            const NodeId owner = s->homeOf(s->shardOf(key));
            if (owner == p.node()) {
                // Own-shard request: no network delivery; served by
                // the local queue and classified as the fast case.
                if (i >= cfg.warmup)
                    ++s->res.localHits;
                s->work.push_back(WorkItem{key, value,
                                           static_cast<Word>(i),
                                           p.node(), op, false, true});
                s->workCv.notifyAll();
            } else {
                net::PayloadVec payload{
                    op, static_cast<Word>(i),
                    static_cast<Word>(key),
                    static_cast<Word>(key >> 32), value};
                co_await p.port().send(owner, kServeReq,
                                       std::move(payload));
            }
        } else {
            NodeId dst =
                static_cast<NodeId>(s->opRng.uniform(0, nnodes - 2));
            if (dst >= p.node())
                ++dst; // uniform over the *other* nodes
            net::PayloadVec payload{op, static_cast<Word>(i), 0u, 0u,
                                    0u};
            co_await p.port().send(dst, kServeReq,
                                   std::move(payload));
        }
    }

    // Wait for this node's own requests to complete, then rendezvous:
    // once every node has completed, no request anywhere is in
    // flight, so res (including server-side counters) is final.
    while (s->got < total)
        co_await s->cv.wait();
    co_await s->barrier.wait();

    if (kv) {
        s->shutdown = true;
        s->workCv.notifyAll();
        while (!s->workerDone)
            co_await s->cv.wait();
    }

    // The caller reads the slots after the machine run completes.
    (*slots)[p.node()] = s->res;
}

} // namespace

glaze::AppBody
makeServingApp(unsigned nnodes, ServeConfig cfg,
               sim::ArrivalConfig arrival,
               std::shared_ptr<std::vector<ServeResult>> slots)
{
    return [nnodes, cfg, arrival, slots](glaze::Process &p) {
        return serveMain(p, nnodes, cfg, arrival, slots);
    };
}

} // namespace fugu::serve
