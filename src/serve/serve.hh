/**
 * @file
 * The open-loop serving tier: a sharded key-value store on CRL
 * regions and an RPC request/response application over UDM active
 * messages, both driven by sim::ArrivalProcess load generators.
 *
 * Unlike the closed-loop SPLASH-style workloads, every node here is a
 * front end for an open-loop client population: requests are injected
 * on the arrival process's schedule whether or not earlier requests
 * have completed, so offered load — not synchronization structure —
 * determines how hard the fast/buffered delivery crossover is pushed.
 * Each request is timestamped at generation and at reply, and its
 * latency is attributed to the delivery case that served the request
 * at the server (captured from UdmPort::buffered() in the request
 * handler), yielding the paper's central split: fast-case vs
 * buffered-case service under load.
 *
 * The "kv" application shards a key space across nnodes *
 * shards_per_node CRL regions; each key's requests are routed to the
 * shard's home node, where a dedicated server thread executes the
 * get/put inside a CRL read/write section (handlers never touch CRL —
 * blocking sections are illegal in upcall contexts, so the request
 * handler only enqueues work). The "rpc" application is a pure
 * messaging echo tier: the request handler charges a service cost and
 * replies directly from the upcall.
 */

#ifndef FUGU_SERVE_SERVE_HH
#define FUGU_SERVE_SERVE_HH

#include <memory>
#include <vector>

#include "glaze/process.hh"
#include "sim/arrival.hh"
#include "sim/stats.hh"

namespace fugu::sim
{
class Binder;
}

namespace fugu::serve
{

/** UDM handler ids used by the serving tier (below CRL's 64 base). */
inline constexpr Word kServeReq = 16;
inline constexpr Word kServeReply = 17;

/** Knobs of the serving tier, bound under serve.*. */
struct ServeConfig
{
    /** Application flavour: kv | rpc. */
    std::string app = "kv";

    /** Measured requests per node (after warmup). */
    unsigned requests = 2000;

    /** Unmeasured warmup requests per node. */
    unsigned warmup = 200;

    /** kv: fraction of requests that are puts (rest are gets). */
    double putFrac = 0.10;

    /** kv: CRL shard regions per node. */
    unsigned shardsPerNode = 4;

    /** kv: words per shard region. */
    unsigned regionWords = 64;

    /** Modelled service cost per request, cycles. */
    std::uint64_t serverCost = 300;

    /** SLO threshold on request latency, cycles. */
    std::uint64_t sloCycles = 25000;

    /** Per-trial seed; set by the harness, not bound. */
    std::uint64_t seed = 1;
};

/** Register the serve.* knobs (seed is set by the harness). */
void bindConfig(sim::Binder &b, ServeConfig &c);

/**
 * Per-node serving outcome; plain values so slots can be merged
 * across nodes and trials. All counters cover only the measured
 * window (request seq >= warmup).
 */
struct ServeResult
{
    std::uint64_t offeredArrivals = 0; ///< measured requests generated
    std::uint64_t completed = 0;       ///< replies received
    std::uint64_t sloMet = 0;          ///< completed within sloCycles
    std::uint64_t servedBuffered = 0;  ///< requests served buffered
    std::uint64_t puts = 0;            ///< kv: measured put requests
    std::uint64_t localHits = 0;       ///< kv: client was the owner

    Cycle firstArrival = kMaxCycle; ///< first measured arrival
    Cycle lastReply = 0;            ///< last measured completion

    /** Request latency, split by the serving delivery case. */
    HistogramData latFast;
    HistogramData latBuffered;

    /** Fold another node's (or trial's) outcome into this one. */
    void merge(const ServeResult &o);

    /** Measured wall-clock span, cycles (0 before any completion). */
    Cycle
    span() const
    {
        return lastReply > firstArrival ? lastReply - firstArrival : 0;
    }

    bool operator==(const ServeResult &o) const = default;
};

/** Merge all per-node slots into one machine-wide outcome. */
ServeResult mergeSlots(const std::vector<ServeResult> &slots);

/**
 * Build the serving application. Each node writes its outcome into
 * (*slots)[node]; read the slots only after the machine run completes
 * (the caller owns the vector, which must have nnodes entries).
 */
glaze::AppBody makeServingApp(unsigned nnodes, ServeConfig cfg,
                              sim::ArrivalConfig arrival,
                              std::shared_ptr<std::vector<ServeResult>>
                                  slots);

} // namespace fugu::serve

#endif // FUGU_SERVE_SERVE_HH
