#include "crl/crl.hh"

#include <algorithm>

#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>

namespace fugu::crl
{

namespace
{
bool
traceOn()
{
    static const bool on = std::getenv("FUGU_CRL_TRACE") != nullptr;
    return on;
}
} // namespace

using exec::CoTask;

Crl::Stats::Stats(StatGroup *parent, NodeId node, Gid gid)
    : group("crl_n" + std::to_string(node) + "_g" + std::to_string(gid),
            parent),
      startOps(&group, "start_ops", "startRead/startWrite operations"),
      hits(&group, "hits", "sections satisfied locally"),
      misses(&group, "misses", "sections requiring the protocol"),
      invalidationsSent(&group, "invs", "invalidations issued (home)"),
      writebacks(&group, "writebacks", "exclusive copies written back"),
      upgrades(&group, "upgrades", "shared-to-exclusive upgrades")
{
}

Crl::Crl(glaze::Process &proc, Word handler_base)
    : stats(&proc.stats.group, proc.node(), proc.gid()), proc_(proc),
      base_(handler_base), cv_(proc.threads())
{
    registerHandlers();
}

Crl::Client &
Crl::client(Rid rid)
{
    auto it = clients_.find(rid);
    fugu_assert(it != clients_.end(), "unknown region ", rid);
    return it->second;
}

const Crl::Client &
Crl::client(Rid rid) const
{
    auto it = clients_.find(rid);
    fugu_assert(it != clients_.end(), "unknown region ", rid);
    return it->second;
}

Crl::Home &
Crl::home(Rid rid)
{
    auto it = homes_.find(rid);
    fugu_assert(it != homes_.end(), "node ", proc_.node(),
                " is not home of region ", rid);
    return it->second;
}

bool
Crl::isHome(Rid rid) const
{
    return homes_.count(rid) != 0;
}

void
Crl::createRegion(Rid rid, NodeId home_node, unsigned words)
{
    fugu_assert(words > 0, "empty region");
    fugu_assert(!clients_.count(rid), "region ", rid, " created twice");
    Client c;
    c.home = home_node;
    c.words = words;
    c.data.assign(words, 0);
    clients_.emplace(rid, std::move(c));
    if (home_node == proc_.node()) {
        Home h;
        h.words = words;
        h.data.assign(words, 0);
        homes_.emplace(rid, std::move(h));
    }
}

// ---------------------------------------------------------------------
// Data access
// ---------------------------------------------------------------------

Word
Crl::read(Rid rid, unsigned off) const
{
    const Client &c = client(rid);
    fugu_assert(c.readers > 0 || c.writing,
                "read outside a mapped section of region ", rid);
    fugu_assert(off < c.words, "read past region end");
    return c.data[off];
}

void
Crl::write(Rid rid, unsigned off, Word w)
{
    Client &c = client(rid);
    fugu_assert(c.writing, "write outside a write section of region ",
                rid);
    fugu_assert(off < c.words, "write past region end");
    c.data[off] = w;
}

// ---------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------

exec::CoTask<void>
Crl::startRead(Rid rid)
{
    ++stats.startOps;
    co_await proc_.compute(15);
    Client &c = client(rid);
    bool counted_miss = false;
    for (;;) {
        if (c.mode != CMode::Inv && !c.writing &&
            (c.claimPending || (!c.invPending && !c.fetchPending))) {
            break;
        }
        if (c.mode == CMode::Inv && !c.reqOutstanding && !c.writing) {
            if (!counted_miss) {
                ++stats.misses;
                counted_miss = true;
            }
            c.reqOutstanding = true;
            if (isHome(rid)) {
                home(rid).queue.push_back(Req{proc_.node(), false});
                co_await homeAdvance(rid);
            } else {
                net::PayloadVec payload(1, rid);
                co_await sendMsg(c.home, kReqRead, std::move(payload));
            }
            continue; // re-check before waiting (may have granted)
        }
        co_await cv_.wait();
    }
    if (!counted_miss)
        ++stats.hits;
    c.claimPending = false;
    ++c.readers;
}

exec::CoTask<void>
Crl::endRead(Rid rid)
{
    co_await proc_.compute(10);
    Client &c = client(rid);
    fugu_assert(c.readers > 0, "endRead without startRead");
    --c.readers;
    if (c.readers == 0 && !c.writing) {
        if (c.invPending)
            co_await ackInvalidate(rid);
        if (c.fetchPending) {
            c.fetchPending = false;
            co_await writeBack(rid, c.fetchDemoteToInv);
        }
    }
    cv_.notifyAll();
}

exec::CoTask<void>
Crl::startWrite(Rid rid)
{
    ++stats.startOps;
    co_await proc_.compute(15);
    Client &c = client(rid);
    bool counted_miss = false;
    for (;;) {
        if (c.mode == CMode::Excl && !c.writing && c.readers == 0 &&
            (c.claimPending || !c.fetchPending)) {
            break;
        }
        if (c.mode != CMode::Excl && !c.reqOutstanding &&
            !c.invPending && !c.fetchPending && !c.claimPending) {
            if (!counted_miss) {
                ++stats.misses;
                if (c.mode == CMode::Shared)
                    ++stats.upgrades;
                counted_miss = true;
            }
            c.reqOutstanding = true;
            if (isHome(rid)) {
                home(rid).queue.push_back(Req{proc_.node(), true});
                co_await homeAdvance(rid);
            } else {
                net::PayloadVec payload(1, rid);
                co_await sendMsg(c.home, kReqWrite, std::move(payload));
            }
            continue;
        }
        co_await cv_.wait();
    }
    if (!counted_miss)
        ++stats.hits;
    c.claimPending = false;
    c.writing = true;
}

exec::CoTask<void>
Crl::endWrite(Rid rid)
{
    co_await proc_.compute(10);
    Client &c = client(rid);
    fugu_assert(c.writing, "endWrite without startWrite");
    c.writing = false;
    if (c.fetchPending) {
        c.fetchPending = false;
        co_await writeBack(rid, c.fetchDemoteToInv);
    }
    cv_.notifyAll();
}

// ---------------------------------------------------------------------
// Home state machine
// ---------------------------------------------------------------------

exec::CoTask<void>
Crl::homeAdvance(Rid rid)
{
    Home &h = home(rid);
    if (h.inAdvance)
        co_return; // an earlier activation will complete the work
    h.inAdvance = true;
    const NodeId me = proc_.node();

    for (;;) {
        if (h.phase != Phase::None)
            break; // waiting on a writeback or invalidation acks
        if (!h.curActive) {
            if (h.queue.empty())
                break;
            h.cur = h.queue.front();
            h.queue.pop_front();
            h.curActive = true;
            if (traceOn())
                std::printf("[crl] n%u home rid=%u txn node=%u w=%d\n",
                            me, rid, h.cur.node, h.cur.isWrite);
        }

        // Step 1: an exclusive copy elsewhere must be written back.
        if (h.mode == HMode::Excl && h.owner != h.cur.node) {
            const bool demote = h.cur.isWrite;
            if (h.owner == me) {
                Client &c = client(rid);
                if (c.writing || c.claimPending) {
                    // The local claimant finishes first; the deferred
                    // writeback runs at endWrite/endRead.
                    c.fetchPending = true;
                    c.fetchDemoteToInv = demote;
                    h.phase = Phase::WaitWb;
                    break;
                }
                ++stats.writebacks;
                h.data = c.data;
                c.mode = demote ? CMode::Inv : CMode::Shared;
                applyWbState(h, me, demote);
            } else {
                h.phase = Phase::WaitWb;
                h.wbFill = 0;
                net::PayloadVec payload{rid, demote ? 1u : 0u};
                co_await sendMsg(h.owner, kFetch, std::move(payload));
                break;
            }
        }

        // Step 2: a write must invalidate the other sharers.
        if (h.cur.isWrite) {
            std::vector<NodeId> targets;
            for (NodeId s : h.sharers)
                if (s != h.cur.node)
                    targets.push_back(s);
            if (!targets.empty()) {
                h.invAcksLeft = static_cast<unsigned>(targets.size());
                h.phase = Phase::WaitInvAcks;
                stats.invalidationsSent += targets.size();
                for (NodeId s : targets) {
                    if (s == me) {
                        localInvalidate(rid);
                    } else {
                        net::PayloadVec payload(1, rid);
                        co_await sendMsg(s, kInv, std::move(payload));
                    }
                }
                if (h.phase == Phase::WaitInvAcks)
                    break; // remote (or deferred local) acks pending
                continue;  // all acks were immediate and local
            }
        }

        // Step 3: grant.
        co_await homeGrant(rid);
        h.curActive = false;
    }
    h.inAdvance = false;
}

void
Crl::applyWbState(Home &h, NodeId owner, bool demoted_to_inv)
{
    h.sharers.clear();
    if (demoted_to_inv) {
        h.mode = HMode::Idle;
    } else {
        h.mode = HMode::Shared;
        h.sharers.push_back(owner);
    }
}

void
Crl::homeInvAck(Rid rid, NodeId node)
{
    Home &h = home(rid);
    auto it = std::find(h.sharers.begin(), h.sharers.end(), node);
    if (it != h.sharers.end())
        h.sharers.erase(it);
    if (h.phase == Phase::WaitInvAcks) {
        fugu_assert(h.invAcksLeft > 0);
        if (--h.invAcksLeft == 0)
            h.phase = Phase::None;
    }
}

void
Crl::localInvalidate(Rid rid)
{
    Client &c = client(rid);
    fugu_assert(c.mode == CMode::Shared,
                "invalidate of non-shared local copy");
    if (c.readers > 0 || c.claimPending) {
        c.invPending = true; // acked when the claim/readers finish
        return;
    }
    c.mode = CMode::Inv;
    homeInvAck(rid, proc_.node());
    cv_.notifyAll();
}

exec::CoTask<void>
Crl::homeGrant(Rid rid)
{
    Home &h = home(rid);
    const Req r = h.cur;
    const NodeId me = proc_.node();
    const bool was_sharer =
        std::find(h.sharers.begin(), h.sharers.end(), r.node) !=
        h.sharers.end();

    if (r.isWrite) {
        h.sharers.clear();
        h.mode = HMode::Excl;
        h.owner = r.node;
    } else {
        if (!was_sharer)
            h.sharers.push_back(r.node);
        h.mode = HMode::Shared;
    }

    if (r.node == me) {
        Client &c = client(rid);
        if (!was_sharer)
            c.data = h.data;
        c.mode = r.isWrite ? CMode::Excl : CMode::Shared;
        c.reqOutstanding = false;
        c.claimPending = true;
        cv_.notifyAll();
        co_return;
    }
    co_await sendCopy(rid, r.node, r.isWrite, !was_sharer);
}

exec::CoTask<void>
Crl::sendCopy(Rid rid, NodeId dst, bool excl, bool with_data)
{
    Home &h = home(rid);
    if (with_data) {
        for (unsigned off = 0; off < h.words; off += kChunkWords) {
            const unsigned n = std::min(kChunkWords, h.words - off);
            net::PayloadVec payload;
            payload.reserve(2 + n);
            payload.push_back(rid);
            payload.push_back(off);
            for (unsigned i = 0; i < n; ++i)
                payload.push_back(h.data[off + i]);
            co_await sendMsg(dst, kChunk, std::move(payload));
        }
    }
    net::PayloadVec grant{rid, excl ? 1u : 0u, with_data ? 1u : 0u};
    co_await sendMsg(dst, kGrant, std::move(grant));
}

// ---------------------------------------------------------------------
// Client-side protocol actions
// ---------------------------------------------------------------------

exec::CoTask<void>
Crl::writeBack(Rid rid, bool demote_to_inv)
{
    Client &c = client(rid);
    fugu_assert(c.mode == CMode::Excl, "writeback of non-exclusive copy");
    ++stats.writebacks;
    if (isHome(rid)) {
        Home &h = home(rid);
        h.data = c.data;
        c.mode = demote_to_inv ? CMode::Inv : CMode::Shared;
        applyWbState(h, proc_.node(), demote_to_inv);
        h.phase = Phase::None;
        cv_.notifyAll();
        co_await homeAdvance(rid);
        co_return;
    }
    for (unsigned off = 0; off < c.words; off += kChunkWords) {
        const unsigned n = std::min(kChunkWords, c.words - off);
        net::PayloadVec payload;
        payload.reserve(2 + n);
        payload.push_back(rid);
        payload.push_back(off);
        for (unsigned i = 0; i < n; ++i)
            payload.push_back(c.data[off + i]);
        co_await sendMsg(c.home, kWbChunk, std::move(payload));
    }
    c.mode = demote_to_inv ? CMode::Inv : CMode::Shared;
    net::PayloadVec done{rid, demote_to_inv ? 0u : 1u};
    co_await sendMsg(c.home, kWbDone, std::move(done));
    cv_.notifyAll();
}

exec::CoTask<void>
Crl::ackInvalidate(Rid rid)
{
    Client &c = client(rid);
    c.invPending = false;
    c.mode = CMode::Inv;
    if (isHome(rid)) {
        homeInvAck(rid, proc_.node());
        Home &h = home(rid);
        if (h.phase == Phase::None)
            co_await homeAdvance(rid);
        co_return;
    }
    net::PayloadVec payload(1, rid);
    co_await sendMsg(c.home, kInvAck, std::move(payload));
}

void
Crl::debugDump(std::ostream &os) const
{
    os << "CRL node " << proc_.node() << "\n";
    for (const auto &[rid, c] : clients_) {
        os << "  client rid=" << rid << " mode=" << (int)c.mode
           << " readers=" << c.readers << " writing=" << c.writing
           << " req=" << c.reqOutstanding << " claim=" << c.claimPending
           << " invP=" << c.invPending << " fetchP=" << c.fetchPending
           << "\n";
    }
    for (const auto &[rid, h] : homes_) {
        os << "  home rid=" << rid << " mode=" << (int)h.mode
           << " owner=" << h.owner << " phase=" << (int)h.phase
           << " curActive=" << h.curActive << " cur.node=" << h.cur.node
           << " cur.w=" << h.cur.isWrite << " q=" << h.queue.size()
           << " invLeft=" << h.invAcksLeft << " sharers=[";
        for (NodeId s : h.sharers)
            os << s << " ";
        os << "]\n";
    }
}

exec::CoTask<void>
Crl::sendMsg(NodeId dst, MsgId id, net::PayloadVec payload)
{
    if (traceOn() && !payload.empty()) {
        std::printf("[crl] n%u -> n%u msg=%u rid=%u\n", proc_.node(),
                    dst, (unsigned)id, (unsigned)payload[0]);
    }
    co_await proc_.port().send(dst, base_ + id, std::move(payload));
}

// ---------------------------------------------------------------------
// Message handlers
// ---------------------------------------------------------------------

void
Crl::registerHandlers()
{
    auto &port = proc_.port();

    auto reqHandler = [this](bool is_write) {
        return [this, is_write](core::UdmPort &p,
                                NodeId src) -> CoTask<void> {
            const Rid rid = co_await p.read(0);
            co_await proc_.compute(handlerCost);
            co_await p.dispose();
            if (traceOn())
                std::printf("[crl] n%u REQ%c from n%u rid=%u\n",
                            proc_.node(), is_write ? 'W' : 'R', src,
                            rid);
            home(rid).queue.push_back(Req{src, is_write});
            co_await homeAdvance(rid);
        };
    };
    port.setHandler(base_ + kReqRead, reqHandler(false));
    port.setHandler(base_ + kReqWrite, reqHandler(true));

    port.setHandler(
        base_ + kFetch,
        [this](core::UdmPort &p, NodeId) -> CoTask<void> {
            const Rid rid = co_await p.read(0);
            const bool demote = co_await p.read(1);
            co_await proc_.compute(handlerCost);
            co_await p.dispose();
            Client &c = client(rid);
            if (c.writing || c.claimPending) {
                c.fetchPending = true;
                c.fetchDemoteToInv = demote;
                co_return;
            }
            co_await writeBack(rid, demote);
        });

    port.setHandler(
        base_ + kInv,
        [this](core::UdmPort &p, NodeId) -> CoTask<void> {
            const Rid rid = co_await p.read(0);
            co_await proc_.compute(handlerCost);
            co_await p.dispose();
            Client &c = client(rid);
            fugu_assert(c.mode == CMode::Shared,
                        "INV for non-shared copy of region ", rid);
            if (c.readers > 0 || c.claimPending) {
                c.invPending = true;
                co_return;
            }
            c.mode = CMode::Inv;
            cv_.notifyAll();
            net::PayloadVec payload(1, rid);
            co_await sendMsg(c.home, kInvAck, std::move(payload));
        });

    port.setHandler(
        base_ + kInvAck,
        [this](core::UdmPort &p, NodeId src) -> CoTask<void> {
            const Rid rid = co_await p.read(0);
            co_await proc_.compute(handlerCost);
            co_await p.dispose();
            homeInvAck(rid, src);
            if (home(rid).phase == Phase::None)
                co_await homeAdvance(rid);
        });

    port.setHandler(
        base_ + kChunk,
        [this](core::UdmPort &p, NodeId) -> CoTask<void> {
            const Rid rid = co_await p.read(0);
            const unsigned off = co_await p.read(1);
            const unsigned n = p.headPayloadWords() - 2;
            Client &c = client(rid);
            for (unsigned i = 0; i < n; ++i)
                c.data[off + i] = co_await p.read(2 + i);
            co_await proc_.compute(handlerCost / 2);
            co_await p.dispose();
        });

    port.setHandler(
        base_ + kGrant,
        [this](core::UdmPort &p, NodeId) -> CoTask<void> {
            const Rid rid = co_await p.read(0);
            const bool excl = co_await p.read(1);
            co_await proc_.compute(handlerCost);
            co_await p.dispose();
            Client &c = client(rid);
            c.mode = excl ? CMode::Excl : CMode::Shared;
            c.reqOutstanding = false;
            c.claimPending = true;
            cv_.notifyAll();
        });

    port.setHandler(
        base_ + kWbChunk,
        [this](core::UdmPort &p, NodeId) -> CoTask<void> {
            const Rid rid = co_await p.read(0);
            const unsigned off = co_await p.read(1);
            const unsigned n = p.headPayloadWords() - 2;
            Home &h = home(rid);
            for (unsigned i = 0; i < n; ++i)
                h.data[off + i] = co_await p.read(2 + i);
            co_await proc_.compute(handlerCost / 2);
            co_await p.dispose();
        });

    port.setHandler(
        base_ + kWbDone,
        [this](core::UdmPort &p, NodeId src) -> CoTask<void> {
            const Rid rid = co_await p.read(0);
            const bool to_shared = co_await p.read(1);
            co_await proc_.compute(handlerCost);
            co_await p.dispose();
            Home &h = home(rid);
            applyWbState(h, src, /*demoted_to_inv=*/!to_shared);
            h.phase = Phase::None;
            co_await homeAdvance(rid);
        });
}

} // namespace fugu::crl
