/**
 * @file
 * CRL: an all-software region-based distributed shared memory system
 * built on UDM messages, in the spirit of Johnson, Kaashoek &
 * Wallach's C Region Library (SOSP '95), which the paper's Barnes,
 * Water and LU workloads run on.
 *
 * Shared data lives in fixed-size *regions*, each with a fixed home
 * node holding the master copy and a directory. Nodes map regions and
 * bracket accesses with startRead/endRead and startWrite/endWrite; a
 * home-based MSI invalidate protocol moves data in 12-word chunks
 * over UDM. The message mix this produces — many small request/reply
 * packets plus larger data packets — is the "operating-system-like"
 * load the paper describes (Section 5.1).
 *
 * Handlers never block: multi-step home transactions (writeback
 * fetches, invalidation rounds) are state machines advanced by
 * message handlers, and client threads wait on a condition variable.
 */

#ifndef FUGU_CRL_CRL_HH
#define FUGU_CRL_CRL_HH

#include <bit>
#include <ostream>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "glaze/process.hh"
#include "rt/thread.hh"
#include "sim/stats.hh"

namespace fugu::crl
{

/** Region identifier; applications assign these deterministically. */
using Rid = std::uint32_t;

/** First UDM handler id used by the protocol (8 ids). */
inline constexpr Word kCrlHandlerBase = 64;

/** Data words carried per chunk message. */
inline constexpr unsigned kChunkWords = 12;

class Crl
{
  public:
    explicit Crl(glaze::Process &proc,
                 Word handler_base = kCrlHandlerBase);

    Crl(const Crl &) = delete;
    Crl &operator=(const Crl &) = delete;

    /**
     * Declare a region. Must be called symmetrically on every node
     * (same rid/home/words); the home node allocates the master copy.
     */
    void createRegion(Rid rid, NodeId home, unsigned words);

    /// @name Access sections (called from application threads)
    /// @{

    exec::CoTask<void> startRead(Rid rid);
    exec::CoTask<void> endRead(Rid rid);
    exec::CoTask<void> startWrite(Rid rid);
    exec::CoTask<void> endWrite(Rid rid);

    /// @}
    /// @name Data access (only inside the matching section)
    /// @{

    Word read(Rid rid, unsigned off) const;
    void write(Rid rid, unsigned off, Word w);

    double
    readDouble(Rid rid, unsigned idx) const
    {
        const std::uint64_t lo = read(rid, 2 * idx);
        const std::uint64_t hi = read(rid, 2 * idx + 1);
        return std::bit_cast<double>(lo | (hi << 32));
    }

    void
    writeDouble(Rid rid, unsigned idx, double v)
    {
        const auto u = std::bit_cast<std::uint64_t>(v);
        write(rid, 2 * idx, static_cast<Word>(u));
        write(rid, 2 * idx + 1, static_cast<Word>(u >> 32));
    }

    /// @}

    struct Stats
    {
        Stats(StatGroup *parent, NodeId node, Gid gid);
        StatGroup group;
        Scalar startOps;
        Scalar hits;
        Scalar misses;
        Scalar invalidationsSent;
        Scalar writebacks;
        Scalar upgrades;
    };

    Stats stats;

    /**
     * Modelled protocol-processing cost charged by every CRL message
     * handler (decode, directory lookup, state update). Tunable so
     * Table 6's handler occupancies can be calibrated.
     */
    Cycle handlerCost = 220;

    /** Dump client/home protocol state (debugging aid). */
    void debugDump(std::ostream &os) const;

  private:
    /** Cached-copy state on a client node. */
    enum class CMode
    {
        Inv,
        Shared,
        Excl,
    };

    /** Directory state at the home node. */
    enum class HMode
    {
        Idle,
        Shared,
        Excl,
    };

    /** Home transaction phase. */
    enum class Phase
    {
        None,
        WaitWb,
        WaitInvAcks,
    };

    struct Client
    {
        NodeId home = 0;
        unsigned words = 0;
        CMode mode = CMode::Inv;
        std::vector<Word> data;
        int readers = 0;
        bool writing = false;
        bool reqOutstanding = false;
        bool claimPending = false; ///< granted copy not yet used once:
                                   ///< invalidations/fetches defer so
                                   ///< contending nodes cannot livelock
        bool invPending = false;   ///< ack deferred until readers drain
        bool fetchPending = false; ///< writeback deferred until endWrite
        bool fetchDemoteToInv = false;
        unsigned fillWords = 0; ///< chunk progress for an inbound copy
    };

    struct Req
    {
        NodeId node;
        bool isWrite;
    };

    struct Home
    {
        unsigned words = 0;
        HMode mode = HMode::Idle;
        NodeId owner = 0;
        std::vector<NodeId> sharers;
        std::vector<Word> data;
        std::deque<Req> queue;
        Phase phase = Phase::None;
        Req cur{0, false};
        bool curActive = false; ///< a transaction is mid-flight
        bool inAdvance = false; ///< re-entrancy guard for homeAdvance
        unsigned invAcksLeft = 0;
        unsigned wbFill = 0;
    };

    /// @name Message ids (offsets from handler_base_)
    /// @{
    enum MsgId : Word
    {
        kReqRead = 0,
        kReqWrite = 1,
        kFetch = 2,   ///< payload: rid, demote_to_inv
        kInv = 3,     ///< payload: rid
        kInvAck = 4,  ///< payload: rid
        kChunk = 5,   ///< payload: rid, off, data... (home->client)
        kGrant = 6,   ///< payload: rid, mode, with_data
        kWbChunk = 7, ///< payload: rid, off, data... (owner->home)
        kWbDone = 8,  ///< payload: rid, owner_new_mode
    };
    /// @}

    void registerHandlers();

    /** Advance the home state machine for @p rid. */
    exec::CoTask<void> homeAdvance(Rid rid);

    /** Grant the current transaction's request (phase None reached). */
    exec::CoTask<void> homeGrant(Rid rid);

    /** Send a region copy in chunks followed by a grant. */
    exec::CoTask<void> sendCopy(Rid rid, NodeId dst, bool excl,
                                bool with_data);

    /** Owner-side writeback (messages, or a local copy at the home). */
    exec::CoTask<void> writeBack(Rid rid, bool demote_to_inv);

    /** Client-side invalidation acknowledgement. */
    exec::CoTask<void> ackInvalidate(Rid rid);

    /** Update directory state after a writeback from @p owner. */
    void applyWbState(Home &h, NodeId owner, bool demoted_to_inv);

    /** Record an invalidation ack (removes the sharer). */
    void homeInvAck(Rid rid, NodeId node);

    /** Invalidate the home node's own cached copy (no messages). */
    void localInvalidate(Rid rid);

    exec::CoTask<void> sendMsg(NodeId dst, MsgId id,
                               net::PayloadVec payload);

    Client &client(Rid rid);
    const Client &client(Rid rid) const;
    Home &home(Rid rid);
    bool isHome(Rid rid) const;

    glaze::Process &proc_;
    Word base_;
    std::unordered_map<Rid, Client> clients_;
    std::unordered_map<Rid, Home> homes_;
    rt::CondVar cv_;
};

} // namespace fugu::crl

#endif // FUGU_CRL_CRL_HH
