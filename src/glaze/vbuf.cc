#include "glaze/vbuf.hh"

#include "core/arch.hh"
#include "sim/log.hh"

namespace fugu::glaze
{

VirtualBuffer::Stats::Stats(StatGroup *parent, NodeId node, Gid gid)
    : group("vbuf_n" + std::to_string(node) + "_g" + std::to_string(gid),
            parent),
      inserts(&group, "inserts", "messages inserted (buffered path)"),
      drained(&group, "drained", "messages drained"),
      peakPages(&group, "peak_pages", "max pages allocated at once"),
      swapOuts(&group, "swap_outs", "pages swapped to backing store"),
      pageIns(&group, "page_ins", "pages brought back in")
{
}

VirtualBuffer::VirtualBuffer(FramePool &frames, StatGroup *parent,
                             NodeId node, Gid gid,
                             unsigned rec_overhead_words)
    : stats(parent, node, gid), frames_(frames), node_(node),
      recOverhead_(rec_overhead_words)
{
}

void
VirtualBuffer::tracePage(unsigned kind) const
{
    FUGU_TRACE(tracer_, node_, trace::Type::VbufPage, 0,
               trace::DivertReason::None,
               (static_cast<std::uint32_t>(pages_.size()) << 2) | kind);
}

VirtualBuffer::~VirtualBuffer()
{
    for (const Page &p : pages_) {
        if (!p.swapped)
            frames_.release();
    }
}

bool
VirtualBuffer::needsNewPageFor(const net::Packet &pkt) const
{
    if (pages_.empty())
        return true;
    const Page &back = pages_.back();
    return back.filled + footprint(pkt) > kPageWords;
}

bool
VirtualBuffer::allocatePage()
{
    if (!frames_.tryAllocate())
        return false;
    pages_.push_back(Page{});
    if (pages_.size() > stats.peakPages.value())
        stats.peakPages.set(static_cast<double>(pages_.size()));
    tracePage(trace::kVbufAlloc);
    return true;
}

const net::Packet &
VirtualBuffer::front() const
{
    fugu_assert(!msgs_.empty(), "front() on empty buffer");
    return msgs_.front().pkt;
}

void
VirtualBuffer::insert(net::Packet pkt)
{
    fugu_assert(!needsNewPageFor(pkt), "insert without page space");
    pages_.back().filled += footprint(pkt);
    const auto page =
        static_cast<unsigned>(basePage_ + pages_.size() - 1);
    msgs_.push_back(Rec{std::move(pkt), page});
    ++stats.inserts;
}

bool
VirtualBuffer::available() const
{
    return !msgs_.empty();
}

unsigned
VirtualBuffer::size() const
{
    fugu_assert(!msgs_.empty(), "size() on empty buffer");
    return msgs_.front().pkt.size();
}

Word
VirtualBuffer::read(unsigned offset) const
{
    fugu_assert(!msgs_.empty(), "read on empty buffer");
    fugu_assert(!frontSwapped(), "read of a swapped-out buffer page");
    const net::Packet &p = msgs_.front().pkt;
    if (offset == 0)
        return core::makeHeader(p.src, p.gid == kKernelGid);
    if (offset == 1)
        return p.handler;
    fugu_assert(offset - 2 < p.payload.size(),
                "buffer read past message end");
    return p.payload[offset - 2];
}

void
VirtualBuffer::pop()
{
    fugu_assert(!msgs_.empty(), "pop on empty buffer");
    fugu_assert(!frontSwapped(), "pop of a swapped-out buffer page");
    const unsigned fp = footprint(msgs_.front().pkt);
    fugu_assert(msgs_.front().pageIdx == basePage_,
                "drain out of page order");
    msgs_.pop_front();
    ++stats.drained;

    Page &front = pages_.front();
    front.consumed += fp;
    fugu_assert(front.consumed <= front.filled);
    // Free the page once everything on it has been drained. The last
    // page is retired only when the buffer is fully empty (a partially
    // filled tail keeps accepting inserts).
    const bool page_done =
        front.consumed == front.filled &&
        (pages_.size() > 1 || msgs_.empty());
    if (page_done) {
        if (!front.swapped)
            frames_.release();
        pages_.pop_front();
        ++basePage_;
    }
}

bool
VirtualBuffer::frontSwapped() const
{
    if (msgs_.empty())
        return false;
    return pages_.front().swapped;
}

bool
VirtualBuffer::pageInFront()
{
    fugu_assert(frontSwapped(), "pageInFront with resident front");
    if (!frames_.tryAllocate())
        return false;
    pages_.front().swapped = false;
    ++stats.pageIns;
    tracePage(trace::kVbufPageIn);
    return true;
}

unsigned
VirtualBuffer::swapOut(unsigned n)
{
    unsigned done = 0;
    // Newest-first, never the front (draining) page.
    for (std::size_t i = pages_.size(); i-- > 1 && done < n;) {
        Page &p = pages_[i];
        if (p.swapped)
            continue;
        p.swapped = true;
        frames_.release();
        ++stats.swapOuts;
        tracePage(trace::kVbufSwapOut);
        ++done;
    }
    return done;
}

unsigned
VirtualBuffer::pagesAllocated() const
{
    return static_cast<unsigned>(pages_.size());
}

unsigned
VirtualBuffer::pagesResident() const
{
    unsigned n = 0;
    for (const Page &p : pages_)
        if (!p.swapped)
            ++n;
    return n;
}

} // namespace fugu::glaze
