#include "glaze/kernel.hh"

#include "glaze/check.hh"
#include "glaze/machine.hh"
#include "sim/fault.hh"
#include "sim/log.hh"

namespace fugu::glaze
{

using core::kUacAtomicityExtend;
using core::kUacDisposePending;
using core::kUacInterruptDisable;
using core::NiTrap;

// ---------------------------------------------------------------------
// OsNic
// ---------------------------------------------------------------------

OsNic::OsNic(exec::Cpu &cpu, net::Network &osnet, NodeId id)
    : cpu_(cpu), id_(id)
{
    osnet.attach(id, this);
}

bool
OsNic::tryDeliver(net::Packet &&pkt)
{
    FUGU_TRACE(tracer_, id_, trace::Type::NetAccept,
               trace::osMsgId(pkt.seq), trace::DivertReason::None,
               (static_cast<std::uint32_t>(pkt.src) << 16) |
                   pkt.size());
    q_.push_back(std::move(pkt));
    cpu_.raiseIrq(core::kIrqOsNet);
    return true;
}

net::Packet
OsNic::pop()
{
    fugu_assert(!q_.empty());
    net::Packet p = std::move(q_.front());
    q_.pop_front();
    if (q_.empty())
        cpu_.lowerIrq(core::kIrqOsNet);
    return p;
}

// ---------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------

Kernel::Stats::Stats(StatGroup *parent, NodeId id)
    : group("kernel" + std::to_string(id), parent),
      upcalls(&group, "upcalls", "message-available upcalls delivered"),
      spuriousUpcalls(&group, "spurious_upcalls",
                      "upcalls whose message was diverted before "
                      "the stub could dispatch it"),
      bufferInserts(&group, "buffer_inserts",
                    "messages inserted into virtual buffers"),
      kernelMsgs(&group, "kernel_msgs", "kernel messages dispatched"),
      processSwitches(&group, "process_switches",
                      "gang quantum switches taken"),
      modeEntries(&group, "mode_entries", "entries into buffered mode"),
      modeExits(&group, "mode_exits", "exits from buffered mode"),
      pageFaults(&group, "page_faults", "page-fault traps serviced"),
      overflowEvents(&group, "overflow_events",
                     "overflow-control activations"),
      droppedNoProcess(&group, "dropped_no_process",
                       "messages for unknown GIDs dropped"),
      bufLatency(&group, "buf_latency",
                 "inject-to-extract latency, buffered path (cycles)")
{
}

Kernel::Kernel(Machine &machine, NodeId id)
    : stats(&machine.root, id), m_(machine), id_(id),
      kernelHandlers_(16)
{
}

exec::Cpu &
Kernel::cpu()
{
    return m_.node(id_).cpu;
}

core::NetIf &
Kernel::ni()
{
    return m_.node(id_).ni;
}

FramePool &
Kernel::frames()
{
    return m_.node(id_).frames;
}

const core::CostModel &
Kernel::costs() const
{
    return m_.cfg.costs;
}

core::AtomicityMode
Kernel::atomicity() const
{
    return m_.cfg.atomicity;
}

trace::Recorder *
Kernel::tracer() const
{
    return m_.tracerFor(id_);
}

void
Kernel::init()
{
    auto &c = cpu();
    c.setIrqHandler(core::kIrqMessageAvailable,
                    [this](unsigned) { return onMessageAvailable(); });
    c.setIrqHandler(core::kIrqMismatchAvailable,
                    [this](unsigned) { return onMismatchAvailable(); });
    c.setIrqHandler(core::kIrqAtomicityTimeout,
                    [this](unsigned) { return onAtomicityTimeout(); },
                    /*pulse=*/true);
    c.setIrqHandler(core::kIrqOsNet,
                    [this](unsigned) { return onOsNet(); });
    c.setIrqHandler(core::kIrqSched,
                    [this](unsigned) { return onSched(); },
                    /*pulse=*/true);

    c.setTrapHandler(core::kTrapDisposeExtend, [this](auto victim) {
        return onDisposeExtend(std::move(victim));
    });
    c.setTrapHandler(core::kTrapAtomicityExtend, [this](auto victim) {
        return onAtomicityExtend(std::move(victim));
    });
    c.setTrapHandler(core::kTrapPageFault, [this](auto victim) {
        return onPageFault(std::move(victim));
    });
    c.setTrapHandler(core::kTrapDisposeFailure, [this](auto victim) {
        return onFatalTrap(std::move(victim),
                           "dispose-failure: handler exited its atomic "
                           "section without extracting a message");
    });
    c.setTrapHandler(core::kTrapBadDispose, [this](auto victim) {
        return onFatalTrap(std::move(victim),
                           "bad-dispose: dispose with no message");
    });
    c.setTrapHandler(core::kTrapProtectionViolation, [this](auto victim) {
        return onFatalTrap(std::move(victim), "protection violation");
    });

    c.setIdleHook([this] { dispatchIdle(); });

    ni().setGid(kIdleGid);

    // Overflow-control coordination messages (second network).
    setKernelHandler(kOsSuspendJob,
                     [](Kernel &k, net::Packet pkt) -> exec::CoTask<void> {
                         if (Process *p = k.findProcess(
                                 static_cast<Gid>(pkt.payload.at(0))))
                             p->suspended = true;
                         co_return;
                     });
    setKernelHandler(kOsResumeJob,
                     [](Kernel &k, net::Packet pkt) -> exec::CoTask<void> {
                         if (Process *p = k.findProcess(
                                 static_cast<Gid>(pkt.payload.at(0)))) {
                             p->suspended = false;
                             k.ensureDrain(p);
                         }
                         co_return;
                     });
}

void
Kernel::addProcess(Process *p)
{
    fugu_assert(!byGid_.count(p->gid()), "duplicate gid ", p->gid());
    byGid_[p->gid()] = p;
    p->setKernel(this);
}

Process *
Kernel::findProcess(Gid gid) const
{
    auto it = byGid_.find(gid);
    return it == byGid_.end() ? nullptr : it->second;
}

void
Kernel::installProcess(Process *p)
{
    fugu_assert(!current_, "installProcess over a running process");
    current_ = p;
    ni().setGid(p->gid());
    ni().writeUac(p->savedUac);
    ni().setDivert(p->buffered);
    if (m_.cfg.alwaysBuffered && !p->buffered)
        enterBuffered(p, /*from_atomic=*/false,
                      trace::DivertReason::Config);
    cpu().requestDispatch();
}

void
Kernel::requestSwitch(Process *next)
{
    pendingNext_ = next;
    havePendingNext_ = true;
    cpu().raiseIrq(core::kIrqSched);
}

void
Kernel::setKernelHandler(Word id, KernelHandler fn)
{
    if (kernelHandlers_.size() <= id)
        kernelHandlers_.resize(id + 1);
    kernelHandlers_[id] = std::move(fn);
}

// ---------------------------------------------------------------------
// Fast path: the message-available stub and upcall
// ---------------------------------------------------------------------

exec::Task
Kernel::onMessageAvailable()
{
    const auto &c = costs();
    ++stats.upcalls;
    // The whole stub entry is one accumulated charge. The individual
    // costs (interrupt entry, register save, GID check, timer setup,
    // upcall dispatch) are modelled as separate line items in the cost
    // table, but the stub runs them back to back with interrupts
    // already masked, so there is no legal preemption point between
    // them — fusing the awaits into one suspension changes no
    // observable timing, only how often this coroutine parks.
    Cycle entry = c.interruptOverhead + c.registerSave;
    if (atomicity() != core::AtomicityMode::Kernel)
        entry += c.gidCheck;
    entry += c.timerSetup(atomicity()) + c.virtualBufferingOverhead +
             c.dispatchUpcall;
    // Backend surcharge (e.g. the DAMQ associative head select).
    entry += ni().backend().fastExtra(c);
    co_await cpu().spend(entry);

    Process *p = current_;
    fugu_assert(p, "message-available with no current process");
    if (!p->mainStarted && !p->buffered) {
        // The arrival raced the main's startup prologue on the
        // process's first-ever quantum (a skewed gang start lets a
        // peer's send land here first): there is no handler table to
        // dispatch into yet. Divert to the software buffer — the
        // drain waits for startup before delivering.
        enterBuffered(p, (ni().uac() & kUacInterruptDisable) != 0,
                      trace::DivertReason::QuantumCarry);
        co_return;
    }
    if (!ni().messageAvailable()) {
        // The pending message can vanish while the stub spends its
        // fixed entry cost: anything that pushes the process into
        // buffered mode meanwhile (an atomicity-timeout revocation,
        // a scheduler divert, a fault-forced storm) extracts the NI
        // queue into the software buffer, and the drain machinery
        // now owns delivery. Dispatching would peek an empty port;
        // treat the upcall as spurious instead.
        ++stats.spuriousUpcalls;
        co_return;
    }

    // The handler begins execution in an atomic section, with the
    // dispose-pending exit hook armed (Table 3).
    ni().writeUac(ni().uac() | kUacInterruptDisable |
                  kUacDisposePending);

    // Part of the register save: transparently unload the output
    // descriptor. The interrupted thread may be in the middle of
    // describing a message; the handler's own injects would clobber
    // it (Section 4.1: "the contents of the output buffer may be
    // transparently unloaded and later reloaded").
    net::MsgVec saved_output = ni().saveOutput();

    // Chain: this stub -> upcall context -> the interrupted thread.
    auto self = cpu().current();
    auto interrupted = self->takeReturnTo();
    auto up = cpu().spawn("upcall", /*kernel=*/false,
                          upcallBody(p, std::move(saved_output)));
    up->setReturnTo(std::move(interrupted));
    self->setReturnTo(std::move(up));
}

exec::Task
Kernel::upcallBody(Process *p, net::MsgVec saved_output)
{
    bool skip_dispatch = false;
    if (auto *f = m_.faultFor(id_); f && f->drawHandlerPageFault()) {
        co_await injectHandlerFault(p);
        // The fault fired inside the upcall's atomic section, so it
        // revoked interrupt-disable and diverted the pending message
        // into the software buffer: there is nothing left to extract
        // directly. The drain / atomicity-extend machinery delivers
        // it; dispatching here would peek an empty port.
        skip_dispatch = !p->port().messageAvailable();
    }
    if (!skip_dispatch)
        co_await p->port().dispatchUpcall();
    const auto &c = costs();
    co_await cpu().spend(c.upcallCleanup + c.timerCleanup(atomicity()) +
                         c.registerRestore);
    // Stub epilogue: leave the atomic section. The kernel exit hooks
    // (dispose-pending, atomicity-extend) trap here if armed.
    NiTrap t = ni().endAtom(kUacInterruptDisable);
    if (t != NiTrap::None)
        co_await cpu().trap(core::trapVector(t));
    // Reload the interrupted thread's output descriptor.
    ni().restoreOutput(saved_output);
    p->onEndAtomic();
}

// ---------------------------------------------------------------------
// Mismatch path: kernel messages and buffer insertion
// ---------------------------------------------------------------------

exec::Task
Kernel::onMismatchAvailable()
{
    const auto &c = costs();
    co_await cpu().spend(c.interruptOverhead);
    while (ni().mismatchPending()) {
        const net::Packet *h = ni().mismatchHead();
        if (h->gid == kKernelGid) {
            co_await kernelDispatch(ni().kernelExtract());
        } else if (Process *p = findProcess(h->gid)) {
            // Attribution: a head GID differing from the installed GID
            // means the target is descheduled; otherwise divert mode
            // is on and the message buffers for whatever reason put
            // the process into buffered mode.
            const trace::DivertReason why =
                h->gid != ni().gid() ? trace::DivertReason::GidMismatch
                                     : p->bufferCause;
            co_await bufferInsert(p, ni().kernelExtract(), why);
        } else {
            // A message for a GID with no process here: the paper's
            // OS reports the offending sender to the global
            // scheduler; we count and drop.
            ++stats.droppedNoProcess;
            if (auto *ck = m_.checker())
                ck->onDrop(*h, id_);
            ni().kernelExtract();
        }
    }
}

exec::CoTask<void>
Kernel::kernelDispatch(net::Packet pkt)
{
    const auto &c = costs();
    ++stats.kernelMsgs;
    FUGU_TRACE(tracer(), id_, trace::Type::KernelMsg,
               trace::userMsgId(pkt.seq), trace::DivertReason::None,
               pkt.handler);
    // Entry + dispatch are back-to-back kernel-mode work with no
    // legal preemption point between them: one fused charge.
    co_await cpu().spend(
        c.registerSave + c.dispatchKernel + c.nullHandler +
        c.receiveArgCost(static_cast<unsigned>(pkt.payload.size())));
    Word id = pkt.handler;
    if (id < kernelHandlers_.size() && kernelHandlers_[id])
        co_await kernelHandlers_[id](*this, std::move(pkt));
    co_await cpu().spend(c.registerRestore);
}

exec::CoTask<void>
Kernel::bufferInsert(Process *p, net::Packet pkt,
                     trace::DivertReason reason)
{
    const auto &c = costs();
    // How a diverted message gets into the buffer is the backend's
    // call: the copying insert of Table 5, or a page flip.
    const core::NiBufferedCosts bc = ni().backend().bufferedCosts(c);
    ++stats.bufferInserts;
    FUGU_TRACE(tracer(), id_, trace::Type::Divert,
               trace::userMsgId(pkt.seq), reason,
               (static_cast<std::uint32_t>(pkt.src) << 16) | p->gid());
    fugu_assert(bc.insertBase > c.interruptOverhead);
    co_await cpu().spend(bc.insertBase - c.interruptOverhead);
    if (p->vbuf().needsNewPageFor(pkt)) {
        co_await cpu().spend(bc.newPageExtra);
        while (!p->vbuf().allocatePage())
            co_await overflowControl(p);
        if (frames().belowWatermark())
            co_await overflowControl(p);
    }
    p->vbuf().insert(std::move(pkt));
    if (p == current_)
        ensureDrain(p);
}

exec::CoTask<void>
Kernel::overflowControl(Process *p)
{
    const auto &c = costs();
    ++stats.overflowEvents;
    FUGU_TRACE(tracer(), id_, trace::Type::Overflow, 0,
               trace::DivertReason::None, p->gid());

    // Globally suspend the offending application while paging clears
    // out space (the anti-thrashing strategy of Section 4.2).
    for (NodeId n = 0; n < m_.nodeCount(); ++n) {
        if (n != id_) {
            net::PayloadVec arg(1, p->gid());
            co_await osSend(n, kOsSuspendJob, std::move(arg));
        }
    }
    p->suspended = true;

    // Page buffer pages out to backing store over the second network
    // (the guaranteed deadlock-free path).
    unsigned target = std::max(2u, p->vbuf().pagesAllocated() / 2);
    co_await cpu().spend(c.pageOutLatency);
    unsigned freed = p->vbuf().swapOut(target);
    if (freed == 0) {
        // Nothing of this process's to swap; wait for other consumers
        // of the pool to release frames.
        co_await cpu().spend(c.pageOutLatency);
    }

    // Resume; the buffering system advises the scheduler to gang
    // schedule the application (we already gang schedule, so this is
    // recorded as an event).
    for (NodeId n = 0; n < m_.nodeCount(); ++n) {
        if (n != id_) {
            net::PayloadVec arg(1, p->gid());
            co_await osSend(n, kOsResumeJob, std::move(arg));
        }
    }
    p->suspended = false;
    ensureDrain(p);
}

// ---------------------------------------------------------------------
// Revocation: atomicity timeout
// ---------------------------------------------------------------------

exec::Task
Kernel::onAtomicityTimeout()
{
    Process *p = current_;
    if (!p || p->buffered)
        co_return; // stale timeout
    co_await cpu().spend(costs().modeTransition);
    // The transition cost is paid with the event queue live: another
    // divert (a forced storm, a page fault) can land while it is
    // pending, so re-check before committing.
    if (p != current_ || p->buffered)
        co_return;
    // Revoke the interrupt-disable privilege: switch from physical to
    // virtual atomicity. The pending messages divert to the software
    // buffer via the mismatch path. Whether an atomic section is still
    // open must be read from the live UAC, not assumed from the
    // interrupt's cause: the timeout can dispatch after the section
    // that armed it closed (it stays pending behind other kernel
    // handlers), or with no section open at all when a squatter forces
    // the timer via kUacTimerForce. Committing from_atomic in those
    // states would raise the atomicity gate with no endAtomic trap
    // ever coming to clear it, wedging the drain permanently.
    enterBuffered(p, (ni().uac() & kUacInterruptDisable) != 0,
                  trace::DivertReason::AtomTimeout);
}

void
Kernel::enterBuffered(Process *p, bool from_atomic,
                      trace::DivertReason cause)
{
    fugu_assert(p == current_, "enterBuffered for non-current process");
    fugu_assert(!p->buffered);
    ++stats.modeEntries;
    p->bufferCause = cause;
    FUGU_TRACE(tracer(), id_, trace::Type::ModeEnter, 0, cause,
               p->gid());
    p->buffered = true;
    ni().setDivert(true);
    p->port().enterBuffered(&p->vbuf());
    if (from_atomic) {
        // Preserve the suspended atomic section: defer buffered
        // handling until the user exits it (atomicity-extend hook).
        ni().setKernelUac(kUacAtomicityExtend, 0);
        p->atomicGate = true;
    } else {
        ensureDrain(p);
    }
}

void
Kernel::forceDivert()
{
    Process *p = current_;
    if (!p || p->buffered || p->suspended)
        return;
    // If the storm lands inside a user atomic section, preserve it
    // exactly as a revocation would (atomicity-extend hook + gate).
    enterBuffered(p, (ni().uac() & kUacInterruptDisable) != 0,
                  trace::DivertReason::Forced);
}

void
Kernel::exitBuffered(Process *p)
{
    fugu_assert(p->buffered && p->vbuf().empty());
    ++stats.modeExits;
    FUGU_TRACE(tracer(), id_, trace::Type::ModeExit, 0,
               p->bufferCause, p->gid());
    p->bufferCause = trace::DivertReason::None;
    p->buffered = false;
    p->port().exitBuffered();
    if (p == current_)
        ni().setDivert(false);
}

void
Kernel::ensureDrain(Process *p)
{
    if (p != current_ || p->suspended)
        return;
    if (!p->buffered || p->atomicGate)
        return;
    if (p->vbuf().empty())
        return;
    if (!p->mainStarted)
        // Messages can buffer for a process that has never been
        // scheduled (skewed gang start). The drain runs at handler
        // priority and would outrank the main forever, upcalling into
        // a handler table the application never got to fill; the
        // main's first slice re-pokes us once startup has run.
        return;
    if (p->drainThread && !p->drainThread->finished())
        return;
    p->drainThread =
        p->threads().spawn("drain", rt::kPrioHandler, drainBody(p));
}

exec::Task
Kernel::drainBody(Process *p)
{
    // Handler execution is made atomic in buffered mode by elevating
    // this thread's priority (Section 4.2); handlers never block, so
    // no other application thread can interleave with one.
    while (p->buffered && !p->atomicGate &&
           p->port().messageAvailable()) {
        if (auto *f = m_.faultFor(id_); f && f->drawHandlerPageFault()) {
            co_await injectHandlerFault(p);
            // Re-check the loop conditions: servicing the fault may
            // have swapped buffer pages or gated the drain.
            if (!p->buffered || p->atomicGate ||
                !p->port().messageAvailable())
                break;
        }
        co_await p->port().dispatchUpcall();
    }
}

exec::CoTask<void>
Kernel::injectHandlerFault(Process *p)
{
    // A page far outside any application heap, reserved on first use;
    // each injection takes the full page-fault trap path and then
    // returns the frame so the pool stays conserved and the next
    // injection faults again.
    constexpr std::uint64_t kScratchPage = 0xfa017000000ull;
    if (p->as().state(kScratchPage) == PageState::Unmapped)
        p->as().reserve(kScratchPage, 1);
    if (!p->as().needsFault(kScratchPage))
        co_return;
    co_await cpu().trap(core::kTrapPageFault, kScratchPage);
    if (p->as().state(kScratchPage) == PageState::Mapped)
        p->as().unmapPage(kScratchPage);
}

// ---------------------------------------------------------------------
// Traps
// ---------------------------------------------------------------------

exec::Task
Kernel::onDisposeExtend(exec::ContextPtr)
{
    Process *p = current_;
    fugu_assert(p && p->buffered,
                "dispose-extend outside buffered mode");
    // Emulate the dispose: pop the software buffer and reset the
    // dispose-pending hook exactly as the hardware dispose would.
    ni().setKernelUac(0, kUacDisposePending);
    {
        // Buffered-path delivery completes here.
        const net::Packet &f = p->vbuf().front();
        if (auto *ck = m_.checker())
            ck->onDeliver(f, id_, p->gid(), /*buffered_path=*/true);
        const Cycle lat = cpu().now() - f.injectedAt;
        stats.bufLatency.sample(static_cast<double>(lat));
        FUGU_TRACE(tracer(), id_, trace::Type::BufExtract,
                   trace::userMsgId(f.seq), trace::DivertReason::None,
                   trace::packExtractAux(f.gid, lat));
    }
    p->vbuf().pop();
    if (!p->vbuf().empty() && p->vbuf().frontSwapped()) {
        co_await cpu().spend(costs().pageInLatency);
        while (!p->vbuf().pageInFront())
            co_await cpu().spend(1000);
    }
    if (p->vbuf().empty() && !m_.cfg.alwaysBuffered) {
        co_await cpu().spend(costs().modeTransition);
        exitBuffered(p);
    }
}

exec::Task
Kernel::onAtomicityExtend(exec::ContextPtr)
{
    Process *p = current_;
    fugu_assert(p, "atomicity-extend with no process");
    // Complete the endatom the user attempted, clear the hook, and
    // let the deferred buffered messages be handled.
    ni().setKernelUac(0, kUacAtomicityExtend);
    ni().writeUac(ni().uac() & ~kUacInterruptDisable);
    p->atomicGate = false;
    ensureDrain(p);
    co_return;
}

exec::Task
Kernel::onPageFault(exec::ContextPtr victim)
{
    Process *p = current_;
    fugu_assert(p, "page fault with no process");
    ++stats.pageFaults;
    co_await cpu().spend(costs().pageZeroFill);
    const std::uint64_t page = victim->trapArg;
    FUGU_TRACE(tracer(), id_, trace::Type::PageFault, 0,
               trace::DivertReason::None,
               static_cast<std::uint32_t>(page));
    while (!p->as().mapPage(page))
        co_await cpu().spend(1000); // wait for the pool to drain
    // A page fault inside an atomic section (e.g. in a handler) must
    // not block the network: switch to buffered mode (Section 4.3).
    if ((ni().uac() & kUacInterruptDisable) && !p->buffered) {
        co_await cpu().spend(costs().modeTransition);
        // Another divert can land while the transition cost is
        // pending; entering twice would corrupt the port state.
        if (p == current_ && !p->buffered)
            enterBuffered(p, /*from_atomic=*/true,
                          trace::DivertReason::PageFault);
    }
}

exec::Task
Kernel::onFatalTrap(exec::ContextPtr victim, const char *what)
{
    fugu_fatal("node ", id_, ": process killed in context '",
               victim->name(), "': ", what);
    co_return;
}

// ---------------------------------------------------------------------
// Second network / kernel messaging
// ---------------------------------------------------------------------

exec::Task
Kernel::onOsNet()
{
    const auto &c = costs();
    co_await cpu().spend(c.interruptOverhead + c.registerSave);
    auto &nic = m_.node(id_).osnic;
    while (!nic.empty()) {
        net::Packet pkt = nic.pop();
        Word id = pkt.handler;
        ++stats.kernelMsgs;
        FUGU_TRACE(tracer(), id_, trace::Type::KernelMsg,
                   trace::osMsgId(pkt.seq), trace::DivertReason::None,
                   pkt.handler);
        co_await cpu().spend(
            c.nullHandler +
            c.receiveArgCost(static_cast<unsigned>(pkt.payload.size())));
        if (id < kernelHandlers_.size() && kernelHandlers_[id])
            co_await kernelHandlers_[id](*this, std::move(pkt));
    }
    co_await cpu().spend(c.registerRestore);
}

exec::CoTask<void>
Kernel::kernelSend(NodeId dst, Word handler, net::PayloadVec payload)
{
    const auto &c = costs();
    const unsigned words = 2 + static_cast<unsigned>(payload.size());
    co_await cpu().spend(
        c.descriptorConstruction +
        c.sendArgCost(static_cast<unsigned>(payload.size())));
    auto saved = ni().saveOutput();
    while (!ni().spaceAvailable(dst, words))
        co_await cpu().spend(4);
    ni().writeOutput(0, core::makeHeader(dst, /*kernel=*/true));
    ni().writeOutput(1, handler);
    for (unsigned i = 0; i < payload.size(); ++i)
        ni().writeOutput(2 + i, payload[i]);
    co_await cpu().spend(c.launch);
    NiTrap t = ni().launch(words, /*user_mode=*/false);
    fugu_assert(t == NiTrap::None);
    ni().restoreOutput(saved);
}

exec::CoTask<void>
Kernel::osSend(NodeId dst, Word handler, net::PayloadVec payload)
{
    const auto &c = costs();
    co_await cpu().spend(c.descriptorConstruction + c.launch);
    net::Packet pkt;
    pkt.src = id_;
    pkt.dst = dst;
    pkt.gid = kKernelGid;
    pkt.handler = handler;
    pkt.payload = std::move(payload);
    while (!m_.osnet.canAccept(id_, dst, pkt.size()))
        co_await cpu().spend(16);
    m_.osnet.send(std::move(pkt));
}

// ---------------------------------------------------------------------
// Gang quantum switch and idle dispatch
// ---------------------------------------------------------------------

exec::Task
Kernel::onSched()
{
    co_await cpu().spend(costs().processSwitch);
    if (!havePendingNext_)
        co_return;
    Process *next = pendingNext_;
    pendingNext_ = nullptr;
    havePendingNext_ = false;
    if (next == current_)
        co_return;
    ++stats.processSwitches;
    FUGU_TRACE(tracer(), id_, trace::Type::QuantumSwitch, 0,
               trace::DivertReason::None,
               next ? next->gid() : 0xffffu);

    auto self = cpu().current();
    auto stolen = self->takeReturnTo();
    if (current_) {
        if (stolen) {
            // An interrupted rt thread goes back on its run queue so
            // priority ordering (drain thread first) is preserved —
            // unless it was interrupted in the middle of describing a
            // message, in which case it must be the first context to
            // touch the NI send side again. Non-thread contexts
            // (upcalls) always park in savedCtx.
            auto t = current_->threads().threadOf(stolen);
            if (t && ni().descriptorLength() == 0) {
                current_->threads().makeReady(t);
            } else {
                fugu_assert(!current_->savedCtx,
                            "double-saved context at quantum switch");
                current_->savedCtxUrgent =
                    ni().descriptorLength() > 0;
                current_->savedCtx = std::move(stolen);
            }
        }
        current_->savedUac = ni().uac();
        current_->savedOutput = ni().saveOutput();
    } else {
        fugu_assert(!stolen, "interrupted context with no process");
    }

    current_ = next;
    if (!next) {
        ni().setGid(kIdleGid);
        ni().writeUac(0);
        ni().setDivert(false);
        co_return;
    }

    ni().setGid(next->gid());
    ni().writeUac(next->savedUac);
    ni().restoreOutput(next->savedOutput);
    next->savedOutput.clear();
    ni().setDivert(next->buffered);

    // Transparency at the start of a quantum (Section 4.3): begin in
    // buffered mode if messages were buffered while descheduled.
    if (m_.cfg.alwaysBuffered && !next->buffered)
        enterBuffered(next, (ni().uac() & kUacInterruptDisable) != 0,
                      trace::DivertReason::Config);
    if (!next->buffered && !next->vbuf().empty()) {
        co_await cpu().spend(costs().modeTransition);
        // A divert can land while the transition cost is pending.
        if (next == current_ && !next->buffered)
            enterBuffered(next,
                          (ni().uac() & kUacInterruptDisable) != 0,
                          trace::DivertReason::QuantumCarry);
    }
    ensureDrain(next);
}

void
Kernel::dispatchIdle()
{
    Process *p = current_;
    if (!p || p->suspended)
        return;
    // Buffered-mode atomicity emulation (Section 4.2): the
    // message-handling thread runs in preference to other threads,
    // including the thread frozen at the last quantum switch — unless
    // that thread holds a suspended atomic section (atomicGate), in
    // which case it must finish first.
    const bool drain_first = p->buffered && !p->atomicGate &&
                             !p->savedCtxUrgent && p->drainThread &&
                             !p->drainThread->finished();
    if (p->savedCtx && !drain_first) {
        auto c = std::move(p->savedCtx);
        p->savedCtx = nullptr;
        p->savedCtxUrgent = false;
        cpu().switchTo(std::move(c));
        return;
    }
    if (auto ctx = p->threads().pickNext()) {
        cpu().switchTo(std::move(ctx));
        return;
    }
    if (p->savedCtx) {
        auto c = std::move(p->savedCtx);
        p->savedCtx = nullptr;
        p->savedCtxUrgent = false;
        cpu().switchTo(std::move(c));
    }
}

} // namespace fugu::glaze
