/**
 * @file
 * Machine-wide invariant checker.
 *
 * The paper's central claim is that two-case delivery is *transparent*:
 * whatever mixture of fast-path and software-buffered delivery a run
 * happens to take — including fault-injected storms of mode switches —
 * an application observes exactly the semantics of a reliable,
 * per-sender-FIFO, protection-checked message layer. This checker
 * verifies that continuously, from inside the machine:
 *
 *  - per-sender FIFO: messages of one (src,dst,gid) stream are
 *    consumed in injection order, across any number of fast/buffered
 *    transitions;
 *  - content transparency: the packet handed to user code is
 *    bit-identical to the packet injected (checksummed end to end);
 *  - protection: no packet is ever delivered to a process whose GID
 *    differs from the packet's stamp, and a handler never observes a
 *    matching head it should not see;
 *  - atomicity: a handler only runs inside the hardware atomic section
 *    (direct path) or under the drain thread's software equivalent,
 *    and never while the drain is gated behind a suspended user
 *    atomic section;
 *  - conservation: every physical frame in use is accounted for by a
 *    pinned allocation, a resident vbuf page, or a mapped heap page;
 *  - accounting: the trace's per-cause Divert events sum to the
 *    kernels' bufferInserts counters.
 *
 * The checker is always compiled and on by default; it observes via
 * the net::PacketWatcher hooks plus a per-dispatch callback, keeps no
 * RNG and schedules no events, so enabling it never perturbs the
 * simulation timeline.
 */

#ifndef FUGU_GLAZE_CHECK_HH
#define FUGU_GLAZE_CHECK_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "net/packet.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace fugu::sim
{
class Binder;
}

namespace fugu::glaze
{

class Machine;
class Process;

struct CheckConfig
{
    /** Master switch; off removes every hook's work (not the hooks). */
    bool enabled = true;

    /** Treat any violation as fatal (abort the run). */
    bool fatal = false;

    /** Verify payload checksums end to end (content transparency). */
    bool content = true;

    /** Run a frame-conservation sweep every N deliveries (0 = only
     *  at finalChecks). */
    std::uint64_t sweepEvery = 64;

    /**
     * Starvation: max cycles a GID with traffic pending may go
     * unserviced before it counts as a violation. 0 records the
     * per-GID service-gap watermarks without judging them — gang
     * descheduling legitimately opens gaps of a quantum or more, so
     * any limit must be set per scenario, above the quantum.
     */
    Cycle serviceGapLimit = 0;

    /**
     * Isolation: max fraction of one node's frame pool a single GID
     * may hold (vbuf-resident + heap-mapped pages). 0 records the
     * occupancy watermarks without judging them.
     */
    double frameShareLimit = 0.0;
};

/** Register CheckConfig's fields on the scenario/config tree. */
void bindConfig(sim::Binder &b, CheckConfig &c);

class InvariantChecker final : public net::PacketWatcher
{
  public:
    InvariantChecker(Machine &m, CheckConfig cfg);

    /// @name net::PacketWatcher (user network only)
    /// @{
    void onInject(const net::Packet &pkt) override;
    void onDeliver(const net::Packet &pkt, NodeId node, Gid receiver_gid,
                   bool buffered_path) override;
    void onDrop(const net::Packet &pkt, NodeId node) override;
    /// @}

    /** Called by Process at every handler dispatch, both paths. */
    void onDispatch(Process &p, bool buffered_path);

    /**
     * End-of-run checks: frame conservation on every node and Divert
     * trace events summing to the kernels' bufferInserts. Called by
     * Machine::runUntilDone on successful completion; harmless to
     * call more than once.
     */
    void finalChecks();

    /**
     * Parallel (bound-weave) engine: hooks then arrive from several
     * shard threads at once, so they serialize on a mutex, and
     * machine-wide conservation sweeps (which read every shard's
     * frame pools) defer to the next phase barrier.
     */
    void setParallel(bool on) { parallel_ = on; }

    /** Run any deferred conservation sweep; phase-barrier context. */
    void barrierSweep();

    /** Total violations of any class seen so far. */
    double totalViolations() const;

    /**
     * Per-GID isolation metrics, accumulated alongside the
     * transparency checks (adversarial-neighbor reporting).
     */
    struct GidIsolation
    {
        /** Watermark: longest wait of pending traffic for service. */
        Cycle serviceGapMax = 0;
        /** Victim-side divert attribution: deliveries per path. */
        std::uint64_t direct = 0;
        std::uint64_t buffered = 0;
        /** Watermark: most frames this GID held on any one node. */
        unsigned framePeak = 0;
        /** Watermark: largest fraction of one node's frame pool. */
        double frameShareMax = 0.0;
    };

    /** Isolation metrics of @p gid (zeros if never seen). */
    GidIsolation isolation(Gid gid) const;

    struct Stats
    {
        explicit Stats(StatGroup *parent);
        StatGroup group;
        Scalar checkedDeliveries;
        Scalar fifoViolations;
        Scalar contentViolations;
        Scalar gidViolations;
        Scalar atomicityViolations;
        Scalar conservationViolations;
        Scalar accountingViolations;
        Scalar unknownDeliveries;
        Scalar starvationViolations;
        Scalar isolationViolations;
        /** Machine-wide watermarks (max over every GID). */
        Scalar maxServiceGap;
        Scalar maxFrameShare;
    };

    Stats stats;

  private:
    /** One per-stream key: (src, dst, gid). */
    static std::uint64_t
    streamKey(NodeId src, NodeId dst, Gid gid)
    {
        return (static_cast<std::uint64_t>(src) << 32) |
               (static_cast<std::uint64_t>(dst) << 16) | gid;
    }

    static std::uint64_t checksum(const net::Packet &pkt);

    void report(Scalar &counter, const std::string &msg);
    void sweepConservation();

    /** Hook-entry guard: locks only when the engine is parallel. */
    std::unique_lock<std::mutex>
    lockIfParallel() const
    {
        return parallel_ ? std::unique_lock<std::mutex>(mu_)
                         : std::unique_lock<std::mutex>();
    }

    struct PendingMsg
    {
        std::uint64_t checksum;
        std::uint64_t orderIdx; ///< position within its stream
    };

    /** Live per-GID starvation/occupancy bookkeeping. */
    struct GidState
    {
        GidIsolation iso;
        Cycle lastService = 0;   ///< cycle of the last delivery
        Cycle pendingSince = 0;  ///< earliest undelivered inject
        std::uint64_t pending = 0;
    };

    void noteService(GidState &g, Gid gid, Cycle now,
                     bool buffered_path);

    Machine &m_;
    CheckConfig cfg_;

    /** In-flight user messages, keyed by injection seq. */
    std::unordered_map<std::uint64_t, PendingMsg> pending_;

    /** Next order index to assign / expect, per stream. */
    std::unordered_map<std::uint64_t, std::uint64_t> sendIdx_;
    std::unordered_map<std::uint64_t, std::uint64_t> consumeIdx_;

    /** Isolation/starvation metrics per application GID. */
    std::unordered_map<Gid, GidState> gids_;

    std::uint64_t deliveries_ = 0;
    bool parallel_ = false;
    bool sweepPending_ = false;
    mutable std::mutex mu_;
};

} // namespace fugu::glaze

#endif // FUGU_GLAZE_CHECK_HH
