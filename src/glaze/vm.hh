/**
 * @file
 * Physical frames and per-process virtual memory.
 *
 * Glaze (like the paper's, see footnote 4) does not page user memory
 * to disk: it supports demand-zero allocation and, for the virtual
 * buffering system, page-out of buffer pages over the second network
 * as the deadlock-free path to backing store. The FramePool models
 * the per-node pool of physical page frames shared by all consumers;
 * the AddressSpace models a process's demand-zero heap (touching an
 * unmapped-but-reserved page takes a page-fault trap, which is one of
 * the three triggers for buffered mode).
 */

#ifndef FUGU_GLAZE_VM_HH
#define FUGU_GLAZE_VM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace fugu::sim
{
class FaultInjector;
}

namespace fugu::glaze
{

/** Page size in words (4 KB with 32-bit words). */
inline constexpr unsigned kPageWords = 1024;

/** Per-node pool of physical page frames. */
class FramePool
{
  public:
    FramePool(unsigned total, StatGroup *parent, NodeId id);

    unsigned total() const { return total_; }
    unsigned free() const { return total_ - used_; }
    unsigned used() const { return used_; }

    /** @return true and takes a frame, or false if none are free. */
    bool tryAllocate();

    void release();

    /** Free-frame count below which overflow control engages. */
    unsigned lowWatermark() const { return watermark_; }
    void setLowWatermark(unsigned w) { watermark_ = w; }
    bool belowWatermark() const { return free() <= watermark_; }

    /**
     * Attach a fault injector: tryAllocate feigns exhaustion at the
     * configured rate, driving callers through the same retry /
     * overflow-control paths a genuinely full pool would.
     */
    void setFault(sim::FaultInjector *fault) { fault_ = fault; }

    struct Stats
    {
        Stats(StatGroup *parent, NodeId id);
        StatGroup group;
        Scalar allocations;
        Scalar peakUsed;
        Scalar allocationFailures;
    };

    Stats stats;

  private:
    unsigned total_;
    unsigned used_ = 0;
    unsigned watermark_ = 2;
    sim::FaultInjector *fault_ = nullptr;
};

/** Demand-zero page state in an address space. */
enum class PageState
{
    Unmapped,  ///< not reserved: access is a fatal protection error
    ZeroFill,  ///< reserved, no frame yet: access faults, then maps
    Mapped,    ///< backed by a physical frame
};

/**
 * A process's (per-node) address space: a sparse map of page numbers.
 * Application heaps reserve ranges demand-zero; the first touch of
 * each page takes a page-fault trap into the kernel.
 */
class AddressSpace
{
  public:
    explicit AddressSpace(FramePool &frames) : frames_(frames) {}

    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /** Reserve @p npages demand-zero pages starting at @p first. */
    void reserve(std::uint64_t first, std::uint64_t npages);

    PageState state(std::uint64_t page) const;

    /**
     * Does touching @p page require a page-fault trap?
     * (ZeroFill pages do; Unmapped pages are fatal.)
     */
    bool needsFault(std::uint64_t page) const;

    /**
     * Kernel side of the fault: back the page with a frame.
     * @return false if no frame was available (caller must wait for
     *         the pool to drain and retry).
     */
    bool mapPage(std::uint64_t page);

    /** Release the frame backing @p page (back to ZeroFill). */
    void unmapPage(std::uint64_t page);

    unsigned mappedPages() const { return mapped_; }

  private:
    FramePool &frames_;
    std::unordered_map<std::uint64_t, PageState> pages_;
    unsigned mapped_ = 0;
};

} // namespace fugu::glaze

#endif // FUGU_GLAZE_VM_HH
