#include "glaze/check.hh"

#include <string>

#include "glaze/kernel.hh"
#include "glaze/machine.hh"
#include "glaze/process.hh"
#include "sim/config.hh"
#include "sim/log.hh"
#include "trace/trace.hh"

namespace fugu::glaze
{

void
bindConfig(sim::Binder &b, CheckConfig &c)
{
    b.item("enabled", c.enabled,
           "run the machine-wide invariant checker");
    b.item("fatal", c.fatal,
           "abort the run on the first invariant violation");
    b.item("content", c.content,
           "verify end-to-end payload checksums (transparency)");
    b.item("sweep_every", c.sweepEvery,
           "frame-conservation sweep period (0 = final check only)",
           "deliveries");
    b.item("service_gap_limit", c.serviceGapLimit,
           "max unserviced wait per GID before a starvation violation "
           "(0 = watermark only)",
           "cycles");
    b.item("frame_share_limit", c.frameShareLimit,
           "max fraction of one node's frames a single GID may hold "
           "(0 = watermark only)");
}

InvariantChecker::Stats::Stats(StatGroup *parent)
    : group("check", parent),
      checkedDeliveries(&group, "checked_deliveries",
                        "user messages verified end to end"),
      fifoViolations(&group, "fifo_violations",
                     "per-sender FIFO order violations"),
      contentViolations(&group, "content_violations",
                        "payload checksum mismatches"),
      gidViolations(&group, "gid_violations",
                    "cross-GID delivery / visibility violations"),
      atomicityViolations(&group, "atomicity_violations",
                          "handler dispatches outside an atomic section"),
      conservationViolations(&group, "conservation_violations",
                             "frame-pool accounting mismatches"),
      accountingViolations(&group, "accounting_violations",
                           "trace Divert counts vs kernel bufferInserts"),
      unknownDeliveries(&group, "unknown_deliveries",
                        "deliveries of packets never seen injected"),
      starvationViolations(&group, "starvation_violations",
                           "per-GID service gaps past the limit"),
      isolationViolations(&group, "isolation_violations",
                          "per-GID frame-pool shares past the limit"),
      maxServiceGap(&group, "max_service_gap",
                    "watermark: longest pending-traffic service gap"),
      maxFrameShare(&group, "max_frame_share",
                    "watermark: largest single-GID frame-pool share")
{
}

InvariantChecker::InvariantChecker(Machine &m, CheckConfig cfg)
    : stats(&m.root), m_(m), cfg_(cfg)
{
}

std::uint64_t
InvariantChecker::checksum(const net::Packet &pkt)
{
    // FNV-1a over everything user code can observe about the message.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(pkt.src);
    mix(pkt.dst);
    mix(pkt.gid);
    mix(pkt.handler);
    mix(pkt.payload.size());
    for (Word w : pkt.payload)
        mix(w);
    return h;
}

void
InvariantChecker::report(Scalar &counter, const std::string &msg)
{
    ++counter;
    warn("invariant violation @", m_.checkTime(), ": ", msg);
    if (cfg_.fatal)
        fugu_fatal("invariant violation (check.fatal=true): ", msg);
}

void
InvariantChecker::onInject(const net::Packet &pkt)
{
    if (!cfg_.enabled)
        return;
    // Kernel-tagged messages are internal protocol (scheduler
    // broadcasts etc.), not application messages with delivery
    // semantics to verify.
    if (pkt.gid == kKernelGid)
        return;
    auto lock = lockIfParallel();
    const std::uint64_t key = streamKey(pkt.src, pkt.dst, pkt.gid);
    pending_.emplace(pkt.seq,
                     PendingMsg{cfg_.content ? checksum(pkt) : 0,
                                sendIdx_[key]++});
    // Starvation clock: the GID now has traffic pending; if it had
    // none before, gaps measure from this inject, so idle tenants
    // accrue nothing.
    GidState &g = gids_[pkt.gid];
    if (g.pending++ == 0)
        g.pendingSince = m_.checkTime();
}

void
InvariantChecker::onDeliver(const net::Packet &pkt, NodeId node,
                            Gid receiver_gid, bool buffered_path)
{
    if (!cfg_.enabled || pkt.gid == kKernelGid)
        return;
    auto lock = lockIfParallel();

    if (pkt.gid != receiver_gid)
        report(stats.gidViolations,
               detail::concat("packet gid ", pkt.gid, " consumed by gid ",
                         receiver_gid, " on node ", node,
                         buffered_path ? " (buffered)" : " (direct)"));
    if (pkt.dst != node)
        report(stats.gidViolations,
               detail::concat("packet for node ", pkt.dst,
                         " consumed on node ", node));

    noteService(gids_[pkt.gid], pkt.gid, m_.checkTime(),
                buffered_path);

    auto it = pending_.find(pkt.seq);
    if (it == pending_.end()) {
        report(stats.unknownDeliveries,
               detail::concat("seq ", pkt.seq, " consumed on node ", node,
                         " was never injected (or consumed twice)"));
        return;
    }

    const std::uint64_t key = streamKey(pkt.src, pkt.dst, pkt.gid);
    std::uint64_t &expect = consumeIdx_[key];
    if (it->second.orderIdx != expect)
        report(stats.fifoViolations,
               detail::concat("stream (", pkt.src, "->", pkt.dst, ", gid ",
                         pkt.gid, ") consumed message #",
                         it->second.orderIdx, " but #", expect,
                         " was next",
                         buffered_path ? " (buffered)" : " (direct)"));
    if (it->second.orderIdx >= expect)
        expect = it->second.orderIdx + 1;

    if (cfg_.content && it->second.checksum != checksum(pkt))
        report(stats.contentViolations,
               detail::concat("seq ", pkt.seq, " payload changed between ",
                         "inject and consume (stream ", pkt.src, "->",
                         pkt.dst, ")"));

    pending_.erase(it);
    ++stats.checkedDeliveries;

    ++deliveries_;
    if (cfg_.sweepEvery && deliveries_ % cfg_.sweepEvery == 0) {
        // A sweep reads every shard's frame pools and vbufs; under
        // the parallel engine that is only safe at a phase barrier.
        if (parallel_)
            sweepPending_ = true;
        else
            sweepConservation();
    }
}

void
InvariantChecker::barrierSweep()
{
    if (!cfg_.enabled || !sweepPending_)
        return;
    sweepPending_ = false;
    sweepConservation();
}

void
InvariantChecker::onDrop(const net::Packet &pkt, NodeId node)
{
    if (!cfg_.enabled || pkt.gid == kKernelGid)
        return;
    auto lock = lockIfParallel();
    (void)node;
    // A kernel-policy drop (no process owns the GID here) retires the
    // message's slot in its stream so later deliveries — if a process
    // does own the GID elsewhere in time — still FIFO-check cleanly.
    auto it = pending_.find(pkt.seq);
    if (it == pending_.end())
        return;
    const std::uint64_t key = streamKey(pkt.src, pkt.dst, pkt.gid);
    std::uint64_t &expect = consumeIdx_[key];
    if (it->second.orderIdx >= expect)
        expect = it->second.orderIdx + 1;
    pending_.erase(it);
    // The dropped message no longer waits for service.
    GidState &g = gids_[pkt.gid];
    if (g.pending && --g.pending == 0)
        g.pendingSince = 0;
}

void
InvariantChecker::onDispatch(Process &p, bool buffered_path)
{
    if (!cfg_.enabled)
        return;
    auto lock = lockIfParallel();

    // Handler atomicity (Section 3): a direct-path handler runs with
    // the hardware atomic section on; a buffered-path handler runs
    // under the drain thread. Neither may run while the drain is
    // gated behind a user atomic section suspended by revocation —
    // except the gated context itself (a resumed upcall that owns the
    // suspended section) finishing its own extraction, which is not
    // the drain thread.
    if (!p.port().buffered() && !p.port().atomicityOn())
        report(stats.atomicityViolations,
               detail::concat("direct dispatch outside an atomic section on ",
                         "node ", p.node(), " gid ", p.gid()));
    if (p.atomicGate && p.drainThread &&
        p.threads().current() == p.drainThread)
        report(stats.atomicityViolations,
               detail::concat("drain dispatch while the atomicity gate is ",
                         "closed on node ", p.node(), " gid ", p.gid()));

    // Protection: in direct mode the head the hardware would hand out
    // must carry this process's GID.
    if (!buffered_path && !p.port().ni().divert() &&
        p.port().ni().head() != nullptr &&
        p.port().ni().head()->gid != p.gid())
        report(stats.gidViolations,
               detail::concat("direct dispatch with a foreign-gid head on ",
                         "node ", p.node(), " (head gid ",
                         p.port().ni().head()->gid, ", process gid ",
                         p.gid(), ")"));
}

void
InvariantChecker::noteService(GidState &g, Gid gid, Cycle now,
                              bool buffered_path)
{
    // Starvation watermark: how long this GID's oldest pending
    // message had been waiting when service finally arrived. Measured
    // from the later of the last delivery and the first queued
    // inject; skipped entirely when no inject was tracked (a
    // delivery the injector never saw is the unknown-delivery check's
    // business, not a service gap).
    if (g.pending) {
        const Cycle since = g.lastService > g.pendingSince
                                ? g.lastService
                                : g.pendingSince;
        const Cycle gap = now > since ? now - since : 0;
        if (gap > g.iso.serviceGapMax)
            g.iso.serviceGapMax = gap;
        if (static_cast<double>(gap) > stats.maxServiceGap.value())
            stats.maxServiceGap.set(static_cast<double>(gap));
        if (cfg_.serviceGapLimit && gap > cfg_.serviceGapLimit)
            report(stats.starvationViolations,
                   detail::concat("gid ", gid, " went ", gap,
                             " cycles unserviced with traffic ",
                             "pending (limit ", cfg_.serviceGapLimit,
                             ")"));
        if (--g.pending == 0)
            g.pendingSince = 0;
    }
    g.lastService = now;
    // Victim-side divert attribution: which path served this tenant.
    if (buffered_path)
        ++g.iso.buffered;
    else
        ++g.iso.direct;
}

InvariantChecker::GidIsolation
InvariantChecker::isolation(Gid gid) const
{
    auto lock = lockIfParallel();
    const auto it = gids_.find(gid);
    return it == gids_.end() ? GidIsolation{} : it->second.iso;
}

void
InvariantChecker::sweepConservation()
{
    for (NodeId n = 0; n < m_.nodeCount(); ++n) {
        unsigned expected = m_.pinnedFrames(n);
        std::unordered_map<Gid, unsigned> held;
        for (const auto &proc : m_.processes) {
            if (proc->node() != n)
                continue;
            const unsigned frames = proc->vbuf().pagesResident() +
                                    proc->as().mappedPages();
            expected += frames;
            held[proc->gid()] += frames;
        }
        const unsigned used = m_.node(n).frames.used();
        if (used != expected)
            report(stats.conservationViolations,
                   detail::concat("node ", n, " frame pool uses ", used,
                             " frames but ", expected,
                             " are accounted for (pinned + vbuf ",
                             "resident + heap mapped)"));

        // Cross-tenant occupancy, fed by the same accounting the
        // conservation check just verified: how much of this node's
        // pool each GID pins right now.
        const unsigned total = m_.node(n).frames.total();
        if (total == 0)
            continue;
        for (const auto &[gid, frames] : held) {
            GidState &g = gids_[gid];
            if (frames > g.iso.framePeak)
                g.iso.framePeak = frames;
            const double share =
                static_cast<double>(frames) / total;
            if (share > g.iso.frameShareMax)
                g.iso.frameShareMax = share;
            if (share > stats.maxFrameShare.value())
                stats.maxFrameShare.set(share);
            if (cfg_.frameShareLimit > 0.0 &&
                share > cfg_.frameShareLimit)
                report(stats.isolationViolations,
                       detail::concat("gid ", gid, " holds ", frames,
                                 " of ", total, " frames on node ", n,
                                 " (share limit ",
                                 cfg_.frameShareLimit, ")"));
        }
    }
}

void
InvariantChecker::finalChecks()
{
    if (!cfg_.enabled)
        return;
    sweepConservation();

    // Per-cause Divert trace events must sum to the kernels'
    // bufferInserts counters — every software-buffered insertion is
    // attributed to exactly one cause. Only checkable when every
    // shard's ring kept every event.
    const auto &tracers = m_.allTracers();
    if (tracers.empty())
        return;
    std::uint64_t diverts = 0;
    for (const auto &tr : tracers) {
        const trace::TraceBuffer &buf = tr->buffer();
        if (buf.dropped() != 0)
            return;
        for (std::size_t i = 0; i < buf.size(); ++i)
            if (buf[i].type ==
                static_cast<std::uint8_t>(trace::Type::Divert))
                ++diverts;
    }
    double inserts = 0;
    for (NodeId n = 0; n < m_.nodeCount(); ++n)
        inserts += m_.node(n).kernel.stats.bufferInserts.value();
    if (diverts != static_cast<std::uint64_t>(inserts))
        report(stats.accountingViolations,
               detail::concat("trace records ", diverts,
                         " Divert events but kernels count ", inserts,
                         " buffer inserts"));
}

double
InvariantChecker::totalViolations() const
{
    return stats.fifoViolations.value() + stats.contentViolations.value() +
           stats.gidViolations.value() +
           stats.atomicityViolations.value() +
           stats.conservationViolations.value() +
           stats.accountingViolations.value() +
           stats.unknownDeliveries.value() +
           stats.starvationViolations.value() +
           stats.isolationViolations.value();
}

} // namespace fugu::glaze
