/**
 * @file
 * Kernel: the per-node half of the Glaze operating system.
 *
 * Owns the trap/interrupt vectors and implements the software side of
 * two-case delivery (Section 4):
 *
 *  - the message-available stub: prologue costs, GID/timer/upcall
 *    bookkeeping, then an upcall context running the user handler,
 *    with the dispose-pending / atomicity-extend exit hooks;
 *  - the mismatch-available handler: kernel-message dispatch, and the
 *    buffer-insert path into the target process's virtual buffer
 *    (including demand page allocation and overflow control);
 *  - the atomicity-timeout handler: revocation — transparent entry
 *    into buffered mode;
 *  - the dispose-extend / dispose-failure / atomicity-extend /
 *    bad-dispose / protection / page-fault traps;
 *  - the gang-scheduler quantum switch (save/restore of the NI user
 *    state, GID, divert-mode) and the idle-hook dispatcher that feeds
 *    the current process's thread scheduler.
 */

#ifndef FUGU_GLAZE_KERNEL_HH
#define FUGU_GLAZE_KERNEL_HH

#include <functional>
#include <unordered_map>

#include "sim/ring.hh"

#include "core/costs.hh"
#include "core/netif.hh"
#include "glaze/process.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace fugu::glaze
{

class Machine;
class Kernel;

/** GID installed when no process is scheduled. */
inline constexpr Gid kIdleGid = 0xfffe;

/** Handler for a kernel (OS) message, on either network. */
using KernelHandler =
    std::function<exec::CoTask<void>(Kernel &, net::Packet)>;

/** Well-known kernel message ids. */
enum KernelMsgId : Word
{
    kOsNull = 0,       ///< no-op (kernel messaging microbenchmark)
    kOsSuspendJob = 1, ///< overflow control: suspend gid payload[0]
    kOsResumeJob = 2,  ///< overflow control: resume gid payload[0]
    kOsUser = 8,       ///< first id free for benches/tests
};

/** Second-network receive queue (the OS's deadlock-free path). */
class OsNic : public net::NetSink
{
  public:
    OsNic(exec::Cpu &cpu, net::Network &osnet, NodeId id);

    bool tryDeliver(net::Packet &&pkt) override;

    bool empty() const { return q_.empty(); }
    net::Packet pop();

    /** Attach a message-lifecycle trace recorder (null to disable). */
    void setTracer(trace::Recorder *tracer) { tracer_ = tracer; }

  private:
    exec::Cpu &cpu_;
    NodeId id_;
    trace::Recorder *tracer_ = nullptr;
    sim::RingDeque<net::Packet> q_;
};

class Kernel
{
  public:
    Kernel(Machine &machine, NodeId id);

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Install interrupt/trap vectors and the idle hook. */
    void init();

    NodeId id() const { return id_; }
    exec::Cpu &cpu();
    core::NetIf &ni();
    FramePool &frames();
    const core::CostModel &costs() const;
    core::AtomicityMode atomicity() const;

    /// @name Processes
    /// @{

    void addProcess(Process *p);
    Process *findProcess(Gid gid) const;
    Process *current() const { return current_; }

    /** Make @p p current immediately (boot-time; no cost). */
    void installProcess(Process *p);

    /// @}
    /// @name Gang scheduling interface
    /// @{

    /** Request a switch to @p next at the next opportunity. */
    void requestSwitch(Process *next);

    /// @}
    /// @name Kernel messaging
    /// @{

    void setKernelHandler(Word id, KernelHandler fn);

    /** Send a kernel message on the main network. */
    exec::CoTask<void> kernelSend(NodeId dst, Word handler,
                                  net::PayloadVec payload = {});

    /** Send a kernel message on the second (OS) network. */
    exec::CoTask<void> osSend(NodeId dst, Word handler,
                              net::PayloadVec payload = {});

    /// @}

    /**
     * (Re)start the buffered-mode message-handling thread for @p p if
     * messages remain and no atomic section defers them.
     */
    void ensureDrain(Process *p);

    /**
     * Transparent switch into the software-buffered case. @p cause
     * records why for trace attribution (Section 4.2/4.3 triggers).
     */
    void enterBuffered(Process *p, bool from_atomic,
                       trace::DivertReason cause);

    /**
     * Fault hook: force the current process into buffered mode right
     * now, exercising the same transition an atomicity timeout or
     * page fault would take. No-op if there is no current process or
     * it is already buffered/suspended — like injectAtomicityTimeout,
     * the storm must stay within states the hardware could reach.
     */
    void forceDivert();

    struct Stats
    {
        Stats(StatGroup *parent, NodeId id);
        StatGroup group;
        Scalar upcalls;
        Scalar spuriousUpcalls;
        Scalar bufferInserts;
        Scalar kernelMsgs;
        Scalar processSwitches;
        Scalar modeEntries;
        Scalar modeExits;
        Scalar pageFaults;
        Scalar overflowEvents;
        Scalar droppedNoProcess;
        Histogram bufLatency;
    };

    Stats stats;

  private:
    friend class Machine;

    /// @name Interrupt handlers (kernel contexts)
    /// @{
    exec::Task onMessageAvailable();
    exec::Task onMismatchAvailable();
    exec::Task onAtomicityTimeout();
    exec::Task onOsNet();
    exec::Task onSched();
    /// @}

    /// @name Trap handlers
    /// @{
    exec::Task onDisposeExtend(exec::ContextPtr victim);
    exec::Task onAtomicityExtend(exec::ContextPtr victim);
    exec::Task onPageFault(exec::ContextPtr victim);
    exec::Task onFatalTrap(exec::ContextPtr victim, const char *what);
    /// @}

    /** The upcall context body: user handler + stub epilogue. */
    exec::Task upcallBody(Process *p, net::MsgVec saved_output);

    /** Buffered-mode message-handling thread body. */
    exec::Task drainBody(Process *p);

    /** Insert a diverted message into its process's virtual buffer. */
    exec::CoTask<void> bufferInsert(Process *p, net::Packet pkt,
                                    trace::DivertReason reason);

    /** The machine's trace recorder (null when tracing is off). */
    trace::Recorder *tracer() const;

    /** Overflow control: suspend job, swap out, resume (Section 4.2). */
    exec::CoTask<void> overflowControl(Process *p);

    /** Fault hook: take a page-fault trap on the scratch page. */
    exec::CoTask<void> injectHandlerFault(Process *p);

    /** Dispatch a kernel message (Table 4 kernel-mode path). */
    exec::CoTask<void> kernelDispatch(net::Packet pkt);

    void exitBuffered(Process *p);

    /** Idle hook: feed the current process's runnable work. */
    void dispatchIdle();

    Machine &m_;
    NodeId id_;
    std::unordered_map<Gid, Process *> byGid_;
    Process *current_ = nullptr;
    Process *pendingNext_ = nullptr;
    bool havePendingNext_ = false;
    std::vector<KernelHandler> kernelHandlers_;
};

} // namespace fugu::glaze

#endif // FUGU_GLAZE_KERNEL_HH
