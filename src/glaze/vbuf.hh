/**
 * @file
 * VirtualBuffer: the per-process software message buffer (Section
 * 4.2, "Virtual Buffering Path").
 *
 * Messages diverted from the network interface are stored in the
 * communicating application's virtual memory. Physical page frames
 * back that memory on demand only; when the buffer drains, frames are
 * returned, so an application that never buffers consumes no physical
 * memory for buffering at all. Under memory pressure the overflow
 * control system can swap buffer pages to backing store (over the
 * second network) and page them back in as the drain reaches them.
 *
 * The buffer is the BufferedInput the UdmPort retargets its base
 * pointer at in buffered mode, so reads are layout-compatible with
 * the NI input window.
 */

#ifndef FUGU_GLAZE_VBUF_HH
#define FUGU_GLAZE_VBUF_HH


#include "core/udm.hh"
#include "glaze/vm.hh"
#include "net/packet.hh"
#include "sim/ring.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace fugu::glaze
{

class VirtualBuffer : public core::BufferedInput
{
  public:
    /**
     * @param rec_overhead_words per-message bookkeeping words in the
     *        buffer pages (2 for the copying record layout of Section
     *        4.2; 0 for page-flip delivery, which keeps no header).
     */
    VirtualBuffer(FramePool &frames, StatGroup *parent, NodeId node,
                  Gid gid, unsigned rec_overhead_words = 2);
    ~VirtualBuffer() override;

    VirtualBuffer(const VirtualBuffer &) = delete;
    VirtualBuffer &operator=(const VirtualBuffer &) = delete;

    /// @name Kernel insert path (mismatch-available handler)
    /// @{

    /** Would inserting @p pkt need a fresh page frame first? */
    bool needsNewPageFor(const net::Packet &pkt) const;

    /**
     * Extend the buffer by one page.
     * @return false if the frame pool is empty (the caller must run
     *         overflow control / wait and retry).
     */
    bool allocatePage();

    /** Append a message; needsNewPageFor must be false. */
    void insert(net::Packet pkt);

    /// @}
    /// @name BufferedInput (the application's transparent view)
    /// @{

    bool available() const override;
    unsigned size() const override;
    Word read(unsigned offset) const override;

    /// @}
    /// @name Drain path (dispose-extend emulation)
    /// @{

    /** The front message (available() must hold). */
    const net::Packet &front() const;

    /** Remove the front message, freeing drained pages. */
    void pop();

    /** Is the front message on a swapped-out page? */
    bool frontSwapped() const;

    /**
     * Bring the front page back in.
     * @return false if no frame is free.
     */
    bool pageInFront();

    /// @}
    /// @name Overflow control
    /// @{

    /**
     * Swap out up to @p n not-yet-draining pages (newest first),
     * releasing their frames.
     * @return pages actually swapped.
     */
    unsigned swapOut(unsigned n);

    /// @}

    /** Attach a message-lifecycle trace recorder (null to disable). */
    void setTracer(trace::Recorder *tracer) { tracer_ = tracer; }

    bool empty() const { return msgs_.empty(); }
    std::size_t messages() const { return msgs_.size(); }
    unsigned pagesAllocated() const;
    unsigned pagesResident() const;

    struct Stats
    {
        Stats(StatGroup *parent, NodeId node, Gid gid);
        StatGroup group;
        Scalar inserts;
        Scalar drained;
        Scalar peakPages;
        Scalar swapOuts;
        Scalar pageIns;
    };

    Stats stats;

  private:
    /** Words a message occupies in the buffer (record header + msg). */
    unsigned
    footprint(const net::Packet &pkt) const
    {
        return pkt.size() + recOverhead_;
    }

    struct Page
    {
        unsigned filled = 0;   ///< words appended to this page
        unsigned consumed = 0; ///< words drained from this page
        bool swapped = false;  ///< frame released to backing store
    };

    /**
     * One buffered message plus the absolute index of the page it
     * lives on. Keeping both in a single record (instead of two
     * parallel deques) halves the per-process deque overhead — this
     * is per-process state, so it multiplies by nodes x jobs.
     */
    struct Rec
    {
        net::Packet pkt;
        unsigned pageIdx; ///< index counted from buffer creation
    };

    /** Record a VbufPage event (kind: alloc/swap-out/page-in). */
    void tracePage(unsigned kind) const;

    FramePool &frames_;
    NodeId node_;
    unsigned recOverhead_;
    trace::Recorder *tracer_ = nullptr;
    sim::RingDeque<Rec> msgs_;
    sim::RingDeque<Page> pages_;       ///< live pages, front = draining
    std::uint64_t basePage_ = 0;   ///< absolute index of pages_.front()
};

} // namespace fugu::glaze

#endif // FUGU_GLAZE_VBUF_HH
