#include "glaze/machine.hh"

#include <cmath>

#include "sim/config.hh"
#include "sim/log.hh"

namespace fugu::glaze
{

void
bindConfig(sim::Binder &b, MachineConfig &c)
{
    {
        auto s = b.push("machine");
        b.item("nodes", c.nodes, "number of nodes (processors)");
        b.enumItem("atomicity", c.atomicity,
                   {{"kernel", core::AtomicityMode::Kernel},
                    {"hard", core::AtomicityMode::Hard},
                    {"soft", core::AtomicityMode::Soft}},
                   "receive-path atomicity implementation (Table 4)");
        b.item("frames_per_node", c.framesPerNode,
               "physical page frames per node", "pages");
        b.item("always_buffered", c.alwaysBuffered,
               "ablation: deliver every message via the buffered path");
        b.item("pinned_buffer_pages", c.pinnedBufferPages,
               "ablation: frames pinned per process at creation",
               "pages");
        b.item("seed", c.seed, "base RNG seed");
    }
    {
        auto s = b.push("net");
        net::bindConfig(b, c.net);
    }
    {
        auto s = b.push("osnet");
        net::bindConfig(b, c.osNet);
    }
    {
        auto s = b.push("ni");
        core::bindConfig(b, c.ni);
    }
    {
        auto s = b.push("costs");
        core::bindConfig(b, c.costs);
    }
    {
        auto s = b.push("trace");
        trace::bindConfig(b, c.trace);
    }
    {
        auto s = b.push("fault");
        sim::bindConfig(b, c.fault);
    }
    {
        auto s = b.push("check");
        bindConfig(b, c.check);
    }
}

void
bindConfig(sim::Binder &b, GangConfig &c)
{
    auto s = b.push("gang");
    b.item("quantum", c.quantum, "gang-scheduler timeslice", "cycles");
    b.item("skew", c.skew,
           "schedule-quality knob: per-node quantum offset drawn from "
           "[0, skew*quantum]",
           "fraction");
}

Machine::Node::Node(Machine &m, NodeId id)
    : cpu(m.eq, id, &m.root),
      ni(cpu, m.net, id, m.cfg.ni, &m.root),
      frames(m.cfg.framesPerNode, &m.root, id),
      osnic(cpu, m.osnet, id),
      kernel(m, id)
{
}

MachineConfig
Machine::fix(MachineConfig cfg)
{
    fugu_assert(cfg.nodes >= 1, "machine needs at least one node");
    // NodeId is 16 bits (and kNoNode is reserved): a larger machine
    // would silently alias network channels and wrap per-node loops.
    fugu_assert(cfg.nodes <= kNoNode, "machine of ", cfg.nodes,
                " nodes exceeds the NodeId address space");
    // Size both meshes to cover the node count: prefer a near-square
    // user mesh and a linear OS network.
    auto fit = [&](net::NetworkConfig &n) {
        if (n.meshX * n.meshY >= cfg.nodes && n.meshX > 0 && n.meshY > 0)
            return;
        unsigned x = 1;
        while (x * x < cfg.nodes)
            ++x;
        n.meshX = x;
        n.meshY = (cfg.nodes + x - 1) / x;
    };
    fit(cfg.net);
    fit(cfg.osNet);
    return cfg;
}

Machine::Machine(MachineConfig cfg_in)
    : cfg(fix(std::move(cfg_in))), root("machine"), rng(cfg.seed),
      tracer_(cfg.trace.enabled
                  ? std::make_unique<trace::Recorder>(eq, cfg.trace)
                  : nullptr),
      net(eq, cfg.net, "net_user", &root),
      osnet(eq, cfg.osNet, "net_os", &root)
{
    net.setTracer(tracer_.get(), /*os_net=*/false);
    osnet.setTracer(tracer_.get(), /*os_net=*/true);
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        nodes.push_back(std::make_unique<Node>(*this, n));
        nodes.back()->cpu.setTracer(tracer_.get());
        nodes.back()->ni.setTracer(tracer_.get());
        nodes.back()->osnic.setTracer(tracer_.get());
    }
    pinnedFrames_.assign(cfg.nodes, 0);

    // The checker watches the user network only: OS-net messages are
    // kernel protocol with no application delivery semantics.
    checker_ = std::make_unique<InvariantChecker>(*this, cfg.check);
    net.setWatcher(checker_.get());
    for (auto &node : nodes)
        node->ni.setWatcher(checker_.get());

    if (cfg.fault.enabled) {
        fault_ = std::make_unique<sim::FaultInjector>(
            eq, cfg.fault, cfg.seed, cfg.nodes, &root);
        // Like the checker, faults hit the user network/NI/frames
        // only — the OS network must stay guaranteed deadlock-free.
        net.setFault(fault_.get());
        fault_->setInputRetry(
            [this](NodeId n) { net.onSinkSpaceFreed(n); });
        for (auto &node : nodes) {
            node->ni.setFault(fault_.get());
            node->frames.setFault(fault_.get());
        }
        for (NodeId n = 0; n < cfg.nodes; ++n)
            scheduleFaultTick(n, 1);
    }

    for (auto &node : nodes)
        node->kernel.init();
}

Machine::~Machine() = default;

namespace
{

exec::Task
jobMain(Process *p, Job *job, AppBody body)
{
    co_await body(*p);
    job->nodeDone(p->node());
}

} // namespace

Job *
Machine::addJob(std::string name, AppBody body)
{
    const Gid gid = nextGid_++;
    auto job = std::make_unique<Job>(gid, std::move(name), cfg.nodes);
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        auto proc = std::make_unique<Process>(
            nodes[n]->cpu, nodes[n]->ni, cfg.costs, nodes[n]->frames,
            &root, n, gid, job.get());
        nodes[n]->kernel.addProcess(proc.get());
        for (unsigned f = 0; f < cfg.pinnedBufferPages; ++f) {
            if (nodes[n]->frames.tryAllocate())
                ++pinnedFrames_[n];
            else
                warn("node ", n, ": could not pin buffer page ", f);
        }
        proc->setTracer(tracer_.get());
        proc->setChecker(checker_.get());
        job->procs.push_back(proc.get());
        proc->threads().spawn(job->name() + "-main", rt::kPrioNormal,
                              jobMain(proc.get(), job.get(), body));
        processes.push_back(std::move(proc));
    }
    jobs.push_back(std::move(job));
    return jobs.back().get();
}

void
Machine::installJob(Job *job)
{
    job->startCycle = now();
    for (NodeId n = 0; n < cfg.nodes; ++n)
        nodes[n]->kernel.installProcess(job->procs[n]);
}

void
Machine::startGang(GangConfig gcfg)
{
    fugu_assert(!gangRunning_, "gang scheduler started twice");
    fugu_assert(!jobs.empty(), "no jobs to schedule");
    fugu_assert(gcfg.skew >= 0.0 && gcfg.skew <= 1.0, "bad skew");
    gang_ = gcfg;
    gangRunning_ = true;

    gangOffset_.resize(cfg.nodes);
    const Cycle window =
        static_cast<Cycle>(gcfg.skew * static_cast<double>(gcfg.quantum));
    for (NodeId n = 0; n < cfg.nodes; ++n)
        gangOffset_[n] = window ? rng.uniform(0, window) : 0;

    for (auto &j : jobs)
        j->startCycle = now();

    // Install the first job everywhere, then rotate each quantum.
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        nodes[n]->kernel.installProcess(jobs[0]->procs[n]);
        scheduleBoundary(n, 1);
    }
}

Process *
Machine::pickGangTarget(NodeId node, std::uint64_t k)
{
    const std::size_t njobs = jobs.size();
    for (std::size_t i = 0; i < njobs; ++i) {
        Job *j = jobs[(k + i) % njobs].get();
        Process *p = j->procs[node];
        if (!p->suspended)
            return p;
    }
    return nullptr; // every job suspended
}

void
Machine::scheduleFaultTick(NodeId node, std::uint64_t k)
{
    // The draw order within a tick is fixed, and every class draws on
    // every tick (rates of zero skip the RNG entirely), so a given
    // (seed, config) pair replays bit-identically.
    eq.scheduleFn(
        [this, node, k] {
            if (fault_->drawOutputDeny())
                fault_->openOutputWindow(node);
            if (fault_->drawDivertStorm())
                nodes[node]->kernel.forceDivert();
            if (fault_->drawAtomTimeout())
                nodes[node]->ni.injectAtomicityTimeout();
            scheduleFaultTick(node, k + 1);
        },
        k * cfg.fault.tickInterval, "fault-tick");
}

void
Machine::scheduleBoundary(NodeId node, std::uint64_t k)
{
    const Cycle when = k * gang_.quantum + gangOffset_[node];
    eq.scheduleFn(
        [this, node, k] {
            nodes[node]->kernel.requestSwitch(pickGangTarget(node, k));
            scheduleBoundary(node, k + 1);
        },
        when, "gang-boundary");
}

bool
Machine::runUntilDone(const Job *job, Cycle max_cycles)
{
    const Cycle limit = now() + max_cycles;
    while (!job->done()) {
        if (now() > limit)
            return false;
        if (!eq.runOne())
            break; // queue drained
    }
    if (job->done() && checker_)
        checker_->finalChecks();
    return job->done();
}

} // namespace fugu::glaze
