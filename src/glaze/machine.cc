#include "glaze/machine.hh"

#include <cmath>

#include "sim/config.hh"
#include "sim/log.hh"

namespace fugu::glaze
{

void
bindConfig(sim::Binder &b, MachineConfig &c)
{
    {
        auto s = b.push("machine");
        b.item("nodes", c.nodes, "number of nodes (processors)");
        b.enumItem("atomicity", c.atomicity,
                   {{"kernel", core::AtomicityMode::Kernel},
                    {"hard", core::AtomicityMode::Hard},
                    {"soft", core::AtomicityMode::Soft}},
                   "receive-path atomicity implementation (Table 4)");
        b.item("frames_per_node", c.framesPerNode,
               "physical page frames per node", "pages");
        b.item("always_buffered", c.alwaysBuffered,
               "ablation: deliver every message via the buffered path");
        b.item("pinned_buffer_pages", c.pinnedBufferPages,
               "ablation: frames pinned per process at creation",
               "pages");
        b.item("par_shards", c.parShards,
               "parallel engine shards (1 = serial oracle)");
        b.item("lookahead", c.lookahead,
               "bound-phase lookahead (0 = derive from min network "
               "latency)",
               "cycles");
        b.item("seed", c.seed, "base RNG seed");
    }
    {
        auto s = b.push("engine");
        b.item("batch_fire", c.batchFire,
               "drain all same-cycle events per calendar-bucket touch");
    }
    {
        auto s = b.push("net");
        net::bindConfig(b, c.net);
    }
    {
        auto s = b.push("osnet");
        net::bindConfig(b, c.osNet);
    }
    {
        auto s = b.push("ni");
        core::bindConfig(b, c.ni);
    }
    {
        auto s = b.push("costs");
        core::bindConfig(b, c.costs);
    }
    {
        auto s = b.push("trace");
        trace::bindConfig(b, c.trace);
    }
    {
        auto s = b.push("fault");
        sim::bindConfig(b, c.fault);
    }
    {
        auto s = b.push("check");
        bindConfig(b, c.check);
    }
}

void
bindConfig(sim::Binder &b, GangConfig &c)
{
    auto s = b.push("gang");
    b.item("quantum", c.quantum, "gang-scheduler timeslice", "cycles");
    b.item("skew", c.skew,
           "schedule-quality knob: per-node quantum offset drawn from "
           "[0, skew*quantum]",
           "fraction");
}

Machine::Node::Node(Machine &m, NodeId id, EventQueue &eq)
    : cpu(eq, id, &m.root),
      ni(cpu, m.net, id, m.cfg.ni, &m.root),
      frames(m.cfg.framesPerNode, &m.root, id),
      osnic(cpu, m.osnet, id),
      kernel(m, id)
{
}

namespace
{

/**
 * Cheapest possible cross-node delivery on a network: the smallest
 * message (header + one payload word) travelling exactly one hop.
 * This bounds how far ahead of the global floor a shard may run
 * without being able to miss a cross-shard arrival.
 */
Cycle
minCrossNodeLatency(const net::NetworkConfig &c)
{
    return c.latencyBase + c.perHop + c.perWord * 2;
}

} // namespace

MachineConfig
Machine::fix(MachineConfig cfg)
{
    fugu_assert(cfg.nodes >= 1, "machine needs at least one node");
    // NodeId is 16 bits (and kNoNode is reserved): a larger machine
    // would silently alias network channels and wrap per-node loops.
    fugu_assert(cfg.nodes <= kNoNode, "machine of ", cfg.nodes,
                " nodes exceeds the NodeId address space");
    // Size both meshes to cover the node count: prefer a near-square
    // user mesh and a linear OS network.
    auto fit = [&](net::NetworkConfig &n) {
        if (n.meshX * n.meshY >= cfg.nodes && n.meshX > 0 && n.meshY > 0)
            return;
        unsigned x = 1;
        while (x * x < cfg.nodes)
            ++x;
        n.meshX = x;
        n.meshY = (cfg.nodes + x - 1) / x;
    };
    fit(cfg.net);
    fit(cfg.osNet);
    return cfg;
}

Machine::Machine(MachineConfig cfg_in)
    : cfg(fix(std::move(cfg_in))),
      shards_{cfg.nodes,
              std::min(std::max(cfg.parShards, 1u), cfg.nodes)},
      root("machine"), rng(cfg.seed),
      net(eq, cfg.net, "net_user", &root),
      osnet(eq, cfg.osNet, "net_os", &root)
{
    const unsigned S = shards_.shards;
    shardEq_.push_back(&eq);
    for (unsigned s = 1; s < S; ++s) {
        extraEqs_.push_back(std::make_unique<EventQueue>());
        shardEq_.push_back(extraEqs_.back().get());
    }
    phaseEvents_.assign(S, 0);
    for (EventQueue *q : shardEq_)
        q->setBatchFire(cfg.batchFire);

    // The bound phase may run a shard up to lookahead-1 cycles past
    // the global floor, so the lookahead must never exceed the fastest
    // possible cross-node delivery (else a shard could blow past an
    // arrival staged by a peer). Derive that bound; explicit values
    // only ever shorten phases.
    const Cycle min_lat =
        std::max<Cycle>(1, std::min(minCrossNodeLatency(cfg.net),
                                    minCrossNodeLatency(cfg.osNet)));
    lookahead_ = cfg.lookahead == 0
                     ? min_lat
                     : std::clamp<Cycle>(cfg.lookahead, 1, min_lat);

    if (S > 1) {
        net.setParallel(&shards_, shardEq_);
        osnet.setParallel(&shards_, shardEq_);
        // Nested machines (the harness fans trials out over worker
        // threads) stay serial-fallback: shard phases share nothing
        // mutable, so one thread or many is bit-identical.
        const unsigned want = std::min(S, sim::defaultWorkerThreads());
        if (!sim::onWorkerThread() && want > 1)
            pool_ = std::make_unique<sim::WorkerPool>(want - 1);
    }

    if (cfg.trace.enabled)
        for (unsigned s = 0; s < S; ++s)
            tracers_.push_back(std::make_unique<trace::Recorder>(
                *shardEq_[s], cfg.trace));
    net.setTracer(tracerAt(0), /*os_net=*/false);
    osnet.setTracer(tracerAt(0), /*os_net=*/true);
    for (unsigned s = 1; s < S; ++s) {
        net.setLaneTracer(s, tracerAt(s));
        osnet.setLaneTracer(s, tracerAt(s));
    }

    for (NodeId n = 0; n < cfg.nodes; ++n) {
        Node &node = nodes.emplace_back(*this, n, queueFor(n));
        node.cpu.setTracer(tracerFor(n));
        node.ni.setTracer(tracerFor(n));
        node.osnic.setTracer(tracerFor(n));
    }
    pinnedFrames_.assign(cfg.nodes, 0);

    // The checker watches the user network only: OS-net messages are
    // kernel protocol with no application delivery semantics.
    checker_ = std::make_unique<InvariantChecker>(*this, cfg.check);
    checker_->setParallel(S > 1);
    net.setWatcher(checker_.get());
    for (auto &node : nodes)
        node.ni.setWatcher(checker_.get());

    if (cfg.fault.enabled) {
        // One injector per shard so draws stay inside each shard's
        // single-threaded event loop. Shard 0 reuses the serial
        // machine's exact seeds (the S=1 build is the bit-exact
        // oracle); the others salt both seed paths per shard.
        for (unsigned s = 0; s < S; ++s) {
            sim::FaultConfig fc = cfg.fault;
            std::uint64_t mseed = cfg.seed;
            if (s > 0) {
                const std::uint64_t salt = 0x9e3779b97f4a7c15ull * s;
                mseed ^= salt;
                if (fc.seed)
                    fc.seed += salt;
            }
            faults_.push_back(std::make_unique<sim::FaultInjector>(
                *shardEq_[s], fc, mseed, cfg.nodes,
                s == 0 ? &root : nullptr));
            faults_.back()->setInputRetry(
                [this](NodeId n) { net.onSinkSpaceFreed(n); });
        }
        // Like the checker, faults hit the user network/NI/frames
        // only — the OS network must stay guaranteed deadlock-free.
        net.setFault(faultAt(0));
        for (unsigned s = 1; s < S; ++s)
            net.setLaneFault(s, faultAt(s));
        for (NodeId n = 0; n < cfg.nodes; ++n) {
            nodes[n].ni.setFault(faultFor(n));
            nodes[n].frames.setFault(faultFor(n));
        }
        for (NodeId n = 0; n < cfg.nodes; ++n)
            scheduleFaultTick(n, 1);
    }

    for (auto &node : nodes)
        node.kernel.init();
}

Machine::~Machine() = default;

namespace
{

exec::Task
jobMain(Process *p, Job *job, AppBody body)
{
    // Handler registrations in the body's synchronous prologue are
    // visible to the drain the moment this slice yields — so a drain
    // deferred because we had not started yet can be spawned now: at
    // handler priority it first runs at our first suspension point,
    // after the prologue.
    p->mainStarted = true;
    p->kernel()->ensureDrain(p);
    co_await body(*p);
    job->nodeDone(p->node());
}

} // namespace

Job *
Machine::addJob(std::string name, AppBody body)
{
    const Gid gid = nextGid_++;
    auto job = std::make_unique<Job>(gid, std::move(name), cfg.nodes);
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        auto proc = std::make_unique<Process>(
            nodes[n].cpu, nodes[n].ni, cfg.costs, nodes[n].frames,
            &root, n, gid, job.get());
        nodes[n].kernel.addProcess(proc.get());
        for (unsigned f = 0; f < cfg.pinnedBufferPages; ++f) {
            if (nodes[n].frames.tryAllocate())
                ++pinnedFrames_[n];
            else
                warn("node ", n, ": could not pin buffer page ", f);
        }
        proc->setTracer(tracerFor(n));
        proc->setChecker(checker_.get());
        job->procs.push_back(proc.get());
        proc->threads().spawn(job->name() + "-main", rt::kPrioNormal,
                              jobMain(proc.get(), job.get(), body));
        processes.push_back(std::move(proc));
    }
    jobs.push_back(std::move(job));
    return jobs.back().get();
}

void
Machine::installJob(Job *job)
{
    job->startCycle = now();
    for (NodeId n = 0; n < cfg.nodes; ++n)
        nodes[n].kernel.installProcess(job->procs[n]);
}

void
Machine::startGang(GangConfig gcfg)
{
    fugu_assert(!gangRunning_, "gang scheduler started twice");
    fugu_assert(!jobs.empty(), "no jobs to schedule");
    fugu_assert(gcfg.skew >= 0.0 && gcfg.skew <= 1.0, "bad skew");
    gang_ = gcfg;
    gangRunning_ = true;

    gangOffset_.resize(cfg.nodes);
    const Cycle window =
        static_cast<Cycle>(gcfg.skew * static_cast<double>(gcfg.quantum));
    for (NodeId n = 0; n < cfg.nodes; ++n)
        gangOffset_[n] = window ? rng.uniform(0, window) : 0;

    for (auto &j : jobs)
        j->startCycle = now();

    // Install the first job everywhere, then rotate each quantum.
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        nodes[n].kernel.installProcess(jobs[0]->procs[n]);
        scheduleBoundary(n, 1);
    }
}

Process *
Machine::pickGangTarget(NodeId node, std::uint64_t k)
{
    const std::size_t njobs = jobs.size();
    for (std::size_t i = 0; i < njobs; ++i) {
        Job *j = jobs[(k + i) % njobs].get();
        Process *p = j->procs[node];
        if (!p->suspended)
            return p;
    }
    return nullptr; // every job suspended
}

void
Machine::scheduleFaultTick(NodeId node, std::uint64_t k)
{
    // The draw order within a tick is fixed, and every class draws on
    // every tick (rates of zero skip the RNG entirely), so a given
    // (seed, config) pair replays bit-identically.
    queueFor(node).scheduleFn(
        [this, node, k] {
            sim::FaultInjector *f = faultFor(node);
            if (f->drawOutputDeny())
                f->openOutputWindow(node);
            if (f->drawDivertStorm())
                nodes[node].kernel.forceDivert();
            if (f->drawAtomTimeout())
                nodes[node].ni.injectAtomicityTimeout();
            scheduleFaultTick(node, k + 1);
        },
        k * cfg.fault.tickInterval, "fault-tick");
}

void
Machine::scheduleBoundary(NodeId node, std::uint64_t k)
{
    const Cycle when = k * gang_.quantum + gangOffset_[node];
    queueFor(node).scheduleFn(
        [this, node, k] {
            nodes[node].kernel.requestSwitch(pickGangTarget(node, k));
            scheduleBoundary(node, k + 1);
        },
        when, "gang-boundary");
}

Cycle
Machine::nextEventFloor()
{
    Cycle floor = kMaxCycle;
    for (EventQueue *q : shardEq_)
        floor = std::min(floor, q->nextTime());
    return floor;
}

void
Machine::runPhase(Cycle floor, Cycle limit)
{
    // Events in [floor, floor + lookahead) are safe to run without
    // hearing from other shards: any cross-shard message injected at
    // or after the floor arrives at floor + minimum-latency at the
    // earliest, and the lookahead never exceeds that minimum.
    const Cycle horizon = std::min(floor + lookahead_ - 1, limit);
    phaseBound_.store(horizon, std::memory_order_relaxed);
    auto bound = [this, horizon](std::size_t s) {
        phaseEvents_[s] += shardEq_[s]->run(horizon);
    };
    // Waking the pool costs more than running a near-empty phase
    // inline: with a latency-bounded lookahead many phases hold work
    // for a single shard, so dispatch wide only when at least two
    // shards have an event inside the horizon. Which thread runs a
    // shard never affects what it computes, so this keeps results
    // bit-identical to always-wide dispatch.
    unsigned busy = 0;
    for (unsigned s = 0; s < shards_.shards && busy < 2; ++s)
        if (shardEq_[s]->nextTime() <= horizon)
            ++busy;
    if (pool_ && busy > 1)
        pool_->run(shards_.shards, bound);
    else
        for (unsigned s = 0; s < shards_.shards; ++s)
            bound(s);
    for (unsigned s = 0; s < shards_.shards; ++s) {
        eventsRun_ += phaseEvents_[s];
        phaseEvents_[s] = 0;
    }
    // Every queue's clock now sits exactly at the horizon, so the
    // weave commits with dst.now() <= every staged arrival's ready.
    net.weave();
    osnet.weave();
    if (checker_)
        checker_->barrierSweep();
}

void
Machine::finishRun()
{
    net.mergeLaneStats();
    osnet.mergeLaneStats();
}

bool
Machine::runUntilDone(const Job *job, Cycle max_cycles)
{
    const Cycle limit = now() + max_cycles;
    if (shards_.shards == 1) {
        while (!job->done()) {
            if (now() > limit)
                return false;
            if (!eq.runOne())
                break; // queue drained
            ++eventsRun_;
        }
    } else {
        while (!job->done()) {
            const Cycle floor = nextEventFloor();
            if (floor == kMaxCycle)
                break; // every shard queue drained
            if (floor > limit) {
                finishRun();
                return false;
            }
            runPhase(floor, kMaxCycle);
        }
        finishRun();
    }
    if (job->done() && checker_)
        checker_->finalChecks();
    return job->done();
}

void
Machine::run(Cycle until)
{
    if (shards_.shards == 1) {
        eventsRun_ += eq.run(until);
        return;
    }
    for (;;) {
        const Cycle floor = nextEventFloor();
        if (floor == kMaxCycle || floor > until)
            break;
        runPhase(floor, until);
    }
    // Match the serial contract: the clock lands on `until` even when
    // the queues drained (or only hold later events).
    if (until != kMaxCycle)
        for (EventQueue *q : shardEq_)
            q->run(until);
    finishRun();
}

trace::TraceBuffer
Machine::mergedTrace() const
{
    trace::TraceBuffer out(0);
    out.setTag(cfg.trace.runTag);
    std::vector<std::size_t> idx(tracers_.size(), 0);
    for (;;) {
        std::size_t best = tracers_.size();
        Cycle best_ts = kMaxCycle;
        for (std::size_t s = 0; s < tracers_.size(); ++s) {
            const trace::TraceBuffer &b = tracers_[s]->buffer();
            if (idx[s] >= b.size())
                continue;
            // Strict < keeps the lowest shard on timestamp ties, so
            // the merge is a pure function of the shard count.
            if (best == tracers_.size() || b[idx[s]].ts < best_ts) {
                best = s;
                best_ts = b[idx[s]].ts;
            }
        }
        if (best == tracers_.size())
            break;
        out.append(tracers_[best]->buffer()[idx[best]]);
        ++idx[best];
    }
    return out;
}

} // namespace fugu::glaze
