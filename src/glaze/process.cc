#include "glaze/process.hh"

#include "glaze/check.hh"
#include "glaze/kernel.hh"
#include "sim/log.hh"

namespace fugu::glaze
{

Process::Stats::Stats(StatGroup *parent, NodeId node, Gid gid)
    : group("proc_n" + std::to_string(node) + "_g" + std::to_string(gid),
            parent),
      sent(&group, "sent", "messages injected"),
      directDelivered(&group, "direct",
                      "messages handled via the fast (direct) path"),
      bufferedDelivered(&group, "buffered",
                        "messages handled via the buffered path"),
      handlerCycles(&group, "handler_cycles",
                    "wall cycles per handler invocation"),
      atomicSections(&group, "atomic_sections",
                     "user atomic sections entered")
{
}

Process::Process(exec::Cpu &cpu, core::NetIf &ni,
                 const core::CostModel &costs, FramePool &frames,
                 StatGroup *stat_parent, NodeId node, Gid gid, Job *job)
    : stats(stat_parent, node, gid), cpu_(cpu), costs_(costs),
      node_(node), gid_(gid), job_(job), port_(cpu, ni, costs),
      threads_(cpu, costs), as_(frames),
      vbuf_(frames, stat_parent, node, gid,
            ni.backend().recordOverheadWords())
{
    port_.setObserver(this);
}

exec::CoTask<void>
Process::touchPage(std::uint64_t page)
{
    if (as_.needsFault(page))
        co_await cpu_.trap(core::kTrapPageFault, page);
}

void
Process::setTracer(trace::Recorder *tracer)
{
    tracer_ = tracer;
    vbuf_.setTracer(tracer);
}

void
Process::onSend()
{
    ++stats.sent;
}

void
Process::onDispatchStart(bool buffered)
{
    if (checker_)
        checker_->onDispatch(*this, buffered);
}

void
Process::onDispatchEnd(bool buffered, Cycle handler_cycles)
{
    if (buffered)
        ++stats.bufferedDelivered;
    else
        ++stats.directDelivered;
    stats.handlerCycles.sample(static_cast<double>(handler_cycles));
    const std::uint32_t dur = static_cast<std::uint32_t>(
        handler_cycles > 0x7fffffffull ? 0x7fffffffull : handler_cycles);
    FUGU_TRACE(tracer_, node_, trace::Type::Dispatch, 0,
               trace::DivertReason::None,
               dur | (buffered ? 0x80000000u : 0u));
}

void
Process::onBeginAtomic()
{
    ++stats.atomicSections;
    // Section 4.2: buffered-message handling must be deferred across
    // user atomic sections to preserve the atomicity illusion.
    if (buffered)
        atomicGate = true;
}

void
Process::onEndAtomic()
{
    atomicGate = false;
    // The kernel respawns the drain thread if buffered messages
    // remain (Section 4.2: a new message-handling thread is created
    // when the existing thread exits its atomic section).
    if (kernel_)
        kernel_->ensureDrain(this);
}

Job::Job(Gid gid, std::string name, unsigned nodes)
    : gid_(gid), name_(std::move(name)), nodes_(nodes)
{
}

void
Job::nodeDone(NodeId)
{
    fugu_assert(doneNodes_ < nodes_, "nodeDone overflow");
    ++doneNodes_;
}

} // namespace fugu::glaze
