#include "glaze/vm.hh"

#include "sim/fault.hh"
#include "sim/log.hh"

namespace fugu::glaze
{

FramePool::Stats::Stats(StatGroup *parent, NodeId id)
    : group("frames" + std::to_string(id), parent),
      allocations(&group, "allocations", "frames handed out"),
      peakUsed(&group, "peak_used", "max frames in use at once"),
      allocationFailures(&group, "failures",
                         "allocation attempts with no free frame")
{
}

FramePool::FramePool(unsigned total, StatGroup *parent, NodeId id)
    : stats(parent, id), total_(total)
{
    fugu_assert(total_ > 0, "empty frame pool");
}

bool
FramePool::tryAllocate()
{
    if (fault_ && fault_->frameDenied()) {
        ++stats.allocationFailures;
        return false;
    }
    if (used_ >= total_) {
        ++stats.allocationFailures;
        return false;
    }
    ++used_;
    ++stats.allocations;
    if (used_ > stats.peakUsed.value())
        stats.peakUsed.set(used_);
    return true;
}

void
FramePool::release()
{
    fugu_assert(used_ > 0, "releasing a frame never allocated");
    --used_;
}

AddressSpace::~AddressSpace()
{
    for (auto &[page, st] : pages_) {
        if (st == PageState::Mapped)
            frames_.release();
    }
}

void
AddressSpace::reserve(std::uint64_t first, std::uint64_t npages)
{
    for (std::uint64_t p = first; p < first + npages; ++p) {
        fugu_assert(state(p) == PageState::Unmapped, "page ", p,
                    " reserved twice");
        pages_[p] = PageState::ZeroFill;
    }
}

PageState
AddressSpace::state(std::uint64_t page) const
{
    auto it = pages_.find(page);
    return it == pages_.end() ? PageState::Unmapped : it->second;
}

bool
AddressSpace::needsFault(std::uint64_t page) const
{
    PageState st = state(page);
    fugu_assert(st != PageState::Unmapped, "access to unmapped page ",
                page);
    return st == PageState::ZeroFill;
}

bool
AddressSpace::mapPage(std::uint64_t page)
{
    fugu_assert(state(page) == PageState::ZeroFill,
                "mapPage on page in wrong state");
    if (!frames_.tryAllocate())
        return false;
    pages_[page] = PageState::Mapped;
    ++mapped_;
    return true;
}

void
AddressSpace::unmapPage(std::uint64_t page)
{
    fugu_assert(state(page) == PageState::Mapped,
                "unmapPage on non-mapped page");
    pages_[page] = PageState::ZeroFill;
    frames_.release();
    fugu_assert(mapped_ > 0);
    --mapped_;
}

} // namespace fugu::glaze
