/**
 * @file
 * Process and Job: the operating system's view of an application.
 *
 * A Job is one parallel application: one Process per node, all stamped
 * with the same GID. Each Process owns its UDM port, user-level thread
 * scheduler, address space and virtual message buffer, plus the NI
 * state the kernel saves/restores around gang-scheduler quanta.
 */

#ifndef FUGU_GLAZE_PROCESS_HH
#define FUGU_GLAZE_PROCESS_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/udm.hh"
#include "glaze/vbuf.hh"
#include "glaze/vm.hh"
#include "rt/thread.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace fugu::glaze
{

class InvariantChecker;
class Kernel;
class Job;

class Process : public core::PortObserver
{
  public:
    Process(exec::Cpu &cpu, core::NetIf &ni, const core::CostModel &costs,
            FramePool &frames, StatGroup *stat_parent, NodeId node,
            Gid gid, Job *job);

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    NodeId node() const { return node_; }
    Gid gid() const { return gid_; }
    Job *job() const { return job_; }

    /** Attach the owning kernel (done by Kernel::addProcess). */
    void setKernel(Kernel *k) { kernel_ = k; }
    Kernel *kernel() const { return kernel_; }

    core::UdmPort &port() { return port_; }
    rt::Scheduler &threads() { return threads_; }
    VirtualBuffer &vbuf() { return vbuf_; }
    AddressSpace &as() { return as_; }
    exec::Cpu &cpu() { return cpu_; }
    const core::CostModel &costs() const { return costs_; }

    /// @name Application conveniences
    /// @{

    /** Model @p n cycles of local computation. */
    exec::CoTask<void>
    compute(Cycle n)
    {
        co_await cpu_.spend(n);
    }

    /**
     * Touch a heap page; takes a page-fault trap on first touch of a
     * demand-zero page (one of the three buffered-mode triggers when
     * it happens inside an atomic section).
     */
    exec::CoTask<void> touchPage(std::uint64_t page);

    /** Attach a message-lifecycle trace recorder (null to disable). */
    void setTracer(trace::Recorder *tracer);

    /** Attach the machine's invariant checker (null to disable). */
    void setChecker(InvariantChecker *checker) { checker_ = checker; }

    /// @}
    /// @name Kernel-side scheduling state
    /// @{

    /** Delivery mode: true while in the software-buffered case. */
    bool buffered = false;

    /**
     * Buffered-message handling is deferred: a user atomic section
     * was suspended by a timeout/page fault (or the user entered one
     * while buffered) and has not yet exited.
     */
    bool atomicGate = false;

    /** Globally suspended by overflow control. */
    bool suspended = false;

    /**
     * The main coroutine's first slice has run. Until then the
     * process cannot have registered any message handlers, so the
     * buffered-message drain must not upcall into it: messages can
     * buffer for a process that has never been scheduled (a skewed
     * gang start), and startup must win over the drain on the first
     * quantum — as on a real system, where a port only drains into a
     * process that has completed its startup.
     */
    bool mainStarted = false;

    /**
     * Why this process last entered buffered mode (trace attribution;
     * reset to None when the process returns to direct delivery).
     */
    trace::DivertReason bufferCause = trace::DivertReason::None;

    /** Context frozen at the last quantum switch (resumed first). */
    exec::ContextPtr savedCtx;

    /**
     * The saved context was interrupted while holding a live output
     * descriptor (mid-inject): it must resume before any other
     * context may use the network interface's send side.
     */
    bool savedCtxUrgent = false;

    /** The live message-handling (drain) thread, if any. */
    rt::ThreadPtr drainThread;

    /**
     * Application-owned state (e.g. a CRL instance) that must outlive
     * the application's main coroutine, since registered message
     * handlers may reference it for the life of the process.
     */
    std::shared_ptr<void> appData;

    /** Saved NI user state across quanta. */
    unsigned savedUac = 0;
    net::MsgVec savedOutput;

    /// @}
    /// @name PortObserver (statistics + atomicity gate)
    /// @{

    void onSend() override;
    void onDispatchStart(bool buffered) override;
    void onDispatchEnd(bool buffered, Cycle handler_cycles) override;
    void onBeginAtomic() override;
    void onEndAtomic() override;

    /// @}

    struct Stats
    {
        Stats(StatGroup *parent, NodeId node, Gid gid);
        StatGroup group;
        Scalar sent;
        Scalar directDelivered;
        Scalar bufferedDelivered;
        Distribution handlerCycles;
        Scalar atomicSections;
    };

    Stats stats;

  private:
    exec::Cpu &cpu_;
    const core::CostModel &costs_;
    Kernel *kernel_ = nullptr;
    NodeId node_;
    Gid gid_;
    Job *job_;
    core::UdmPort port_;
    rt::Scheduler threads_;
    AddressSpace as_;
    VirtualBuffer vbuf_;
    trace::Recorder *tracer_ = nullptr;
    InvariantChecker *checker_ = nullptr;
};

/** Per-node application entry point. */
using AppBody = std::function<exec::CoTask<void>(Process &)>;

class Job
{
  public:
    Job(Gid gid, std::string name, unsigned nodes);

    Gid gid() const { return gid_; }
    const std::string &name() const { return name_; }

    /** All node mains have returned. */
    bool
    done() const
    {
        return doneNodes_.load(std::memory_order_acquire) == nodes_;
    }

    void nodeDone(NodeId node);

    Cycle startCycle = 0;
    Cycle endCycle = 0;

    std::vector<Process *> procs; ///< indexed by node

  private:
    Gid gid_;
    std::string name_;
    unsigned nodes_;
    // Node mains finish on their shard's thread under the parallel
    // engine; the run loop polls done() from the machine thread.
    std::atomic<unsigned> doneNodes_{0};
};

} // namespace fugu::glaze

#endif // FUGU_GLAZE_PROCESS_HH
