/**
 * @file
 * Machine: a whole simulated FUGU multiprocessor.
 *
 * Owns the event queue, both networks, and per node the Cpu, NetIf,
 * frame pool, second-network NIC and kernel; plus the jobs/processes
 * and the loose gang scheduler with synchronized-but-skewable clocks
 * used by the paper's experiments (Section 5).
 */

#ifndef FUGU_GLAZE_MACHINE_HH
#define FUGU_GLAZE_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/costs.hh"
#include "core/netif.hh"
#include "glaze/check.hh"
#include "glaze/kernel.hh"
#include "glaze/process.hh"
#include "glaze/vm.hh"
#include "net/network.hh"
#include "sim/event.hh"
#include "sim/fault.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace fugu::sim
{
class Binder;
}

namespace fugu::glaze
{

struct MachineConfig
{
    unsigned nodes = 8;

    net::NetworkConfig net{};
    net::NetworkConfig osNet{
        /*meshX=*/0, /*meshY=*/0, // filled from nodes
        /*latencyBase=*/50,
        /*perHop=*/10,
        /*perWord=*/8,
        /*channelCapacityWords=*/256,
    };

    core::NetIfConfig ni{};
    core::CostModel costs{};
    core::AtomicityMode atomicity = core::AtomicityMode::Hard;

    /** Physical page frames per node. */
    unsigned framesPerNode = 64;

    /**
     * Ablation: deliver every message via the buffered path (the
     * SUNMOS-style always-buffered organization of Section 2).
     */
    bool alwaysBuffered = false;

    /**
     * Ablation: model a system that pins its buffer pages — this many
     * frames per process are taken at creation and never returned.
     */
    unsigned pinnedBufferPages = 0;

    /** Message-lifecycle tracing (disabled by default). */
    trace::Options trace{};

    /** Deterministic fault injection (disabled by default). */
    sim::FaultConfig fault{};

    /** Machine-wide invariant checker (enabled by default). */
    CheckConfig check{};

    std::uint64_t seed = 1;
};

/** Gang-scheduler parameters (Section 5's experimental knobs). */
struct GangConfig
{
    /** Scheduler timeslice (the paper uses 500,000 cycles). */
    Cycle quantum = 500000;

    /**
     * Schedule quality knob: each node's quantum boundary is offset
     * by a fixed random draw from [0, skew*quantum], modelling the
     * paper's skewed cycle-count registers.
     */
    double skew = 0.0;
};

/**
 * Register the whole machine parameter tree: machine.*, net.*,
 * osnet.*, ni.*, costs.*, and trace.* (composes the per-layer
 * binders).
 */
void bindConfig(sim::Binder &b, MachineConfig &c);

/** Register the gang-scheduler knobs (gang.*). */
void bindConfig(sim::Binder &b, GangConfig &c);

class Machine
{
  public:
    explicit Machine(MachineConfig cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    struct Node
    {
        Node(Machine &m, NodeId id);

        exec::Cpu cpu;
        core::NetIf ni;
        FramePool frames;
        OsNic osnic;
        Kernel kernel;
    };

    Cycle now() const { return eq.now(); }
    unsigned nodeCount() const { return cfg.nodes; }
    Node &node(NodeId id) { return *nodes[id]; }

    /** The trace recorder, or null when tracing is disabled. */
    trace::Recorder *tracer() const { return tracer_.get(); }

    /** The fault injector, or null when fault.enabled is false. */
    sim::FaultInjector *fault() const { return fault_.get(); }

    /** The invariant checker (always present; may be disabled). */
    InvariantChecker *checker() const { return checker_.get(); }

    /** Frames actually pinned on @p node by the pinning ablation. */
    unsigned pinnedFrames(NodeId node) const
    {
        return pinnedFrames_[node];
    }

    /**
     * Create a job: one Process per node, each with a main thread
     * running @p body. The job does not run until installed
     * (single-job) or the gang scheduler is started.
     */
    Job *addJob(std::string name, AppBody body);

    /** Make @p job current on every node immediately (no gang). */
    void installJob(Job *job);

    /**
     * Start gang-scheduling all jobs added so far, rotating each
     * quantum. Installs the first job at the current cycle.
     */
    void startGang(GangConfig gcfg);

    /**
     * Run until @p job finishes.
     * @return false on cycle-limit exhaustion (likely deadlock).
     */
    bool runUntilDone(const Job *job, Cycle max_cycles = 2000000000ull);

    /** Run until the event queue drains or @p until passes. */
    void run(Cycle until = kMaxCycle) { eq.run(until); }

    /**
     * Canonicalize a config the way the constructor will: size both
     * meshes to cover the node count. Public so the config layer can
     * dump the *effective* tree (--dump-config) before building any
     * machine; applying fix twice is a no-op.
     */
    static MachineConfig fix(MachineConfig cfg);

    MachineConfig cfg;
    EventQueue eq;
    StatGroup root;
    Rng rng;
    // Declared before the networks and nodes so it outlives them.
    std::unique_ptr<trace::Recorder> tracer_;
    // Same lifetime rule: nets and NIs hold raw pointers to these.
    std::unique_ptr<sim::FaultInjector> fault_;
    std::unique_ptr<InvariantChecker> checker_;
    net::Network net;
    net::Network osnet;
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<std::unique_ptr<Job>> jobs;
    std::vector<std::unique_ptr<Process>> processes;

  private:
    void scheduleBoundary(NodeId node, std::uint64_t k);
    void scheduleFaultTick(NodeId node, std::uint64_t k);
    Process *pickGangTarget(NodeId node, std::uint64_t k);

    GangConfig gang_;
    bool gangRunning_ = false;
    std::vector<Cycle> gangOffset_; // per node
    std::vector<unsigned> pinnedFrames_; // per node, actual pins
    Gid nextGid_ = 1;
};

} // namespace fugu::glaze

#endif // FUGU_GLAZE_MACHINE_HH
