/**
 * @file
 * Machine: a whole simulated FUGU multiprocessor.
 *
 * Owns the event queue, both networks, and per node the Cpu, NetIf,
 * frame pool, second-network NIC and kernel; plus the jobs/processes
 * and the loose gang scheduler with synchronized-but-skewable clocks
 * used by the paper's experiments (Section 5).
 */

#ifndef FUGU_GLAZE_MACHINE_HH
#define FUGU_GLAZE_MACHINE_HH

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/costs.hh"
#include "core/netif.hh"
#include "glaze/check.hh"
#include "glaze/kernel.hh"
#include "glaze/process.hh"
#include "glaze/vm.hh"
#include "net/network.hh"
#include "sim/event.hh"
#include "sim/fault.hh"
#include "sim/pool.hh"
#include "sim/rng.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace fugu::sim
{
class Binder;
}

namespace fugu::glaze
{

struct MachineConfig
{
    unsigned nodes = 8;

    net::NetworkConfig net{};
    net::NetworkConfig osNet{
        /*meshX=*/0, /*meshY=*/0, // filled from nodes
        /*latencyBase=*/50,
        /*perHop=*/10,
        /*perWord=*/8,
        /*channelCapacityWords=*/256,
    };

    core::NetIfConfig ni{};
    core::CostModel costs{};
    core::AtomicityMode atomicity = core::AtomicityMode::Hard;

    /** Physical page frames per node. */
    unsigned framesPerNode = 64;

    /**
     * Ablation: deliver every message via the buffered path (the
     * SUNMOS-style always-buffered organization of Section 2).
     */
    bool alwaysBuffered = false;

    /**
     * Ablation: model a system that pins its buffer pages — this many
     * frames per process are taken at creation and never returned.
     */
    unsigned pinnedBufferPages = 0;

    /**
     * Parallel engine: number of shards the nodes are partitioned
     * across (contiguous blocks). 1 selects the serial engine — the
     * bit-exact oracle. Values above the node count are clamped.
     */
    unsigned parShards = 1;

    /**
     * Bound-phase lookahead in cycles; 0 derives it from the minimum
     * cross-node delivery latency of the two networks. Explicit
     * values are clamped to [1, that minimum] so a scenario can
     * shorten phases (more frequent weaves) but never break the
     * causality guarantee.
     */
    Cycle lookahead = 0;

    /**
     * Engine: drain all same-cycle events per calendar-bucket touch
     * (one head/tail reload per batch instead of per event). Purely a
     * throughput knob — firing order is unchanged — kept switchable so
     * regressions can be bisected against the per-event drain.
     */
    bool batchFire = true;

    /** Message-lifecycle tracing (disabled by default). */
    trace::Options trace{};

    /** Deterministic fault injection (disabled by default). */
    sim::FaultConfig fault{};

    /** Machine-wide invariant checker (enabled by default). */
    CheckConfig check{};

    std::uint64_t seed = 1;
};

/** Gang-scheduler parameters (Section 5's experimental knobs). */
struct GangConfig
{
    /** Scheduler timeslice (the paper uses 500,000 cycles). */
    Cycle quantum = 500000;

    /**
     * Schedule quality knob: each node's quantum boundary is offset
     * by a fixed random draw from [0, skew*quantum], modelling the
     * paper's skewed cycle-count registers.
     */
    double skew = 0.0;
};

/**
 * Register the whole machine parameter tree: machine.*, net.*,
 * osnet.*, ni.*, costs.*, and trace.* (composes the per-layer
 * binders).
 */
void bindConfig(sim::Binder &b, MachineConfig &c);

/** Register the gang-scheduler knobs (gang.*). */
void bindConfig(sim::Binder &b, GangConfig &c);

class Machine
{
  public:
    explicit Machine(MachineConfig cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    struct Node
    {
        Node(Machine &m, NodeId id, EventQueue &eq);

        exec::Cpu cpu;
        core::NetIf ni;
        FramePool frames;
        OsNic osnic;
        Kernel kernel;
    };

    /**
     * Current simulated cycle: the minimum across shard clocks (the
     * machine has reached a cycle only once every shard has). With
     * one shard this is exactly the event queue's clock. Serial
     * contexts only — do not call from inside a bound phase.
     */
    Cycle
    now() const
    {
        Cycle t = eq.now();
        for (const auto &q : extraEqs_)
            t = std::min(t, q->now());
        return t;
    }

    unsigned nodeCount() const { return cfg.nodes; }
    Node &node(NodeId id) { return nodes[id]; }

    /// @name Parallel engine
    /// @{

    /** Shards the machine actually runs with (1 = serial oracle). */
    unsigned shardCount() const { return shards_.shards; }

    /** Shard owning node @p n. */
    unsigned shardOf(NodeId n) const { return shards_.of(n); }

    /** The event queue node @p n's events run on. */
    EventQueue &queueFor(NodeId n) { return *shardEq_[shards_.of(n)]; }

    /** Effective bound-phase lookahead (after derivation/clamping). */
    Cycle lookahead() const { return lookahead_; }

    /** Events processed by runUntilDone / run so far. */
    std::uint64_t eventsProcessed() const { return eventsRun_; }

    /**
     * A cycle stamp safe to read from any shard thread (the current
     * phase's bound). Serial machines report the exact clock. Used by
     * the invariant checker's diagnostics.
     */
    Cycle
    checkTime() const
    {
        return shards_.shards == 1
                   ? eq.now()
                   : phaseBound_.load(std::memory_order_relaxed);
    }

    /// @}

    /** The trace recorder, or null when tracing is disabled. The
     *  parallel engine records per shard; this is shard 0's. */
    trace::Recorder *tracer() const { return tracerAt(0); }

    /** The recorder node @p n's components log to (null if off). */
    trace::Recorder *
    tracerFor(NodeId n) const
    {
        return tracerAt(shards_.of(n));
    }

    /** All per-shard recorders (empty when tracing is disabled). */
    const std::vector<std::unique_ptr<trace::Recorder>> &
    allTracers() const
    {
        return tracers_;
    }

    /**
     * The union of the per-shard trace buffers, merged in (timestamp,
     * shard) order — deterministic for a fixed shard count. With one
     * shard this is a copy of the single buffer.
     */
    trace::TraceBuffer mergedTrace() const;

    /** The fault injector, or null when fault.enabled is false. The
     *  parallel engine injects per shard; this is shard 0's. */
    sim::FaultInjector *fault() const { return faultAt(0); }

    /** The injector perturbing node @p n (null when faults are off). */
    sim::FaultInjector *
    faultFor(NodeId n) const
    {
        return faultAt(shards_.of(n));
    }

    /** All per-shard injectors (empty when fault.enabled is false). */
    const std::vector<std::unique_ptr<sim::FaultInjector>> &
    allFaults() const
    {
        return faults_;
    }

    /** The invariant checker (always present; may be disabled). */
    InvariantChecker *checker() const { return checker_.get(); }

    /** Frames actually pinned on @p node by the pinning ablation. */
    unsigned pinnedFrames(NodeId node) const
    {
        return pinnedFrames_[node];
    }

    /**
     * Create a job: one Process per node, each with a main thread
     * running @p body. The job does not run until installed
     * (single-job) or the gang scheduler is started.
     */
    Job *addJob(std::string name, AppBody body);

    /** Make @p job current on every node immediately (no gang). */
    void installJob(Job *job);

    /**
     * Start gang-scheduling all jobs added so far, rotating each
     * quantum. Installs the first job at the current cycle.
     */
    void startGang(GangConfig gcfg);

    /**
     * Run until @p job finishes. With machine.par_shards > 1 this is
     * the bound-weave loop: every phase runs each shard's queue in
     * parallel up to a global horizon (the earliest pending event
     * anywhere plus the lookahead), then commits cross-shard packet
     * handoffs in fixed shard order.
     * @return false on cycle-limit exhaustion (likely deadlock).
     */
    bool runUntilDone(const Job *job, Cycle max_cycles = 2000000000ull);

    /** Run until the event queues drain or @p until passes. */
    void run(Cycle until = kMaxCycle);

    /**
     * Canonicalize a config the way the constructor will: size both
     * meshes to cover the node count. Public so the config layer can
     * dump the *effective* tree (--dump-config) before building any
     * machine; applying fix twice is a no-op.
     */
    static MachineConfig fix(MachineConfig cfg);

    MachineConfig cfg;
    EventQueue eq;

  private:
    // The shard queues are declared right after the primary queue so
    // every queue outlives the networks and nodes scheduling on them.
    sim::ShardMap shards_;
    std::vector<std::unique_ptr<EventQueue>> extraEqs_; // shards 1..
    std::vector<EventQueue *> shardEq_;                 // [0] == &eq

  public:
    StatGroup root;
    Rng rng;
    // Declared before the networks and nodes so they outlive them.
    std::vector<std::unique_ptr<trace::Recorder>> tracers_; // per shard
    // Same lifetime rule: nets and NIs hold raw pointers to these.
    std::vector<std::unique_ptr<sim::FaultInjector>> faults_; // per shard
    std::unique_ptr<InvariantChecker> checker_;
    net::Network net;
    net::Network osnet;
    std::deque<Node> nodes; // deque: Node is pinned (non-movable)
    std::vector<std::unique_ptr<Job>> jobs;
    std::vector<std::unique_ptr<Process>> processes;

  private:
    trace::Recorder *
    tracerAt(unsigned shard) const
    {
        return tracers_.empty() ? nullptr : tracers_[shard].get();
    }

    sim::FaultInjector *
    faultAt(unsigned shard) const
    {
        return faults_.empty() ? nullptr : faults_[shard].get();
    }

    /** Earliest pending event across shard queues (kMaxCycle = none). */
    Cycle nextEventFloor();

    /** One bound phase up to min(floor + lookahead, limit) + weave. */
    void runPhase(Cycle floor, Cycle limit);

    /** Flush staged traffic and fold lane stats (parallel runs). */
    void finishRun();

    void scheduleBoundary(NodeId node, std::uint64_t k);
    void scheduleFaultTick(NodeId node, std::uint64_t k);
    Process *pickGangTarget(NodeId node, std::uint64_t k);

    std::unique_ptr<sim::WorkerPool> pool_;
    Cycle lookahead_ = 1;
    std::uint64_t eventsRun_ = 0;
    std::vector<std::uint64_t> phaseEvents_; // per shard, per phase
    std::atomic<Cycle> phaseBound_{0};

    GangConfig gang_;
    bool gangRunning_ = false;
    std::vector<Cycle> gangOffset_; // per node
    std::vector<unsigned> pinnedFrames_; // per node, actual pins
    Gid nextGid_ = 1;
};

} // namespace fugu::glaze

#endif // FUGU_GLAZE_MACHINE_HH
