#include "rt/thread.hh"

#include "sim/log.hh"

namespace fugu::rt
{

Scheduler::Scheduler(exec::Cpu &cpu, const core::CostModel &costs)
    : cpu_(cpu), costs_(costs)
{
}

ThreadPtr
Scheduler::spawn(std::string name, int priority, exec::Task body)
{
    auto ctx = cpu_.spawn(name, /*kernel=*/false, std::move(body));
    auto t = std::make_shared<Thread>(std::move(name), priority, ctx);
    byCtx_[ctx.get()] = t;
    ++live_;
    enqueue(t);
    cpu_.requestDispatch();
    return t;
}

void
Scheduler::enqueue(const ThreadPtr &t)
{
    if (t->finished())
        return;
    // Duplicate entries are allowed: two logically distinct wakeups
    // (say, a quantum-switch requeue and a condition-variable notify)
    // must not merge, or one is lost. A stale duplicate merely causes
    // a spurious wakeup, and every wait in the system is
    // predicate-looped.
    t->queued_ = true;
    ready_.push(QueueEntry{t->priority(), nextSeq_++, t});
}

void
Scheduler::noteFinished()
{
    // Sweep finished threads out of the context map lazily.
    for (auto it = byCtx_.begin(); it != byCtx_.end();) {
        if (it->second->finished()) {
            --live_;
            it = byCtx_.erase(it);
        } else {
            ++it;
        }
    }
}

exec::ContextPtr
Scheduler::pickNext()
{
    while (!ready_.empty()) {
        ThreadPtr t = ready_.top().t;
        ready_.pop();
        t->queued_ = false;
        if (t->finished())
            continue;
        return t->ctx();
    }
    noteFinished();
    return nullptr;
}

bool
Scheduler::hasRunnable() const
{
    // Finished threads may linger in the queue; treat them as absent.
    if (ready_.empty())
        return false;
    // Cheap common case: the top is live.
    return !ready_.top().t->finished() || ready_.size() > 1;
}

ThreadPtr
Scheduler::current() const
{
    const auto &ctx = cpu_.current();
    if (!ctx)
        return nullptr;
    return threadOf(ctx);
}

ThreadPtr
Scheduler::threadOf(const exec::ContextPtr &ctx) const
{
    auto it = byCtx_.find(ctx.get());
    return it == byCtx_.end() ? nullptr : it->second;
}

exec::CoTask<void>
Scheduler::yield()
{
    ThreadPtr self = current();
    fugu_assert(self, "yield() from a non-thread context");
    co_await cpu_.spend(costs_.threadSwitch);
    enqueue(self);
    co_await cpu_.block(); // dispatcher picks the next thread
}

exec::CoTask<void>
Scheduler::blockCurrent()
{
    fugu_assert(current(), "blockCurrent() from a non-thread context");
    co_await cpu_.spend(costs_.threadSwitch);
    co_await cpu_.block();
}

void
Scheduler::makeReady(const ThreadPtr &t)
{
    enqueue(t);
    cpu_.requestDispatch();
}

exec::CoTask<void>
CondVar::wait()
{
    ThreadPtr self = sched_.current();
    fugu_assert(self, "CondVar::wait() from a non-thread context "
                      "(message handlers must not block)");
    waiters_.push_back(self);
    co_await sched_.blockCurrent();
}

void
CondVar::notifyOne()
{
    if (waiters_.empty())
        return;
    ThreadPtr t = std::move(waiters_.front());
    waiters_.pop_front();
    sched_.makeReady(t);
}

void
CondVar::notifyAll()
{
    while (!waiters_.empty())
        notifyOne();
}

} // namespace fugu::rt
