/**
 * @file
 * User-level threads (Section 3: "UDM assumes an execution model in
 * which one or more threads run on each processor").
 *
 * A Scheduler multiplexes an application's threads over its node's
 * Cpu. It is passive: the OS's idle hook asks it to pickNext() when
 * the Cpu has nothing to run. Buffered-mode atomicity is emulated by
 * priority: the message-handling (drain) thread runs at high priority
 * so handlers are atomic with respect to other application threads,
 * exactly as Section 4.2 describes.
 */

#ifndef FUGU_RT_THREAD_HH
#define FUGU_RT_THREAD_HH

#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>

#include "core/costs.hh"
#include "exec/cpu.hh"
#include "exec/task.hh"
#include "sim/stats.hh"

namespace fugu::rt
{

/** Priority of ordinary application threads. */
inline constexpr int kPrioNormal = 0;

/** Priority of the buffered-mode message-handling thread. */
inline constexpr int kPrioHandler = 10;

class Scheduler;

class Thread
{
  public:
    Thread(std::string name, int priority, exec::ContextPtr ctx)
        : name_(std::move(name)), priority_(priority),
          ctx_(std::move(ctx))
    {}

    const std::string &name() const { return name_; }
    int priority() const { return priority_; }
    const exec::ContextPtr &ctx() const { return ctx_; }
    bool finished() const { return ctx_->finished(); }

  private:
    friend class Scheduler;

    std::string name_;
    int priority_;
    exec::ContextPtr ctx_;
    bool queued_ = false;
};

using ThreadPtr = std::shared_ptr<Thread>;

class Scheduler
{
  public:
    Scheduler(exec::Cpu &cpu, const core::CostModel &costs);

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Create a thread and make it runnable. */
    ThreadPtr spawn(std::string name, int priority, exec::Task body);

    /**
     * Pop the highest-priority runnable thread's context, or null.
     * Called by the OS dispatcher when the Cpu idles.
     */
    exec::ContextPtr pickNext();

    bool hasRunnable() const;

    /** Threads not yet finished. */
    std::size_t liveThreads() const { return live_; }

    /** The thread owning the currently running context (may be null,
     *  e.g. inside an upcall handler context). */
    ThreadPtr current() const;

    /** The thread owning @p ctx, or null if it is not a thread. */
    ThreadPtr threadOf(const exec::ContextPtr &ctx) const;

    /// @name Called from thread code
    /// @{

    /** Let equal/higher-priority threads run; charges a switch cost. */
    exec::CoTask<void> yield();

    /** Block the current thread until makeReady() is called on it. */
    exec::CoTask<void> blockCurrent();

    /// @}

    /** Make a blocked thread runnable (callable from handlers). */
    void makeReady(const ThreadPtr &t);

  private:
    struct QueueEntry
    {
        int prio;
        std::uint64_t seq;
        ThreadPtr t;

        bool
        operator<(const QueueEntry &o) const
        {
            // priority_queue is a max-heap: higher prio first, then
            // FIFO within a priority level.
            return prio != o.prio ? prio < o.prio : seq > o.seq;
        }
    };

    void enqueue(const ThreadPtr &t);
    void noteFinished();

    exec::Cpu &cpu_;
    const core::CostModel &costs_;
    std::priority_queue<QueueEntry> ready_;
    std::unordered_map<exec::Context *, ThreadPtr> byCtx_;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;
};

/** Condition variable for threads of one Scheduler. */
class CondVar
{
  public:
    explicit CondVar(Scheduler &sched) : sched_(sched) {}

    /**
     * Block the current thread until notified. Use with a predicate
     * loop, as notifications are not sticky.
     */
    exec::CoTask<void> wait();

    void notifyOne();
    void notifyAll();

    std::size_t waiters() const { return waiters_.size(); }

  private:
    Scheduler &sched_;
    std::deque<ThreadPtr> waiters_;
};

} // namespace fugu::rt

#endif // FUGU_RT_THREAD_HH
