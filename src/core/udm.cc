#include "core/udm.hh"

#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>

namespace fugu::core
{

namespace
{
bool
traceOn()
{
    static const bool on = std::getenv("FUGU_UDM_TRACE") != nullptr;
    return on;
}
} // namespace

UdmPort::UdmPort(exec::Cpu &cpu, NetIf &ni, const CostModel &costs)
    : cpu_(cpu), ni_(ni), costs_(costs),
      bufCosts_(ni.backend().bufferedCosts(costs)),
      disposeBase_(costs.nullHandler)
{
}

// ---------------------------------------------------------------------
// Sending
// ---------------------------------------------------------------------

exec::CoTask<void>
UdmPort::send(NodeId dst, Word handler, net::PayloadVec args)
{
    const unsigned words = 2 + static_cast<unsigned>(args.size());
    co_await cpu_.spend(costs_.descriptorConstruction +
                        costs_.sendArgCost(
                            static_cast<unsigned>(args.size())));
    // FUGU blocks the descriptor *stores* while the network cannot
    // accept the implied message; we model the same stall here, in
    // interruptible chunks so message interrupts still land.
    while (!ni_.spaceAvailable(dst, words))
        co_await cpu_.spend(4);
    ni_.writeOutput(0, makeHeader(dst));
    ni_.writeOutput(1, handler);
    for (unsigned i = 0; i < args.size(); ++i)
        ni_.writeOutput(2 + i, args[i]);
    co_await cpu_.spend(costs_.launch);
    NiTrap t = ni_.launch(words, /*user_mode=*/true);
    fugu_assert(t == NiTrap::None, "user launch trapped unexpectedly");
    if (traceOn())
        std::printf("[udm] n%u launched h=%u dst=%u\n", ni_.id(),
                    handler, dst);
    if (observer_)
        observer_->onSend();
}

exec::CoTask<bool>
UdmPort::trySend(NodeId dst, Word handler, net::PayloadVec args)
{
    const unsigned words = 2 + static_cast<unsigned>(args.size());
    co_await cpu_.spend(costs_.descriptorConstruction +
                        costs_.sendArgCost(
                            static_cast<unsigned>(args.size())));
    if (!ni_.spaceAvailable(dst, words))
        co_return false;
    ni_.writeOutput(0, makeHeader(dst));
    ni_.writeOutput(1, handler);
    for (unsigned i = 0; i < args.size(); ++i)
        ni_.writeOutput(2 + i, args[i]);
    co_await cpu_.spend(costs_.launch);
    NiTrap t = ni_.launch(words, /*user_mode=*/true);
    fugu_assert(t == NiTrap::None, "user launch trapped unexpectedly");
    if (observer_)
        observer_->onSend();
    co_return true;
}

// ---------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------

bool
UdmPort::messageAvailable() const
{
    return buffered_ ? buffered_->available() : ni_.messageAvailable();
}

Word
UdmPort::readRaw(unsigned offset) const
{
    return buffered_ ? buffered_->read(offset) : ni_.readInput(offset);
}

Word
UdmPort::headHandler() const
{
    fugu_assert(messageAvailable(), "peek with no message");
    return readRaw(1);
}

NodeId
UdmPort::headSrc() const
{
    fugu_assert(messageAvailable(), "peek with no message");
    return headerNode(readRaw(0));
}

unsigned
UdmPort::headPayloadWords() const
{
    fugu_assert(messageAvailable(), "peek with no message");
    return (buffered_ ? buffered_->size() : ni_.inputSize()) - 2;
}

exec::CoTask<Word>
UdmPort::read(unsigned idx)
{
    ++wordsRead_;
    if (buffered_) {
        // Backend-dependent drain cost (half-cycle granularity, same
        // integer floor per word as CostModel::bufferArgCost).
        co_await cpu_.spend(bufCosts_.perWordX2 / 2);
    } else {
        co_await cpu_.spend(costs_.receiveArgCost(1));
    }
    co_return readRaw(2 + idx);
}

exec::CoTask<void>
UdmPort::dispose()
{
    wordsRead_ = 0;
    if (buffered_) {
        // Retrieval from the buffer plus the dispose-extend trap
        // emulation; the base cost is the backend's.
        co_await cpu_.spend(bufCosts_.drainBase +
                            costs_.bufferedPathExtra);
    } else {
        co_await cpu_.spend(disposeBase_);
    }
    disposeBase_ = costs_.nullHandler;
    NiTrap t = ni_.dispose(/*user_mode=*/true);
    if (t == NiTrap::None)
        co_return;
    co_await cpu_.trap(trapVector(t));
}

// ---------------------------------------------------------------------
// Atomicity
// ---------------------------------------------------------------------

exec::CoTask<void>
UdmPort::beginAtomic()
{
    co_await cpu_.spend(1);
    ni_.beginAtom(kUacInterruptDisable);
    if (observer_)
        observer_->onBeginAtomic();
}

exec::CoTask<void>
UdmPort::endAtomic()
{
    co_await cpu_.spend(1);
    NiTrap t = ni_.endAtom(kUacInterruptDisable);
    if (t != NiTrap::None)
        co_await cpu_.trap(trapVector(t));
    if (observer_)
        observer_->onEndAtomic();
}

bool
UdmPort::atomicityOn() const
{
    return ni_.uac() & kUacInterruptDisable;
}

// ---------------------------------------------------------------------
// Notification / dispatch
// ---------------------------------------------------------------------

void
UdmPort::setHandler(Word id, Handler fn)
{
    if (handlers_.size() <= id)
        handlers_.resize(id + 1);
    handlers_[id] = std::move(fn);
}

exec::CoTask<void>
UdmPort::dispatch(Cycle dispose_base)
{
    const Word id = headHandler();
    const NodeId src = headSrc();
    fugu_assert(id < handlers_.size() && handlers_[id],
                "no handler registered for id ", id);
    disposeBase_ = dispose_base;
    if (traceOn()) {
        std::printf("[udm] n%u dispatch h=%u src=%u buffered=%d\n",
                    ni_.id(), id, src, buffered());
    }
    const bool was_buffered = buffered();
    const Cycle t0 = cpu_.now();
    if (observer_)
        observer_->onDispatchStart(was_buffered);
    co_await handlers_[id](*this, src);
    if (observer_)
        observer_->onDispatchEnd(was_buffered, cpu_.now() - t0);
}

exec::CoTask<bool>
UdmPort::poll()
{
    fugu_assert(atomicityOn() || buffered_,
                "polling outside an atomic section");
    co_await cpu_.spend(costs_.poll);
    if (!messageAvailable())
        co_return false;
    co_await cpu_.spend(costs_.pollDispatch);
    co_await dispatch(costs_.pollNullHandler);
    co_return true;
}

exec::CoTask<void>
UdmPort::dispatchUpcall()
{
    co_await dispatch(costs_.nullHandler);
}

// ---------------------------------------------------------------------
// Mode control
// ---------------------------------------------------------------------

void
UdmPort::enterBuffered(BufferedInput *buffer)
{
    fugu_assert(buffer, "null buffer");
    buffered_ = buffer;
}

void
UdmPort::exitBuffered()
{
    buffered_ = nullptr;
}

} // namespace fugu::core
