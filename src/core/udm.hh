/**
 * @file
 * UdmPort: the user-level UDM messaging API (Section 3).
 *
 * A port is the application's view of the network interface on one
 * node. It implements inject/extract/peek and the explicit atomicity
 * operations as thin software wrappers over the NetIf hardware model,
 * charging the per-stage cycle costs of Table 4/5 through the
 * CostModel, and taking traps on the Cpu where the hardware would.
 *
 * Transparent access (Section 4.3): the port reads messages through a
 * "base pointer" that normally aims at the NI input window; when the
 * OS moves the process to buffered mode it retargets the pointer at
 * the software buffer (a BufferedInput). Message reads and the
 * message-available flag are thereby identical in both modes, and
 * dispose is emulated through the dispose-extend trap exactly as on
 * the hardware.
 */

#ifndef FUGU_CORE_UDM_HH
#define FUGU_CORE_UDM_HH

#include <functional>
#include <vector>

#include "core/costs.hh"
#include "core/netif.hh"
#include "exec/cpu.hh"
#include "exec/task.hh"

namespace fugu::core
{

/**
 * The software buffer's read-side interface, implemented by the OS's
 * virtual buffering system. Offsets mirror the NI input window:
 * word 0 header (source), word 1 handler, 2.. payload.
 */
class BufferedInput
{
  public:
    virtual ~BufferedInput() = default;
    virtual bool available() const = 0;
    virtual unsigned size() const = 0;
    virtual Word read(unsigned offset) const = 0;
};

class UdmPort;

/**
 * A user message handler. Invoked with the port and the source node;
 * it must extract (dispose) at least one message before returning or
 * re-enabling interrupts, per the UDM model.
 */
using Handler = std::function<exec::CoTask<void>(UdmPort &, NodeId src)>;

/**
 * Hooks the OS/process layer attaches to a port: statistics (which
 * delivery path served each message, handler occupancy) and the
 * buffered-mode atomicity emulation (the thread scheduler must defer
 * buffered-message handling across user atomic sections).
 */
class PortObserver
{
  public:
    virtual ~PortObserver() = default;
    virtual void onSend() {}
    virtual void onDispatchStart(bool buffered) { (void)buffered; }
    virtual void onDispatchEnd(bool buffered, Cycle handler_cycles)
    {
        (void)buffered;
        (void)handler_cycles;
    }
    virtual void onBeginAtomic() {}
    virtual void onEndAtomic() {}
};

class UdmPort
{
  public:
    UdmPort(exec::Cpu &cpu, NetIf &ni, const CostModel &costs);

    UdmPort(const UdmPort &) = delete;
    UdmPort &operator=(const UdmPort &) = delete;

    exec::Cpu &cpu() { return cpu_; }
    NetIf &ni() { return ni_; }
    const CostModel &costs() const { return costs_; }

    /// @name Sending
    /// @{

    /**
     * Blocking inject: describe and launch a message. Blocks (by
     * stalling, interruptibly) until the network accepts it.
     */
    exec::CoTask<void> send(NodeId dst, Word handler,
                            net::PayloadVec args = {});

    /** Conditional inject: @return false if the network is full. */
    exec::CoTask<bool> trySend(NodeId dst, Word handler,
                               net::PayloadVec args = {});

    /// @}
    /// @name Extraction (transparent between fast and buffered mode)
    /// @{

    /** The message-available flag (free to read; polling charges). */
    bool messageAvailable() const;

    /** Handler word of the pending message (peek; no cost). */
    Word headHandler() const;

    /** Source node of the pending message (peek; no cost). */
    NodeId headSrc() const;

    /** Payload length in words of the pending message. */
    unsigned headPayloadWords() const;

    /**
     * Read payload word @p idx of the pending message into user
     * variables; charges the per-word extract cost of the active
     * delivery path.
     */
    exec::CoTask<Word> read(unsigned idx);

    /**
     * Extract-and-free the pending message. Charges the handler
     * base cost of the active path (Table 4/5) and takes the
     * dispose-extend trap in buffered mode.
     */
    exec::CoTask<void> dispose();

    /// @}
    /// @name Atomicity (Section 3)
    /// @{

    /** Enter an atomic section (disable message interrupts). */
    exec::CoTask<void> beginAtomic();

    /** Leave an atomic section; may trap to the OS (Table 1). */
    exec::CoTask<void> endAtomic();

    /** Is the interrupt-disable flag set? */
    bool atomicityOn() const;

    /// @}
    /// @name Notification
    /// @{

    /** Register the handler invoked for messages naming @p id. */
    void setHandler(Word id, Handler fn);

    /**
     * Poll once: charge the poll cost; if a message is pending,
     * dispatch its handler (polling-path costs) and return true.
     * Must be called inside an atomic section.
     */
    exec::CoTask<bool> poll();

    /**
     * Dispatch the pending message's handler with upcall-path costs.
     * Called by the OS upcall stub inside the upcall context.
     */
    exec::CoTask<void> dispatchUpcall();

    /// @}
    /// @name OS-side mode control (transparent to the user)
    /// @{

    /** Retarget extraction at the software buffer (buffered mode). */
    void enterBuffered(BufferedInput *buffer);

    /** Back to direct NI access (fast mode). */
    void exitBuffered();

    bool buffered() const { return buffered_ != nullptr; }

    /** Attach the process layer's hooks (may be null). */
    void setObserver(PortObserver *obs) { observer_ = obs; }

    /// @}

  private:
    Word readRaw(unsigned offset) const;
    exec::CoTask<void> dispatch(Cycle dispose_base);

    exec::Cpu &cpu_;
    NetIf &ni_;
    const CostModel &costs_;

    /** The buffered-path drain costs the NI's backend charges. */
    NiBufferedCosts bufCosts_;

    BufferedInput *buffered_ = nullptr;
    PortObserver *observer_ = nullptr;
    std::vector<Handler> handlers_;

    /** Base cost dispose() charges; set by the dispatch path. */
    Cycle disposeBase_;

    /** Payload words read since the last dispose (per-word costs). */
    unsigned wordsRead_ = 0;
};

} // namespace fugu::core

#endif // FUGU_CORE_UDM_HH
