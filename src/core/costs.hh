/**
 * @file
 * CostModel: the per-stage cycle costs of the messaging paths.
 *
 * Defaults come from the paper's Tables 4 and 5. The modelled code
 * paths in core/glaze/rt charge these costs, so the Table 4/5
 * microbenchmarks reproduce the paper's totals by construction and the
 * application experiments inherit a consistent cost structure.
 * Experiments may override individual entries (Figure 10 sweeps
 * bufferedPathExtra).
 */

#ifndef FUGU_CORE_COSTS_HH
#define FUGU_CORE_COSTS_HH

#include "sim/types.hh"

namespace fugu::sim
{
class Binder;
}

namespace fugu::core
{

/**
 * Which atomicity implementation the receive path models (Table 4
 * columns): unprotected kernel-level delivery, the hardware revocable
 * interrupt disable ("hard"), or the all-software emulation the
 * authors ran on first-silicon ("soft").
 */
enum class AtomicityMode
{
    Kernel, ///< unprotected kernel-to-kernel messaging
    Hard,   ///< hardware atomicity (the paper's proposed mechanism)
    Soft,   ///< software-emulated atomicity (their measured system)
};

struct CostModel
{
    /// @name Message send (Table 4)
    /// @{
    Cycle descriptorConstruction = 6; ///< null-message descriptor
    Cycle perSendArgWord = 3;         ///< each payload word
    Cycle launch = 1;
    /// @}

    /// @name Message receive, interrupt path (Table 4)
    /// @{
    Cycle interruptOverhead = 6;
    Cycle registerSave = 16;
    Cycle gidCheck = 10;       ///< protected modes only
    Cycle timerSetupHard = 1;  ///< hardware atomicity
    Cycle timerSetupSoft = 13; ///< software atomicity
    Cycle virtualBufferingOverhead = 8;
    Cycle dispatchKernel = 10; ///< kernel-mode dispatch
    Cycle dispatchUpcall = 13; ///< dispatch + upcall to user
    Cycle nullHandler = 5;     ///< null handler incl. dispose
    Cycle perReceiveArgWord = 2;
    Cycle upcallCleanup = 10;
    Cycle timerCleanupHard = 1;
    Cycle timerCleanupSoft = 17;
    Cycle registerRestore = 17;
    /// @}

    /// @name Message receive, polling path (Table 4)
    /// @{
    Cycle poll = 3;
    Cycle pollDispatch = 5;
    Cycle pollNullHandler = 1; ///< null handler incl. dispose
    /// @}

    /// @name Buffered path (Table 5)
    /// @{
    Cycle bufferInsertMin = 180;   ///< buffer-insert handler, no alloc
    Cycle vmallocExtra = 2982;     ///< extra when a fresh page is
                                   ///< allocated (3162 total)
    Cycle bufferNullHandler = 52;  ///< execute null handler from buffer
    /** Per-word extraction adds ~4.5 cycles (DRAM + cache misses). */
    Cycle perBufferWordX2 = 9;     ///< stored doubled to keep integers
    Cycle bufferedPathExtra = 0;   ///< Figure 10 knob: added latency
    /// @}

    /// @name NI-buffering backend charges (ni.backend ablations)
    /// @{
    Cycle damqSelect = 3;          ///< DAMQ associative head select,
                                   ///< charged per fast-path stub entry
    Cycle zerocopyInsertMin = 62;  ///< page-flip insert, page resident
    Cycle vmRemap = 420;           ///< remap the arrival page into the
                                   ///< buffer region (vs. vmallocExtra)
    /** Flipped pages drain TLB-warm: ~2.5 cycles per word. */
    Cycle zerocopyPerWordX2 = 5;   ///< stored doubled to keep integers
    /// @}

    /// @name Operating system costs (not from the paper's tables)
    /// @{
    Cycle processSwitch = 400;     ///< gang-scheduler process switch
    Cycle pageZeroFill = 600;      ///< demand-zero page fault service
    Cycle modeTransition = 60;     ///< fast<->buffered bookkeeping
    Cycle threadSwitch = 40;       ///< user-level thread switch
    Cycle pageOutLatency = 4000;   ///< swap a buffer page to backing
                                   ///< store over the second network
    Cycle pageInLatency = 4000;    ///< bring a swapped page back
    /// @}

    /** Receive-side per-word cost on the fast path. */
    Cycle
    receiveArgCost(unsigned words) const
    {
        return perReceiveArgWord * words;
    }

    /** Send-side per-word cost. */
    Cycle
    sendArgCost(unsigned words) const
    {
        return perSendArgWord * words;
    }

    /** Buffered-path per-word extraction cost (4.5 cycles/word). */
    Cycle
    bufferArgCost(unsigned words) const
    {
        return (perBufferWordX2 * words) / 2;
    }

    /** Timer setup cost for the receive stub in @p mode. */
    Cycle
    timerSetup(AtomicityMode mode) const
    {
        return mode == AtomicityMode::Soft ? timerSetupSoft
                                           : timerSetupHard;
    }

    /** Timer cleanup cost for the receive stub in @p mode. */
    Cycle
    timerCleanup(AtomicityMode mode) const
    {
        return mode == AtomicityMode::Soft ? timerCleanupSoft
                                           : timerCleanupHard;
    }
};

/** Register every CostModel entry on the scenario/config tree. */
void bindConfig(sim::Binder &b, CostModel &c);

} // namespace fugu::core

#endif // FUGU_CORE_COSTS_HH
