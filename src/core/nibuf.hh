/**
 * @file
 * NiBufferBackend: pluggable NI input-queue buffering designs.
 *
 * The paper's two-case split hinges on how the NI buffers traffic:
 * static FIFOs bound the fast case, and the buffered case pays a copy
 * into virtual buffering. Both ends are design choices, not fixed
 * costs, so every place a packet is queued at the NI sits behind this
 * interface and `--set ni.backend=...` selects the design:
 *
 *  - `static_fifo`: the FUGU hardware's statically partitioned input
 *    ring. One FIFO, strict arrival order, full refuses arrivals.
 *    Bit-exact with the original hard-coded path — the oracle every
 *    other backend is diffed against.
 *
 *  - `damq`: a dynamically-allocated multi-queue (Jamali et al.). All
 *    slots live in one shared pool with a per-(source,GID) occupancy
 *    cap, and the head the hardware hands out is the oldest message
 *    for the *scheduled* GID — a descheduled tenant's arrivals no
 *    longer block the fast case at the queue head. Output descriptor
 *    space shares the same SRAM: a live descriptor reserves one input
 *    slot. The associative head select is charged through the cost
 *    model (`costs.damq_select`) on every fast-path stub entry.
 *
 *  - `zerocopy_remap`: buffered-case delivery by page flip (Power's
 *    memory-protection zero-copy). The input side is the static FIFO,
 *    but a diverted message is donated to the process by remapping
 *    the NI-side page into the virtual buffer instead of copying:
 *    cheaper insert, a VM remap charge instead of a vmalloc, a
 *    cheaper per-word drain (the words were never copied), and no
 *    per-record header words in the buffer pages.
 *
 * Backends only reorder *across* (src,gid) streams — per-stream FIFO,
 * content transparency and frame conservation are invariants every
 * backend must keep (tests/test_backend.cc holds them to it).
 */

#ifndef FUGU_CORE_NIBUF_HH
#define FUGU_CORE_NIBUF_HH

#include <memory>
#include <vector>

#include "net/packet.hh"
#include "sim/types.hh"

namespace fugu::core
{

struct CostModel;
struct NetIfConfig;

enum class NiBackendKind
{
    StaticFifo,    ///< statically partitioned input ring (the oracle)
    Damq,          ///< dynamically-shared pool, per-flow caps
    ZerocopyRemap, ///< static input + page-flip buffered delivery
};

const char *toString(NiBackendKind k);

/**
 * The buffered-path cost vector a backend charges: how a diverted
 * message gets into — and back out of — the virtual buffer. The
 * copying backends use the paper's Table 5 numbers; zerocopy_remap
 * substitutes remap costs.
 */
struct NiBufferedCosts
{
    Cycle insertBase = 0;   ///< buffer-insert handler, no page alloc
    Cycle newPageExtra = 0; ///< extra when a fresh page is needed
    Cycle drainBase = 0;    ///< execute null handler from the buffer
    Cycle perWordX2 = 0;    ///< per-word drain cost, in half-cycles
};

/**
 * One NI's input-queue storage and head-selection policy.
 *
 * Head selection is split three ways so the NetIf can keep the
 * hardware's register semantics for any policy:
 *  - userHead(): the message the *user* sees (message-available /
 *    input window / dispose) — null unless one matches the scheduled
 *    GID with divert off;
 *  - mismatchHead(): the message the *kernel's* mismatch path should
 *    service next — null unless one needs kernel attention;
 *  - oldest(): strict arrival order, for kernel-mode extraction when
 *    neither of the above applies.
 *
 * extractAt() removes a specific message previously returned by one
 * of the head functions; for the FIFO backends that is always the
 * front. All storage is preallocated in the constructor — accepting,
 * reading and extracting packets never allocates (the packet path's
 * zero-steady-state-allocation guarantee).
 */
class NiBufferBackend
{
  public:
    virtual ~NiBufferBackend() = default;

    virtual NiBackendKind kind() const = 0;

    /// @name Input side
    /// @{

    /** Would the queue accept @p pkt right now? */
    virtual bool canAccept(const net::Packet &pkt) const = 0;

    /**
     * Store @p pkt (canAccept must hold).
     * @return the stored copy (valid until the next mutation), so
     *         the caller can trace from the queue's own bytes.
     */
    virtual const net::Packet &accept(net::Packet &&pkt) = 0;

    virtual bool empty() const = 0;
    virtual std::size_t size() const = 0;

    /// @}
    /// @name Head selection
    /// @{

    /** Oldest stored message (null if empty). */
    virtual const net::Packet *oldest() const = 0;

    /** The user-visible head for @p gid (null if none matches). */
    virtual const net::Packet *userHead(Gid gid, bool divert) const = 0;

    /** The mismatch-path head for @p gid (null if none needs it). */
    virtual const net::Packet *mismatchHead(Gid gid,
                                            bool divert) const = 0;

    /** Remove and return @p p (a pointer from a head function). */
    virtual net::Packet extractAt(const net::Packet *p) = 0;

    /// @}
    /// @name Output-queue coupling
    /// @{

    /** Descriptor liveness changed (live = words described > 0). */
    virtual void onDescriptor(bool live) { (void)live; }

    /**
     * Does freeing the output descriptor free input space? When true
     * the NetIf re-pokes the network on descriptor death so refused
     * packets held at channel heads get re-offered.
     */
    virtual bool outputCoupled() const { return false; }

    /**
     * After canAccept refused @p refused: could a packet from a
     * *different* (src,gid) flow still get in right now? False for
     * queue-wide refusals (a full ring refuses everything, so there
     * is no point offering anything else); true only when the refusal
     * is flow-local — a DAMQ flow at its per-(src,GID) cap while the
     * shared pool has room. The network uses this to let victims'
     * arrivals bypass a hog's parked packet at the arrival-queue head
     * instead of wedging the whole destination behind it.
     */
    virtual bool
    acceptsOtherFlows(const net::Packet &refused) const
    {
        (void)refused;
        return false;
    }

    /// @}
    /// @name Cost hooks
    /// @{

    /** Extra fast-path stub-entry cost (e.g. DAMQ head select). */
    virtual Cycle fastExtra(const CostModel &c) const;

    /** The buffered-path cost vector this backend charges. */
    virtual NiBufferedCosts bufferedCosts(const CostModel &c) const;

    /** Per-record bookkeeping words a buffered message occupies. */
    virtual unsigned recordOverheadWords() const { return 2; }

    /// @}
};

/**
 * The statically partitioned hardware input ring: one FIFO of
 * config.inputQueueMsgs slots, strict arrival order. This is the
 * seed behavior, bit-exact, and the oracle for the other backends.
 */
class StaticFifoBackend : public NiBufferBackend
{
  public:
    explicit StaticFifoBackend(unsigned capacity_msgs);

    NiBackendKind kind() const override
    {
        return NiBackendKind::StaticFifo;
    }

    bool canAccept(const net::Packet &pkt) const override;
    const net::Packet &accept(net::Packet &&pkt) override;
    bool empty() const override { return count_ == 0; }
    std::size_t size() const override { return count_; }

    const net::Packet *oldest() const override;
    const net::Packet *userHead(Gid gid, bool divert) const override;
    const net::Packet *mismatchHead(Gid gid,
                                    bool divert) const override;
    net::Packet extractAt(const net::Packet *p) override;

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        return i >= slots_.size() ? i - slots_.size() : i;
    }

    std::vector<net::Packet> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/**
 * A dynamically-allocated multi-queue: every flow shares one slot
 * pool, each (source,GID) flow capped at flowMsgs slots so no tenant
 * can squat the whole SRAM, and a live output descriptor reserves one
 * slot of the same pool (shared input/output queue space). Heads are
 * selected associatively per GID, so the scheduled tenant's fast case
 * bypasses a descheduled tenant's arrivals parked at the front.
 */
class DamqBackend : public NiBufferBackend
{
  public:
    DamqBackend(unsigned pool_msgs, unsigned flow_msgs);

    NiBackendKind kind() const override { return NiBackendKind::Damq; }

    bool canAccept(const net::Packet &pkt) const override;
    const net::Packet &accept(net::Packet &&pkt) override;
    bool empty() const override { return slots_.empty(); }
    std::size_t size() const override { return slots_.size(); }

    const net::Packet *oldest() const override;
    const net::Packet *userHead(Gid gid, bool divert) const override;
    const net::Packet *mismatchHead(Gid gid,
                                    bool divert) const override;
    net::Packet extractAt(const net::Packet *p) override;

    void onDescriptor(bool live) override { descLive_ = live; }
    bool outputCoupled() const override { return true; }
    bool acceptsOtherFlows(const net::Packet &refused) const override;

    Cycle fastExtra(const CostModel &c) const override;

    /** Slots flow (src,gid) occupies right now (for tests). */
    unsigned flowCount(NodeId src, Gid gid) const;

  private:
    std::vector<net::Packet> slots_; ///< arrival order, front = oldest
    unsigned poolMsgs_;
    unsigned flowMsgs_;
    bool descLive_ = false;
};

/**
 * Static-FIFO input with page-flip buffered delivery: the kernel
 * donates the arrival page to the process's virtual buffer by VM
 * remap instead of copying words, so the insert is cheap, a fresh
 * "allocation" is one remap, the drain reads words that were never
 * copied, and records carry no header words.
 */
class ZerocopyRemapBackend : public StaticFifoBackend
{
  public:
    explicit ZerocopyRemapBackend(unsigned capacity_msgs)
        : StaticFifoBackend(capacity_msgs)
    {
    }

    NiBackendKind kind() const override
    {
        return NiBackendKind::ZerocopyRemap;
    }

    NiBufferedCosts bufferedCosts(const CostModel &c) const override;
    unsigned recordOverheadWords() const override { return 0; }
};

/** Build the backend NetIfConfig selects. */
std::unique_ptr<NiBufferBackend> makeNiBackend(const NetIfConfig &cfg);

} // namespace fugu::core

#endif // FUGU_CORE_NIBUF_HH
