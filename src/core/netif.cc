#include "core/netif.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/log.hh"

namespace fugu::core
{

void
bindConfig(sim::Binder &b, NetIfConfig &c)
{
    b.item("input_queue_msgs", c.inputQueueMsgs,
           "hardware input queue depth", "messages");
    b.item("atomicity_timeout", c.atomicityTimeout,
           "atomicity-timeout preset (a free parameter, Section 4.1)",
           "cycles");
    b.enumItem("backend", c.backend,
               {{"static_fifo", NiBackendKind::StaticFifo},
                {"damq", NiBackendKind::Damq},
                {"zerocopy_remap", NiBackendKind::ZerocopyRemap}},
               "NI input-queue buffering design (core/nibuf.hh)");
    b.item("damq_pool_msgs", c.damqPoolMsgs,
           "DAMQ shared slot pool (input + live output descriptor)",
           "messages");
    b.item("damq_flow_msgs", c.damqFlowMsgs,
           "DAMQ per-(source,GID) flow occupancy cap", "messages");
}

namespace
{
bool
niTraceOn()
{
    static const bool on = std::getenv("FUGU_NI_TRACE") != nullptr;
    return on;
}
} // namespace

unsigned
trapVector(NiTrap t)
{
    switch (t) {
      case NiTrap::Protection: return kTrapProtectionViolation;
      case NiTrap::BadDispose: return kTrapBadDispose;
      case NiTrap::DisposeFailure: return kTrapDisposeFailure;
      case NiTrap::AtomicityExtend: return kTrapAtomicityExtend;
      case NiTrap::DisposeExtend: return kTrapDisposeExtend;
      case NiTrap::None: break;
    }
    fugu_panic("no vector for NiTrap::None");
}

NetIf::Stats::Stats(StatGroup *parent, NodeId id)
    : group("ni" + std::to_string(id), parent),
      launches(&group, "launches", "messages launched"),
      received(&group, "received", "messages accepted from the network"),
      disposed(&group, "disposed", "messages disposed"),
      mismatchIrqs(&group, "mismatch_irqs",
                   "mismatch-available assertions"),
      messageIrqs(&group, "message_irqs",
                  "message-available assertions"),
      atomicityTimeouts(&group, "atomicity_timeouts",
                        "atomicity timer expirations"),
      fastLatency(&group, "fast_latency",
                  "inject-to-dispose latency, fast path (cycles)")
{
}

NetIf::NetIf(exec::Cpu &cpu, net::Network &network, NodeId id,
             NetIfConfig cfg, StatGroup *stat_parent)
    : stats(stat_parent, id), cpu_(cpu), network_(network), id_(id),
      cfg_(cfg), inb_(makeNiBackend(cfg_)), outBuf_{}
{
    fugu_assert(cfg_.inputQueueMsgs >= 1);
    network_.attach(id, this);
}

// ---------------------------------------------------------------------
// Network side
// ---------------------------------------------------------------------

bool
NetIf::tryDeliver(net::Packet &&pkt)
{
    // An injected input-full burst is indistinguishable from a real
    // full queue: the network keeps the packet at the channel head
    // and re-offers it when the burst expires.
    if (fault_ && fault_->inputDenied(id_))
        return false;
    if (!inb_->canAccept(pkt))
        return false;
    const net::Packet &stored = inb_->accept(std::move(pkt));
    ++stats.received;
    FUGU_TRACE(tracer_, id_, trace::Type::NetAccept,
               trace::userMsgId(stored.seq),
               trace::DivertReason::None,
               (static_cast<std::uint32_t>(stored.src) << 16) |
                   stored.size());
    if (niTraceOn())
        std::printf("[ni] n%u deliver h=%u src=%u q=%zu\n", id_,
                    stored.handler, stored.src, inb_->size());
    updateLines();
    return true;
}

bool
NetIf::refusalIsSelective(const net::Packet &pkt) const
{
    // Inside an injected input-full burst everything is refused
    // alike; only a backend flow-cap refusal is packet-specific.
    if (fault_ && fault_->inputBurstActive(id_))
        return false;
    return inb_->acceptsOtherFlows(pkt);
}

// ---------------------------------------------------------------------
// User-visible registers
// ---------------------------------------------------------------------

const net::Packet *
NetIf::visibleHead() const
{
    const net::Packet *u = inb_->userHead(gid_, divert_);
    return u ? u : inb_->oldest();
}

bool
NetIf::messageAvailable() const
{
    return inb_->userHead(gid_, divert_) != nullptr;
}

unsigned
NetIf::inputSize() const
{
    const net::Packet *h = visibleHead();
    return h ? h->size() : 0;
}

Word
NetIf::readInput(unsigned offset) const
{
    const net::Packet *h = visibleHead();
    fugu_assert(h, "input window read with no message");
    const net::Packet &p = *h;
    if (offset == 0)
        return makeHeader(p.src, p.gid == kKernelGid);
    if (offset == 1)
        return p.handler;
    fugu_assert(offset - 2 < p.payload.size(),
                "input window read past message end (offset ", offset,
                ")");
    return p.payload[offset - 2];
}

void
NetIf::setDescLen(unsigned n)
{
    const bool was_live = descLen_ > 0;
    descLen_ = n;
    const bool live = n > 0;
    if (live == was_live)
        return;
    inb_->onDescriptor(live);
    // Shared input/output space: the dying descriptor frees an input
    // slot, so packets refused for it (held at their channel heads)
    // must be re-offered now.
    if (!live && inb_->outputCoupled())
        network_.onSinkSpaceFreed(id_);
}

void
NetIf::writeOutput(unsigned offset, Word w)
{
    fugu_assert(offset < net::kMaxMessageWords,
                "output descriptor overflow (offset ", offset, ")");
    outBuf_[offset] = w;
    if (offset + 1 > descLen_)
        setDescLen(offset + 1);
}

bool
NetIf::spaceAvailable(NodeId dst, unsigned words) const
{
    if (fault_ && fault_->outputDenied(id_))
        return false;
    return network_.canAccept(id_, dst, words);
}

// ---------------------------------------------------------------------
// Operations (Table 1)
// ---------------------------------------------------------------------

NiTrap
NetIf::launch(unsigned n, bool user_mode)
{
    fugu_assert(n >= 2 && n <= net::kMaxMessageWords, "bad launch size ",
                n);
    if (user_mode && headerKernel(outBuf_[0]))
        return NiTrap::Protection;
    if (descLen_ == 0)
        return NiTrap::None; // Table 1: nothing described, no effect
    fugu_assert(n <= descLen_, "launch length ", n,
                " exceeds described ", descLen_);

    net::Packet pkt;
    pkt.src = id_;
    pkt.dst = headerNode(outBuf_[0]);
    // The hardware stamps the GID of the current application; kernel
    // launches are stamped with the kernel GID.
    pkt.gid = user_mode ? gid_ : kKernelGid;
    pkt.handler = outBuf_[1];
    pkt.payload.assign(outBuf_.begin() + 2, outBuf_.begin() + n);
    network_.send(std::move(pkt));

    setDescLen(0);
    ++stats.launches;
    return NiTrap::None;
}

NiTrap
NetIf::dispose(bool user_mode)
{
    if (user_mode && divert_)
        return NiTrap::DisposeExtend;
    if (!messageAvailable() && user_mode)
        return NiTrap::BadDispose;
    fugu_assert(!inb_->empty(), "dispose with empty input queue");
    const net::Packet *u = inb_->userHead(gid_, divert_);
    const net::Packet *h = u ? u : inb_->oldest();
    if (niTraceOn())
        std::printf("[ni] n%u dispose h=%u src=%u\n", id_, h->handler,
                    h->src);
    if (u) {
        // The fast (direct) path completes here: the message went
        // from the wire straight into the handler's dispose.
        if (watcher_)
            watcher_->onDeliver(*u, id_, gid_,
                                /*buffered_path=*/false);
        const Cycle lat = cpu_.now() - u->injectedAt;
        stats.fastLatency.sample(static_cast<double>(lat));
        FUGU_TRACE(tracer_, id_, trace::Type::DirectExtract,
                   trace::userMsgId(u->seq), trace::DivertReason::None,
                   trace::packExtractAux(u->gid, lat));
    }
    inb_->extractAt(h);
    ++stats.disposed;
    // Table 3: dispose resets dispose-pending and presets the timer.
    uac_ &= ~kUacDisposePending;
    network_.onSinkSpaceFreed(id_);
    updateLines(/*restart_timer=*/true);
    return NiTrap::None;
}

void
NetIf::beginAtom(unsigned mask)
{
    uac_ |= mask & kUacUserMask;
    updateLines();
}

NiTrap
NetIf::endAtom(unsigned mask)
{
    if (uac_ & kUacDisposePending)
        return NiTrap::DisposeFailure;
    if (uac_ & kUacAtomicityExtend)
        return NiTrap::AtomicityExtend;
    uac_ &= ~(mask & kUacUserMask);
    updateLines();
    return NiTrap::None;
}

// ---------------------------------------------------------------------
// Kernel registers and privileged operations
// ---------------------------------------------------------------------

void
NetIf::setGid(Gid gid)
{
    gid_ = gid;
    updateLines();
}

void
NetIf::setDivert(bool on)
{
    divert_ = on;
    updateLines();
}

void
NetIf::setAtomicityTimeout(Cycle preset)
{
    fugu_assert(preset > 0);
    cfg_.atomicityTimeout = preset;
}

void
NetIf::setKernelUac(unsigned set_mask, unsigned clear_mask)
{
    uac_ |= set_mask & kUacKernelMask;
    uac_ &= ~(clear_mask & kUacKernelMask);
    updateLines();
}

void
NetIf::writeUac(unsigned value)
{
    uac_ = value & (kUacUserMask | kUacKernelMask);
    updateLines();
}

bool
NetIf::mismatchPending() const
{
    return inb_->mismatchHead(gid_, divert_) != nullptr;
}

const net::Packet *
NetIf::head() const
{
    return visibleHead();
}

const net::Packet *
NetIf::mismatchHead() const
{
    return inb_->mismatchHead(gid_, divert_);
}

net::Packet
NetIf::kernelExtract()
{
    fugu_assert(!inb_->empty(), "kernelExtract with empty queue");
    const net::Packet *m = inb_->mismatchHead(gid_, divert_);
    net::Packet p = inb_->extractAt(m ? m : inb_->oldest());
    ++stats.disposed;
    network_.onSinkSpaceFreed(id_);
    updateLines(/*restart_timer=*/true);
    return p;
}

net::MsgVec
NetIf::saveOutput()
{
    net::MsgVec saved;
    saved.assign(outBuf_.begin(), outBuf_.begin() + descLen_);
    setDescLen(0);
    return saved;
}

void
NetIf::restoreOutput(const net::MsgVec &saved)
{
    fugu_assert(descLen_ == 0, "restoreOutput over a live descriptor");
    std::copy(saved.begin(), saved.end(), outBuf_.begin());
    setDescLen(saved.size());
}

void
NetIf::subscribeSpace(NodeId dst, net::SpaceWaiter *waiter)
{
    network_.subscribeSpace(id_, dst, waiter);
}

void
NetIf::injectAtomicityTimeout()
{
    // Only a timer that is genuinely armed may fire early; otherwise
    // the injection would manufacture a timeout the hardware could
    // never produce (e.g. with no message pending).
    if (!timerRunning_)
        return;
    cpu_.cancelUserTimer();
    timerRunning_ = false;
    ++stats.atomicityTimeouts;
    FUGU_TRACE(tracer_, id_, trace::Type::AtomTimeout);
    cpu_.raiseIrq(kIrqAtomicityTimeout);
}

// ---------------------------------------------------------------------
// Interrupt line / timer recomputation
// ---------------------------------------------------------------------

void
NetIf::raiseLine(unsigned line, bool want)
{
    if (want == linesRaised_[line])
        return;
    linesRaised_[line] = want;
    if (want)
        cpu_.raiseIrq(line);
    else
        cpu_.lowerIrq(line);
}

void
NetIf::updateLines(bool restart_timer)
{
    const bool pending_user = messageAvailable();
    const bool mismatch = mismatchPending();
    const bool msg_irq = pending_user && !(uac_ & kUacInterruptDisable);

    if (msg_irq && !linesRaised_[kIrqMessageAvailable])
        ++stats.messageIrqs;
    if (mismatch && !linesRaised_[kIrqMismatchAvailable])
        ++stats.mismatchIrqs;

    raiseLine(kIrqMismatchAvailable, mismatch);
    raiseLine(kIrqMessageAvailable, msg_irq);

    // Table 3 timer enable: timer-force, or interrupts disabled while
    // a message for this application is pending.
    const bool timer_en = (uac_ & kUacTimerForce) ||
                          ((uac_ & kUacInterruptDisable) && pending_user);
    if (!timer_en) {
        if (timerRunning_) {
            cpu_.cancelUserTimer();
            timerRunning_ = false;
        }
        return;
    }
    if (!timerRunning_ || restart_timer) {
        timerRunning_ = true;
        cpu_.setUserTimer(cfg_.atomicityTimeout, [this] {
            timerRunning_ = false;
            ++stats.atomicityTimeouts;
            FUGU_TRACE(tracer_, id_, trace::Type::AtomTimeout);
            cpu_.raiseIrq(kIrqAtomicityTimeout);
        });
    }
}

} // namespace fugu::core
