#include "core/costs.hh"

#include "sim/config.hh"

namespace fugu::core
{

void
bindConfig(sim::Binder &b, CostModel &c)
{
    // Send (Table 4).
    b.item("descriptor_construction", c.descriptorConstruction,
           "null-message descriptor construction", "cycles");
    b.item("per_send_arg_word", c.perSendArgWord,
           "send-side cost per payload word", "cycles");
    b.item("launch", c.launch, "launch operation", "cycles");

    // Receive, interrupt path (Table 4).
    b.item("interrupt_overhead", c.interruptOverhead,
           "interrupt entry overhead", "cycles");
    b.item("register_save", c.registerSave, "register save", "cycles");
    b.item("gid_check", c.gidCheck, "GID check (protected modes only)",
           "cycles");
    b.item("timer_setup_hard", c.timerSetupHard,
           "atomicity-timer setup, hardware atomicity", "cycles");
    b.item("timer_setup_soft", c.timerSetupSoft,
           "atomicity-timer setup, software atomicity", "cycles");
    b.item("virtual_buffering_overhead", c.virtualBufferingOverhead,
           "virtual-buffering bookkeeping on receive", "cycles");
    b.item("dispatch_kernel", c.dispatchKernel, "kernel-mode dispatch",
           "cycles");
    b.item("dispatch_upcall", c.dispatchUpcall,
           "dispatch + upcall to user", "cycles");
    b.item("null_handler", c.nullHandler, "null handler incl. dispose",
           "cycles");
    b.item("per_receive_arg_word", c.perReceiveArgWord,
           "fast-path receive cost per payload word", "cycles");
    b.item("upcall_cleanup", c.upcallCleanup, "upcall cleanup",
           "cycles");
    b.item("timer_cleanup_hard", c.timerCleanupHard,
           "atomicity-timer cleanup, hardware atomicity", "cycles");
    b.item("timer_cleanup_soft", c.timerCleanupSoft,
           "atomicity-timer cleanup, software atomicity", "cycles");
    b.item("register_restore", c.registerRestore, "register restore",
           "cycles");

    // Receive, polling path (Table 4).
    b.item("poll", c.poll, "one poll of the message-available flag",
           "cycles");
    b.item("poll_dispatch", c.pollDispatch, "polling-path dispatch",
           "cycles");
    b.item("poll_null_handler", c.pollNullHandler,
           "polling-path null handler incl. dispose", "cycles");

    // Buffered path (Table 5 / Figure 10).
    b.item("buffer_insert_min", c.bufferInsertMin,
           "buffer-insert handler, no page allocation", "cycles");
    b.item("vmalloc_extra", c.vmallocExtra,
           "extra insert cost when a fresh page is allocated",
           "cycles");
    b.item("buffer_null_handler", c.bufferNullHandler,
           "execute null handler from the software buffer", "cycles");
    b.item("per_buffer_word_x2", c.perBufferWordX2,
           "per-word extraction cost, doubled to keep integers",
           "half-cycles");
    b.item("buffered_path_extra", c.bufferedPathExtra,
           "Figure 10 knob: artificial latency added to the buffered "
           "path",
           "cycles");

    // NI-buffering backend charges (ni.backend ablations).
    b.item("damq_select", c.damqSelect,
           "DAMQ associative head select, per fast-path stub entry",
           "cycles");
    b.item("zerocopy_insert_min", c.zerocopyInsertMin,
           "zerocopy buffer insert (page flip), page resident",
           "cycles");
    b.item("vm_remap", c.vmRemap,
           "remap the arrival page into the buffer region",
           "cycles");
    b.item("zerocopy_per_word_x2", c.zerocopyPerWordX2,
           "per-word drain cost from a flipped page, doubled to keep "
           "integers",
           "half-cycles");

    // Operating system costs (not from the paper's tables).
    b.item("process_switch", c.processSwitch,
           "gang-scheduler process switch", "cycles");
    b.item("page_zero_fill", c.pageZeroFill,
           "demand-zero page fault service", "cycles");
    b.item("mode_transition", c.modeTransition,
           "fast<->buffered mode bookkeeping", "cycles");
    b.item("thread_switch", c.threadSwitch, "user-level thread switch",
           "cycles");
    b.item("page_out_latency", c.pageOutLatency,
           "swap a buffer page to backing store", "cycles");
    b.item("page_in_latency", c.pageInLatency,
           "bring a swapped page back", "cycles");
}

} // namespace fugu::core
