/**
 * @file
 * NetIf: the FUGU network interface hardware model.
 *
 * Implements the ISA-visible semantics of Section 4.1: the
 * memory-mapped register set of Figure 3, the atomic operations of
 * Table 1 (launch, dispose, beginatom, endatom), the interrupts and
 * traps of Table 2, and the UAC flag semantics of Table 3 including
 * the revocable-interrupt-disable atomicity timer and divert-mode.
 *
 * Operations that would trap return the trap vector to the calling
 * software wrapper (the UDM runtime), which takes the trap on its Cpu;
 * this keeps the hardware model free of control-flow concerns.
 *
 * One deviation from the hardware, documented in DESIGN.md: FUGU
 * blocks *stores* into the output descriptor when the network cannot
 * accept the implied message; we expose the same back-pressure through
 * spaceAvailable()/subscribeSpace() and let the inject wrapper block
 * before launch. The observable inject semantics (blocking, atomic
 * commit) are identical.
 */

#ifndef FUGU_CORE_NETIF_HH
#define FUGU_CORE_NETIF_HH

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "core/arch.hh"
#include "core/nibuf.hh"
#include "exec/cpu.hh"
#include "net/network.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace fugu::sim
{
class Binder;
class FaultInjector;
}

namespace fugu::core
{

/** Trap request returned by an NI operation (None = success). */
enum class NiTrap
{
    None,
    Protection,
    BadDispose,
    DisposeFailure,
    AtomicityExtend,
    DisposeExtend,
};

/** Map an NiTrap to its Cpu trap vector. */
unsigned trapVector(NiTrap t);

struct NetIfConfig
{
    /** Hardware input queue depth, in messages. */
    unsigned inputQueueMsgs = 4;

    /** Atomicity-timeout preset, in user cycles (a free parameter). */
    Cycle atomicityTimeout = 4000;

    /** Input-queue buffering design (see core/nibuf.hh). */
    NiBackendKind backend = NiBackendKind::StaticFifo;

    /** DAMQ: shared slot pool size (input + live output descriptor). */
    unsigned damqPoolMsgs = 16;

    /** DAMQ: max slots one (source,GID) flow may occupy. */
    unsigned damqFlowMsgs = 12;
};

/** Register NetIfConfig's fields on the scenario/config tree. */
void bindConfig(sim::Binder &b, NetIfConfig &c);

class NetIf : public net::NetSink
{
  public:
    NetIf(exec::Cpu &cpu, net::Network &network, NodeId id,
          NetIfConfig cfg, StatGroup *stat_parent);

    NetIf(const NetIf &) = delete;
    NetIf &operator=(const NetIf &) = delete;

    NodeId id() const { return id_; }
    const NetIfConfig &config() const { return cfg_; }

    /// @name NetSink (called by the network fabric)
    /// @{
    bool tryDeliver(net::Packet &&pkt) override;
    bool refusalIsSelective(const net::Packet &pkt) const override;
    /// @}

    /// @name User-visible registers (Figure 3)
    /// @{

    /** The message-available flag: matching message at the head. */
    bool messageAvailable() const;

    /** Current UAC register value. */
    unsigned uac() const { return uac_; }

    /** Words of the pending input message (0 if none). */
    unsigned inputSize() const;

    /**
     * Read word @p offset of the input window: word 0 is the header
     * (source node), word 1 the handler address, 2.. the payload.
     */
    Word readInput(unsigned offset) const;

    /** Write word @p offset of the output descriptor buffer. */
    void writeOutput(unsigned offset, Word w);

    /** Words currently described in the output buffer. */
    unsigned descriptorLength() const { return descLen_; }

    /**
     * The space-available register: can a @p words message to
     * @p dst be committed right now?
     */
    bool spaceAvailable(NodeId dst, unsigned words) const;

    /// @}
    /// @name Operations (Table 1)
    /// @{

    /**
     * Commit the described message to the network. @p user_mode
     * launches of kernel-tagged headers trap.
     */
    NiTrap launch(unsigned n, bool user_mode);

    /** Delete the current incoming message (Table 1 semantics). */
    NiTrap dispose(bool user_mode);

    /** UAC |= mask (user bits only). */
    void beginAtom(unsigned mask);

    /** Check kernel exit hooks, then UAC &= ~mask (Table 1). */
    NiTrap endAtom(unsigned mask);

    /// @}
    /// @name Kernel registers and privileged operations
    /// @{

    void setGid(Gid gid);
    Gid gid() const { return gid_; }

    void setDivert(bool on);
    bool divert() const { return divert_; }

    void setAtomicityTimeout(Cycle preset);
    Cycle atomicityTimeout() const { return cfg_.atomicityTimeout; }

    /** Set/clear the kernel UAC bits (dispose-pending etc.). */
    void setKernelUac(unsigned set_mask, unsigned clear_mask);

    /** Replace the whole UAC (process context switch restore). */
    void writeUac(unsigned value);

    /** Is the mismatch-available condition asserted? */
    bool mismatchPending() const;

    /** Kernel peek at the head message (null if none). */
    const net::Packet *head() const;

    /**
     * The message the kernel's mismatch path should service next
     * (null if none). For the static FIFO this is the front whenever
     * mismatchPending(); a DAMQ selects the oldest message needing
     * kernel attention even behind scheduled-GID traffic.
     */
    const net::Packet *mismatchHead() const;

    /**
     * Dequeue without user-mode checks: the mismatch head if one
     * needs service, else the oldest message.
     */
    net::Packet kernelExtract();

    /** The active input-buffering backend (cost/policy queries). */
    const NiBufferBackend &backend() const { return *inb_; }

    /** Save/restore the output descriptor across a context switch. */
    net::MsgVec saveOutput();
    void restoreOutput(const net::MsgVec &saved);

    /** One-shot waiter for when channel (id, dst) has room again. */
    void subscribeSpace(NodeId dst, net::SpaceWaiter *waiter);

    /** Attach a message-lifecycle trace recorder (null to disable). */
    void setTracer(trace::Recorder *tracer) { tracer_ = tracer; }

    /**
     * Attach a fault injector: input-queue-full bursts (tryDeliver
     * refuses arrivals) and output-full bursts (spaceAvailable reads
     * false). All send paths poll spaceAvailable, so an output burst
     * stalls but can never deadlock a sender.
     */
    void setFault(sim::FaultInjector *fault) { fault_ = fault; }

    /** Attach a packet-lifecycle watcher (the invariant checker). */
    void setWatcher(net::PacketWatcher *watcher) { watcher_ = watcher; }

    /**
     * Fault hook: fire the atomicity timer right now, as if the
     * user's interrupt-disable grace period had just expired. No-op
     * unless the timer is actually armed — the forced expiry must be
     * a timing change, never a semantic one.
     */
    void injectAtomicityTimeout();

    /// @}

    struct Stats
    {
        Stats(StatGroup *parent, NodeId id);
        StatGroup group;
        Scalar launches;
        Scalar received;
        Scalar disposed;
        Scalar mismatchIrqs;
        Scalar messageIrqs;
        Scalar atomicityTimeouts;
        Histogram fastLatency;
    };

    Stats stats;

  private:
    /**
     * The head the registers expose: the user-visible head when one
     * matches, else the oldest message (kernel-mode access order).
     * For the static FIFO both are the front.
     */
    const net::Packet *visibleHead() const;

    /**
     * Commit a descriptor-length change to the backend. Backends with
     * shared input/output space (DAMQ) free an input slot when the
     * descriptor dies, so the network is re-poked to re-offer any
     * packet refused for that slot.
     */
    void setDescLen(unsigned n);

    /** Recompute interrupt lines and timer enable after any change. */
    void updateLines(bool restart_timer = false);

    void raiseLine(unsigned line, bool want);

    exec::Cpu &cpu_;
    net::Network &network_;
    NodeId id_;
    NetIfConfig cfg_;

    std::unique_ptr<NiBufferBackend> inb_;
    std::array<Word, net::kMaxMessageWords> outBuf_;
    unsigned descLen_ = 0;

    unsigned uac_ = 0;
    Gid gid_ = kKernelGid;
    bool divert_ = false;

    bool timerRunning_ = false;
    bool linesRaised_[exec::kNumIrqLines] = {};
    trace::Recorder *tracer_ = nullptr;
    sim::FaultInjector *fault_ = nullptr;
    net::PacketWatcher *watcher_ = nullptr;
};

} // namespace fugu::core

#endif // FUGU_CORE_NETIF_HH
