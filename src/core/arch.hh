/**
 * @file
 * Architectural constants shared by the NI hardware model (core) and
 * the operating system (glaze): interrupt line assignments, trap
 * vectors, UAC register bits, and message header encoding.
 */

#ifndef FUGU_CORE_ARCH_HH
#define FUGU_CORE_ARCH_HH

#include "sim/types.hh"

namespace fugu::core
{

/**
 * Interrupt line assignment (smaller number = higher priority).
 * All hardware interrupts vector into the kernel; message-available
 * is converted into a user-level upcall by the OS stub (Section 4.1).
 */
enum IrqLine : unsigned
{
    kIrqMismatchAvailable = 0, ///< GID mismatch / any msg in divert mode
    kIrqAtomicityTimeout = 1,  ///< atomic section timer expired
    kIrqMessageAvailable = 2,  ///< matching user message at the head
    kIrqOsNet = 3,             ///< second (OS) network arrival
    kIrqSched = 4,             ///< scheduler quantum tick
};

/** Trap vectors (Table 2 traps + page fault). */
enum TrapVec : unsigned
{
    kTrapProtectionViolation = 0,
    kTrapBadDispose = 1,
    kTrapDisposeFailure = 2,
    kTrapAtomicityExtend = 3,
    kTrapDisposeExtend = 4,
    kTrapPageFault = 5,
};

/**
 * User Atomicity Control register bits (Table 3). The two low bits
 * are user-writable via beginatom/endatom; the two high bits are
 * kernel-only.
 */
enum UacBits : unsigned
{
    kUacInterruptDisable = 1u << 0,
    kUacTimerForce = 1u << 1,
    kUacDisposePending = 1u << 2,  // kernel
    kUacAtomicityExtend = 1u << 3, // kernel

    kUacUserMask = kUacInterruptDisable | kUacTimerForce,
    kUacKernelMask = kUacDisposePending | kUacAtomicityExtend,
};

/**
 * Routing-header word layout. On the send side word 0 names the
 * destination; bit 16 marks an operating-system (kernel) message,
 * which user code may not launch (protection-violation). On the
 * receive side word 0 carries the source node the same way.
 */
inline constexpr Word kHeaderKernelBit = 1u << 16;

inline Word
makeHeader(NodeId node, bool kernel = false)
{
    return static_cast<Word>(node) | (kernel ? kHeaderKernelBit : 0);
}

inline NodeId
headerNode(Word header)
{
    return static_cast<NodeId>(header & 0xffff);
}

inline bool
headerKernel(Word header)
{
    return header & kHeaderKernelBit;
}

} // namespace fugu::core

#endif // FUGU_CORE_ARCH_HH
