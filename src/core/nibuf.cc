#include "core/nibuf.hh"

#include "core/costs.hh"
#include "core/netif.hh"
#include "sim/log.hh"

namespace fugu::core
{

const char *
toString(NiBackendKind k)
{
    switch (k) {
      case NiBackendKind::StaticFifo: return "static_fifo";
      case NiBackendKind::Damq: return "damq";
      case NiBackendKind::ZerocopyRemap: return "zerocopy_remap";
    }
    return "?";
}

Cycle
NiBufferBackend::fastExtra(const CostModel &c) const
{
    (void)c;
    return 0;
}

NiBufferedCosts
NiBufferBackend::bufferedCosts(const CostModel &c) const
{
    // The copying insert of the paper's Table 5.
    return {c.bufferInsertMin, c.vmallocExtra, c.bufferNullHandler,
            c.perBufferWordX2};
}

// ---------------------------------------------------------------------
// StaticFifoBackend
// ---------------------------------------------------------------------

StaticFifoBackend::StaticFifoBackend(unsigned capacity_msgs)
    : slots_(capacity_msgs)
{
    fugu_assert(capacity_msgs >= 1);
}

bool
StaticFifoBackend::canAccept(const net::Packet &pkt) const
{
    (void)pkt;
    return count_ < slots_.size();
}

const net::Packet &
StaticFifoBackend::accept(net::Packet &&pkt)
{
    fugu_assert(count_ < slots_.size(), "accept into a full ring");
    net::Packet &slot = slots_[wrap(head_ + count_)];
    slot = std::move(pkt);
    ++count_;
    return slot;
}

const net::Packet *
StaticFifoBackend::oldest() const
{
    return count_ ? &slots_[head_] : nullptr;
}

const net::Packet *
StaticFifoBackend::userHead(Gid gid, bool divert) const
{
    // The hardware compares the front message's GID only: a matching
    // message behind a foreign one stays invisible (that is the whole
    // weakness DAMQ addresses).
    if (count_ == 0 || divert)
        return nullptr;
    const net::Packet &f = slots_[head_];
    return f.gid == gid ? &f : nullptr;
}

const net::Packet *
StaticFifoBackend::mismatchHead(Gid gid, bool divert) const
{
    if (count_ == 0)
        return nullptr;
    const net::Packet &f = slots_[head_];
    return (divert || f.gid != gid) ? &f : nullptr;
}

net::Packet
StaticFifoBackend::extractAt(const net::Packet *p)
{
    fugu_assert(count_ > 0, "extract from an empty ring");
    fugu_assert(p == &slots_[head_],
                "static FIFO can only extract the front");
    net::Packet out = std::move(slots_[head_]);
    head_ = wrap(head_ + 1);
    --count_;
    return out;
}

// ---------------------------------------------------------------------
// DamqBackend
// ---------------------------------------------------------------------

DamqBackend::DamqBackend(unsigned pool_msgs, unsigned flow_msgs)
    : poolMsgs_(pool_msgs), flowMsgs_(flow_msgs)
{
    fugu_assert(pool_msgs >= 2,
                "DAMQ pool must hold at least two messages (one can "
                "be reserved by a live output descriptor)");
    fugu_assert(flow_msgs >= 1 && flow_msgs <= pool_msgs);
    slots_.reserve(pool_msgs);
}

unsigned
DamqBackend::flowCount(NodeId src, Gid gid) const
{
    unsigned n = 0;
    for (const net::Packet &p : slots_)
        if (p.src == src && p.gid == gid)
            ++n;
    return n;
}

bool
DamqBackend::canAccept(const net::Packet &pkt) const
{
    // Shared input/output SRAM: a live output descriptor holds one
    // slot of the pool, and the per-flow cap stops any one
    // (source,GID) stream from squatting the rest.
    const std::size_t reserved = descLive_ ? 1 : 0;
    if (slots_.size() + reserved >= poolMsgs_)
        return false;
    return flowCount(pkt.src, pkt.gid) < flowMsgs_;
}

bool
DamqBackend::acceptsOtherFlows(const net::Packet &refused) const
{
    (void)refused;
    // If the shared pool itself is exhausted the refusal is global;
    // only a per-flow-cap refusal leaves room for other tenants.
    const std::size_t reserved = descLive_ ? 1 : 0;
    return slots_.size() + reserved < poolMsgs_;
}

const net::Packet &
DamqBackend::accept(net::Packet &&pkt)
{
    fugu_assert(slots_.size() < poolMsgs_, "accept into a full pool");
    slots_.push_back(std::move(pkt)); // within reserve(): no alloc
    return slots_.back();
}

const net::Packet *
DamqBackend::oldest() const
{
    return slots_.empty() ? nullptr : &slots_.front();
}

const net::Packet *
DamqBackend::userHead(Gid gid, bool divert) const
{
    if (divert)
        return nullptr;
    // Associative select: the oldest message of the scheduled GID,
    // wherever it sits in the pool.
    for (const net::Packet &p : slots_)
        if (p.gid == gid)
            return &p;
    return nullptr;
}

const net::Packet *
DamqBackend::mismatchHead(Gid gid, bool divert) const
{
    for (const net::Packet &p : slots_)
        if (divert || p.gid != gid)
            return &p;
    return nullptr;
}

net::Packet
DamqBackend::extractAt(const net::Packet *p)
{
    fugu_assert(!slots_.empty(), "extract from an empty pool");
    const std::size_t idx =
        static_cast<std::size_t>(p - slots_.data());
    fugu_assert(idx < slots_.size(), "extract of a foreign pointer");
    net::Packet out = std::move(slots_[idx]);
    // Keep arrival order with a shift; the pool is a handful of
    // messages, so this is cheaper (and allocation-free) vs. any
    // linked structure.
    slots_.erase(slots_.begin() +
                 static_cast<std::ptrdiff_t>(idx));
    return out;
}

Cycle
DamqBackend::fastExtra(const CostModel &c) const
{
    return c.damqSelect;
}

// ---------------------------------------------------------------------
// ZerocopyRemapBackend
// ---------------------------------------------------------------------

NiBufferedCosts
ZerocopyRemapBackend::bufferedCosts(const CostModel &c) const
{
    // Page flip instead of copy: map the arrival page into the
    // process's buffer region (remap charge), touch no words on
    // insert, and drain straight from the flipped page.
    return {c.zerocopyInsertMin, c.vmRemap, c.bufferNullHandler,
            c.zerocopyPerWordX2};
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

std::unique_ptr<NiBufferBackend>
makeNiBackend(const NetIfConfig &cfg)
{
    switch (cfg.backend) {
      case NiBackendKind::StaticFifo:
        return std::make_unique<StaticFifoBackend>(cfg.inputQueueMsgs);
      case NiBackendKind::Damq:
        return std::make_unique<DamqBackend>(cfg.damqPoolMsgs,
                                             cfg.damqFlowMsgs);
      case NiBackendKind::ZerocopyRemap:
        return std::make_unique<ZerocopyRemapBackend>(
            cfg.inputQueueMsgs);
    }
    fugu_panic("unknown ni.backend");
}

} // namespace fugu::core
