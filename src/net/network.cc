#include "net/network.hh"

#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/log.hh"

namespace fugu::net
{

void
bindConfig(sim::Binder &b, NetworkConfig &c)
{
    b.item("mesh_x", c.meshX, "mesh width (0 = size from node count)",
           "nodes");
    b.item("mesh_y", c.meshY, "mesh height (0 = size from node count)",
           "nodes");
    b.item("latency_base", c.latencyBase, "fixed overhead per message",
           "cycles");
    b.item("per_hop", c.perHop, "router/wire latency per mesh hop",
           "cycles");
    b.item("per_word", c.perWord, "serialization cost per word",
           "cycles");
    b.item("channel_capacity_words", c.channelCapacityWords,
           "max words in flight per (src,dst) channel", "words");
}

Network::Stats::Stats(StatGroup *parent, const std::string &name)
    : group(name, parent),
      messages(&group, "messages", "messages delivered"),
      words(&group, "words", "words delivered"),
      deliveryLatency(&group, "latency",
                      "inject-to-sink-accept latency (cycles)"),
      headOfLineBlocks(&group, "hol_blocks",
                       "arrivals stalled by a full input queue")
{
}

Network::Network(EventQueue &eq, NetworkConfig cfg, std::string name,
                 StatGroup *stat_parent)
    : stats(stat_parent, name), eq_(eq), cfg_(cfg),
      name_(std::move(name)), arriveName_(name_ + "-arrive")
{
    fugu_assert(cfg_.meshX > 0 && cfg_.meshY > 0, "empty mesh");
    // key() packs node ids into 16 bits per endpoint; a mesh whose
    // addresses exceed NodeId would alias channels (and kNoNode must
    // stay out of the address space). Fail loudly instead.
    fugu_assert(static_cast<std::uint64_t>(cfg_.meshX) * cfg_.meshY <=
                    kNoNode,
                "mesh ", cfg_.meshX, "x", cfg_.meshY,
                " exceeds the NodeId address space");
    fugu_assert(cfg_.channelCapacityWords >= kMaxMessageWords,
                "channel must hold at least one max-size message");
}

void
Network::attach(NodeId id, NetSink *sink)
{
    fugu_assert(id < cfg_.meshX * cfg_.meshY, "node ", id,
                " outside the ", cfg_.meshX, "x", cfg_.meshY, " mesh");
    if (sinks_.size() <= id) {
        sinks_.resize(id + 1, nullptr);
        arrived_.resize(id + 1);
    }
    fugu_assert(!sinks_[id], "node ", id, " attached twice");
    sinks_[id] = sink;
}

unsigned
Network::hops(NodeId a, NodeId b) const
{
    const unsigned ax = a % cfg_.meshX, ay = a / cfg_.meshX;
    const unsigned bx = b % cfg_.meshX, by = b / cfg_.meshX;
    const unsigned dx = ax > bx ? ax - bx : bx - ax;
    const unsigned dy = ay > by ? ay - by : by - ay;
    return dx + dy;
}

Cycle
Network::latency(NodeId src, NodeId dst, unsigned words) const
{
    return cfg_.latencyBase + cfg_.perHop * hops(src, dst) +
           cfg_.perWord * words;
}

bool
Network::canAccept(NodeId src, NodeId dst, unsigned words) const
{
    auto it = channels_.find(key(src, dst));
    unsigned in_flight = it == channels_.end() ? 0 : it->second.wordsInFlight;
    return in_flight + words <= cfg_.channelCapacityWords;
}

void
Network::send(Packet pkt)
{
    const unsigned words = pkt.size();
    fugu_assert(words <= kMaxMessageWords, "oversized message (", words,
                " words)");
    fugu_assert(pkt.dst < sinks_.size() && sinks_[pkt.dst],
                "send to unattached node ", pkt.dst);
    fugu_assert(canAccept(pkt.src, pkt.dst, words),
                "send without canAccept");

    Channel &ch = channels_[key(pkt.src, pkt.dst)];
    ch.wordsInFlight += words;

    Cycle ready = eq_.now() + latency(pkt.src, pkt.dst, words);
    // Injected jitter lands before the FIFO clamp below so it can
    // never reorder messages within a channel — pairwise FIFO is a
    // property of the fabric, not of benign timing.
    if (fault_)
        ready += fault_->packetJitter();
    // Per-channel FIFO with serialization: a message cannot arrive
    // before an earlier one on the same channel has been received.
    ready = std::max(ready, ch.lastArrival + cfg_.perWord * words);
    ch.lastArrival = ready;

    pkt.injectedAt = eq_.now();
    pkt.seq = nextSeq_++;
    if (watcher_)
        watcher_->onInject(pkt);
    FUGU_TRACE(tracer_, pkt.src, trace::Type::Inject,
               osNet_ ? trace::osMsgId(pkt.seq)
                      : trace::userMsgId(pkt.seq),
               trace::DivertReason::None,
               (static_cast<std::uint32_t>(pkt.dst) << 16) | words);
    NodeId dst = pkt.dst;
    eq_.scheduleFn(
        [this, dst, p = std::move(pkt)]() mutable {
            arrived_[dst].push_back(std::move(p));
            drain(dst);
        },
        ready, arriveName_.c_str());
}

void
Network::drain(NodeId dst)
{
    auto &q = arrived_[dst];
    while (!q.empty()) {
        Packet &head = q.front();
        const unsigned words = head.size();
        const NodeId src = head.src;
        const Cycle injected = head.injectedAt;
        if (!sinks_[dst]->tryDeliver(std::move(head))) {
            ++stats.headOfLineBlocks;
            return; // retried via onSinkSpaceFreed
        }
        q.pop_front();
        ++stats.messages;
        stats.words += words;
        stats.deliveryLatency.sample(
            static_cast<double>(eq_.now() - injected));
        auto it = channels_.find(key(src, dst));
        fugu_assert(it != channels_.end());
        releaseChannel(it->second, words);
    }
}

void
Network::onSinkSpaceFreed(NodeId dst)
{
    fugu_assert(dst < arrived_.size());
    drain(dst);
}

void
Network::releaseChannel(Channel &ch, unsigned words)
{
    fugu_assert(ch.wordsInFlight >= words);
    ch.wordsInFlight -= words;
    if (!ch.spaceWaiters.empty()) {
        auto waiters = std::move(ch.spaceWaiters);
        ch.spaceWaiters.clear();
        for (auto &cb : waiters)
            cb();
    }
}

void
Network::subscribeSpace(NodeId src, NodeId dst, std::function<void()> cb)
{
    channels_[key(src, dst)].spaceWaiters.push_back(std::move(cb));
}

} // namespace fugu::net
