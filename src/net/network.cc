#include "net/network.hh"

#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/log.hh"

namespace fugu::net
{

void
bindConfig(sim::Binder &b, NetworkConfig &c)
{
    b.item("mesh_x", c.meshX, "mesh width (0 = size from node count)",
           "nodes");
    b.item("mesh_y", c.meshY, "mesh height (0 = size from node count)",
           "nodes");
    b.item("latency_base", c.latencyBase, "fixed overhead per message",
           "cycles");
    b.item("per_hop", c.perHop, "router/wire latency per mesh hop",
           "cycles");
    b.item("per_word", c.perWord, "serialization cost per word",
           "cycles");
    b.item("channel_capacity_words", c.channelCapacityWords,
           "max words in flight per (src,dst) channel", "words");
}

Network::Stats::Stats(StatGroup *parent, const std::string &name)
    : group(name, parent),
      messages(&group, "messages", "messages delivered"),
      words(&group, "words", "words delivered"),
      deliveryLatency(&group, "latency",
                      "inject-to-sink-accept latency (cycles)"),
      headOfLineBlocks(&group, "hol_blocks",
                       "arrivals stalled by a full input queue"),
      headOfLineBypasses(&group, "hol_bypasses",
                         "arrivals delivered past a flow-blocked head")
{
}

Network::Network(EventQueue &eq, NetworkConfig cfg, std::string name,
                 StatGroup *stat_parent)
    : stats(stat_parent, name), eq_(eq), cfg_(cfg),
      name_(std::move(name)), arriveName_(name_ + "-arrive"),
      chans_(1), laneSeq_(1, 0), outbox_(1), releases_(1),
      weaveCount_(1, 0), scratch_(1), bypassScratch_(1),
      laneEq_{&eq_}, laneTracer_(1, nullptr), laneFault_(1, nullptr)
{
    fugu_assert(cfg_.meshX > 0 && cfg_.meshY > 0, "empty mesh");
    // key() packs node ids into 16 bits per endpoint; a mesh whose
    // addresses exceed NodeId would alias channels (and kNoNode must
    // stay out of the address space). Fail loudly instead.
    fugu_assert(static_cast<std::uint64_t>(cfg_.meshX) * cfg_.meshY <=
                    kNoNode,
                "mesh ", cfg_.meshX, "x", cfg_.meshY,
                " exceeds the NodeId address space");
    fugu_assert(cfg_.channelCapacityWords >= kMaxMessageWords,
                "channel must hold at least one max-size message");
}

void
Network::attach(NodeId id, NetSink *sink)
{
    fugu_assert(id < cfg_.meshX * cfg_.meshY, "node ", id,
                " outside the ", cfg_.meshX, "x", cfg_.meshY, " mesh");
    if (sinks_.size() <= id) {
        sinks_.resize(id + 1, nullptr);
        arrived_.resize(id + 1);
    }
    fugu_assert(!sinks_[id], "node ", id, " attached twice");
    sinks_[id] = sink;
}

unsigned
Network::hops(NodeId a, NodeId b) const
{
    const unsigned ax = a % cfg_.meshX, ay = a / cfg_.meshX;
    const unsigned bx = b % cfg_.meshX, by = b / cfg_.meshX;
    const unsigned dx = ax > bx ? ax - bx : bx - ax;
    const unsigned dy = ay > by ? ay - by : by - ay;
    return dx + dy;
}

Cycle
Network::latency(NodeId src, NodeId dst, unsigned words) const
{
    return cfg_.latencyBase + cfg_.perHop * hops(src, dst) +
           cfg_.perWord * words;
}

Network::Channel &
Network::ChannelMap::getOrCreate(ChannelKey k)
{
    // Grow at ~70% load so probe chains stay short.
    if (slots_.empty() || (size_ + 1) * 10 >= slots_.size() * 7)
        grow();
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(k);; ++i) {
        Slot &s = slots_[i & mask];
        if (!s.used) {
            s.used = true;
            s.key = k;
            ++size_;
            return s.ch;
        }
        if (s.key == k)
            return s.ch;
    }
}

void
Network::ChannelMap::grow()
{
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (Slot &s : old) {
        if (!s.used)
            continue;
        std::size_t i = hash(s.key);
        while (slots_[i & mask].used)
            ++i;
        slots_[i & mask] = s;
    }
}

bool
Network::canAccept(NodeId src, NodeId dst, unsigned words) const
{
    const Channel *ch = chans_[laneOf(src)].find(key(src, dst));
    const unsigned in_flight = ch ? ch->wordsInFlight : 0;
    return in_flight + words <= cfg_.channelCapacityWords;
}

void
Network::setParallel(const sim::ShardMap *shards,
                     std::vector<EventQueue *> lane_eqs)
{
    fugu_assert(shards && shards->shards >= 1, "bad shard map");
    fugu_assert(lane_eqs.size() == shards->shards,
                "one event queue per lane required");
    fugu_assert(laneSeq_[0] == 0 && chans_[0].empty(),
                "setParallel after traffic started");
    // The lane is packed into seq bits [kLaneSeqShift, 64): the lane
    // count must fit, and per-lane counters must never reach the lane
    // bits. 2^16 lanes x 2^48 messages is unreachable in practice.
    fugu_assert(shards->shards <=
                    (std::uint64_t{1} << (64 - kLaneSeqShift)),
                "too many lanes for the seq packing");
    shards_ = shards;
    laneEq_ = std::move(lane_eqs);
    const unsigned lanes = shards_->shards;
    chans_.resize(lanes);
    laneSeq_.assign(lanes, 0);
    outbox_.resize(lanes);
    releases_.resize(lanes);
    weaveCount_.assign(lanes, 0);
    scratch_.assign(lanes, LaneScratch{});
    bypassScratch_.resize(lanes);
    laneTracer_.resize(lanes, nullptr);
    laneFault_.resize(lanes, nullptr);
    parallel_ = lanes > 1;
}

void
Network::send(Packet pkt)
{
    const unsigned words = pkt.size();
    fugu_assert(words <= kMaxMessageWords, "oversized message (", words,
                " words)");
    fugu_assert(pkt.dst < sinks_.size() && sinks_[pkt.dst],
                "send to unattached node ", pkt.dst);
    fugu_assert(canAccept(pkt.src, pkt.dst, words),
                "send without canAccept");

    const unsigned lane = laneOf(pkt.src);
    EventQueue &eq = *laneEq_[lane];
    Channel &ch = chans_[lane].getOrCreate(key(pkt.src, pkt.dst));
    ch.wordsInFlight += words;

    Cycle ready = eq.now() + latency(pkt.src, pkt.dst, words);
    // Injected jitter lands before the FIFO clamp below so it can
    // never reorder messages within a channel — pairwise FIFO is a
    // property of the fabric, not of benign timing.
    if (sim::FaultInjector *fault = laneFault_[lane])
        ready += fault->packetJitter();
    // Per-channel FIFO with serialization: a message cannot arrive
    // before an earlier one on the same channel has been received.
    ready = std::max(ready, ch.lastArrival + cfg_.perWord * words);
    ch.lastArrival = ready;

    pkt.injectedAt = eq.now();
    pkt.seq = (static_cast<std::uint64_t>(lane) << kLaneSeqShift) |
              laneSeq_[lane]++;
    if (watcher_)
        watcher_->onInject(pkt);
    FUGU_TRACE(laneTracer_[lane], pkt.src, trace::Type::Inject,
               osNet_ ? trace::osMsgId(pkt.seq)
                      : trace::userMsgId(pkt.seq),
               trace::DivertReason::None,
               (static_cast<std::uint32_t>(pkt.dst) << 16) | words);
    NodeId dst = pkt.dst;
    if (!parallel_ || laneOf(dst) == lane) {
        eq.scheduleFn(
            [this, dst, p = std::move(pkt)]() mutable {
                arrived_[dst].push_back(std::move(p));
                drain(dst);
            },
            ready, arriveName_.c_str());
    } else {
        // Cross-lane: the destination's queue may only be touched at
        // the barrier. Stage the packet; weave() commits it.
        outbox_[lane].push_back(Staged{std::move(pkt), ready});
    }
}

void
Network::drain(NodeId dst)
{
    auto &q = arrived_[dst];
    const unsigned dlane = laneOf(dst);
    while (!q.empty()) {
        Packet &head = q.front();
        const unsigned words = head.size();
        const NodeId src = head.src;
        const Cycle injected = head.injectedAt;
        if (!sinks_[dst]->tryDeliver(std::move(head))) {
            if (parallel_)
                ++scratch_[dlane].holBlocks;
            else
                ++stats.headOfLineBlocks;
            // A queue-wide refusal (full ring, input-full burst)
            // blocks everything equally: park until re-poked. A
            // flow-local refusal (a DAMQ flow at its per-(src,GID)
            // cap) must not let one tenant's parked packet starve
            // every other tenant queued behind it — offer the rest.
            if (sinks_[dst]->refusalIsSelective(q.front()))
                bypassBlockedHead(dst, dlane);
            return; // the head itself retries via onSinkSpaceFreed
        }
        q.pop_front();
        accountDelivery(dlane, src, dst, words, injected);
    }
}

std::size_t
Network::bypassBlockedHead(NodeId dst, unsigned dlane)
{
    auto &q = arrived_[dst];
    std::vector<std::uint64_t> &blocked = bypassScratch_[dlane];
    blocked.clear();
    const auto flowKey = [](const Packet &p) {
        return (static_cast<std::uint64_t>(p.src) << 32) | p.gid;
    };
    blocked.push_back(flowKey(q.front()));
    std::size_t delivered = 0;
    std::size_t i = 1;
    while (i < q.size()) {
        Packet &cand = q[i];
        const std::uint64_t k = flowKey(cand);
        bool skip = false;
        for (std::uint64_t b : blocked)
            if (b == k) {
                skip = true;
                break;
            }
        if (skip) {
            // A refused packet of this flow sits ahead: delivering
            // this one would reorder the stream.
            ++i;
            continue;
        }
        const unsigned words = cand.size();
        const NodeId src = cand.src;
        const Cycle injected = cand.injectedAt;
        if (!sinks_[dst]->tryDeliver(std::move(cand))) {
            if (!sinks_[dst]->refusalIsSelective(q[i]))
                break; // refusal went queue-wide; stop scanning
            blocked.push_back(flowKey(q[i]));
            ++i;
            continue;
        }
        q.remove_at(i); // earlier (blocked) entries shift back one
        ++delivered;
        if (parallel_)
            ++scratch_[dlane].holBypasses;
        else
            ++stats.headOfLineBypasses;
        accountDelivery(dlane, src, dst, words, injected);
    }
    return delivered;
}

void
Network::accountDelivery(unsigned dlane, NodeId src, NodeId dst,
                         unsigned words, Cycle injected)
{
    const double lat =
        static_cast<double>(laneEq_[dlane]->now() - injected);
    if (parallel_) {
        LaneScratch &sc = scratch_[dlane];
        ++sc.messages;
        sc.words += words;
        if (sc.latCount == 0) {
            sc.latMin = lat;
            sc.latMax = lat;
        } else {
            sc.latMin = std::min(sc.latMin, lat);
            sc.latMax = std::max(sc.latMax, lat);
        }
        ++sc.latCount;
        sc.latSum += lat;
    } else {
        ++stats.messages;
        stats.words += words;
        stats.deliveryLatency.sample(lat);
    }
    const unsigned slane = laneOf(src);
    Channel *ch = chans_[slane].find(key(src, dst));
    fugu_assert(ch);
    if (!parallel_ || slane == dlane) {
        releaseChannel(*ch, words);
    } else {
        // The channel (and any blocked sender waiting on it)
        // belongs to the source's lane; defer to the weave.
        releases_[dlane].push_back(Release{slane, key(src, dst), words});
    }
}

void
Network::weave()
{
    if (!parallel_)
        return;
    // Deferred cross-lane channel releases first: waking a blocked
    // sender may stage more packets, which the commit pass below then
    // picks up in the same weave.
    for (auto &rl : releases_) {
        for (const Release &r : rl) {
            Channel *ch = chans_[r.srcLane].find(r.key);
            fugu_assert(ch);
            releaseChannel(*ch, r.words);
        }
        rl.clear();
    }
    // Bulk scheduleAt: pre-size each destination queue's pools so the
    // commit loop below never allocates mid-phase.
    for (auto &ob : outbox_)
        for (const Staged &s : ob)
            ++weaveCount_[laneOf(s.pkt.dst)];
    for (std::size_t l = 0; l < laneEq_.size(); ++l) {
        if (weaveCount_[l] != 0)
            laneEq_[l]->prepareBulk(weaveCount_[l]);
        weaveCount_[l] = 0;
    }
    // Commit staged packets in lane order, then per-lane in send
    // order, so the destination queue's (cycle, insertion) order — and
    // with it the whole simulation — is a pure function of the shard
    // count. The bound horizon guarantees ready >= the destination
    // clock whenever lookahead <= the minimum cross-node latency; the
    // max() also keeps degenerate zero-latency configs safe (a small,
    // documented timing deviation, never a causality violation).
    for (auto &ob : outbox_) {
        for (Staged &s : ob) {
            const NodeId dst = s.pkt.dst;
            EventQueue &dq = *laneEq_[laneOf(dst)];
            const Cycle at = std::max(s.ready, dq.now());
            dq.scheduleFn(
                [this, dst, p = std::move(s.pkt)]() mutable {
                    arrived_[dst].push_back(std::move(p));
                    drain(dst);
                },
                at, arriveName_.c_str());
        }
        ob.clear();
    }
}

void
Network::mergeLaneStats()
{
    if (!parallel_)
        return;
    for (LaneScratch &sc : scratch_) {
        stats.messages += sc.messages;
        stats.words += sc.words;
        stats.headOfLineBlocks += sc.holBlocks;
        stats.headOfLineBypasses += sc.holBypasses;
        stats.deliveryLatency.merge(sc.latCount, sc.latSum, sc.latMin,
                                    sc.latMax);
        sc = LaneScratch{};
    }
}

void
Network::onSinkSpaceFreed(NodeId dst)
{
    fugu_assert(dst < arrived_.size());
    drain(dst);
}

void
Network::releaseChannel(Channel &ch, unsigned words)
{
    fugu_assert(ch.wordsInFlight >= words);
    ch.wordsInFlight -= words;
    SpaceWaiter *w = ch.waitHead;
    if (!w)
        return;
    ch.waitHead = nullptr;
    ch.waitTail = nullptr;
    // `ch` must not be touched past this point: a woken sender may
    // re-enter send()/subscribeSpace() and grow the channel map,
    // invalidating the reference. Waiters run in subscribe order.
    while (w) {
        SpaceWaiter *next = w->nextWaiter_;
        w->nextWaiter_ = nullptr;
        w->linked_ = false;
        w->onSpaceAvailable();
        w = next;
    }
}

void
Network::subscribeSpace(NodeId src, NodeId dst, SpaceWaiter *waiter)
{
    fugu_assert(waiter && !waiter->linked_,
                "SpaceWaiter subscribed while already linked");
    waiter->linked_ = true;
    waiter->nextWaiter_ = nullptr;
    Channel &ch = chans_[laneOf(src)].getOrCreate(key(src, dst));
    if (ch.waitTail)
        ch.waitTail->nextWaiter_ = waiter;
    else
        ch.waitHead = waiter;
    ch.waitTail = waiter;
}

} // namespace fugu::net
