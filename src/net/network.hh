/**
 * @file
 * Message-level interconnect model.
 *
 * The fabric preserves the properties the paper's mechanisms rely on,
 * without modelling wormhole routing:
 *
 *  - pairwise FIFO: messages between a given (src,dst) pair are
 *    delivered in injection order (as on the Alewife mesh);
 *  - finite buffering and back-pressure: each (src,dst) channel holds
 *    a bounded number of words in flight, and a full receive queue at
 *    the destination blocks the channel head, eventually blocking the
 *    sender's inject (this is what the atomicity timeout polices);
 *  - latency: base + per-hop (2D mesh dimension-ordered distance) +
 *    per-word serialization.
 *
 * A machine instantiates the class twice: the main user network and
 * the reserved, slower second network the operating system uses as a
 * guaranteed deadlock-free path (Section 4.2).
 */

#ifndef FUGU_NET_NETWORK_HH
#define FUGU_NET_NETWORK_HH

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace fugu::sim
{
class Binder;
class FaultInjector;
}

namespace fugu::net
{

/** Receiving side attached to each node (the NI input queue). */
class NetSink
{
  public:
    virtual ~NetSink() = default;

    /**
     * Offer an arrived packet to the node.
     * @return false if the input queue is full; the network will
     *         retry when onSinkSpaceFreed is called.
     */
    virtual bool tryDeliver(Packet &&pkt) = 0;
};

struct NetworkConfig
{
    /** Mesh dimensions; meshX*meshY must cover all attached nodes. */
    unsigned meshX = 4;
    unsigned meshY = 4;

    /** Fixed overhead per message. */
    Cycle latencyBase = 5;

    /** Router/wire latency per mesh hop. */
    Cycle perHop = 2;

    /** Serialization cost per word. */
    Cycle perWord = 1;

    /** Max words in flight per (src,dst) channel (back-pressure). */
    unsigned channelCapacityWords = 64;
};

/** Register NetworkConfig's fields on the scenario/config tree. */
void bindConfig(sim::Binder &b, NetworkConfig &c);

class Network
{
  public:
    Network(EventQueue &eq, NetworkConfig cfg, std::string name,
            StatGroup *stat_parent);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    const NetworkConfig &config() const { return cfg_; }

    /** Attach the receive sink for node @p id. */
    void attach(NodeId id, NetSink *sink);

    /** Can a @p words -word message be injected right now? */
    bool canAccept(NodeId src, NodeId dst, unsigned words) const;

    /**
     * Inject a packet. The caller must have checked canAccept; the
     * send side of the NI blocks stores to the output buffer
     * otherwise.
     */
    void send(Packet pkt);

    /**
     * Called by a sink after it dequeued a message, making room for
     * a blocked arrival.
     */
    void onSinkSpaceFreed(NodeId dst);

    /**
     * One-shot notification when channel (src,dst) has room again.
     * Used by the NI to wake a blocked injector.
     */
    void subscribeSpace(NodeId src, NodeId dst, std::function<void()> cb);

    /**
     * Attach a message-lifecycle trace recorder. @p os_net selects
     * the message-id tag so the two networks' injection sequences
     * stay distinguishable in a merged trace.
     */
    void
    setTracer(trace::Recorder *tracer, bool os_net)
    {
        tracer_ = tracer;
        osNet_ = os_net;
    }

    /**
     * Attach a fault injector: jitters packet delivery latency. Only
     * the user network gets one; the OS network must stay the
     * guaranteed deadlock-free path.
     */
    void setFault(sim::FaultInjector *fault) { fault_ = fault; }

    /** Attach a packet-lifecycle watcher (the invariant checker). */
    void setWatcher(PacketWatcher *watcher) { watcher_ = watcher; }

    /** Dimension-ordered mesh hop count between two nodes. */
    unsigned hops(NodeId a, NodeId b) const;

    /** End-to-end delivery latency for a message of @p words words. */
    Cycle latency(NodeId src, NodeId dst, unsigned words) const;

    struct Stats
    {
        Stats(StatGroup *parent, const std::string &name);
        StatGroup group;
        Scalar messages;
        Scalar words;
        Distribution deliveryLatency;
        Scalar headOfLineBlocks;
    };

    Stats stats;

  private:
    using ChannelKey = std::uint32_t;

    // The channel map packs (src,dst) into 16 bits each. NodeId is
    // currently 16 bits so the pack is lossless by construction; if
    // NodeId ever widens, this must fail to compile rather than
    // silently alias channels between distant node pairs.
    static_assert(sizeof(NodeId) <= 2,
                  "Network::key packs NodeId into 16 bits");

    static ChannelKey
    key(NodeId src, NodeId dst)
    {
        return (static_cast<ChannelKey>(src) << 16) | dst;
    }

    struct Channel
    {
        unsigned wordsInFlight = 0;
        Cycle lastArrival = 0;
        std::vector<std::function<void()>> spaceWaiters;
    };

    void drain(NodeId dst);
    void releaseChannel(Channel &ch, unsigned words);

    EventQueue &eq_;
    NetworkConfig cfg_;
    std::string name_;
    std::string arriveName_; // precomputed: scheduleFn is per-packet
    std::map<ChannelKey, Channel> channels_;
    std::vector<NetSink *> sinks_;

    /** Per-destination queues of packets that finished traversal. */
    std::vector<std::deque<Packet>> arrived_;

    std::uint64_t nextSeq_ = 0;

    trace::Recorder *tracer_ = nullptr;
    bool osNet_ = false;

    sim::FaultInjector *fault_ = nullptr;
    PacketWatcher *watcher_ = nullptr;
};

} // namespace fugu::net

#endif // FUGU_NET_NETWORK_HH
