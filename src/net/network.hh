/**
 * @file
 * Message-level interconnect model.
 *
 * The fabric preserves the properties the paper's mechanisms rely on,
 * without modelling wormhole routing:
 *
 *  - pairwise FIFO: messages between a given (src,dst) pair are
 *    delivered in injection order (as on the Alewife mesh);
 *  - finite buffering and back-pressure: each (src,dst) channel holds
 *    a bounded number of words in flight, and a full receive queue at
 *    the destination blocks the channel head, eventually blocking the
 *    sender's inject (this is what the atomicity timeout polices);
 *  - latency: base + per-hop (2D mesh dimension-ordered distance) +
 *    per-word serialization.
 *
 * A machine instantiates the class twice: the main user network and
 * the reserved, slower second network the operating system uses as a
 * guaranteed deadlock-free path (Section 4.2).
 */

#ifndef FUGU_NET_NETWORK_HH
#define FUGU_NET_NETWORK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "sim/event.hh"
#include "sim/ring.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace fugu::sim
{
class Binder;
class FaultInjector;
}

namespace fugu::net
{

/** Receiving side attached to each node (the NI input queue). */
class NetSink
{
  public:
    virtual ~NetSink() = default;

    /**
     * Offer an arrived packet to the node.
     * @return false if the input queue is full; the network will
     *         retry when onSinkSpaceFreed is called.
     */
    virtual bool tryDeliver(Packet &&pkt) = 0;

    /**
     * After tryDeliver refused @p pkt: was the refusal specific to
     * that packet's (src,gid) flow, leaving room for other flows?
     * Queue-wide refusals (a full static ring, an injected input-full
     * burst) return false — re-offering anything else is pointless.
     * When true, the network may deliver later arrivals from *other*
     * flows past the refused head (per-flow FIFO is preserved; only
     * cross-flow order, which the fabric never promised, changes).
     */
    virtual bool
    refusalIsSelective(const Packet &pkt) const
    {
        (void)pkt;
        return false;
    }
};

struct NetworkConfig
{
    /** Mesh dimensions; meshX*meshY must cover all attached nodes. */
    unsigned meshX = 4;
    unsigned meshY = 4;

    /** Fixed overhead per message. */
    Cycle latencyBase = 5;

    /** Router/wire latency per mesh hop. */
    Cycle perHop = 2;

    /** Serialization cost per word. */
    Cycle perWord = 1;

    /** Max words in flight per (src,dst) channel (back-pressure). */
    unsigned channelCapacityWords = 64;
};

/** Register NetworkConfig's fields on the scenario/config tree. */
void bindConfig(sim::Binder &b, NetworkConfig &c);

class Network
{
  public:
    Network(EventQueue &eq, NetworkConfig cfg, std::string name,
            StatGroup *stat_parent);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    const NetworkConfig &config() const { return cfg_; }

    /** Attach the receive sink for node @p id. */
    void attach(NodeId id, NetSink *sink);

    /** Can a @p words -word message be injected right now? */
    bool canAccept(NodeId src, NodeId dst, unsigned words) const;

    /**
     * Inject a packet. The caller must have checked canAccept; the
     * send side of the NI blocks stores to the output buffer
     * otherwise.
     */
    void send(Packet pkt);

    /**
     * Called by a sink after it dequeued a message, making room for
     * a blocked arrival.
     */
    void onSinkSpaceFreed(NodeId dst);

    /**
     * One-shot notification when channel (src,dst) has room again.
     * Used by the NI to wake a blocked injector. The waiter is linked
     * intrusively (no allocation) and unlinked before its callback
     * runs; it must stay alive until notified.
     */
    void subscribeSpace(NodeId src, NodeId dst, SpaceWaiter *waiter);

    /**
     * Attach a message-lifecycle trace recorder. @p os_net selects
     * the message-id tag so the two networks' injection sequences
     * stay distinguishable in a merged trace.
     */
    void
    setTracer(trace::Recorder *tracer, bool os_net)
    {
        laneTracer_[0] = tracer;
        osNet_ = os_net;
    }

    /**
     * Attach a fault injector: jitters packet delivery latency. Only
     * the user network gets one; the OS network must stay the
     * guaranteed deadlock-free path.
     */
    void setFault(sim::FaultInjector *fault) { laneFault_[0] = fault; }

    /// @name Parallel (bound-weave) engine hooks
    /// @{

    /**
     * Partition the network into one lane per shard of @p shards.
     * Lane l owns the send-side state (channels, sequence counter,
     * staging outbox) of shard l's nodes and schedules same-lane
     * arrivals on @p lane_eqs[l]; cross-lane traffic is staged and
     * committed by weave(). Must be called before any send; with one
     * shard the network behaves bit-identically to the serial build.
     */
    void setParallel(const sim::ShardMap *shards,
                     std::vector<EventQueue *> lane_eqs);

    /** Attach lane @p lane's trace recorder (parallel runs). */
    void
    setLaneTracer(unsigned lane, trace::Recorder *tracer)
    {
        laneTracer_[lane] = tracer;
    }

    /** Attach lane @p lane's fault injector (parallel runs). */
    void
    setLaneFault(unsigned lane, sim::FaultInjector *fault)
    {
        laneFault_[lane] = fault;
    }

    /**
     * Weave phase: serially commit everything the bound phase staged,
     * in fixed lane order so the result is deterministic. First the
     * deferred cross-lane channel releases run (possibly waking
     * blocked senders, whose sends are staged and picked up below),
     * then every staged cross-lane packet is scheduled onto its
     * destination lane's queue, per-channel FIFO order preserved.
     * No-op when the network has a single lane.
     */
    void weave();

    /**
     * Fold the per-lane scratch counters into the canonical stats
     * (idempotent; called by the Machine when a parallel run stops).
     */
    void mergeLaneStats();

    /// @}

    /** Attach a packet-lifecycle watcher (the invariant checker). */
    void setWatcher(PacketWatcher *watcher) { watcher_ = watcher; }

    /** Dimension-ordered mesh hop count between two nodes. */
    unsigned hops(NodeId a, NodeId b) const;

    /** End-to-end delivery latency for a message of @p words words. */
    Cycle latency(NodeId src, NodeId dst, unsigned words) const;

    struct Stats
    {
        Stats(StatGroup *parent, const std::string &name);
        StatGroup group;
        Scalar messages;
        Scalar words;
        Distribution deliveryLatency;
        Scalar headOfLineBlocks;
        Scalar headOfLineBypasses;
    };

    Stats stats;

  private:
    using ChannelKey = std::uint32_t;

    // The channel map packs (src,dst) into 16 bits each. NodeId is
    // currently 16 bits so the pack is lossless by construction; if
    // NodeId ever widens, this must fail to compile rather than
    // silently alias channels between distant node pairs.
    static_assert(sizeof(NodeId) <= 2,
                  "Network::key packs NodeId into 16 bits");

    static ChannelKey
    key(NodeId src, NodeId dst)
    {
        return (static_cast<ChannelKey>(src) << 16) | dst;
    }

    struct Channel
    {
        unsigned wordsInFlight = 0;
        Cycle lastArrival = 0;
        // Intrusive FIFO of blocked senders (see SpaceWaiter).
        SpaceWaiter *waitHead = nullptr;
        SpaceWaiter *waitTail = nullptr;
    };

    /**
     * Open-addressing (src,dst) -> Channel map. Channels are created
     * once per communicating pair and then only looked up, which a
     * node-based std::map punishes with a pointer chase per level on
     * the per-message send/drain path; linear probing over a flat
     * power-of-2 table makes the lookup one or two cache lines.
     * Never iterated, so table order can't leak into simulation order.
     * References are invalidated by getOrCreate (growth).
     */
    class ChannelMap
    {
      public:
        Channel *
        find(ChannelKey k)
        {
            if (size_ == 0)
                return nullptr;
            const std::size_t mask = slots_.size() - 1;
            for (std::size_t i = hash(k);; ++i) {
                Slot &s = slots_[i & mask];
                if (!s.used)
                    return nullptr;
                if (s.key == k)
                    return &s.ch;
            }
        }

        const Channel *
        find(ChannelKey k) const
        {
            return const_cast<ChannelMap *>(this)->find(k);
        }

        Channel &getOrCreate(ChannelKey k);

        bool empty() const { return size_ == 0; }

      private:
        struct Slot
        {
            ChannelKey key = 0;
            bool used = false;
            Channel ch;
        };

        static std::size_t
        hash(ChannelKey k)
        {
            // Fibonacci scrambling: adjacent node pairs spread out.
            return (k * 0x9e3779b9u) >> 16;
        }

        void grow();

        std::vector<Slot> slots_; // power-of-2 size
        std::size_t size_ = 0;
    };

    /** A cross-lane packet awaiting the weave commit. */
    struct Staged
    {
        Packet pkt;
        Cycle ready;
    };

    /** A cross-lane channel release deferred to the weave. */
    struct Release
    {
        unsigned srcLane;
        ChannelKey key;
        unsigned words;
    };

    /**
     * Per-destination-lane stat scratch. Deliveries run on the lane's
     * thread during the bound phase, so they may not touch the shared
     * Stats; the scratch is merged (in lane order) at run end.
     */
    struct LaneScratch
    {
        double messages = 0;
        double words = 0;
        double holBlocks = 0;
        double holBypasses = 0;
        std::uint64_t latCount = 0;
        double latSum = 0;
        double latMin = 0;
        double latMax = 0;
    };

    /**
     * Lane sequence numbers pack the lane into the top 16 bits so
     * per-lane counters never collide machine-wide; lane 0 (and any
     * serial run) keeps the plain 0,1,2,... sequence.
     */
    static constexpr unsigned kLaneSeqShift = 48;

    unsigned
    laneOf(NodeId n) const
    {
        return shards_ ? shards_->of(n) : 0;
    }

    void drain(NodeId dst);

    /**
     * Head-of-line bypass: the sink refused the queue head for a
     * flow-local reason (per-flow cap), so offer later arrivals from
     * other flows, preserving per-(src,gid) FIFO. Returns the number
     * delivered.
     */
    std::size_t bypassBlockedHead(NodeId dst, unsigned dlane);

    void accountDelivery(unsigned dlane, NodeId src, NodeId dst,
                         unsigned words, Cycle injected);

    void releaseChannel(Channel &ch, unsigned words);

    EventQueue &eq_;
    NetworkConfig cfg_;
    std::string name_;
    std::string arriveName_; // precomputed: scheduleFn is per-packet
    std::vector<NetSink *> sinks_;

    /** Per-destination queues of packets that finished traversal. */
    std::vector<sim::RingDeque<Packet>> arrived_;

    // Per-lane state (index 0 only until setParallel). Channels and
    // the sequence counter belong to the sender's lane; the staging
    // outbox to the sender's, releases and scratch to the receiver's.
    std::vector<ChannelMap> chans_;
    std::vector<std::uint64_t> laneSeq_;
    std::vector<std::vector<Staged>> outbox_;
    std::vector<std::vector<Release>> releases_;
    std::vector<std::size_t> weaveCount_; // scratch for weave()
    std::vector<LaneScratch> scratch_;
    // Per-lane blocked-flow keys for the head-of-line bypass scan
    // (reused so the scan allocates only up to each lane's high-water
    // mark; lanes scan concurrently, so one buffer each).
    std::vector<std::vector<std::uint64_t>> bypassScratch_;
    std::vector<EventQueue *> laneEq_;
    std::vector<trace::Recorder *> laneTracer_;
    std::vector<sim::FaultInjector *> laneFault_;

    const sim::ShardMap *shards_ = nullptr;
    bool parallel_ = false;
    bool osNet_ = false;

    PacketWatcher *watcher_ = nullptr;
};

} // namespace fugu::net

#endif // FUGU_NET_NETWORK_HH
