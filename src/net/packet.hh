/**
 * @file
 * Packet: the unit of communication on the interconnect.
 *
 * A UDM message is a variable-length sequence of words; the first word
 * is the routing header (destination), the second an optional handler
 * address, the rest payload (Section 3 of the paper). Fast-path
 * messages are limited to 16 words as in FUGU; larger transfers are
 * chunked by higher layers (the paper's DMA bulk path is out of
 * scope, as it is in the paper).
 */

#ifndef FUGU_NET_PACKET_HH
#define FUGU_NET_PACKET_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace fugu::net
{

/** Hardware limit on a fast-path message, in words (incl. header). */
inline constexpr unsigned kMaxMessageWords = 16;

/** Payload words available after the routing header + handler word. */
inline constexpr unsigned kMaxPayloadWords = kMaxMessageWords - 2;

struct Packet
{
    NodeId src = 0;
    NodeId dst = 0;

    /** GID stamped by the sending NI, checked by the receiving NI. */
    Gid gid = 0;

    /** Handler address (index into the receiver's handler table). */
    Word handler = 0;

    /** Data payload, at most kMaxPayloadWords words. */
    std::vector<Word> payload;

    /** Cycle the message was launched (for latency stats). */
    Cycle injectedAt = 0;

    /** Global injection sequence number (debug / ordering checks). */
    std::uint64_t seq = 0;

    /** Total size in words: header + handler + payload. */
    unsigned size() const
    {
        return 2 + static_cast<unsigned>(payload.size());
    }
};

} // namespace fugu::net

#endif // FUGU_NET_PACKET_HH
