/**
 * @file
 * Packet: the unit of communication on the interconnect.
 *
 * A UDM message is a variable-length sequence of words; the first word
 * is the routing header (destination), the second an optional handler
 * address, the rest payload (Section 3 of the paper). Fast-path
 * messages are limited to 16 words as in FUGU; larger transfers are
 * chunked by higher layers (the paper's DMA bulk path is out of
 * scope, as it is in the paper).
 *
 * Payloads are stored inline (WordVec): a Packet is a flat,
 * trivially-copyable value with no heap behind it, so moving messages
 * through the fabric, the NI input ring and the virtual buffer never
 * allocates and never chases a pointer to reach the words.
 */

#ifndef FUGU_NET_PACKET_HH
#define FUGU_NET_PACKET_HH

#include <cstdint>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace fugu::net
{

/** Hardware limit on a fast-path message, in words (incl. header). */
inline constexpr unsigned kMaxMessageWords = 16;

/** Payload words available after the routing header + handler word. */
inline constexpr unsigned kMaxPayloadWords = kMaxMessageWords - 2;

/**
 * A fixed-capacity inline word vector: the hardware-bounded message
 * payload (and the NI output descriptor) as a flat value type. The
 * vector-ish surface (size/push_back/assign/iterators) keeps call
 * sites natural; capacity overflow is a simulation error, matching
 * the hardware's kMaxMessageWords limit, and asserts.
 */
template <unsigned Cap>
class WordVec
{
  public:
    WordVec() = default;

    WordVec(std::initializer_list<Word> init)
    {
        assign(init.begin(), init.end());
    }

    /** Implicit, so legacy std::vector call sites keep compiling. */
    WordVec(const std::vector<Word> &v) { assign(v.begin(), v.end()); }

    WordVec(unsigned n, Word fill) { assign(n, fill); }

    unsigned size() const { return len_; }
    bool empty() const { return len_ == 0; }
    static constexpr unsigned capacity() { return Cap; }

    Word operator[](unsigned i) const { return w_[i]; }
    Word &operator[](unsigned i) { return w_[i]; }

    Word
    at(unsigned i) const
    {
        fugu_assert(i < len_, "WordVec::at(", i, ") past end ", len_);
        return w_[i];
    }

    const Word *begin() const { return w_; }
    const Word *end() const { return w_ + len_; }
    Word *begin() { return w_; }
    Word *end() { return w_ + len_; }
    const Word *data() const { return w_; }

    void
    push_back(Word w)
    {
        fugu_assert(len_ < Cap, "WordVec overflow (capacity ", Cap,
                    " words)");
        w_[len_++] = w;
    }

    template <typename It,
              typename = std::enable_if_t<!std::is_integral_v<It>>>
    void
    assign(It first, It last)
    {
        len_ = 0;
        for (; first != last; ++first)
            push_back(static_cast<Word>(*first));
    }

    void
    assign(unsigned n, Word fill)
    {
        fugu_assert(n <= Cap, "WordVec overflow (capacity ", Cap,
                    " words)");
        for (unsigned i = 0; i < n; ++i)
            w_[i] = fill;
        len_ = n;
    }

    void clear() { len_ = 0; }

    /** Capacity is fixed; kept so vector-era call sites compile. */
    void
    reserve(unsigned n) const
    {
        fugu_assert(n <= Cap, "WordVec::reserve(", n, ") over capacity ",
                    Cap);
    }

  private:
    Word w_[Cap] = {};
    unsigned len_ = 0;
};

/** Message payload: what travels after the header + handler words. */
using PayloadVec = WordVec<kMaxPayloadWords>;

/** A whole described message (the NI output descriptor's shape). */
using MsgVec = WordVec<kMaxMessageWords>;

struct Packet
{
    NodeId src = 0;
    NodeId dst = 0;

    /** GID stamped by the sending NI, checked by the receiving NI. */
    Gid gid = 0;

    /** Handler address (index into the receiver's handler table). */
    Word handler = 0;

    /** Data payload, at most kMaxPayloadWords words, stored inline. */
    PayloadVec payload;

    /** Cycle the message was launched (for latency stats). */
    Cycle injectedAt = 0;

    /** Global injection sequence number (debug / ordering checks). */
    std::uint64_t seq = 0;

    /** Total size in words: header + handler + payload. */
    unsigned size() const { return 2 + payload.size(); }
};

/**
 * Observer of a packet's lifecycle on one network, from injection to
 * the point user code consumes it (or the kernel drops it). The
 * invariant checker implements this to verify end-to-end delivery
 * properties — per-sender FIFO, content transparency, GID isolation —
 * independently of which path (fast or buffered) a message took.
 * Callbacks run synchronously inside the simulation event loop.
 */
class PacketWatcher
{
  public:
    virtual ~PacketWatcher() = default;

    /** Packet accepted by the network, seq already stamped. */
    virtual void onInject(const Packet &pkt) = 0;

    /**
     * Packet handed to user code at @p node, just before it is popped
     * from the NI input queue (fast path) or the software buffer
     * (@p buffered_path true). @p receiver_gid is the consuming
     * process's GID.
     */
    virtual void onDeliver(const Packet &pkt, NodeId node,
                           Gid receiver_gid, bool buffered_path) = 0;

    /** Packet discarded at @p node (e.g. no process owns its GID). */
    virtual void onDrop(const Packet &pkt, NodeId node) = 0;
};

/**
 * Intrusive one-shot waiter for channel back-pressure release.
 * Subscribers subclass this (one live subscription per instance) and
 * are notified — and unlinked — when their (src,dst) channel frees
 * space. Replaces per-subscription std::function allocations on the
 * inject back-pressure path.
 */
class SpaceWaiter
{
  public:
    virtual ~SpaceWaiter() = default;

    /** Channel has room again; the waiter is already unlinked. */
    virtual void onSpaceAvailable() = 0;

  private:
    friend class Network;
    SpaceWaiter *nextWaiter_ = nullptr;
    bool linked_ = false;
};

} // namespace fugu::net

#endif // FUGU_NET_PACKET_HH
