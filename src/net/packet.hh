/**
 * @file
 * Packet: the unit of communication on the interconnect.
 *
 * A UDM message is a variable-length sequence of words; the first word
 * is the routing header (destination), the second an optional handler
 * address, the rest payload (Section 3 of the paper). Fast-path
 * messages are limited to 16 words as in FUGU; larger transfers are
 * chunked by higher layers (the paper's DMA bulk path is out of
 * scope, as it is in the paper).
 */

#ifndef FUGU_NET_PACKET_HH
#define FUGU_NET_PACKET_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace fugu::net
{

/** Hardware limit on a fast-path message, in words (incl. header). */
inline constexpr unsigned kMaxMessageWords = 16;

/** Payload words available after the routing header + handler word. */
inline constexpr unsigned kMaxPayloadWords = kMaxMessageWords - 2;

struct Packet
{
    NodeId src = 0;
    NodeId dst = 0;

    /** GID stamped by the sending NI, checked by the receiving NI. */
    Gid gid = 0;

    /** Handler address (index into the receiver's handler table). */
    Word handler = 0;

    /** Data payload, at most kMaxPayloadWords words. */
    std::vector<Word> payload;

    /** Cycle the message was launched (for latency stats). */
    Cycle injectedAt = 0;

    /** Global injection sequence number (debug / ordering checks). */
    std::uint64_t seq = 0;

    /** Total size in words: header + handler + payload. */
    unsigned size() const
    {
        return 2 + static_cast<unsigned>(payload.size());
    }
};

/**
 * Observer of a packet's lifecycle on one network, from injection to
 * the point user code consumes it (or the kernel drops it). The
 * invariant checker implements this to verify end-to-end delivery
 * properties — per-sender FIFO, content transparency, GID isolation —
 * independently of which path (fast or buffered) a message took.
 * Callbacks run synchronously inside the simulation event loop.
 */
class PacketWatcher
{
  public:
    virtual ~PacketWatcher() = default;

    /** Packet accepted by the network, seq already stamped. */
    virtual void onInject(const Packet &pkt) = 0;

    /**
     * Packet handed to user code at @p node, just before it is popped
     * from the NI input queue (fast path) or the software buffer
     * (@p buffered_path true). @p receiver_gid is the consuming
     * process's GID.
     */
    virtual void onDeliver(const Packet &pkt, NodeId node,
                           Gid receiver_gid, bool buffered_path) = 0;

    /** Packet discarded at @p node (e.g. no process owns its GID). */
    virtual void onDrop(const Packet &pkt, NodeId node) = 0;
};

} // namespace fugu::net

#endif // FUGU_NET_PACKET_HH
