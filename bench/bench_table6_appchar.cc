/**
 * @file
 * Reproduces Table 6: application characteristics running standalone
 * on eight nodes — runtime cycles, total messages, average cycles
 * between communication events (T_betw = cycles*nodes/messages) and
 * average cycles per handler (T_hand).
 *
 * Default workload sizes are scaled down so the bench finishes in
 * seconds; set workloads.paper_scale (or FUGU_PAPER_SCALE=1) for the
 * paper's data sets. Absolute values are not expected to match the
 * 1998 system; the *shape* (ordering of communication rates, barrier
 * being the most communication-intensive, LU the least) should hold.
 * EXPERIMENTS.md records paper-vs-measured.
 */

#include <cstdio>
#include <vector>

#include "harness/benchmain.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

/** Table 6 reference rows (the paper's measured system, not knobs). */
struct PaperRow
{
    const char *name;
    double cycles;
    double msgs;
    double tbetw;
    double thand;
};

constexpr PaperRow kPaper[] = {
    {"barnes", 45.7e6, 107849, 3390, 337},
    {"water", 47.6e6, 36303, 10500, 419},
    {"lu", 13.4e6, 7564, 14200, 478},
    {"barrier", 18.5e6, 240177, 615, 149},
    {"enum", 72.7e6, 610148, 953, 320},
};

} // namespace

int
main(int argc, char **argv)
{
    BenchSpec spec;
    spec.name = "table6_appchar";
    spec.defaults = [](BenchContext &ctx) {
        ctx.machine.nodes = 8;
        ctx.trials = 1;
    };
    spec.body = [](BenchContext &ctx) {
        constexpr std::size_t kApps = std::size(kPaper);
        std::vector<RunStats> results(kApps);
        parallelFor(kApps, [&](std::size_t i) {
            results[i] = runTrials(
                ctx.machine, ctx.workloads.factory(kPaper[i].name),
                /*with_null=*/false, /*gang=*/false, ctx.gang,
                ctx.trials, ctx.maxCycles,
                i == 0 ? ctx.tracePath : std::string());
        });

        std::printf(
            "Table 6: application characteristics, standalone on %u "
            "nodes%s\n",
            ctx.machine.nodes,
            ctx.workloads.paperScale ? " (paper-scale data sets)"
                                     : " (scaled-down data sets)");
        TablePrinter t({"App", "Cycles", "Tot msgs", "T_betw",
                        "T_hand", "paper: cycles/msgs/T_betw/T_hand"},
                       {8, 12, 10, 8, 8, 34});
        t.printHeader();
        ctx.report.meta("paper_scale", ctx.workloads.paperScale);
        ctx.report.meta("nodes", ctx.machine.nodes);

        for (std::size_t i = 0; i < kApps; ++i) {
            const PaperRow &row = kPaper[i];
            const RunStats &r = results[i];
            if (!r.completed) {
                t.printRow({row.name, "DID NOT COMPLETE", "-", "-",
                            "-", "-"});
                ctx.report.row(
                    {{"app", row.name}, {"completed", false}});
                continue;
            }
            char paper[80];
            std::snprintf(paper, sizeof(paper),
                          "%.1fM/%.0fk/%.0f/%.0f", row.cycles / 1e6,
                          row.msgs / 1e3, row.tbetw, row.thand);
            t.printRow(
                {row.name,
                 TablePrinter::num(static_cast<double>(r.runtime)),
                 TablePrinter::num(static_cast<double>(r.sent)),
                 TablePrinter::num(r.tBetween),
                 TablePrinter::num(r.tHand), paper});
            ctx.report.row({{"app", row.name},
                            {"completed", true},
                            {"cycles", std::uint64_t{r.runtime}},
                            {"messages", r.sent},
                            {"t_between", r.tBetween},
                            {"t_hand", r.tHand},
                            {"paper_cycles", row.cycles},
                            {"paper_messages", row.msgs},
                            {"paper_t_between", row.tbetw},
                            {"paper_t_hand", row.thand}});
        }
        return 0;
    };
    return benchMain(spec, argc, argv);
}
