/**
 * @file
 * Adversarial stress sweep: runs each application under every fault
 * class the deterministic injector supports (packet delay jitter,
 * input/output queue-full bursts, frame-pool exhaustion, forced
 * divert storms, atomicity-timeout storms, mid-handler page faults,
 * and a mixed cocktail) with the machine-wide invariant checker
 * enabled, and reports per-cell fault-event and violation counts.
 *
 * A healthy two-case-delivery implementation survives every cell
 * with zero violations: faults may slow a run down and force far
 * more traffic onto the buffered path, but per-sender FIFO order,
 * content transparency, GID isolation, handler atomicity and
 * frame-pool conservation must all still hold. The process exits
 * nonzero if any cell reports a violation or fails to complete, so
 * CI can run this binary as a single pass/fail gate.
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "harness/benchmain.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

/** Split a comma-separated list, trimming blanks and empty fields. */
std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        const auto b = tok.find_first_not_of(" \t");
        const auto e = tok.find_last_not_of(" \t");
        if (b != std::string::npos)
            out.push_back(tok.substr(b, e - b + 1));
    }
    return out;
}

/**
 * Enable one named fault class on @p f, scaled by @p intensity.
 * The base rates are chosen so the default quick run exercises each
 * mechanism hundreds of times without wedging the schedule.
 */
void
applyFaultClass(sim::FaultConfig &f, const std::string &cls,
                double intensity)
{
    f.enabled = true;
    if (cls == "jitter") {
        f.delayJitterProb = 0.30 * intensity;
    } else if (cls == "inqfull") {
        f.inputFullProb = 0.05 * intensity;
    } else if (cls == "outqfull") {
        f.outputFullProb = 0.30 * intensity;
    } else if (cls == "framedeny") {
        f.frameDenyProb = 0.20 * intensity;
    } else if (cls == "divert") {
        f.divertStormProb = 0.50 * intensity;
    } else if (cls == "timeout") {
        f.atomTimeoutProb = 0.50 * intensity;
    } else if (cls == "pagefault") {
        f.pageFaultProb = 0.10 * intensity;
    } else if (cls == "mixed") {
        f.delayJitterProb = 0.10 * intensity;
        f.inputFullProb = 0.02 * intensity;
        f.outputFullProb = 0.10 * intensity;
        f.frameDenyProb = 0.05 * intensity;
        f.divertStormProb = 0.15 * intensity;
        f.atomTimeoutProb = 0.15 * intensity;
        f.pageFaultProb = 0.03 * intensity;
    } else {
        fugu_fatal("unknown fault class '", cls,
                   "' (expected jitter, inqfull, outqfull, "
                   "framedeny, divert, timeout, pagefault or mixed)");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string appsCsv = "barnes,barrier,enum";
    std::string classesCsv =
        "jitter,inqfull,outqfull,framedeny,divert,timeout,pagefault,"
        "mixed";
    double intensity = 1.0;

    BenchSpec spec;
    spec.name = "stress";
    spec.defaults = [](BenchContext &ctx) {
        ctx.machine.nodes = 4;
        ctx.gang.quantum = 50000;
        ctx.gang.skew = 0.2;
        ctx.trials = 1;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("stress");
        b.item("apps", appsCsv,
               "comma-separated workloads to stress");
        b.item("classes", classesCsv,
               "comma-separated fault classes (jitter, inqfull, "
               "outqfull, framedeny, divert, timeout, pagefault, "
               "mixed)");
        b.item("intensity", intensity,
               "scale factor on every fault-class base rate");
    };
    spec.body = [&](BenchContext &ctx) {
        const std::vector<std::string> apps = splitCsv(appsCsv);
        const std::vector<std::string> classes = splitCsv(classesCsv);
        fugu_assert(!apps.empty() && !classes.empty(),
                    "stress.apps and stress.classes must be "
                    "non-empty");

        struct Point
        {
            std::string app;
            std::string cls;
        };
        std::vector<Point> points;
        for (const auto &app : apps)
            for (const auto &cls : classes)
                points.push_back({app, cls});

        std::vector<RunStats> results(points.size());
        parallelFor(points.size(), [&](std::size_t i) {
            glaze::MachineConfig mcfg = ctx.machine;
            applyFaultClass(mcfg.fault, points[i].cls, intensity);
            // --trace records the most adverse cell: the last app
            // under the mixed cocktail (or the last class listed).
            const bool traced = i + 1 == points.size();
            results[i] = runTrials(
                mcfg, ctx.workloads.factory(points[i].app),
                /*with_null=*/true, /*gang=*/true, ctx.gang,
                ctx.trials, ctx.maxCycles,
                traced ? ctx.tracePath : std::string());
        });

        std::printf(
            "Stress sweep: %zu app(s) x %zu fault class(es), "
            "intensity %.2f, %u trial(s)\n",
            apps.size(), classes.size(), intensity, ctx.trials);
        TablePrinter t({"App", "Class", "%buffered", "inserts",
                        "timeouts", "faults", "violations",
                        "runtime"},
                       {8, 10, 10, 9, 9, 9, 11, 12});
        t.printHeader();
        ctx.report.meta("trials", ctx.trials);
        ctx.report.meta("nodes", ctx.machine.nodes);
        ctx.report.meta("intensity", intensity);

        double totalViolations = 0;
        bool allCompleted = true;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const RunStats &r = results[i];
            totalViolations += r.violations;
            allCompleted = allCompleted && r.completed;
            t.printRow(
                {points[i].app, points[i].cls,
                 r.completed ? TablePrinter::num(r.bufferedPct, 2)
                             : "STUCK",
                 TablePrinter::num(r.bufferInserts),
                 TablePrinter::num(r.atomicityTimeouts),
                 TablePrinter::num(r.faultEvents),
                 TablePrinter::num(r.violations),
                 TablePrinter::num(static_cast<double>(r.runtime))});
            ctx.report.row(
                {{"app", points[i].app},
                 {"class", points[i].cls},
                 {"completed", r.completed},
                 {"buffered_pct", r.bufferedPct},
                 {"buffer_inserts", r.bufferInserts},
                 {"atomicity_timeouts", r.atomicityTimeouts},
                 {"fault_events", r.faultEvents},
                 {"violations", r.violations},
                 {"runtime", std::uint64_t{r.runtime}}});
        }

        if (totalViolations > 0) {
            std::printf("\nFAIL: %.0f invariant violation(s)\n",
                        totalViolations);
            return 1;
        }
        if (!allCompleted) {
            std::printf("\nFAIL: at least one cell did not "
                        "complete within the cycle budget\n");
            return 1;
        }
        std::printf("\nPASS: zero invariant violations across the "
                    "sweep\n");
        return 0;
    };
    return benchMain(spec, argc, argv);
}
