/**
 * @file
 * Pure event-kernel throughput microbench: no simulated machine, just
 * the EventQueue hot paths every experiment is built from. Measures
 * host events/sec for:
 *
 *  - schedule/fire  : chained one-shot scheduleFn lambdas with a
 *    realistic (~56-byte) capture, 64 in flight;
 *  - event/fire     : intrusive Event subclasses self-rescheduling
 *    from process(), the Cpu::spend shape;
 *  - schedule/cancel: scheduleFn followed by cancelFn via handles;
 *  - reschedule     : periodic-event reschedule churn, which also
 *    exercises stale-entry compaction (the seed kernel's heap grew by
 *    one dead entry per reschedule, forever).
 *
 * Scale with FUGU_BENCH_N (default 2,000,000 events per section,
 * 200,000 under FUGU_QUICK). Writes BENCH_engine.json with --json.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/benchjson.hh"
#include "sim/event.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

double
seconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Fired callable that keeps the chain going. The padding mimics the
 * simulator's real captures (the network's delivery lambda carries a
 * whole Packet, ~72 bytes), so the bench measures the capture-carrying
 * path, not an empty-lambda special case.
 */
struct Chain
{
    EventQueue *eq;
    std::uint64_t *remaining;
    std::uint64_t pad[5];

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        Chain next = *this;
        next.pad[0] ^= *remaining; // keep the payload live
        eq->scheduleFn(next, eq->now() + 1, "chain");
    }
};

struct Periodic : Event
{
    Periodic() : Event("periodic") {}

    void
    process() override
    {
        if (*remaining == 0)
            return;
        --*remaining;
        eq->schedule(this, eq->now() + 1);
    }

    EventQueue *eq = nullptr;
    std::uint64_t *remaining = nullptr;
};

struct Section
{
    const char *name;
    std::uint64_t events;
    double secs;
    double eps; // events per second
};

Section
benchScheduleFire(std::uint64_t n)
{
    EventQueue eq;
    std::uint64_t remaining = n;
    const auto t0 = std::chrono::steady_clock::now();
    constexpr unsigned kInFlight = 64;
    for (unsigned i = 0; i < kInFlight; ++i)
        eq.scheduleFn(Chain{&eq, &remaining, {i, 0, 0, 0, 0}},
                      eq.now() + 1, "chain");
    eq.run();
    const double s = seconds(t0);
    return {"schedule_fire", n, s, n / s};
}

Section
benchEventFire(std::uint64_t n)
{
    EventQueue eq;
    std::uint64_t remaining = n;
    std::vector<Periodic> evs(64);
    const auto t0 = std::chrono::steady_clock::now();
    for (auto &ev : evs) {
        ev.eq = &eq;
        ev.remaining = &remaining;
        eq.schedule(&ev, eq.now() + 1);
    }
    eq.run();
    const double s = seconds(t0);
    return {"event_fire", n, s, n / s};
}

Section
benchScheduleCancel(std::uint64_t n)
{
    EventQueue eq;
    constexpr std::uint64_t kBatch = 1024;
    const std::uint64_t rounds = n / kBatch;
    std::vector<decltype(eq.scheduleFn([] {}, 0))> handles(kBatch);
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t i = 0; i < kBatch; ++i)
            handles[i] = eq.scheduleFn([&sink] { ++sink; },
                                       eq.now() + 1000 + i, "churn");
        for (std::uint64_t i = 0; i < kBatch; ++i)
            eq.cancelFn(handles[i]);
    }
    eq.run();
    const double s = seconds(t0);
    const std::uint64_t pairs = rounds * kBatch;
    return {"schedule_cancel", pairs, s, pairs / s};
}

Section
benchReschedule(std::uint64_t n)
{
    EventQueue eq;
    std::uint64_t remaining = 0; // no self-rescheduling here
    std::vector<Periodic> evs(16);
    for (auto &ev : evs) {
        ev.eq = &eq;
        ev.remaining = &remaining;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n; ++i)
        eq.reschedule(&evs[i % evs.size()], i + 1);
    eq.run();
    const double s = seconds(t0);
    return {"reschedule", n, s, n / s};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("engine", argc, argv);

    std::uint64_t n = std::getenv("FUGU_QUICK") ? 200000 : 2000000;
    if (const char *env = std::getenv("FUGU_BENCH_N")) {
        const long long v = std::atoll(env);
        if (v > 0)
            n = static_cast<std::uint64_t>(v);
    }
    report.meta("events_per_section", n);
    report.meta("in_flight", std::uint64_t{64});
    report.meta("units", "host events/sec");

    std::printf("Event-kernel throughput (%llu events/section)\n",
                static_cast<unsigned long long>(n));
    std::printf("%-16s  %12s  %8s  %14s\n", "section", "events",
                "secs", "events/sec");
    std::printf("%-16s  %12s  %8s  %14s\n", "----------------",
                "------------", "--------", "--------------");

    const Section sections[] = {
        benchScheduleFire(n),
        benchEventFire(n),
        benchScheduleCancel(n),
        benchReschedule(n),
    };
    for (const Section &s : sections) {
        std::printf("%-16s  %12llu  %8.3f  %14.0f\n", s.name,
                    static_cast<unsigned long long>(s.events), s.secs,
                    s.eps);
        report.row({{"section", s.name},
                    {"events", s.events},
                    {"secs", s.secs},
                    {"events_per_sec", s.eps}});
    }
    return 0;
}
