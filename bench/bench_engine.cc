/**
 * @file
 * Pure event-kernel throughput microbench: no simulated machine, just
 * the EventQueue hot paths every experiment is built from. Measures
 * host events/sec for:
 *
 *  - schedule/fire  : chained one-shot scheduleFn lambdas with a
 *    realistic (~56-byte) capture, 64 in flight;
 *  - event/fire     : intrusive Event subclasses self-rescheduling
 *    from process(), the Cpu::spend shape;
 *  - schedule/cancel: scheduleFn followed by cancelFn via handles;
 *  - reschedule     : periodic-event reschedule churn, which also
 *    exercises stale-entry compaction (the seed kernel's heap grew by
 *    one dead entry per reschedule, forever).
 *
 * Scale with engine.events / FUGU_BENCH_N (default 2,000,000 events
 * per section, 200,000 under FUGU_QUICK). Writes BENCH_engine.json
 * with --json.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/benchmain.hh"
#include "net/network.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

double
seconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Fired callable that keeps the chain going. The padding mimics the
 * simulator's real captures (the network's delivery lambda carries a
 * whole Packet, ~72 bytes), so the bench measures the capture-carrying
 * path, not an empty-lambda special case.
 */
struct Chain
{
    EventQueue *eq;
    std::uint64_t *remaining;
    std::uint64_t pad[5];

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        Chain next = *this;
        next.pad[0] ^= *remaining; // keep the payload live
        eq->scheduleFn(next, eq->now() + 1, "chain");
    }
};

/**
 * Chain twin with a runtime-gated trace point in the hot loop. The
 * recorder stays null, so this measures the full cost of tracing
 * support when it is disabled at runtime: one pointer test per event.
 * Chain itself is the compiled-out baseline (no trace statement);
 * both captures are 56 bytes so the schedule path is identical.
 */
struct ChainGated
{
    EventQueue *eq;
    std::uint64_t *remaining;
    trace::Recorder *tracer;
    std::uint64_t pad[4];

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        FUGU_TRACE(tracer, 0, trace::Type::Inject, *remaining);
        ChainGated next = *this;
        next.pad[0] ^= *remaining; // keep the payload live
        eq->scheduleFn(next, eq->now() + 1, "chain");
    }
};

struct Periodic : Event
{
    Periodic() : Event("periodic") {}

    void
    process() override
    {
        if (*remaining == 0)
            return;
        --*remaining;
        eq->schedule(this, eq->now() + 1);
    }

    EventQueue *eq = nullptr;
    std::uint64_t *remaining = nullptr;
};

struct Section
{
    const char *name;
    std::uint64_t events;
    double secs;
    double eps; // events per second
};

Section
benchScheduleFire(std::uint64_t n)
{
    EventQueue eq;
    std::uint64_t remaining = n;
    const auto t0 = std::chrono::steady_clock::now();
    constexpr unsigned kInFlight = 64;
    for (unsigned i = 0; i < kInFlight; ++i)
        eq.scheduleFn(Chain{&eq, &remaining, {i, 0, 0, 0, 0}},
                      eq.now() + 1, "chain");
    eq.run();
    const double s = seconds(t0);
    return {"schedule_fire", n, s, n / s};
}

Section
benchScheduleFireGated(std::uint64_t n)
{
    EventQueue eq;
    std::uint64_t remaining = n;
    const auto t0 = std::chrono::steady_clock::now();
    constexpr unsigned kInFlight = 64;
    for (unsigned i = 0; i < kInFlight; ++i)
        eq.scheduleFn(ChainGated{&eq, &remaining, nullptr, {i, 0, 0, 0}},
                      eq.now() + 1, "chain");
    eq.run();
    const double s = seconds(t0);
    return {"schedule_fire_gated", n, s, n / s};
}

/**
 * Disabled-tracing overhead: @p reps back-to-back pairs of the plain
 * chain (tracing compiled out) and the runtime-gated chain, after one
 * discarded warmup pair. Pair order alternates every rep — on noisy
 * hosts, periodic interference (timer ticks, cgroup throttling) can
 * alias with the run cadence and systematically tax whichever side
 * runs second, so a fixed order reports phantom overheads far above
 * the real cost of one predicted branch. The reported overhead is the
 * *minimum* per-pair slowdown: a real gate regression slows every
 * pair by the same factor and survives the min, while host noise —
 * which hits pairs at random — does not. (Median and best-of
 * reductions both still tripped on double-digit phantom overheads on
 * busy CI hosts.) @return the emitted BENCH row's overhead; fails the
 * process when the gate costs more than 2%.
 */
int
benchTraceOverhead(BenchReport &report, std::uint64_t n, unsigned reps)
{
    // 10ms runs alias badly with timer-tick-scale interference; keep
    // each measured run near ~50ms however the section sizes were
    // scaled down.
    n = std::max<std::uint64_t>(n, 1000000);
    benchScheduleFire(n);
    benchScheduleFireGated(n);
    double base_eps = 0, gated_eps = 0;
    std::vector<double> pair_pct(reps);
    for (unsigned r = 0; r < reps; ++r) {
        double base, gated;
        if (r % 2 == 0) {
            base = benchScheduleFire(n).eps;
            gated = benchScheduleFireGated(n).eps;
        } else {
            gated = benchScheduleFireGated(n).eps;
            base = benchScheduleFire(n).eps;
        }
        base_eps = std::max(base_eps, base);
        gated_eps = std::max(gated_eps, gated);
        pair_pct[r] = 100.0 * (base - gated) / base;
    }
    // Reported signed: a negative value (gated side faster) is real
    // information about host noise floor; clamping belongs only to
    // the pass/fail comparison below.
    const double overhead_pct =
        *std::min_element(pair_pct.begin(), pair_pct.end());
    constexpr double kLimitPct = 2.0;

    std::printf("%-20s  base %14.0f  gated %14.0f  overhead %.2f%% "
                "(limit %.0f%%)\n",
                "trace_overhead", base_eps, gated_eps, overhead_pct,
                kLimitPct);
    report.row({{"section", "trace_overhead_disabled"},
                {"events", n},
                {"baseline_eps", base_eps},
                {"gated_eps", gated_eps},
                {"overhead_pct", overhead_pct},
                {"limit_pct", kLimitPct}});
    if (std::max(0.0, overhead_pct) >= kLimitPct) {
        std::fprintf(stderr,
                     "FAIL: runtime-disabled tracing costs %.2f%% "
                     "schedule/fire throughput (limit %.0f%%)\n",
                     overhead_pct, kLimitPct);
        return 1;
    }
    return 0;
}

/**
 * schedule/fire with batched same-cycle draining disabled: the
 * one-pop-per-fire fallback. Kept as a gated section so the fallback
 * path cannot silently rot, and so the batching win stays visible in
 * the report (batched/unbatched ratio on the same host).
 */
Section
benchScheduleFireNoBatch(std::uint64_t n)
{
    EventQueue eq;
    eq.setBatchFire(false);
    std::uint64_t remaining = n;
    const auto t0 = std::chrono::steady_clock::now();
    constexpr unsigned kInFlight = 64;
    for (unsigned i = 0; i < kInFlight; ++i)
        eq.scheduleFn(Chain{&eq, &remaining, {i, 0, 0, 0, 0}},
                      eq.now() + 1, "chain");
    eq.run();
    const double s = seconds(t0);
    return {"schedule_fire_nobatch", n, s, n / s};
}

/**
 * End-to-end packet path: inject max-size messages on an 8-node mesh,
 * all pairs, and carry each through latency modelling, the arrival
 * ring and sink delivery. Exercises the inline payload, the flat
 * channel map and the pooled arrival events together — the messaging
 * fabric's per-message cost with no simulated software on top.
 * events = messages delivered.
 */
Section
benchPacketPath(std::uint64_t n)
{
    struct CountSink : net::NetSink
    {
        std::uint64_t delivered = 0;
        bool
        tryDeliver(net::Packet &&) override
        {
            ++delivered;
            return true;
        }
    };

    constexpr unsigned kNodes = 8;
    EventQueue eq;
    StatGroup stats("bench");
    net::Network net(eq, net::NetworkConfig{}, "net", &stats);
    CountSink sinks[kNodes];
    for (NodeId node = 0; node < kNodes; ++node)
        net.attach(node, &sinks[node]);

    net::Packet proto;
    proto.handler = 7;
    for (unsigned i = 0; i < net::kMaxPayloadWords; ++i)
        proto.payload.push_back(i);

    std::uint64_t sent = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (sent < n) {
        for (NodeId s = 0; s < kNodes; ++s)
            for (NodeId d = 0; d < kNodes; ++d) {
                while (!net.canAccept(s, d, net::kMaxMessageWords))
                    eq.runOne();
                net::Packet p = proto;
                p.src = s;
                p.dst = d;
                net.send(std::move(p));
                ++sent;
            }
        eq.run();
    }
    const double s = seconds(t0);
    return {"packet_path", sent, s, sent / s};
}

Section
benchEventFire(std::uint64_t n)
{
    EventQueue eq;
    std::uint64_t remaining = n;
    std::vector<Periodic> evs(64);
    const auto t0 = std::chrono::steady_clock::now();
    for (auto &ev : evs) {
        ev.eq = &eq;
        ev.remaining = &remaining;
        eq.schedule(&ev, eq.now() + 1);
    }
    eq.run();
    const double s = seconds(t0);
    return {"event_fire", n, s, n / s};
}

Section
benchScheduleCancel(std::uint64_t n)
{
    EventQueue eq;
    constexpr std::uint64_t kBatch = 1024;
    const std::uint64_t rounds = n / kBatch;
    std::vector<decltype(eq.scheduleFn([] {}, 0))> handles(kBatch);
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t i = 0; i < kBatch; ++i)
            handles[i] = eq.scheduleFn([&sink] { ++sink; },
                                       eq.now() + 1000 + i, "churn");
        for (std::uint64_t i = 0; i < kBatch; ++i)
            eq.cancelFn(handles[i]);
    }
    eq.run();
    const double s = seconds(t0);
    const std::uint64_t pairs = rounds * kBatch;
    return {"schedule_cancel", pairs, s, pairs / s};
}

Section
benchReschedule(std::uint64_t n)
{
    EventQueue eq;
    std::uint64_t remaining = 0; // no self-rescheduling here
    std::vector<Periodic> evs(16);
    for (auto &ev : evs) {
        ev.eq = &eq;
        ev.remaining = &remaining;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n; ++i)
        eq.reschedule(&evs[i % evs.size()], i + 1);
    eq.run();
    const double s = seconds(t0);
    return {"reschedule", n, s, n / s};
}

} // namespace

int
main(int argc, char **argv)
{
    // Env shorthands resolve into the registered default, so
    // engine.events set from a scenario or --set still wins.
    std::uint64_t n = std::getenv("FUGU_QUICK") ? 200000 : 2000000;
    if (const char *env = std::getenv("FUGU_BENCH_N")) {
        const long long v = std::atoll(env);
        if (v > 0)
            n = static_cast<std::uint64_t>(v);
    }
    unsigned reps = 8;

    BenchSpec spec;
    spec.name = "engine";
    spec.defaults = [](BenchContext &ctx) {
        // Only used for the --trace exemplar run below.
        ctx.machine.nodes = 2;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("engine");
        b.item("events", n, "events per measured section");
        b.item("reps", reps,
               "base/gated pairs in the trace-overhead gate");
    };
    spec.body = [&](BenchContext &ctx) {
        ctx.report.meta("events_per_section", n);
        ctx.report.meta("in_flight", std::uint64_t{64});
        ctx.report.meta("units", "host events/sec");

        std::printf("Event-kernel throughput (%llu events/section)\n",
                    static_cast<unsigned long long>(n));
        std::printf("%-22s  %12s  %8s  %14s\n", "section", "events",
                    "secs", "events/sec");
        std::printf("%-22s  %12s  %8s  %14s\n",
                    "----------------------", "------------",
                    "--------", "--------------");

        const Section sections[] = {
            benchScheduleFire(n),
            benchScheduleFireNoBatch(n),
            benchEventFire(n),
            benchScheduleCancel(n),
            benchReschedule(n),
            benchPacketPath(n / 4),
        };
        for (const Section &s : sections) {
            std::printf("%-22s  %12llu  %8.3f  %14.0f\n", s.name,
                        static_cast<unsigned long long>(s.events),
                        s.secs, s.eps);
            ctx.report.row({{"section", s.name},
                            {"events", s.events},
                            {"secs", s.secs},
                            {"events_per_sec", s.eps}});
        }

        if (!ctx.tracePath.empty()) {
            // This bench has no machine of its own; trace a small
            // two-node barrier run so --trace works uniformly.
            runJob(ctx.machine, ctx.workloads.factory("barrier"),
                   /*with_null=*/false, /*gang=*/false, ctx.gang,
                   ctx.maxCycles, ctx.tracePath);
        }

        return benchTraceOverhead(ctx.report, n, reps);
    };
    return benchMain(spec, argc, argv);
}
