/**
 * @file
 * Reproduces Table 4: cycle counts to send and receive a null message
 * at kernel level (unprotected), with hardware atomicity, and with
 * software-emulated atomicity; interrupt and polling receive paths.
 *
 * Method: a two-node machine; the receiver's thread is parked so the
 * entire receive path is the only activity on its Cpu, and the cost is
 * read as the node's busy (user+kernel) cycle delta. All costs emerge
 * from the modelled code paths (core::CostModel), so this bench also
 * verifies that the implementation charges exactly the paper's
 * per-stage structure (and --set costs.* moves the measured numbers).
 *
 * Doubles as a google-benchmark binary (host performance of the
 * simulator paths); unrecognized flags pass through to its parser.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/common.hh"
#include "harness/benchmain.hh"
#include "trace/export.hh"

using namespace fugu;
using namespace fugu::glaze;
using namespace fugu::harness;
using exec::CoTask;

namespace
{

/** Effective base config, shared with the google-benchmark loops. */
MachineConfig gBase;

struct PathCosts
{
    double send = 0;
    double recvInterrupt = 0;
    double recvPoll = 0;
};

double
busy(Machine &m, NodeId n)
{
    return m.node(n).cpu.stats.userCycles.value() +
           m.node(n).cpu.stats.kernelCycles.value();
}

CoTask<void>
parkedReceiver(Process &p)
{
    p.port().setHandler(
        0, [](core::UdmPort &port, NodeId) -> CoTask<void> {
            co_await port.dispose();
        });
    rt::CondVar cv(p.threads());
    co_await cv.wait(); // parked forever
}

CoTask<void>
oneUserSend(Process &p, double *send_cost)
{
    const double before = p.cpu().userCycles();
    co_await p.port().send(1, 0);
    *send_cost = p.cpu().userCycles() - before;
}

exec::Task
oneKernelSend(Kernel *k, double *send_cost)
{
    const double before = k->cpu().stats.kernelCycles.value();
    co_await k->kernelSend(1, kOsNull);
    *send_cost = k->cpu().stats.kernelCycles.value() - before;
}

/** Interrupt-path costs for user messages (Hard/Soft atomicity). */
PathCosts
measureUser(core::AtomicityMode mode,
            const std::string &trace_path = "")
{
    MachineConfig cfg = gBase;
    cfg.atomicity = mode;
    cfg.trace.enabled = !trace_path.empty();
    Machine m(cfg);
    PathCosts out;
    Job *job = m.addJob("t4", [&out](Process &p) -> CoTask<void> {
        if (p.node() == 1)
            return parkedReceiver(p);
        return [](Process &) -> CoTask<void> { co_return; }(p);
    });
    m.installJob(job);
    m.run(); // settle: receiver registered and parked

    // One null-message send, measured on the sender.
    job->procs[0]->threads().spawn(
        "send", rt::kPrioNormal,
        [](Process *p, double *cost) -> exec::Task {
            co_await oneUserSend(*p, cost);
        }(job->procs[0], &out.send));
    const double rx_before = busy(m, 1);
    m.run();
    out.recvInterrupt = busy(m, 1) - rx_before;
    if (!trace_path.empty()) {
        std::string err;
        if (!trace::writeTraceFiles(trace_path, m.tracer()->buffer(),
                                    &err))
            std::fprintf(stderr, "trace write failed: %s\n",
                         err.c_str());
    }
    return out;
}

CoTask<void>
pollingReceiver(Process &p, double *poll_cost, bool *got)
{
    p.port().setHandler(
        0, [](core::UdmPort &port, NodeId) -> CoTask<void> {
            co_await port.dispose();
        });
    co_await p.port().beginAtomic();
    // Let the message arrive and sit at the head (interrupts are
    // disabled), then measure one successful poll.
    while (!p.port().messageAvailable())
        co_await p.compute(100);
    const double before = p.cpu().userCycles();
    const bool ok = co_await p.port().poll();
    *poll_cost = p.cpu().userCycles() - before;
    *got = ok;
    co_await p.port().endAtomic();
}

double
measurePolling(std::uint64_t polling_timeout)
{
    MachineConfig cfg = gBase;
    cfg.ni.atomicityTimeout =
        polling_timeout; // keep revocation out of frame
    Machine m(cfg);
    double poll_cost = 0;
    bool got = false;
    Job *job = m.addJob("t4p", [&](Process &p) -> CoTask<void> {
        if (p.node() == 1)
            return pollingReceiver(p, &poll_cost, &got);
        return [](Process &pp) -> CoTask<void> {
            co_await pp.port().send(1, 0);
        }(p);
    });
    m.installJob(job);
    m.run();
    fugu_assert(got, "polling bench never received");
    // Subtract the final spin check that found the message pending
    // (the 100-cycle pacing quantum runs before the measured poll).
    return poll_cost;
}

/** Kernel-to-kernel messaging (Table 4, first column). */
PathCosts
measureKernel()
{
    MachineConfig cfg = gBase;
    cfg.atomicity = core::AtomicityMode::Kernel;
    Machine m(cfg);
    PathCosts out;
    m.run();
    const double rx_before = busy(m, 1);
    auto sender = m.node(0).cpu.spawn(
        "ksend", /*kernel=*/true,
        oneKernelSend(&m.node(0).kernel, &out.send));
    m.node(0).cpu.switchTo(sender);
    m.run();
    out.recvInterrupt = busy(m, 1) - rx_before;
    return out;
}

void
printTable(BenchReport &report, const std::string &trace_path,
           std::uint64_t polling_timeout)
{
    const PathCosts kernel = measureKernel();
    // The traced run is the fast-path exemplar: one send, one
    // interrupt receive, hardware atomicity.
    const PathCosts hard =
        measureUser(core::AtomicityMode::Hard, trace_path);
    const PathCosts soft = measureUser(core::AtomicityMode::Soft);
    const double poll = measurePolling(polling_timeout);

    TablePrinter t({"Item", "kernel", "hard atom", "soft atom",
                    "paper(k/h/s)"},
                   {28, 10, 10, 10, 14});
    std::printf("Table 4: cycles to send and receive a null message\n");
    t.printHeader();
    t.printRow({"send total", TablePrinter::num(kernel.send),
                TablePrinter::num(hard.send),
                TablePrinter::num(soft.send), "7/7/7"});
    t.printRow({"interrupt receive total",
                TablePrinter::num(kernel.recvInterrupt),
                TablePrinter::num(hard.recvInterrupt),
                TablePrinter::num(soft.recvInterrupt), "54/87/115"});
    t.printRow({"polling receive total", "n.a.",
                TablePrinter::num(poll), "n.a.", "9/9/-"});

    report.meta("units", "simulated cycles");
    report.row({{"item", "send_total"},
                {"kernel", kernel.send},
                {"hard_atomicity", hard.send},
                {"soft_atomicity", soft.send}});
    report.row({{"item", "interrupt_receive_total"},
                {"kernel", kernel.recvInterrupt},
                {"hard_atomicity", hard.recvInterrupt},
                {"soft_atomicity", soft.recvInterrupt}});
    report.row({{"item", "polling_receive_total"},
                {"hard_atomicity", poll}});
}

void
BM_InterruptReceiveHard(benchmark::State &state)
{
    for (auto _ : state) {
        PathCosts c = measureUser(core::AtomicityMode::Hard);
        benchmark::DoNotOptimize(c);
        state.counters["sim_cycles"] = c.recvInterrupt;
    }
}
BENCHMARK(BM_InterruptReceiveHard);

void
BM_KernelReceive(benchmark::State &state)
{
    for (auto _ : state) {
        PathCosts c = measureKernel();
        benchmark::DoNotOptimize(c);
        state.counters["sim_cycles"] = c.recvInterrupt;
    }
}
BENCHMARK(BM_KernelReceive);

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t pollingTimeout = 1u << 20;

    BenchSpec spec;
    spec.name = "table4_fastpath";
    spec.passthroughArgs = true; // google-benchmark flags
    spec.defaults = [](BenchContext &ctx) { ctx.machine.nodes = 2; };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("table4");
        b.item("polling_timeout", pollingTimeout,
               "atomicity timeout for the polling measurement (large "
               "enough to keep revocation out of frame)",
               "cycles");
    };
    spec.body = [&](BenchContext &ctx) {
        gBase = ctx.machine;
        printTable(ctx.report, ctx.tracePath, pollingTimeout);
        ::benchmark::Initialize(&ctx.argc, ctx.argv);
        ::benchmark::RunSpecifiedBenchmarks();
        return 0;
    };
    return benchMain(spec, argc, argv);
}
