/**
 * @file
 * Adversarial-neighbor isolation grid: gang-schedule a victim tenant
 * against each adversary (NI-queue hog, overflow abuser, atomicity
 * squatter, covert tx/rx pair) on every NI buffering backend and
 * offered-load scale, with the invariant checker's starvation and
 * frame-share judges armed by the scenario, and report the victim's
 * fast- and buffered-path p99 inflation over the adversary-free
 * baseline plus an upper bound on the covert pair's bit rate.
 *
 * A healthy two-case-delivery implementation keeps every cell at
 * zero violations: adversaries may inflate the victim's tail latency
 * and force traffic onto the buffered path, but FIFO order, content
 * transparency, protection, conservation — and, with the limits set,
 * bounded starvation and frame-pool share — must all hold. The
 * process exits nonzero on any violation or wedged cell, so CI runs
 * it as a single pass/fail gate; host-throughput perf rows for the
 * perf gate are only emitted under --set iso.perf=true, keeping the
 * default output deterministic.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/benchmain.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

/** Split a comma-separated list, trimming blanks and empty fields. */
std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        const auto b = tok.find_first_not_of(" \t");
        const auto e = tok.find_last_not_of(" \t");
        if (b != std::string::npos)
            out.push_back(tok.substr(b, e - b + 1));
    }
    return out;
}

core::NiBackendKind
backendFromName(const std::string &name)
{
    if (name == "static_fifo")
        return core::NiBackendKind::StaticFifo;
    if (name == "damq")
        return core::NiBackendKind::Damq;
    if (name == "zerocopy_remap")
        return core::NiBackendKind::ZerocopyRemap;
    fugu_fatal("unknown backend '", name,
               "' (expected static_fifo, damq or zerocopy_remap)");
}

/** Same storm classes and base rates as bench_stress. */
void
applyFaultClass(sim::FaultConfig &f, const std::string &cls,
                double intensity)
{
    if (cls == "none" || cls.empty())
        return;
    f.enabled = true;
    if (cls == "jitter") {
        f.delayJitterProb = 0.30 * intensity;
    } else if (cls == "inqfull") {
        f.inputFullProb = 0.05 * intensity;
    } else if (cls == "outqfull") {
        f.outputFullProb = 0.30 * intensity;
    } else if (cls == "framedeny") {
        f.frameDenyProb = 0.20 * intensity;
    } else if (cls == "divert") {
        f.divertStormProb = 0.50 * intensity;
    } else if (cls == "timeout") {
        f.atomTimeoutProb = 0.50 * intensity;
    } else if (cls == "pagefault") {
        f.pageFaultProb = 0.10 * intensity;
    } else if (cls == "mixed") {
        f.delayJitterProb = 0.10 * intensity;
        f.inputFullProb = 0.02 * intensity;
        f.outputFullProb = 0.10 * intensity;
        f.frameDenyProb = 0.05 * intensity;
        f.divertStormProb = 0.15 * intensity;
        f.atomTimeoutProb = 0.15 * intensity;
        f.pageFaultProb = 0.03 * intensity;
    } else {
        fugu_fatal("unknown fault class '", cls, "'");
    }
}

/** Scale the adversaries' pressure by the cell's load factor. */
Workloads
loadedWorkloads(const Workloads &base, double load)
{
    Workloads wl = base;
    auto denser = [load](Cycle &gap) {
        gap = std::max<Cycle>(
            1, static_cast<Cycle>(static_cast<double>(gap) / load));
    };
    denser(wl.hog.gap);
    denser(wl.abuser.gap);
    wl.covert.burst = std::max(
        1u, static_cast<unsigned>(wl.covert.burst * load));
    wl.squatter.holdCycles = std::max<Cycle>(
        1, static_cast<Cycle>(wl.squatter.holdCycles * load));
    return wl;
}

double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string victimsCsv = "barrier";
    std::string adversariesCsv = "none,hog,abuser,squatter,covert";
    std::string backendsCsv = "static_fifo,damq,zerocopy_remap";
    std::string loadsCsv = "1.0";
    std::string faultClass = "none";
    double faultIntensity = 1.0;
    bool perf = false;
    unsigned perfReps = 3;

    BenchSpec spec;
    spec.name = "isolation";
    spec.defaults = [](BenchContext &ctx) {
        ctx.machine.nodes = 4;
        ctx.gang.quantum = 20000;
        ctx.gang.skew = 0.3;
        ctx.trials = 1;
        // A victim long enough to overlap every adversary's attack.
        ctx.workloads.barrier.barriers = 400;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("iso");
        b.item("victims", victimsCsv,
               "comma-separated victim workloads");
        b.item("adversaries", adversariesCsv,
               "comma-separated adversaries (none, hog, abuser, "
               "squatter, covert)");
        b.item("backends", backendsCsv,
               "comma-separated ni.backend values for the grid");
        b.item("loads", loadsCsv,
               "comma-separated adversary pressure multipliers");
        b.item("fault_class", faultClass,
               "layer a bench_stress fault storm over every cell "
               "(none, jitter, ..., mixed)");
        b.item("fault_intensity", faultIntensity,
               "scale factor on the storm's base rates");
        b.item("perf", perf,
               "also emit host events/sec rows for the perf gate "
               "(nondeterministic; off for replay identity)");
        b.item("perf_reps", perfReps,
               "perf: runs per backend; the fastest is reported");
    };
    spec.body = [&](BenchContext &ctx) {
        const std::vector<std::string> victims = splitCsv(victimsCsv);
        const std::vector<std::string> advs = splitCsv(adversariesCsv);
        const std::vector<std::string> backends =
            splitCsv(backendsCsv);
        const std::vector<std::string> loadNames = splitCsv(loadsCsv);
        fugu_assert(!victims.empty() && !advs.empty() &&
                        !backends.empty() && !loadNames.empty(),
                    "iso.victims/adversaries/backends/loads must be "
                    "non-empty");
        std::vector<double> loads;
        for (const auto &l : loadNames)
            loads.push_back(std::stod(l));

        struct Cell
        {
            std::string victim;
            std::string adv;
            std::string backend;
            double load;
        };
        std::vector<Cell> cells;
        for (const auto &victim : victims)
            for (const auto &backend : backends)
                for (double load : loads)
                    for (const auto &adv : advs)
                        cells.push_back({victim, adv, backend, load});

        std::vector<TenantRunStats> results(cells.size());
        std::vector<apps::CovertResult> covert(cells.size());
        // Index of the victim tenant within each cell's job list.
        // runTenants runs until jobs[0] completes, and the covert
        // prober only writes its decode when it finishes — so covert
        // cells lead with covert_rx and carry the victim second.
        std::vector<std::size_t> vicIdx(cells.size(), 0);
        parallelFor(cells.size(), [&](std::size_t i) {
            const Cell &c = cells[i];
            glaze::MachineConfig mcfg = ctx.machine;
            mcfg.ni.backend = backendFromName(c.backend);
            applyFaultClass(mcfg.fault, faultClass, faultIntensity);
            const Workloads wl = loadedWorkloads(ctx.workloads, c.load);
            std::vector<std::pair<std::string, glaze::AppBody>> jobs;
            if (c.adv == "covert") {
                apps::CovertAppConfig cc = wl.covert;
                cc.seed = mcfg.seed;
                jobs.emplace_back(
                    "covert_rx",
                    apps::makeCovertRxApp(mcfg.nodes, cc,
                                          &covert[i]));
                jobs.emplace_back(
                    "victim",
                    wl.factory(c.victim)(mcfg.nodes, mcfg.seed));
                jobs.emplace_back("covert_tx",
                                  wl.factory("covert_tx")(mcfg.nodes,
                                                          mcfg.seed));
                vicIdx[i] = 1;
            } else {
                jobs.emplace_back(
                    "victim",
                    wl.factory(c.victim)(mcfg.nodes, mcfg.seed));
                if (c.adv == "none")
                    // Baseline keeps the same two-job gang shape, so
                    // the victim's machine share is comparable.
                    jobs.emplace_back("null", apps::makeNullApp());
                else
                    jobs.emplace_back(
                        c.adv,
                        wl.factory(c.adv)(mcfg.nodes, mcfg.seed));
            }
            results[i] = runTenants(mcfg, std::move(jobs), ctx.gang,
                                    ctx.maxCycles);
        });

        // Adversary-free baselines, keyed per (victim, backend, load).
        std::map<std::string, const trace::Summary::GidStats *> base;
        for (std::size_t i = 0; i < cells.size(); ++i)
            if (cells[i].adv == "none" && results[i].completed)
                base[cells[i].victim + "/" + cells[i].backend + "/" +
                     std::to_string(cells[i].load)] =
                    &results[i].tenants[0].trace;

        std::printf("Isolation grid: %zu victim(s) x %zu "
                    "adversarie(s) x %zu backend(s) x %zu load(s), "
                    "storm=%s\n",
                    victims.size(), advs.size(), backends.size(),
                    loads.size(), faultClass.c_str());
        TablePrinter t({"Victim", "Adversary", "Backend", "Load",
                        "fast-p99", "buf-p99", "inflF", "inflB",
                        "%buf", "bits/Mcy", "viol"},
                       {8, 9, 14, 5, 9, 9, 6, 6, 6, 8, 5});
        t.printHeader();
        ctx.report.meta("nodes", ctx.machine.nodes);
        ctx.report.meta("fault_class", faultClass);

        double totalViolations = 0;
        bool allCompleted = true;
        const TenantStats noStats;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            const TenantRunStats &r = results[i];
            totalViolations += r.violations;
            allCompleted = allCompleted && r.completed;
            const TenantStats &vic = r.tenants.size() > vicIdx[i]
                                         ? r.tenants[vicIdx[i]]
                                         : noStats;
            const double fastP99 =
                static_cast<double>(vic.trace.fastLatency.p99);
            const double bufP99 =
                static_cast<double>(vic.trace.bufferedLatency.p99);
            auto bit = base.find(c.victim + "/" + c.backend + "/" +
                                 std::to_string(c.load));
            const trace::Summary::GidStats *b =
                bit == base.end() ? nullptr : bit->second;
            auto inflation = [](double now, Cycle was) {
                return was ? now / static_cast<double>(was) : 0.0;
            };
            const double inflF =
                b ? inflation(fastP99, b->fastLatency.p99) : 0.0;
            const double inflB =
                b ? inflation(bufP99, b->bufferedLatency.p99) : 0.0;

            // Covert-channel bit-rate upper bound: treat the decode
            // as a binary symmetric channel at the observed error
            // rate; capacity per window over the symbol period.
            double bitsPerMcycle = 0;
            if (c.adv == "covert" && covert[i].windows) {
                const double err = 1.0 - covert[i].accuracy();
                const double cap =
                    err < 0.5 ? 1.0 - binaryEntropy(err) : 0.0;
                bitsPerMcycle =
                    cap * 1e6 /
                    static_cast<double>(ctx.workloads.covert.windowCycles);
            }

            t.printRow(
                {c.victim, c.adv, c.backend,
                 TablePrinter::num(c.load, 2),
                 r.completed ? TablePrinter::num(fastP99) : "STUCK",
                 TablePrinter::num(bufP99),
                 TablePrinter::num(inflF, 2),
                 TablePrinter::num(inflB, 2),
                 TablePrinter::num(vic.trace.bufferedPct(), 1),
                 c.adv == "covert" ? TablePrinter::num(bitsPerMcycle, 2)
                                   : "-",
                 TablePrinter::num(r.violations)});
            ctx.report.row(
                {{"victim", c.victim},
                 {"adversary", c.adv},
                 {"backend", c.backend},
                 {"load", c.load},
                 {"completed", r.completed},
                 {"fast_extracts", vic.trace.fast},
                 {"buf_extracts", vic.trace.buffered},
                 {"fast_p99", std::uint64_t{vic.trace.fastLatency.p99}},
                 {"buf_p99",
                  std::uint64_t{vic.trace.bufferedLatency.p99}},
                 {"fast_inflation", inflF},
                 {"buf_inflation", inflB},
                 {"buffered_pct", vic.trace.bufferedPct()},
                 {"service_gap_max",
                  std::uint64_t{vic.iso.serviceGapMax}},
                 {"frame_share_max", vic.iso.frameShareMax},
                 {"hol_bypasses", r.holBypasses},
                 {"covert_accuracy", covert[i].accuracy()},
                 {"covert_bits_per_mcycle", bitsPerMcycle},
                 {"violations", r.violations}});
        }

        if (perf) {
            // Host-throughput rows for the CI perf gate: the abuser
            // pairing (the heaviest mode-transition churn) once per
            // backend, best of perf_reps runs. Sizes are scaled well
            // past the grid's (the grid favors a fast default run;
            // the gate needs each rep long enough that host noise
            // stays under the regression threshold).
            Workloads pw = ctx.workloads;
            pw.barrier.barriers *= 16;
            pw.abuser.messages *= 16;
            for (const auto &backend : backends) {
                glaze::MachineConfig mcfg = ctx.machine;
                mcfg.ni.backend = backendFromName(backend);
                // The oversized abuser legitimately starves itself
                // far past any sane service-gap limit; perf rows
                // measure host speed, not isolation, so the judges
                // stay off here (the grid above runs them armed).
                mcfg.check.serviceGapLimit = 0;
                mcfg.check.frameShareLimit = 0.0;
                double secs = 0;
                std::uint64_t events = 0;
                for (unsigned rep = 0; rep < std::max(perfReps, 1u);
                     ++rep) {
                    const auto t0 = std::chrono::steady_clock::now();
                    const TenantRunStats r = runTenants(
                        mcfg,
                        {{"victim", pw.factory("barrier")(
                                        mcfg.nodes, mcfg.seed)},
                         {"abuser", pw.factory("abuser")(
                                        mcfg.nodes, mcfg.seed)}},
                        ctx.gang, ctx.maxCycles);
                    const double s =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    if (!r.completed) {
                        std::fprintf(stderr,
                                     "FAIL: perf run on %s did not "
                                     "complete\n",
                                     backend.c_str());
                        return 1;
                    }
                    if (rep == 0 || s < secs) {
                        secs = s;
                        events = r.events;
                    }
                }
                const double eps =
                    secs > 0 ? static_cast<double>(events) / secs : 0;
                std::printf("perf %-14s  %.3fs  %llu events  "
                            "%.0f events/sec\n",
                            backend.c_str(), secs,
                            static_cast<unsigned long long>(events),
                            eps);
                ctx.report.row(
                    {{"section", "isolation_" + backend},
                     {"app", "abuser"},
                     {"nodes", ctx.machine.nodes},
                     {"shards", ctx.machine.parShards},
                     {"secs", secs},
                     {"events", events},
                     {"events_per_sec", eps}});
            }
        }

        if (totalViolations > 0) {
            std::printf("\nFAIL: %.0f invariant violation(s)\n",
                        totalViolations);
            return 1;
        }
        if (!allCompleted) {
            std::printf("\nFAIL: at least one cell did not complete "
                        "within the cycle budget\n");
            return 1;
        }
        std::printf("\nPASS: zero invariant violations across the "
                    "isolation grid\n");
        return 0;
    };
    return benchMain(spec, argc, argv);
}
