/**
 * @file
 * Reproduces Figure 7: percentage of messages traversing the buffered
 * path for each application multiprogrammed with a null application,
 * versus decreasing schedule quality (gang-scheduler clock skew).
 *
 * Expected shape (paper): applications with intrinsic synchronization
 * (barrier, and the CRL codes) show an essentially constant, small
 * buffered fraction; enum — many messages, little synchronization —
 * grows roughly linearly with skew. Also reports the maximum physical
 * pages used for buffering (< 7 pages/node in the paper).
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/benchjson.hh"
#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

int
main(int argc, char **argv)
{
    const std::string trace_path = parseTraceFlag(argc, argv);
    BenchReport report("fig7_buffered_fraction", argc, argv);

    Workloads wl;
    wl.paperScale = std::getenv("FUGU_PAPER_SCALE") != nullptr;
    const unsigned trials =
        std::getenv("FUGU_QUICK") ? 1 : 3;

    const double skews[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4};

    // One sweep point per (app, skew). Every point builds private
    // machines, so the whole grid runs on the worker pool and rows
    // print afterwards in sweep order, identical to a serial run.
    struct Point
    {
        std::string app;
        double skew;
    };
    std::vector<Point> points;
    for (const auto &name : Workloads::names())
        for (double skew : skews)
            points.push_back({name, skew});

    std::vector<RunStats> results(points.size());
    parallelFor(points.size(), [&](std::size_t i) {
        glaze::MachineConfig mcfg;
        mcfg.nodes = 8;
        glaze::GangConfig gcfg;
        gcfg.quantum = 100000;
        gcfg.skew = points[i].skew;
        // --trace records the most adverse barrier point (skew 40%).
        const bool traced =
            points[i].app == "barrier" && points[i].skew == 0.4;
        results[i] =
            runTrials(mcfg, wl.factory(points[i].app),
                      /*with_null=*/true, /*gang=*/true, gcfg, trials,
                      100000000000ull,
                      traced ? trace_path : std::string());
    });

    std::printf("Figure 7: %% messages buffered vs schedule skew "
                "(app + null, gang quantum 100k, %u trial(s))\n",
                trials);
    TablePrinter t({"App", "skew", "%buffered", "maxpages", "runtime"},
                   {8, 6, 10, 8, 12});
    t.printHeader();
    report.meta("trials", trials);
    report.meta("nodes", 8u);

    for (std::size_t i = 0; i < points.size(); ++i) {
        const RunStats &r = results[i];
        const double skew = points[i].skew;
        t.printRow({points[i].app,
                    TablePrinter::num(skew * 100, 0) + "%",
                    r.completed ? TablePrinter::num(r.bufferedPct, 2)
                                : "STUCK",
                    TablePrinter::num(r.maxVbufPages),
                    TablePrinter::num(static_cast<double>(r.runtime))});
        report.row({{"app", points[i].app},
                    {"skew", skew},
                    {"completed", r.completed},
                    {"buffered_pct", r.bufferedPct},
                    {"max_vbuf_pages", r.maxVbufPages},
                    {"runtime", std::uint64_t{r.runtime}}});
    }
    return 0;
}
