/**
 * @file
 * Reproduces Figure 7: percentage of messages traversing the buffered
 * path for each application multiprogrammed with a null application,
 * versus decreasing schedule quality (gang-scheduler clock skew).
 *
 * Expected shape (paper): applications with intrinsic synchronization
 * (barrier, and the CRL codes) show an essentially constant, small
 * buffered fraction; enum — many messages, little synchronization —
 * grows roughly linearly with skew. Also reports the maximum physical
 * pages used for buffering (< 7 pages/node in the paper).
 */

#include <cstdio>
#include <vector>

#include "harness/benchmain.hh"

using namespace fugu;
using namespace fugu::harness;

int
main(int argc, char **argv)
{
    std::vector<double> skews{0.0, 0.05, 0.1, 0.2, 0.3, 0.4};

    BenchSpec spec;
    spec.name = "fig7_buffered_fraction";
    spec.defaults = [](BenchContext &ctx) {
        ctx.machine.nodes = 8;
        ctx.gang.quantum = 100000;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("fig7");
        b.list("skews", skews,
               "gang-scheduler clock-skew sweep (fraction of the "
               "quantum)");
    };
    spec.body = [&](BenchContext &ctx) {
        // One sweep point per (app, skew). Every point builds private
        // machines, so the whole grid runs on the worker pool and
        // rows print afterwards in sweep order, identical to a serial
        // run.
        struct Point
        {
            std::string app;
            double skew;
        };
        std::vector<Point> points;
        for (const auto &name : Workloads::names())
            for (double skew : skews)
                points.push_back({name, skew});

        const double worst = skews.empty() ? 0.0 : skews.back();
        std::vector<RunStats> results(points.size());
        parallelFor(points.size(), [&](std::size_t i) {
            glaze::MachineConfig mcfg = ctx.machine;
            glaze::GangConfig gcfg = ctx.gang;
            gcfg.skew = points[i].skew;
            // --trace records the most adverse barrier point.
            const bool traced = points[i].app == "barrier" &&
                                points[i].skew == worst;
            results[i] = runTrials(
                mcfg, ctx.workloads.factory(points[i].app),
                /*with_null=*/true, /*gang=*/true, gcfg, ctx.trials,
                ctx.maxCycles,
                traced ? ctx.tracePath : std::string());
        });

        std::printf(
            "Figure 7: %% messages buffered vs schedule skew "
            "(app + null, gang quantum %llu, %u trial(s))\n",
            static_cast<unsigned long long>(ctx.gang.quantum),
            ctx.trials);
        TablePrinter t(
            {"App", "skew", "%buffered", "maxpages", "runtime"},
            {8, 6, 10, 8, 12});
        t.printHeader();
        ctx.report.meta("trials", ctx.trials);
        ctx.report.meta("nodes", ctx.machine.nodes);

        for (std::size_t i = 0; i < points.size(); ++i) {
            const RunStats &r = results[i];
            const double skew = points[i].skew;
            t.printRow(
                {points[i].app, TablePrinter::num(skew * 100, 0) + "%",
                 r.completed ? TablePrinter::num(r.bufferedPct, 2)
                             : "STUCK",
                 TablePrinter::num(r.maxVbufPages),
                 TablePrinter::num(static_cast<double>(r.runtime))});
            ctx.report.row(
                {{"app", points[i].app},
                 {"skew", skew},
                 {"completed", r.completed},
                 {"buffered_pct", r.bufferedPct},
                 {"max_vbuf_pages", r.maxVbufPages},
                 {"runtime", std::uint64_t{r.runtime}}});
        }
        return 0;
    };
    return benchMain(spec, argc, argv);
}
