/**
 * @file
 * Reproduces Figure 7: percentage of messages traversing the buffered
 * path for each application multiprogrammed with a null application,
 * versus decreasing schedule quality (gang-scheduler clock skew).
 *
 * Expected shape (paper): applications with intrinsic synchronization
 * (barrier, and the CRL codes) show an essentially constant, small
 * buffered fraction; enum — many messages, little synchronization —
 * grows roughly linearly with skew. Also reports the maximum physical
 * pages used for buffering (< 7 pages/node in the paper).
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

int
main()
{
    Workloads wl;
    wl.paperScale = std::getenv("FUGU_PAPER_SCALE") != nullptr;
    const unsigned trials =
        std::getenv("FUGU_QUICK") ? 1 : 3;

    const double skews[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4};

    std::printf("Figure 7: %% messages buffered vs schedule skew "
                "(app + null, gang quantum 100k, %u trial(s))\n",
                trials);
    TablePrinter t({"App", "skew", "%buffered", "maxpages", "runtime"},
                   {8, 6, 10, 8, 12});
    t.printHeader();

    for (const auto &name : Workloads::names()) {
        for (double skew : skews) {
            glaze::MachineConfig mcfg;
            mcfg.nodes = 8;
            glaze::GangConfig gcfg;
            gcfg.quantum = 100000;
            gcfg.skew = skew;
            RunStats r =
                runTrials(mcfg, wl.factory(name), /*with_null=*/true,
                          /*gang=*/true, gcfg, trials);
            t.printRow({name, TablePrinter::num(skew * 100, 0) + "%",
                        r.completed
                            ? TablePrinter::num(r.bufferedPct, 2)
                            : "STUCK",
                        TablePrinter::num(r.maxVbufPages),
                        TablePrinter::num(
                            static_cast<double>(r.runtime))});
        }
    }
    return 0;
}
