/**
 * @file
 * Ablation: sensitivity to the atomicity-timeout preset. Section 4.1
 * notes "the exact timeout value is a free parameter that may be
 * changed without affecting correctness"; this bench quantifies the
 * performance trade: a short timeout revokes atomic sections eagerly
 * (more buffering), a long one lets a pending message block the
 * network interface longer.
 *
 * Workload: synth-100 multiprogrammed with null at 1% skew (the
 * handler occasionally holds the interface while replying).
 */

#include <cstdio>
#include <vector>

#include "harness/benchmain.hh"

using namespace fugu;
using namespace fugu::harness;

int
main(int argc, char **argv)
{
    std::vector<std::uint64_t> timeouts{250,  500,   1000, 2000,
                                        4000, 16000, 64000};

    BenchSpec spec;
    spec.name = "ablation_timeout";
    spec.defaults = [](BenchContext &ctx) {
        ctx.machine.nodes = 4;
        ctx.gang.quantum = 100000;
        ctx.gang.skew = 0.01;
        ctx.workloads.synth.n = 100;
        ctx.workloads.synth.groups = 30;
        ctx.workloads.synth.tBetween = 400;
        // A long handler stall holds the NI in an atomic section, so
        // short presets revoke (buffer) while long ones wait it out.
        ctx.workloads.synth.handlerStall = 1500;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("abl");
        b.list("timeouts", timeouts,
               "atomicity-timeout presets to sweep (overrides "
               "ni.atomicity_timeout per point)",
               "cycles");
    };
    spec.body = [&](BenchContext &ctx) {
        const std::size_t npoints = timeouts.size();
        std::vector<RunStats> results(npoints);
        parallelFor(npoints, [&](std::size_t i) {
            glaze::MachineConfig mcfg = ctx.machine;
            mcfg.ni.atomicityTimeout = timeouts[i];
            results[i] = runTrials(
                mcfg, ctx.workloads.factory("synth"),
                /*with_null=*/true, /*gang=*/true, ctx.gang,
                ctx.trials, ctx.maxCycles,
                i == 0 ? ctx.tracePath : std::string());
        });

        std::printf(
            "Ablation: atomicity-timeout preset vs buffering and "
            "runtime (synth-%u + null, %g%% skew)\n",
            ctx.workloads.synth.n, ctx.gang.skew * 100);
        TablePrinter t({"timeout", "%buffered", "timeouts", "runtime"},
                       {8, 10, 9, 12});
        t.printHeader();
        ctx.report.meta("trials", ctx.trials);
        ctx.report.meta("nodes", ctx.machine.nodes);

        for (std::size_t i = 0; i < npoints; ++i) {
            const RunStats &r = results[i];
            t.printRow(
                {TablePrinter::num(static_cast<double>(timeouts[i])),
                 r.completed ? TablePrinter::num(r.bufferedPct, 2)
                             : "STUCK",
                 TablePrinter::num(r.atomicityTimeouts),
                 TablePrinter::num(static_cast<double>(r.runtime))});
            ctx.report.row(
                {{"timeout", std::uint64_t{timeouts[i]}},
                 {"completed", r.completed},
                 {"buffered_pct", r.bufferedPct},
                 {"atomicity_timeouts", r.atomicityTimeouts},
                 {"runtime", std::uint64_t{r.runtime}}});
        }
        return 0;
    };
    return benchMain(spec, argc, argv);
}
