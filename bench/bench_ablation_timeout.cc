/**
 * @file
 * Ablation: sensitivity to the atomicity-timeout preset. Section 4.1
 * notes "the exact timeout value is a free parameter that may be
 * changed without affecting correctness"; this bench quantifies the
 * performance trade: a short timeout revokes atomic sections eagerly
 * (more buffering), a long one lets a pending message block the
 * network interface longer.
 *
 * Workload: synth-100 multiprogrammed with null at 1% skew (the
 * handler occasionally holds the interface while replying).
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

int
main()
{
    const unsigned trials = std::getenv("FUGU_QUICK") ? 1 : 3;
    const Cycle timeouts[] = {250, 500, 1000, 2000, 4000, 16000,
                              64000};

    std::printf("Ablation: atomicity-timeout preset vs buffering and "
                "runtime (synth-100 + null, 1%% skew)\n");
    TablePrinter t({"timeout", "%buffered", "timeouts", "runtime"},
                   {8, 10, 9, 12});
    t.printHeader();

    for (Cycle preset : timeouts) {
        apps::SynthAppConfig scfg;
        scfg.n = 100;
        scfg.groups = 30;
        scfg.tBetween = 400;
        // A long handler stall holds the NI in an atomic section, so
        // short presets revoke (buffer) while long ones wait it out.
        scfg.handlerStall = 1500;
        AppFactory factory = [scfg](unsigned nodes, std::uint64_t seed) {
            apps::SynthAppConfig c = scfg;
            c.seed = seed;
            return apps::makeSynthApp(nodes, c);
        };
        glaze::MachineConfig mcfg;
        mcfg.nodes = 4;
        mcfg.ni.atomicityTimeout = preset;
        glaze::GangConfig gcfg;
        gcfg.quantum = 100000;
        gcfg.skew = 0.01;
        RunStats r = runTrials(mcfg, factory, /*with_null=*/true,
                               /*gang=*/true, gcfg, trials);
        t.printRow({TablePrinter::num(static_cast<double>(preset)),
                    r.completed ? TablePrinter::num(r.bufferedPct, 2)
                                : "STUCK",
                    TablePrinter::num(r.atomicityTimeouts),
                    TablePrinter::num(
                        static_cast<double>(r.runtime))});
    }
    return 0;
}
