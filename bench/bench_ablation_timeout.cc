/**
 * @file
 * Ablation: sensitivity to the atomicity-timeout preset. Section 4.1
 * notes "the exact timeout value is a free parameter that may be
 * changed without affecting correctness"; this bench quantifies the
 * performance trade: a short timeout revokes atomic sections eagerly
 * (more buffering), a long one lets a pending message block the
 * network interface longer.
 *
 * Workload: synth-100 multiprogrammed with null at 1% skew (the
 * handler occasionally holds the interface while replying).
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/benchjson.hh"
#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

int
main(int argc, char **argv)
{
    const std::string trace_path = parseTraceFlag(argc, argv);
    BenchReport report("ablation_timeout", argc, argv);

    const unsigned trials = std::getenv("FUGU_QUICK") ? 1 : 3;
    const Cycle timeouts[] = {250, 500, 1000, 2000, 4000, 16000,
                              64000};
    const std::size_t npoints = std::size(timeouts);

    std::vector<RunStats> results(npoints);
    parallelFor(npoints, [&](std::size_t i) {
        apps::SynthAppConfig scfg;
        scfg.n = 100;
        scfg.groups = 30;
        scfg.tBetween = 400;
        // A long handler stall holds the NI in an atomic section, so
        // short presets revoke (buffer) while long ones wait it out.
        scfg.handlerStall = 1500;
        AppFactory factory = [scfg](unsigned nodes,
                                    std::uint64_t seed) {
            apps::SynthAppConfig c = scfg;
            c.seed = seed;
            return apps::makeSynthApp(nodes, c);
        };
        glaze::MachineConfig mcfg;
        mcfg.nodes = 4;
        mcfg.ni.atomicityTimeout = timeouts[i];
        glaze::GangConfig gcfg;
        gcfg.quantum = 100000;
        gcfg.skew = 0.01;
        results[i] = runTrials(mcfg, factory, /*with_null=*/true,
                               /*gang=*/true, gcfg, trials,
                               100000000000ull,
                               i == 0 ? trace_path : std::string());
    });

    std::printf("Ablation: atomicity-timeout preset vs buffering and "
                "runtime (synth-100 + null, 1%% skew)\n");
    TablePrinter t({"timeout", "%buffered", "timeouts", "runtime"},
                   {8, 10, 9, 12});
    t.printHeader();
    report.meta("trials", trials);
    report.meta("nodes", 4u);

    for (std::size_t i = 0; i < npoints; ++i) {
        const RunStats &r = results[i];
        t.printRow(
            {TablePrinter::num(static_cast<double>(timeouts[i])),
             r.completed ? TablePrinter::num(r.bufferedPct, 2)
                         : "STUCK",
             TablePrinter::num(r.atomicityTimeouts),
             TablePrinter::num(static_cast<double>(r.runtime))});
        report.row({{"timeout", std::uint64_t{timeouts[i]}},
                    {"completed", r.completed},
                    {"buffered_pct", r.bufferedPct},
                    {"atomicity_timeouts", r.atomicityTimeouts},
                    {"runtime", std::uint64_t{r.runtime}}});
    }
    return 0;
}
