/**
 * @file
 * Parallel-engine scale sweep: host events/sec of whole-machine
 * simulation across a nodes x par_shards grid, on the synthetic
 * request workload (Section 5.2's shape, sized per node count).
 *
 * For every node count the shards=1 cell is the serial oracle; each
 * shards=S cell reports its speedup against that oracle. Memory is
 * reported two ways: the process-wide peak (VmHWM, monotone across
 * cells) and the resident-set growth from just before the machine is
 * built to the end of its run, divided by the node count — the
 * per-node footprint the node-state diet targets. Wall-clock speedup
 * above 1.0 needs real cores: set FUGU_THREADS and run on a
 * multi-core host; a single-core container still verifies the
 * engine's overhead (speedup ~1/overhead).
 *
 * Writes BENCH_machine.json with --json; the CI perf gate diffs its
 * events/sec against the committed baseline.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/benchmain.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv + ",") {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    return out;
}

std::vector<unsigned>
splitCsvU(const std::string &csv)
{
    std::vector<unsigned> out;
    for (const std::string &s : splitCsv(csv))
        out.push_back(static_cast<unsigned>(std::stoul(s)));
    return out;
}

/** Current resident set ("VmRSS") or peak ("VmHWM"), in KiB. */
std::uint64_t
procStatusKb(const char *key)
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof line, f)) {
        if (std::strncmp(line, key, std::strlen(key)) == 0) {
            std::sscanf(line + std::strlen(key), ": %llu",
                        reinterpret_cast<unsigned long long *>(&kb));
            break;
        }
    }
    std::fclose(f);
    return kb;
}

struct Cell
{
    unsigned nodes, shards;
    double secs;
    std::uint64_t events;
    double eps;
    double speedup;
    std::uint64_t peakRssKb;
    double rssPerNodeKb;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = std::getenv("FUGU_QUICK") != nullptr;
    std::string appsCsv = "synth";
    std::string nodesCsv = quick ? "64,256" : "64,256,1024";
    std::string shardsCsv = quick ? "1,4" : "1,2,4,8";
    unsigned groups = 2;  // synchronization groups per node
    unsigned requests = quick ? 20 : 50; // requests per group
    unsigned reps = 3; // best-of runs per cell (noise floor)

    BenchSpec spec;
    spec.name = "machine";
    spec.defaults = [](BenchContext &ctx) {
        // Engine throughput, not checker throughput: the invariant
        // checker's bookkeeping (and its O(nodes^2) sweeps) would
        // dominate at scale. test_parallel covers correctness.
        ctx.machine.check.enabled = false;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("scale");
        b.item("apps", appsCsv,
               "workloads to sweep (csv of workload names)");
        b.item("nodes", nodesCsv, "node counts to sweep (csv)");
        b.item("shards", shardsCsv,
               "machine.par_shards values to sweep (csv)");
        b.item("groups", groups, "synth groups per node");
        b.item("requests", requests, "synth requests per group");
        b.item("reps", reps,
               "runs per cell; the fastest is reported");
    };
    spec.body = [&](BenchContext &ctx) {
        ctx.report.meta("workload", "synth");
        ctx.report.meta("groups_per_node", groups);
        ctx.report.meta("requests_per_group", requests);
        ctx.report.meta("units", "host events/sec");

        Workloads wl = ctx.workloads;
        wl.synth.groups = groups;
        wl.synth.n = requests;

        std::printf("Machine-simulation scale sweep (synth: "
                    "%u groups/node x %u requests)\n",
                    groups, requests);
        std::printf("%-6s  %6s  %6s  %8s  %12s  %14s  %8s  %10s\n",
                    "app", "nodes", "shards", "secs", "events",
                    "events/sec", "speedup", "rss/node");

        // (app, nodes) -> the shards=1 oracle's events/sec.
        std::map<std::pair<std::string, unsigned>, double> serialEps;
        for (const std::string &app : splitCsv(appsCsv)) {
            for (unsigned nodes : splitCsvU(nodesCsv)) {
                for (unsigned shards : splitCsvU(shardsCsv)) {
                    if (shards > nodes)
                        continue;
                    glaze::MachineConfig cfg = ctx.machine;
                    cfg.nodes = nodes;
                    cfg.parShards = shards;

                    // Best of reps runs: host noise (especially with
                    // more threads than cores) only ever slows a run
                    // down, so the fastest rep is the least-noisy
                    // estimate and what the CI gate compares.
                    const std::uint64_t rss0 = procStatusKb("VmRSS");
                    RunStats r;
                    double secs = 0;
                    std::uint64_t rss1 = rss0;
                    for (unsigned rep = 0; rep < std::max(reps, 1u);
                         ++rep) {
                        const auto t0 =
                            std::chrono::steady_clock::now();
                        const RunStats rr =
                            runJob(cfg, wl.factory(app),
                                   /*with_null=*/false,
                                   /*gang=*/false, ctx.gang,
                                   ctx.maxCycles);
                        const double s =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
                        if (rep == 0) {
                            rss1 = procStatusKb("VmRSS");
                            r = rr;
                            secs = s;
                        } else if (s < secs) {
                            r = rr;
                            secs = s;
                        }
                        if (!rr.completed) {
                            std::fprintf(
                                stderr,
                                "FAIL: %s at %u nodes x %u shards "
                                "did not complete\n",
                                app.c_str(), nodes, shards);
                            return 1;
                        }
                    }

                    Cell c;
                    c.nodes = nodes;
                    c.shards = shards;
                    c.secs = secs;
                    c.events = r.events;
                    c.eps = r.events / secs;
                    if (shards == 1)
                        serialEps[{app, nodes}] = c.eps;
                    c.speedup = serialEps.count({app, nodes})
                                    ? c.eps / serialEps[{app, nodes}]
                                    : 0.0;
                    c.peakRssKb = procStatusKb("VmHWM");
                    c.rssPerNodeKb =
                        rss1 > rss0
                            ? static_cast<double>(rss1 - rss0) / nodes
                            : 0.0;

                    std::printf("%-6s  %6u  %6u  %8.3f  %12llu  "
                                "%14.0f  %7.2fx  %8.1fK\n",
                                app.c_str(), c.nodes, c.shards, c.secs,
                                static_cast<unsigned long long>(
                                    c.events),
                                c.eps, c.speedup, c.rssPerNodeKb);
                    ctx.report.row(
                        {{"app", app},
                         {"nodes", c.nodes},
                         {"shards", c.shards},
                         {"secs", c.secs},
                         {"events", c.events},
                         {"events_per_sec", c.eps},
                         {"speedup_vs_serial", c.speedup},
                         {"peak_rss_kb", c.peakRssKb},
                         {"rss_per_node_kb", c.rssPerNodeKb}});
                }
            }
        }
        return 0;
    };
    return benchMain(spec, argc, argv);
}
