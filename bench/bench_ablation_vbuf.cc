/**
 * @file
 * Ablation: virtual buffering (frames allocated on demand, returned
 * when the buffer drains) versus a system that pins its buffer pages
 * up front. Section 4.2 argues virtual buffering "improves memory
 * performance by reducing the amount of physical buffer space
 * required versus a system that pins its buffer pages in memory".
 *
 * Measures peak physical frame usage per node for each workload under
 * the skewed multiprogrammed schedule of Figure 7.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/benchjson.hh"
#include "harness/experiment.hh"
#include "trace/export.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

double
peakFrames(glaze::MachineConfig mcfg, const AppFactory &app,
           const std::string &trace_path = "")
{
    if (!trace_path.empty())
        mcfg.trace.enabled = true;
    glaze::Machine m(mcfg);
    glaze::Job *job = m.addJob("app", app(mcfg.nodes, mcfg.seed));
    m.addJob("null", apps::makeNullApp());
    glaze::GangConfig gcfg;
    gcfg.quantum = 100000;
    gcfg.skew = 0.3;
    m.startGang(gcfg);
    const bool done = m.runUntilDone(job, 100000000000ull);
    if (!trace_path.empty()) {
        std::string err;
        if (!fugu::trace::writeTraceFiles(trace_path,
                                          m.tracer()->buffer(), &err))
            std::fprintf(stderr, "trace write failed: %s\n",
                         err.c_str());
    }
    if (!done)
        return -1;
    double peak = 0;
    for (auto &n : m.nodes)
        peak = std::max(peak, n->frames.stats.peakUsed.value());
    return peak;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string trace_path = parseTraceFlag(argc, argv);
    BenchReport report("ablation_vbuf", argc, argv);

    Workloads wl;
    wl.paperScale = std::getenv("FUGU_PAPER_SCALE") != nullptr;
    // A pinned system reserves worst-case buffer space per process;
    // 16 pages/process is a modest static reservation.
    constexpr unsigned kPinned = 16;

    const auto &names = Workloads::names();
    std::vector<double> virt(names.size());
    std::vector<double> pinned(names.size());
    parallelFor(names.size() * 2, [&](std::size_t i) {
        const std::size_t app = i / 2;
        glaze::MachineConfig cfg;
        cfg.nodes = 8;
        if (i % 2 == 0) {
            virt[app] = peakFrames(cfg, wl.factory(names[app]),
                                   i == 0 ? trace_path : std::string());
        } else {
            cfg.pinnedBufferPages = kPinned;
            pinned[app] = peakFrames(cfg, wl.factory(names[app]));
        }
    });

    std::printf("Ablation: virtual vs pinned buffering — peak frames "
                "in use on any node (pool=64/node)\n");
    TablePrinter t({"App", "virtual (on demand)", "pinned (16/proc)"},
                   {8, 20, 18});
    t.printHeader();
    report.meta("nodes", 8u);
    report.meta("pinned_pages_per_proc", kPinned);

    for (std::size_t i = 0; i < names.size(); ++i) {
        t.printRow(
            {names[i],
             virt[i] < 0 ? "STUCK" : TablePrinter::num(virt[i]),
             pinned[i] < 0 ? "STUCK" : TablePrinter::num(pinned[i])});
        report.row({{"app", names[i]},
                    {"virtual_peak_frames", virt[i]},
                    {"pinned_peak_frames", pinned[i]}});
    }
    return 0;
}
