/**
 * @file
 * Ablation: virtual buffering (frames allocated on demand, returned
 * when the buffer drains) versus a system that pins its buffer pages
 * up front. Section 4.2 argues virtual buffering "improves memory
 * performance by reducing the amount of physical buffer space
 * required versus a system that pins its buffer pages in memory".
 *
 * Measures peak physical frame usage per node for each workload under
 * the skewed multiprogrammed schedule of Figure 7.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/benchmain.hh"
#include "trace/export.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

double
peakFrames(glaze::MachineConfig mcfg, const glaze::GangConfig &gcfg,
           const AppFactory &app, const std::string &trace_path = "")
{
    if (!trace_path.empty())
        mcfg.trace.enabled = true;
    glaze::Machine m(mcfg);
    glaze::Job *job = m.addJob("app", app(mcfg.nodes, mcfg.seed));
    m.addJob("null", apps::makeNullApp());
    m.startGang(gcfg);
    const bool done = m.runUntilDone(job, 100000000000ull);
    if (!trace_path.empty()) {
        std::string err;
        if (!fugu::trace::writeTraceFiles(trace_path,
                                          m.tracer()->buffer(), &err))
            std::fprintf(stderr, "trace write failed: %s\n",
                         err.c_str());
    }
    if (!done)
        return -1;
    double peak = 0;
    for (auto &n : m.nodes)
        peak = std::max(peak, n.frames.stats.peakUsed.value());
    return peak;
}

} // namespace

int
main(int argc, char **argv)
{
    // A pinned system reserves worst-case buffer space per process;
    // 16 pages/process is a modest static reservation.
    unsigned pinnedPages = 16;

    BenchSpec spec;
    spec.name = "ablation_vbuf";
    spec.defaults = [](BenchContext &ctx) {
        ctx.machine.nodes = 8;
        ctx.gang.quantum = 100000;
        ctx.gang.skew = 0.3;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("abl");
        b.item("pinned_pages", pinnedPages,
               "per-process static buffer reservation for the "
               "pinned-comparison runs",
               "pages");
    };
    spec.body = [&](BenchContext &ctx) {
        const auto &names = Workloads::names();
        std::vector<double> virt(names.size());
        std::vector<double> pinned(names.size());
        parallelFor(names.size() * 2, [&](std::size_t i) {
            const std::size_t app = i / 2;
            glaze::MachineConfig cfg = ctx.machine;
            if (i % 2 == 0) {
                virt[app] = peakFrames(
                    cfg, ctx.gang, ctx.workloads.factory(names[app]),
                    i == 0 ? ctx.tracePath : std::string());
            } else {
                cfg.pinnedBufferPages = pinnedPages;
                pinned[app] = peakFrames(
                    cfg, ctx.gang, ctx.workloads.factory(names[app]));
            }
        });

        std::printf(
            "Ablation: virtual vs pinned buffering — peak frames "
            "in use on any node (pool=%u/node)\n",
            ctx.machine.framesPerNode);
        TablePrinter t({"App", "virtual (on demand)",
                        "pinned (" + std::to_string(pinnedPages) +
                            "/proc)"},
                       {8, 20, 18});
        t.printHeader();
        ctx.report.meta("nodes", ctx.machine.nodes);
        ctx.report.meta("pinned_pages_per_proc", pinnedPages);

        for (std::size_t i = 0; i < names.size(); ++i) {
            t.printRow({names[i],
                        virt[i] < 0 ? "STUCK"
                                    : TablePrinter::num(virt[i]),
                        pinned[i] < 0 ? "STUCK"
                                      : TablePrinter::num(pinned[i])});
            ctx.report.row({{"app", names[i]},
                            {"virtual_peak_frames", virt[i]},
                            {"pinned_peak_frames", pinned[i]}});
        }
        return 0;
    };
    return benchMain(spec, argc, argv);
}
