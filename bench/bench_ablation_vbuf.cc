/**
 * @file
 * Ablation: virtual buffering (frames allocated on demand, returned
 * when the buffer drains) versus a system that pins its buffer pages
 * up front. Section 4.2 argues virtual buffering "improves memory
 * performance by reducing the amount of physical buffer space
 * required versus a system that pins its buffer pages in memory".
 *
 * Measures peak physical frame usage per node for each workload under
 * the skewed multiprogrammed schedule of Figure 7.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

double
peakFrames(const glaze::MachineConfig &mcfg, const AppFactory &app)
{
    glaze::Machine m(mcfg);
    glaze::Job *job = m.addJob("app", app(mcfg.nodes, mcfg.seed));
    m.addJob("null", apps::makeNullApp());
    glaze::GangConfig gcfg;
    gcfg.quantum = 100000;
    gcfg.skew = 0.3;
    m.startGang(gcfg);
    if (!m.runUntilDone(job, 100000000000ull))
        return -1;
    double peak = 0;
    for (auto &n : m.nodes)
        peak = std::max(peak, n->frames.stats.peakUsed.value());
    return peak;
}

} // namespace

int
main()
{
    Workloads wl;
    wl.paperScale = std::getenv("FUGU_PAPER_SCALE") != nullptr;
    // A pinned system reserves worst-case buffer space per process;
    // 16 pages/process is a modest static reservation.
    constexpr unsigned kPinned = 16;

    std::printf("Ablation: virtual vs pinned buffering — peak frames "
                "in use on any node (pool=64/node)\n");
    TablePrinter t({"App", "virtual (on demand)", "pinned (16/proc)"},
                   {8, 20, 18});
    t.printHeader();

    for (const auto &name : Workloads::names()) {
        glaze::MachineConfig v;
        v.nodes = 8;
        const double virt = peakFrames(v, wl.factory(name));
        glaze::MachineConfig pin = v;
        pin.pinnedBufferPages = kPinned;
        const double pinned = peakFrames(pin, wl.factory(name));
        t.printRow({name,
                    virt < 0 ? "STUCK" : TablePrinter::num(virt),
                    pinned < 0 ? "STUCK" : TablePrinter::num(pinned)});
    }
    return 0;
}
