/**
 * @file
 * Ablation: NI-buffering backend designs behind the NiBufferBackend
 * interface (`--set ni.backend=...`), swept over offered load under
 * the skewed multiprogrammed schedule that exercises both delivery
 * cases:
 *
 *  - static_fifo: the FUGU hardware's statically partitioned input
 *    ring (the oracle — bit-exact with the seed behavior);
 *  - damq: dynamically-shared queue space with per-(src,GID) caps and
 *    associative head select (charged via costs.damq_select);
 *  - zerocopy_remap: page-flip buffered delivery (cheaper insert, VM
 *    remap instead of vmalloc, cheaper drain, no record overhead).
 *
 * Emits one latency/buffered-fraction curve per backend plus timed
 * events/sec rows for the perf gate (baseline
 * bench/baselines/BENCH_backend.json, checked under
 * ci/perf_gate.py --strict).
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/nibuf.hh"
#include "harness/benchmain.hh"

using namespace fugu;
using namespace fugu::harness;

namespace
{

constexpr core::NiBackendKind kAllBackends[] = {
    core::NiBackendKind::StaticFifo,
    core::NiBackendKind::Damq,
    core::NiBackendKind::ZerocopyRemap,
};

std::vector<core::NiBackendKind>
parseBackends(const std::string &csv)
{
    std::vector<core::NiBackendKind> out;
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        const auto b = tok.find_first_not_of(" \t");
        const auto e = tok.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        const std::string name = tok.substr(b, e - b + 1);
        bool found = false;
        for (core::NiBackendKind k : kAllBackends)
            if (name == core::toString(k)) {
                out.push_back(k);
                found = true;
            }
        if (!found)
            fugu_fatal("abl.backends: unknown backend '", name,
                       "' (expected static_fifo|damq|zerocopy_remap)");
    }
    if (out.empty())
        fugu_fatal("abl.backends is empty");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string backendsCsv = "static_fifo,damq,zerocopy_remap";
    std::vector<std::uint64_t> intervals{250, 350, 500, 1000};
    unsigned synthN = 100;
    unsigned groupsTotal = 2000;
    bool perf = false;
    unsigned perfReps = 2;
    std::uint64_t perfInterval = 300;

    BenchSpec spec;
    spec.name = "ablation_backend";
    spec.defaults = [](BenchContext &ctx) {
        ctx.machine.nodes = 8;
        ctx.gang.quantum = 50000;
        ctx.gang.skew = 0.3;
        ctx.workloads.synth.handlerStall = 200;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("abl");
        b.item("backends", backendsCsv,
               "ni.backend designs to sweep (csv of static_fifo, "
               "damq, zerocopy_remap)");
        b.list("intervals", intervals,
               "mean send-interval (T_betw) sweep", "cycles");
        b.item("synth_n", synthN,
               "messages per synth request group");
        b.item("groups_total", groupsTotal,
               "total requests per node (groups = groups_total/N)");
        b.item("perf", perf,
               "also emit host events/sec rows for the perf gate "
               "(wall-clock: off by default so the report stays "
               "deterministic and replayable)");
        b.item("perf_reps", perfReps,
               "wall-clock reps per backend for the perf-gate rows "
               "(fastest wins)");
        b.item("perf_interval", perfInterval,
               "T_betw of the timed perf-gate runs", "cycles");
    };
    spec.body = [&](BenchContext &ctx) {
        struct Point
        {
            core::NiBackendKind backend;
            Cycle betw;
        };
        const std::vector<core::NiBackendKind> backends =
            parseBackends(backendsCsv);
        std::vector<Point> points;
        for (core::NiBackendKind k : backends)
            for (Cycle betw : intervals)
                points.push_back({k, betw});

        auto factoryFor = [&](Cycle betw) {
            apps::SynthAppConfig scfg = ctx.workloads.synth;
            scfg.n = synthN;
            scfg.groups = std::max(1u, groupsTotal / synthN);
            scfg.tBetween = betw;
            return AppFactory([scfg](unsigned nodes,
                                     std::uint64_t seed) {
                apps::SynthAppConfig c = scfg;
                c.seed = seed;
                return apps::makeSynthApp(nodes, c);
            });
        };

        std::vector<RunStats> results(points.size());
        parallelFor(points.size(), [&](std::size_t i) {
            glaze::MachineConfig cfg = ctx.machine;
            cfg.ni.backend = points[i].backend;
            cfg.trace.runTag =
                std::string("backend=") +
                core::toString(points[i].backend);
            results[i] = runTrials(
                cfg, factoryFor(points[i].betw), /*with_null=*/true,
                /*gang=*/true, ctx.gang, ctx.trials, ctx.maxCycles,
                i == 0 ? ctx.tracePath : std::string());
        });

        std::printf(
            "Ablation: NI-buffering backends vs offered load "
            "(synth-%u, %u nodes, %g%% skew)\n",
            synthN, ctx.machine.nodes, ctx.gang.skew * 100);
        TablePrinter t({"backend", "T_betw", "%buffered", "fast p50",
                        "buf p50", "buf p95", "inserts"},
                       {14, 8, 10, 9, 9, 9, 9});
        t.printHeader();
        ctx.report.meta("trials", ctx.trials);
        ctx.report.meta("nodes", ctx.machine.nodes);
        ctx.report.meta("synth_n", synthN);

        bool allCompleted = true;
        double totalViolations = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const RunStats &r = results[i];
            const char *name = core::toString(points[i].backend);
            allCompleted = allCompleted && r.completed;
            totalViolations += r.violations;
            t.printRow(
                {name,
                 TablePrinter::num(
                     static_cast<double>(points[i].betw)),
                 r.completed ? TablePrinter::num(r.bufferedPct, 2)
                             : "STUCK",
                 TablePrinter::num(r.fastLatency.percentile(50)),
                 TablePrinter::num(r.bufLatency.percentile(50)),
                 TablePrinter::num(r.bufLatency.percentile(95)),
                 TablePrinter::num(r.bufferInserts)});
            ctx.report.row(
                {{"section", std::string("ablation_") + name},
                 {"backend", name},
                 {"app", "synth"},
                 {"nodes", ctx.machine.nodes},
                 {"t_between", std::uint64_t{points[i].betw}},
                 {"completed", r.completed},
                 {"runtime", std::uint64_t{r.runtime}},
                 {"buffered_pct", r.bufferedPct},
                 {"buffer_inserts", r.bufferInserts},
                 {"fast_p50", r.fastLatency.percentile(50)},
                 {"fast_p95", r.fastLatency.percentile(95)},
                 {"buf_p50", r.bufLatency.percentile(50)},
                 {"buf_p95", r.bufLatency.percentile(95)},
                 {"violations", r.violations}});
        }

        // The acceptance comparison: at equal load with the whole
        // workload forced through the buffered path, page-flip
        // delivery must finish in less simulated time than copying.
        glaze::MachineConfig fifoCfg = ctx.machine;
        fifoCfg.alwaysBuffered = true;
        fifoCfg.ni.backend = core::NiBackendKind::StaticFifo;
        glaze::MachineConfig zcCfg = fifoCfg;
        zcCfg.ni.backend = core::NiBackendKind::ZerocopyRemap;
        const RunStats bf =
            runTrials(fifoCfg, factoryFor(perfInterval), true, true,
                      ctx.gang, ctx.trials, ctx.maxCycles);
        const RunStats bz =
            runTrials(zcCfg, factoryFor(perfInterval), true, true,
                      ctx.gang, ctx.trials, ctx.maxCycles);
        const double speedup =
            bz.runtime > 0 ? static_cast<double>(bf.runtime) /
                                 static_cast<double>(bz.runtime)
                           : 0;
        std::printf(
            "\nalways-buffered @ T_betw=%llu: static_fifo %llu cyc, "
            "zerocopy_remap %llu cyc (%.2fx)\n",
            static_cast<unsigned long long>(perfInterval),
            static_cast<unsigned long long>(bf.runtime),
            static_cast<unsigned long long>(bz.runtime), speedup);
        ctx.report.row(
            {{"section", "ablation_zerocopy_gain"},
             {"app", "synth_always_buffered"},
             {"nodes", ctx.machine.nodes},
             {"static_fifo_runtime", std::uint64_t{bf.runtime}},
             {"zerocopy_runtime", std::uint64_t{bz.runtime}},
             {"speedup", speedup}});
        allCompleted = allCompleted && bf.completed && bz.completed;
        totalViolations += bf.violations + bz.violations;
        if (bz.runtime >= bf.runtime) {
            std::printf("FAIL: zerocopy_remap is not cheaper than "
                        "static_fifo on the buffered path\n");
            return 1;
        }

        // Wall-clock throughput per backend for the perf gate.
        for (core::NiBackendKind k : backends) {
            if (!perf)
                break;
            glaze::MachineConfig cfg = ctx.machine;
            cfg.ni.backend = k;
            double secs = 0;
            std::uint64_t events = 0;
            for (unsigned rep = 0; rep < std::max(perfReps, 1u);
                 ++rep) {
                const auto t0 = std::chrono::steady_clock::now();
                const RunStats r =
                    runJob(cfg, factoryFor(perfInterval),
                           /*with_null=*/true, /*gang=*/true,
                           ctx.gang, ctx.maxCycles);
                const double s =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                if (!r.completed) {
                    std::fprintf(
                        stderr,
                        "FAIL: perf run (%s) did not complete\n",
                        core::toString(k));
                    return 1;
                }
                if (rep == 0 || s < secs) {
                    secs = s;
                    events = r.events;
                }
            }
            const double eps =
                secs > 0 ? static_cast<double>(events) / secs : 0;
            std::printf("perf %-14s  %.3fs  %llu events  "
                        "%.0f events/sec\n",
                        core::toString(k), secs,
                        static_cast<unsigned long long>(events), eps);
            ctx.report.row({{"section", "ablation_backend_perf"},
                            {"app", core::toString(k)},
                            {"nodes", ctx.machine.nodes},
                            {"shards", ctx.machine.parShards},
                            {"secs", secs},
                            {"events", events},
                            {"events_per_sec", eps}});
        }

        if (totalViolations > 0) {
            std::printf("\nFAIL: %.0f invariant violation(s)\n",
                        totalViolations);
            return 1;
        }
        if (!allCompleted) {
            std::printf("\nFAIL: at least one run did not complete\n");
            return 1;
        }
        return 0;
    };
    return benchMain(spec, argc, argv);
}
