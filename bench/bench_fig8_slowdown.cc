/**
 * @file
 * Reproduces Figure 8: relative runtime of each application
 * multiprogrammed with a null application versus decreasing schedule
 * quality, normalized to the zero-skew multiprogrammed runtime.
 *
 * Expected shape (paper): barrier is the most skew-sensitive (its
 * slowdown approaches the inverse of the overlap fraction); enum
 * tolerates latency and stays nearly flat, paying only the buffering
 * cost; the CRL applications land in between.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/benchjson.hh"
#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

int
main(int argc, char **argv)
{
    const std::string trace_path = parseTraceFlag(argc, argv);
    BenchReport report("fig8_slowdown", argc, argv);

    Workloads wl;
    wl.paperScale = std::getenv("FUGU_PAPER_SCALE") != nullptr;
    const unsigned trials = std::getenv("FUGU_QUICK") ? 1 : 3;

    const double skews[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4};

    // The whole (app, skew) grid runs on the worker pool; the
    // normalization to each app's zero-skew baseline happens while
    // printing, after all runtimes are in.
    struct Point
    {
        std::string app;
        double skew;
    };
    std::vector<Point> points;
    for (const auto &name : Workloads::names())
        for (double skew : skews)
            points.push_back({name, skew});

    std::vector<RunStats> results(points.size());
    parallelFor(points.size(), [&](std::size_t i) {
        glaze::MachineConfig mcfg;
        mcfg.nodes = 8;
        glaze::GangConfig gcfg;
        gcfg.quantum = 100000;
        gcfg.skew = points[i].skew;
        const bool traced =
            points[i].app == "barrier" && points[i].skew == 0.4;
        results[i] =
            runTrials(mcfg, wl.factory(points[i].app),
                      /*with_null=*/true, /*gang=*/true, gcfg, trials,
                      100000000000ull,
                      traced ? trace_path : std::string());
    });

    std::printf("Figure 8: relative runtime vs schedule skew "
                "(normalized to zero-skew multiprogrammed run)\n");
    TablePrinter t({"App", "skew", "rel.runtime", "%buffered"},
                   {8, 6, 12, 10});
    t.printHeader();
    report.meta("trials", trials);
    report.meta("nodes", 8u);

    std::string curApp;
    double base = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::string &name = points[i].app;
        const double skew = points[i].skew;
        const RunStats &r = results[i];
        if (name != curApp) { // first (zero-skew) row of a new app
            curApp = name;
            base = 0;
        }
        if (!r.completed) {
            t.printRow({name, TablePrinter::num(skew * 100) + "%",
                        "STUCK", "-"});
            report.row({{"app", name},
                        {"skew", skew},
                        {"completed", false}});
            continue;
        }
        if (skew == 0.0)
            base = static_cast<double>(r.runtime);
        const double rel =
            base > 0 ? static_cast<double>(r.runtime) / base : 1.0;
        t.printRow({name, TablePrinter::num(skew * 100) + "%",
                    TablePrinter::num(rel, 3),
                    TablePrinter::num(r.bufferedPct, 2)});
        report.row({{"app", name},
                    {"skew", skew},
                    {"completed", true},
                    {"rel_runtime", rel},
                    {"buffered_pct", r.bufferedPct},
                    {"runtime", std::uint64_t{r.runtime}}});
    }
    return 0;
}
