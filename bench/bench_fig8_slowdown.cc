/**
 * @file
 * Reproduces Figure 8: relative runtime of each application
 * multiprogrammed with a null application versus decreasing schedule
 * quality, normalized to the zero-skew multiprogrammed runtime.
 *
 * Expected shape (paper): barrier is the most skew-sensitive (its
 * slowdown approaches the inverse of the overlap fraction); enum
 * tolerates latency and stays nearly flat, paying only the buffering
 * cost; the CRL applications land in between.
 */

#include <cstdio>
#include <vector>

#include "harness/benchmain.hh"

using namespace fugu;
using namespace fugu::harness;

int
main(int argc, char **argv)
{
    std::vector<double> skews{0.0, 0.05, 0.1, 0.2, 0.3, 0.4};

    BenchSpec spec;
    spec.name = "fig8_slowdown";
    spec.defaults = [](BenchContext &ctx) {
        ctx.machine.nodes = 8;
        ctx.gang.quantum = 100000;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("fig8");
        b.list("skews", skews,
               "gang-scheduler clock-skew sweep (fraction of the "
               "quantum); the first entry is the normalization base");
    };
    spec.body = [&](BenchContext &ctx) {
        // The whole (app, skew) grid runs on the worker pool; the
        // normalization to each app's first-skew baseline happens
        // while printing, after all runtimes are in.
        struct Point
        {
            std::string app;
            double skew;
        };
        std::vector<Point> points;
        for (const auto &name : Workloads::names())
            for (double skew : skews)
                points.push_back({name, skew});

        const double worst = skews.empty() ? 0.0 : skews.back();
        std::vector<RunStats> results(points.size());
        parallelFor(points.size(), [&](std::size_t i) {
            glaze::MachineConfig mcfg = ctx.machine;
            glaze::GangConfig gcfg = ctx.gang;
            gcfg.skew = points[i].skew;
            const bool traced = points[i].app == "barrier" &&
                                points[i].skew == worst;
            results[i] = runTrials(
                mcfg, ctx.workloads.factory(points[i].app),
                /*with_null=*/true, /*gang=*/true, gcfg, ctx.trials,
                ctx.maxCycles,
                traced ? ctx.tracePath : std::string());
        });

        std::printf(
            "Figure 8: relative runtime vs schedule skew "
            "(normalized to zero-skew multiprogrammed run)\n");
        TablePrinter t({"App", "skew", "rel.runtime", "%buffered"},
                       {8, 6, 12, 10});
        t.printHeader();
        ctx.report.meta("trials", ctx.trials);
        ctx.report.meta("nodes", ctx.machine.nodes);

        std::string curApp;
        double base = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::string &name = points[i].app;
            const double skew = points[i].skew;
            const RunStats &r = results[i];
            if (name != curApp) { // first row of a new app
                curApp = name;
                base = 0;
            }
            if (!r.completed) {
                t.printRow({name, TablePrinter::num(skew * 100) + "%",
                            "STUCK", "-"});
                ctx.report.row({{"app", name},
                                {"skew", skew},
                                {"completed", false}});
                continue;
            }
            if (base == 0)
                base = static_cast<double>(r.runtime);
            const double rel =
                base > 0 ? static_cast<double>(r.runtime) / base : 1.0;
            t.printRow({name, TablePrinter::num(skew * 100) + "%",
                        TablePrinter::num(rel, 3),
                        TablePrinter::num(r.bufferedPct, 2)});
            ctx.report.row({{"app", name},
                            {"skew", skew},
                            {"completed", true},
                            {"rel_runtime", rel},
                            {"buffered_pct", r.bufferedPct},
                            {"runtime", std::uint64_t{r.runtime}}});
        }
        return 0;
    };
    return benchMain(spec, argc, argv);
}
