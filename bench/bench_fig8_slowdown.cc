/**
 * @file
 * Reproduces Figure 8: relative runtime of each application
 * multiprogrammed with a null application versus decreasing schedule
 * quality, normalized to the zero-skew multiprogrammed runtime.
 *
 * Expected shape (paper): barrier is the most skew-sensitive (its
 * slowdown approaches the inverse of the overlap fraction); enum
 * tolerates latency and stays nearly flat, paying only the buffering
 * cost; the CRL applications land in between.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

int
main()
{
    Workloads wl;
    wl.paperScale = std::getenv("FUGU_PAPER_SCALE") != nullptr;
    const unsigned trials = std::getenv("FUGU_QUICK") ? 1 : 3;

    const double skews[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4};

    std::printf("Figure 8: relative runtime vs schedule skew "
                "(normalized to zero-skew multiprogrammed run)\n");
    TablePrinter t({"App", "skew", "rel.runtime", "%buffered"},
                   {8, 6, 12, 10});
    t.printHeader();

    for (const auto &name : Workloads::names()) {
        double base = 0;
        for (double skew : skews) {
            glaze::MachineConfig mcfg;
            mcfg.nodes = 8;
            glaze::GangConfig gcfg;
            gcfg.quantum = 100000;
            gcfg.skew = skew;
            RunStats r =
                runTrials(mcfg, wl.factory(name), /*with_null=*/true,
                          /*gang=*/true, gcfg, trials);
            if (!r.completed) {
                t.printRow({name, TablePrinter::num(skew * 100) + "%",
                            "STUCK", "-"});
                continue;
            }
            if (skew == 0.0)
                base = static_cast<double>(r.runtime);
            t.printRow(
                {name, TablePrinter::num(skew * 100) + "%",
                 TablePrinter::num(
                     base > 0 ? static_cast<double>(r.runtime) / base
                              : 1.0,
                     3),
                 TablePrinter::num(r.bufferedPct, 2)});
        }
    }
    return 0;
}
