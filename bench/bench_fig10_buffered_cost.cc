/**
 * @file
 * Reproduces Figure 10: percentage of messages buffered versus the
 * cost of the buffered path, with T_betw held at 275 cycles and
 * artificial latency added to the buffer handler.
 *
 * Expected shape (paper): synth-10's internal synchronization keeps
 * its buffered fraction small regardless; synth-100 and synth-1000
 * blow up once the buffered-path cost exceeds the send interval (the
 * drain can no longer keep up, so the system stays in buffered mode).
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

int
main()
{
    const unsigned trials = std::getenv("FUGU_QUICK") ? 1 : 3;
    const unsigned groupsTotal = 3000;

    const unsigned ns[] = {10, 100, 1000};
    const Cycle extras[] = {0, 100, 200, 400, 800, 1600};

    std::printf("Figure 10: %% messages buffered vs buffered-path cost "
                "(synth-N, T_betw=275, 1%% skew)\n");
    TablePrinter t({"N", "extra", "path-cost", "%buffered"},
                   {6, 7, 10, 10});
    t.printHeader();

    for (unsigned n : ns) {
        for (Cycle extra : extras) {
            apps::SynthAppConfig scfg;
            scfg.n = n;
            scfg.groups = std::max(1u, groupsTotal / n);
            scfg.tBetween = 275;
            scfg.handlerStall = 200;
            AppFactory factory = [scfg](unsigned nodes,
                                        std::uint64_t seed) {
                apps::SynthAppConfig c = scfg;
                c.seed = seed;
                return apps::makeSynthApp(nodes, c);
            };
            glaze::MachineConfig mcfg;
            mcfg.nodes = 4;
            mcfg.costs.bufferedPathExtra = extra;
            glaze::GangConfig gcfg;
            gcfg.quantum = 100000;
            gcfg.skew = 0.01;
            RunStats r = runTrials(mcfg, factory, /*with_null=*/true,
                                   /*gang=*/true, gcfg, trials,
                                   20000000000ull);
            t.printRow(
                {TablePrinter::num(n),
                 TablePrinter::num(static_cast<double>(extra)),
                 TablePrinter::num(static_cast<double>(
                     232 + extra)), // base buffered path + extra
                 r.completed ? TablePrinter::num(r.bufferedPct, 2)
                             : "STUCK"});
        }
    }
    return 0;
}
