/**
 * @file
 * Reproduces Figure 10: percentage of messages buffered versus the
 * cost of the buffered path, with T_betw held at 275 cycles and
 * artificial latency added to the buffer handler.
 *
 * Expected shape (paper): synth-10's internal synchronization keeps
 * its buffered fraction small regardless; synth-100 and synth-1000
 * blow up once the buffered-path cost exceeds the send interval (the
 * drain can no longer keep up, so the system stays in buffered mode).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/benchmain.hh"

using namespace fugu;
using namespace fugu::harness;

int
main(int argc, char **argv)
{
    std::vector<unsigned> ns{10, 100, 1000};
    std::vector<std::uint64_t> extras{0, 100, 200, 400, 800, 1600};
    unsigned groupsTotal = 3000;

    BenchSpec spec;
    spec.name = "fig10_buffered_cost";
    spec.defaults = [](BenchContext &ctx) {
        ctx.machine.nodes = 4;
        ctx.gang.quantum = 100000;
        ctx.gang.skew = 0.01;
        ctx.workloads.synth.tBetween = 275;
        ctx.workloads.synth.handlerStall = 200;
        ctx.maxCycles = 20000000000ull;
    };
    spec.params = [&](sim::Binder &b) {
        auto s = b.push("fig10");
        b.list("ns", ns, "synth-N sweep: messages per request group");
        b.list("extras", extras,
               "artificial latency added to the buffered path (on "
               "top of costs.buffered_path_extra)",
               "cycles");
        b.item("groups_total", groupsTotal,
               "total requests per node (groups = groups_total/N)");
    };
    spec.body = [&](BenchContext &ctx) {
        struct Point
        {
            unsigned n;
            Cycle extra;
        };
        std::vector<Point> points;
        for (unsigned n : ns)
            for (Cycle extra : extras)
                points.push_back({n, extra});

        std::vector<RunStats> results(points.size());
        parallelFor(points.size(), [&](std::size_t i) {
            apps::SynthAppConfig scfg = ctx.workloads.synth;
            scfg.n = points[i].n;
            scfg.groups = std::max(1u, groupsTotal / points[i].n);
            AppFactory factory = [scfg](unsigned nodes,
                                        std::uint64_t seed) {
                apps::SynthAppConfig c = scfg;
                c.seed = seed;
                return apps::makeSynthApp(nodes, c);
            };
            glaze::MachineConfig mcfg = ctx.machine;
            mcfg.costs.bufferedPathExtra += points[i].extra;
            results[i] = runTrials(
                mcfg, factory, /*with_null=*/true, /*gang=*/true,
                ctx.gang, ctx.trials, ctx.maxCycles,
                i == 0 ? ctx.tracePath : std::string());
        });

        std::printf(
            "Figure 10: %% messages buffered vs buffered-path cost "
            "(synth-N, T_betw=%llu, %g%% skew)\n",
            static_cast<unsigned long long>(
                ctx.workloads.synth.tBetween),
            ctx.gang.skew * 100);
        TablePrinter t({"N", "extra", "path-cost", "%buffered"},
                       {6, 7, 10, 10});
        t.printHeader();
        ctx.report.meta("trials", ctx.trials);
        ctx.report.meta("nodes", ctx.machine.nodes);

        for (std::size_t i = 0; i < points.size(); ++i) {
            const RunStats &r = results[i];
            const Cycle extra = points[i].extra;
            // Base buffered path (232 cycles at default costs) plus
            // the sweep's artificial extra.
            const Cycle pathCost =
                232 + ctx.machine.costs.bufferedPathExtra + extra;
            t.printRow(
                {TablePrinter::num(points[i].n),
                 TablePrinter::num(static_cast<double>(extra)),
                 TablePrinter::num(static_cast<double>(pathCost)),
                 r.completed ? TablePrinter::num(r.bufferedPct, 2)
                             : "STUCK"});
            ctx.report.row({{"n", points[i].n},
                            {"extra", std::uint64_t{extra}},
                            {"path_cost", std::uint64_t{pathCost}},
                            {"completed", r.completed},
                            {"buffered_pct", r.bufferedPct}});
        }
        return 0;
    };
    return benchMain(spec, argc, argv);
}
