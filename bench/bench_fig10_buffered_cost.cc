/**
 * @file
 * Reproduces Figure 10: percentage of messages buffered versus the
 * cost of the buffered path, with T_betw held at 275 cycles and
 * artificial latency added to the buffer handler.
 *
 * Expected shape (paper): synth-10's internal synchronization keeps
 * its buffered fraction small regardless; synth-100 and synth-1000
 * blow up once the buffered-path cost exceeds the send interval (the
 * drain can no longer keep up, so the system stays in buffered mode).
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/benchjson.hh"
#include "harness/experiment.hh"

using namespace fugu;
using namespace fugu::harness;

int
main(int argc, char **argv)
{
    const std::string trace_path = parseTraceFlag(argc, argv);
    BenchReport report("fig10_buffered_cost", argc, argv);

    const unsigned trials = std::getenv("FUGU_QUICK") ? 1 : 3;
    const unsigned groupsTotal = 3000;

    const unsigned ns[] = {10, 100, 1000};
    const Cycle extras[] = {0, 100, 200, 400, 800, 1600};

    struct Point
    {
        unsigned n;
        Cycle extra;
    };
    std::vector<Point> points;
    for (unsigned n : ns)
        for (Cycle extra : extras)
            points.push_back({n, extra});

    std::vector<RunStats> results(points.size());
    parallelFor(points.size(), [&](std::size_t i) {
        apps::SynthAppConfig scfg;
        scfg.n = points[i].n;
        scfg.groups = std::max(1u, groupsTotal / points[i].n);
        scfg.tBetween = 275;
        scfg.handlerStall = 200;
        AppFactory factory = [scfg](unsigned nodes,
                                    std::uint64_t seed) {
            apps::SynthAppConfig c = scfg;
            c.seed = seed;
            return apps::makeSynthApp(nodes, c);
        };
        glaze::MachineConfig mcfg;
        mcfg.nodes = 4;
        mcfg.costs.bufferedPathExtra = points[i].extra;
        glaze::GangConfig gcfg;
        gcfg.quantum = 100000;
        gcfg.skew = 0.01;
        results[i] = runTrials(mcfg, factory, /*with_null=*/true,
                               /*gang=*/true, gcfg, trials,
                               20000000000ull,
                               i == 0 ? trace_path : std::string());
    });

    std::printf("Figure 10: %% messages buffered vs buffered-path cost "
                "(synth-N, T_betw=275, 1%% skew)\n");
    TablePrinter t({"N", "extra", "path-cost", "%buffered"},
                   {6, 7, 10, 10});
    t.printHeader();
    report.meta("trials", trials);
    report.meta("nodes", 4u);

    for (std::size_t i = 0; i < points.size(); ++i) {
        const RunStats &r = results[i];
        const Cycle extra = points[i].extra;
        t.printRow({TablePrinter::num(points[i].n),
                    TablePrinter::num(static_cast<double>(extra)),
                    TablePrinter::num(static_cast<double>(
                        232 + extra)), // base buffered path + extra
                    r.completed ? TablePrinter::num(r.bufferedPct, 2)
                                : "STUCK"});
        report.row({{"n", points[i].n},
                    {"extra", std::uint64_t{extra}},
                    {"path_cost", std::uint64_t{232 + extra}},
                    {"completed", r.completed},
                    {"buffered_pct", r.bufferedPct}});
    }
    return 0;
}
